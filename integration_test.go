package repro

// End-to-end integration tests across every substrate: synthetic
// workload -> packet emission -> pcap -> decode -> longest-prefix match
// aggregation -> threshold detection -> classification -> analysis.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scheme"
	"repro/internal/trace"
)

// TestFullPipelineFromPackets runs the complete wire-format path and
// cross-checks it against the fast path: classifying the decoded capture
// must single out (almost exactly) the same elephants as classifying the
// generator's own bandwidth matrix.
func TestFullPipelineFromPackets(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1500, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "integration",
		Profile:     trace.FlatProfile(),
		MeanLoadBps: 3e6,
		Flows:       400,
		Table:       table,
		Seed:        60,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	const intervals = 8
	fast := link.GenerateSeries(start, time.Minute, intervals)

	var buf bytes.Buffer
	em := trace.NewPacketEmitter(61)
	n, err := em.Emit(&buf, fast)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capture: %d packets, %.1f MiB", n, float64(buf.Len())/(1<<20))

	wire := agg.NewSeries(start, time.Minute, intervals)
	frames, stats, err := agg.ReadPcap(&buf, table, wire)
	if err != nil {
		t.Fatal(err)
	}
	if frames != n || stats.Unrouted != 0 || stats.OutOfRange != 0 {
		t.Fatalf("frames=%d/%d stats=%+v", frames, n, stats)
	}

	classify := func(s *agg.Series) []core.Result {
		res, err := experiments.RunScheme(s, scheme.MustParse("load+latent:window=4"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fastRes := classify(fast)
	wireRes := classify(wire)

	for i := range fastRes {
		a, b := fastRes[i].Elephants, wireRes[i].Elephants
		// Jaccard similarity of the two elephant sets: packetization
		// rounds each flow's bytes, so borderline flows may differ, but
		// the sets must agree almost everywhere.
		if a.Len() == 0 && b.Len() == 0 {
			continue
		}
		if j := a.Jaccard(b); j < 0.9 {
			t.Errorf("interval %d: elephant sets diverge (jaccard %.2f, %d vs %d flows)", i, j, a.Len(), b.Len())
		}
	}
}

// TestReproducibilityAcrossRuns: the whole experiment stack is seeded;
// two complete runs must agree bit for bit.
func TestReproducibilityAcrossRuns(t *testing.T) {
	run := func() []int {
		ls, err := experiments.BuildLinks(experiments.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := experiments.RunScheme(ls.West, scheme.MustParse("aest+latent"))
		if err != nil {
			t.Fatal(err)
		}
		return analysis.CountSeries(res)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d: %d vs %d elephants across identical runs", i, a[i], b[i])
		}
	}
}

// TestSeedSensitivity: different seeds must produce different workloads
// (guards against a silently ignored seed).
func TestSeedSensitivity(t *testing.T) {
	cfg := experiments.SmallConfig()
	a, err := experiments.BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = cfg.Seed + 1
	b, err := experiments.BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for tt := 0; tt < a.West.Intervals; tt++ {
		if a.West.TotalBandwidth(tt) == b.West.TotalBandwidth(tt) {
			same++
		}
	}
	if same == a.West.Intervals {
		t.Error("different seeds produced identical load series")
	}
}

// TestElephantsAreActuallyHeavy: sanity link between classification and
// ground truth — flows classified as elephants in an interval must have
// above-median bandwidth in that interval.
func TestElephantsAreActuallyHeavy(t *testing.T) {
	ls, err := experiments.BuildLinks(experiments.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RunScheme(ls.West, scheme.MustParse("load+single"))
	if err != nil {
		t.Fatal(err)
	}
	var snap *core.FlowSnapshot
	for tt := 24; tt < len(res); tt += 24 {
		snap = ls.West.Snapshot(tt, snap)
		mean := snap.TotalLoad() / float64(snap.Len())
		for _, p := range res[tt].Elephants.Flows() {
			i, ok := snap.Lookup(p)
			if !ok {
				continue // latent-heat carryover: idle this interval
			}
			if bw := snap.Bandwidth(i); bw < mean {
				t.Errorf("interval %d: elephant %v has below-mean bandwidth %.0f < %.0f", tt, p, bw, mean)
			}
		}
	}
}
