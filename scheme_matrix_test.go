package repro

// The registry-wide equivalence contract: every scheme spec the
// registry can name — the cross-product of all registered detector and
// classifier examples — must run end to end through both the batch
// engine path (engine.RunMatrix over a generated series) and the
// streaming path (engine.RunMatrixStreaming over the synthetic
// generator's incremental record stream) with byte-identical results.
// Adding a scheme via RegisterDetector/RegisterClassifier automatically
// enrols it here; a scheme that only works in one ingestion mode cannot
// land. Run with -race: the matrix fans out on the concurrent pool.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/engine"
	"repro/internal/scheme"
	"repro/internal/trace"
)

// matrixLinkConfig builds the synthetic link the matrix runs over. A
// fresh trace.Link per generation pass: GenerateSeries and Stream both
// consume the link's RNG state.
func matrixLinkConfig(t testing.TB, table *bgp.Table) trace.LinkConfig {
	t.Helper()
	return trace.LinkConfig{
		Table: table, Flows: 300, MeanLoadBps: 2e6, Seed: 60,
		Profile: trace.WestCoastProfile(),
	}
}

// registrySpecs enumerates every detector×classifier example pair from
// the registry, with a test-scale MinFlows so sparse early intervals
// still classify.
func registrySpecs(t testing.TB) []*scheme.Spec {
	t.Helper()
	var specs []*scheme.Spec
	for _, det := range scheme.DetectorExamples() {
		for _, cls := range scheme.ClassifierExamples() {
			sp, err := scheme.Parse(det + "+" + cls)
			if err != nil {
				t.Fatalf("registry example %s+%s: %v", det, cls, err)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("registry example %s: %v", sp, err)
			}
			sp.MinFlows = 8
			specs = append(specs, sp)
		}
	}
	if len(specs) < 4 {
		t.Fatalf("registry shrank to %d example pairs", len(specs))
	}
	return specs
}

func TestRegistryBatchStreamEquivalence(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1200, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	cfg := matrixLinkConfig(t, table)
	const intervals = 30
	interval := time.Minute

	// Batch reference: the same record stream every streaming cell
	// replays, collected into one series shared by every spec ("the
	// same records" is the equivalence contract — a record stream
	// round-trips each bandwidth through bits, so it is compared
	// against its own collection, exactly as a live deployment would
	// see it).
	mkStream := func() (agg.RecordSource, error) {
		l, err := trace.NewLink(cfg)
		if err != nil {
			return nil, err
		}
		return l.Stream(eqStart, interval, intervals), nil
	}
	src, err := mkStream()
	if err != nil {
		t.Fatal(err)
	}
	series := agg.NewSeries(eqStart, interval, intervals)
	if _, err := agg.Collect(src, series); err != nil {
		t.Fatal(err)
	}

	specs := registrySpecs(t)
	eng := engine.MultiLinkEngine{}
	batch, err := eng.RunMatrix([]engine.MatrixLink{{ID: "synth", Series: series}}, specs)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming twin: every (link, spec) cell opens a fresh
	// identically-seeded incremental generator; the accumulator window
	// derives from each spec.
	stream, err := eng.RunMatrixStreaming([]engine.MatrixStreamLink{{
		ID:       "synth",
		Open:     mkStream,
		Start:    eqStart,
		Interval: interval,
	}}, specs)
	if err != nil {
		t.Fatal(err)
	}

	if len(batch) != len(specs) || len(stream) != len(specs) {
		t.Fatalf("cells: batch %d, stream %d, want %d", len(batch), len(stream), len(specs))
	}
	for i := range batch {
		if batch[i].ID != stream[i].ID {
			t.Fatalf("cell order diverges: %q vs %q", batch[i].ID, stream[i].ID)
		}
		if batch[i].Err != nil {
			t.Errorf("cell %s: batch: %v", batch[i].ID, batch[i].Err)
			continue
		}
		if stream[i].Err != nil {
			t.Errorf("cell %s: stream: %v", stream[i].ID, stream[i].Err)
			continue
		}
		if len(batch[i].Results) != intervals {
			t.Errorf("cell %s: %d batch intervals, want %d", batch[i].ID, len(batch[i].Results), intervals)
		}
		if !reflect.DeepEqual(batch[i].Results, stream[i].Results) {
			for j := range batch[i].Results {
				if !reflect.DeepEqual(batch[i].Results[j], stream[i].Results[j]) {
					t.Errorf("cell %s: interval %d diverges:\nbatch:  %+v\nstream: %+v",
						batch[i].ID, j, batch[i].Results[j], stream[i].Results[j])
					break
				}
			}
		}
	}
}

// TestRegistrySchemesThroughExperiments pins that every registered
// scheme also runs through the experiments harness entry point
// (RunScheme), which is what the CLIs and figures build on.
func TestRegistrySchemesThroughExperiments(t *testing.T) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 1200, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	cfg := matrixLinkConfig(t, table)
	link, err := trace.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := link.GenerateSeries(eqStart, time.Minute, 12)
	for _, sp := range registrySpecs(t) {
		lr := engine.RunLink(engine.Link{ID: sp.String(), Series: series, Config: sp.Factory()})
		if lr.Err != nil {
			t.Errorf("scheme %s: %v", sp, lr.Err)
			continue
		}
		if len(lr.Results) != series.Intervals {
			t.Errorf("scheme %s: %d results, want %d", sp, len(lr.Results), series.Intervals)
		}
	}
}
