#!/bin/sh
# saturation.sh — ingest saturation benchmark for the sharded elephantd
# front-end.
#
# For each reader count, start elephantd with -readers R, blast it with
# cmd/nfreplay (-senders S parallel blast senders, -pace 0, fixed
# -duration), then scrape /healthz for what the daemon actually
# ingested. Delivered datagrams/s at R readers vs 1 is the scaling
# figure; delivered/sent is the drop ratio once the offered load
# exceeds what R readers can drain.
#
# With SO_REUSEPORT (Linux/BSD) each sender's 4-tuple hashes to a fixed
# reader socket, so S senders spread across min(S, R) readers. On a
# multi-core host the expected shape is delivered-rate scaling roughly
# linearly in R until nfreplay itself saturates (>= 2x at 4 readers vs
# 1). On a single-core host (some CI containers) readers time-slice one
# CPU, so the sharded and single-reader rates converge — the run still
# verifies the mechanics (REUSEPORT bind, per-reader counters, no lost
# accounting) and prints nproc so the numbers can be read in context.
#
# After the reader sweep a second phase holds the front-end fixed
# (-readers 4) and sweeps the per-link accumulation shard count: every
# sender blasts with -single-link, so all the offered load lands on ONE
# collector link and the intra-link sharded accumulate + pipelined
# classify path is the only thing that varies. Delivered/sent per shard
# count is the intra-link scaling figure.
#
# Usage: scripts/saturation.sh [duration] [senders] [readers...]
#   duration  blast length per run        (default 5s)
#   senders   parallel nfreplay senders   (default 4)
#   readers   reader counts to sweep      (default "1 2 4")
#
# Environment: ROUTES (default 600), SEED (default 7), FLOWS (default
# 200), SHARD_COUNTS (default "1 2 4", the second phase's sweep).

set -eu

DURATION="${1:-5s}"
SENDERS="${2:-4}"
if [ "$#" -gt 2 ]; then
    shift 2
    READER_COUNTS="$*"
else
    READER_COUNTS="1 2 4"
fi
ROUTES="${ROUTES:-600}"
SEED="${SEED:-7}"
FLOWS="${FLOWS:-200}"
SHARD_COUNTS="${SHARD_COUNTS:-1 2 4}"
UDP_PORT="${UDP_PORT:-12055}"
HTTP_PORT="${HTTP_PORT:-18055}"

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

echo "saturation: building elephantd and nfreplay"
go build -o "$BIN/elephantd" ./cmd/elephantd
go build -o "$BIN/nfreplay" ./cmd/nfreplay

# health_field FIELD — pull one numeric/bool field out of GET /healthz.
health_field() {
    curl -s "http://127.0.0.1:$HTTP_PORT/healthz" |
        tr ',{}' '\n\n\n' | sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*//p" | head -1
}

echo "saturation: host has $(nproc 2>/dev/null || echo '?') CPU(s); GOMAXPROCS governs reader parallelism"
echo "saturation: blasting $SENDERS sender(s) x $DURATION per run, $ROUTES routes, $FLOWS flows"
echo
printf '%-8s %-10s %-14s %-14s %-10s %s\n' readers reuseport sent_dgrams delivered dgrams/s delivered/sent

BASE_RATE=""
for R in $READER_COUNTS; do
    "$BIN/elephantd" -gen-routes "$ROUTES" -gen-seed "$SEED" \
        -readers "$R" -interval 30s \
        -udp "127.0.0.1:$UDP_PORT" -http "127.0.0.1:$HTTP_PORT" \
        >"$BIN/elephantd.$R.log" 2>&1 &
    DAEMON_PID=$!

    i=0
    until curl -sf "http://127.0.0.1:$HTTP_PORT/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "daemon did not come up; log:"; cat "$BIN/elephantd.$R.log"; exit 1; }
        sleep 0.1
    done
    REUSEPORT="$(health_field reuseport)"

    SENT="$("$BIN/nfreplay" -addr "127.0.0.1:$UDP_PORT" \
        -routes "$ROUTES" -seed "$SEED" -flows "$FLOWS" \
        -senders "$SENDERS" -pace 0 -duration "$DURATION" 2>&1 |
        sed -n 's/.*sent [0-9]* records in \([0-9]*\) datagrams.*/\1/p')"

    # Let the readers drain the kernel buffers, then scrape.
    sleep 1
    DELIVERED="$(health_field datagrams)"
    kill "$DAEMON_PID" 2>/dev/null && wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""

    SECS="$(echo "$DURATION" | sed 's/s$//')"
    RATE="$(awk -v d="$DELIVERED" -v s="$SECS" 'BEGIN { printf "%.0f", d / s }')"
    RATIO="$(awk -v d="$DELIVERED" -v s="$SENT" 'BEGIN { if (s > 0) printf "%.2f", d / s; else print "n/a" }')"
    [ -z "$BASE_RATE" ] && BASE_RATE="$RATE"
    SPEEDUP="$(awk -v r="$RATE" -v b="$BASE_RATE" 'BEGIN { if (b > 0) printf "%.2fx", r / b; else print "n/a" }')"
    printf '%-8s %-10s %-14s %-14s %-10s %s (%s vs first row)\n' \
        "$R" "$REUSEPORT" "$SENT" "$DELIVERED" "$RATE" "$RATIO" "$SPEEDUP"
done

echo
echo "saturation: delivered dgrams/s is the daemon-side ingest rate; on a"
echo "saturation: multi-core host expect >= 2x at 4 readers vs 1 once the"
echo "saturation: single reader is the bottleneck (delivered/sent < 1)."

# ---------------------------------------------------------------------
# Phase 2: intra-link shard sweep. The front-end is held at 4 readers;
# every sender shares one engine ID (-single-link), so the whole blast
# funnels into a single link's pipeline and only -shards varies.
echo
echo "saturation: intra-link sweep — single link, -readers 4, shards: $SHARD_COUNTS"
echo
printf '%-8s %-14s %-14s %-10s %s\n' shards sent_dgrams delivered dgrams/s delivered/sent

BASE_RATE=""
for P in $SHARD_COUNTS; do
    "$BIN/elephantd" -gen-routes "$ROUTES" -gen-seed "$SEED" \
        -readers 4 -shards "$P" -interval 30s \
        -udp "127.0.0.1:$UDP_PORT" -http "127.0.0.1:$HTTP_PORT" \
        >"$BIN/elephantd.shards.$P.log" 2>&1 &
    DAEMON_PID=$!

    i=0
    until curl -sf "http://127.0.0.1:$HTTP_PORT/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "daemon did not come up; log:"; cat "$BIN/elephantd.shards.$P.log"; exit 1; }
        sleep 0.1
    done

    SENT="$("$BIN/nfreplay" -addr "127.0.0.1:$UDP_PORT" \
        -routes "$ROUTES" -seed "$SEED" -flows "$FLOWS" \
        -senders "$SENDERS" -single-link -pace 0 -duration "$DURATION" 2>&1 |
        sed -n 's/.*sent [0-9]* records in \([0-9]*\) datagrams.*/\1/p')"

    sleep 1
    DELIVERED="$(health_field datagrams)"
    kill "$DAEMON_PID" 2>/dev/null && wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""

    SECS="$(echo "$DURATION" | sed 's/s$//')"
    RATE="$(awk -v d="$DELIVERED" -v s="$SECS" 'BEGIN { printf "%.0f", d / s }')"
    RATIO="$(awk -v d="$DELIVERED" -v s="$SENT" 'BEGIN { if (s > 0) printf "%.2f", d / s; else print "n/a" }')"
    [ -z "$BASE_RATE" ] && BASE_RATE="$RATE"
    SPEEDUP="$(awk -v r="$RATE" -v b="$BASE_RATE" 'BEGIN { if (b > 0) printf "%.2fx", r / b; else print "n/a" }')"
    printf '%-8s %-14s %-14s %-10s %s (%s vs first row)\n' \
        "$P" "$SENT" "$DELIVERED" "$RATE" "$RATIO" "$SPEEDUP"
done

echo
echo "saturation: the intra-link rows saturate ONE pipeline; on a multi-core"
echo "saturation: host expect delivered/sent to improve with shards once the"
echo "saturation: serial accumulate stage is the bottleneck (emitted results"
echo "saturation: are bit-identical at every shard count)."
