// Package repro reproduces "A Pragmatic Definition of Elephants in
// Internet Backbone Traffic" (Papagiannaki, Taft, Bhattacharyya, Thiran,
// Salamatian, Diot — IMC 2002) as a self-contained Go system.
//
// The paper's contribution — elephant-flow classification combining a
// volume threshold (detected per measurement interval via the "aest"
// heavy-tail estimator or the "β-constant load" rule, then EWMA-smoothed)
// with the "latent heat" persistence metric — lives in internal/core.
// Its interval hot path is columnar: internal/agg emits each interval as
// a sorted core.FlowSnapshot (prefix column + bandwidth column, reused
// across intervals) that detectors and classifiers consume directly, and
// internal/engine runs one classification pipeline per monitored link
// concurrently on a worker pool with deterministic, seed-reproducible
// output.
//
// Schemes are first-class: internal/scheme is a registry of every
// detector and classifier — the paper's and the internal/baseline
// alternatives (fixed threshold, top-K, Misra–Gries, Space-Saving) —
// addressable through the spec grammar
// "detector[:k=v,...]+classifier[:k=v,...]" (e.g.
// "load:beta=0.8+latent:window=12", "aest", "misragries:k=100"). A
// parsed spec compiles to a fresh-instances core.Config factory, so any
// registered scheme runs through the engine (including the
// RunMatrix/RunMatrixStreaming specs×links sweeps), the experiments
// harnesses and every CLI -scheme flag, with batch/stream equivalence
// pinned registry-wide by scheme_matrix_test.go.
//
// Ingestion is streaming-first: every substrate (pcap captures, NetFlow
// v5 streams, the synthetic generator's incremental mode) is normalised
// to the unified agg.RecordSource iterator of prefix-attributable
// records, and agg.StreamAccumulator windows any such stream into
// classified intervals with memory bounded by its ring of open
// intervals — not by trace length — pushing each closed interval into
// core.Pipeline.StepSnapshot as capture time advances
// (engine.MultiLinkEngine.RunStreaming scales this to many live links).
// Because the batch agg.Series and the accumulator share one
// apportioning arithmetic, streaming classification is byte-identical
// to batch classification on the same records; streaming_test.go pins
// that contract on all three substrates.
//
// Flow identity is interned: each pipeline owns a core.FlowTable
// mapping every prefix it classifies to a dense uint32 ID, and the
// whole interval hot path — accumulator ring slots, the latent-heat
// classifier's per-flow windows (incrementally summed, O(1) per flow),
// the elephant-state tracker — runs on flat ID-indexed columns instead
// of prefix-keyed maps. Snapshots carry the ID column from producer to
// classifier, so steady-state classification performs a single hash
// per record at ingest and none per flow per interval. Classifier
// eviction recycles IDs through a quarantined free list sized to the
// accumulator's open window, keeping resident-daemon memory bounded by
// the live flow set; equivalence of the ID path with the prefix-keyed
// semantics is pinned by dual-implementation tests in internal/core
// and the eviction/recycling stream≡batch test in internal/engine.
// BENCH_baseline.json records the bench suite's reference numbers;
// cmd/benchdiff compares fresh runs against it and fails on >30%
// ns/op regressions (wired as a non-blocking CI report).
//
// The streaming stack also runs resident: internal/serve is a live
// monitoring daemon (cmd/elephantd) that collects NetFlow v5 datagrams
// on a UDP socket, demultiplexes them by exporter into long-lived
// per-link pipelines (engine.LivePipeline), and answers "who are the
// elephants right now" over HTTP — current sets, a ring of recent
// interval summaries, and Prometheus metrics — with graceful drain on
// shutdown. cmd/nfreplay feeds it synthetic traffic through the
// router-model flow cache for demos and smoke tests, and a loopback
// test pins that what the API serves equals what the batch pipeline
// computes from the same datagrams.
//
// Everything the methodology needs to run is implemented here as
// well: a layered packet decoder/serializer (internal/packet), a pcap
// file reader/writer (internal/pcap), a BGP table with longest-prefix
// match (internal/bgp), the statistical machinery including the
// Crovella–Taqqu scaling estimator (internal/stats), a synthetic
// backbone workload generator standing in for the proprietary Sprint
// OC-12 traces (internal/trace), the per-prefix measurement pipeline
// (internal/agg), evaluation metrics (internal/analysis) and the
// per-figure reproduction harness (internal/experiments).
//
// See README.md for a tour, ARCHITECTURE.md for the layer stack and the
// snapshot ownership contract, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure and quantitative claim:
//
//	go test -bench=. -benchmem
package repro
