// Package repro reproduces "A Pragmatic Definition of Elephants in
// Internet Backbone Traffic" (Papagiannaki, Taft, Bhattacharyya, Thiran,
// Salamatian, Diot — IMC 2002) as a self-contained Go system.
//
// The paper's contribution — elephant-flow classification combining a
// volume threshold (detected per measurement interval via the "aest"
// heavy-tail estimator or the "β-constant load" rule, then EWMA-smoothed)
// with the "latent heat" persistence metric — lives in internal/core.
// Its interval hot path is columnar: internal/agg emits each interval as
// a sorted core.FlowSnapshot (prefix column + bandwidth column, reused
// across intervals) that detectors and classifiers consume directly, and
// internal/engine runs one classification pipeline per monitored link
// concurrently on a worker pool with deterministic, seed-reproducible
// output. Everything the methodology needs to run is implemented here as
// well: a layered packet decoder/serializer (internal/packet), a pcap
// file reader/writer (internal/pcap), a BGP table with longest-prefix
// match (internal/bgp), the statistical machinery including the
// Crovella–Taqqu scaling estimator (internal/stats), a synthetic
// backbone workload generator standing in for the proprietary Sprint
// OC-12 traces (internal/trace), the per-prefix measurement pipeline
// (internal/agg), evaluation metrics (internal/analysis) and the
// per-figure reproduction harness (internal/experiments).
//
// See README.md for a tour, ARCHITECTURE.md for the layer stack and the
// snapshot ownership contract, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure and quantitative claim:
//
//	go test -bench=. -benchmem
package repro
