package repro

// One benchmark per figure panel, quantitative claim and ablation of the
// paper, as indexed in DESIGN.md §4. Each benchmark regenerates its
// artifact at a reduced-but-faithful scale per iteration and reports the
// headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/experiments runs the same
// code at full paper scale with charts.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// benchConfig is the per-iteration scale: large enough for the paper's
// effects to show, small enough to iterate.
func benchConfig() experiments.LinksConfig {
	cfg := experiments.SmallConfig()
	cfg.Intervals = 168 // 14 hours of 5-minute slots
	cfg.Flows = 3000
	cfg.Routes = 8000
	return cfg
}

func buildLinks(b *testing.B) *experiments.LinkSet {
	b.Helper()
	ls, err := experiments.BuildLinks(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ls
}

// BenchmarkFig1aElephantCounts regenerates Figure 1(a): the number of
// elephants per interval for {aest, 0.8-constant-load} × {west, east}
// with the latent-heat metric on.
func BenchmarkFig1aElephantCounts(b *testing.B) {
	ls := buildLinks(b)
	var meanWest, meanEast float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunFigure1(ls, true)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			m := analysis.MeanInt(analysis.CountSeries(r.Results))
			if r.Link == "west" {
				meanWest = m
			} else {
				meanEast = m
			}
		}
	}
	b.ReportMetric(meanWest, "elephants/west")
	b.ReportMetric(meanEast, "elephants/east")
}

// BenchmarkFig1bTrafficFraction regenerates Figure 1(b): the fraction of
// total traffic apportioned to elephants (paper: ≈0.6, less fluctuation
// than the counts).
func BenchmarkFig1bTrafficFraction(b *testing.B) {
	ls := buildLinks(b)
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunFigure1(ls, true)
		if err != nil {
			b.Fatal(err)
		}
		frac = 0
		for _, r := range runs {
			frac += analysis.MeanFloat(analysis.FractionSeries(r.Results)) / float64(len(runs))
		}
	}
	b.ReportMetric(frac, "loadfrac")
}

// BenchmarkFig1cHoldingTimes regenerates Figure 1(c): the busy-period
// histogram of average holding times in the elephant state (paper: mean
// ≈ 2 h with latent heat; ≈ 50 one-interval flows).
func BenchmarkFig1cHoldingTimes(b *testing.B) {
	ls := buildLinks(b)
	var holding, oneSlot float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := experiments.RunFigure1(ls, true)
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.Fig1c(runs, experiments.Fig1cConfig{})
		if err != nil {
			b.Fatal(err)
		}
		holding, oneSlot = 0, 0
		for _, r := range res {
			holding += r.Stats.MeanHolding / float64(len(res))
			oneSlot += float64(r.Stats.SingleIntervalFlows) / float64(len(res))
		}
	}
	b.ReportMetric(holding, "holding-slots")
	b.ReportMetric(oneSlot, "1slot-flows")
}

// BenchmarkSingleFeatureVolatility regenerates the Section II claim:
// single-feature elephants hold their state for only 20–40 minutes and
// >1000 flows per link are elephants for a single interval.
func BenchmarkSingleFeatureVolatility(b *testing.B) {
	ls := buildLinks(b)
	var holdingMin, oneSlot float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SingleFeatureVolatility(ls)
		if err != nil {
			b.Fatal(err)
		}
		holdingMin, oneSlot = 0, 0
		for _, r := range rows {
			holdingMin += r.MeanHolding.Minutes() / float64(len(rows))
			oneSlot += float64(r.SingleIntervalFlows) / float64(len(rows))
		}
	}
	b.ReportMetric(holdingMin, "holding-min")
	b.ReportMetric(oneSlot, "1slot-flows")
}

// BenchmarkTwoFeatureStability regenerates the Section III claim: with
// latent heat the average holding time rises to ≈2 h and one-interval
// elephants collapse to ≈50.
func BenchmarkTwoFeatureStability(b *testing.B) {
	ls := buildLinks(b)
	var holdingMin, oneSlot, elephants float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TwoFeatureStability(ls)
		if err != nil {
			b.Fatal(err)
		}
		holdingMin, oneSlot, elephants = 0, 0, 0
		for _, r := range rows {
			holdingMin += r.MeanHolding.Minutes() / float64(len(rows))
			oneSlot += float64(r.SingleIntervalFlows) / float64(len(rows))
			elephants += r.MeanElephants / float64(len(rows))
		}
	}
	b.ReportMetric(holdingMin, "holding-min")
	b.ReportMetric(oneSlot, "1slot-flows")
	b.ReportMetric(elephants, "elephants")
}

// BenchmarkPrefixLengthAnalysis regenerates the Section III prefix-length
// observation: elephants span a wide range of prefix lengths and almost
// no /8 network qualifies.
func BenchmarkPrefixLengthAnalysis(b *testing.B) {
	ls := buildLinks(b)
	var span, slash8 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PrefixLength(ls)
		if err != nil {
			b.Fatal(err)
		}
		span, slash8 = 0, 0
		for _, r := range rows {
			span += float64(r.Stats.MaxLen-r.Stats.MinLen) / float64(len(rows))
			slash8 += float64(r.Stats.ElephantSlash8) / float64(len(rows))
		}
	}
	b.ReportMetric(span, "len-span")
	b.ReportMetric(slash8, "slash8-elephants")
}

// BenchmarkIntervalSensitivity regenerates the Section II robustness
// check: similar results at 1-, 5- and 10-minute measurement intervals.
func BenchmarkIntervalSensitivity(b *testing.B) {
	cfg := benchConfig()
	cfg.Intervals = 72 // 6 hours: the 1-minute regeneration is 5x larger
	sp := scheme.MustParse("load+latent")
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.IntervalSensitivity(cfg,
			[]time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute},
			sp)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := rows[0].MeanLoadFraction, rows[0].MeanLoadFraction
		for _, r := range rows[1:] {
			if r.MeanLoadFraction < lo {
				lo = r.MeanLoadFraction
			}
			if r.MeanLoadFraction > hi {
				hi = r.MeanLoadFraction
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "loadfrac-spread")
}

// BenchmarkAblationAlpha sweeps the EWMA weight α (paper: 0.5 is
// "sufficiently smooth"). The reported metric is the threshold
// coefficient of variation at α=0.5.
func BenchmarkAblationAlpha(b *testing.B) {
	ls := buildLinks(b)
	var cv float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAlpha(ls, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Value == 0.5 {
				cv = r.ThresholdCV
			}
		}
	}
	b.ReportMetric(cv, "thetaCV@0.5")
}

// BenchmarkAblationLatentWindow sweeps the latent-heat window (paper:
// 12 slots = 1 hour), reporting the holding-time gain of W=12 over W=1.
func BenchmarkAblationLatentWindow(b *testing.B) {
	ls := buildLinks(b)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWindow(ls, []int{1, 12})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].MeanHoldingIntervals > 0 {
			gain = rows[1].MeanHoldingIntervals / rows[0].MeanHoldingIntervals
		}
	}
	b.ReportMetric(gain, "holding-gain-w12/w1")
}

// BenchmarkAblationBeta sweeps the constant-load target β (paper: 0.8),
// reporting the elephant count spread across the sweep.
func BenchmarkAblationBeta(b *testing.B) {
	ls := buildLinks(b)
	var lo, hi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBeta(ls, nil)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi = rows[0].MeanElephants, rows[0].MeanElephants
		for _, r := range rows[1:] {
			if r.MeanElephants < lo {
				lo = r.MeanElephants
			}
			if r.MeanElephants > hi {
				hi = r.MeanElephants
			}
		}
	}
	b.ReportMetric(lo, "elephants@beta-min")
	b.ReportMetric(hi, "elephants@beta-max")
}

// BenchmarkAblationBetaCached measures the β sweep's classification
// work alone, through the matrix execution's detector prepass and
// threshold cache: five constant-load detectors over one link, the
// classify pass consuming precomputed θ(t) columns. The A/B partner of
// BenchmarkAblationBeta, which additionally pays busy-window analysis
// and row summarisation per sweep variant.
func BenchmarkAblationBetaCached(b *testing.B) {
	ls := buildLinks(b)
	specs := make([]*scheme.Spec, 0, 5)
	for _, v := range []string{"0.5", "0.6", "0.7", "0.8", "0.9"} {
		specs = append(specs, scheme.MustParse("load:beta="+v+"+latent"))
	}
	links := []engine.MatrixLink{{ID: "west", Series: ls.West}}
	eng := engine.MultiLinkEngine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrix(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
	b.ReportMetric(float64(len(specs)), "specs/op")
}

// BenchmarkBaselineComparison regenerates the E-BASE extension: the
// paper's scheme against fixed-threshold and top-K baselines. Reported
// metric: the churn ratio (baseline-best reclassifications over the
// paper scheme's).
func BenchmarkBaselineComparison(b *testing.B) {
	cfg := benchConfig()
	cfg.Intervals = 288 // full diurnal cycle
	ls, err := experiments.BuildLinks(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BaselineComparison(ls)
		if err != nil {
			b.Fatal(err)
		}
		best := rows[1].Reclassifications
		for _, r := range rows[2:] {
			if r.Reclassifications < best {
				best = r.Reclassifications
			}
		}
		if rows[0].Reclassifications > 0 {
			ratio = float64(best) / float64(rows[0].Reclassifications)
		}
	}
	b.ReportMetric(ratio, "baseline/paper-churn")
}

// BenchmarkConcentration regenerates the E-CONC premise measurement.
func BenchmarkConcentration(b *testing.B) {
	ls := buildLinks(b)
	var gini float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Concentration(ls)
		if err != nil {
			b.Fatal(err)
		}
		gini = 0
		for _, r := range rows {
			gini += r.Gini / float64(len(rows))
		}
	}
	b.ReportMetric(gini, "gini")
}

// BenchmarkSamplingImpact regenerates the E-SAMP extension, reporting
// the elephant-set agreement at 1-in-1000 sampling.
func BenchmarkSamplingImpact(b *testing.B) {
	ls := buildLinks(b)
	sp := scheme.MustParse("load+latent")
	var jaccard float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SamplingImpact(ls, []int{1, 1000}, sp)
		if err != nil {
			b.Fatal(err)
		}
		jaccard = rows[1].MeanJaccard
	}
	b.ReportMetric(jaccard, "jaccard@1e3")
}

// BenchmarkWorkloadSynthesis measures the synthetic generator itself:
// per-interval cost of evolving the two-link flow population.
func BenchmarkWorkloadSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildLinks(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotStep measures the columnar hot path end to end: emit
// one interval as a reused sorted FlowSnapshot and classify it. This is
// the successor of the map-snapshot path (built, sorted and torn down a
// map per interval); compare against BenchmarkClassifyInterval for the
// whole-run view.
func BenchmarkSnapshotStep(b *testing.B) {
	ls := buildLinks(b)
	cfg, err := scheme.MustParse("load+latent").Config()
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var snap *core.FlowSnapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap = ls.West.Snapshot(i%ls.West.Intervals, snap)
		if _, err := pipe.Step(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(snap.Len()), "flows/interval")
}

// BenchmarkSnapshotStepInstrumented is BenchmarkSnapshotStep with the
// full per-link observability attached — stage-latency histograms,
// churn counters and gauges (obs.LinkMetrics as the pipeline's
// observer) plus one flight-recorder trace per interval — measuring
// the instrumentation overhead the resident daemon pays on its hot
// path. Compare ns/op against BenchmarkSnapshotStep: the budget is a
// few percent, and allocs/op must stay 0 (pinned by
// TestInstrumentedStepSteadyStateAllocs).
func BenchmarkSnapshotStepInstrumented(b *testing.B) {
	ls := buildLinks(b)
	cfg, err := scheme.MustParse("load+latent").Config()
	if err != nil {
		b.Fatal(err)
	}
	om := obs.NewLinkMetrics(obs.NewRegistry(), "bench@0", 1, obs.DefaultStageBounds())
	cfg.Observer = om
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fr := obs.NewFlightRecorder(256)
	var snap *core.FlowSnapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap = ls.West.Snapshot(i%ls.West.Intervals, snap)
		res, err := pipe.Step(snap)
		if err != nil {
			b.Fatal(err)
		}
		o := om.Last()
		fr.Record(obs.IntervalTrace{
			Interval:        res.Interval,
			SealedUnixNanos: time.Now().UnixNano(),
			DetectNanos:     o.DetectNanos,
			ClassifyNanos:   o.ClassifyNanos,
			FinalizeNanos:   o.FinalizeNanos,
			StepNanos:       o.StepNanos,
			RawThreshold:    o.RawThreshold,
			Threshold:       o.Threshold,
			TotalLoad:       o.TotalLoad,
			ElephantLoad:    o.ElephantLoad,
			ActiveFlows:     o.ActiveFlows,
			Elephants:       o.Elephants,
			Promoted:        o.Promoted,
			Demoted:         o.Demoted,
		})
	}
	b.ReportMetric(float64(snap.Len()), "flows/interval")
}

// BenchmarkMultiLinkEngine measures the concurrent multi-link engine on
// an 8-link backbone (the two evaluation links replicated under distinct
// seeds), the scaling unit all future sharding work builds on.
func BenchmarkMultiLinkEngine(b *testing.B) {
	cfg := benchConfig()
	links := make([]engine.Link, 0, 8)
	for i := 0; i < 4; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		ls, err := experiments.BuildLinks(c)
		if err != nil {
			b.Fatal(err)
		}
		sp := scheme.MustParse("load+latent")
		links = append(links,
			engine.Link{ID: fmt.Sprintf("west-%d", i), Series: ls.West, Config: sp.Factory()},
			engine.Link{ID: fmt.Sprintf("east-%d", i), Series: ls.East, Config: sp.Factory()},
		)
	}
	eng := engine.MultiLinkEngine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.Run(links)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
	b.ReportMetric(float64(len(links)), "links/op")
}

// BenchmarkClassifyInterval measures the marginal cost of classifying
// one 3000-flow interval with the full pipeline (constant-load detector,
// EWMA, latent heat) — the quantity an online deployment cares about.
func BenchmarkClassifyInterval(b *testing.B) {
	ls := buildLinks(b)
	sp := scheme.MustParse("load+latent")
	res, err := experiments.RunScheme(ls.West, sp)
	if err != nil {
		b.Fatal(err)
	}
	perIter := float64(len(res))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScheme(ls.West, sp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(perIter, "intervals/op")
}
