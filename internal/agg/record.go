package agg

import (
	"errors"
	"io"
	"net/netip"
	"time"
)

// Record is one prefix-attributable observation — the unit every ingest
// substrate is normalised to. A decoded packet is a point record (Span
// zero, Bits = wire length × 8); a NetFlow record is a span record
// whose octets are spread uniformly over [Time, Time+Span]; the
// synthetic generator emits one point record per active flow per
// interval. Records are the common currency of the batch path
// (Series.AddRecord / Collect) and the streaming path
// (StreamAccumulator.Add): both run the identical apportioning
// arithmetic, which is what makes streaming classification
// byte-identical to batch classification on the same record sequence.
type Record struct {
	// Prefix is the BGP flow the bits belong to, already resolved by
	// longest-prefix match.
	Prefix netip.Prefix
	// Time is the start of the observation.
	Time time.Time
	// Span is the observation's duration: zero for point observations
	// (a packet), positive for flow records.
	Span time.Duration
	// Bits is the observed volume in bits.
	Bits float64
}

// End returns the end of the observation (equal to Time for point
// records).
func (r Record) End() time.Time { return r.Time.Add(r.Span) }

// RecordSource is the unified iterator every ingest substrate adapts
// to: pcap captures (PacketRecordSource), NetFlow streams
// (netflow.RecordSource) and the synthetic generator
// (trace.RecordStream). Next returns io.EOF at a clean end of stream.
// Sources should yield records roughly ordered by End: the streaming
// accumulator drops bits that reach further back than its window.
type RecordSource interface {
	Next() (Record, error)
}

// spreadRecord apportions rec.Bits over measurement intervals, calling
// add(t, bits) for every in-window interval, and reports whether any
// bits landed. It is the single implementation of the apportioning
// arithmetic shared by the batch Series and the StreamAccumulator, so
// the two paths accumulate bit-identical values:
//
//   - a point record lands wholly in the interval containing Time;
//   - a span record is spread uniformly: each covered interval gets
//     Bits × (overlap / Span), with the fraction's denominator the
//     *full* span, so portions clipped off by the window are dropped
//     rather than renormalised (matching the NetFlow collector's
//     historical behaviour).
//
// origin is the left edge of interval 0; clipStart is the earliest
// admissible instant (the series start, or the streaming window's
// closed edge); intervalOf maps a timestamp to its interval index or -1
// when out of window.
func spreadRecord(rec Record, origin time.Time, interval time.Duration, clipStart time.Time, intervalOf func(time.Time) int, add func(t int, bits float64)) bool {
	if rec.Span <= 0 {
		t := intervalOf(rec.Time)
		if t < 0 {
			return false
		}
		add(t, rec.Bits)
		return true
	}
	last := rec.End()
	span := rec.Span
	landed := false
	for cur := rec.Time; cur.Before(last); {
		t := intervalOf(cur)
		if t < 0 {
			// Before the window: skip ahead; after: done.
			if cur.Before(clipStart) {
				cur = clipStart
				continue
			}
			break
		}
		segEnd := last
		if intervalEnd := origin.Add(time.Duration(t+1) * interval); intervalEnd.Before(segEnd) {
			segEnd = intervalEnd
		}
		frac := float64(segEnd.Sub(cur)) / float64(span)
		add(t, rec.Bits*frac)
		landed = true
		cur = segEnd
	}
	return landed
}

// AddRecord apportions one record into the series, spreading span
// records uniformly over the intervals they cover (clipped to the
// series window). It reports whether any bits landed. This is the
// batch-side twin of StreamAccumulator.Add: both run spreadRecord, so a
// series filled by AddRecord and a stream fed the same records carry
// bit-identical interval values.
func (s *Series) AddRecord(rec Record) bool {
	return spreadRecord(rec, s.Start, s.Interval, s.Start, s.IntervalOf, func(t int, bits float64) {
		s.AddBits(rec.Prefix, t, bits)
	})
}

// CollectStats counts record attribution outcomes of a Collect run.
type CollectStats struct {
	// Records is the number of records drained from the source.
	Records uint64
	// Routed counts records that landed at least partly in the window.
	Routed uint64
	// OutOfRange counts records entirely outside the series window.
	OutOfRange uint64
}

// Collect drains src into s — the batch reference the streaming path is
// defined (and tested) against. The whole source is materialised into
// the flow-by-interval matrix before anything is classified; use
// Stream + StreamAccumulator when memory must stay bounded by the
// window instead of the trace length.
func Collect(src RecordSource, s *Series) (CollectStats, error) {
	var st CollectStats
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Records++
		if s.AddRecord(rec) {
			st.Routed++
		} else {
			st.OutOfRange++
		}
	}
}
