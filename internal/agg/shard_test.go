package agg

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
)

// TestShardedStreamMatchesSeries is the tentpole contract: at every
// shard count the sharded accumulator must emit snapshots bit-identical
// (keys, bandwidths, running totals) to both the batch Series path and
// the serial streaming path — same float folds, same merge order.
func TestShardedStreamMatchesSeries(t *testing.T) {
	const intervals = 20
	iv := time.Minute
	recs := synthRecords(7, intervals, 40, iv)

	batch := NewSeries(start, iv, intervals)
	for _, rec := range recs {
		if !batch.AddRecord(rec) {
			t.Fatalf("batch dropped record %+v", rec)
		}
	}

	_, serial := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: 4}, recs)

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			acc, got := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: 4, Shards: shards}, recs)
			if want := shards; acc.Shards() != want {
				t.Fatalf("Shards() = %d, want %d", acc.Shards(), want)
			}
			if len(got) != intervals {
				t.Fatalf("emitted %d intervals, want %d", len(got), intervals)
			}
			for tt, snap := range got {
				ref := batch.Snapshot(tt, nil)
				if snap.Len() != ref.Len() {
					t.Fatalf("interval %d: %d flows, batch has %d", tt, snap.Len(), ref.Len())
				}
				for i := 0; i < snap.Len(); i++ {
					if snap.Key(i) != ref.Key(i) {
						t.Fatalf("interval %d flow %d: key %v != %v", tt, i, snap.Key(i), ref.Key(i))
					}
					if snap.Bandwidth(i) != ref.Bandwidth(i) {
						t.Fatalf("interval %d flow %d: bw %v != %v (must be bit-identical)", tt, i, snap.Bandwidth(i), ref.Bandwidth(i))
					}
				}
				if snap.TotalLoad() != ref.TotalLoad() {
					t.Fatalf("interval %d: total %v != %v", tt, snap.TotalLoad(), ref.TotalLoad())
				}
				if snap.TotalLoad() != serial[tt].TotalLoad() {
					t.Fatalf("interval %d: total %v != serial %v", tt, snap.TotalLoad(), serial[tt].TotalLoad())
				}
			}
		})
	}
}

// TestShardedStreamStats: the coordinator owns every gate and counter,
// so sharded runs must report exactly the serial StreamStats — including
// EvictedFlows, whose sharded value is summed across shard dirty sets.
func TestShardedStreamStats(t *testing.T) {
	iv := time.Minute
	recs := synthRecords(11, 16, 30, iv)
	// Provoke late and far-future drops too.
	recs = append(recs,
		Record{Prefix: pfxA, Time: start.Add(-time.Hour), Bits: 8},
		Record{Prefix: pfxA, Time: start.Add(1e6 * time.Hour), Bits: 8},
	)

	serialAcc, _ := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: 3}, recs)
	want := serialAcc.Stats()

	for _, shards := range []int{2, 4} {
		acc, _ := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: 3, Shards: shards}, recs)
		if got := acc.Stats(); got != want {
			t.Fatalf("shards=%d: stats %+v, want serial %+v", shards, got, want)
		}
		var total uint64
		for _, n := range acc.ShardRecords(nil) {
			total += n
		}
		if total != want.InWindow {
			t.Fatalf("shards=%d: shard records sum %d, want InWindow %d", shards, total, want.InWindow)
		}
	}
}

// TestShardedStreamEvictionRecycling drives the sharded path through
// heavy flow churn — enough interval closes that shard tables release,
// quarantine and re-bind IDs — and requires bit-equality with batch
// throughout (the PR 5 eviction/resurrection regression surface).
func TestShardedStreamEvictionRecycling(t *testing.T) {
	const intervals = 40
	iv := time.Minute
	// Few persistent flows + many one-interval flows: every close evicts
	// most of the interval's rows, so IDs cycle through release,
	// quarantine and rebinding continuously.
	var recs []Record
	for tt := 0; tt < intervals; tt++ {
		at := start.Add(time.Duration(tt) * iv)
		for f := 0; f < 4; f++ { // anchors live forever
			p := netip.MustParsePrefix(fmt.Sprintf("10.0.%d.0/24", f))
			recs = append(recs, Record{Prefix: p, Time: at.Add(time.Second), Bits: 5e4 + float64(tt*f)})
		}
		for f := 0; f < 12; f++ { // churners live one interval
			p := netip.MustParsePrefix(fmt.Sprintf("172.16.%d.%d/32", tt%200, f))
			recs = append(recs, Record{Prefix: p, Time: at.Add(2 * time.Second), Bits: 1e4 * float64(1+f)})
		}
	}

	batch := NewSeries(start, iv, intervals)
	for _, rec := range recs {
		if !batch.AddRecord(rec) {
			t.Fatalf("batch dropped record %+v", rec)
		}
	}

	for _, window := range []int{1, 2, 4} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("window=%d/shards=%d", window, shards), func(t *testing.T) {
				_, got := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: window, Shards: shards}, recs)
				if len(got) != intervals {
					t.Fatalf("emitted %d intervals, want %d", len(got), intervals)
				}
				for tt, snap := range got {
					ref := batch.Snapshot(tt, nil)
					if snap.Len() != ref.Len() {
						t.Fatalf("interval %d: %d flows, batch has %d", tt, snap.Len(), ref.Len())
					}
					for i := 0; i < snap.Len(); i++ {
						if snap.Key(i) != ref.Key(i) || snap.Bandwidth(i) != ref.Bandwidth(i) {
							t.Fatalf("interval %d flow %d: (%v, %v) != (%v, %v)",
								tt, i, snap.Key(i), snap.Bandwidth(i), ref.Key(i), ref.Bandwidth(i))
						}
					}
				}
			})
		}
	}
}

// TestShardedStreamOpenQueries: TotalBandwidth / ActiveFlows barrier
// across the shards and agree with the serial accumulator (ActiveFlows
// exactly; TotalBandwidth up to the documented regrouping tolerance).
func TestShardedStreamOpenQueries(t *testing.T) {
	iv := time.Minute
	recs := synthRecords(3, 6, 25, iv)

	serial, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 8, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	for _, rec := range recs {
		if err := serial.Add(rec); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	for tt := 0; tt < 6; tt++ {
		if got, want := sharded.ActiveFlows(tt), serial.ActiveFlows(tt); got != want {
			t.Fatalf("interval %d: ActiveFlows %d != %d", tt, got, want)
		}
		got, want := sharded.TotalBandwidth(tt), serial.TotalBandwidth(tt)
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("interval %d: TotalBandwidth %v != %v", tt, got, want)
		}
	}
}

// TestShardedConfigValidation: a caller-supplied table and an absurd
// shard count are rejected; Close is idempotent.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewStreamAccumulator(StreamConfig{Interval: time.Minute, Shards: 2, Table: core.NewFlowTable()}); err == nil {
		t.Fatal("Shards>1 with a caller Table must be rejected")
	}
	if _, err := NewStreamAccumulator(StreamConfig{Interval: time.Minute, Shards: MaxShards + 1}); err == nil {
		t.Fatal("Shards > MaxShards must be rejected")
	}
	acc, err := NewStreamAccumulator(StreamConfig{Interval: time.Minute, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Table() != nil {
		t.Fatal("sharded Table() must be nil")
	}
	acc.Close()
	acc.Close()
}

// TestShardedMergeEmitAllocs pins the steady-state merge-emit path at
// zero allocations per interval: once tables and columns are warm,
// sealing an interval (flush, barrier, k-way merge, recycle) must not
// allocate.
func TestShardedMergeEmitAllocs(t *testing.T) {
	iv := time.Minute
	const flows = 64
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer acc.Close()
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error { return nil }

	prefixes := make([]netip.Prefix, flows)
	for f := range prefixes {
		prefixes[f] = netip.MustParsePrefix(fmt.Sprintf("10.9.%d.0/24", f))
	}
	interval := 0
	step := func() {
		at := start.Add(time.Duration(interval) * iv)
		for _, p := range prefixes {
			if err := acc.Add(Record{Prefix: p, Time: at, Bits: 1e4}); err != nil {
				t.Fatal(err)
			}
		}
		interval++
	}
	// Warm every slot, table and batch buffer past the growth phase.
	for i := 0; i < 8; i++ {
		step()
	}
	avg := testing.AllocsPerRun(32, step)
	if avg != 0 {
		t.Errorf("sharded accumulate+seal allocates %.2f times per interval, want 0", avg)
	}
}
