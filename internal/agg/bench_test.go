package agg

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkStreamAccumulatorSharded measures intra-link accumulation
// scaling: one heavy link (many flows per interval) streamed through
// the accumulator at increasing shard counts. The emitted snapshots
// are bit-identical at every shard count (pinned by the equivalence
// tests); what changes is where the intern/touch work runs. Compare
// ns/op across the shards= sub-benchmarks.
func BenchmarkStreamAccumulatorSharded(b *testing.B) {
	const intervals = 24
	const flows = 8192
	iv := time.Minute
	recs := synthRecords(11, intervals, flows, iv)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			emitted := 0
			for i := 0; i < b.N; i++ {
				acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 4, Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				acc.Emit = func(t int, snap *core.FlowSnapshot) error {
					emitted++
					return nil
				}
				for _, rec := range recs {
					if err := acc.Add(rec); err != nil {
						b.Fatal(err)
					}
				}
				if err := acc.Flush(); err != nil {
					b.Fatal(err)
				}
				acc.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrecords/s")
			if emitted != intervals*b.N {
				b.Fatalf("emitted %d intervals, want %d", emitted, intervals*b.N)
			}
		})
	}
}

// BenchmarkStreamAccumulator measures the bounded-memory claim: one op
// streams a whole trace of K intervals through an accumulator, and the
// reported allocs/interval must stay flat as K grows — per-interval
// cost (ring slots, emission buffers, sort scratch) is a function of
// the window and the active-flow count, never of trace length. Compare
// the allocs/interval column across the sub-benchmarks.
func BenchmarkStreamAccumulator(b *testing.B) {
	for _, intervals := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("intervals=%d", intervals), func(b *testing.B) {
			recs := synthRecords(11, intervals, 100, time.Minute)
			b.ReportAllocs()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			mallocs0 := ms.Mallocs
			b.ResetTimer()
			emitted := 0
			for i := 0; i < b.N; i++ {
				acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: time.Minute, Window: 12})
				if err != nil {
					b.Fatal(err)
				}
				acc.Emit = func(t int, snap *core.FlowSnapshot) error {
					emitted++
					return nil
				}
				for _, rec := range recs {
					if err := acc.Add(rec); err != nil {
						b.Fatal(err)
					}
				}
				if err := acc.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.Mallocs-mallocs0)/float64(intervals*b.N), "allocs/interval")
			b.ReportMetric(float64(len(recs))/float64(intervals), "records/interval")
			if emitted != intervals*b.N {
				b.Fatalf("emitted %d intervals, want %d", emitted, intervals*b.N)
			}
		})
	}
}
