package agg

import (
	"fmt"
	"math"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

var (
	start = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	pfxA  = netip.MustParsePrefix("10.0.0.0/8")
	pfxB  = netip.MustParsePrefix("192.0.2.0/24")
	pfxC  = netip.MustParsePrefix("198.51.100.0/24")
)

func TestNewSeriesPanics(t *testing.T) {
	for _, tc := range []struct {
		name      string
		interval  time.Duration
		intervals int
	}{
		{"zero interval", 0, 5},
		{"negative interval", -time.Minute, 5},
		{"zero intervals", time.Minute, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			NewSeries(start, tc.interval, tc.intervals)
		}()
	}
}

func TestAddBitsAveragesOverInterval(t *testing.T) {
	s := NewSeries(start, 5*time.Minute, 2)
	s.AddBits(pfxA, 0, 300e6) // 300 Mbit over 300 s = 1 Mbit/s
	if got := s.Bandwidth(pfxA, 0); !floatEq(got, 1e6) {
		t.Errorf("bandwidth = %v, want 1e6", got)
	}
	s.AddBits(pfxA, 0, 300e6) // accumulates
	if got := s.Bandwidth(pfxA, 0); !floatEq(got, 2e6) {
		t.Errorf("after second add = %v, want 2e6", got)
	}
	if got := s.TotalBandwidth(0); !floatEq(got, 2e6) {
		t.Errorf("total = %v, want 2e6", got)
	}
	if got := s.Bandwidth(pfxA, 1); got != 0 {
		t.Errorf("untouched interval = %v, want 0", got)
	}
}

func TestSetBandwidthMaintainsTotal(t *testing.T) {
	s := NewSeries(start, time.Minute, 1)
	s.SetBandwidth(pfxA, 0, 100)
	s.SetBandwidth(pfxB, 0, 50)
	if got := s.TotalBandwidth(0); !floatEq(got, 150) {
		t.Fatalf("total = %v, want 150", got)
	}
	s.SetBandwidth(pfxA, 0, 70) // overwrite, not accumulate
	if got := s.Bandwidth(pfxA, 0); !floatEq(got, 70) {
		t.Errorf("bandwidth = %v, want 70", got)
	}
	if got := s.TotalBandwidth(0); !floatEq(got, 120) {
		t.Errorf("total after overwrite = %v, want 120", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := NewSeries(start, time.Minute, 2)
	for _, tt := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddBits(t=%d): expected panic", tt)
				}
			}()
			s.AddBits(pfxA, tt, 1)
		}()
	}
}

func TestUnknownFlow(t *testing.T) {
	s := NewSeries(start, time.Minute, 1)
	if got := s.Bandwidth(pfxA, 0); got != 0 {
		t.Errorf("unknown flow bandwidth = %v", got)
	}
	if _, ok := s.Row(pfxA); ok {
		t.Error("unknown flow has a row")
	}
	if s.NumFlows() != 0 {
		t.Errorf("NumFlows = %d", s.NumFlows())
	}
}

func TestSnapshotSkipsZeros(t *testing.T) {
	s := NewSeries(start, time.Minute, 2)
	s.SetBandwidth(pfxA, 0, 10)
	s.SetBandwidth(pfxB, 1, 20)
	snap := s.Snapshot(0, nil)
	if snap.Len() != 1 || snap.Key(0) != pfxA || snap.Bandwidth(0) != 10 {
		t.Errorf("snapshot 0 = %v %v", snap.Keys(), snap.Bandwidths())
	}
	// Reuse: the same snapshot must be reset and refilled.
	snap2 := s.Snapshot(1, snap)
	if snap2 != snap {
		t.Error("dst snapshot not reused")
	}
	if snap.Len() != 1 || snap.Key(0) != pfxB || snap.Bandwidth(0) != 20 {
		t.Errorf("snapshot 1 (reused) = %v %v", snap.Keys(), snap.Bandwidths())
	}
}

// TestSnapshotConcurrentReaders: once aggregation is done, many
// goroutines may snapshot the same finished series at once with
// distinct dst buffers — the contract engine workers rely on when one
// link's series is classified under several schemes. The lazy sorted
// index must build race-free AND every concurrent reader must see
// exactly the columns a sequential reader sees. Run with -race.
func TestSnapshotConcurrentReaders(t *testing.T) {
	s := NewSeries(start, time.Minute, 4)
	for i := 0; i < 300; i++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		s.SetBandwidth(p, i%4, float64(1+i))
	}
	// Sequential reference, taken before any concurrent access.
	want := make([]*core.FlowSnapshot, 4)
	for t0 := 0; t0 < 4; t0++ {
		want[t0] = s.Snapshot(t0, nil)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine owns a distinct dst buffer, reused across
			// its own intervals only.
			var snap *core.FlowSnapshot
			for t0 := 0; t0 < 4; t0++ {
				snap = s.Snapshot(t0, snap)
				if !snap.IsSorted() {
					t.Error("unsorted snapshot from concurrent reader")
					return
				}
				ref := want[t0]
				if snap.Len() != ref.Len() {
					t.Errorf("interval %d: concurrent len %d != sequential %d", t0, snap.Len(), ref.Len())
					return
				}
				for i := 0; i < snap.Len(); i++ {
					if snap.Key(i) != ref.Key(i) || snap.Bandwidth(i) != ref.Bandwidth(i) {
						t.Errorf("interval %d: column %d diverges from sequential reference", t0, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotSortedOrder: snapshots come out in ComparePrefix order no
// matter the insertion order, pre-sorted for the pipeline, and the lazy
// sorted index picks up flows added after a snapshot was taken.
func TestSnapshotSortedOrder(t *testing.T) {
	s := NewSeries(start, time.Minute, 1)
	for _, p := range []netip.Prefix{pfxB, pfxA} { // reverse order
		s.SetBandwidth(p, 0, 1)
	}
	snap := s.Snapshot(0, nil)
	if !snap.IsSorted() || snap.Len() != 2 {
		t.Fatalf("sorted=%v len=%d", snap.IsSorted(), snap.Len())
	}
	if core.ComparePrefix(snap.Key(0), snap.Key(1)) >= 0 {
		t.Errorf("order: %v before %v", snap.Key(0), snap.Key(1))
	}
	// A flow added after the first snapshot must appear, in order.
	early := netip.MustParsePrefix("1.0.0.0/8")
	s.SetBandwidth(early, 0, 2)
	snap = s.Snapshot(0, snap)
	if snap.Len() != 3 || snap.Key(0) != early {
		t.Errorf("late-added flow misplaced: %v", snap.Keys())
	}
}

func TestIntervalTimeAndOf(t *testing.T) {
	s := NewSeries(start, 5*time.Minute, 12)
	if got := s.IntervalTime(3); !got.Equal(start.Add(15 * time.Minute)) {
		t.Errorf("IntervalTime(3) = %v", got)
	}
	cases := []struct {
		ts   time.Time
		want int
	}{
		{start, 0},
		{start.Add(4*time.Minute + 59*time.Second), 0},
		{start.Add(5 * time.Minute), 1},
		{start.Add(59*time.Minute + 59*time.Second), 11},
		{start.Add(time.Hour), -1},
		{start.Add(-time.Second), -1},
	}
	for _, tc := range cases {
		if got := s.IntervalOf(tc.ts); got != tc.want {
			t.Errorf("IntervalOf(%v) = %d, want %d", tc.ts, got, tc.want)
		}
	}
}

func TestActiveFlows(t *testing.T) {
	s := NewSeries(start, time.Minute, 2)
	s.SetBandwidth(pfxA, 0, 10)
	s.SetBandwidth(pfxB, 0, 20)
	s.SetBandwidth(pfxC, 1, 30)
	if got := s.ActiveFlows(0); got != 2 {
		t.Errorf("ActiveFlows(0) = %d, want 2", got)
	}
	if got := s.ActiveFlows(1); got != 1 {
		t.Errorf("ActiveFlows(1) = %d, want 1", got)
	}
}

// TestActiveFlowsOverwriteToZero: the incremental counters must track
// zero↔positive transitions, in particular SetBandwidth overwriting a
// positive cell back to zero — the edge an append-only counter would
// miss.
func TestActiveFlowsOverwriteToZero(t *testing.T) {
	s := NewSeries(start, time.Minute, 1)
	s.SetBandwidth(pfxA, 0, 10)
	s.SetBandwidth(pfxB, 0, 20)
	if got := s.ActiveFlows(0); got != 2 {
		t.Fatalf("ActiveFlows = %d, want 2", got)
	}
	s.SetBandwidth(pfxA, 0, 0) // overwrite to zero: flow goes idle
	if got := s.ActiveFlows(0); got != 1 {
		t.Errorf("after overwrite to zero: ActiveFlows = %d, want 1", got)
	}
	s.SetBandwidth(pfxA, 0, 0) // idempotent: still idle
	if got := s.ActiveFlows(0); got != 1 {
		t.Errorf("after second zero overwrite: ActiveFlows = %d, want 1", got)
	}
	s.SetBandwidth(pfxA, 0, 5) // revives
	if got := s.ActiveFlows(0); got != 2 {
		t.Errorf("after revive: ActiveFlows = %d, want 2", got)
	}
	// AddBits transitions too: a fresh flow becomes active once.
	s.AddBits(pfxC, 0, 60)
	s.AddBits(pfxC, 0, 60)
	if got := s.ActiveFlows(0); got != 3 {
		t.Errorf("after AddBits: ActiveFlows = %d, want 3", got)
	}
	// The counter must agree with a direct row scan.
	scan := 0
	for _, p := range s.Flows() {
		if s.Bandwidth(p, 0) > 0 {
			scan++
		}
	}
	if got := s.ActiveFlows(0); got != scan {
		t.Errorf("counter %d != row scan %d", got, scan)
	}
}

func TestRebin(t *testing.T) {
	s := NewSeries(start, time.Minute, 6)
	// Flow A: 60 bit/s for all six minutes -> 60 bit/s at any bin width.
	for tt := 0; tt < 6; tt++ {
		s.SetBandwidth(pfxA, tt, 60)
	}
	// Flow B: 120 bit/s in minute 0 only -> 40 bit/s over [0,3).
	s.SetBandwidth(pfxB, 0, 120)

	r, dropped, err := s.Rebin(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0 for an evenly dividing rebin", dropped)
	}
	if r.Intervals != 2 || r.Interval != 3*time.Minute {
		t.Fatalf("geometry: %d x %v", r.Intervals, r.Interval)
	}
	if got := r.Bandwidth(pfxA, 0); !floatEq(got, 60) {
		t.Errorf("A[0] = %v, want 60 (time average)", got)
	}
	if got := r.Bandwidth(pfxB, 0); !floatEq(got, 40) {
		t.Errorf("B[0] = %v, want 40", got)
	}
	if got := r.Bandwidth(pfxB, 1); got != 0 {
		t.Errorf("B[1] = %v, want 0", got)
	}
	// Totals are conserved (time-weighted).
	if got, want := r.TotalBandwidth(0), (60.0*3+120)/3; !floatEq(got, want) {
		t.Errorf("total[0] = %v, want %v", got, want)
	}
}

func TestRebinIdentity(t *testing.T) {
	s := NewSeries(start, time.Minute, 4)
	r, dropped, err := s.Rebin(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r != s {
		t.Error("identity rebin must return the same series")
	}
	if dropped != 0 {
		t.Errorf("identity rebin dropped = %d, want 0", dropped)
	}
}

// TestRebinReportsTruncation: when Intervals % k != 0 the trailing
// intervals cannot fill a whole coarse slot; they are dropped and the
// count is surfaced instead of silently vanishing (regression for the
// historical silent truncation).
func TestRebinReportsTruncation(t *testing.T) {
	s := NewSeries(start, time.Minute, 7) // 7 = 2*3 + 1 trailing
	for tt := 0; tt < 7; tt++ {
		s.SetBandwidth(pfxA, tt, 30)
	}
	s.SetBandwidth(pfxB, 6, 999) // lives only in the truncated tail
	r, dropped, err := s.Rebin(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if r.Intervals != 2 {
		t.Errorf("Intervals = %d, want 2", r.Intervals)
	}
	if _, ok := r.Row(pfxB); ok {
		t.Error("flow living only in truncated tail intervals must not appear")
	}
	if got := r.Bandwidth(pfxA, 1); !floatEq(got, 30) {
		t.Errorf("A[1] = %v, want 30", got)
	}
}

func TestRebinErrors(t *testing.T) {
	s := NewSeries(start, 2*time.Minute, 4)
	if _, _, err := s.Rebin(3 * time.Minute); err == nil {
		t.Error("non-multiple interval accepted")
	}
	if _, _, err := s.Rebin(-2 * time.Minute); err == nil {
		t.Error("negative interval accepted")
	}
	short := NewSeries(start, time.Minute, 2)
	if _, _, err := short.Rebin(3 * time.Minute); err == nil {
		t.Error("rebin beyond series length accepted")
	}
}

func TestSortedFlows(t *testing.T) {
	s := NewSeries(start, time.Minute, 2)
	s.SetBandwidth(pfxA, 0, 10)
	s.SetBandwidth(pfxB, 0, 100)
	s.SetBandwidth(pfxC, 1, 50)
	got := s.SortedFlows()
	if len(got) != 3 || got[0] != pfxB || got[1] != pfxC || got[2] != pfxA {
		t.Errorf("SortedFlows = %v", got)
	}
}

// TestTotalsMatchRowSums: invariant linking the cached per-interval
// totals to the row data, under arbitrary Set/Add sequences.
func TestTotalsMatchRowSums(t *testing.T) {
	prefixes := []netip.Prefix{pfxA, pfxB, pfxC}
	prop := func(ops []struct {
		Set      bool
		Flow     uint8
		Interval uint8
		Value    float64
	}) bool {
		s := NewSeries(start, time.Minute, 4)
		for _, op := range ops {
			v := math.Abs(op.Value)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep values in a physically plausible bandwidth range;
			// sums near MaxFloat64 overflow and prove nothing.
			v = math.Mod(v, 1e12)
			p := prefixes[int(op.Flow)%len(prefixes)]
			tt := int(op.Interval) % 4
			if op.Set {
				s.SetBandwidth(p, tt, v)
			} else {
				s.AddBits(p, tt, v)
			}
		}
		for tt := 0; tt < 4; tt++ {
			var sum float64
			active := 0
			for _, p := range prefixes {
				bw := s.Bandwidth(p, tt)
				sum += bw
				if bw > 0 {
					active++
				}
			}
			if !floatEq2(sum, s.TotalBandwidth(tt), 1e-6) {
				return false
			}
			// The incremental active counter must match a row scan
			// under arbitrary Set/Add sequences.
			if s.ActiveFlows(tt) != active {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func floatEq(a, b float64) bool { return floatEq2(a, b, 1e-9) }

func floatEq2(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
