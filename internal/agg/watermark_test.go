package agg

import (
	"net/netip"
	"testing"
	"time"
)

// TestStreamWatermarkLag: the watermark is the newest bit-carrying
// instant accepted, and the lag is its distance past the sealed edge.
func TestStreamWatermarkLag(t *testing.T) {
	const iv = time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.0.0.0/24")
	if acc.WatermarkLag() != 0 || !acc.Newest().IsZero() {
		t.Fatalf("fresh accumulator lag=%v newest=%v", acc.WatermarkLag(), acc.Newest())
	}

	// A point record 30s in: watermark 30s past the sealed edge (0).
	if err := acc.Add(Record{Prefix: p, Time: start.Add(30 * time.Second), Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if got := acc.WatermarkLag(); got != 30*time.Second {
		t.Errorf("lag = %v, want 30s", got)
	}

	// A span record's watermark is its last bit-carrying instant.
	if err := acc.Add(Record{Prefix: p, Time: start.Add(40 * time.Second), Span: 20 * time.Second, Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if got := acc.WatermarkLag(); got != time.Minute-time.Nanosecond {
		t.Errorf("lag = %v, want 1m0s-1ns", got)
	}

	// An out-of-order record must not move the watermark backwards.
	if err := acc.Add(Record{Prefix: p, Time: start.Add(10 * time.Second), Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if got := acc.WatermarkLag(); got != time.Minute-time.Nanosecond {
		t.Errorf("lag after reordered record = %v, want unchanged", got)
	}

	// Advancing into interval 3 seals interval 0: the sealed edge moves
	// under the watermark.
	newest := start.Add(3*iv + 15*time.Second)
	if err := acc.Add(Record{Prefix: p, Time: newest, Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if acc.ClosedThrough() != 1 {
		t.Fatalf("ClosedThrough = %d, want 1", acc.ClosedThrough())
	}
	if got, want := acc.WatermarkLag(), newest.Sub(start.Add(iv)); got != want {
		t.Errorf("lag = %v, want %v", got, want)
	}
	if !acc.Newest().Equal(newest) {
		t.Errorf("Newest = %v, want %v", acc.Newest(), newest)
	}

	// A far-future (corrupt) timestamp must not poison the watermark.
	if err := acc.Add(Record{Prefix: p, Time: start.Add(100000 * iv), Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if acc.Stats().FarFuture != 1 {
		t.Fatalf("FarFuture = %d", acc.Stats().FarFuture)
	}
	if !acc.Newest().Equal(newest) {
		t.Errorf("corrupt record moved watermark to %v", acc.Newest())
	}

	// Flush seals through the watermark: lag clamps to zero.
	if err := acc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := acc.WatermarkLag(); got != 0 {
		t.Errorf("post-flush lag = %v, want 0", got)
	}
}

// TestStreamWatermarkPreOrigin: records before an explicit Start are
// dropped as late and must not touch the watermark (their end interval
// is -1, before the far-future gate).
func TestStreamWatermarkPreOrigin(t *testing.T) {
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.0.0.0/24")
	if err := acc.Add(Record{Prefix: p, Time: start.Add(-time.Hour), Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if acc.Stats().Late != 1 {
		t.Fatalf("Late = %d", acc.Stats().Late)
	}
	if !acc.Newest().IsZero() || acc.WatermarkLag() != 0 {
		t.Errorf("pre-origin record set watermark: newest=%v lag=%v", acc.Newest(), acc.WatermarkLag())
	}
}
