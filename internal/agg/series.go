// Package agg implements the measurement pipeline of the reproduction:
// it attributes decoded packets to BGP prefix flows by longest-prefix
// match, accumulates bytes over fixed measurement intervals (the paper's
// default is 5 minutes) and produces per-flow average-bandwidth series —
// the x_j(t) values every classification scheme consumes.
//
// A Series has two phases. During aggregation it is a mutable row-major
// flow×interval matrix (AddBits, SetBandwidth). Seal ends that phase:
// the first post-seal emission lazily builds an interval-major sparse
// index so that each per-interval Snapshot walks exactly that
// interval's non-zero cells instead of scanning every row, with output
// bitwise identical to the unsealed path. Mutating a sealed series
// unseals it and drops the index (and panics under
// core.DebugInvariants, where it is treated as a programmer error).
//
// The streaming accumulator can additionally split one link's
// accumulation across P shard workers (StreamConfig.Shards): each flow
// is assigned to exactly one shard by a hash of its prefix, so the
// per-flow float summation order is untouched, and sealed intervals
// are reassembled by a k-way merge of the shards' rank-sorted columns
// — emitted snapshots are bitwise identical to the serial path at any
// shard count. See StreamConfig.Shards and ARCHITECTURE.md
// ("Intra-link parallelism").
package agg

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Series is a flow-by-interval bandwidth matrix: for each flow (a BGP
// prefix) it stores the average bandwidth, in bits per second, during
// each measurement interval.
type Series struct {
	// Interval is the measurement interval length Delta.
	Interval time.Duration
	// Start is the timestamp of the left edge of interval 0.
	Start time.Time
	// Intervals is the number of time slots.
	Intervals int

	flows  map[netip.Prefix]int // prefix -> row index
	keys   []netip.Prefix       // row index -> prefix
	rows   [][]float64          // bandwidth in bit/s, len = Intervals
	total  []float64            // per-interval total bandwidth in bit/s
	active []int                // per-interval count of rows with bw > 0
	// sortedIdx caches row indices in core.ComparePrefix order so
	// Snapshot can emit sorted columns without a per-interval sort; it
	// is rebuilt lazily — under sortedMu, because a fully aggregated
	// series may be snapshotted by several engine workers at once
	// (e.g. one link classified under two schemes) — when flows were
	// added since the last build.
	sortedMu  sync.Mutex
	sortedIdx []int

	// sealed marks the series immutable. Sealing is what authorizes the
	// interval-major index below: a sealed series may be snapshotted
	// concurrently, and any later AddBits/SetBandwidth unseals (dropping
	// the index) — or panics under core.DebugInvariants — instead of
	// serving stale views. sealed is written by Seal (under sortedMu)
	// and by mutators, which by contract never run concurrently with
	// snapshotting.
	sealed bool
	// idx is the lazily built interval-major CSR view of the matrix;
	// non-nil only while sealed. Guarded by sortedMu.
	idx *intervalIndex
}

// intervalIndex is an interval-major CSR index over the nonzero cells
// of the flow × interval matrix: interval t's active flows live in
// rows[offsets[t]:offsets[t+1]] (row indices, in core.ComparePrefix
// order of their prefixes) with bandwidths in the parallel bw array.
// Emission of interval t is then O(active(t)) sequential reads instead
// of an O(flows) strided scan over every row.
type intervalIndex struct {
	offsets []int64
	rows    []int32
	bw      []float64
}

// NewSeries creates an empty series with the given geometry.
func NewSeries(start time.Time, interval time.Duration, intervals int) *Series {
	if interval <= 0 {
		panic(fmt.Sprintf("agg: NewSeries: non-positive interval %v", interval))
	}
	if intervals <= 0 {
		panic(fmt.Sprintf("agg: NewSeries: non-positive interval count %d", intervals))
	}
	return &Series{
		Interval:  interval,
		Start:     start,
		Intervals: intervals,
		flows:     make(map[netip.Prefix]int),
		total:     make([]float64, intervals),
		active:    make([]int, intervals),
	}
}

// NumFlows reports the number of flows with at least one observation.
func (s *Series) NumFlows() int { return len(s.keys) }

// Flows returns the flow keys in row order. The slice is shared; do not
// modify.
func (s *Series) Flows() []netip.Prefix { return s.keys }

// row returns (creating if needed) the row for prefix p.
func (s *Series) row(p netip.Prefix) []float64 {
	if i, ok := s.flows[p]; ok {
		return s.rows[i]
	}
	r := make([]float64, s.Intervals)
	s.flows[p] = len(s.rows)
	s.keys = append(s.keys, p)
	s.rows = append(s.rows, r)
	return r
}

// Seal marks the series immutable and enables the interval-major
// snapshot index: the first Snapshot/SnapshotIDs after Seal builds a
// CSR view of the nonzero cells and every subsequent emission walks
// only that interval's active flows. Sealing is idempotent. A later
// AddBits/SetBandwidth unseals the series and drops the index (the
// dense scan keeps working), or panics under core.DebugInvariants —
// post-seal mutation is a programming error the invariant build turns
// into a crash rather than a stale view.
func (s *Series) Seal() {
	s.sortedMu.Lock()
	s.sealed = true
	s.sortedMu.Unlock()
}

// Sealed reports whether the series is currently sealed.
func (s *Series) Sealed() bool {
	s.sortedMu.Lock()
	defer s.sortedMu.Unlock()
	return s.sealed
}

// mutate gates every write: mutating a sealed series panics under
// core.DebugInvariants and otherwise unseals, invalidating the
// interval index so no stale view can be served. Mutators never run
// concurrently with snapshotting (the Snapshot contract), so the flag
// write needs no lock here.
func (s *Series) mutate() {
	if !s.sealed {
		return
	}
	if core.DebugInvariants {
		panic("agg: Series mutated after Seal")
	}
	s.sealed = false
	s.idx = nil
}

// AddBits adds count bits to flow p in interval t, updating the total.
// Out-of-range intervals panic: the caller owns interval bounds.
func (s *Series) AddBits(p netip.Prefix, t int, bits float64) {
	if t < 0 || t >= s.Intervals {
		panic(fmt.Sprintf("agg: AddBits: interval %d out of [0,%d)", t, s.Intervals))
	}
	s.mutate()
	bw := bits / s.Interval.Seconds()
	r := s.row(p)
	before := r[t]
	r[t] += bw
	s.total[t] += bw
	s.noteTransition(t, before, r[t])
}

// noteTransition maintains the per-interval active-flow counters across
// a cell update, so ActiveFlows is O(1) instead of an O(flows) scan.
func (s *Series) noteTransition(t int, before, after float64) {
	switch {
	case before <= 0 && after > 0:
		s.active[t]++
	case before > 0 && after <= 0:
		s.active[t]--
	}
}

// SetBandwidth sets flow p's bandwidth in interval t directly (bit/s),
// used by the synthetic generator's fast path.
func (s *Series) SetBandwidth(p netip.Prefix, t int, bw float64) {
	if t < 0 || t >= s.Intervals {
		panic(fmt.Sprintf("agg: SetBandwidth: interval %d out of [0,%d)", t, s.Intervals))
	}
	s.mutate()
	r := s.row(p)
	before := r[t]
	s.total[t] += bw - before
	r[t] = bw
	s.noteTransition(t, before, bw)
}

// Bandwidth returns x_p(t) in bit/s; zero for unknown flows.
func (s *Series) Bandwidth(p netip.Prefix, t int) float64 {
	if i, ok := s.flows[p]; ok {
		return s.rows[i][t]
	}
	return 0
}

// Row returns the full bandwidth series of flow p (shared storage), and
// whether the flow exists.
func (s *Series) Row(p netip.Prefix) ([]float64, bool) {
	if i, ok := s.flows[p]; ok {
		return s.rows[i], true
	}
	return nil, false
}

// TotalBandwidth returns the aggregate link load in interval t (bit/s).
func (s *Series) TotalBandwidth(t int) float64 { return s.total[t] }

// sortedRows returns row indices in core.ComparePrefix order. Flows are
// only ever added, so a length mismatch is the exact staleness signal;
// the sort cost is amortized across all intervals classified between
// flow arrivals. The rebuild is mutex-guarded so concurrent Snapshot
// calls on a no-longer-mutated series are safe.
func (s *Series) sortedRows() []int {
	s.sortedMu.Lock()
	defer s.sortedMu.Unlock()
	return s.sortedRowsLocked()
}

// sortedRowsLocked is sortedRows for callers already holding sortedMu.
func (s *Series) sortedRowsLocked() []int {
	if len(s.sortedIdx) != len(s.keys) {
		s.sortedIdx = s.sortedIdx[:0]
		for i := range s.keys {
			s.sortedIdx = append(s.sortedIdx, i)
		}
		sort.Slice(s.sortedIdx, func(a, b int) bool {
			return core.ComparePrefix(s.keys[s.sortedIdx[a]], s.keys[s.sortedIdx[b]]) < 0
		})
	}
	return s.sortedIdx
}

// intervalIdx returns the CSR interval index, building it on first use
// after Seal. It returns nil when the series is unsealed (callers fall
// back to the dense row scan) or too large to index with int32 row
// positions. The build is a two-pass count/fill: the fill iterates rows
// in sorted-prefix order, so each interval's slice lists its active
// rows in exactly the order the dense scan would emit them —
// byte-identical snapshots, including float summation order downstream.
func (s *Series) intervalIdx() *intervalIndex {
	s.sortedMu.Lock()
	defer s.sortedMu.Unlock()
	if !s.sealed {
		return nil
	}
	if s.idx != nil {
		return s.idx
	}
	if len(s.keys) > math.MaxInt32 {
		return nil
	}
	idx := &intervalIndex{offsets: make([]int64, s.Intervals+1)}
	counts := idx.offsets[1:] // counts[t] accumulates nnz(t), then prefix-sums in place
	for i := range s.rows {
		for t, bw := range s.rows[i] {
			if bw > 0 {
				counts[t]++
			}
		}
	}
	for t := 1; t < s.Intervals; t++ {
		counts[t] += counts[t-1]
	}
	nnz := idx.offsets[s.Intervals]
	idx.rows = make([]int32, nnz)
	idx.bw = make([]float64, nnz)
	cur := make([]int64, s.Intervals)
	copy(cur, idx.offsets[:s.Intervals])
	for _, i := range s.sortedRowsLocked() {
		for t, bw := range s.rows[i] {
			if bw > 0 {
				c := cur[t]
				idx.rows[c] = int32(i)
				idx.bw[c] = bw
				cur[t] = c + 1
			}
		}
	}
	s.idx = idx
	return idx
}

// Snapshot fills dst (allocating when nil) with interval t's non-zero
// flow bandwidths in sorted prefix order — the columnar per-interval
// view the online classifier consumes, emitted pre-sorted so the
// pipeline never re-sorts. The returned snapshot is reusable: pass it
// back in for the next interval to avoid allocation. Once aggregation
// is done (no more AddBits/SetBandwidth), Snapshot is safe to call from
// multiple goroutines with distinct dst snapshots — the engine relies
// on this when one link's series is classified under several schemes.
func (s *Series) Snapshot(t int, dst *core.FlowSnapshot) *core.FlowSnapshot {
	if dst == nil {
		dst = core.NewFlowSnapshot(len(s.keys))
	}
	dst.Reset()
	if ix := s.intervalIdx(); ix != nil {
		for k := ix.offsets[t]; k < ix.offsets[t+1]; k++ {
			dst.Append(s.keys[ix.rows[k]], ix.bw[k])
		}
		return dst
	}
	for _, i := range s.sortedRows() {
		if bw := s.rows[i][t]; bw > 0 {
			dst.Append(s.keys[i], bw)
		}
	}
	return dst
}

// IntervalBandwidths returns interval t's non-zero bandwidth column as
// a zero-copy view into the CSR index — the same values, in the same
// sorted-prefix order, that Snapshot(t) would append, without emitting
// keys. It returns nil when the series is unsealed or unindexable
// (callers fall back to snapshot emission). The view is read-only and
// capacity-capped; it stays valid for the life of the series. This is
// the batch detector prepass's input: threshold detection consumes only
// the bandwidth column, so the engine can precompute θ(t) columns
// without paying for full snapshots.
func (s *Series) IntervalBandwidths(t int) []float64 {
	ix := s.intervalIdx()
	if ix == nil {
		return nil
	}
	lo, hi := ix.offsets[t], ix.offsets[t+1]
	return ix.bw[lo:hi:hi]
}

// InternRows interns every flow row into tbl and returns the row→ID
// column (reusing dst's storage), aligned with Flows(). Interning once
// per link — instead of once per flow per interval — is what lets
// SnapshotIDs emit dense-ID snapshots with zero hashing on the
// per-interval path. The table is pinned: the returned column must
// keep resolving for the whole run, so classifier evictions must not
// recycle IDs out from under it. The table is single-goroutine:
// callers sharing one series across several pipelines build one row→ID
// column per pipeline against that pipeline's own table.
func (s *Series) InternRows(tbl *core.FlowTable, dst []uint32) []uint32 {
	tbl.Pin()
	dst = dst[:0]
	for _, p := range s.keys {
		dst = append(dst, tbl.Intern(p))
	}
	return dst
}

// SnapshotIDs is Snapshot with a dense-ID column attached from a
// row→ID mapping previously built by InternRows against tbl: identical
// keys, bandwidths and float summation order, plus ids the classifier
// can index its flow columns by directly.
func (s *Series) SnapshotIDs(t int, dst *core.FlowSnapshot, tbl *core.FlowTable, rowIDs []uint32) *core.FlowSnapshot {
	if len(rowIDs) != len(s.keys) {
		panic(fmt.Sprintf("agg: SnapshotIDs: %d row IDs for %d flows (stale InternRows?)", len(rowIDs), len(s.keys)))
	}
	if dst == nil {
		dst = core.NewFlowSnapshot(len(s.keys))
	}
	dst.Reset()
	dst.SetIDTable(tbl)
	if ix := s.intervalIdx(); ix != nil {
		for k := ix.offsets[t]; k < ix.offsets[t+1]; k++ {
			i := ix.rows[k]
			dst.AppendID(s.keys[i], rowIDs[i], ix.bw[k])
		}
		return dst
	}
	for _, i := range s.sortedRows() {
		if bw := s.rows[i][t]; bw > 0 {
			dst.AppendID(s.keys[i], rowIDs[i], bw)
		}
	}
	return dst
}

// IntervalTime returns the left edge of interval t.
func (s *Series) IntervalTime(t int) time.Time {
	return s.Start.Add(time.Duration(t) * s.Interval)
}

// IntervalOf maps a timestamp to its interval index, or -1 when out of
// range.
func (s *Series) IntervalOf(ts time.Time) int {
	d := ts.Sub(s.Start)
	if d < 0 {
		return -1
	}
	t := int(d / s.Interval)
	if t >= s.Intervals {
		return -1
	}
	return t
}

// ActiveFlows reports the number of flows with positive bandwidth in
// interval t. It is O(1): the counters are maintained incrementally by
// AddBits/SetBandwidth (including overwrite-to-zero transitions), not
// by scanning every flow row.
func (s *Series) ActiveFlows(t int) int {
	if t < 0 || t >= s.Intervals {
		panic(fmt.Sprintf("agg: ActiveFlows: interval %d out of [0,%d)", t, s.Intervals))
	}
	return s.active[t]
}

// Rebin aggregates the series to a coarser interval that must be an
// integer multiple of the current one; bandwidths are time-averaged.
// Used for the paper's interval-sensitivity check (1, 5, 10 minutes).
//
// When Intervals is not a multiple of the coarsening factor k, the
// trailing Intervals mod k source intervals do not fill a whole coarse
// slot and are dropped from the result; the second return value reports
// how many were truncated (0 when the lengths divide evenly, and for
// the identity rebin).
func (s *Series) Rebin(interval time.Duration) (*Series, int, error) {
	if interval == s.Interval {
		return s, 0, nil
	}
	if interval <= 0 || interval%s.Interval != 0 {
		return nil, 0, fmt.Errorf("agg: Rebin: %v is not a positive multiple of %v", interval, s.Interval)
	}
	k := int(interval / s.Interval)
	if s.Intervals/k == 0 {
		return nil, 0, fmt.Errorf("agg: Rebin: series too short (%d slots) for factor %d", s.Intervals, k)
	}
	out := NewSeries(s.Start, interval, s.Intervals/k)
	for i, p := range s.keys {
		row := s.rows[i]
		for t := 0; t < out.Intervals; t++ {
			var sum float64
			for j := 0; j < k; j++ {
				sum += row[t*k+j]
			}
			if sum > 0 {
				out.SetBandwidth(p, t, sum/float64(k))
			}
		}
	}
	return out, s.Intervals % k, nil
}

// SortedFlows returns flow keys sorted by total transmitted volume,
// descending; useful for reports.
func (s *Series) SortedFlows() []netip.Prefix {
	type kv struct {
		p   netip.Prefix
		vol float64
	}
	vols := make([]kv, len(s.keys))
	for i, p := range s.keys {
		var v float64
		for _, bw := range s.rows[i] {
			v += bw
		}
		vols[i] = kv{p, v}
	}
	sort.Slice(vols, func(i, j int) bool { return vols[i].vol > vols[j].vol })
	out := make([]netip.Prefix, len(vols))
	for i, e := range vols {
		out[i] = e.p
	}
	return out
}
