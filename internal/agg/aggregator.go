package agg

import (
	"errors"
	"io"
	"time"

	"repro/internal/bgp"
	"repro/internal/packet"
)

// Aggregator consumes decoded packets and fills a Series, attributing
// each packet to its BGP destination prefix by longest-prefix match —
// the paper's flow granularity.
type Aggregator struct {
	table  *bgp.Table
	series *Series

	// Stats counts attribution outcomes.
	Stats AggregatorStats
}

// AggregatorStats counts packet attribution outcomes.
type AggregatorStats struct {
	Packets    uint64 // packets presented
	Routed     uint64 // attributed to a prefix
	Unrouted   uint64 // no covering route (excluded, as in the paper)
	OutOfRange uint64 // timestamp outside the series window
}

// NewAggregator creates an aggregator writing into series.
func NewAggregator(table *bgp.Table, series *Series) *Aggregator {
	return &Aggregator{table: table, series: series}
}

// Series returns the series under construction.
func (a *Aggregator) Series() *Series { return a.series }

// AddPacket attributes one decoded packet. Wire length is accounted (the
// paper measures link bandwidth). Packets destined to unrouted space or
// timestamped outside the window are counted and dropped.
func (a *Aggregator) AddPacket(ts time.Time, sum packet.Summary) {
	a.Stats.Packets++
	t := a.series.IntervalOf(ts)
	if t < 0 {
		a.Stats.OutOfRange++
		return
	}
	route, ok := a.table.Lookup(sum.DstIP)
	if !ok {
		a.Stats.Unrouted++
		return
	}
	a.Stats.Routed++
	a.series.AddBits(route.Prefix, t, float64(sum.WireLength)*8)
}

// ReadPcap streams an entire pcap capture through parser and aggregator.
// It returns the number of frames processed. Decode failures of single
// frames are tolerated (counted in parser stats); file-level corruption
// aborts with an error.
func ReadPcap(r io.Reader, table *bgp.Table, series *Series) (int, AggregatorStats, error) {
	src, err := NewPcapPacketSource(r)
	if err != nil {
		return 0, AggregatorStats{}, err
	}
	aggr := NewAggregator(table, series)
	for {
		ts, sum, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return int(src.ParserStats().Frames), aggr.Stats, err
		}
		aggr.AddPacket(ts, sum)
	}
	return int(src.ParserStats().Frames), aggr.Stats, nil
}
