package agg

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
)

// synthRecords builds a deterministic record mix over the given number
// of intervals: per-interval point records (packets) plus span records
// crossing interval boundaries (flow records), seeded and reproducible.
func synthRecords(seed int64, intervals, flows int, interval time.Duration) []Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []Record
	for t := 0; t < intervals; t++ {
		at := start.Add(time.Duration(t) * interval)
		for f := 0; f < flows; f++ {
			p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", f/256, f%256))
			if rng.Float64() < 0.2 {
				continue // idle this interval
			}
			off := time.Duration(rng.Int63n(int64(interval)))
			rec := Record{Prefix: p, Time: at.Add(off), Bits: 1e4 * (1 + rng.Float64())}
			if t < intervals-1 && rng.Float64() < 0.3 {
				// A span record reaching into the next interval (never
				// beyond the last one, so batch and stream see the same
				// horizon).
				rec.Span = time.Duration(rng.Int63n(int64(interval)))
			}
			recs = append(recs, rec)
		}
	}
	return recs
}

// collectStream drains recs through an accumulator, returning one owned
// snapshot copy per emitted interval.
func collectStream(t *testing.T, cfg StreamConfig, recs []Record) (*StreamAccumulator, []*core.FlowSnapshot) {
	t.Helper()
	acc, err := NewStreamAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(acc.Close)
	var got []*core.FlowSnapshot
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error {
		if tt != len(got) {
			t.Fatalf("emitted interval %d, want %d (in order, gap-free)", tt, len(got))
		}
		// The emitted snapshot is producer-owned; copy it out.
		own := core.NewFlowSnapshot(snap.Len())
		for i := 0; i < snap.Len(); i++ {
			own.Append(snap.Key(i), snap.Bandwidth(i))
		}
		got = append(got, own)
		return nil
	}
	for _, rec := range recs {
		if err := acc.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := acc.Flush(); err != nil {
		t.Fatal(err)
	}
	return acc, got
}

// TestStreamMatchesSeries is the accumulator's core contract: fed the
// same record sequence, the streaming path must emit snapshots
// bit-identical (keys, bandwidths, totals) to the batch Series path.
func TestStreamMatchesSeries(t *testing.T) {
	const intervals = 20
	iv := time.Minute
	recs := synthRecords(7, intervals, 40, iv)

	batch := NewSeries(start, iv, intervals)
	for _, rec := range recs {
		if !batch.AddRecord(rec) {
			t.Fatalf("batch dropped record %+v", rec)
		}
	}

	acc, got := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: 4}, recs)
	if st := acc.Stats(); st.Late != 0 || st.LateBits != 0 {
		t.Fatalf("unexpected late drops: %+v", st)
	}
	if len(got) != intervals {
		t.Fatalf("emitted %d intervals, want %d", len(got), intervals)
	}
	for tt, snap := range got {
		ref := batch.Snapshot(tt, nil)
		if snap.Len() != ref.Len() {
			t.Fatalf("interval %d: %d flows, batch has %d", tt, snap.Len(), ref.Len())
		}
		for i := 0; i < snap.Len(); i++ {
			if snap.Key(i) != ref.Key(i) {
				t.Fatalf("interval %d flow %d: key %v != %v", tt, i, snap.Key(i), ref.Key(i))
			}
			if snap.Bandwidth(i) != ref.Bandwidth(i) {
				t.Fatalf("interval %d flow %d: bw %v != %v (must be bit-identical)", tt, i, snap.Bandwidth(i), ref.Bandwidth(i))
			}
		}
		if snap.TotalLoad() != ref.TotalLoad() {
			t.Fatalf("interval %d: total %v != %v", tt, snap.TotalLoad(), ref.TotalLoad())
		}
	}
}

// TestStreamLateRecords: bits reaching behind the closed edge are
// dropped and counted, never silently folded into a wrong interval.
func TestStreamLateRecords(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error { closed++; return nil }

	// Interval 5 opens [4,5]; intervals 0..3 close.
	if err := acc.Add(Record{Prefix: pfxA, Time: start.Add(5 * iv), Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if acc.ClosedThrough() != 4 || closed != 4 {
		t.Fatalf("closed through %d (%d emits), want 4", acc.ClosedThrough(), closed)
	}
	// A point record for interval 0 is now entirely late.
	if err := acc.Add(Record{Prefix: pfxB, Time: start, Bits: 16}); err != nil {
		t.Fatal(err)
	}
	st := acc.Stats()
	if st.Late != 1 || st.LateBits != 16 {
		t.Errorf("late = %d (%v bits), want 1 (16 bits)", st.Late, st.LateBits)
	}
	// A span reaching from closed interval 3 into open interval 4: the
	// open half lands, the closed half is counted as dropped bits.
	if err := acc.Add(Record{Prefix: pfxB, Time: start.Add(3*iv + 30*time.Second), Span: iv, Bits: 100}); err != nil {
		t.Fatal(err)
	}
	st = acc.Stats()
	if st.Late != 1 {
		t.Errorf("partially-late record counted as fully late: %+v", st)
	}
	if want := 16 + 50.0; st.LateBits != want {
		t.Errorf("LateBits = %v, want %v", st.LateBits, want)
	}
	if got := acc.TotalBandwidth(4); !floatEq(got, 50.0/iv.Seconds()) {
		t.Errorf("open-interval bandwidth = %v, want the surviving half", got)
	}
}

// TestStreamBoundaryAlignedSpan: a span ending exactly on an interval
// boundary carries bits only up to that edge; the window must not
// advance into the boundary interval and strand the span's own bits
// behind the closed edge (regression: Window=1 dropped an aligned
// one-interval span entirely).
func TestStreamBoundaryAlignedSpan(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error { closed++; return nil }
	// Exactly covers interval 0: [start, start+1m).
	if err := acc.Add(Record{Prefix: pfxA, Time: start, Span: iv, Bits: 600}); err != nil {
		t.Fatal(err)
	}
	if closed != 0 {
		t.Fatalf("aligned span closed %d intervals prematurely", closed)
	}
	if st := acc.Stats(); st.Late != 0 || st.LateBits != 0 {
		t.Fatalf("aligned span dropped as late: %+v", st)
	}
	if got := acc.TotalBandwidth(0); !floatEq(got, 600/iv.Seconds()) {
		t.Errorf("interval 0 bandwidth = %v, want %v", got, 600/iv.Seconds())
	}
	if err := acc.Flush(); err != nil {
		t.Fatal(err)
	}
	if closed != 1 {
		t.Errorf("flushed %d intervals, want 1", closed)
	}
}

// TestStreamFarFutureGuard: a record with a corrupted far-future
// timestamp is dropped and counted instead of closing an unbounded run
// of empty intervals and poisoning the stream for genuine traffic.
func TestStreamFarFutureGuard(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 2, MaxGap: 10})
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error { closed++; return nil }
	if err := acc.Add(Record{Prefix: pfxA, Time: start, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	// Garbage: ~5 years ahead of all traffic seen.
	if err := acc.Add(Record{Prefix: pfxB, Time: start.Add(500000 * iv), Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if st := acc.Stats(); st.FarFuture != 1 {
		t.Fatalf("FarFuture = %d, want 1 (%+v)", st.FarFuture, st)
	}
	if closed != 0 {
		t.Fatalf("far-future record closed %d intervals", closed)
	}
	// Genuine in-order traffic keeps flowing.
	if err := acc.Add(Record{Prefix: pfxB, Time: start.Add(3 * iv), Bits: 16}); err != nil {
		t.Fatal(err)
	}
	if st := acc.Stats(); st.Late != 0 {
		t.Fatalf("stream poisoned: genuine record late (%+v)", st)
	}
	if err := acc.Flush(); err != nil {
		t.Fatal(err)
	}
	if closed != 4 {
		t.Errorf("flushed %d intervals, want 4", closed)
	}

	// The guard must hold for the FIRST record too: under an explicit
	// Start, maxTouched is still -1 when a corrupt timestamp arrives
	// (regression: the guard was skipped and one record closed ~10^5
	// empty intervals).
	acc2, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 2, MaxGap: 10})
	if err != nil {
		t.Fatal(err)
	}
	closed2 := 0
	acc2.Emit = func(tt int, snap *core.FlowSnapshot) error { closed2++; return nil }
	if err := acc2.Add(Record{Prefix: pfxA, Time: start.Add(500000 * iv), Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if st := acc2.Stats(); st.FarFuture != 1 || closed2 != 0 {
		t.Fatalf("first-record corruption not guarded: FarFuture=%d closed=%d", st.FarFuture, closed2)
	}
	// Genuine traffic still lands normally afterwards.
	if err := acc2.Add(Record{Prefix: pfxA, Time: start, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if st := acc2.Stats(); st.Late != 0 || st.InWindow != 1 {
		t.Fatalf("stream poisoned after guarded first record: %+v", st)
	}
}

// TestStreamAlignsToFirstRecord: the zero-value Start aligns interval 0
// to the first record.
func TestStreamAlignsToFirstRecord(t *testing.T) {
	iv := 5 * time.Minute
	first := start.Add(17 * time.Second)
	acc, err := NewStreamAccumulator(StreamConfig{Interval: iv})
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Start().IsZero() {
		t.Error("start resolved before any record")
	}
	if err := acc.Add(Record{Prefix: pfxA, Time: first, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if !acc.Start().Equal(first) {
		t.Errorf("start = %v, want first record time %v", acc.Start(), first)
	}
	if got := acc.IntervalTime(1); !got.Equal(first.Add(iv)) {
		t.Errorf("IntervalTime(1) = %v", got)
	}
}

// TestStreamEmptyIntervals: traffic gaps must still emit the empty
// intervals in order — the pipeline's EWMA needs every slot.
func TestStreamEmptyIntervals(t *testing.T) {
	iv := time.Minute
	recs := []Record{
		{Prefix: pfxA, Time: start, Bits: 8},
		{Prefix: pfxA, Time: start.Add(6 * iv), Bits: 8}, // 5 empty slots between
	}
	_, got := collectStream(t, StreamConfig{Start: start, Interval: iv, Window: 3}, recs)
	if len(got) != 7 {
		t.Fatalf("emitted %d intervals, want 7", len(got))
	}
	for tt := 1; tt < 6; tt++ {
		if got[tt].Len() != 0 {
			t.Errorf("interval %d not empty", tt)
		}
	}
	if got[0].Len() != 1 || got[6].Len() != 1 {
		t.Error("edge intervals lost their flow")
	}
}

// TestStreamOpenStats: the open-interval accessors mirror Series stats
// for the same records.
func TestStreamOpenStats(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	series := NewSeries(start, iv, 4)
	recs := []Record{
		{Prefix: pfxA, Time: start, Bits: 600},
		{Prefix: pfxB, Time: start, Bits: 1200},
		{Prefix: pfxA, Time: start.Add(iv), Bits: 60},
	}
	for _, rec := range recs {
		if err := acc.Add(rec); err != nil {
			t.Fatal(err)
		}
		series.AddRecord(rec)
	}
	for tt := 0; tt < 2; tt++ {
		if got, want := acc.ActiveFlows(tt), series.ActiveFlows(tt); got != want {
			t.Errorf("ActiveFlows(%d) = %d, want %d", tt, got, want)
		}
		if got, want := acc.TotalBandwidth(tt), series.TotalBandwidth(tt); got != want {
			t.Errorf("TotalBandwidth(%d) = %v, want %v", tt, got, want)
		}
	}
	for _, tt := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ActiveFlows(%d): expected panic outside open window", tt)
				}
			}()
			acc.ActiveFlows(tt)
		}()
	}
}

// TestStreamStatsCounters is the regression pin on the Stats() counter
// contract the serving daemon exposes in its /metrics endpoint: one
// deterministic record sequence exercising every StreamStats field, with
// the whole struct asserted at once so a counter silently changing
// meaning (or a new drop path forgetting to count) fails loudly.
func TestStreamStatsCounters(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 2, MaxGap: 4})
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		rec  Record
		want StreamStats
	}{
		// In-window point record.
		{Record{Prefix: pfxA, Time: start, Bits: 600},
			StreamStats{Records: 1, InWindow: 1}},
		// Entirely before the stream origin.
		{Record{Prefix: pfxA, Time: start.Add(-iv), Bits: 600},
			StreamStats{Records: 2, InWindow: 1, Late: 1, LateBits: 600}},
		// Advances the window: closes interval 0, evicting its one flow.
		{Record{Prefix: pfxB, Time: start.Add(2 * iv), Bits: 8},
			StreamStats{Records: 3, InWindow: 2, Late: 1, LateBits: 600, Closed: 1, EvictedFlows: 1}},
		// Wholly behind the closed edge.
		{Record{Prefix: pfxA, Time: start.Add(10 * time.Second), Bits: 100},
			StreamStats{Records: 4, InWindow: 2, Late: 2, LateBits: 700, Closed: 1, EvictedFlows: 1}},
		// Span record clipped by the closed edge: 30 of 90 seconds (300
		// of 900 bits) fall into closed interval 0, the rest lands.
		{Record{Prefix: pfxA, Time: start.Add(30 * time.Second), Span: 90 * time.Second, Bits: 900},
			StreamStats{Records: 5, InWindow: 3, Late: 2, LateBits: 1000, Closed: 1, EvictedFlows: 1}},
		// Corrupted far-future timestamp: beyond maxTouched+MaxGap.
		{Record{Prefix: pfxA, Time: start.Add(7 * iv), Bits: 8},
			StreamStats{Records: 6, InWindow: 3, Late: 2, LateBits: 1000, FarFuture: 1, Closed: 1, EvictedFlows: 1}},
	}
	for i, st := range steps {
		if err := acc.Add(st.rec); err != nil {
			t.Fatal(err)
		}
		if got := acc.Stats(); got != st.want {
			t.Errorf("after record %d: Stats() = %+v, want %+v", i, got, st.want)
		}
	}
	// Flush closes intervals 1 and 2 (through the last bit-carrying
	// interval), evicting one flow from each.
	if err := acc.Flush(); err != nil {
		t.Fatal(err)
	}
	want := StreamStats{Records: 6, InWindow: 3, Late: 2, LateBits: 1000, FarFuture: 1, Closed: 3, EvictedFlows: 3}
	if got := acc.Stats(); got != want {
		t.Errorf("after flush: Stats() = %+v, want %+v", got, want)
	}
}

// TestStreamEvictionBoundsMemory: closing intervals releases their flow
// rows; the ring never holds more than Window columns.
func TestStreamEvictionBoundsMemory(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 100; tt++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", tt/256, tt%256))
		if err := acc.Add(Record{Prefix: p, Time: start.Add(time.Duration(tt) * iv), Bits: 8}); err != nil {
			t.Fatal(err)
		}
	}
	open := 0
	for i := range acc.slots {
		open += len(acc.slots[i].dirty)
	}
	if open > 2 {
		t.Errorf("%d flow rows held open, want <= window", open)
	}
	if st := acc.Stats(); st.EvictedFlows != 98 {
		t.Errorf("EvictedFlows = %d, want 98", st.EvictedFlows)
	}
}

// TestStreamEmitError: an Emit error aborts the Add/Flush that
// triggered it.
func TestStreamEmitError(t *testing.T) {
	boom := errors.New("boom")
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: time.Minute, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc.Emit = func(tt int, snap *core.FlowSnapshot) error { return boom }
	if err := acc.Add(Record{Prefix: pfxA, Time: start, Bits: 8}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(Record{Prefix: pfxA, Time: start.Add(time.Minute), Bits: 8}); !errors.Is(err, boom) {
		t.Errorf("Add after forced close = %v, want boom", err)
	}
}

func TestStreamConfigValidation(t *testing.T) {
	if _, err := NewStreamAccumulator(StreamConfig{Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewStreamAccumulator(StreamConfig{Interval: time.Minute, Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
	acc, err := NewStreamAccumulator(StreamConfig{Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Window() != DefaultStreamWindow {
		t.Errorf("default window = %d, want %d", acc.Window(), DefaultStreamWindow)
	}
}

// TestCollectMatchesAggregatorArithmetic: Series.AddRecord's point path
// is the exact AddBits arithmetic the packet Aggregator uses.
func TestCollectMatchesAggregatorArithmetic(t *testing.T) {
	iv := 5 * time.Minute
	a := NewSeries(start, iv, 2)
	b := NewSeries(start, iv, 2)
	a.AddBits(pfxA, 0, 12345)
	if !b.AddRecord(Record{Prefix: pfxA, Time: start.Add(time.Second), Bits: 12345}) {
		t.Fatal("in-window record rejected")
	}
	if a.Bandwidth(pfxA, 0) != b.Bandwidth(pfxA, 0) {
		t.Errorf("AddBits %v != AddRecord %v", a.Bandwidth(pfxA, 0), b.Bandwidth(pfxA, 0))
	}
	if b.AddRecord(Record{Prefix: pfxA, Time: start.Add(2 * iv), Bits: 1}) {
		t.Error("out-of-window record accepted")
	}
}

// TestStreamActiveFlowsIncremental is the regression pin for the O(1)
// ActiveFlows counter: accumulating more bits into an existing flow
// must not double-count it, zero-bit records must not count at all, and
// span records must count once per touched interval — across interval
// closes recycling the slot.
func TestStreamActiveFlowsIncremental(t *testing.T) {
	iv := time.Minute
	acc, err := NewStreamAccumulator(StreamConfig{Start: start, Interval: iv, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.ActiveFlows(0); got != 0 {
		t.Fatalf("empty interval ActiveFlows = %d", got)
	}
	acc.Add(Record{Prefix: pfxA, Time: start, Bits: 100})
	acc.Add(Record{Prefix: pfxA, Time: start.Add(time.Second), Bits: 100}) // same flow again
	if got := acc.ActiveFlows(0); got != 1 {
		t.Fatalf("re-accumulated flow counted %d times", got)
	}
	acc.Add(Record{Prefix: pfxB, Time: start, Bits: 0}) // zero bits: touched, not active
	if got := acc.ActiveFlows(0); got != 1 {
		t.Fatalf("zero-bit flow counted: ActiveFlows = %d", got)
	}
	acc.Add(Record{Prefix: pfxB, Time: start, Bits: 50})
	if got := acc.ActiveFlows(0); got != 2 {
		t.Fatalf("second flow not counted: ActiveFlows = %d", got)
	}
	// A span over intervals 1 and 2 counts once in each.
	acc.Add(Record{Prefix: pfxA, Time: start.Add(iv + 30*time.Second), Span: iv, Bits: 600})
	if a1, a2 := acc.ActiveFlows(1), acc.ActiveFlows(2); a1 != 1 || a2 != 1 {
		t.Fatalf("span record ActiveFlows = %d,%d, want 1,1", a1, a2)
	}
	// Closing interval 0 recycles its slot as interval 3: the counter
	// must restart from zero.
	acc.Add(Record{Prefix: pfxB, Time: start.Add(3 * iv), Bits: 8})
	if got := acc.ActiveFlows(3); got != 1 {
		t.Fatalf("recycled slot ActiveFlows = %d, want 1", got)
	}
	if got := acc.ActiveFlows(1); got != 1 {
		t.Fatalf("older open interval disturbed: ActiveFlows = %d", got)
	}
}

// TestStreamEmitsIDColumns: an accumulator sharing a table emits
// snapshots whose ID column resolves every row through that table; a
// table-less accumulator still emits complete ID columns against its
// private table.
func TestStreamEmitsIDColumns(t *testing.T) {
	iv := time.Minute
	recs := synthRecords(3, 6, 20, iv)
	for _, shared := range []bool{true, false} {
		cfg := StreamConfig{Start: start, Interval: iv, Window: 2}
		if shared {
			cfg.Table = core.NewFlowTable()
		}
		acc, err := NewStreamAccumulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if shared && acc.Table() != cfg.Table {
			t.Fatal("accumulator did not adopt the shared table")
		}
		acc.Emit = func(tt int, snap *core.FlowSnapshot) error {
			if snap.Len() > 0 && !snap.HasIDs() {
				t.Fatalf("interval %d: emitted snapshot lacks ID column", tt)
			}
			for i := 0; i < snap.Len(); i++ {
				if got := acc.Table().PrefixOf(snap.ID(i)); got != snap.Key(i) {
					t.Fatalf("interval %d row %d: id %d resolves to %v, want %v", tt, i, snap.ID(i), got, snap.Key(i))
				}
			}
			return nil
		}
		for _, rec := range recs {
			if err := acc.Add(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := acc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}
