package agg

import (
	"errors"
	"fmt"
	"io"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// DefaultStreamWindow is the default number of simultaneously open
// intervals — the latent-heat lookback of the paper (12 five-minute
// slots = 1 hour), so the accumulator's memory horizon matches the
// classifier's.
const DefaultStreamWindow = 12

// DefaultStreamMaxGap is the default bound on how far one record may
// advance the window past the newest interval carrying bits: generous
// enough for a link idle for days (4096 five-minute slots ≈ two
// weeks), small enough that a corrupted far-future timestamp cannot
// force millions of empty-interval closes and poison the stream.
const DefaultStreamMaxGap = 4096

// StreamConfig sizes a StreamAccumulator.
type StreamConfig struct {
	// Start is the left edge of interval 0. The zero value aligns
	// interval 0 to the first record's Time.
	Start time.Time
	// Interval is the measurement interval Δ. Required.
	Interval time.Duration
	// Window is W, the number of simultaneously open intervals (the
	// reordering/span tolerance of the source). Memory is bounded by W
	// columns of active flows regardless of trace length. Defaults to
	// DefaultStreamWindow.
	Window int
	// MaxGap bounds how many intervals beyond the newest bit-carrying
	// interval a single record may advance the window. Records jumping
	// further are dropped and counted in Stats.FarFuture — a corrupted
	// export timestamp must not close an unbounded run of empty
	// intervals (the batch path's equivalent is one OutOfRange count).
	// Defaults to DefaultStreamMaxGap.
	MaxGap int
	// Table is the flow identity table prefixes are interned against —
	// pass the consuming pipeline's table (core.Pipeline.Table) so
	// emitted snapshots carry IDs the classifier can index directly.
	// Nil allocates a private table. The accumulator raises the table's
	// quarantine to at least Window, so an ID released downstream can
	// never be re-bound while an open slot still references it.
	// Incompatible with Shards > 1 (sharded accumulation interns into
	// per-shard private tables).
	Table *core.FlowTable
	// Shards selects sharded accumulation: values above 1 split the
	// flow columns across that many concurrent shard workers (each flow
	// hashed to exactly one shard), with sealed intervals reassembled
	// by a k-way merge that is bit-identical to the single-shard path.
	// 0 and 1 select the serial accumulator. Sharded snapshots carry no
	// dense-ID column (consumers re-intern via core.FlowTable.FillIDs),
	// and a sharded accumulator must be released with Close.
	Shards int
}

// StreamStats counts streaming attribution outcomes.
type StreamStats struct {
	// Records is the number of records presented to Add.
	Records uint64
	// InWindow counts records that landed at least partly in an open
	// interval.
	InWindow uint64
	// Late counts records whose bits fell entirely into already-closed
	// intervals (or before an explicit Start) and were dropped.
	Late uint64
	// LateBits is the total volume dropped into closed intervals,
	// including the clipped-off leading portion of partially late span
	// records.
	LateBits float64
	// FarFuture counts records dropped because they would advance the
	// window more than MaxGap intervals past the newest bit-carrying
	// interval (corrupted timestamps, not traffic).
	FarFuture uint64
	// Closed is the number of intervals closed (and emitted) so far.
	Closed int
	// EvictedFlows counts flow rows released by closing intervals — the
	// eviction that keeps memory independent of trace length.
	EvictedFlows uint64
}

// streamSlot is one open interval of the ring: an ID-indexed bandwidth
// column plus the list of IDs dirtied this interval, maintained with
// arithmetic identical to Series.AddBits so the emitted snapshots match
// Series.Snapshot bit for bit. A generation tag per cell (seen) marks
// which cells belong to the current interval, so recycling a slot for
// interval g+Window is O(1): bump the generation and truncate the dirty
// list — stale cells are simply never read. Closing an interval sorts
// only the dirty IDs into prefix order instead of re-sorting every key
// of a map, and steady-state accumulation never hashes nor allocates.
type streamSlot struct {
	col    []float64 // id -> accumulated bandwidth, valid iff seen[id] == gen
	seen   []uint32  // id -> generation that last touched the cell
	dirty  []uint32  // IDs touched in the current interval
	gen    uint32    // current generation, starts at 1
	total  float64
	active int // flows with positive bandwidth, maintained incrementally
}

// touch accumulates bandwidth into one cell, first claiming it for the
// current generation, and keeps the slot's active-flow counter exact
// across sign transitions (mirroring Series.noteTransition).
func (sl *streamSlot) touch(id uint32, bw float64) {
	var before float64
	if sl.seen[id] == sl.gen {
		before = sl.col[id]
		sl.col[id] = before + bw
	} else {
		sl.seen[id] = sl.gen
		sl.dirty = append(sl.dirty, id)
		sl.col[id] = bw
	}
	sl.total += bw
	after := before + bw
	switch {
	case before <= 0 && after > 0:
		sl.active++
	case before > 0 && after <= 0:
		sl.active--
	}
}

// grow widens the slot's columns to cover the table's ID space.
func (sl *streamSlot) grow(n int) {
	if n <= len(sl.col) {
		return
	}
	sl.col = append(sl.col, make([]float64, n-len(sl.col))...)
	sl.seen = append(sl.seen, make([]uint32, n-len(sl.seen))...)
}

// StreamAccumulator is the bounded-memory streaming twin of Series: it
// accumulates records into a ring of Window open intervals, closes
// intervals as record timestamps advance, and emits each closed
// interval as a sorted core.FlowSnapshot — exactly the column
// Series.Snapshot would produce from the same records. Memory is
// bounded by Window columns of active flows, not by trace length: flow
// rows are evicted wholesale when their interval closes.
//
// The emitted snapshot is owned by the accumulator and reused across
// intervals; Emit consumers must not retain it (the same ownership
// contract as Series.Snapshot). An accumulator is single-goroutine:
// drive it from one producer, typically via Stream.
type StreamAccumulator struct {
	// Emit receives each closed interval in order (gap-free, including
	// empty intervals) with its global interval index. A nil Emit
	// discards closed intervals but still counts them. An Emit error
	// aborts the Add/Flush that triggered it.
	Emit func(t int, snap *core.FlowSnapshot) error

	cfg   StreamConfig
	start time.Time // resolved left edge of interval 0
	began bool      // start is resolved (first record seen or explicit Start)

	base       int       // oldest open interval (global index)
	clip       time.Time // left edge of interval base, cached off the Add path
	maxTouched int       // highest interval that received bits; -1 before any
	newest     time.Time // newest bit-carrying instant accepted past the far-future gate
	table      *core.FlowTable
	slots      []streamSlot
	sh         *shardedAcc // non-nil in sharded mode (Shards > 1)
	closed     bool        // shard workers released (Close called)

	snap  *core.FlowSnapshot // reused emission buffer
	stats StreamStats

	// pubRecords is the serial-mode counterpart of the per-shard record
	// atomics: total records accepted as of the last interval close,
	// readable from any goroutine via ShardRecords.
	pubRecords atomic.Uint64
}

// NewStreamAccumulator validates cfg and returns an empty accumulator.
func NewStreamAccumulator(cfg StreamConfig) (*StreamAccumulator, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("agg: NewStreamAccumulator: non-positive interval %v", cfg.Interval)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultStreamWindow
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("agg: NewStreamAccumulator: window %d < 1", cfg.Window)
	}
	if cfg.MaxGap == 0 {
		cfg.MaxGap = DefaultStreamMaxGap
	}
	if cfg.MaxGap < 1 {
		return nil, fmt.Errorf("agg: NewStreamAccumulator: max gap %d < 1", cfg.MaxGap)
	}
	if cfg.Shards > 1 {
		if cfg.Table != nil {
			return nil, fmt.Errorf("agg: NewStreamAccumulator: Shards %d is incompatible with a caller-supplied Table (shards intern into private tables)", cfg.Shards)
		}
		if cfg.Shards > MaxShards {
			return nil, fmt.Errorf("agg: NewStreamAccumulator: shards %d > %d", cfg.Shards, MaxShards)
		}
		a := &StreamAccumulator{
			cfg:        cfg,
			start:      cfg.Start,
			clip:       cfg.Start,
			began:      !cfg.Start.IsZero(),
			maxTouched: -1,
			sh:         newShardedAcc(cfg.Shards, cfg.Window, cfg.Interval.Seconds()),
			snap:       core.NewFlowSnapshot(0),
		}
		return a, nil
	}
	if cfg.Table == nil {
		cfg.Table = core.NewFlowTable()
	}
	// A released ID must survive long enough for every open slot that
	// might hold its bits to close, or those bits would be emitted under
	// a recycled identity.
	cfg.Table.EnsureQuarantine(cfg.Window)
	a := &StreamAccumulator{
		cfg:        cfg,
		start:      cfg.Start,
		clip:       cfg.Start,
		began:      !cfg.Start.IsZero(),
		maxTouched: -1,
		table:      cfg.Table,
		slots:      make([]streamSlot, cfg.Window),
		snap:       core.NewFlowSnapshot(0),
	}
	for i := range a.slots {
		a.slots[i].gen = 1
	}
	return a, nil
}

// MaxShards bounds StreamConfig.Shards — far past the point where the
// coordinator's fan-out becomes the bottleneck.
const MaxShards = 64

// Table returns the flow identity table the accumulator interns into.
// Nil in sharded mode: flows then live in per-shard private tables and
// emitted snapshots carry no ID column.
func (a *StreamAccumulator) Table() *core.FlowTable { return a.table }

// Shards returns the number of accumulation shards (1 in serial mode).
func (a *StreamAccumulator) Shards() int {
	if a.sh != nil {
		return len(a.sh.shards)
	}
	return 1
}

// ShardRecords appends each shard's cumulative record count (as of the
// last interval close) to dst and returns it — one entry per shard, or
// a single total in serial mode. Safe from any goroutine: the counters
// are published atomically at every seal.
func (a *StreamAccumulator) ShardRecords(dst []uint64) []uint64 {
	if a.sh == nil {
		return append(dst, a.pubRecords.Load())
	}
	for i := range a.sh.pub {
		dst = append(dst, a.sh.pub[i].Load())
	}
	return dst
}

// Close releases the accumulator's shard workers. It does not flush —
// call Flush first if remaining open intervals should be emitted. A
// serial accumulator's Close is a no-op, and Close is idempotent.
// Add/Flush must not be called after Close; Shards, ShardRecords and
// Stats remain valid.
func (a *StreamAccumulator) Close() {
	if a.sh != nil && !a.closed {
		a.closed = true
		a.sh.close()
	}
}

// Start returns the resolved left edge of interval 0 — the configured
// Start, or the first record's Time when aligning automatically (zero
// until the first record arrives).
func (a *StreamAccumulator) Start() time.Time { return a.start }

// Interval returns the measurement interval Δ.
func (a *StreamAccumulator) Interval() time.Duration { return a.cfg.Interval }

// Window returns W, the number of simultaneously open intervals.
func (a *StreamAccumulator) Window() int { return a.cfg.Window }

// Stats returns the attribution counters so far.
func (a *StreamAccumulator) Stats() StreamStats { return a.stats }

// Newest returns the stream watermark: the newest bit-carrying instant
// of any record accepted past the far-future gate (zero before the
// first such record). Pre-origin and behind-the-window records still
// advance it — their timestamps are genuine — but records dropped as
// corrupt do not.
func (a *StreamAccumulator) Newest() time.Time { return a.newest }

// WatermarkLag returns how far the stream watermark has run ahead of
// the sealed edge: Newest minus the left edge of the oldest open
// interval (= the right edge of the newest sealed interval). It is the
// freshness measure a resident daemon exports per link — a link whose
// records keep arriving but whose lag keeps growing is wedged behind a
// reordering horizon, while a silent link holds its last reading.
// Clamped to zero (Flush seals through the watermark, leaving the
// sealed edge at or past it); zero before any record.
func (a *StreamAccumulator) WatermarkLag() time.Duration {
	if a.newest.IsZero() {
		return 0
	}
	if lag := a.newest.Sub(a.clip); lag > 0 {
		return lag
	}
	return 0
}

// ClosedThrough returns the number of intervals closed so far (closed
// intervals are exactly [0, ClosedThrough)).
func (a *StreamAccumulator) ClosedThrough() int { return a.base }

// IntervalTime returns the left edge of interval t (meaningful once
// Start is resolved).
func (a *StreamAccumulator) IntervalTime(t int) time.Time {
	return a.start.Add(time.Duration(t) * a.cfg.Interval)
}

// intervalIndex maps a timestamp to its global interval index, or -1
// before the stream origin.
func (a *StreamAccumulator) intervalIndex(ts time.Time) int {
	d := ts.Sub(a.start)
	if d < 0 {
		return -1
	}
	return int(d / a.cfg.Interval)
}

// openIntervalOf maps a timestamp to its interval index when that
// interval is open, -1 otherwise — the window predicate spreadRecord
// clips against.
func (a *StreamAccumulator) openIntervalOf(ts time.Time) int {
	g := a.intervalIndex(ts)
	if g < a.base || g >= a.base+a.cfg.Window {
		return -1
	}
	return g
}

// slot returns the ring slot of open interval g.
func (a *StreamAccumulator) slot(g int) *streamSlot { return &a.slots[g%a.cfg.Window] }

// addBits mirrors Series.AddBits: the same bits→bandwidth conversion
// and the same per-cell accumulation order, which is what keeps the
// streaming and batch paths bit-identical. The flow is already interned
// — accumulation itself is pure column arithmetic, no hashing.
func (a *StreamAccumulator) addBits(id uint32, g int, bits float64) {
	sl := a.slot(g)
	sl.grow(a.table.Cap())
	sl.touch(id, bits/a.cfg.Interval.Seconds())
	if g > a.maxTouched {
		a.maxTouched = g
	}
}

// TotalBandwidth returns the aggregate load accumulated so far in open
// interval t (bit/s) — the streaming counterpart of
// Series.TotalBandwidth, defined only while t is open.
// In sharded mode it is a barrier: the coordinator waits for every
// shard to drain, then sums the per-shard partials in shard order (the
// float sum's grouping differs from the serial single-column fold, so
// the value may differ in final ulps; ActiveFlows is exact).
func (a *StreamAccumulator) TotalBandwidth(t int) float64 {
	if t < a.base || t >= a.base+a.cfg.Window {
		panic(fmt.Sprintf("agg: TotalBandwidth: interval %d outside open window [%d,%d)", t, a.base, a.base+a.cfg.Window))
	}
	if a.sh != nil {
		a.sh.sync()
		total := 0.0
		for _, s := range a.sh.shards {
			if sl := &s.slots[t%a.cfg.Window]; sl.cur == int32(t) {
				total += sl.total
			}
		}
		return total
	}
	return a.slot(t).total
}

// ActiveFlows returns the number of flows with positive bandwidth
// accumulated so far in open interval t — the streaming counterpart of
// Series.ActiveFlows, defined only while t is open. It is O(1): the
// per-slot counter is maintained incrementally across cell updates,
// like batch Series does, not by scanning the flow column.
func (a *StreamAccumulator) ActiveFlows(t int) int {
	if t < a.base || t >= a.base+a.cfg.Window {
		panic(fmt.Sprintf("agg: ActiveFlows: interval %d outside open window [%d,%d)", t, a.base, a.base+a.cfg.Window))
	}
	if a.sh != nil {
		a.sh.sync()
		active := 0
		for _, s := range a.sh.shards {
			if sl := &s.slots[t%a.cfg.Window]; sl.cur == int32(t) {
				active += sl.active
			}
		}
		return active
	}
	return a.slot(t).active
}

// Add accumulates one record, first closing intervals as far as the
// record's bits require so that the last interval the record touches is
// open. Bits reaching back before the closed edge are dropped and
// counted in Stats.Late/LateBits; everything else lands with arithmetic
// identical to Series.AddRecord.
func (a *StreamAccumulator) Add(rec Record) error {
	a.stats.Records++
	if !a.began {
		a.began = true
		a.start = rec.Time
		a.clip = rec.Time
	}
	// The last instant that actually carries bits: span records spread
	// over [Time, End), so a span ending exactly on an interval boundary
	// stops in the interval before it — advancing to End's own interval
	// there would close one interval too many and strand in-order bits
	// behind the closed edge.
	last := rec.End()
	if rec.Span > 0 {
		last = last.Add(-time.Nanosecond)
	}
	end := a.intervalIndex(last)
	if end < 0 {
		// The whole record precedes the stream origin.
		a.stats.Late++
		a.stats.LateBits += rec.Bits
		return nil
	}
	// A timestamp this far past all traffic seen is corruption, not an
	// idle link; advancing would close an unbounded run of empty
	// intervals and poison the stream for every genuine record after
	// it. Before any bits land (maxTouched -1) the bound is taken from
	// the closed edge instead, so a corrupt FIRST record under an
	// explicit Start is guarded too.
	floor := a.maxTouched
	if floor < a.base-1 {
		floor = a.base - 1
	}
	if end > floor+a.cfg.MaxGap {
		a.stats.FarFuture++
		return nil
	}
	// The watermark advances only past the corruption gate: a far-future
	// timestamp must not poison the lag reading any more than it may
	// close intervals.
	if last.After(a.newest) {
		a.newest = last
	}
	if end >= a.base+a.cfg.Window {
		if err := a.advanceTo(end - a.cfg.Window + 1); err != nil {
			return err
		}
	}
	if end < a.base {
		// Every bit-carrying interval is behind the closed edge; drop
		// without interning a flow identity the pipeline will never see.
		a.stats.Late++
		a.stats.LateBits += rec.Bits
		return nil
	}
	if rec.Bits <= 0 {
		// A record that cannot contribute positive bandwidth must not
		// intern a flow identity: such a flow would never surface in a
		// snapshot, so the classifier would never evict it and its table
		// entry (and ring-column slot) would leak for the life of a
		// resident daemon — a remotely triggerable grow-forever on
		// spoofable zero-octet NetFlow records. The record still counts
		// and still advances the flush/far-future horizon, exactly as a
		// zero-bit cell write would have.
		if end > a.maxTouched {
			a.maxTouched = end
		}
		a.stats.InWindow++
		return nil
	}
	clip := a.clip
	var landed bool
	if a.sh != nil {
		// Sharded mode defers the intern to the flow's home shard — the
		// prefix hash leaves the coordinator's serial section entirely.
		// The routing hash is computed once per record, shared by every
		// interval the span touches.
		si := a.sh.shardOf(rec.Prefix)
		landed = spreadRecord(rec, a.start, a.cfg.Interval, clip, a.openIntervalOf, func(t int, bits float64) {
			a.sh.enqueue(si, rec.Prefix, t, bits)
			if t > a.maxTouched {
				a.maxTouched = t
			}
		})
		if landed {
			a.sh.recs[si]++
		}
	} else {
		// One intern per record, shared by every interval the span
		// touches — the only hash on the accumulation path.
		id := a.table.Intern(rec.Prefix)
		landed = spreadRecord(rec, a.start, a.cfg.Interval, clip, a.openIntervalOf, func(t int, bits float64) {
			a.addBits(id, t, bits)
		})
	}
	if landed {
		a.stats.InWindow++
		if rec.Span > 0 && rec.Time.Before(clip) {
			// Leading portion clipped off by the closed edge.
			a.stats.LateBits += rec.Bits * float64(clip.Sub(rec.Time)) / float64(rec.Span)
		}
	} else {
		a.stats.Late++
		a.stats.LateBits += rec.Bits
	}
	return nil
}

// advanceTo closes intervals [base, newBase) in order.
func (a *StreamAccumulator) advanceTo(newBase int) error {
	for a.base < newBase {
		if err := a.closeOldest(); err != nil {
			return err
		}
	}
	return nil
}

// closeOldest emits the oldest open interval as a sorted snapshot and
// recycles its slot. Emission order and values match Series.Snapshot:
// positive-bandwidth flows in core.ComparePrefix order, appended into a
// reused snapshot. Only the interval's dirty IDs are sorted — the cost
// scales with the flows active in that interval, not with every flow
// the link has ever seen — and the IDs must be sorted into prefix order
// BEFORE appending (rather than appending unordered and calling
// snap.Sort): Append folds each bandwidth into the snapshot's running
// total, and that float sum is only bit-identical to the batch path's
// if the addition order is the same sorted order Series.Snapshot uses.
func (a *StreamAccumulator) closeOldest() error {
	g := a.base
	if a.sh != nil {
		// Sharded close: each shard sorts its own dirty subset, the
		// coordinator k-way-merges the sorted runs (shardedAcc.seal).
		// Each flow's bandwidth was folded in one shard in arrival
		// order, and the merge appends in the same global ComparePrefix
		// order closeOldest uses below, so both the per-flow values and
		// the snapshot's running total are bit-identical to serial.
		evicted := a.sh.seal(g, a.snap)
		a.stats.Closed++
		a.stats.EvictedFlows += uint64(evicted)
		a.base++
		a.clip = a.clip.Add(a.cfg.Interval)
		if a.Emit != nil {
			return a.Emit(g, a.snap)
		}
		return nil
	}
	sl := a.slot(g)
	pf := a.table.Prefixes()
	// Rank-based ordering (integer compares) when the table's rank
	// column is fresh or the interval is busy enough to amortise a
	// rebuild; direct prefix compares when a huge table just gained a
	// binding and this interval touches only a handful of flows. All
	// paths produce the same ComparePrefix order.
	if a.table.RanksFresh() || len(sl.dirty)*8 >= a.table.Len() {
		ranks := a.table.Ranks()
		slices.SortFunc(sl.dirty, func(x, y uint32) int {
			return int(ranks[x]) - int(ranks[y])
		})
	} else {
		slices.SortFunc(sl.dirty, func(x, y uint32) int {
			return core.ComparePrefix(pf[x], pf[y])
		})
	}
	a.snap.Reset()
	a.snap.SetIDTable(a.table)
	for _, id := range sl.dirty {
		a.snap.AppendID(pf[id], id, sl.col[id])
	}
	a.stats.Closed++
	a.stats.EvictedFlows += uint64(len(sl.dirty))
	// Recycle the slot for interval g+Window: bumping the generation
	// invalidates every cell at once, so steady-state accumulation
	// neither clears columns nor allocates.
	sl.dirty = sl.dirty[:0]
	sl.gen++
	if sl.gen == 0 { // generation wrap: stale tags could collide
		clear(sl.seen)
		sl.gen = 1
	}
	sl.total = 0
	sl.active = 0
	a.base++
	a.clip = a.clip.Add(a.cfg.Interval)
	a.pubRecords.Store(a.stats.Records)
	if a.Emit != nil {
		return a.Emit(g, a.snap)
	}
	return nil
}

// Flush closes every remaining interval through the last one that
// received bits. Call at end of stream; the accumulator is then
// positioned to keep going if more (later) records arrive.
func (a *StreamAccumulator) Flush() error {
	return a.advanceTo(a.maxTouched + 1)
}

// Stream drains src through acc and flushes — the push-style driver
// connecting any RecordSource to a per-interval consumer via acc.Emit.
func Stream(src RecordSource, acc *StreamAccumulator) error {
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			return acc.Flush()
		}
		if err != nil {
			return err
		}
		if err := acc.Add(rec); err != nil {
			return err
		}
	}
}
