package agg

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bgp"
	"repro/internal/packet"
	"repro/internal/pcap"
)

// PcapPacketSource streams decoded packet summaries from an Ethernet
// capture — classic libpcap or pcapng, auto-detected — skipping frames
// that fail to decode (counted in Parser stats). It factors the
// capture-to-summary step out of ReadPcap so other consumers — the
// NetFlow exporter, ad-hoc analysis tools — can share it.
type PcapPacketSource struct {
	r      pcap.PacketReader
	parser *packet.Parser
	first  time.Time // timestamp of the first frame read, decodable or not
}

// NewPcapPacketSource opens a capture for streaming, sniffing the
// format.
func NewPcapPacketSource(r io.Reader) (*PcapPacketSource, error) {
	pr, linkType, err := pcap.OpenReader(r)
	if err != nil {
		return nil, fmt.Errorf("agg: opening capture: %w", err)
	}
	if linkType != pcap.LinkTypeEthernet {
		return nil, fmt.Errorf("agg: unsupported link type %d", linkType)
	}
	return &PcapPacketSource{r: pr, parser: packet.NewParser()}, nil
}

// ParserStats exposes decode counters.
func (s *PcapPacketSource) ParserStats() packet.ParserStats { return s.parser.Stats }

// FirstTimestamp returns the capture time of the first frame read —
// decodable or not — or the zero time before any frame. It lets a
// streaming consumer anchor interval 0 at the true capture start, the
// same instant the batch path's prescan finds.
func (s *PcapPacketSource) FirstTimestamp() time.Time { return s.first }

// Next returns the next decodable packet's capture time and summary.
// The summary's WireLength is the original on-the-wire length even for
// snapped captures. io.EOF marks a clean end of file.
func (s *PcapPacketSource) Next() (time.Time, packet.Summary, error) {
	for {
		ci, data, err := s.r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return time.Time{}, packet.Summary{}, io.EOF
		}
		if err != nil {
			return time.Time{}, packet.Summary{}, fmt.Errorf("agg: reading capture: %w", err)
		}
		if s.first.IsZero() {
			s.first = ci.Timestamp
		}
		sum, err := s.parser.Parse(data)
		if err != nil {
			continue // non-IP or malformed frame
		}
		sum.WireLength = ci.Length
		return ci.Timestamp, sum, nil
	}
}

// PacketRecordSourceStats counts packet attribution outcomes.
type PacketRecordSourceStats struct {
	Packets  uint64 // decodable packets presented
	Routed   uint64 // attributed to a prefix and yielded
	Unrouted uint64 // no covering route (skipped, as in the paper)
}

// PacketRecordSource adapts the pcap→packet path to the unified
// RecordSource API: each decodable packet is longest-prefix matched
// against the BGP table and yielded as a point Record carrying its wire
// length in bits. Packets destined to unrouted space are counted and
// skipped. Capture timestamps are monotone in practice, so any
// StreamAccumulator window suffices.
type PacketRecordSource struct {
	src   *PcapPacketSource
	table *bgp.Table

	// Stats counts attribution outcomes.
	Stats PacketRecordSourceStats
}

// NewPacketRecordSource opens a capture for streaming record
// attribution against table.
func NewPacketRecordSource(r io.Reader, table *bgp.Table) (*PacketRecordSource, error) {
	src, err := NewPcapPacketSource(r)
	if err != nil {
		return nil, err
	}
	return &PacketRecordSource{src: src, table: table}, nil
}

// ParserStats exposes the underlying decode counters.
func (s *PacketRecordSource) ParserStats() packet.ParserStats { return s.src.ParserStats() }

// FirstTimestamp returns the capture time of the first frame read,
// routed or not (zero before any frame) — the anchor a streaming run
// uses to match the batch path's interval boundaries exactly.
func (s *PacketRecordSource) FirstTimestamp() time.Time { return s.src.FirstTimestamp() }

// Next returns the next routed packet as a point record. io.EOF marks a
// clean end of file.
func (s *PacketRecordSource) Next() (Record, error) {
	for {
		ts, sum, err := s.src.Next()
		if err != nil {
			return Record{}, err
		}
		s.Stats.Packets++
		route, ok := s.table.Lookup(sum.DstIP)
		if !ok {
			s.Stats.Unrouted++
			continue
		}
		s.Stats.Routed++
		return Record{Prefix: route.Prefix, Time: ts, Bits: float64(sum.WireLength) * 8}, nil
	}
}
