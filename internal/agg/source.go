package agg

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
)

// PcapPacketSource streams decoded packet summaries from an Ethernet
// capture — classic libpcap or pcapng, auto-detected — skipping frames
// that fail to decode (counted in Parser stats). It factors the
// capture-to-summary step out of ReadPcap so other consumers — the
// NetFlow exporter, ad-hoc analysis tools — can share it.
type PcapPacketSource struct {
	r      pcap.PacketReader
	parser *packet.Parser
}

// NewPcapPacketSource opens a capture for streaming, sniffing the
// format.
func NewPcapPacketSource(r io.Reader) (*PcapPacketSource, error) {
	pr, linkType, err := pcap.OpenReader(r)
	if err != nil {
		return nil, fmt.Errorf("agg: opening capture: %w", err)
	}
	if linkType != pcap.LinkTypeEthernet {
		return nil, fmt.Errorf("agg: unsupported link type %d", linkType)
	}
	return &PcapPacketSource{r: pr, parser: packet.NewParser()}, nil
}

// ParserStats exposes decode counters.
func (s *PcapPacketSource) ParserStats() packet.ParserStats { return s.parser.Stats }

// Next returns the next decodable packet's capture time and summary.
// The summary's WireLength is the original on-the-wire length even for
// snapped captures. io.EOF marks a clean end of file.
func (s *PcapPacketSource) Next() (time.Time, packet.Summary, error) {
	for {
		ci, data, err := s.r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return time.Time{}, packet.Summary{}, io.EOF
		}
		if err != nil {
			return time.Time{}, packet.Summary{}, fmt.Errorf("agg: reading capture: %w", err)
		}
		sum, err := s.parser.Parse(data)
		if err != nil {
			continue // non-IP or malformed frame
		}
		sum.WireLength = ci.Length
		return ci.Timestamp, sum, nil
	}
}
