package agg

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/packet"
	"repro/internal/pcap"
)

func testTable(t *testing.T) *bgp.Table {
	t.Helper()
	tab := bgp.NewTable()
	for _, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24"} {
		if err := tab.Insert(bgp.Route{Prefix: netip.MustParsePrefix(s)}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestAddPacketAttribution(t *testing.T) {
	tab := testTable(t)
	s := NewSeries(start, time.Minute, 2)
	a := NewAggregator(tab, s)

	// 10.1.x.y -> the /16 (longest match), 1000 wire bytes = 8000 bits.
	a.AddPacket(start, packet.Summary{DstIP: netip.MustParseAddr("10.1.2.3"), WireLength: 1000})
	// 10.2.x.y -> the /8.
	a.AddPacket(start.Add(61*time.Second), packet.Summary{DstIP: netip.MustParseAddr("10.2.0.1"), WireLength: 600})
	// Unrouted.
	a.AddPacket(start, packet.Summary{DstIP: netip.MustParseAddr("203.0.113.1"), WireLength: 100})
	// Out of window.
	a.AddPacket(start.Add(time.Hour), packet.Summary{DstIP: netip.MustParseAddr("10.1.2.3"), WireLength: 100})

	if a.Stats.Packets != 4 || a.Stats.Routed != 2 || a.Stats.Unrouted != 1 || a.Stats.OutOfRange != 1 {
		t.Fatalf("stats = %+v", a.Stats)
	}
	p16 := netip.MustParsePrefix("10.1.0.0/16")
	p8 := netip.MustParsePrefix("10.0.0.0/8")
	if got := s.Bandwidth(p16, 0); !floatEq(got, 8000.0/60) {
		t.Errorf("/16 bandwidth = %v, want %v", got, 8000.0/60)
	}
	if got := s.Bandwidth(p8, 1); !floatEq(got, 4800.0/60) {
		t.Errorf("/8 bandwidth = %v, want %v", got, 4800.0/60)
	}
	// The /16 packet must NOT also count towards the covering /8.
	if got := s.Bandwidth(p8, 0); got != 0 {
		t.Errorf("/8 got leakage from /16 traffic: %v", got)
	}
}

func buildTestCapture(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.Header{})
	b := packet.NewBuilder()
	write := func(dst string, wire int, at time.Duration) {
		frame, err := b.Build(packet.FrameSpec{
			SrcIP:      netip.MustParseAddr("203.0.113.5"),
			DstIP:      netip.MustParseAddr(dst),
			Protocol:   packet.IPProtocolUDP,
			PayloadLen: wire - 42, // 14 + 20 + 8 headers
		})
		if err != nil {
			t.Fatal(err)
		}
		ci := pcap.CaptureInfo{Timestamp: start.Add(at), CaptureLength: len(frame), Length: len(frame)}
		if err := w.WritePacket(ci, frame); err != nil {
			t.Fatal(err)
		}
	}
	write("10.1.2.3", 500, 10*time.Second)
	write("10.9.9.9", 300, 20*time.Second)
	write("192.0.2.200", 1500, 70*time.Second)
	write("8.8.8.8", 100, 30*time.Second) // unrouted
	return buf.Bytes()
}

func TestReadPcap(t *testing.T) {
	raw := buildTestCapture(t)
	tab := testTable(t)
	s := NewSeries(start, time.Minute, 2)
	n, stats, err := ReadPcap(bytes.NewReader(raw), tab, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("frames = %d, want 4", n)
	}
	if stats.Routed != 3 || stats.Unrouted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if got := s.Bandwidth(netip.MustParsePrefix("10.1.0.0/16"), 0); !floatEq(got, 500*8.0/60) {
		t.Errorf("/16 = %v", got)
	}
	if got := s.Bandwidth(netip.MustParsePrefix("192.0.2.0/24"), 1); !floatEq(got, 1500*8.0/60) {
		t.Errorf("/24 = %v", got)
	}
}

func TestReadPcapRejectsNonEthernet(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.Header{LinkType: pcap.LinkTypeRaw})
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadPcap(&buf, testTable(t), NewSeries(start, time.Minute, 1))
	if err == nil {
		t.Error("raw link type accepted")
	}
}

func TestReadPcapGarbageHeader(t *testing.T) {
	_, _, err := ReadPcap(bytes.NewReader([]byte{1, 2, 3, 4}), testTable(t), NewSeries(start, time.Minute, 1))
	if err == nil {
		t.Error("garbage file accepted")
	}
}

func TestReadPcapToleratesUndecodableFrames(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.Header{})
	// One garbage frame, then one good frame.
	junk := []byte{0xFF, 0xFF, 0xFF}
	if err := w.WritePacket(pcap.CaptureInfo{Timestamp: start, CaptureLength: len(junk), Length: len(junk)}, junk); err != nil {
		t.Fatal(err)
	}
	b := packet.NewBuilder()
	frame, err := b.Build(packet.FrameSpec{
		SrcIP:    netip.MustParseAddr("203.0.113.5"),
		DstIP:    netip.MustParseAddr("10.1.2.3"),
		Protocol: packet.IPProtocolUDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(pcap.CaptureInfo{Timestamp: start, CaptureLength: len(frame), Length: len(frame)}, frame); err != nil {
		t.Fatal(err)
	}
	s := NewSeries(start, time.Minute, 1)
	n, stats, err := ReadPcap(&buf, testTable(t), s)
	if err != nil {
		t.Fatalf("frame-level junk must not abort the capture: %v", err)
	}
	if n != 2 || stats.Routed != 1 {
		t.Errorf("n=%d stats=%+v", n, stats)
	}
}

func TestReadPcapTruncatedFileReportsError(t *testing.T) {
	raw := buildTestCapture(t)
	_, _, err := ReadPcap(bytes.NewReader(raw[:len(raw)-5]), testTable(t), NewSeries(start, time.Minute, 2))
	if err == nil {
		t.Error("truncated capture accepted")
	}
}

// TestReadPcapUsesWireLength: for snapped captures the original wire
// length, not the captured byte count, must be accounted.
func TestReadPcapUsesWireLength(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.Header{})
	b := packet.NewBuilder()
	frame, err := b.Build(packet.FrameSpec{
		SrcIP:    netip.MustParseAddr("203.0.113.5"),
		DstIP:    netip.MustParseAddr("10.1.2.3"),
		Protocol: packet.IPProtocolUDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Claim the original frame was 1500 bytes on the wire.
	ci := pcap.CaptureInfo{Timestamp: start, CaptureLength: len(frame), Length: 1500}
	if err := w.WritePacket(ci, frame); err != nil {
		t.Fatal(err)
	}
	s := NewSeries(start, time.Minute, 1)
	if _, _, err := ReadPcap(&buf, testTable(t), s); err != nil {
		t.Fatal(err)
	}
	if got := s.Bandwidth(netip.MustParsePrefix("10.1.0.0/16"), 0); !floatEq(got, 1500*8.0/60) {
		t.Errorf("bandwidth = %v, want wire-length based %v", got, 1500*8.0/60)
	}
}

// TestReadPcapAutoDetectsPcapng: the ingest path accepts pcapng captures
// transparently.
func TestReadPcapAutoDetectsPcapng(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewNgWriter(&buf, pcap.Header{})
	b := packet.NewBuilder()
	frame, err := b.Build(packet.FrameSpec{
		SrcIP:    netip.MustParseAddr("203.0.113.5"),
		DstIP:    netip.MustParseAddr("10.1.2.3"),
		Protocol: packet.IPProtocolUDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	ci := pcap.CaptureInfo{Timestamp: start, CaptureLength: len(frame), Length: len(frame)}
	if err := w.WritePacket(ci, frame); err != nil {
		t.Fatal(err)
	}
	s := NewSeries(start, time.Minute, 1)
	n, stats, err := ReadPcap(&buf, testTable(t), s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || stats.Routed != 1 {
		t.Errorf("n=%d stats=%+v", n, stats)
	}
}
