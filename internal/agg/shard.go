package agg

import (
	"encoding/binary"
	"net/netip"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// shardOpBatch is the fan-out granularity: ops are buffered
// coordinator-side and handed to a shard worker in fixed-capacity
// batches, so the channel cost is paid once per ~256 cell updates, not
// once per record. Three batches circulate per shard (one filling at
// the coordinator, up to two in flight), so the coordinator only
// blocks when a shard is more than two full batches behind.
const shardOpBatch = 256

// shardOp is one cell update routed to a shard: the op stream a shard
// receives for a given flow is exactly the subsequence of addBits
// calls the serial accumulator would have made for that flow, in the
// same order — which is what keeps the per-flow float summation (and
// hence the emitted column) bit-identical to the single-shard path.
type shardOp struct {
	prefix netip.Prefix
	g      int32   // global interval index
	bits   float64 // raw bits landing in interval g
}

// shardMsg message kinds. A single struct sent by value keeps the
// coordinator→shard channel allocation-free.
const (
	shardMsgOps     = iota // apply the ops batch, return it to the free pool
	shardMsgSeal           // sort interval g's dirty set, publish the merge view, wg.Done
	shardMsgSync           // barrier only (open-interval queries), wg.Done
	shardMsgRecycle        // release interval g's rows and advance the shard clock
)

type shardMsg struct {
	kind int8
	g    int32
	ops  []shardOp
	wg   *sync.WaitGroup
}

// shardSlot is a streamSlot that also remembers which global interval
// it currently holds. Shards learn about interval closes lazily — an
// op for interval g arriving at a slot still holding g-Window recycles
// it on touch — so an interval nothing landed in costs a shard nothing
// at all (the coordinator skips the seal barrier entirely).
type shardSlot struct {
	streamSlot
	cur int32 // global interval this slot holds; -1 when virgin
}

// recycle claims the slot for interval g, invalidating the previous
// tenant the same way the serial closeOldest does: bump the
// generation, truncate the dirty list, zero the running counters.
func (sl *shardSlot) recycle(g int32) {
	sl.dirty = sl.dirty[:0]
	sl.gen++
	if sl.gen == 0 { // generation wrap: stale tags could collide
		clear(sl.seen)
		sl.gen = 1
	}
	sl.total = 0
	sl.active = 0
	sl.cur = g
}

// accShard is one shard worker: a private flow identity table plus a
// private ring of Window interval columns covering only the flows
// hashed to this shard. All fields below ch are worker-owned; the
// coordinator reads the published merge view (dirty/col/pf) only
// between a seal barrier's WaitGroup release and the next message it
// sends, which is exactly the window the worker is guaranteed idle.
type accShard struct {
	ch   chan shardMsg
	free chan []shardOp
	done chan struct{}

	table *core.FlowTable
	slots []shardSlot
	secs  float64 // Interval.Seconds(), the bits→bandwidth divisor
	// lastSeen tracks, per dense ID, the newest interval that touched
	// the flow. Rows are released only when their interval closes AND
	// no newer open interval has touched them — a recurring flow is
	// never released at all, instead of being released and resurrected
	// every interval (which would churn the table's pending list and
	// put a map operation back on the steady-state path).
	lastSeen []int32

	// Merge view published at each seal: the sealed slot's dirty IDs in
	// ComparePrefix order, its bandwidth column, and the table's prefix
	// column to translate IDs during the coordinator's k-way merge.
	dirty []uint32
	col   []float64
	pf    []netip.Prefix
}

func (s *accShard) run() {
	defer close(s.done)
	for m := range s.ch {
		switch m.kind {
		case shardMsgOps:
			s.apply(m.ops)
			s.free <- m.ops[:0]
		case shardMsgSeal:
			s.prepareSeal(m.g)
			m.wg.Done()
		case shardMsgSync:
			m.wg.Done()
		case shardMsgRecycle:
			s.recycleInterval(m.g)
		}
	}
}

// apply accumulates a batch of cell updates, mirroring the serial
// addBits/touch arithmetic exactly: one Intern per op resolves the
// flow's dense ID in this shard's private table, then the bandwidth
// quotient is folded into the cell. Interning here — rather than at
// the coordinator — is what removes the prefix hash from the serial
// section; it is safe because per-flow op order is preserved by the
// FIFO channel and a flow only ever hashes to one shard.
func (s *accShard) apply(ops []shardOp) {
	for i := range ops {
		op := &ops[i]
		sl := &s.slots[int(op.g)%len(s.slots)]
		if sl.cur != op.g {
			sl.recycle(op.g)
		}
		id := s.table.Intern(op.prefix)
		if n := s.table.Cap(); n > len(s.lastSeen) {
			s.lastSeen = append(s.lastSeen, make([]int32, n-len(s.lastSeen))...)
		}
		if s.lastSeen[id] < op.g {
			s.lastSeen[id] = op.g
		}
		sl.grow(s.table.Cap())
		sl.touch(id, op.bits/s.secs)
	}
}

// prepareSeal sorts interval g's dirty IDs into ComparePrefix order
// and publishes the slot's columns for the coordinator's merge. The
// rank-vs-direct sort heuristic matches the serial closeOldest; both
// orders are the same, only the comparison cost differs.
func (s *accShard) prepareSeal(g int32) {
	sl := &s.slots[int(g)%len(s.slots)]
	if sl.cur != g {
		// Nothing landed in g on this shard since the slot last held it.
		s.dirty = nil
		return
	}
	pf := s.table.Prefixes()
	if s.table.RanksFresh() || len(sl.dirty)*8 >= s.table.Len() {
		ranks := s.table.Ranks()
		slices.SortFunc(sl.dirty, func(x, y uint32) int {
			return int(ranks[x]) - int(ranks[y])
		})
	} else {
		slices.SortFunc(sl.dirty, func(x, y uint32) int {
			return core.ComparePrefix(pf[x], pf[y])
		})
	}
	s.dirty = sl.dirty
	s.col = sl.col
	s.pf = pf
}

// recycleInterval releases the sealed interval's flow rows and ticks
// the shard's quarantine clock. It runs after the coordinator has
// finished merging (the FIFO channel orders it behind the seal), so
// releasing here can never invalidate a prefix mid-merge. The slot
// itself is recycled lazily by the next op that lands in it.
func (s *accShard) recycleInterval(g int32) {
	sl := &s.slots[int(g)%len(s.slots)]
	if sl.cur == g {
		for _, id := range sl.dirty {
			// Only flows whose newest bits are in the closing interval go
			// quiet; anything touched by a later (still open) interval
			// stays live and will be reconsidered at that close.
			if s.lastSeen[id] == g {
				s.table.Release(id)
			}
		}
	}
	s.table.Advance()
}

// shardedAcc is the coordinator side of sharded accumulation. The
// StreamAccumulator keeps every gate, stat and window decision; this
// type only owns the fan-out (routing ops to shards), the seal
// barrier, and the k-way merge that reassembles one sorted snapshot
// from the per-shard sorted columns.
type shardedAcc struct {
	shards []*accShard
	cur    [][]shardOp // per-shard op batch being filled
	wg     sync.WaitGroup

	// Per-ring-slot op counters (coordinator-side, exact): when an
	// interval closes with zero ops routed, the seal barrier and the
	// recycle round-trip are skipped entirely — an idle link costs the
	// shard workers nothing. slotG tracks which interval the counter
	// currently refers to; a slot is lazily reclaimed when interval
	// g+Window first routes an op.
	slotG   []int32
	slotOps []int

	recs []uint64 // per-shard records routed (coordinator-owned)
	// pub mirrors recs as atomics, refreshed at every seal, so scrape
	// handlers on other goroutines can read shard balance without
	// touching coordinator state.
	pub []atomic.Uint64
	// heads is the k-way merge cursor per shard, reused across seals.
	heads []int
}

func newShardedAcc(shards, window int, interval float64) *shardedAcc {
	sh := &shardedAcc{
		shards:  make([]*accShard, shards),
		cur:     make([][]shardOp, shards),
		slotG:   make([]int32, window),
		slotOps: make([]int, window),
		recs:    make([]uint64, shards),
		pub:     make([]atomic.Uint64, shards),
		heads:   make([]int, shards),
	}
	for i := range sh.slotG {
		sh.slotG[i] = -1
	}
	for i := range sh.shards {
		s := &accShard{
			ch:    make(chan shardMsg, 4),
			free:  make(chan []shardOp, 2),
			done:  make(chan struct{}),
			table: core.NewFlowTable(),
			slots: make([]shardSlot, window),
			secs:  interval,
		}
		// Rows are released when their interval closes, but an ID
		// released at close g can still sit on the dirty list of slot
		// g+Window-1 (quarantine W would free it exactly one Advance too
		// early); W+1 keeps every listed ID bound through its last seal.
		s.table.EnsureQuarantine(window + 1)
		for j := range s.slots {
			s.slots[j].gen = 1
			s.slots[j].cur = -1
		}
		s.free <- make([]shardOp, 0, shardOpBatch)
		s.free <- make([]shardOp, 0, shardOpBatch)
		sh.cur[i] = make([]shardOp, 0, shardOpBatch)
		sh.shards[i] = s
		go s.run()
	}
	return sh
}

// shardOf routes a prefix to its home shard: a cheap deterministic
// FNV-style fold of the address bytes and prefix length. Every record
// of a flow lands on the same shard, which is the invariant that
// preserves per-flow accumulation order (and with it bit-for-bit
// stream ≡ batch equality).
func (sh *shardedAcc) shardOf(p netip.Prefix) int {
	b := p.Addr().As16()
	h := uint64(14695981039346656037)
	h = (h ^ binary.LittleEndian.Uint64(b[0:8])) * 1099511628211
	h = (h ^ binary.LittleEndian.Uint64(b[8:16])) * 1099511628211
	h = (h ^ uint64(p.Bits())) * 1099511628211
	return int((h >> 32) % uint64(len(sh.shards)))
}

// enqueue routes one cell update to shard si, flushing the batch when
// full, and keeps the per-slot op counter exact.
func (sh *shardedAcc) enqueue(si int, p netip.Prefix, g int, bits float64) {
	buf := append(sh.cur[si], shardOp{prefix: p, g: int32(g), bits: bits})
	if len(buf) == cap(buf) {
		sh.shards[si].ch <- shardMsg{kind: shardMsgOps, ops: buf}
		buf = <-sh.shards[si].free
	}
	sh.cur[si] = buf
	k := g % len(sh.slotG)
	if sh.slotG[k] != int32(g) {
		sh.slotG[k] = int32(g)
		sh.slotOps[k] = 0
	}
	sh.slotOps[k]++
}

// flush pushes every partially filled batch to its shard.
func (sh *shardedAcc) flush() {
	for i, buf := range sh.cur {
		if len(buf) == 0 {
			continue
		}
		sh.shards[i].ch <- shardMsg{kind: shardMsgOps, ops: buf}
		sh.cur[i] = <-sh.shards[i].free
	}
}

// barrier flushes pending ops and blocks until every shard has drained
// its queue and acknowledged msg-kind kind for interval g. On return
// the shard workers are idle (they cannot act again until the
// coordinator sends the next message), so shard state may be read
// directly.
func (sh *shardedAcc) barrier(kind int8, g int32) {
	sh.flush()
	sh.wg.Add(len(sh.shards))
	for _, s := range sh.shards {
		s.ch <- shardMsg{kind: kind, g: g, wg: &sh.wg}
	}
	sh.wg.Wait()
}

// seal closes interval g: barrier, k-way merge of the per-shard sorted
// columns into snap (plain Append in global ComparePrefix order — the
// same append order, hence the same running-total float sum, as the
// serial path), then an asynchronous recycle message letting each
// shard release the interval's rows while the coordinator moves on.
// Returns the number of flow rows evicted. When no ops were routed to
// the interval the barrier is skipped entirely and snap is left empty.
func (sh *shardedAcc) seal(g int, snap *core.FlowSnapshot) int {
	snap.Reset()
	k := g % len(sh.slotG)
	if sh.slotG[k] != int32(g) || sh.slotOps[k] == 0 {
		// Skipping the recycle round-trip also skips the shards' Advance
		// tick; that only defers frees, never accelerates them, so the
		// quarantine safety argument is unaffected.
		sh.publishRecords()
		return 0
	}
	sh.slotOps[k] = 0
	sh.barrier(shardMsgSeal, int32(g))
	evicted := 0
	for i, s := range sh.shards {
		sh.heads[i] = 0
		evicted += len(s.dirty)
	}
	for {
		best := -1
		var bestPf netip.Prefix
		for i, s := range sh.shards {
			h := sh.heads[i]
			if h >= len(s.dirty) {
				continue
			}
			p := s.pf[s.dirty[h]]
			if best < 0 || core.ComparePrefix(p, bestPf) < 0 {
				best, bestPf = i, p
			}
		}
		if best < 0 {
			break
		}
		s := sh.shards[best]
		snap.Append(bestPf, s.col[s.dirty[sh.heads[best]]])
		sh.heads[best]++
	}
	for _, s := range sh.shards {
		s.ch <- shardMsg{kind: shardMsgRecycle, g: int32(g)}
	}
	sh.publishRecords()
	return evicted
}

// publishRecords stores the coordinator's per-shard record counters
// into the atomics scrape handlers read.
func (sh *shardedAcc) publishRecords() {
	for i := range sh.recs {
		sh.pub[i].Store(sh.recs[i])
	}
}

// sync runs a plain barrier so the coordinator can read open-interval
// shard state (TotalBandwidth / ActiveFlows) coherently.
func (sh *shardedAcc) sync() { sh.barrier(shardMsgSync, -1) }

// close shuts the shard workers down and waits for them to exit.
func (sh *shardedAcc) close() {
	for _, s := range sh.shards {
		close(s.ch)
	}
	for _, s := range sh.shards {
		<-s.done
	}
}
