package agg

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// randomSeries builds a series through a random mix of the mutation API:
// AddBits accumulation, SetBandwidth overwrites, overwrite-to-zero (a
// flow that was active in an interval and then zeroed must vanish from
// that interval's snapshot), and rows that stay entirely idle.
func randomSeries(seed int64, flows, intervals int) *Series {
	rng := rand.New(rand.NewSource(seed))
	s := NewSeries(start, time.Minute, intervals)
	for f := 0; f < flows; f++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", f/250, f%250))
		for t := 0; t < intervals; t++ {
			switch rng.Intn(5) {
			case 0, 1: // idle cell
			case 2:
				s.AddBits(p, t, rng.Float64()*1e9)
				if rng.Intn(3) == 0 {
					s.AddBits(p, t, rng.Float64()*1e8) // accumulate twice
				}
			case 3:
				s.SetBandwidth(p, t, rng.Float64()*1e7)
			case 4:
				s.SetBandwidth(p, t, rng.Float64()*1e7)
				if rng.Intn(2) == 0 {
					s.SetBandwidth(p, t, 0) // overwrite to zero
				}
			}
		}
	}
	return s
}

// snapDiff compares two snapshots column-for-column, bitwise, returning
// a description of the first difference ("" when identical). It stays
// goroutine-safe so concurrent tests can report via t.Errorf.
func snapDiff(a, b *core.FlowSnapshot) string {
	if a.Len() != b.Len() {
		return fmt.Sprintf("%d flows vs %d", a.Len(), b.Len())
	}
	if a.HasIDs() != b.HasIDs() {
		return fmt.Sprintf("HasIDs %v vs %v", a.HasIDs(), b.HasIDs())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Key(i) != b.Key(i) {
			return fmt.Sprintf("flow %d key %v vs %v", i, a.Key(i), b.Key(i))
		}
		if a.Bandwidth(i) != b.Bandwidth(i) {
			return fmt.Sprintf("flow %d (%v) bw %v vs %v", i, a.Key(i), a.Bandwidth(i), b.Bandwidth(i))
		}
		if a.HasIDs() && a.ID(i) != b.ID(i) {
			return fmt.Sprintf("flow %d id %d vs %d", i, a.ID(i), b.ID(i))
		}
	}
	return ""
}

func snapEqual(t *testing.T, ctx string, a, b *core.FlowSnapshot) {
	t.Helper()
	if d := snapDiff(a, b); d != "" {
		t.Fatalf("%s: %s", ctx, d)
	}
}

// TestSealedSnapshotsMatchDense is the CSR/dense equivalence property:
// for randomized series (accumulates, overwrites, zeroed cells, idle
// rows), every interval's snapshot from the sealed interval-major index
// must be bitwise identical — same flow order, same float values — to
// the dense row-scan emission of the unsealed series.
func TestSealedSnapshotsMatchDense(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomSeries(seed, 120, 16)
		dense := make([]*core.FlowSnapshot, s.Intervals)
		for ti := 0; ti < s.Intervals; ti++ {
			dense[ti] = s.Snapshot(ti, nil)
		}
		s.Seal()
		if !s.Sealed() {
			t.Fatal("Seal did not mark the series sealed")
		}
		var snap *core.FlowSnapshot
		for ti := 0; ti < s.Intervals; ti++ {
			snap = s.Snapshot(ti, snap)
			snapEqual(t, fmt.Sprintf("seed %d interval %d", seed, ti), snap, dense[ti])
		}
	}
}

// TestSealedSnapshotIDsMatchDense extends the equivalence to the
// ID-stamped emission path the matrix engine uses.
func TestSealedSnapshotIDsMatchDense(t *testing.T) {
	s := randomSeries(11, 100, 12)
	tblDense := core.NewFlowTable()
	rowsDense := s.InternRows(tblDense, nil)
	dense := make([]*core.FlowSnapshot, s.Intervals)
	for ti := 0; ti < s.Intervals; ti++ {
		dense[ti] = s.SnapshotIDs(ti, nil, tblDense, rowsDense)
	}
	s.Seal()
	tbl := core.NewFlowTable()
	rows := s.InternRows(tbl, nil)
	var snap *core.FlowSnapshot
	for ti := 0; ti < s.Intervals; ti++ {
		snap = s.SnapshotIDs(ti, snap, tbl, rows)
		snapEqual(t, fmt.Sprintf("interval %d", ti), snap, dense[ti])
	}
}

// TestSealMutationUnseals pins the release-mode contract: mutating a
// sealed series (including the zero→nonzero transition that changes an
// interval's flow membership) silently unseals it, drops the index, and
// subsequent snapshots — dense again, or CSR after a re-Seal — reflect
// the new values.
func TestSealMutationUnseals(t *testing.T) {
	s := NewSeries(start, time.Minute, 3)
	s.SetBandwidth(pfxA, 0, 100)
	s.SetBandwidth(pfxB, 1, 200)
	s.Seal()
	_ = s.Snapshot(0, nil) // force the index to build

	s.SetBandwidth(pfxC, 0, 300) // zero→nonzero on a sealed series
	if s.Sealed() {
		t.Fatal("series still sealed after mutation")
	}
	want := map[netip.Prefix]float64{pfxA: 100, pfxC: 300}
	check := func(ctx string) {
		t.Helper()
		snap := s.Snapshot(0, nil)
		if snap.Len() != len(want) {
			t.Fatalf("%s: %d flows, want %d", ctx, snap.Len(), len(want))
		}
		for i := 0; i < snap.Len(); i++ {
			if want[snap.Key(i)] != snap.Bandwidth(i) {
				t.Fatalf("%s: flow %v = %v, want %v", ctx, snap.Key(i), snap.Bandwidth(i), want[snap.Key(i)])
			}
		}
	}
	check("unsealed after mutation")
	s.Seal()
	check("re-sealed")
}

// TestSealMutationPanicsUnderDebugInvariants pins the debug-mode
// contract: with core.DebugInvariants on, mutating a sealed series is a
// programmer error and panics instead of silently unsealing.
func TestSealMutationPanicsUnderDebugInvariants(t *testing.T) {
	core.DebugInvariants = true
	defer func() { core.DebugInvariants = false }()
	s := NewSeries(start, time.Minute, 2)
	s.SetBandwidth(pfxA, 0, 100)
	s.Seal()
	defer func() {
		if recover() == nil {
			t.Error("AddBits on a sealed series did not panic under DebugInvariants")
		}
	}()
	s.AddBits(pfxA, 1, 1e6)
}

// TestSealedSnapshotConcurrentReaders proves the lazy index build is
// safe under concurrent snapshotting of a freshly sealed series (the
// matrix engine's access pattern: many workers, first touch builds).
// Run with -race.
func TestSealedSnapshotConcurrentReaders(t *testing.T) {
	s := randomSeries(23, 150, 8)
	refs := make([]*core.FlowSnapshot, s.Intervals)
	for ti := 0; ti < s.Intervals; ti++ {
		refs[ti] = s.Snapshot(ti, nil)
	}
	s.Seal()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var snap *core.FlowSnapshot
			for ti := 0; ti < s.Intervals; ti++ {
				snap = s.Snapshot(ti, snap)
				if d := snapDiff(snap, refs[ti]); d != "" {
					t.Errorf("interval %d: %s", ti, d)
					return
				}
			}
		}()
	}
	wg.Wait()
}
