package core

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// DebugInvariants enables O(n) consistency checks on every Step:
// re-verifying the snapshot's sort order and the classifier verdict's
// index ordering. Off by default — production relies on the snapshot's
// O(1) sorted flag maintained by Append.
var DebugInvariants = false

// Config assembles a classification pipeline.
type Config struct {
	// Detector is the phase-1 threshold detection technique. Required.
	Detector Detector
	// Alpha is the EWMA weight on the previous smoothed threshold:
	// θ̂(t+1) = α·θ̂(t) + (1−α)·θ(t). The paper finds α = 0.5
	// sufficiently smooth. Must be in [0, 1).
	Alpha float64
	// Classifier decides membership each interval. Required (use
	// SingleFeatureClassifier{} or NewLatentHeatClassifier).
	Classifier Classifier
	// MinFlows is the minimum number of active flows required to run
	// detection; below it the previous threshold is reused. Defaults
	// to 16.
	MinFlows int
	// Thresholds optionally supplies precomputed raw thresholds θ(t)
	// (the engine's batch prepass). For intervals the source covers,
	// the pipeline consumes its value — or error — instead of running
	// the Detector; uncovered intervals fall back to inline detection,
	// so live/stream pipelines simply leave this nil. The source must
	// honour the ThresholdSource purity contract; everything stateful
	// (EWMA smoothing, MinFlows reuse, classification) stays in the
	// pipeline.
	Thresholds ThresholdSource
	// Observer optionally receives one StepObservation per interval —
	// per-stage wall times, thresholds and elephant churn. Nil (the
	// default, and the engine's batch configuration) keeps the step
	// completely uninstrumented: no clock reads, no churn bookkeeping.
	Observer StageObserver
}

// Result describes one classified interval. It owns all of its storage:
// results remain valid after the snapshot that produced them is reused.
type Result struct {
	// Interval is the 0-based interval index.
	Interval int
	// RawThreshold is θ(t) detected from this interval's data.
	RawThreshold float64
	// Threshold is θ̂(t), the smoothed threshold actually used to
	// classify this interval.
	Threshold float64
	// Elephants is the elephant set for the interval.
	Elephants ElephantSet
	// ElephantLoad is the total bandwidth of elephant flows (bit/s).
	ElephantLoad float64
	// TotalLoad is the total link load in the interval (bit/s).
	TotalLoad float64
	// ActiveFlows is the number of flows with positive bandwidth.
	ActiveFlows int
}

// ElephantCount returns the size of the interval's elephant set.
func (r *Result) ElephantCount() int { return r.Elephants.Len() }

// LoadFraction returns the fraction of total traffic apportioned to
// elephants (0 when the link is idle).
func (r *Result) LoadFraction() float64 {
	if r.TotalLoad <= 0 {
		return 0
	}
	return r.ElephantLoad / r.TotalLoad
}

// Pipeline runs the two-phase methodology online: for each measurement
// interval it classifies flows against the current smoothed threshold
// θ̂(t), then detects this interval's raw threshold θ(t) and folds it
// into the EWMA that will govern the next interval.
type Pipeline struct {
	cfg  Config
	ewma *stats.EWMA
	t    int
	// table is the pipeline's flow identity table: every prefix this
	// link classifies is interned into a dense uint32 ID exactly once,
	// and ID-aware classifiers index their per-flow columns by it.
	// Producers that feed the pipeline (the engine's stream
	// accumulators) share it so emitted snapshots carry IDs already.
	table *FlowTable
	// needIDs records whether the classifier consumes the ID column;
	// snapshots arriving without one are filled from the table.
	needIDs bool
	// sortedDet is non-nil when the detector accepts the snapshot's
	// cached pre-sorted bandwidth view, skipping the per-step copy and
	// the detector's internal sort.
	sortedDet SortedDetector
	// scratch reuses its backing array across intervals: it carries a
	// copy of the bandwidth column for the detector, which may reorder
	// its input in place.
	scratch []float64
	// arena amortizes the per-interval ElephantSet storage.
	arena prefixArena
	// prevElephants is the previous interval's elephant set, retained
	// only when an Observer is attached (churn is observed against it);
	// ElephantSet storage is immutable, so holding it is safe.
	prevElephants ElephantSet
}

// TableBinder is implemented by classifiers that keep per-flow state in
// dense-ID-indexed columns (LatentHeatClassifier). NewPipeline binds
// its flow table to such classifiers once at construction.
type TableBinder interface {
	BindTable(*FlowTable)
}

// NewPipeline validates cfg and returns a ready pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("core: NewPipeline: Detector is required")
	}
	if cfg.Classifier == nil {
		return nil, fmt.Errorf("core: NewPipeline: Classifier is required")
	}
	if cfg.Alpha < 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("core: NewPipeline: alpha %v outside [0,1)", cfg.Alpha)
	}
	if cfg.MinFlows == 0 {
		cfg.MinFlows = 16
	}
	p := &Pipeline{cfg: cfg, ewma: stats.NewEWMA(cfg.Alpha), table: NewFlowTable()}
	if tb, ok := cfg.Classifier.(TableBinder); ok {
		tb.BindTable(p.table)
		p.needIDs = true
	}
	if sd, ok := cfg.Detector.(SortedDetector); ok {
		p.sortedDet = sd
	}
	return p, nil
}

// Table returns the pipeline's flow identity table. Producers feeding
// this pipeline (stream accumulators) attach to it so that emitted
// snapshots carry dense IDs and the classify path never hashes a
// prefix; the table is single-goroutine, owned by whoever drives Step.
func (p *Pipeline) Table() *FlowTable { return p.table }

// StepSnapshot is the push-style entry point for streaming producers
// (an agg.StreamAccumulator's Emit hook, or any source that closes
// intervals as time advances): it classifies interval t's snapshot,
// enforcing that closed intervals arrive in order and gap-free — t must
// equal the number of intervals already processed, and empty intervals
// must be stepped too (they carry the idle link through the EWMA just
// as a zero column of a batch Series would). Step is the index-driven
// equivalent; both share the same per-interval work, so streaming and
// batch classification of identical columns are byte-identical.
func (p *Pipeline) StepSnapshot(t int, snap *FlowSnapshot) (Result, error) {
	if t != p.t {
		return Result{Interval: p.t}, fmt.Errorf("core: StepSnapshot got interval %d, pipeline at %d (closed intervals must arrive in order, gap-free)", t, p.t)
	}
	return p.Step(snap)
}

// Step processes one interval's snapshot and returns the classification
// result. The snapshot must be sorted (producers that append in
// ComparePrefix order — agg.Series.Snapshot — are sorted for free; map
// fills must call Sort). Calls must be made in interval order. The
// snapshot is not retained: the caller may reset and refill it for the
// next interval.
func (p *Pipeline) Step(snap *FlowSnapshot) (Result, error) {
	res := Result{Interval: p.t}
	if snap == nil {
		return res, fmt.Errorf("core: interval %d: nil snapshot", p.t)
	}
	// Instrumentation is pay-for-use: with no observer the step performs
	// no clock reads and no churn bookkeeping at all.
	obs := p.cfg.Observer
	var stepStart time.Time
	if obs != nil {
		stepStart = time.Now()
	}
	// The aest detector's block aggregation is sensitive to sample
	// order, so a deterministic flow order is required for reproducible
	// runs. The snapshot carries it by construction; earlier revisions
	// re-sorted a map's keys here, O(n log n) every interval.
	if !snap.IsSorted() {
		return res, fmt.Errorf("core: interval %d: snapshot not sorted (call Sort after out-of-order appends)", p.t)
	}
	if DebugInvariants && !snap.verifySorted() {
		return res, fmt.Errorf("core: interval %d: snapshot columns mutated out of order", p.t)
	}
	res.TotalLoad = snap.TotalLoad()
	res.ActiveFlows = snap.Len()

	// Phase 1 for this interval: detect θ(t) if the interval carries
	// enough flows; otherwise reuse the running estimate.
	var detectStart time.Time
	if obs != nil {
		detectStart = time.Now()
	}
	if res.ActiveFlows >= p.cfg.MinFlows {
		var raw float64
		var err error
		var covered bool
		if p.cfg.Thresholds != nil {
			// A precomputed threshold column (the engine's batch
			// prepass) replaces inline detection for covered intervals —
			// value or error, exactly as the detector would have
			// produced them.
			raw, covered, err = p.cfg.Thresholds.RawThreshold(p.t)
		}
		if !covered {
			if p.sortedDet != nil {
				// Sorted-aware detectors read the snapshot's cached sorted
				// column — one sort per emitted interval, shared by every
				// pipeline stepping it — and must not modify either view.
				raw, err = p.sortedDet.DetectThresholdSorted(snap.Bandwidths(), snap.SortedBandwidths())
			} else {
				p.scratch = append(p.scratch[:0], snap.Bandwidths()...)
				raw, err = p.cfg.Detector.DetectThreshold(p.scratch)
			}
		}
		if err != nil {
			return res, fmt.Errorf("core: interval %d: %w", p.t, err)
		}
		res.RawThreshold = raw
	} else if p.ewma.Initialized() {
		res.RawThreshold = p.ewma.Value()
	} else {
		return res, fmt.Errorf("core: interval %d: only %d active flows and no prior threshold", p.t, res.ActiveFlows)
	}
	var detectNanos int64
	if obs != nil {
		detectNanos = time.Since(detectStart).Nanoseconds()
	}

	// θ̂(t): for the bootstrap interval the raw threshold doubles as
	// the smoothed one; afterwards the EWMA value carried over from
	// previous intervals is used, matching the paper's phase ordering.
	if !p.ewma.Initialized() {
		res.Threshold = res.RawThreshold
	} else {
		res.Threshold = p.ewma.Value()
	}

	// ID-aware classifiers index their flow columns by the snapshot's
	// dense IDs; batch producers emit plain prefix snapshots, so intern
	// here (one table hit per active flow — the only hash on the whole
	// classify path). Stream producers sharing p.table emit IDs already;
	// a column stamped by a different table (a producer wired to its own
	// private table) is re-interned rather than trusted.
	if p.needIDs {
		if !snap.HasIDs() || snap.IDTable() != p.table {
			p.table.FillIDs(snap)
		} else if DebugInvariants {
			for i := 0; i < snap.Len(); i++ {
				if p.table.PrefixOf(snap.ID(i)) != snap.Key(i) {
					return res, fmt.Errorf("core: interval %d: snapshot ID %d does not resolve to %v in the pipeline's table", p.t, snap.ID(i), snap.Key(i))
				}
			}
		}
	}

	var classifyStart time.Time
	if obs != nil {
		classifyStart = time.Now()
	}
	v := p.cfg.Classifier.Classify(snap, res.Threshold)
	var classifyEnd time.Time
	if obs != nil {
		classifyEnd = time.Now()
	}
	if DebugInvariants {
		if err := checkVerdict(snap, v); err != nil {
			return res, fmt.Errorf("core: interval %d: %s: %w", p.t, p.cfg.Classifier.Name(), err)
		}
	}
	for _, i := range v.Indices {
		res.ElephantLoad += snap.Bandwidth(i)
	}
	res.Elephants = mergeElephantsArena(snap, v, &p.arena)

	// Phase 2: fold θ(t) into the EWMA governing interval t+1, and tick
	// the table's quarantine clock — released IDs become reusable only
	// after enough intervals have closed that no open accumulator slot
	// can still reference them.
	p.ewma.Update(res.RawThreshold)
	if p.needIDs {
		p.table.Advance()
	}
	p.t++
	if obs != nil {
		promoted, demoted := Churn(p.prevElephants, res.Elephants)
		p.prevElephants = res.Elephants
		now := time.Now()
		obs.ObserveStep(StepObservation{
			Interval:      res.Interval,
			DetectNanos:   detectNanos,
			ClassifyNanos: classifyEnd.Sub(classifyStart).Nanoseconds(),
			FinalizeNanos: now.Sub(classifyEnd).Nanoseconds(),
			StepNanos:     now.Sub(stepStart).Nanoseconds(),
			RawThreshold:  res.RawThreshold,
			Threshold:     res.Threshold,
			TotalLoad:     res.TotalLoad,
			ElephantLoad:  res.ElephantLoad,
			ActiveFlows:   res.ActiveFlows,
			Elephants:     res.Elephants.Len(),
			Promoted:      promoted,
			Demoted:       demoted,
		})
	}
	return res, nil
}

// checkVerdict validates the Verdict ordering contract classifiers must
// uphold: ascending in-range indices and sorted off-snapshot flows.
func checkVerdict(snap *FlowSnapshot, v Verdict) error {
	for k, i := range v.Indices {
		if i < 0 || i >= snap.Len() {
			return fmt.Errorf("verdict index %d out of range [0,%d)", i, snap.Len())
		}
		if k > 0 && v.Indices[k-1] >= i {
			return fmt.Errorf("verdict indices not ascending at position %d", k)
		}
	}
	for k, p := range v.Offline {
		if k > 0 && ComparePrefix(v.Offline[k-1], p) >= 0 {
			return fmt.Errorf("verdict offline flows not sorted at position %d", k)
		}
		// Offline means absent from the snapshot; an overlap would
		// duplicate the flow in the merged elephant set.
		if _, ok := snap.Lookup(p); ok {
			return fmt.Errorf("verdict offline flow %v is present in the snapshot", p)
		}
	}
	return nil
}

// Threshold returns the current smoothed threshold θ̂ that will be used
// for the next interval.
func (p *Pipeline) Threshold() float64 { return p.ewma.Value() }

// Intervals reports how many intervals have been processed.
func (p *Pipeline) Intervals() int { return p.t }

// Config returns the pipeline's configuration (with defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }
