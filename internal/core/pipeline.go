package core

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/stats"
)

// Config assembles a classification pipeline.
type Config struct {
	// Detector is the phase-1 threshold detection technique. Required.
	Detector Detector
	// Alpha is the EWMA weight on the previous smoothed threshold:
	// θ̂(t+1) = α·θ̂(t) + (1−α)·θ(t). The paper finds α = 0.5
	// sufficiently smooth. Must be in [0, 1).
	Alpha float64
	// Classifier decides membership each interval. Required (use
	// SingleFeatureClassifier{} or NewLatentHeatClassifier).
	Classifier Classifier
	// MinFlows is the minimum number of active flows required to run
	// detection; below it the previous threshold is reused. Defaults
	// to 16.
	MinFlows int
}

// Result describes one classified interval.
type Result struct {
	// Interval is the 0-based interval index.
	Interval int
	// RawThreshold is θ(t) detected from this interval's data.
	RawThreshold float64
	// Threshold is θ̂(t), the smoothed threshold actually used to
	// classify this interval.
	Threshold float64
	// Elephants is the elephant set for the interval.
	Elephants map[netip.Prefix]bool
	// ElephantLoad is the total bandwidth of elephant flows (bit/s).
	ElephantLoad float64
	// TotalLoad is the total link load in the interval (bit/s).
	TotalLoad float64
	// ActiveFlows is the number of flows with positive bandwidth.
	ActiveFlows int
}

// ElephantCount returns the size of the interval's elephant set.
func (r *Result) ElephantCount() int { return len(r.Elephants) }

// LoadFraction returns the fraction of total traffic apportioned to
// elephants (0 when the link is idle).
func (r *Result) LoadFraction() float64 {
	if r.TotalLoad <= 0 {
		return 0
	}
	return r.ElephantLoad / r.TotalLoad
}

// Pipeline runs the two-phase methodology online: for each measurement
// interval it classifies flows against the current smoothed threshold
// θ̂(t), then detects this interval's raw threshold θ(t) and folds it
// into the EWMA that will govern the next interval.
type Pipeline struct {
	cfg  Config
	ewma *stats.EWMA
	t    int
	// scratch and keys reuse their backing arrays across intervals.
	scratch []float64
	keys    []netip.Prefix
}

// NewPipeline validates cfg and returns a ready pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("core: NewPipeline: Detector is required")
	}
	if cfg.Classifier == nil {
		return nil, fmt.Errorf("core: NewPipeline: Classifier is required")
	}
	if cfg.Alpha < 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("core: NewPipeline: alpha %v outside [0,1)", cfg.Alpha)
	}
	if cfg.MinFlows == 0 {
		cfg.MinFlows = 16
	}
	return &Pipeline{cfg: cfg, ewma: stats.NewEWMA(cfg.Alpha)}, nil
}

// Step processes one interval's snapshot (flow -> bandwidth in bit/s;
// only positive entries are meaningful) and returns the classification
// result. Calls must be made in interval order.
func (p *Pipeline) Step(snapshot map[netip.Prefix]float64) (Result, error) {
	res := Result{Interval: p.t}
	// Collect active flows in sorted key order. Map iteration order is
	// random, and the aest detector's block aggregation is sensitive to
	// sample order, so a deterministic order is required for
	// reproducible runs; sorting by prefix keeps the order independent
	// of the bandwidths themselves (block sums still behave like sums
	// of i.i.d. draws).
	p.keys = p.keys[:0]
	for pfx, bw := range snapshot {
		if bw > 0 {
			p.keys = append(p.keys, pfx)
			res.TotalLoad += bw
		}
	}
	sort.Slice(p.keys, func(i, j int) bool {
		if c := p.keys[i].Addr().Compare(p.keys[j].Addr()); c != 0 {
			return c < 0
		}
		return p.keys[i].Bits() < p.keys[j].Bits()
	})
	p.scratch = p.scratch[:0]
	for _, pfx := range p.keys {
		p.scratch = append(p.scratch, snapshot[pfx])
	}
	res.ActiveFlows = len(p.scratch)

	// Phase 1 for this interval: detect θ(t) if the interval carries
	// enough flows; otherwise reuse the running estimate.
	if res.ActiveFlows >= p.cfg.MinFlows {
		raw, err := p.cfg.Detector.DetectThreshold(p.scratch)
		if err != nil {
			return res, fmt.Errorf("core: interval %d: %w", p.t, err)
		}
		res.RawThreshold = raw
	} else if p.ewma.Initialized() {
		res.RawThreshold = p.ewma.Value()
	} else {
		return res, fmt.Errorf("core: interval %d: only %d active flows and no prior threshold", p.t, res.ActiveFlows)
	}

	// θ̂(t): for the bootstrap interval the raw threshold doubles as
	// the smoothed one; afterwards the EWMA value carried over from
	// previous intervals is used, matching the paper's phase ordering.
	if !p.ewma.Initialized() {
		res.Threshold = res.RawThreshold
	} else {
		res.Threshold = p.ewma.Value()
	}

	res.Elephants = p.cfg.Classifier.Classify(snapshot, res.Threshold)
	for pfx := range res.Elephants {
		res.ElephantLoad += snapshot[pfx]
	}

	// Phase 2: fold θ(t) into the EWMA governing interval t+1.
	p.ewma.Update(res.RawThreshold)
	p.t++
	return res, nil
}

// Threshold returns the current smoothed threshold θ̂ that will be used
// for the next interval.
func (p *Pipeline) Threshold() float64 { return p.ewma.Value() }

// Intervals reports how many intervals have been processed.
func (p *Pipeline) Intervals() int { return p.t }

// Config returns the pipeline's configuration (with defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }
