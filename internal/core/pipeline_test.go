package core

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
)

// fixedDetector returns a constant threshold, for isolating pipeline
// mechanics from detection.
type fixedDetector struct{ theta float64 }

func (d fixedDetector) DetectThreshold([]float64) (float64, error) { return d.theta, nil }
func (d fixedDetector) Name() string                               { return "fixed" }

func TestNewPipelineValidation(t *testing.T) {
	det := fixedDetector{10}
	cls := SingleFeatureClassifier{}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no detector", Config{Classifier: cls, Alpha: 0.5}},
		{"no classifier", Config{Detector: det, Alpha: 0.5}},
		{"alpha < 0", Config{Detector: det, Classifier: cls, Alpha: -0.1}},
		{"alpha = 1", Config{Detector: det, Classifier: cls, Alpha: 1}},
	}
	for _, tc := range cases {
		if _, err := NewPipeline(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPipelineBootstrapUsesRawThreshold(t *testing.T) {
	p, err := NewPipeline(Config{Detector: fixedDetector{100}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Step(snap(150, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.RawThreshold != 100 || res.Threshold != 100 {
		t.Errorf("bootstrap thresholds: raw=%v used=%v", res.RawThreshold, res.Threshold)
	}
	if !res.Elephants.Contains(pfx(0)) || res.Elephants.Contains(pfx(1)) {
		t.Errorf("elephants = %v", res.Elephants.Flows())
	}
}

// TestStepSnapshotOrderEnforced: the push-style entry point accepts
// exactly the next interval index and rejects gaps and replays, so a
// streaming producer cannot silently skew the EWMA timeline.
func TestStepSnapshotOrderEnforced(t *testing.T) {
	p, err := NewPipeline(Config{Detector: fixedDetector{100}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.StepSnapshot(1, snap(150)); err == nil {
		t.Error("gap (interval 1 before 0) accepted")
	}
	res, err := p.StepSnapshot(0, snap(150, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval != 0 {
		t.Errorf("Interval = %d", res.Interval)
	}
	if _, err := p.StepSnapshot(0, snap(150)); err == nil {
		t.Error("replay of interval 0 accepted")
	}
	if _, err := p.StepSnapshot(1, snap(150)); err != nil {
		t.Errorf("in-order step rejected: %v", err)
	}
	// Step and StepSnapshot share one interval counter.
	if _, err := p.Step(snap(150)); err != nil {
		t.Errorf("Step after StepSnapshot: %v", err)
	}
	if got := p.Intervals(); got != 3 {
		t.Errorf("Intervals = %d, want 3", got)
	}
}

// TestPipelinePhaseOrdering: interval t classifies with the EWMA carried
// from intervals < t; theta(t) only affects t+1. This is the paper's
// two-phase structure.
func TestPipelinePhaseOrdering(t *testing.T) {
	seq := []float64{100, 200, 400}
	i := 0
	det := detectorFunc(func([]float64) (float64, error) {
		v := seq[i]
		i++
		return v, nil
	})
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})

	r0, _ := p.Step(snap(1000))
	if r0.Threshold != 100 { // bootstrap
		t.Errorf("t0 used %v, want 100", r0.Threshold)
	}
	r1, _ := p.Step(snap(1000))
	// EWMA after t0: 100. t1 classifies with 100, then folds 200:
	// 0.5*100 + 0.5*200 = 150.
	if r1.Threshold != 100 {
		t.Errorf("t1 used %v, want 100 (theta(1) must not affect its own interval)", r1.Threshold)
	}
	r2, _ := p.Step(snap(1000))
	if r2.Threshold != 150 {
		t.Errorf("t2 used %v, want 150", r2.Threshold)
	}
	if got := p.Threshold(); got != 0.5*150+0.5*400 {
		t.Errorf("post-run EWMA = %v, want 275", got)
	}
	if p.Intervals() != 3 {
		t.Errorf("Intervals = %d", p.Intervals())
	}
}

type detectorFunc func([]float64) (float64, error)

func (f detectorFunc) DetectThreshold(b []float64) (float64, error) { return f(b) }
func (f detectorFunc) Name() string                                 { return "func" }

func TestPipelineMinFlowsReusesThreshold(t *testing.T) {
	calls := 0
	det := detectorFunc(func([]float64) (float64, error) {
		calls++
		return 100, nil
	})
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 3})

	if _, err := p.Step(snap(10, 20, 30)); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("detector calls = %d", calls)
	}
	// Two flows < MinFlows: detector must not run; previous estimate is
	// reused.
	res, err := p.Step(snap(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("detector ran on a sparse interval")
	}
	if res.RawThreshold != 100 {
		t.Errorf("reused threshold = %v", res.RawThreshold)
	}
}

func TestPipelineSparseFirstIntervalFails(t *testing.T) {
	p, _ := NewPipeline(Config{Detector: fixedDetector{1}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 5})
	if _, err := p.Step(snap(10)); err == nil {
		t.Error("sparse bootstrap interval must fail: no prior threshold exists")
	}
}

func TestPipelineResultAccounting(t *testing.T) {
	p, _ := NewPipeline(Config{Detector: fixedDetector{100}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	res, err := p.Step(snap(150, 250, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveFlows != 3 {
		t.Errorf("ActiveFlows = %d", res.ActiveFlows)
	}
	if res.TotalLoad != 450 {
		t.Errorf("TotalLoad = %v", res.TotalLoad)
	}
	if res.ElephantLoad != 400 {
		t.Errorf("ElephantLoad = %v", res.ElephantLoad)
	}
	if got := res.LoadFraction(); math.Abs(got-400.0/450) > 1e-12 {
		t.Errorf("LoadFraction = %v", got)
	}
	if res.ElephantCount() != 2 {
		t.Errorf("ElephantCount = %d", res.ElephantCount())
	}
}

func TestPipelineIgnoresNonPositiveBandwidths(t *testing.T) {
	p, _ := NewPipeline(Config{Detector: fixedDetector{10}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	s := SnapshotFromMap(map[netip.Prefix]float64{pfx(0): 100, pfx(1): 0, pfx(2): -5}, nil)
	res, err := p.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveFlows != 1 || res.TotalLoad != 100 {
		t.Errorf("res = %+v", res)
	}
}

func TestPipelineRejectsUnsortedSnapshot(t *testing.T) {
	p, _ := NewPipeline(Config{Detector: fixedDetector{10}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	s := NewFlowSnapshot(2)
	s.Append(pfx(3), 10)
	s.Append(pfx(1), 10) // out of order, no Sort call
	if _, err := p.Step(s); err == nil {
		t.Error("unsorted snapshot accepted")
	}
	if _, err := p.Step(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestPipelineDebugInvariants: with DebugInvariants enabled the O(n)
// re-verification catches columns mutated behind the sorted flag.
func TestPipelineDebugInvariants(t *testing.T) {
	DebugInvariants = true
	defer func() { DebugInvariants = false }()

	p, _ := NewPipeline(Config{Detector: fixedDetector{10}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	if _, err := p.Step(snap(100, 200)); err != nil {
		t.Fatalf("valid snapshot rejected under debug checks: %v", err)
	}
	s := snap(100, 200)
	keys := s.Keys()
	keys[0], keys[1] = keys[1], keys[0] // mutate behind the flag
	if _, err := p.Step(s); err == nil {
		t.Error("mutated snapshot passed the debug invariant check")
	}

	// An overlapping verdict (offline flow also present in the
	// snapshot) must be rejected too.
	overlap := classifierFunc(func(sn *FlowSnapshot, _ float64) Verdict {
		return Verdict{Offline: []netip.Prefix{sn.Key(0)}}
	})
	p2, _ := NewPipeline(Config{Detector: fixedDetector{10}, Alpha: 0.5, Classifier: overlap, MinFlows: 1})
	if _, err := p2.Step(snap(100)); err == nil {
		t.Error("verdict with snapshot/offline overlap passed the debug check")
	}
}

type classifierFunc func(*FlowSnapshot, float64) Verdict

func (f classifierFunc) Classify(s *FlowSnapshot, th float64) Verdict { return f(s, th) }
func (f classifierFunc) Name() string                                 { return "func" }

func TestLoadFractionIdleLink(t *testing.T) {
	r := Result{}
	if r.LoadFraction() != 0 {
		t.Error("idle link fraction must be 0")
	}
}

// TestPipelineAlphaZeroTracksRaw: with alpha=0 the smoothed threshold is
// just the previous interval's raw threshold.
func TestPipelineAlphaZeroTracksRaw(t *testing.T) {
	seq := []float64{100, 300, 700}
	i := 0
	det := detectorFunc(func([]float64) (float64, error) { v := seq[i]; i++; return v, nil })
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	p.Step(snap(1))
	r1, _ := p.Step(snap(1))
	r2, _ := p.Step(snap(1))
	if r1.Threshold != 100 || r2.Threshold != 300 {
		t.Errorf("thresholds: t1=%v t2=%v, want 100, 300", r1.Threshold, r2.Threshold)
	}
}

// TestPipelineSmoothness: higher alpha must yield a smoother threshold
// series (lower variance of increments) on noisy raw thresholds — the
// property the paper's alpha=0.5 choice relies on.
func TestPipelineSmoothness(t *testing.T) {
	variance := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(50))
		det := detectorFunc(func([]float64) (float64, error) {
			return 100 * math.Exp(rng.NormFloat64()), nil
		})
		p, _ := NewPipeline(Config{Detector: det, Alpha: alpha, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
		var prev float64
		var incs []float64
		for i := 0; i < 300; i++ {
			res, err := p.Step(snap(1))
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 {
				incs = append(incs, res.Threshold-prev)
			}
			prev = res.Threshold
		}
		var mean, m2 float64
		for _, x := range incs {
			mean += x
		}
		mean /= float64(len(incs))
		for _, x := range incs {
			m2 += (x - mean) * (x - mean)
		}
		return m2 / float64(len(incs))
	}
	v0, v9 := variance(0.01), variance(0.9)
	if v9 >= v0 {
		t.Errorf("alpha=0.9 increments variance %v >= alpha=0.01 variance %v", v9, v0)
	}
}

func TestPipelineDetectorErrorPropagates(t *testing.T) {
	det := detectorFunc(func([]float64) (float64, error) {
		return 0, errTest
	})
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	if _, err := p.Step(snap(1)); err == nil {
		t.Error("detector error swallowed")
	}
}

var errTest = &DetectorError{}

// DetectorError is a test-local error type.
type DetectorError struct{}

func (*DetectorError) Error() string { return "detector boom" }

func TestPipelineConfigEcho(t *testing.T) {
	p, _ := NewPipeline(Config{Detector: fixedDetector{1}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}})
	if p.Config().MinFlows != 16 {
		t.Errorf("default MinFlows = %d, want 16", p.Config().MinFlows)
	}
}

// TestPipelineResultOutlivesSnapshot: Result owns its storage, so
// resetting and refilling the snapshot for the next interval must not
// corrupt earlier results — the reuse contract the engine relies on.
func TestPipelineResultOutlivesSnapshot(t *testing.T) {
	p, _ := NewPipeline(Config{Detector: fixedDetector{100}, Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1})
	s := NewFlowSnapshot(2)
	s.Append(pfx(0), 150)
	s.Append(pfx(1), 50)
	r0, err := p.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	s.Append(pfx(5), 500)
	if _, err := p.Step(s); err != nil {
		t.Fatal(err)
	}
	if !r0.Elephants.Contains(pfx(0)) || r0.Elephants.Contains(pfx(5)) {
		t.Errorf("result corrupted by snapshot reuse: %v", r0.Elephants.Flows())
	}
}

// TestPipelineEndToEndWithLatentHeat is a small integration of pipeline +
// latent heat + constant-load detection over synthetic two-class traffic:
// persistent heavies must dominate the elephant set, transient bursters
// must not enter it.
func TestPipelineEndToEndWithLatentHeat(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	det, _ := NewConstantLoadDetector(0.8)
	lh, _ := NewLatentHeatClassifier(6)
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: lh, MinFlows: 1})

	const heavies, mice = 10, 200
	var lastElephants ElephantSet
	s := NewFlowSnapshot(heavies + mice)
	for t0 := 0; t0 < 40; t0++ {
		s.Reset()
		for i := 0; i < heavies; i++ {
			s.Append(pfx(i), 1000*math.Exp(rng.NormFloat64()*0.2))
		}
		for i := heavies; i < heavies+mice; i++ {
			bw := 5 * math.Exp(rng.NormFloat64()*0.5)
			if rng.Float64() < 0.01 {
				bw = 2000 // rare one-interval burst
			}
			s.Append(pfx(i), bw)
		}
		res, err := p.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		lastElephants = res.Elephants
	}
	for i := 0; i < heavies; i++ {
		if !lastElephants.Contains(pfx(i)) {
			t.Errorf("persistent heavy flow %d not in final elephant set", i)
		}
	}
	for _, p0 := range lastElephants.Flows() {
		found := false
		for i := 0; i < heavies; i++ {
			if p0 == pfx(i) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("transient flow %v in final elephant set", p0)
		}
	}
}
