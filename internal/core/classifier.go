package core

import (
	"fmt"
	"net/netip"
	"slices"
)

// Class is a flow's classification state: the underlying two-state
// process the scheme induces on every flow.
type Class uint8

// Class values.
const (
	Mouse Class = iota
	Elephant
)

// String returns "mouse" or "elephant".
func (c Class) String() string {
	if c == Elephant {
		return "elephant"
	}
	return "mouse"
}

// Verdict is a classifier's elephant set for one interval, expressed
// against the classified snapshot: Indices are positions in the
// snapshot's columns (ascending), Offline lists flows that carried no
// traffic this interval but are still classified as elephants from
// history (latent-heat carryover), sorted by ComparePrefix.
//
// A Verdict may alias classifier-internal buffers; it is only valid
// until the next Classify call. Pipeline.Step copies what it keeps.
type Verdict struct {
	Indices []int
	Offline []netip.Prefix
}

// Classifier decides, once per interval, which flows are elephants given
// the interval's columnar snapshot and the smoothed threshold.
type Classifier interface {
	// Classify returns the elephant verdict for the interval. snap holds
	// each active flow's average bandwidth x_j(t) in sorted order;
	// thresholdHat is θ̂(t). Implementations may maintain per-flow
	// history across calls; calls must be made in interval order.
	Classify(snap *FlowSnapshot, thresholdHat float64) Verdict
	// Name identifies the scheme in reports.
	Name() string
}

// SingleFeatureClassifier implements the paper's single-feature scheme:
// flow j is an elephant at interval t iff x_j(t) > θ̂(t).
type SingleFeatureClassifier struct{}

// Name implements Classifier.
func (SingleFeatureClassifier) Name() string { return "single-feature" }

// Classify implements Classifier.
func (SingleFeatureClassifier) Classify(snap *FlowSnapshot, thresholdHat float64) Verdict {
	var v Verdict
	for i, bw := range snap.Bandwidths() {
		if bw > thresholdHat {
			v.Indices = append(v.Indices, i)
		}
	}
	return v
}

// LatentHeatClassifier implements the two-feature scheme. For every flow
// it maintains the "latent heat"
//
//	LH_j(t) = Σ_{i=t-W+1..t} ( x_j(i) − θ̂(i) )
//
// over the past W timeslots (the paper uses W=12, one hour of 5-minute
// slots) and classifies flow j as an elephant iff LH_j(t) > 0. Slots
// before a flow's first appearance, and slots where it was idle, count
// as x_j(i) = 0, so a mouse must overshoot the accumulated threshold
// deficit before it is promoted — this is what filters one-interval
// bursts.
//
// Per-flow state lives in flat columns indexed by the dense IDs of a
// FlowTable, not in a prefix-keyed map: the per-interval cost of a flow
// is a handful of slice loads instead of hash lookups, the window sum
// is maintained incrementally (subtract the slot falling out of the
// window, add the new one) instead of re-summed over W slots, and the
// idle pass sweeps only the flows currently holding state instead of
// iterating a map. The pipeline binds its table via BindTable; driven
// standalone, the classifier owns a private table and interns snapshot
// keys itself.
//
// Equivalence note: the incremental window sum associates float
// additions differently than re-summing the ring each interval, so for
// generic (non-representable) bandwidths the sum can differ from the
// historical implementation in the last ulps — the classification
// DECISION is equivalent unless a flow's latent heat sits within ~1
// ulp of zero, and the sum is exact whenever bandwidths and thresholds
// are integer-representable (the dual-implementation test asserts
// bit-equality there). A per-flow nonzero-slot counter snaps the sum
// back to exactly 0 when the window fully drains, so no residue can
// misclassify an idle flow or block its eviction.
type LatentHeatClassifier struct {
	// Window is W, the number of timeslots summed. Must be >= 1.
	Window int
	// EvictAfter drops a flow's state after this many consecutive idle
	// intervals with non-positive latent heat, bounding memory on
	// long runs. Zero selects 4*Window.
	EvictAfter int

	t int // intervals processed

	// thrHist is the ring of the last Window thresholds; thresholdSum
	// re-sums it in chronological order (W terms once per interval, not
	// per flow), which keeps the float arithmetic identical to the
	// historical slice-of-thresholds implementation.
	thrHist []float64

	table    *FlowTable
	ownTable bool // created lazily here, so Classify advances it too

	// Flow columns, indexed by table ID. hist is the flattened ring of
	// per-flow bandwidth windows in slot-major layout: flow id's slot s
	// lives at hist[s*stride+id], stride being the flow capacity. One
	// interval reads and writes a single slot plane, so the per-flow
	// access pattern is a near-sequential walk of contiguous memory in
	// snapshot ID order rather than a Window-sized stride per flow —
	// the difference between streaming ~8 bytes and pulling a fresh
	// cache line per flow per interval. winSum is the incrementally
	// maintained window bandwidth sum; nzSlots counts the ring's
	// nonzero slots so winSum snaps back to exactly 0 when a flow's
	// window fully drains (no float residue can leak into
	// classification or block eviction).
	hist     []float64
	stride   int
	winSum   []float64
	nzSlots  []int32
	idleRuns []int32
	lastSeen []int32
	live     []bool
	liveIDs  []uint32 // iteration order for the idle sweep

	// scratch buffers reused across Classify calls; the returned
	// Verdict aliases them.
	idx     []int
	offline []netip.Prefix
}

// NewLatentHeatClassifier returns a classifier with the given window.
func NewLatentHeatClassifier(window int) (*LatentHeatClassifier, error) {
	if window < 1 {
		return nil, fmt.Errorf("core: latent-heat window %d < 1", window)
	}
	return &LatentHeatClassifier{
		Window:  window,
		thrHist: make([]float64, window),
	}, nil
}

// Name implements Classifier.
func (c *LatentHeatClassifier) Name() string { return "latent-heat" }

// BindTable attaches the pipeline's flow table. Must be called before
// the first Classify; the table's owner drives its quarantine clock.
// Snapshot ID columns handed to Classify must come from this table.
func (c *LatentHeatClassifier) BindTable(tb *FlowTable) {
	c.table = tb
	c.ownTable = false
}

// thresholdSum returns Σ θ̂ over the last min(t, Window) slots including
// the current one, summed oldest-first.
func (c *LatentHeatClassifier) thresholdSum() float64 {
	var s float64
	if c.t < c.Window {
		for i := 0; i < c.t; i++ {
			s += c.thrHist[i]
		}
		return s
	}
	start := c.t % c.Window // oldest slot in the ring
	for k := 0; k < c.Window; k++ {
		i := start + k
		if i >= c.Window {
			i -= c.Window
		}
		s += c.thrHist[i]
	}
	return s
}

// LatentHeat returns the current latent heat of flow p, and whether the
// flow is known. Valid after at least one Classify call.
func (c *LatentHeatClassifier) LatentHeat(p netip.Prefix) (float64, bool) {
	if c.table == nil {
		return 0, false
	}
	id, ok := c.table.Lookup(p)
	if !ok || int(id) >= len(c.live) || !c.live[id] {
		return 0, false
	}
	return c.winSum[id] - c.thresholdSum(), true
}

// ensureFlow grows the flow columns to cover id. The ring's slot-major
// planes grow by capacity doubling: each plane of the old stride is
// copied into its position under the new stride, preserving every
// flow's window verbatim.
func (c *LatentHeatClassifier) ensureFlow(id uint32) {
	if int(id) < len(c.live) {
		return
	}
	n := int(id) + 1
	if n > c.stride {
		stride := c.stride * 2
		if stride < n {
			stride = n
		}
		if stride < 256 {
			stride = 256
		}
		hist := make([]float64, c.Window*stride)
		for s := 0; s < c.Window; s++ {
			copy(hist[s*stride:], c.hist[s*c.stride:(s+1)*c.stride])
		}
		c.hist, c.stride = hist, stride
	}
	c.winSum = append(c.winSum, make([]float64, n-len(c.winSum))...)
	c.nzSlots = append(c.nzSlots, make([]int32, n-len(c.nzSlots))...)
	c.idleRuns = append(c.idleRuns, make([]int32, n-len(c.idleRuns))...)
	c.lastSeen = append(c.lastSeen, make([]int32, n-len(c.lastSeen))...)
	c.live = append(c.live, make([]bool, n-len(c.live))...)
}

// evict clears a flow's columns and hands its ID back to the table's
// quarantine. The zeroed state is what makes ID recycling safe inside
// the classifier: a future flow admitted under this ID starts from the
// same all-zero history a brand-new map entry used to get.
func (c *LatentHeatClassifier) evict(id uint32) {
	for s := 0; s < c.Window; s++ {
		c.hist[s*c.stride+int(id)] = 0
	}
	c.winSum[id] = 0
	c.nzSlots[id] = 0
	c.idleRuns[id] = 0
	c.lastSeen[id] = 0
	c.live[id] = false
	c.table.Release(id)
}

// Classify implements Classifier.
func (c *LatentHeatClassifier) Classify(snap *FlowSnapshot, thresholdHat float64) Verdict {
	evictAfter := c.EvictAfter
	if evictAfter == 0 {
		evictAfter = 4 * c.Window
	}
	if c.table == nil {
		c.table = NewFlowTable()
		c.ownTable = true
	}
	// Standalone use: intern the snapshot's keys against the private
	// table (FillIDs also re-interns columns stamped by a foreign
	// table). Pipeline-driven snapshots already carry this table's IDs.
	if !snap.HasIDs() || snap.IDTable() != c.table {
		c.table.FillIDs(snap)
	}
	slot := c.t % c.Window
	c.thrHist[slot] = thresholdHat // θ̂(t) enters the window
	c.t++

	// Update or admit the interval's active flows. Snapshot entries are
	// strictly positive, so lastSeen doubles as the "seen this interval"
	// marker for the idle pass below.
	seen := int32(c.t)
	for i := 0; i < snap.Len(); i++ {
		id, bw := snap.ID(i), snap.Bandwidth(i)
		c.ensureFlow(id)
		if !c.live[id] {
			c.live[id] = true
			c.liveIDs = append(c.liveIDs, id)
		}
		cell := &c.hist[slot*c.stride+int(id)]
		if old := *cell; old != 0 {
			c.winSum[id] += bw - old
		} else {
			c.nzSlots[id]++
			c.winSum[id] += bw
		}
		*cell = bw
		c.idleRuns[id] = 0
		c.lastSeen[id] = seen
	}

	thrSum := c.thresholdSum()
	c.idx = c.idx[:0]
	c.offline = c.offline[:0]
	// Active flows, in snapshot (hence sorted) order.
	for i := 0; i < snap.Len(); i++ {
		if c.winSum[snap.ID(i)]-thrSum > 0 {
			c.idx = append(c.idx, i)
		}
	}
	// Idle flows: zero this interval's slot, then either keep them as
	// elephants on accumulated heat or age them toward eviction. The
	// sweep covers exactly the flows holding state (liveIDs), compacting
	// out evictions in place.
	w := 0
	for _, id := range c.liveIDs {
		if c.lastSeen[id] == seen {
			c.liveIDs[w] = id
			w++
			continue
		}
		cell := &c.hist[slot*c.stride+int(id)]
		if old := *cell; old != 0 {
			*cell = 0
			c.nzSlots[id]--
			if c.nzSlots[id] == 0 {
				c.winSum[id] = 0
			} else {
				c.winSum[id] -= old
			}
		}
		c.idleRuns[id]++
		if c.winSum[id]-thrSum > 0 {
			c.offline = append(c.offline, c.table.PrefixOf(id))
		} else if int(c.idleRuns[id]) >= evictAfter {
			c.evict(id)
			continue
		}
		c.liveIDs[w] = id
		w++
	}
	c.liveIDs = c.liveIDs[:w]
	slices.SortFunc(c.offline, ComparePrefix)
	if c.ownTable {
		c.table.Advance()
	}
	return Verdict{Indices: c.idx, Offline: c.offline}
}

// TrackedFlows reports how many flows currently hold history state.
func (c *LatentHeatClassifier) TrackedFlows() int { return len(c.liveIDs) }
