package core

import (
	"fmt"
	"net/netip"
)

// Class is a flow's classification state: the underlying two-state
// process the scheme induces on every flow.
type Class uint8

// Class values.
const (
	Mouse Class = iota
	Elephant
)

// String returns "mouse" or "elephant".
func (c Class) String() string {
	if c == Elephant {
		return "elephant"
	}
	return "mouse"
}

// Classifier decides, once per interval, which flows are elephants given
// the interval's bandwidths and the smoothed threshold.
type Classifier interface {
	// Classify returns the elephant set for the interval. snapshot maps
	// each active flow to its average bandwidth x_j(t); thresholdHat is
	// θ̂(t). Implementations may maintain per-flow history across
	// calls; calls must be made in interval order.
	Classify(snapshot map[netip.Prefix]float64, thresholdHat float64) map[netip.Prefix]bool
	// Name identifies the scheme in reports.
	Name() string
}

// SingleFeatureClassifier implements the paper's single-feature scheme:
// flow j is an elephant at interval t iff x_j(t) > θ̂(t).
type SingleFeatureClassifier struct{}

// Name implements Classifier.
func (SingleFeatureClassifier) Name() string { return "single-feature" }

// Classify implements Classifier.
func (SingleFeatureClassifier) Classify(snapshot map[netip.Prefix]float64, thresholdHat float64) map[netip.Prefix]bool {
	out := make(map[netip.Prefix]bool)
	for p, bw := range snapshot {
		if bw > thresholdHat {
			out[p] = true
		}
	}
	return out
}

// LatentHeatClassifier implements the two-feature scheme. For every flow
// it maintains the "latent heat"
//
//	LH_j(t) = Σ_{i=t-W+1..t} ( x_j(i) − θ̂(i) )
//
// over the past W timeslots (the paper uses W=12, one hour of 5-minute
// slots) and classifies flow j as an elephant iff LH_j(t) > 0. Slots
// before a flow's first appearance, and slots where it was idle, count
// as x_j(i) = 0, so a mouse must overshoot the accumulated threshold
// deficit before it is promoted — this is what filters one-interval
// bursts.
type LatentHeatClassifier struct {
	// Window is W, the number of timeslots summed. Must be >= 1.
	Window int

	t       int // intervals processed
	history []float64
	// flows maps each known flow to its ring buffer of historical
	// bandwidths for the last Window slots.
	flows map[netip.Prefix]*flowHistory
	// EvictAfter drops a flow's state after this many consecutive idle
	// intervals with non-positive latent heat, bounding memory on
	// long runs. Zero selects 4*Window.
	EvictAfter int
}

type flowHistory struct {
	bw       []float64 // ring buffer, len == Window
	idleRuns int
	lastSeen int
}

// NewLatentHeatClassifier returns a classifier with the given window.
func NewLatentHeatClassifier(window int) (*LatentHeatClassifier, error) {
	if window < 1 {
		return nil, fmt.Errorf("core: latent-heat window %d < 1", window)
	}
	return &LatentHeatClassifier{
		Window: window,
		flows:  make(map[netip.Prefix]*flowHistory),
	}, nil
}

// Name implements Classifier.
func (c *LatentHeatClassifier) Name() string { return "latent-heat" }

// thresholdSum returns Σ θ̂ over the last min(t, Window) slots including
// the current one.
func (c *LatentHeatClassifier) thresholdSum() float64 {
	var s float64
	n := len(c.history)
	w := c.Window
	if n < w {
		w = n
	}
	for i := n - w; i < n; i++ {
		s += c.history[i]
	}
	return s
}

// LatentHeat returns the current latent heat of flow p, and whether the
// flow is known. Valid after at least one Classify call.
func (c *LatentHeatClassifier) LatentHeat(p netip.Prefix) (float64, bool) {
	fh, ok := c.flows[p]
	if !ok {
		return 0, false
	}
	var bwSum float64
	for _, b := range fh.bw {
		bwSum += b
	}
	return bwSum - c.thresholdSum(), true
}

// Classify implements Classifier.
func (c *LatentHeatClassifier) Classify(snapshot map[netip.Prefix]float64, thresholdHat float64) map[netip.Prefix]bool {
	evictAfter := c.EvictAfter
	if evictAfter == 0 {
		evictAfter = 4 * c.Window
	}
	// Record θ̂(t); keep only the last Window values.
	c.history = append(c.history, thresholdHat)
	if len(c.history) > c.Window {
		c.history = c.history[len(c.history)-c.Window:]
	}
	slot := c.t % c.Window
	c.t++

	// Update known flows (including ones idle this interval).
	for p, fh := range c.flows {
		bw := snapshot[p]
		fh.bw[slot] = bw
		if bw > 0 {
			fh.idleRuns = 0
			fh.lastSeen = c.t
		} else {
			fh.idleRuns++
		}
	}
	// Admit newly seen flows.
	for p, bw := range snapshot {
		if _, ok := c.flows[p]; ok {
			continue
		}
		fh := &flowHistory{bw: make([]float64, c.Window), lastSeen: c.t}
		fh.bw[slot] = bw
		c.flows[p] = fh
	}

	thrSum := c.thresholdSum()
	out := make(map[netip.Prefix]bool)
	for p, fh := range c.flows {
		var bwSum float64
		for _, b := range fh.bw {
			bwSum += b
		}
		if bwSum-thrSum > 0 {
			out[p] = true
		} else if fh.idleRuns >= evictAfter {
			delete(c.flows, p)
		}
	}
	return out
}

// TrackedFlows reports how many flows currently hold history state.
func (c *LatentHeatClassifier) TrackedFlows() int { return len(c.flows) }
