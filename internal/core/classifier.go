package core

import (
	"fmt"
	"net/netip"
	"sort"
)

// Class is a flow's classification state: the underlying two-state
// process the scheme induces on every flow.
type Class uint8

// Class values.
const (
	Mouse Class = iota
	Elephant
)

// String returns "mouse" or "elephant".
func (c Class) String() string {
	if c == Elephant {
		return "elephant"
	}
	return "mouse"
}

// Verdict is a classifier's elephant set for one interval, expressed
// against the classified snapshot: Indices are positions in the
// snapshot's columns (ascending), Offline lists flows that carried no
// traffic this interval but are still classified as elephants from
// history (latent-heat carryover), sorted by ComparePrefix.
//
// A Verdict may alias classifier-internal buffers; it is only valid
// until the next Classify call. Pipeline.Step copies what it keeps.
type Verdict struct {
	Indices []int
	Offline []netip.Prefix
}

// Classifier decides, once per interval, which flows are elephants given
// the interval's columnar snapshot and the smoothed threshold.
type Classifier interface {
	// Classify returns the elephant verdict for the interval. snap holds
	// each active flow's average bandwidth x_j(t) in sorted order;
	// thresholdHat is θ̂(t). Implementations may maintain per-flow
	// history across calls; calls must be made in interval order.
	Classify(snap *FlowSnapshot, thresholdHat float64) Verdict
	// Name identifies the scheme in reports.
	Name() string
}

// SingleFeatureClassifier implements the paper's single-feature scheme:
// flow j is an elephant at interval t iff x_j(t) > θ̂(t).
type SingleFeatureClassifier struct{}

// Name implements Classifier.
func (SingleFeatureClassifier) Name() string { return "single-feature" }

// Classify implements Classifier.
func (SingleFeatureClassifier) Classify(snap *FlowSnapshot, thresholdHat float64) Verdict {
	var v Verdict
	for i, bw := range snap.Bandwidths() {
		if bw > thresholdHat {
			v.Indices = append(v.Indices, i)
		}
	}
	return v
}

// LatentHeatClassifier implements the two-feature scheme. For every flow
// it maintains the "latent heat"
//
//	LH_j(t) = Σ_{i=t-W+1..t} ( x_j(i) − θ̂(i) )
//
// over the past W timeslots (the paper uses W=12, one hour of 5-minute
// slots) and classifies flow j as an elephant iff LH_j(t) > 0. Slots
// before a flow's first appearance, and slots where it was idle, count
// as x_j(i) = 0, so a mouse must overshoot the accumulated threshold
// deficit before it is promoted — this is what filters one-interval
// bursts.
type LatentHeatClassifier struct {
	// Window is W, the number of timeslots summed. Must be >= 1.
	Window int

	t       int // intervals processed
	history []float64
	// flows maps each known flow to its ring buffer of historical
	// bandwidths for the last Window slots.
	flows map[netip.Prefix]*flowHistory
	// EvictAfter drops a flow's state after this many consecutive idle
	// intervals with non-positive latent heat, bounding memory on
	// long runs. Zero selects 4*Window.
	EvictAfter int

	// scratch buffers reused across Classify calls; the returned
	// Verdict aliases them.
	idx     []int
	offline []netip.Prefix
}

type flowHistory struct {
	bw       []float64 // ring buffer, len == Window
	idleRuns int
	lastSeen int
}

// NewLatentHeatClassifier returns a classifier with the given window.
func NewLatentHeatClassifier(window int) (*LatentHeatClassifier, error) {
	if window < 1 {
		return nil, fmt.Errorf("core: latent-heat window %d < 1", window)
	}
	return &LatentHeatClassifier{
		Window: window,
		flows:  make(map[netip.Prefix]*flowHistory),
	}, nil
}

// Name implements Classifier.
func (c *LatentHeatClassifier) Name() string { return "latent-heat" }

// thresholdSum returns Σ θ̂ over the last min(t, Window) slots including
// the current one.
func (c *LatentHeatClassifier) thresholdSum() float64 {
	var s float64
	n := len(c.history)
	w := c.Window
	if n < w {
		w = n
	}
	for i := n - w; i < n; i++ {
		s += c.history[i]
	}
	return s
}

// LatentHeat returns the current latent heat of flow p, and whether the
// flow is known. Valid after at least one Classify call.
func (c *LatentHeatClassifier) LatentHeat(p netip.Prefix) (float64, bool) {
	fh, ok := c.flows[p]
	if !ok {
		return 0, false
	}
	var bwSum float64
	for _, b := range fh.bw {
		bwSum += b
	}
	return bwSum - c.thresholdSum(), true
}

// Classify implements Classifier.
func (c *LatentHeatClassifier) Classify(snap *FlowSnapshot, thresholdHat float64) Verdict {
	evictAfter := c.EvictAfter
	if evictAfter == 0 {
		evictAfter = 4 * c.Window
	}
	// Record θ̂(t); keep only the last Window values.
	c.history = append(c.history, thresholdHat)
	if len(c.history) > c.Window {
		c.history = c.history[len(c.history)-c.Window:]
	}
	slot := c.t % c.Window
	c.t++

	// Update or admit the interval's active flows. Snapshot entries are
	// strictly positive, so lastSeen doubles as the "seen this interval"
	// marker for the idle pass below.
	for i := 0; i < snap.Len(); i++ {
		p, bw := snap.Key(i), snap.Bandwidth(i)
		fh, ok := c.flows[p]
		if !ok {
			fh = &flowHistory{bw: make([]float64, c.Window)}
			c.flows[p] = fh
		}
		fh.bw[slot] = bw
		fh.idleRuns = 0
		fh.lastSeen = c.t
	}

	thrSum := c.thresholdSum()
	c.idx = c.idx[:0]
	c.offline = c.offline[:0]
	// Active flows, in snapshot (hence sorted) order.
	for i := 0; i < snap.Len(); i++ {
		fh := c.flows[snap.Key(i)]
		var bwSum float64
		for _, b := range fh.bw {
			bwSum += b
		}
		if bwSum-thrSum > 0 {
			c.idx = append(c.idx, i)
		}
	}
	// Idle flows: zero this interval's slot, then either keep them as
	// elephants on accumulated heat or age them toward eviction.
	for p, fh := range c.flows {
		if fh.lastSeen == c.t {
			continue
		}
		fh.bw[slot] = 0
		fh.idleRuns++
		var bwSum float64
		for _, b := range fh.bw {
			bwSum += b
		}
		if bwSum-thrSum > 0 {
			c.offline = append(c.offline, p)
		} else if fh.idleRuns >= evictAfter {
			delete(c.flows, p)
		}
	}
	sort.Slice(c.offline, func(i, j int) bool {
		return ComparePrefix(c.offline[i], c.offline[j]) < 0
	})
	return Verdict{Indices: c.idx, Offline: c.offline}
}

// TrackedFlows reports how many flows currently hold history state.
func (c *LatentHeatClassifier) TrackedFlows() int { return len(c.flows) }
