package core

import "testing"

// recordingObserver captures every observation it receives.
type recordingObserver struct{ obs []StepObservation }

func (r *recordingObserver) ObserveStep(o StepObservation) { r.obs = append(r.obs, o) }

func TestObserverReceivesStepDigest(t *testing.T) {
	rec := &recordingObserver{}
	p, err := NewPipeline(Config{
		Detector:   fixedDetector{100},
		Alpha:      0.5,
		Classifier: SingleFeatureClassifier{},
		MinFlows:   1,
		Observer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Interval 0: flows {150, 50, 30} against theta 100 — one elephant.
	r0, err := p.Step(snap(150, 50, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Interval 1: flows {150, 120, 30} — pfx(1) promoted.
	if _, err := p.Step(snap(150, 120, 30)); err != nil {
		t.Fatal(err)
	}
	// Interval 2: flows {30, 120, 30} — pfx(0) demoted.
	if _, err := p.Step(snap(30, 120, 30)); err != nil {
		t.Fatal(err)
	}

	if len(rec.obs) != 3 {
		t.Fatalf("observer saw %d observations, want 3", len(rec.obs))
	}
	o0, o1, o2 := rec.obs[0], rec.obs[1], rec.obs[2]

	if o0.Interval != 0 || o1.Interval != 1 || o2.Interval != 2 {
		t.Errorf("intervals = %d,%d,%d", o0.Interval, o1.Interval, o2.Interval)
	}
	if o0.RawThreshold != 100 || o0.Threshold != r0.Threshold {
		t.Errorf("o0 thresholds raw=%v used=%v (result used=%v)", o0.RawThreshold, o0.Threshold, r0.Threshold)
	}
	if o0.TotalLoad != 230 || o0.ElephantLoad != 150 {
		t.Errorf("o0 loads total=%v elephant=%v", o0.TotalLoad, o0.ElephantLoad)
	}
	if o0.ActiveFlows != 3 || o0.Elephants != 1 {
		t.Errorf("o0 counts flows=%d elephants=%d", o0.ActiveFlows, o0.Elephants)
	}
	// First observed interval: the whole set counts as promoted.
	if o0.Promoted != 1 || o0.Demoted != 0 {
		t.Errorf("o0 churn = +%d/-%d, want +1/-0", o0.Promoted, o0.Demoted)
	}
	if o1.Promoted != 1 || o1.Demoted != 0 {
		t.Errorf("o1 churn = +%d/-%d, want +1/-0", o1.Promoted, o1.Demoted)
	}
	if o2.Promoted != 0 || o2.Demoted != 1 {
		t.Errorf("o2 churn = +%d/-%d, want +0/-1", o2.Promoted, o2.Demoted)
	}
	for i, o := range rec.obs {
		if o.DetectNanos < 0 || o.ClassifyNanos < 0 || o.FinalizeNanos < 0 {
			t.Errorf("obs %d: negative stage time %+v", i, o)
		}
		if o.StepNanos < o.DetectNanos+o.ClassifyNanos+o.FinalizeNanos {
			t.Errorf("obs %d: StepNanos %d < sum of stages", i, o.StepNanos)
		}
	}
}

// TestObserverDoesNotChangeResults: an attached observer is pure
// instrumentation — every Result field stays identical to the
// uninstrumented run.
func TestObserverDoesNotChangeResults(t *testing.T) {
	mk := func(obs StageObserver) *Pipeline {
		p, err := NewPipeline(Config{
			Detector:   fixedDetector{90},
			Alpha:      0.5,
			Classifier: SingleFeatureClassifier{},
			MinFlows:   1,
			Observer:   obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	bare, inst := mk(nil), mk(&recordingObserver{})
	intervals := [][]float64{{150, 50}, {80, 120, 95}, {10, 20}, {300}}
	for i, bws := range intervals {
		rb, errB := bare.Step(snap(bws...))
		ri, errI := inst.Step(snap(bws...))
		if (errB == nil) != (errI == nil) {
			t.Fatalf("interval %d: error mismatch: %v vs %v", i, errB, errI)
		}
		if rb.RawThreshold != ri.RawThreshold || rb.Threshold != ri.Threshold ||
			rb.ElephantLoad != ri.ElephantLoad || rb.TotalLoad != ri.TotalLoad ||
			rb.ActiveFlows != ri.ActiveFlows || !rb.Elephants.Equal(ri.Elephants) {
			t.Errorf("interval %d: results diverge: %+v vs %+v", i, rb, ri)
		}
	}
}

// TestObserverSkippedOnError: failed steps observe nothing — the digest
// stream contains exactly the classified intervals.
func TestObserverSkippedOnError(t *testing.T) {
	rec := &recordingObserver{}
	p, err := NewPipeline(Config{
		Detector:   fixedDetector{100},
		Alpha:      0.5,
		Classifier: SingleFeatureClassifier{},
		MinFlows:   4,
		Observer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Below MinFlows with no prior threshold: the step fails.
	if _, err := p.Step(snap(150, 50)); err == nil {
		t.Fatal("sparse bootstrap accepted")
	}
	if len(rec.obs) != 0 {
		t.Fatalf("failed step observed: %+v", rec.obs)
	}
	if _, err := p.Step(snap(150, 50, 30, 20)); err != nil {
		t.Fatal(err)
	}
	if len(rec.obs) != 1 {
		t.Fatalf("observer saw %d observations, want 1", len(rec.obs))
	}
}

func TestChurn(t *testing.T) {
	set := func(idx ...int) ElephantSet {
		s := NewFlowSnapshot(len(idx))
		for _, i := range idx {
			s.Append(pfx(i), 1)
		}
		return mergeElephants(s, Verdict{Indices: seqIndices(len(idx))})
	}
	cases := []struct {
		name              string
		prev, cur         ElephantSet
		promoted, demoted int
	}{
		{"both empty", set(), set(), 0, 0},
		{"all new", set(), set(1, 2, 3), 3, 0},
		{"all gone", set(1, 2, 3), set(), 0, 3},
		{"identical", set(1, 2), set(1, 2), 0, 0},
		{"overlap", set(1, 2, 5), set(2, 5, 7, 9), 2, 1},
		{"disjoint", set(1, 3), set(2, 4), 2, 2},
	}
	for _, tc := range cases {
		p, d := Churn(tc.prev, tc.cur)
		if p != tc.promoted || d != tc.demoted {
			t.Errorf("%s: Churn = +%d/-%d, want +%d/-%d", tc.name, p, d, tc.promoted, tc.demoted)
		}
	}
}

func seqIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
