package core

// StageObserver receives one StepObservation per classified interval —
// the pipeline's per-stage instrumentation hook. It is optional and off
// by default: a nil Config.Observer adds nothing to Step but one branch,
// so batch paths (the engine's figure and matrix runs, whose outputs are
// pinned byte-identical and alloc-free) stay uninstrumented, while the
// resident daemon attaches an observer per link. The observer is called
// on the goroutine driving Step, after the interval's result is
// complete and before Step returns; implementations must not retain
// references into the snapshot (the Result-ownership rule applies: the
// observation carries only scalars).
//
// Observing must be cheap and allocation-free: the observer runs inside
// the per-interval hot path, and the repository pins the instrumented
// live step at zero allocations per interval.
type StageObserver interface {
	ObserveStep(StepObservation)
}

// StepObservation is one interval's instrumentation digest: where the
// step spent its time, what the detector produced, and how the elephant
// set moved. All fields are scalars — safe to retain, hash or ship.
type StepObservation struct {
	// Interval is the 0-based interval index, matching Result.Interval.
	Interval int
	// DetectNanos is wall time spent producing the raw threshold θ(t):
	// the detector call, or the threshold-source lookup, or (below
	// MinFlows) the reuse of the running estimate.
	DetectNanos int64
	// ClassifyNanos is wall time spent in the classifier's Classify.
	ClassifyNanos int64
	// FinalizeNanos is wall time spent after classification: summing
	// elephant load, materialising the elephant set, churn against the
	// previous interval, and folding θ(t) into the EWMA.
	FinalizeNanos int64
	// StepNanos is the whole step's wall time (≥ the sum of the stages;
	// the remainder is snapshot validation and ID filling).
	StepNanos int64
	// RawThreshold and Threshold are θ(t) and θ̂(t) — Result's values.
	RawThreshold float64
	Threshold    float64
	// TotalLoad and ElephantLoad mirror Result (bit/s).
	TotalLoad    float64
	ElephantLoad float64
	// ActiveFlows and Elephants are the interval's flow and elephant
	// counts.
	ActiveFlows int
	Elephants   int
	// Promoted and Demoted count elephant-set membership churn against
	// the previous observed interval (both zero on the first).
	Promoted int
	Demoted  int
}

// Churn counts elephant-set membership changes between consecutive
// intervals: flows entering (promoted) and leaving (demoted). Both sets
// are sorted, so one merge pass suffices; no allocation.
func Churn(prev, cur ElephantSet) (promoted, demoted int) {
	a, b := prev.Flows(), cur.Flows()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := ComparePrefix(a[i], b[j]); {
		case c == 0:
			i++
			j++
		case c < 0:
			demoted++
			i++
		default:
			promoted++
			j++
		}
	}
	demoted += len(a) - i
	promoted += len(b) - j
	return promoted, demoted
}
