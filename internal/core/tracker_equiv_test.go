package core

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

// refTracker is the pre-refactor prefix-keyed Tracker, kept as the
// behavioural reference for the ID-indexed columnar implementation.
type refTracker struct {
	t                     int
	flows                 map[netip.Prefix]*refFlowTrack
	Promotions, Demotions int
}

type refFlowTrack struct {
	elephant   bool
	curRun     int
	runs       []int
	lastChange int
}

func newRefTracker() *refTracker {
	return &refTracker{flows: make(map[netip.Prefix]*refFlowTrack)}
}

func (tr *refTracker) Observe(elephants ElephantSet) {
	for p, ft := range tr.flows {
		if ft.elephant && !elephants.Contains(p) {
			ft.elephant = false
			ft.runs = append(ft.runs, ft.curRun)
			ft.curRun = 0
			ft.lastChange = tr.t
			tr.Demotions++
		}
	}
	for _, p := range elephants.Flows() {
		ft, ok := tr.flows[p]
		if !ok {
			ft = &refFlowTrack{}
			tr.flows[p] = ft
		}
		if !ft.elephant {
			ft.elephant = true
			ft.lastChange = tr.t
			tr.Promotions++
		}
		ft.curRun++
	}
	tr.t++
}

func (tr *refTracker) holdings() []HoldingStat {
	out := make([]HoldingStat, 0, len(tr.flows))
	for p, ft := range tr.flows {
		runs := len(ft.runs)
		total := 0
		for _, r := range ft.runs {
			total += r
		}
		if ft.curRun > 0 {
			runs++
			total += ft.curRun
		}
		if runs == 0 {
			continue
		}
		out = append(out, HoldingStat{
			Flow:        p,
			Visits:      runs,
			MeanHolding: float64(total) / float64(runs),
			Elephant:    ft.elephant,
		})
	}
	sort.Slice(out, func(i, j int) bool { return ComparePrefix(out[i].Flow, out[j].Flow) < 0 })
	return out
}

// TestTrackerEquivalence drives the ID-indexed tracker and the
// prefix-keyed reference through identical random elephant-set
// sequences and requires identical transition counters, per-flow state
// and holding statistics at every interval.
func TestTrackerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pool := make([]netip.Prefix, 50)
	for i := range pool {
		pool[i] = pfx(i)
	}
	got := NewTracker()
	want := newRefTracker()
	for step := 0; step < 300; step++ {
		var members []netip.Prefix
		for i, p := range pool {
			// Persistent flows with churn; a few flows never promoted.
			if i >= 45 {
				continue
			}
			if rng.Float64() < 0.4 {
				members = append(members, p)
			}
		}
		set := NewElephantSet(members...)
		got.Observe(set)
		want.Observe(set)
		if got.Promotions != want.Promotions || got.Demotions != want.Demotions {
			t.Fatalf("interval %d: transitions %d/%d, reference %d/%d",
				step, got.Promotions, got.Demotions, want.Promotions, want.Demotions)
		}
		for _, p := range pool {
			wantClass := Mouse
			wantRun := 0
			if ft, ok := want.flows[p]; ok {
				if ft.elephant {
					wantClass = Elephant
				}
				wantRun = ft.curRun
			}
			if got.State(p) != wantClass {
				t.Fatalf("interval %d: State(%v) = %v, reference %v", step, p, got.State(p), wantClass)
			}
			if got.CurrentRun(p) != wantRun {
				t.Fatalf("interval %d: CurrentRun(%v) = %d, reference %d", step, p, got.CurrentRun(p), wantRun)
			}
		}
		if step%50 == 0 {
			gh, wh := got.Holdings(), want.holdings()
			if len(gh) != len(wh) {
				t.Fatalf("interval %d: %d holding stats, reference %d", step, len(gh), len(wh))
			}
			for i := range gh {
				if gh[i] != wh[i] {
					t.Fatalf("interval %d: holdings[%d] = %+v, reference %+v", step, i, gh[i], wh[i])
				}
			}
			if got.MeanHolding() != want.meanHolding() {
				t.Fatalf("interval %d: MeanHolding %v, reference %v", step, got.MeanHolding(), want.meanHolding())
			}
		}
	}
	if got.Intervals() != want.t {
		t.Fatalf("Intervals = %d, reference %d", got.Intervals(), want.t)
	}
}

func (tr *refTracker) meanHolding() float64 {
	hs := tr.holdings()
	if len(hs) == 0 {
		return 0
	}
	var sum float64
	for _, h := range hs {
		sum += h.MeanHolding
	}
	return sum / float64(len(hs))
}

// TestTrackerObserveSteadyStateAllocs: with a stable flow population,
// Observe must not allocate per interval.
func TestTrackerObserveSteadyStateAllocs(t *testing.T) {
	tr := NewTracker()
	var members []netip.Prefix
	for i := 0; i < 200; i++ {
		members = append(members, pfx(i))
	}
	even := NewElephantSet(members[:100]...)
	odd := NewElephantSet(members[100:]...)
	for i := 0; i < 8; i++ {
		tr.Observe(even)
		tr.Observe(odd)
	}
	if avg := testing.AllocsPerRun(100, func() { tr.Observe(even); tr.Observe(odd) }); avg != 0 {
		t.Fatalf("steady-state Observe allocates %v times per call pair, want 0", avg)
	}
}
