package core

import (
	"net/netip"
	"testing"
)

// elephantSetOf builds a set from flow ids.
func elephantSetOf(ids ...int) ElephantSet {
	flows := make([]netip.Prefix, len(ids))
	for i, id := range ids {
		flows[i] = pfx(id)
	}
	return NewElephantSet(flows...)
}

func observePattern(tr *Tracker, id int, pattern string) {
	// Build per-interval sets for a single flow pattern.
	for _, c := range pattern {
		var set ElephantSet
		if c == 'E' {
			set = elephantSetOf(id)
		}
		tr.Observe(set)
	}
}

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker()
	observePattern(tr, 0, "EE..E")
	if tr.Intervals() != 5 {
		t.Fatalf("intervals = %d", tr.Intervals())
	}
	if tr.Promotions != 2 || tr.Demotions != 1 {
		t.Errorf("promotions=%d demotions=%d, want 2, 1", tr.Promotions, tr.Demotions)
	}
	if tr.State(pfx(0)) != Elephant {
		t.Error("final state should be elephant")
	}
	if tr.CurrentRun(pfx(0)) != 1 {
		t.Errorf("current run = %d", tr.CurrentRun(pfx(0)))
	}
	hs := tr.Holdings()
	if len(hs) != 1 {
		t.Fatalf("holdings = %d", len(hs))
	}
	// Runs: 2 (completed) + 1 (ongoing) -> mean 1.5 over 2 visits.
	if hs[0].Visits != 2 || hs[0].MeanHolding != 1.5 || !hs[0].Elephant {
		t.Errorf("holding = %+v", hs[0])
	}
}

func TestTrackerNeverElephant(t *testing.T) {
	tr := NewTracker()
	tr.Observe(ElephantSet{})
	tr.Observe(ElephantSet{})
	if tr.State(pfx(1)) != Mouse || tr.CurrentRun(pfx(1)) != 0 {
		t.Error("unknown flow must be a mouse with no run")
	}
	if len(tr.Holdings()) != 0 || tr.MeanHolding() != 0 {
		t.Error("no holdings expected")
	}
}

func TestTrackerMultipleFlows(t *testing.T) {
	tr := NewTracker()
	sets := []ElephantSet{
		elephantSetOf(0, 1),
		elephantSetOf(0),
		elephantSetOf(0, 2),
	}
	for _, s := range sets {
		tr.Observe(s)
	}
	if got := tr.CurrentRun(pfx(0)); got != 3 {
		t.Errorf("flow 0 run = %d", got)
	}
	if tr.State(pfx(1)) != Mouse {
		t.Error("flow 1 should have been demoted")
	}
	if got := tr.CurrentRun(pfx(2)); got != 1 {
		t.Errorf("flow 2 run = %d", got)
	}
	hs := tr.Holdings()
	if len(hs) != 3 {
		t.Fatalf("holdings = %d", len(hs))
	}
	// Deterministic order by prefix.
	for i := 1; i < len(hs); i++ {
		if hs[i-1].Flow.Addr().Compare(hs[i].Flow.Addr()) > 0 {
			t.Error("holdings not sorted")
		}
	}
}

// TestTrackerAgreesWithAnalysis: the online tracker must produce the
// same mean holding as the post-hoc analysis over the full window.
func TestTrackerAgreesWithAnalysis(t *testing.T) {
	patterns := map[int]string{
		0: "EEEE....EE",
		1: "E..E..E...",
		2: "..EEE..EEE",
	}
	tr := NewTracker()
	n := len(patterns[0])
	for i := 0; i < n; i++ {
		var members []int
		for id, p := range patterns {
			if p[i] == 'E' {
				members = append(members, id)
			}
		}
		tr.Observe(elephantSetOf(members...))
	}
	// Hand-computed: flow0 runs {4,2}: mean 3; flow1 {1,1,1}: 1;
	// flow2 {3,3}: 3. Across-flow mean = (3+1+3)/3.
	want := (3.0 + 1 + 3) / 3
	if got := tr.MeanHolding(); got != want {
		t.Errorf("MeanHolding = %v, want %v", got, want)
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	observePattern(tr, 0, "EE")
	tr.Reset()
	if tr.Intervals() != 0 || tr.Promotions != 0 || len(tr.Holdings()) != 0 {
		t.Error("reset incomplete")
	}
}
