package core

import (
	"fmt"
	"net/netip"
	"slices"
)

// DefaultQuarantine is the default number of Advance ticks a released ID
// stays resolvable (and un-reusable) before it is recycled. It must be
// at least the widest open-interval window of any producer sharing the
// table, so a recycled ID can never alias bits already accumulated for
// its previous prefix; 16 covers agg.DefaultStreamWindow (12) with
// headroom. Producers with wider windows raise it via EnsureQuarantine.
const DefaultQuarantine = 16

// Lifecycle states of an ID slot.
const (
	flowLive    uint8 = iota // interned, resolvable, in use
	flowPending              // released, still resolvable, awaiting recycle
	flowFree                 // on the free list, prefix cleared
)

// FlowTable interns flow prefixes into dense uint32 IDs — the flow
// identity layer of the hot path. One table is owned per pipeline (per
// link): every component that keeps per-flow state across intervals
// (stream accumulator slots, latent-heat history, tracker runs) indexes
// flat columns by the table's IDs instead of hashing 24-byte
// netip.Prefix keys per record and per flow per interval.
//
// An ID is stable from Intern until Release plus a quarantine of
// Quarantine Advance ticks (one tick per closed interval, driven by the
// table's owner). During quarantine the mapping stays intact: Lookup
// and PrefixOf still resolve it, and re-interning the same prefix
// resurrects the ID instead of allocating a new one. Only after the
// quarantine expires is the mapping dropped and the ID pushed onto the
// free list for reuse by a different prefix. The quarantine is what
// makes classifier-driven eviction safe while an accumulator with open
// intervals shares the table: a released flow's bits already spread
// into open slots are still attributed to the right prefix when those
// slots close, because the ID cannot be re-bound before every slot that
// might reference it has been emitted.
//
// A FlowTable is single-goroutine, like the pipeline that owns it.
type FlowTable struct {
	ids      map[netip.Prefix]uint32
	prefixes []netip.Prefix // id -> prefix; zero value for free slots
	state    []uint8        // id -> lifecycle state
	relTick  []uint64       // id -> tick of the latest Release
	free     []uint32       // recyclable IDs (quarantine expired)

	pending     []pendingRelease // FIFO by tick
	pendingHead int
	tick        uint64
	quarantine  uint64
	pinned      bool

	// Lazily rebuilt prefix-rank column: ranks[id] is the position of
	// the ID's prefix in ComparePrefix order over all bound IDs, so
	// sorting an interval's dirty IDs into emission order costs integer
	// compares instead of 24-byte prefix compares. bindGen is bumped on
	// every id<->prefix (re)binding; a stale rank column is rebuilt on
	// demand.
	ranks   []int32
	rankIDs []uint32 // rebuild scratch
	bindGen uint64
	rankGen uint64
}

type pendingRelease struct {
	id   uint32
	tick uint64
}

// NewFlowTable returns an empty table with the default quarantine.
func NewFlowTable() *FlowTable {
	return &FlowTable{
		ids:        make(map[netip.Prefix]uint32),
		quarantine: DefaultQuarantine,
	}
}

// Len reports the number of interned mappings (live plus quarantined).
func (tb *FlowTable) Len() int { return len(tb.ids) }

// Cap reports the ID space size: every ID ever handed out is below Cap,
// so Cap is the length ID-indexed columns must be grown to.
func (tb *FlowTable) Cap() int { return len(tb.prefixes) }

// Quarantine returns the current quarantine length in Advance ticks.
func (tb *FlowTable) Quarantine() uint64 { return tb.quarantine }

// EnsureQuarantine raises the quarantine to at least q ticks (it never
// lowers it): producers call it with their open-interval window when
// they attach to a shared table.
func (tb *FlowTable) EnsureQuarantine(q int) {
	if q > 0 && uint64(q) > tb.quarantine {
		tb.quarantine = uint64(q)
	}
}

// Intern returns the prefix's dense ID, assigning one on first sight.
// Re-interning a quarantined prefix resurrects its old ID, so a flow
// that falls idle, is evicted and returns within the quarantine keeps a
// single identity.
func (tb *FlowTable) Intern(p netip.Prefix) uint32 {
	if id, ok := tb.ids[p]; ok {
		if tb.state[id] == flowPending {
			tb.state[id] = flowLive
		}
		return id
	}
	var id uint32
	if n := len(tb.free); n > 0 {
		id = tb.free[n-1]
		tb.free = tb.free[:n-1]
		tb.prefixes[id] = p
		tb.state[id] = flowLive
	} else {
		id = uint32(len(tb.prefixes))
		tb.prefixes = append(tb.prefixes, p)
		tb.state = append(tb.state, flowLive)
		tb.relTick = append(tb.relTick, 0)
	}
	tb.ids[p] = id
	tb.bindGen++ // a new binding invalidates the rank column
	return id
}

// Ranks returns the prefix-rank column: ranks[id] orders bound IDs by
// ComparePrefix of their prefixes (free IDs hold garbage). The column
// is rebuilt — O(n log n) over the bound IDs — only when a binding
// changed since the last call; with a stable flow population it is a
// plain slice read. RanksFresh reports whether Ranks would rebuild,
// letting callers with few IDs to order skip the rebuild entirely.
func (tb *FlowTable) Ranks() []int32 {
	if tb.rankGen != tb.bindGen {
		tb.rankIDs = tb.rankIDs[:0]
		for id := range tb.state {
			if tb.state[id] != flowFree {
				tb.rankIDs = append(tb.rankIDs, uint32(id))
			}
		}
		slices.SortFunc(tb.rankIDs, func(a, b uint32) int {
			return ComparePrefix(tb.prefixes[a], tb.prefixes[b])
		})
		if n := len(tb.prefixes); len(tb.ranks) < n {
			tb.ranks = append(tb.ranks, make([]int32, n-len(tb.ranks))...)
		}
		for r, id := range tb.rankIDs {
			tb.ranks[id] = int32(r)
		}
		tb.rankGen = tb.bindGen
	}
	return tb.ranks
}

// RanksFresh reports whether the rank column is up to date with every
// binding (i.e. Ranks will not rebuild).
func (tb *FlowTable) RanksFresh() bool { return tb.rankGen == tb.bindGen }

// Lookup returns the prefix's ID without interning.
func (tb *FlowTable) Lookup(p netip.Prefix) (uint32, bool) {
	id, ok := tb.ids[p]
	return id, ok
}

// PrefixOf returns the prefix bound to id. The zero Prefix is returned
// for recycled (free) IDs.
func (tb *FlowTable) PrefixOf(id uint32) netip.Prefix { return tb.prefixes[id] }

// Prefixes exposes the id->prefix column for hot loops that resolve
// many IDs (e.g. sorting an interval's dirty IDs into prefix order).
// Shared storage; do not modify, and do not hold across Intern calls.
func (tb *FlowTable) Prefixes() []netip.Prefix { return tb.prefixes }

// Pin freezes the ID space: Release becomes a no-op, so every mapping
// stays resolvable for the table's lifetime and IDs are never
// recycled. Callers that cache ID columns outside the table — the
// batch engine's row→ID column over a whole series — pin the table,
// because a cached ID must keep resolving to its prefix even after the
// classifier evicts the flow's state. Pinning cannot be undone.
func (tb *FlowTable) Pin() { tb.pinned = true }

// Release begins recycling an ID: the mapping stays resolvable for
// Quarantine more Advance ticks, then the ID returns to the free list.
// Releasing an already-pending ID restarts its quarantine. On a pinned
// table Release is a no-op. Releasing a free ID is a programming error
// and panics.
func (tb *FlowTable) Release(id uint32) {
	if int(id) >= len(tb.state) || tb.state[id] == flowFree {
		panic(fmt.Sprintf("core: FlowTable.Release of non-interned id %d", id))
	}
	if tb.pinned {
		return
	}
	tb.state[id] = flowPending
	tb.relTick[id] = tb.tick
	tb.pending = append(tb.pending, pendingRelease{id: id, tick: tb.tick})
}

// Advance ticks the quarantine clock — the table's owner calls it once
// per closed interval — and finalises releases whose quarantine has
// expired: their mapping is dropped and the ID becomes reusable.
func (tb *FlowTable) Advance() {
	tb.tick++
	for tb.pendingHead < len(tb.pending) {
		e := tb.pending[tb.pendingHead]
		if e.tick+tb.quarantine > tb.tick {
			break
		}
		tb.pendingHead++
		// The entry is stale if the ID was resurrected (live again) or
		// re-released later (a newer pending entry owns it).
		if tb.state[e.id] == flowPending && tb.relTick[e.id] == e.tick {
			delete(tb.ids, tb.prefixes[e.id])
			tb.prefixes[e.id] = netip.Prefix{}
			tb.state[e.id] = flowFree
			tb.free = append(tb.free, e.id)
		}
	}
	if tb.pendingHead > 64 && tb.pendingHead*2 >= len(tb.pending) {
		n := copy(tb.pending, tb.pending[tb.pendingHead:])
		tb.pending = tb.pending[:n]
		tb.pendingHead = 0
	}
}

// FillIDs interns every key of a snapshot and attaches the ID column —
// the bridge for producers that assemble snapshots without a table
// (batch Series emission, tests). A column already stamped as coming
// from this table is left untouched; a foreign or unstamped column is
// dropped and re-interned, so consumers can never index another
// table's IDs into their flow state.
func (tb *FlowTable) FillIDs(s *FlowSnapshot) {
	if s.HasIDs() && s.idTable == tb {
		return
	}
	s.ids = s.ids[:0]
	for _, p := range s.keys {
		s.ids = append(s.ids, tb.Intern(p))
	}
	s.idTable = tb
}
