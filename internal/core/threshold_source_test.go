package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// columnSource is a test ThresholdSource backed by explicit per-interval
// entries.
type columnSource struct {
	theta map[int]float64
	errs  map[int]error
}

func (s *columnSource) RawThreshold(t int) (float64, bool, error) {
	if err, ok := s.errs[t]; ok {
		return 0, true, err
	}
	th, ok := s.theta[t]
	return th, ok, nil
}

// randomSnaps builds a deterministic sequence of snapshots with varying
// flow counts, some below the default MinFlows.
func randomSnaps(seed int64, n int) []*FlowSnapshot {
	rng := rand.New(rand.NewSource(seed))
	snaps := make([]*FlowSnapshot, n)
	for t := range snaps {
		flows := 2 + rng.Intn(60)
		if t == 0 {
			flows += 16 // bootstrap interval must clear MinFlows
		}
		pairs := make([]float64, flows)
		for i := range pairs {
			pairs[i] = rng.Float64() * 1e6
		}
		snaps[t] = snap(pairs...)
	}
	return snaps
}

// TestPipelineThresholdSourceEquivalence pins the tentpole contract: a
// pipeline consuming a ThresholdSource loaded with the inline path's
// raw thresholds produces byte-identical Results, including intervals
// below MinFlows (which the source does not cover) and EWMA state
// threading across both kinds.
func TestPipelineThresholdSourceEquivalence(t *testing.T) {
	cfg := func() Config {
		return Config{Detector: NewAestDetector(), Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 16}
	}
	snaps := randomSnaps(42, 50)

	inline, err := NewPipeline(cfg())
	if err != nil {
		t.Fatal(err)
	}
	src := &columnSource{theta: map[int]float64{}}
	var want []Result
	for _, s := range snaps {
		res, err := inline.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.ActiveFlows >= 16 {
			// Only detector-run intervals enter the column, mirroring
			// the engine prepass.
			src.theta[res.Interval] = res.RawThreshold
		}
		want = append(want, res)
	}

	c := cfg()
	c.Thresholds = src
	cached, err := NewPipeline(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		res, err := cached.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want[i]) {
			t.Fatalf("interval %d: cached result diverged\nwant %+v\ngot  %+v", i, want[i], res)
		}
	}
}

// TestPipelineThresholdSourceError: a source-recorded detection error
// fails the interval with the same wrapping the inline detector path
// uses.
func TestPipelineThresholdSourceError(t *testing.T) {
	detErr := errors.New("core: aest: empty interval")
	c := Config{Detector: NewAestDetector(), Alpha: 0.5, Classifier: SingleFeatureClassifier{}, MinFlows: 1,
		Thresholds: &columnSource{errs: map[int]error{0: detErr}}}
	p, err := NewPipeline(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Step(snap(100, 50))
	if err == nil || !errors.Is(err, detErr) {
		t.Fatalf("source error not surfaced: %v", err)
	}
	if want := fmt.Sprintf("core: interval 0: %v", detErr); err.Error() != want {
		t.Fatalf("error text %q, want %q", err.Error(), want)
	}
}
