package core

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
)

// benchSnapshot builds a realistic interval snapshot: lognormal body
// with a Pareto tail, n flows.
func benchSnapshot(n int, seed int64) map[netip.Prefix]float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make(map[netip.Prefix]float64, n)
	for i := 0; i < n; i++ {
		bw := math.Exp(rng.NormFloat64() * 1.2)
		if rng.Float64() < 0.04 {
			bw = 20 * math.Pow(rng.Float64(), -1/1.9)
		}
		s[pfx(i)] = bw * 1e4
	}
	return s
}

func BenchmarkConstantLoadDetect6k(b *testing.B) {
	snap := benchSnapshot(6500, 1)
	bws := make([]float64, 0, len(snap))
	for _, bw := range snap {
		bws = append(bws, bw)
	}
	d, _ := NewConstantLoadDetector(0.8)
	scratch := make([]float64, len(bws))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, bws)
		if _, err := d.DetectThreshold(scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAestDetect6k(b *testing.B) {
	snap := benchSnapshot(6500, 2)
	bws := make([]float64, 0, len(snap))
	for _, bw := range snap {
		bws = append(bws, bw)
	}
	d := NewAestDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DetectThreshold(bws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleFeatureClassify6k(b *testing.B) {
	snap := benchSnapshot(6500, 3)
	c := SingleFeatureClassifier{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(snap, 5e4)
	}
}

func BenchmarkLatentHeatClassify6k(b *testing.B) {
	snap := benchSnapshot(6500, 4)
	c, _ := NewLatentHeatClassifier(12)
	// Warm the history so the steady-state cost is measured.
	for i := 0; i < 14; i++ {
		c.Classify(snap, 5e4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(snap, 5e4)
	}
	b.ReportMetric(float64(c.TrackedFlows()), "tracked-flows")
}

func BenchmarkPipelineStep6k(b *testing.B) {
	snap := benchSnapshot(6500, 5)
	det, _ := NewConstantLoadDetector(0.8)
	lh, _ := NewLatentHeatClassifier(12)
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: lh})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	// A churning elephant set of ~600 flows out of 6500.
	rng := rand.New(rand.NewSource(6))
	sets := make([]map[netip.Prefix]bool, 16)
	for i := range sets {
		sets[i] = make(map[netip.Prefix]bool, 600)
		for j := 0; j < 600; j++ {
			sets[i][pfx(rng.Intn(6500))] = true
		}
	}
	tr := NewTracker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(sets[i%len(sets)])
	}
}
