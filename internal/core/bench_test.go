package core

import (
	"math"
	"math/rand"
	"testing"
)

// benchSnapshot builds a realistic interval snapshot: lognormal body
// with a Pareto tail, n flows, sorted by construction.
func benchSnapshot(n int, seed int64) *FlowSnapshot {
	rng := rand.New(rand.NewSource(seed))
	s := NewFlowSnapshot(n)
	for i := 0; i < n; i++ {
		bw := math.Exp(rng.NormFloat64() * 1.2)
		if rng.Float64() < 0.04 {
			bw = 20 * math.Pow(rng.Float64(), -1/1.9)
		}
		s.Append(pfx(i), bw*1e4)
	}
	return s
}

func BenchmarkConstantLoadDetect6k(b *testing.B) {
	snap := benchSnapshot(6500, 1)
	d, _ := NewConstantLoadDetector(0.8)
	scratch := make([]float64, snap.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, snap.Bandwidths())
		if _, err := d.DetectThreshold(scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAestDetect6k(b *testing.B) {
	snap := benchSnapshot(6500, 2)
	d := NewAestDetector()
	scratch := make([]float64, snap.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, snap.Bandwidths())
		if _, err := d.DetectThreshold(scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleFeatureClassify6k(b *testing.B) {
	snap := benchSnapshot(6500, 3)
	c := SingleFeatureClassifier{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(snap, 5e4)
	}
}

func BenchmarkLatentHeatClassify6k(b *testing.B) {
	snap := benchSnapshot(6500, 4)
	c, _ := NewLatentHeatClassifier(12)
	// Warm the history so the steady-state cost is measured.
	for i := 0; i < 14; i++ {
		c.Classify(snap, 5e4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(snap, 5e4)
	}
	b.ReportMetric(float64(c.TrackedFlows()), "tracked-flows")
}

func BenchmarkPipelineStep6k(b *testing.B) {
	snap := benchSnapshot(6500, 5)
	det, _ := NewConstantLoadDetector(0.8)
	lh, _ := NewLatentHeatClassifier(12)
	p, _ := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: lh})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	// A churning elephant set of ~600 flows out of 6500.
	rng := rand.New(rand.NewSource(6))
	sets := make([]ElephantSet, 16)
	for i := range sets {
		members := make([]int, 600)
		for j := range members {
			members[j] = rng.Intn(6500)
		}
		sets[i] = elephantSetOf(members...)
	}
	tr := NewTracker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(sets[i%len(sets)])
	}
}
