// Package core implements the paper's contribution: elephant-flow
// classification for traffic engineering. It provides the two threshold
// detection techniques ("aest" and "β-constant load"), the EWMA threshold
// update across measurement intervals, and both classification schemes —
// single-feature (bandwidth vs. threshold) and the two-feature "latent
// heat" scheme that adds persistence in time.
//
// The API is streaming-first and columnar: a Pipeline consumes one
// interval's FlowSnapshot at a time — sorted prefix and bandwidth
// columns, reusable across intervals — exactly as an online traffic
// engineering system would, and emits the interval's elephant set plus
// diagnostics. Package engine fans pipelines out across many monitored
// links; batch helpers in package experiments wrap it for trace
// post-processing.
package core

import (
	"fmt"
	"slices"

	"repro/internal/stats"
)

// Detector computes the separation threshold theta(t) from one
// measurement interval's flow bandwidths (phase 1 of the methodology).
type Detector interface {
	// DetectThreshold returns theta(t) for the given positive flow
	// bandwidths (bit/s). The slice may be reordered in place.
	DetectThreshold(bandwidths []float64) (float64, error)
	// Name identifies the scheme in reports ("aest",
	// "0.80-constant-load").
	Name() string
}

// ThresholdSource supplies precomputed raw thresholds θ(t) to a
// Pipeline, replacing inline detection for the intervals it covers.
// Detection — unlike classification — is a pure function of one
// interval's bandwidth column, so a batch driver that holds the whole
// series (engine.RunMatrix) can precompute each detector's θ(t) column
// in parallel and share it across every spec using that detector
// config. Sources must honour the purity contract: for a covered
// interval t they return exactly what the pipeline's own detector would
// have produced on that interval's snapshot — value or error.
type ThresholdSource interface {
	// RawThreshold returns θ(t) for interval t. ok reports whether the
	// source covers t at all; when ok is false the pipeline falls back
	// to inline detection. When ok is true, err (if non-nil) is the
	// detection error the inline path would have hit, and the pipeline
	// fails the interval identically.
	RawThreshold(t int) (theta float64, ok bool, err error)
}

// SortedDetector is implemented by detectors that can compute theta(t)
// from a pre-sorted view of the interval, skipping their internal
// sort. Pipeline.Step prefers this path: the snapshot's cached
// SortedBandwidths column is computed once per interval and shared by
// every pipeline classifying the same emitted snapshot, so an S-scheme
// matrix run pays for one sort instead of S.
type SortedDetector interface {
	Detector
	// DetectThresholdSorted returns exactly what
	// DetectThreshold(bandwidths) would, given both the bandwidth
	// column in its original observation order and the same values
	// sorted ascending. Both slices must hold positive, finite values
	// and neither may be modified.
	DetectThresholdSorted(bandwidths, sorted []float64) (float64, error)
}

// ConstantLoadDetector implements the "β-constant load" technique: the
// threshold is set so that the flows exceeding it account for fraction
// Beta of the total traffic in the interval.
type ConstantLoadDetector struct {
	// Beta is the target elephant load fraction, in (0, 1). The paper
	// uses 0.8.
	Beta float64
}

// NewConstantLoadDetector validates beta and returns the detector.
func NewConstantLoadDetector(beta float64) (*ConstantLoadDetector, error) {
	if beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("core: constant-load beta %v outside (0,1)", beta)
	}
	return &ConstantLoadDetector{Beta: beta}, nil
}

// Name implements Detector.
func (d *ConstantLoadDetector) Name() string {
	return fmt.Sprintf("%.2f-constant-load", d.Beta)
}

// DetectThreshold implements Detector. Flows are sorted by bandwidth,
// descending, and accumulated until they carry the target fraction of
// total traffic; the threshold is the bandwidth of the first *excluded*
// flow, so that exactly the flows strictly exceeding theta account for
// (at least) the target load — the paper's phrasing "all the flows
// exceeding it account for the chosen fraction of total traffic". When
// every flow is needed, the threshold drops below the smallest flow.
func (d *ConstantLoadDetector) DetectThreshold(bandwidths []float64) (float64, error) {
	if len(bandwidths) == 0 {
		return 0, fmt.Errorf("core: constant-load: empty interval")
	}
	// The specialised ascending sort, scanned from the top, is ~2x the
	// interface-based descending sort this hot path used to pay; ties
	// may land in a different order, but equal values contribute equal
	// partial sums, so the detected threshold is unchanged.
	slices.Sort(bandwidths)
	return d.detectSorted(bandwidths)
}

// DetectThresholdSorted implements SortedDetector: the technique only
// ever consumes the sorted view, so the pre-sorted column replaces the
// copy-and-sort wholesale.
func (d *ConstantLoadDetector) DetectThresholdSorted(_, sorted []float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, fmt.Errorf("core: constant-load: empty interval")
	}
	return d.detectSorted(sorted)
}

// detectSorted scans an ascending-sorted bandwidth column without
// modifying it.
func (d *ConstantLoadDetector) detectSorted(bandwidths []float64) (float64, error) {
	// Total and cumulative sums run largest-first, the exact float
	// summation order of the historical descending-sort implementation.
	var total float64
	for i := len(bandwidths) - 1; i >= 0; i-- {
		total += bandwidths[i]
	}
	if total <= 0 {
		return 0, fmt.Errorf("core: constant-load: zero total traffic")
	}
	target := d.Beta * total
	var cum float64
	for i := len(bandwidths) - 1; i >= 0; i-- {
		cum += bandwidths[i]
		if cum >= target {
			if i > 0 {
				return bandwidths[i-1], nil
			}
			break
		}
	}
	// All flows are in the elephant class: any positive value below the
	// minimum keeps them all strictly above the threshold.
	return bandwidths[0] * 0.999, nil
}

// AestDetector implements the "aest" technique: the threshold is the
// point of the flow-bandwidth distribution after which power-law
// (heavy-tail) behaviour is witnessed, found with the Crovella–Taqqu
// scaling estimator.
type AestDetector struct {
	// Config tunes the underlying estimator; the zero value uses the
	// estimator defaults.
	Config stats.AestConfig
	// FallbackQuantile is the bandwidth quantile used as the threshold
	// when no tail is detectable in an interval (small samples, light
	// tails). Defaults to 0.95.
	FallbackQuantile float64

	// Fallbacks counts intervals where the estimator found no tail.
	Fallbacks int
	// Detections counts intervals with a detected tail.
	Detections int

	// scratch is the estimator's reusable working arena; it makes
	// steady-state detection allocation-free and ties the detector to a
	// single goroutine at a time (which Detector already implies —
	// pipelines are single-goroutine and never share detectors).
	scratch stats.AestScratch
}

// NewAestDetector returns a detector with default estimator settings.
func NewAestDetector() *AestDetector {
	return &AestDetector{FallbackQuantile: 0.95}
}

// Name implements Detector.
func (d *AestDetector) Name() string { return "aest" }

// DetectThreshold implements Detector.
func (d *AestDetector) DetectThreshold(bandwidths []float64) (float64, error) {
	if len(bandwidths) == 0 {
		return 0, fmt.Errorf("core: aest: empty interval")
	}
	fq := d.FallbackQuantile
	if fq == 0 {
		fq = 0.95
	}
	res := d.scratch.Aest(bandwidths, d.Config)
	if res.TailFound {
		d.Detections++
		return res.TailOnset, nil
	}
	d.Fallbacks++
	return stats.Quantile(bandwidths, fq), nil
}

// DetectThresholdSorted implements SortedDetector. The estimator's
// block aggregation is order-sensitive, so the original-order column
// still feeds it; the sorted view supplies the base CCDF and every
// candidate quantile, which previously each re-sorted the sample.
func (d *AestDetector) DetectThresholdSorted(bandwidths, sorted []float64) (float64, error) {
	if len(bandwidths) == 0 {
		return 0, fmt.Errorf("core: aest: empty interval")
	}
	fq := d.FallbackQuantile
	if fq == 0 {
		fq = 0.95
	}
	res := d.scratch.AestSorted(bandwidths, sorted, d.Config)
	if res.TailFound {
		d.Detections++
		return res.TailOnset, nil
	}
	d.Fallbacks++
	return stats.QuantileSorted(sorted, fq), nil
}
