package core

import (
	"fmt"
	"net/netip"
	"testing"
)

func pfx(i int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
}

// snap builds a sorted snapshot assigning pairs[i] to pfx(i);
// non-positive bandwidths are dropped, mirroring an idle flow.
func snap(pairs ...float64) *FlowSnapshot {
	s := NewFlowSnapshot(len(pairs))
	for i, bw := range pairs {
		s.Append(pfx(i), bw)
	}
	return s
}

// classifySet runs one Classify call and resolves the verdict into a
// concrete membership set.
func classifySet(c Classifier, s *FlowSnapshot, theta float64) ElephantSet {
	return mergeElephants(s, c.Classify(s, theta))
}

func TestClassString(t *testing.T) {
	if Mouse.String() != "mouse" || Elephant.String() != "elephant" {
		t.Error("Class.String broken")
	}
}

func TestSingleFeatureStrictExceed(t *testing.T) {
	c := SingleFeatureClassifier{}
	out := classifySet(c, snap(5, 10, 15), 10)
	if out.Contains(pfx(0)) {
		t.Error("flow below threshold classified")
	}
	if out.Contains(pfx(1)) {
		t.Error("flow AT threshold classified; paper requires strict exceedance")
	}
	if !out.Contains(pfx(2)) {
		t.Error("flow above threshold not classified")
	}
}

func TestSingleFeatureStateless(t *testing.T) {
	c := SingleFeatureClassifier{}
	a := classifySet(c, snap(20), 10)
	b := classifySet(c, snap(5), 10)
	if !a.Contains(pfx(0)) || b.Contains(pfx(0)) {
		t.Error("single-feature classification must depend only on the current interval")
	}
}

func TestSingleFeatureIndicesAscending(t *testing.T) {
	c := SingleFeatureClassifier{}
	v := c.Classify(snap(50, 5, 50, 5, 50), 10)
	if len(v.Offline) != 0 {
		t.Errorf("stateless classifier produced offline flows: %v", v.Offline)
	}
	want := []int{0, 2, 4}
	if len(v.Indices) != len(want) {
		t.Fatalf("indices = %v, want %v", v.Indices, want)
	}
	for i, idx := range want {
		if v.Indices[i] != idx {
			t.Fatalf("indices = %v, want %v", v.Indices, want)
		}
	}
}

func TestLatentHeatValidation(t *testing.T) {
	if _, err := NewLatentHeatClassifier(0); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := NewLatentHeatClassifier(-3); err == nil {
		t.Error("negative window accepted")
	}
	c, err := NewLatentHeatClassifier(12)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "latent-heat" {
		t.Errorf("Name = %q", c.Name())
	}
}

// TestLatentHeatDefinition verifies LH_j(t) = sum over the window of
// (x_j(i) - thetaHat(i)) against hand-computed values.
func TestLatentHeatDefinition(t *testing.T) {
	c, _ := NewLatentHeatClassifier(3)
	// Interval 0: x=10, theta=8  -> LH = +2 -> elephant
	out := classifySet(c, snap(10), 8)
	if !out.Contains(pfx(0)) {
		t.Fatal("interval 0: LH=+2 but not classified")
	}
	if lh, ok := c.LatentHeat(pfx(0)); !ok || lh != 2 {
		t.Fatalf("LH = %v, %v; want 2", lh, ok)
	}
	// Interval 1: x=5, theta=8 -> LH = 2 + (5-8) = -1 -> mouse
	out = classifySet(c, snap(5), 8)
	if out.Contains(pfx(0)) {
		t.Fatal("interval 1: LH=-1 but classified")
	}
	if lh, _ := c.LatentHeat(pfx(0)); lh != -1 {
		t.Fatalf("LH = %v, want -1", lh)
	}
	// Interval 2: x=12, theta=8 -> LH = 2 - 3 + 4 = +3 -> elephant
	out = classifySet(c, snap(12), 8)
	if !out.Contains(pfx(0)) {
		t.Fatal("interval 2: LH=+3 but not classified")
	}
	// Interval 3: window slides off interval 0 (x=10,theta=8).
	// x=0 (idle), theta=8 -> LH = -3 + 4 - 8 = -7 -> mouse
	out = classifySet(c, snap(), 8)
	if out.Contains(pfx(0)) {
		t.Fatal("interval 3: LH=-7 but classified")
	}
	if lh, _ := c.LatentHeat(pfx(0)); lh != -7 {
		t.Fatalf("LH = %v, want -7 (window slid)", lh)
	}
}

// TestLatentHeatOfflineElephant: a flow idle in the current interval but
// with accumulated positive latent heat must surface through the
// verdict's Offline column — the case an index-only return type cannot
// express.
func TestLatentHeatOfflineElephant(t *testing.T) {
	c, _ := NewLatentHeatClassifier(8)
	c.Classify(snap(10000), 100)
	s := snap() // flow 0 idle
	v := c.Classify(s, 100)
	if len(v.Indices) != 0 {
		t.Errorf("idle interval produced snapshot indices %v", v.Indices)
	}
	if len(v.Offline) != 1 || v.Offline[0] != pfx(0) {
		t.Fatalf("offline = %v, want [%v]", v.Offline, pfx(0))
	}
	if out := mergeElephants(s, v); !out.Contains(pfx(0)) {
		t.Error("offline elephant lost in merge")
	}
}

// TestLatentHeatFiltersOneSlotBurst: the defining behaviour — a mouse
// bursting above the threshold for a single interval stays a mouse,
// unlike under single-feature classification.
func TestLatentHeatFiltersOneSlotBurst(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(12)
	sf := SingleFeatureClassifier{}
	theta := 100.0

	// Eleven intervals of modest traffic below the threshold.
	for i := 0; i < 11; i++ {
		lh.Classify(snap(50), theta)
		sf.Classify(snap(50), theta)
	}
	// One interval bursting to 3x the threshold.
	lhOut := classifySet(lh, snap(300), theta)
	sfOut := classifySet(sf, snap(300), theta)
	if !sfOut.Contains(pfx(0)) {
		t.Error("single-feature must classify the burst interval")
	}
	if lhOut.Contains(pfx(0)) {
		t.Error("latent heat must filter a one-slot burst after a deficit history")
	}
}

// TestLatentHeatToleratesOneSlotDip: the symmetric case — an
// established elephant dipping below the threshold for one interval
// stays an elephant.
func TestLatentHeatToleratesOneSlotDip(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(12)
	theta := 100.0
	for i := 0; i < 11; i++ {
		lh.Classify(snap(200), theta)
	}
	out := classifySet(lh, snap(10), theta) // deep dip
	if !out.Contains(pfx(0)) {
		t.Error("latent heat must carry an established elephant through a one-slot dip")
	}
}

// TestLatentHeatWindowOne: with W=1 the scheme degenerates to
// single-feature (strictly positive distance).
func TestLatentHeatWindowOne(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(1)
	sf := SingleFeatureClassifier{}
	for i, bw := range []float64{150, 50, 101} {
		a := classifySet(lh, snap(bw), 100)
		b := classifySet(sf, snap(bw), 100)
		if !a.Equal(b) {
			t.Errorf("interval %d: W=1 latent heat disagrees with single-feature: %v vs %v", i, a.Flows(), b.Flows())
		}
	}
}

// TestLatentHeatNewFlowMidStream: a flow first seen at interval k has no
// tracked history; the window's threshold sum includes slots before its
// arrival, so a new flow must overcome the full window deficit — the
// admission control that kills one-interval elephants.
func TestLatentHeatNewFlowMidStream(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(4)
	for i := 0; i < 4; i++ {
		lh.Classify(snap(0, 200), 100) // only flow 1 active
	}
	// Flow 0 appears with bandwidth just above one threshold's worth:
	// LH = 150 - 4*100 < 0 -> mouse.
	out := classifySet(lh, snap(150, 200), 100)
	if out.Contains(pfx(0)) {
		t.Error("newly arrived flow with sub-window volume classified")
	}
	// A massive arrival beats the whole window: 1000 > 4*100.
	out = classifySet(lh, snap(1000, 200), 100)
	if !out.Contains(pfx(0)) {
		t.Error("overwhelming new flow not classified")
	}
}

func TestLatentHeatEviction(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(2)
	lh.EvictAfter = 3
	lh.Classify(snap(500), 100)
	if lh.TrackedFlows() != 1 {
		t.Fatalf("tracked = %d", lh.TrackedFlows())
	}
	// Idle long enough to be evicted (needs LH <= 0 as well).
	for i := 0; i < 6; i++ {
		lh.Classify(snap(), 100)
	}
	if lh.TrackedFlows() != 0 {
		t.Errorf("idle flow not evicted: tracked = %d", lh.TrackedFlows())
	}
	if _, ok := lh.LatentHeat(pfx(0)); ok {
		t.Error("evicted flow still reports latent heat")
	}
}

func TestLatentHeatEvictionSparesPositiveLH(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(8)
	lh.EvictAfter = 2
	// Huge volume then idle: LH stays positive for a while, so the flow
	// must survive eviction while it is still (latently) an elephant.
	lh.Classify(snap(10000), 100)
	for i := 0; i < 3; i++ {
		out := classifySet(lh, snap(), 100)
		if !out.Contains(pfx(0)) {
			t.Fatalf("interval %d: flow with positive LH lost", i+1)
		}
	}
	if lh.TrackedFlows() != 1 {
		t.Errorf("flow with positive latent heat evicted")
	}
}

func TestLatentHeatUnknownFlowQuery(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(4)
	if _, ok := lh.LatentHeat(pfx(9)); ok {
		t.Error("unknown flow reported known")
	}
}

// TestLatentHeatManyFlowsIndependent: flows accumulate independent
// histories.
func TestLatentHeatManyFlowsIndependent(t *testing.T) {
	lh, _ := NewLatentHeatClassifier(6)
	theta := 100.0
	// Flow 0 steady heavy, flow 1 steady light, flow 2 alternating.
	for i := 0; i < 12; i++ {
		s := NewFlowSnapshot(3)
		s.Append(pfx(0), 300)
		s.Append(pfx(1), 20)
		if i%2 == 0 {
			s.Append(pfx(2), 250)
		}
		out := classifySet(lh, s, theta)
		if i > 6 {
			if !out.Contains(pfx(0)) {
				t.Fatalf("interval %d: steady heavy flow not elephant", i)
			}
			if out.Contains(pfx(1)) {
				t.Fatalf("interval %d: steady light flow is elephant", i)
			}
			// Alternating 250/0 averages 125 > theta: stays elephant
			// once history fills.
			if !out.Contains(pfx(2)) {
				t.Fatalf("interval %d: alternating flow with mean above theta lost", i)
			}
		}
	}
}
