package core

import (
	"net/netip"
	"testing"
)

func TestFlowTableInternLookup(t *testing.T) {
	tb := NewFlowTable()
	a, b := pfx(1), pfx(2)
	ida := tb.Intern(a)
	idb := tb.Intern(b)
	if ida == idb {
		t.Fatalf("distinct prefixes share id %d", ida)
	}
	if got := tb.Intern(a); got != ida {
		t.Errorf("re-intern changed id: %d -> %d", ida, got)
	}
	if id, ok := tb.Lookup(a); !ok || id != ida {
		t.Errorf("Lookup(a) = %d,%v", id, ok)
	}
	if _, ok := tb.Lookup(pfx(9)); ok {
		t.Error("Lookup of never-interned prefix succeeded")
	}
	if tb.PrefixOf(ida) != a || tb.PrefixOf(idb) != b {
		t.Error("PrefixOf does not invert Intern")
	}
	if tb.Len() != 2 || tb.Cap() < 2 {
		t.Errorf("Len=%d Cap=%d", tb.Len(), tb.Cap())
	}
}

func TestFlowTableQuarantineRecycle(t *testing.T) {
	tb := NewFlowTable()
	tb.quarantine = 3 // in-package: shorten the default for the test
	a, b := pfx(1), pfx(2)
	ida := tb.Intern(a)

	tb.Release(ida)
	// During quarantine the mapping must stay fully resolvable.
	if id, ok := tb.Lookup(a); !ok || id != ida {
		t.Fatalf("quarantined mapping lost: %d,%v", id, ok)
	}
	if tb.PrefixOf(ida) != a {
		t.Fatal("quarantined PrefixOf lost")
	}
	tb.Advance()
	tb.Advance()
	// Still quarantined: a new prefix must NOT get the released ID.
	if idb := tb.Intern(b); idb == ida {
		t.Fatal("released ID re-bound inside its quarantine")
	}
	tb.Advance() // quarantine (3) expires here
	if _, ok := tb.Lookup(a); ok {
		t.Fatal("mapping survived quarantine expiry")
	}
	if idc := tb.Intern(pfx(3)); idc != ida {
		t.Errorf("expired ID %d not recycled (got %d)", ida, idc)
	}
	if tb.PrefixOf(ida) != pfx(3) {
		t.Error("recycled ID resolves to stale prefix")
	}
}

func TestFlowTableResurrection(t *testing.T) {
	tb := NewFlowTable()
	tb.quarantine = 4 // in-package: shorten the default for the test
	a := pfx(7)
	ida := tb.Intern(a)
	tb.Release(ida)
	tb.Advance()
	// Re-intern during quarantine: same identity, release cancelled.
	if got := tb.Intern(a); got != ida {
		t.Fatalf("resurrection allocated new id %d (want %d)", got, ida)
	}
	for i := 0; i < 10; i++ {
		tb.Advance()
	}
	// The stale pending entry must not have freed the resurrected ID.
	if id, ok := tb.Lookup(a); !ok || id != ida {
		t.Fatalf("resurrected mapping dropped by stale pending entry: %d,%v", id, ok)
	}
	// Re-release after resurrection starts a fresh quarantine.
	tb.Release(ida)
	tb.Advance()
	if _, ok := tb.Lookup(a); !ok {
		t.Fatal("fresh quarantine expired after one tick")
	}
	for i := 0; i < 4; i++ {
		tb.Advance()
	}
	if _, ok := tb.Lookup(a); ok {
		t.Fatal("re-release never expired")
	}
}

func TestFlowTablePinned(t *testing.T) {
	tb := NewFlowTable()
	tb.quarantine = 1 // in-package: shorten the default for the test
	a := pfx(1)
	ida := tb.Intern(a)
	tb.Pin()
	tb.Release(ida) // must be a no-op
	for i := 0; i < 8; i++ {
		tb.Advance()
	}
	if id, ok := tb.Lookup(a); !ok || id != ida {
		t.Fatalf("pinned mapping recycled: %d,%v", id, ok)
	}
	if tb.PrefixOf(ida) != a {
		t.Fatal("pinned PrefixOf lost")
	}
	// Releasing again (e.g. the classifier evicting a re-admitted flow)
	// must stay harmless.
	tb.Release(ida)
}

func TestFlowTableRanks(t *testing.T) {
	tb := NewFlowTable()
	// Intern out of prefix order so rank != id.
	order := []int{5, 1, 9, 3, 7}
	ids := make([]uint32, len(order))
	for i, n := range order {
		ids[i] = tb.Intern(pfx(n))
	}
	if tb.RanksFresh() {
		t.Error("ranks reported fresh before first build")
	}
	ranks := tb.Ranks()
	if !tb.RanksFresh() {
		t.Error("ranks stale right after rebuild")
	}
	// pfx(n) order is by n: 1 < 3 < 5 < 7 < 9.
	wantRank := map[int]int32{1: 0, 3: 1, 5: 2, 7: 3, 9: 4}
	for i, n := range order {
		if ranks[ids[i]] != wantRank[n] {
			t.Errorf("rank of pfx(%d) = %d, want %d", n, ranks[ids[i]], wantRank[n])
		}
	}
	tb.Intern(pfx(2)) // new binding invalidates
	if tb.RanksFresh() {
		t.Error("ranks fresh after new binding")
	}
	ranks = tb.Ranks()
	if id2, _ := tb.Lookup(pfx(2)); ranks[id2] != 1 {
		t.Errorf("rank of inserted pfx(2) = %d, want 1", ranks[id2])
	}
}

func TestFillIDs(t *testing.T) {
	tb := NewFlowTable()
	s := NewFlowSnapshot(4)
	for i := 0; i < 4; i++ {
		s.Append(pfx(i), float64(i+1))
	}
	if s.HasIDs() {
		t.Fatal("plain snapshot claims IDs")
	}
	tb.FillIDs(s)
	if !s.HasIDs() {
		t.Fatal("FillIDs did not attach a complete column")
	}
	for i := 0; i < s.Len(); i++ {
		if tb.PrefixOf(s.ID(i)) != s.Key(i) {
			t.Errorf("row %d: id %d resolves to %v, want %v", i, s.ID(i), tb.PrefixOf(s.ID(i)), s.Key(i))
		}
	}
	// Idempotent: a second fill must not re-intern or grow the column.
	n := tb.Len()
	tb.FillIDs(s)
	if tb.Len() != n || len(s.IDs()) != s.Len() {
		t.Error("second FillIDs changed state")
	}
}

// FuzzFlowTable drives random intern/release/advance sequences and
// checks the structural invariants the hot path relies on: no
// operation panics, Intern is a bijection over the bound IDs (two
// resolvable prefixes never share an ID, and every resolvable mapping
// round-trips through PrefixOf), and recycling can never leave a
// recycled ID aliased by two live prefixes.
func FuzzFlowTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x40, 0x80, 0, 0x41, 0x80, 0x80, 0x80, 0})
	f.Add([]byte{5, 5, 0x45, 0x80, 0x45, 5, 0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tb := NewFlowTable()
		tb.quarantine = 2 // short quarantine: more recycling per op budget
		pool := make([]netip.Prefix, 16)
		for i := range pool {
			pool[i] = pfx(i)
		}
		for _, op := range ops {
			switch {
			case op&0x80 != 0:
				tb.Advance()
			case op&0x40 != 0:
				if id, ok := tb.Lookup(pool[op&0x0f]); ok {
					tb.Release(id)
				}
			default:
				id := tb.Intern(pool[op&0x0f])
				if got := tb.PrefixOf(id); got != pool[op&0x0f] {
					t.Fatalf("Intern(%v) -> id %d -> PrefixOf %v", pool[op&0x0f], id, got)
				}
			}
			// Bijection over resolvable mappings.
			rev := make(map[uint32]netip.Prefix)
			for _, p := range pool {
				id, ok := tb.Lookup(p)
				if !ok {
					continue
				}
				if other, dup := rev[id]; dup {
					t.Fatalf("id %d aliased by %v and %v", id, other, p)
				}
				rev[id] = p
				if tb.PrefixOf(id) != p {
					t.Fatalf("mapping %v -> %d does not round-trip (PrefixOf = %v)", p, id, tb.PrefixOf(id))
				}
			}
			if tb.Len() != len(rev) {
				t.Fatalf("Len %d != %d resolvable mappings", tb.Len(), len(rev))
			}
			if tb.Cap() < tb.Len() {
				t.Fatalf("Cap %d < Len %d", tb.Cap(), tb.Len())
			}
		}
	})
}

// TestStepReintersForeignIDColumn is the regression pin for a producer
// wired to its own private table (instead of sharing the pipeline's):
// the emitted ID column is stamped with the foreign table, so the
// pipeline must re-intern against its own table — indexing foreign IDs
// used to panic (or worse, silently read another flow's history).
func TestStepReintersForeignIDColumn(t *testing.T) {
	det, err := NewConstantLoadDetector(0.8)
	if err != nil {
		t.Fatal(err)
	}
	lh, err := NewLatentHeatClassifier(3)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: lh, MinFlows: 2})
	if err != nil {
		t.Fatal(err)
	}
	foreign := NewFlowTable()
	// IDs deliberately disjoint from anything pipe's empty table holds.
	for i := 100; i < 164; i++ {
		foreign.Intern(pfx(i))
	}
	for step := 0; step < 6; step++ {
		s := NewFlowSnapshot(8)
		s.SetIDTable(foreign)
		for i := 0; i < 8; i++ {
			s.AppendID(pfx(i), foreign.Intern(pfx(i)), 1e4*float64(i+1))
		}
		res, err := pipe.Step(s)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if s.IDTable() != pipe.Table() {
			t.Fatalf("step %d: foreign ID column not re-interned", step)
		}
		if res.ActiveFlows != 8 {
			t.Fatalf("step %d: ActiveFlows = %d", step, res.ActiveFlows)
		}
	}
	// The classifier's state must be keyed by the pipeline's table: the
	// steady heavy flows are elephants, resolvable by prefix.
	if lh.TrackedFlows() != 8 {
		t.Fatalf("tracked %d flows, want 8", lh.TrackedFlows())
	}
	if _, ok := lh.LatentHeat(pfx(7)); !ok {
		t.Fatal("heaviest flow unknown to the classifier after re-interning")
	}
}
