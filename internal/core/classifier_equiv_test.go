package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

// refLatentHeat is the pre-refactor prefix-keyed LatentHeatClassifier,
// kept verbatim as the behavioural reference for the dense-ID columnar
// implementation: per-flow ring buffers in a map, O(W) window re-sums,
// and a full-map idle scan. The equivalence tests drive both
// implementations with identical inputs and require identical verdicts.
type refLatentHeat struct {
	Window     int
	EvictAfter int

	t       int
	history []float64
	flows   map[netip.Prefix]*refFlowHistory

	idx     []int
	offline []netip.Prefix
}

type refFlowHistory struct {
	bw       []float64
	idleRuns int
	lastSeen int
}

func newRefLatentHeat(window int) *refLatentHeat {
	return &refLatentHeat{Window: window, flows: make(map[netip.Prefix]*refFlowHistory)}
}

func (c *refLatentHeat) Name() string { return "latent-heat-ref" }

func (c *refLatentHeat) thresholdSum() float64 {
	var s float64
	n := len(c.history)
	w := c.Window
	if n < w {
		w = n
	}
	for i := n - w; i < n; i++ {
		s += c.history[i]
	}
	return s
}

func (c *refLatentHeat) LatentHeat(p netip.Prefix) (float64, bool) {
	fh, ok := c.flows[p]
	if !ok {
		return 0, false
	}
	var bwSum float64
	for _, b := range fh.bw {
		bwSum += b
	}
	return bwSum - c.thresholdSum(), true
}

func (c *refLatentHeat) Classify(snap *FlowSnapshot, thresholdHat float64) Verdict {
	evictAfter := c.EvictAfter
	if evictAfter == 0 {
		evictAfter = 4 * c.Window
	}
	c.history = append(c.history, thresholdHat)
	if len(c.history) > c.Window {
		c.history = c.history[len(c.history)-c.Window:]
	}
	slot := c.t % c.Window
	c.t++

	for i := 0; i < snap.Len(); i++ {
		p, bw := snap.Key(i), snap.Bandwidth(i)
		fh, ok := c.flows[p]
		if !ok {
			fh = &refFlowHistory{bw: make([]float64, c.Window)}
			c.flows[p] = fh
		}
		fh.bw[slot] = bw
		fh.idleRuns = 0
		fh.lastSeen = c.t
	}

	thrSum := c.thresholdSum()
	c.idx = c.idx[:0]
	c.offline = c.offline[:0]
	for i := 0; i < snap.Len(); i++ {
		fh := c.flows[snap.Key(i)]
		var bwSum float64
		for _, b := range fh.bw {
			bwSum += b
		}
		if bwSum-thrSum > 0 {
			c.idx = append(c.idx, i)
		}
	}
	for p, fh := range c.flows {
		if fh.lastSeen == c.t {
			continue
		}
		fh.bw[slot] = 0
		fh.idleRuns++
		var bwSum float64
		for _, b := range fh.bw {
			bwSum += b
		}
		if bwSum-thrSum > 0 {
			c.offline = append(c.offline, p)
		} else if fh.idleRuns >= evictAfter {
			delete(c.flows, p)
		}
	}
	sort.Slice(c.offline, func(i, j int) bool {
		return ComparePrefix(c.offline[i], c.offline[j]) < 0
	})
	return Verdict{Indices: c.idx, Offline: c.offline}
}

// equivInterval builds one random interval: a sorted snapshot over a
// subset of the flow pool. Flows idle with probability pIdle, and a few
// flows get long forced-idle stretches so eviction and post-eviction
// resurrection are exercised.
func equivInterval(rng *rand.Rand, pool []netip.Prefix, t int, integerBw bool) *FlowSnapshot {
	s := NewFlowSnapshot(len(pool))
	for i, p := range pool {
		// Flows 0..4 idle in long phases to force eviction/readmission.
		if i < 5 && (t/17)%2 == i%2 {
			continue
		}
		if rng.Float64() < 0.3 {
			continue
		}
		var bw float64
		if integerBw {
			bw = float64(rng.Intn(5000) + 1)
		} else {
			bw = rng.Float64() * 5e4
		}
		s.Append(p, bw)
	}
	return s
}

func verdictsEqual(a, b Verdict) bool {
	if len(a.Indices) != len(b.Indices) || len(a.Offline) != len(b.Offline) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
	}
	for i := range a.Offline {
		if a.Offline[i] != b.Offline[i] {
			return false
		}
	}
	return true
}

// TestLatentHeatEquivalence drives the columnar ID-indexed classifier
// and the prefix-keyed reference through identical random interval
// sequences — idle phases, evictions, resurrections — and requires
// identical verdicts every interval. The integer-bandwidth runs make
// the float arithmetic exact, so the incremental window sum must agree
// with the reference's O(W) re-sum to the last bit; the continuous runs
// cover realistic magnitudes.
func TestLatentHeatEquivalence(t *testing.T) {
	pool := make([]netip.Prefix, 60)
	for i := range pool {
		pool[i] = pfx(i)
	}
	for _, tc := range []struct {
		window, evict int
		integer       bool
	}{
		{1, 0, true}, {2, 3, true}, {3, 2, true}, {12, 0, true}, {12, 4, true},
		{2, 3, false}, {12, 4, false},
	} {
		name := fmt.Sprintf("w=%d,evict=%d,int=%v", tc.window, tc.evict, tc.integer)
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.window*100 + tc.evict)))
			got, err := NewLatentHeatClassifier(tc.window)
			if err != nil {
				t.Fatal(err)
			}
			got.EvictAfter = tc.evict
			want := newRefLatentHeat(tc.window)
			want.EvictAfter = tc.evict
			for step := 0; step < 400; step++ {
				snap := equivInterval(rng, pool, step, tc.integer)
				var thr float64
				if tc.integer {
					thr = float64(rng.Intn(2000))
				} else {
					thr = rng.Float64() * 2e4
				}
				gv := got.Classify(snap, thr)
				wv := want.Classify(snap, thr)
				if !verdictsEqual(gv, wv) {
					t.Fatalf("interval %d: verdicts diverge\n got %v %v\nwant %v %v",
						step, gv.Indices, gv.Offline, wv.Indices, wv.Offline)
				}
				if got.TrackedFlows() != len(want.flows) {
					t.Fatalf("interval %d: tracked %d, reference %d", step, got.TrackedFlows(), len(want.flows))
				}
				if tc.integer {
					for _, p := range pool {
						glh, gok := got.LatentHeat(p)
						wlh, wok := want.LatentHeat(p)
						if gok != wok || glh != wlh {
							t.Fatalf("interval %d: LatentHeat(%v) = %v,%v, reference %v,%v", step, p, glh, gok, wlh, wok)
						}
					}
				}
			}
		})
	}
}

// TestPipelineResultEquivalence runs two full pipelines — identical
// detector, EWMA and inputs; one with the columnar classifier, one with
// the prefix-keyed reference — and requires byte-identical Results:
// same thresholds, same elephant sets, same loads. This is the
// whole-hot-path pin for the ID refactor on the batch entry point.
func TestPipelineResultEquivalence(t *testing.T) {
	pool := make([]netip.Prefix, 80)
	for i := range pool {
		pool[i] = pfx(i)
	}
	mk := func(cl Classifier) *Pipeline {
		det, err := NewConstantLoadDetector(0.8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPipeline(Config{Detector: det, Alpha: 0.5, Classifier: cl, MinFlows: 4})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	lh, err := NewLatentHeatClassifier(6)
	if err != nil {
		t.Fatal(err)
	}
	lh.EvictAfter = 5
	ref := newRefLatentHeat(6)
	ref.EvictAfter = 5
	pGot, pWant := mk(lh), mk(ref)

	rng := rand.New(rand.NewSource(99))
	var sGot, sWant *FlowSnapshot
	for step := 0; step < 300; step++ {
		// Two identical snapshots: Step attaches IDs to the columnar
		// pipeline's snapshot, so the instances must be distinct.
		seed := rng.Int63()
		sGot = fillEquiv(sGot, pool, seed, step)
		sWant = fillEquiv(sWant, pool, seed, step)
		rg, errG := pGot.Step(sGot)
		rw, errW := pWant.Step(sWant)
		if (errG == nil) != (errW == nil) {
			t.Fatalf("interval %d: error mismatch: %v vs %v", step, errG, errW)
		}
		if errG != nil {
			continue
		}
		if rg.RawThreshold != rw.RawThreshold || rg.Threshold != rw.Threshold {
			t.Fatalf("interval %d: thresholds %v/%v vs %v/%v", step, rg.RawThreshold, rg.Threshold, rw.RawThreshold, rw.Threshold)
		}
		if rg.ElephantLoad != rw.ElephantLoad || rg.TotalLoad != rw.TotalLoad || rg.ActiveFlows != rw.ActiveFlows {
			t.Fatalf("interval %d: loads diverge: %+v vs %+v", step, rg, rw)
		}
		if !rg.Elephants.Equal(rw.Elephants) {
			t.Fatalf("interval %d: elephant sets diverge: %v vs %v", step, rg.Elephants.Flows(), rw.Elephants.Flows())
		}
	}
}

// fillEquiv deterministically fills a snapshot from a seed so two
// pipeline runs see identical columns in identical order.
func fillEquiv(dst *FlowSnapshot, pool []netip.Prefix, seed int64, t int) *FlowSnapshot {
	if dst == nil {
		dst = NewFlowSnapshot(len(pool))
	}
	dst.Reset()
	rng := rand.New(rand.NewSource(seed))
	for i, p := range pool {
		if i < 4 && (t/13)%2 == 0 {
			continue
		}
		if rng.Float64() < 0.25 {
			continue
		}
		dst.Append(p, rng.Float64()*1e5)
	}
	return dst
}

// TestLatentHeatSteadyStateAllocs pins the zero-allocation contract of
// the resident classify path: once flow columns and scratch buffers are
// warm, Classify must not allocate — per-interval garbage is what the
// dense-ID refactor exists to eliminate.
func TestLatentHeatSteadyStateAllocs(t *testing.T) {
	lh, err := NewLatentHeatClassifier(12)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewFlowTable()
	lh.BindTable(tbl)
	snap := NewFlowSnapshot(512)
	for i := 0; i < 512; i++ {
		snap.Append(pfx(i), 1e4+float64(i))
	}
	tbl.FillIDs(snap)
	for i := 0; i < 2*12; i++ {
		lh.Classify(snap, 9e3)
	}
	if avg := testing.AllocsPerRun(200, func() { lh.Classify(snap, 9e3) }); avg != 0 {
		t.Fatalf("steady-state Classify allocates %v times per interval, want 0", avg)
	}
}
