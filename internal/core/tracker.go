package core

import (
	"net/netip"
	"sort"
)

// Tracker maintains the per-flow two-state process I_j(t) online: feed
// it each interval's elephant set and it keeps, per flow, the visit
// count, current and completed holding times, and transition totals —
// the quantities package analysis derives after the fact, but available
// streaming for a live deployment (e.g. to expose as metrics or to gate
// reroutes on a minimum dwell time).
type Tracker struct {
	t     int
	flows map[netip.Prefix]*flowTrack

	// Promotions and Demotions count state transitions across all flows.
	Promotions, Demotions int
}

type flowTrack struct {
	elephant   bool
	curRun     int   // length of the current elephant run
	runs       []int // completed run lengths
	lastChange int   // interval of the last transition
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{flows: make(map[netip.Prefix]*flowTrack)}
}

// Observe folds one interval's elephant set in. Flows absent from the
// set (including never-seen flows) are mice for the interval. Calls must
// be made in interval order.
func (tr *Tracker) Observe(elephants ElephantSet) {
	// Demote tracked elephants that left the set.
	for p, ft := range tr.flows {
		if ft.elephant && !elephants.Contains(p) {
			ft.elephant = false
			ft.runs = append(ft.runs, ft.curRun)
			ft.curRun = 0
			ft.lastChange = tr.t
			tr.Demotions++
		}
	}
	// Promote or extend members.
	for _, p := range elephants.Flows() {
		ft, ok := tr.flows[p]
		if !ok {
			ft = &flowTrack{}
			tr.flows[p] = ft
		}
		if !ft.elephant {
			ft.elephant = true
			ft.lastChange = tr.t
			tr.Promotions++
		}
		ft.curRun++
	}
	tr.t++
}

// Intervals reports how many intervals have been observed.
func (tr *Tracker) Intervals() int { return tr.t }

// State returns the flow's current class.
func (tr *Tracker) State(p netip.Prefix) Class {
	if ft, ok := tr.flows[p]; ok && ft.elephant {
		return Elephant
	}
	return Mouse
}

// CurrentRun returns the length (in intervals) of the flow's ongoing
// elephant run; zero for mice.
func (tr *Tracker) CurrentRun(p netip.Prefix) int {
	if ft, ok := tr.flows[p]; ok {
		return ft.curRun
	}
	return 0
}

// HoldingStat summarises one flow's elephant-state visits.
type HoldingStat struct {
	Flow netip.Prefix
	// Visits counts completed plus ongoing elephant runs.
	Visits int
	// MeanHolding is the average run length in intervals, counting the
	// ongoing run at its current length (the paper's busy-window
	// convention for runs open at the edge).
	MeanHolding float64
	// Elephant reports whether the flow is currently in the class.
	Elephant bool
}

// Holdings returns per-flow holding statistics for every flow that ever
// entered the elephant state, sorted by flow for deterministic output.
func (tr *Tracker) Holdings() []HoldingStat {
	out := make([]HoldingStat, 0, len(tr.flows))
	for p, ft := range tr.flows {
		runs := len(ft.runs)
		total := 0
		for _, r := range ft.runs {
			total += r
		}
		if ft.curRun > 0 {
			runs++
			total += ft.curRun
		}
		if runs == 0 {
			continue
		}
		out = append(out, HoldingStat{
			Flow:        p,
			Visits:      runs,
			MeanHolding: float64(total) / float64(runs),
			Elephant:    ft.elephant,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Flow.Addr().Compare(out[j].Flow.Addr()); c != 0 {
			return c < 0
		}
		return out[i].Flow.Bits() < out[j].Flow.Bits()
	})
	return out
}

// MeanHolding returns the across-flow mean of per-flow average holding
// times, in intervals (0 when no flow was ever an elephant).
func (tr *Tracker) MeanHolding() float64 {
	hs := tr.Holdings()
	if len(hs) == 0 {
		return 0
	}
	var sum float64
	for _, h := range hs {
		sum += h.MeanHolding
	}
	return sum / float64(len(hs))
}

// Reset clears all state.
func (tr *Tracker) Reset() {
	tr.t = 0
	tr.Promotions, tr.Demotions = 0, 0
	for p := range tr.flows {
		delete(tr.flows, p)
	}
}
