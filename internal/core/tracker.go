package core

import (
	"net/netip"
	"slices"
)

// Tracker maintains the per-flow two-state process I_j(t) online: feed
// it each interval's elephant set and it keeps, per flow, the visit
// count, current and completed holding times, and transition totals —
// the quantities package analysis derives after the fact, but available
// streaming for a live deployment (e.g. to expose as metrics or to gate
// reroutes on a minimum dwell time).
//
// Flow state lives in flat columns indexed by a private FlowTable's
// dense IDs (one intern per member per interval), and the per-interval
// demotion pass sweeps only the flows currently in the elephant state
// instead of every flow ever tracked. IDs are never recycled: holding
// statistics are cumulative over the tracker's lifetime, exactly like
// the prefix-keyed map of earlier revisions.
type Tracker struct {
	t     int
	table *FlowTable

	// Columns indexed by table ID.
	elephant   []bool
	curRun     []int32 // length of the current elephant run
	runsCount  []int32 // completed runs
	runsTotal  []int64 // sum of completed run lengths
	lastChange []int32 // interval of the last transition

	seen        []int32  // sweep marker: interval the flow was last a member
	elephantIDs []uint32 // flows currently in the elephant state
	scratch     []uint32 // per-Observe member IDs, interned once

	// Promotions and Demotions count state transitions across all flows.
	Promotions, Demotions int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{table: NewFlowTable()}
}

// ensureFlow grows the columns to cover id.
func (tr *Tracker) ensureFlow(id uint32) {
	if int(id) < len(tr.elephant) {
		return
	}
	n := int(id) + 1
	tr.elephant = append(tr.elephant, make([]bool, n-len(tr.elephant))...)
	tr.curRun = append(tr.curRun, make([]int32, n-len(tr.curRun))...)
	tr.runsCount = append(tr.runsCount, make([]int32, n-len(tr.runsCount))...)
	tr.runsTotal = append(tr.runsTotal, make([]int64, n-len(tr.runsTotal))...)
	tr.lastChange = append(tr.lastChange, make([]int32, n-len(tr.lastChange))...)
	tr.seen = append(tr.seen, make([]int32, n-len(tr.seen))...)
}

// Observe folds one interval's elephant set in. Flows absent from the
// set (including never-seen flows) are mice for the interval. Calls must
// be made in interval order.
func (tr *Tracker) Observe(elephants ElephantSet) {
	epoch := int32(tr.t + 1)
	tr.scratch = tr.scratch[:0]
	for _, p := range elephants.Flows() {
		id := tr.table.Intern(p)
		tr.ensureFlow(id)
		tr.seen[id] = epoch
		tr.scratch = append(tr.scratch, id)
	}
	// Demote tracked elephants that left the set, compacting in place.
	w := 0
	for _, id := range tr.elephantIDs {
		if tr.seen[id] == epoch {
			tr.elephantIDs[w] = id
			w++
			continue
		}
		tr.elephant[id] = false
		tr.runsCount[id]++
		tr.runsTotal[id] += int64(tr.curRun[id])
		tr.curRun[id] = 0
		tr.lastChange[id] = int32(tr.t)
		tr.Demotions++
	}
	tr.elephantIDs = tr.elephantIDs[:w]
	// Promote or extend members.
	for _, id := range tr.scratch {
		if !tr.elephant[id] {
			tr.elephant[id] = true
			tr.lastChange[id] = int32(tr.t)
			tr.elephantIDs = append(tr.elephantIDs, id)
			tr.Promotions++
		}
		tr.curRun[id]++
	}
	tr.t++
}

// Intervals reports how many intervals have been observed.
func (tr *Tracker) Intervals() int { return tr.t }

// State returns the flow's current class.
func (tr *Tracker) State(p netip.Prefix) Class {
	if id, ok := tr.table.Lookup(p); ok && tr.elephant[id] {
		return Elephant
	}
	return Mouse
}

// CurrentRun returns the length (in intervals) of the flow's ongoing
// elephant run; zero for mice.
func (tr *Tracker) CurrentRun(p netip.Prefix) int {
	if id, ok := tr.table.Lookup(p); ok {
		return int(tr.curRun[id])
	}
	return 0
}

// HoldingStat summarises one flow's elephant-state visits.
type HoldingStat struct {
	Flow netip.Prefix
	// Visits counts completed plus ongoing elephant runs.
	Visits int
	// MeanHolding is the average run length in intervals, counting the
	// ongoing run at its current length (the paper's busy-window
	// convention for runs open at the edge).
	MeanHolding float64
	// Elephant reports whether the flow is currently in the class.
	Elephant bool
}

// Holdings returns per-flow holding statistics for every flow that ever
// entered the elephant state, sorted by flow for deterministic output.
func (tr *Tracker) Holdings() []HoldingStat {
	out := make([]HoldingStat, 0, len(tr.elephantIDs))
	for id := range tr.elephant {
		runs := int(tr.runsCount[id])
		total := tr.runsTotal[id]
		if tr.curRun[id] > 0 {
			runs++
			total += int64(tr.curRun[id])
		}
		if runs == 0 {
			continue
		}
		out = append(out, HoldingStat{
			Flow:        tr.table.PrefixOf(uint32(id)),
			Visits:      runs,
			MeanHolding: float64(total) / float64(runs),
			Elephant:    tr.elephant[id],
		})
	}
	slices.SortFunc(out, func(a, b HoldingStat) int { return ComparePrefix(a.Flow, b.Flow) })
	return out
}

// MeanHolding returns the across-flow mean of per-flow average holding
// times, in intervals (0 when no flow was ever an elephant).
func (tr *Tracker) MeanHolding() float64 {
	hs := tr.Holdings()
	if len(hs) == 0 {
		return 0
	}
	var sum float64
	for _, h := range hs {
		sum += h.MeanHolding
	}
	return sum / float64(len(hs))
}

// Reset clears all state.
func (tr *Tracker) Reset() {
	tr.t = 0
	tr.Promotions, tr.Demotions = 0, 0
	tr.table = NewFlowTable()
	tr.elephant = tr.elephant[:0]
	tr.curRun = tr.curRun[:0]
	tr.runsCount = tr.runsCount[:0]
	tr.runsTotal = tr.runsTotal[:0]
	tr.lastChange = tr.lastChange[:0]
	tr.seen = tr.seen[:0]
	tr.elephantIDs = tr.elephantIDs[:0]
}
