package core

import (
	"net/netip"
	"testing"
)

func TestSnapshotAppendSortedOrder(t *testing.T) {
	s := NewFlowSnapshot(4)
	s.Append(pfx(0), 10)
	s.Append(pfx(1), 20)
	s.Append(pfx(5), 30)
	if !s.IsSorted() {
		t.Fatal("in-order appends must keep the snapshot sorted")
	}
	if s.Len() != 3 || s.TotalLoad() != 60 {
		t.Fatalf("len=%d total=%v", s.Len(), s.TotalLoad())
	}
	if s.Key(1) != pfx(1) || s.Bandwidth(1) != 20 {
		t.Errorf("column mismatch at 1: %v %v", s.Key(1), s.Bandwidth(1))
	}
}

func TestSnapshotDropsNonPositive(t *testing.T) {
	s := NewFlowSnapshot(0)
	s.Append(pfx(0), 0)
	s.Append(pfx(1), -5)
	s.Append(pfx(2), 7)
	if s.Len() != 1 || s.TotalLoad() != 7 {
		t.Errorf("non-positive bandwidths must be dropped: len=%d total=%v", s.Len(), s.TotalLoad())
	}
}

func TestSnapshotOutOfOrderNeedsSort(t *testing.T) {
	s := NewFlowSnapshot(0)
	s.Append(pfx(3), 30)
	s.Append(pfx(1), 10)
	if s.IsSorted() {
		t.Fatal("out-of-order append not detected")
	}
	s.Sort()
	if !s.IsSorted() || s.Key(0) != pfx(1) || s.Bandwidth(0) != 10 {
		t.Errorf("Sort broken: keys=%v bw=%v", s.Keys(), s.Bandwidths())
	}
}

func TestSnapshotPrefixLengthOrder(t *testing.T) {
	a16 := netip.MustParsePrefix("10.0.0.0/16")
	a24 := netip.MustParsePrefix("10.0.0.0/24")
	s := NewFlowSnapshot(0)
	s.Append(a16, 1)
	s.Append(a24, 2) // same address, longer prefix: still ascending
	if !s.IsSorted() {
		t.Error("same-address longer prefix must sort after shorter")
	}
	if i, ok := s.Lookup(a24); !ok || i != 1 {
		t.Errorf("Lookup(/24) = %d, %v", i, ok)
	}
}

func TestSnapshotResetReuse(t *testing.T) {
	s := NewFlowSnapshot(2)
	s.Append(pfx(2), 5)
	s.Append(pfx(1), 5) // unsorted
	s.Reset()
	if s.Len() != 0 || s.TotalLoad() != 0 || !s.IsSorted() {
		t.Fatal("Reset incomplete")
	}
	s.Append(pfx(0), 3)
	if s.Len() != 1 || s.TotalLoad() != 3 {
		t.Error("reuse after Reset broken")
	}
}

func TestSnapshotLookup(t *testing.T) {
	s := snap(10, 20, 30)
	if i, ok := s.Lookup(pfx(1)); !ok || i != 1 {
		t.Errorf("Lookup(pfx(1)) = %d, %v", i, ok)
	}
	if _, ok := s.Lookup(pfx(9)); ok {
		t.Error("Lookup found an absent flow")
	}
}

// TestSnapshotSortCoalescesDuplicates: merging partial sources may
// Append the same prefix twice; Sort must leave a strictly ordered
// snapshot with the bandwidths summed, not a duplicate key the
// pipeline's sorted gate would wave through.
func TestSnapshotSortCoalescesDuplicates(t *testing.T) {
	s := NewFlowSnapshot(0)
	s.Append(pfx(1), 10)
	s.Append(pfx(0), 5)
	s.Append(pfx(1), 30)
	s.Sort()
	if s.Len() != 2 || !s.verifySorted() {
		t.Fatalf("len=%d keys=%v", s.Len(), s.Keys())
	}
	if i, ok := s.Lookup(pfx(1)); !ok || s.Bandwidth(i) != 40 {
		t.Errorf("duplicate not coalesced: %v %v", s.Keys(), s.Bandwidths())
	}
	if s.TotalLoad() != 45 {
		t.Errorf("total = %v, want 45", s.TotalLoad())
	}
}

func TestSnapshotFromMap(t *testing.T) {
	m := map[netip.Prefix]float64{pfx(3): 30, pfx(0): 10, pfx(1): 0}
	s := SnapshotFromMap(m, nil)
	if !s.IsSorted() || s.Len() != 2 {
		t.Fatalf("sorted=%v len=%d", s.IsSorted(), s.Len())
	}
	if s.Key(0) != pfx(0) || s.Key(1) != pfx(3) {
		t.Errorf("keys = %v", s.Keys())
	}
	// Reuse the same snapshot.
	s2 := SnapshotFromMap(map[netip.Prefix]float64{pfx(7): 1}, s)
	if s2 != s || s.Len() != 1 || s.Key(0) != pfx(7) {
		t.Error("dst reuse broken")
	}
}

func TestElephantSetBasics(t *testing.T) {
	e := NewElephantSet(pfx(5), pfx(1), pfx(5), pfx(3))
	if e.Len() != 3 {
		t.Fatalf("len = %d, want 3 (deduplicated)", e.Len())
	}
	for _, p := range []netip.Prefix{pfx(1), pfx(3), pfx(5)} {
		if !e.Contains(p) {
			t.Errorf("missing %v", p)
		}
	}
	if e.Contains(pfx(2)) {
		t.Error("phantom member")
	}
	flows := e.Flows()
	for i := 1; i < len(flows); i++ {
		if ComparePrefix(flows[i-1], flows[i]) >= 0 {
			t.Error("Flows not sorted")
		}
	}
}

func TestElephantSetEqualAndJaccard(t *testing.T) {
	a := NewElephantSet(pfx(0), pfx(1), pfx(2))
	b := NewElephantSet(pfx(2), pfx(1), pfx(0))
	if !a.Equal(b) {
		t.Error("order-independent equality broken")
	}
	c := NewElephantSet(pfx(1), pfx(2), pfx(3))
	if a.Equal(c) {
		t.Error("distinct sets compare equal")
	}
	if j := a.Jaccard(c); j != 0.5 {
		t.Errorf("jaccard = %v, want 0.5 (2 common / 4 union)", j)
	}
	if j := (ElephantSet{}).Jaccard(ElephantSet{}); j != 1 {
		t.Errorf("empty-vs-empty jaccard = %v, want 1", j)
	}
}

func TestMergeElephants(t *testing.T) {
	s := snap(10, 20, 30) // pfx(0..2)
	out := mergeElephants(s, Verdict{
		Indices: []int{0, 2},
		Offline: []netip.Prefix{pfx(1), pfx(7)},
	})
	want := NewElephantSet(pfx(0), pfx(1), pfx(2), pfx(7))
	if !out.Equal(want) {
		t.Errorf("merge = %v, want %v", out.Flows(), want.Flows())
	}
}

func TestComparePrefix(t *testing.T) {
	a := netip.MustParsePrefix("10.0.0.0/16")
	b := netip.MustParsePrefix("10.0.0.0/24")
	c := netip.MustParsePrefix("11.0.0.0/8")
	if ComparePrefix(a, b) >= 0 || ComparePrefix(b, a) <= 0 {
		t.Error("length tie-break broken")
	}
	if ComparePrefix(a, c) >= 0 || ComparePrefix(a, a) != 0 {
		t.Error("address ordering broken")
	}
}

func TestSnapshotIDColumn(t *testing.T) {
	s := NewFlowSnapshot(4)
	s.AppendID(pfx(0), 7, 10)
	s.AppendID(pfx(1), 3, 20)
	s.AppendID(pfx(2), 9, 0) // dropped like Append
	if !s.HasIDs() || s.Len() != 2 {
		t.Fatalf("HasIDs=%v Len=%d", s.HasIDs(), s.Len())
	}
	if s.ID(0) != 7 || s.ID(1) != 3 {
		t.Errorf("ids = %v", s.IDs())
	}
	// A plain Append breaks the all-or-nothing column.
	s.Append(pfx(3), 5)
	if s.HasIDs() {
		t.Error("mixed appends still claim a complete ID column")
	}
	s.Reset()
	if !s.HasIDs() || s.Len() != 0 {
		t.Error("reset snapshot must be trivially ID-complete")
	}
}

func TestSnapshotSortCarriesIDs(t *testing.T) {
	s := NewFlowSnapshot(4)
	// Out of order, with a duplicate prefix (same table => same ID).
	s.AppendID(pfx(2), 12, 30)
	s.AppendID(pfx(0), 10, 10)
	s.AppendID(pfx(2), 12, 5)
	s.AppendID(pfx(1), 11, 20)
	if s.IsSorted() {
		t.Fatal("out-of-order snapshot claims sorted")
	}
	s.Sort()
	if !s.HasIDs() {
		t.Fatal("Sort dropped the ID column")
	}
	wantKeys := []netip.Prefix{pfx(0), pfx(1), pfx(2)}
	wantIDs := []uint32{10, 11, 12}
	wantBW := []float64{10, 20, 35}
	for i := range wantKeys {
		if s.Key(i) != wantKeys[i] || s.ID(i) != wantIDs[i] || s.Bandwidth(i) != wantBW[i] {
			t.Fatalf("row %d = %v/%d/%v, want %v/%d/%v",
				i, s.Key(i), s.ID(i), s.Bandwidth(i), wantKeys[i], wantIDs[i], wantBW[i])
		}
	}
}
