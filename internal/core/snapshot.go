package core

import (
	"net/netip"
	"slices"
	"sort"

	"repro/internal/stats"
)

// ComparePrefix orders prefixes by address, then by length. It is the
// canonical flow order of the whole system: FlowSnapshot columns,
// ElephantSet members and Verdict.Offline are all sorted by it.
func ComparePrefix(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}

// FlowSnapshot is the columnar view of one measurement interval: a
// prefix column sorted by ComparePrefix and a parallel column of average
// bandwidths x_j(t) in bit/s, all strictly positive. It replaces the
// map[netip.Prefix]float64 snapshot of earlier revisions in every
// interval hot path.
//
// Ownership contract: a snapshot is owned by its producer and may be
// reset and refilled for the next interval (agg.Series.Snapshot and the
// engine workers do exactly that). Consumers must not retain the
// snapshot or its column slices across intervals; anything that outlives
// the interval (e.g. Result.Elephants) is copied out by Pipeline.Step.
// A snapshot may additionally carry a dense-ID column (AppendID, or
// FlowTable.FillIDs) aligned with the prefix column: ids[i] is the
// FlowTable ID of keys[i]. The column is all-or-nothing — HasIDs
// reports whether every row has one — and IDs are only meaningful
// against the single table the producing pipeline owns.
type FlowSnapshot struct {
	keys    []netip.Prefix
	bw      []float64
	ids     []uint32
	idTable *FlowTable // table the ID column was interned against
	total   float64
	sorted  bool
	// sortedBW caches an ascending-sorted copy of bw, built lazily by
	// SortedBandwidths and invalidated by any mutation; sortedBWOK
	// tracks its validity. sortTmp is the radix sort's ping-pong
	// scratch, reused across fills.
	sortedBW   []float64
	sortTmp    []float64
	sortedBWOK bool
}

// NewFlowSnapshot returns an empty snapshot with room for capacity
// flows.
func NewFlowSnapshot(capacity int) *FlowSnapshot {
	return &FlowSnapshot{
		keys:   make([]netip.Prefix, 0, capacity),
		bw:     make([]float64, 0, capacity),
		sorted: true,
	}
}

// Reset empties the snapshot, keeping the backing arrays for reuse.
func (s *FlowSnapshot) Reset() {
	s.keys = s.keys[:0]
	s.bw = s.bw[:0]
	s.ids = s.ids[:0]
	s.idTable = nil
	s.total = 0
	s.sorted = true
	s.sortedBWOK = false
}

// CopyFrom replaces the snapshot's contents with a copy of src's
// prefix and bandwidth columns, reusing the backing arrays. It is the
// stage-boundary handoff of a pipelined consumer: the producer's
// snapshot (owned and about to be reused for the next interval) is
// copied into a transfer buffer the consumer owns. The ID column is
// deliberately dropped — IDs are only meaningful against the
// producer's table, which the consumer must not share once the stages
// run concurrently — so consumers re-intern via FlowTable.FillIDs.
// The running total is copied bit-for-bit, not recomputed, preserving
// the producer's exact fold.
func (s *FlowSnapshot) CopyFrom(src *FlowSnapshot) {
	s.keys = append(s.keys[:0], src.keys...)
	s.bw = append(s.bw[:0], src.bw...)
	s.ids = s.ids[:0]
	s.idTable = nil
	s.total = src.total
	s.sorted = src.sorted
	s.sortedBWOK = false
}

// Append adds one flow. Non-positive bandwidths are dropped (an idle
// flow is simply absent from the interval). Appending in ComparePrefix
// order keeps the snapshot sorted for free; out-of-order appends are
// tolerated but require a Sort call before the snapshot is classified.
func (s *FlowSnapshot) Append(p netip.Prefix, bw float64) {
	if bw <= 0 {
		return
	}
	if n := len(s.keys); n > 0 && ComparePrefix(s.keys[n-1], p) >= 0 {
		s.sorted = false
	}
	s.keys = append(s.keys, p)
	s.bw = append(s.bw, bw)
	s.total += bw
	s.sortedBWOK = false
}

// AppendID adds one flow together with its dense FlowTable ID —
// producers that hold a table (the stream accumulator) use it so the
// classifier can index its per-flow columns without a single hash
// lookup. The same bandwidth and ordering rules as Append apply.
func (s *FlowSnapshot) AppendID(p netip.Prefix, id uint32, bw float64) {
	if bw <= 0 {
		return
	}
	s.Append(p, bw)
	s.ids = append(s.ids, id)
}

// HasIDs reports whether every row carries a dense ID: true when the
// snapshot was filled exclusively through AppendID (or FillIDs), false
// after any plain Append.
func (s *FlowSnapshot) HasIDs() bool { return len(s.ids) == len(s.keys) }

// SetIDTable stamps the table the ID column was interned against.
// Producers filling via AppendID set it (FillIDs does it itself);
// consumers use IDTable to reject — and re-intern — columns that came
// from a different pipeline's table instead of indexing foreign IDs.
func (s *FlowSnapshot) SetIDTable(tb *FlowTable) { s.idTable = tb }

// IDTable returns the table the ID column belongs to (nil when the
// producer did not stamp one).
func (s *FlowSnapshot) IDTable() *FlowTable { return s.idTable }

// ClearIDs drops the ID column (keeping keys and bandwidths), so a
// consumer holding a different table can re-intern via FillIDs.
func (s *FlowSnapshot) ClearIDs() {
	s.ids = s.ids[:0]
	s.idTable = nil
}

// ID returns the i-th flow's dense ID; meaningful only when HasIDs.
func (s *FlowSnapshot) ID(i int) uint32 { return s.ids[i] }

// IDs exposes the ID column (nil or short of Len when HasIDs is
// false). Shared storage; do not modify.
func (s *FlowSnapshot) IDs() []uint32 { return s.ids }

// Len reports the number of active flows in the snapshot.
func (s *FlowSnapshot) Len() int { return len(s.keys) }

// Key returns the i-th flow prefix.
func (s *FlowSnapshot) Key(i int) netip.Prefix { return s.keys[i] }

// Bandwidth returns the i-th flow's bandwidth in bit/s.
func (s *FlowSnapshot) Bandwidth(i int) float64 { return s.bw[i] }

// Keys exposes the prefix column. Shared storage; do not modify.
func (s *FlowSnapshot) Keys() []netip.Prefix { return s.keys }

// Bandwidths exposes the bandwidth column. Shared storage; do not
// modify. (Pipeline.Step copies it before handing it to a Detector,
// which is allowed to reorder its input.)
func (s *FlowSnapshot) Bandwidths() []float64 { return s.bw }

// SortedBandwidths returns the bandwidth column sorted ascending. The
// copy is computed lazily once per fill and cached until the snapshot
// is next mutated, so every consumer of the interval — notably the S
// pipelines classifying one emitted snapshot under the engine's
// emit-once matrix execution — shares a single sort. Read-only shared
// storage; do not modify.
func (s *FlowSnapshot) SortedBandwidths() []float64 {
	if !s.sortedBWOK {
		s.sortedBW = append(s.sortedBW[:0], s.bw...)
		// Aggregated snapshots hold strictly positive bandwidths, where
		// the bit-pattern radix sort produces the identical ascending
		// order several times faster than the comparison sort; manual
		// fills may contain zeros, negatives or NaNs, which fall back.
		positive := true
		for _, x := range s.sortedBW {
			if !(x > 0) {
				positive = false
				break
			}
		}
		if positive {
			if cap(s.sortTmp) < len(s.sortedBW) {
				s.sortTmp = make([]float64, len(s.sortedBW))
			}
			stats.SortPositive(s.sortedBW, s.sortTmp[:len(s.sortedBW)])
		} else {
			slices.Sort(s.sortedBW)
		}
		s.sortedBWOK = true
	}
	return s.sortedBW
}

// TotalLoad returns the aggregate link load of the interval in bit/s.
func (s *FlowSnapshot) TotalLoad() float64 { return s.total }

// IsSorted reports whether every Append so far was in ComparePrefix
// order (or Sort has been called since the last violation). It is O(1):
// the flag is maintained incrementally.
func (s *FlowSnapshot) IsSorted() bool { return s.sorted }

// Sort restores the canonical order after out-of-order appends, e.g.
// when the snapshot was filled from a map. Duplicate prefixes (possible
// when merging partial interval sources) are coalesced by summing their
// bandwidths, preserving both TotalLoad and the strict ordering
// invariant the pipeline relies on.
func (s *FlowSnapshot) Sort() {
	if s.sorted {
		return
	}
	withIDs := s.HasIDs()
	s.sortedBWOK = false
	sort.Sort((*snapshotSorter)(s))
	w := 0
	for i := 1; i < len(s.keys); i++ {
		if s.keys[i] == s.keys[w] {
			// Duplicates of one prefix interned against one table carry
			// equal IDs, so keeping the first suffices for the ID column.
			s.bw[w] += s.bw[i]
		} else {
			w++
			s.keys[w] = s.keys[i]
			s.bw[w] = s.bw[i]
			if withIDs {
				s.ids[w] = s.ids[i]
			}
		}
	}
	if len(s.keys) > 0 {
		s.keys = s.keys[:w+1]
		s.bw = s.bw[:w+1]
		if withIDs {
			s.ids = s.ids[:w+1]
		}
	}
	s.sorted = true
}

// verifySorted is the O(n) invariant check behind DebugInvariants,
// catching callers that mutated the columns behind the flag's back.
func (s *FlowSnapshot) verifySorted() bool {
	for i := 1; i < len(s.keys); i++ {
		if ComparePrefix(s.keys[i-1], s.keys[i]) >= 0 {
			return false
		}
	}
	return true
}

type snapshotSorter FlowSnapshot

func (s *snapshotSorter) Len() int { return len(s.keys) }
func (s *snapshotSorter) Less(i, j int) bool {
	return ComparePrefix(s.keys[i], s.keys[j]) < 0
}
func (s *snapshotSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.bw[i], s.bw[j] = s.bw[j], s.bw[i]
	if len(s.ids) == len(s.keys) {
		s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	}
}

// Lookup binary-searches the prefix column and returns the flow's index.
// The snapshot must be sorted.
func (s *FlowSnapshot) Lookup(p netip.Prefix) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool {
		return ComparePrefix(s.keys[i], p) >= 0
	})
	if i < len(s.keys) && s.keys[i] == p {
		return i, true
	}
	return i, false
}

// SnapshotFromMap fills dst (allocating when nil) from a flow->bandwidth
// map and sorts it — the bridge for callers that still assemble
// intervals as maps (tests, ad-hoc tooling). Hot paths should build
// snapshots directly in sorted order instead.
func SnapshotFromMap(m map[netip.Prefix]float64, dst *FlowSnapshot) *FlowSnapshot {
	if dst == nil {
		dst = NewFlowSnapshot(len(m))
	}
	dst.Reset()
	for p, bw := range m {
		dst.Append(p, bw)
	}
	dst.Sort()
	return dst
}

// ElephantSet is an interval's elephant membership: an immutable set of
// flow prefixes sorted by ComparePrefix. Unlike the snapshot it owns its
// storage, so results remain valid after the producing snapshot is
// reused for the next interval.
type ElephantSet struct {
	flows []netip.Prefix
}

// NewElephantSet builds a set from arbitrary prefixes (sorted and
// deduplicated). Mostly useful in tests; Pipeline builds sets from
// classifier verdicts directly.
func NewElephantSet(flows ...netip.Prefix) ElephantSet {
	if len(flows) == 0 {
		return ElephantSet{}
	}
	fs := make([]netip.Prefix, len(flows))
	copy(fs, flows)
	slices.SortFunc(fs, ComparePrefix)
	out := fs[:1]
	for _, p := range fs[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return ElephantSet{flows: out}
}

// Len reports the set size.
func (e ElephantSet) Len() int { return len(e.flows) }

// Contains reports membership by binary search.
func (e ElephantSet) Contains(p netip.Prefix) bool {
	i := sort.Search(len(e.flows), func(i int) bool {
		return ComparePrefix(e.flows[i], p) >= 0
	})
	return i < len(e.flows) && e.flows[i] == p
}

// Flows returns the members in ComparePrefix order. Shared storage; do
// not modify.
func (e ElephantSet) Flows() []netip.Prefix { return e.flows }

// Equal reports whether two sets have identical membership.
func (e ElephantSet) Equal(o ElephantSet) bool {
	if len(e.flows) != len(o.flows) {
		return false
	}
	for i := range e.flows {
		if e.flows[i] != o.flows[i] {
			return false
		}
	}
	return true
}

// Jaccard returns the Jaccard similarity of two sets (1 for two empty
// sets), the membership-stability measure used throughout the
// evaluation.
func (e ElephantSet) Jaccard(o ElephantSet) float64 {
	inter := 0
	i, j := 0, 0
	for i < len(e.flows) && j < len(o.flows) {
		switch c := ComparePrefix(e.flows[i], o.flows[j]); {
		case c == 0:
			inter++
			i++
			j++
		case c < 0:
			i++
		default:
			j++
		}
	}
	union := len(e.flows) + len(o.flows) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// prefixArena amortizes ElephantSet storage across intervals: results
// own their flow slices (they outlive the producing snapshot), so every
// classified interval historically paid one allocation for its set.
// The arena instead carves owned, never-reused regions out of
// append-only chunks — full-slice expressions cap each region so no
// later grab can touch it — cutting the steady-state classify path
// below one allocation per interval while preserving ElephantSet's
// immutability contract.
type prefixArena struct {
	buf []netip.Prefix
}

// arenaChunk is the minimum chunk size in prefixes (~64 KiB a chunk).
const arenaChunk = 2048

// grab returns an empty slice with capacity exactly n: appends up to n
// never reallocate and the region never aliases another grab. A fresh
// chunk is sized at several times the triggering request, so even
// elephant sets comparable to the chunk minimum amortize to well under
// one allocation per interval.
func (a *prefixArena) grab(n int) []netip.Prefix {
	if cap(a.buf)-len(a.buf) < n {
		size := arenaChunk
		if n > size/8 {
			size = n * 8
		}
		a.buf = make([]netip.Prefix, 0, size)
	}
	lo := len(a.buf)
	a.buf = a.buf[:lo+n]
	return a.buf[lo : lo : lo+n]
}

// mergeElephants combines a verdict's snapshot indices (ascending) and
// off-snapshot flows (sorted) into an owning ElephantSet.
func mergeElephants(snap *FlowSnapshot, v Verdict) ElephantSet {
	return mergeElephantsArena(snap, v, nil)
}

// mergeElephantsArena is mergeElephants drawing the set's storage from
// an arena when one is supplied (the pipeline's steady-state path).
func mergeElephantsArena(snap *FlowSnapshot, v Verdict, a *prefixArena) ElephantSet {
	n := len(v.Indices) + len(v.Offline)
	if n == 0 {
		return ElephantSet{}
	}
	var flows []netip.Prefix
	if a != nil {
		flows = a.grab(n)
	} else {
		flows = make([]netip.Prefix, 0, n)
	}
	i, j := 0, 0
	for i < len(v.Indices) && j < len(v.Offline) {
		p := snap.Key(v.Indices[i])
		if ComparePrefix(p, v.Offline[j]) < 0 {
			flows = append(flows, p)
			i++
		} else {
			flows = append(flows, v.Offline[j])
			j++
		}
	}
	for ; i < len(v.Indices); i++ {
		flows = append(flows, snap.Key(v.Indices[i]))
	}
	flows = append(flows, v.Offline[j:]...)
	return ElephantSet{flows: flows}
}
