package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestConstantLoadValidation(t *testing.T) {
	for _, beta := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewConstantLoadDetector(beta); err == nil {
			t.Errorf("beta=%v accepted", beta)
		}
	}
	d, err := NewConstantLoadDetector(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "0.80-constant-load" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestConstantLoadEmptyAndZero(t *testing.T) {
	d, _ := NewConstantLoadDetector(0.8)
	if _, err := d.DetectThreshold(nil); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := d.DetectThreshold([]float64{0, 0}); err == nil {
		t.Error("zero traffic accepted")
	}
}

// TestConstantLoadSemantics verifies the paper's definition: the flows
// strictly exceeding theta account for at least the target fraction of
// total traffic, and removing the smallest of them drops below it.
func TestConstantLoadSemantics(t *testing.T) {
	d, _ := NewConstantLoadDetector(0.8)
	bws := []float64{100, 50, 30, 10, 5, 3, 1, 1}
	theta, err := d.DetectThreshold(append([]float64(nil), bws...))
	if err != nil {
		t.Fatal(err)
	}
	var total, above float64
	var aboveSet []float64
	for _, b := range bws {
		total += b
		if b > theta {
			above += b
			aboveSet = append(aboveSet, b)
		}
	}
	if above < 0.8*total {
		t.Errorf("flows above theta=%v carry %v < 80%% of %v", theta, above, total)
	}
	// Minimality: dropping the smallest elephant must fall below target.
	sort.Float64s(aboveSet)
	if len(aboveSet) > 0 && above-aboveSet[0] >= 0.8*total {
		t.Errorf("theta=%v not minimal: removing %v still meets target", theta, aboveSet[0])
	}
}

func TestConstantLoadSingleFlow(t *testing.T) {
	d, _ := NewConstantLoadDetector(0.8)
	theta, err := d.DetectThreshold([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if theta >= 42 {
		t.Errorf("theta = %v; the only flow must be classifiable as elephant", theta)
	}
}

func TestConstantLoadAllEqual(t *testing.T) {
	d, _ := NewConstantLoadDetector(0.5)
	bws := []float64{10, 10, 10, 10}
	theta, err := d.DetectThreshold(bws)
	if err != nil {
		t.Fatal(err)
	}
	// Two flows carry 50%; theta must be the third flow's bandwidth (10),
	// which leaves... nothing strictly above 10. Equal-bandwidth ties are
	// inherently unsplittable; accept theta <= 10.
	if theta > 10 {
		t.Errorf("theta = %v > max bandwidth", theta)
	}
}

// TestConstantLoadProperty: for random positive inputs, the elephants
// (strictly above theta) always carry >= beta of the traffic.
func TestConstantLoadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 200; trial++ {
		beta := 0.1 + 0.8*rng.Float64()
		d, _ := NewConstantLoadDetector(beta)
		n := 1 + rng.Intn(200)
		bws := make([]float64, n)
		var total float64
		for i := range bws {
			bws[i] = math.Exp(rng.NormFloat64() * 2)
			total += bws[i]
		}
		theta, err := d.DetectThreshold(append([]float64(nil), bws...))
		if err != nil {
			t.Fatal(err)
		}
		var above float64
		for _, b := range bws {
			if b > theta {
				above += b
			}
		}
		// Ties can make the strict-exceed set smaller; tolerate only the
		// tie mass at theta itself.
		var tieMass float64
		for _, b := range bws {
			if b == theta {
				tieMass += b
			}
		}
		if above+tieMass < beta*total-1e-9 {
			t.Fatalf("trial %d: beta=%v theta=%v above=%v total=%v", trial, beta, theta, above, total)
		}
	}
}

func TestConstantLoadSortsDescending(t *testing.T) {
	// The detector documents that it may reorder its input.
	d, _ := NewConstantLoadDetector(0.8)
	bws := []float64{1, 100, 50}
	if _, err := d.DetectThreshold(bws); err != nil {
		t.Fatal(err)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(bws))) {
		t.Log("input reordering is allowed; this documents the behaviour")
	}
}

func TestAestDetectorName(t *testing.T) {
	if NewAestDetector().Name() != "aest" {
		t.Error("wrong name")
	}
}

func TestAestDetectorEmpty(t *testing.T) {
	if _, err := NewAestDetector().DetectThreshold(nil); err == nil {
		t.Error("empty interval accepted")
	}
}

// TestAestDetectorHeavyTail: on a clear body+tail mixture, the detector
// must place the threshold above the body median.
func TestAestDetectorHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	bws := make([]float64, 0, 8000)
	for i := 0; i < 7600; i++ {
		bws = append(bws, math.Exp(rng.NormFloat64()))
	}
	for i := 0; i < 400; i++ {
		u := rng.Float64()
		bws = append(bws, math.Exp(2.5)*math.Pow(u, -1/1.4))
	}
	d := NewAestDetector()
	theta, err := d.DetectThreshold(bws)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), bws...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if theta <= median {
		t.Errorf("theta = %v at or below the median %v", theta, median)
	}
	if d.Detections+d.Fallbacks != 1 {
		t.Errorf("counters: det=%d fb=%d", d.Detections, d.Fallbacks)
	}
}

// TestAestDetectorFallback: small light-tailed samples must fall back to
// the quantile threshold rather than fail.
func TestAestDetectorFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bws := make([]float64, 100)
	for i := range bws {
		bws[i] = 1 + rng.Float64()
	}
	d := NewAestDetector()
	theta, err := d.DetectThreshold(bws)
	if err != nil {
		t.Fatal(err)
	}
	if d.Fallbacks != 1 || d.Detections != 0 {
		t.Errorf("counters: det=%d fb=%d, want fallback", d.Detections, d.Fallbacks)
	}
	// The 0.95 quantile of a sample in (1,2) lies in (1,2).
	if theta < 1 || theta > 2 {
		t.Errorf("fallback theta = %v outside sample range", theta)
	}
}

func TestAestDetectorCustomFallbackQuantile(t *testing.T) {
	d := NewAestDetector()
	d.FallbackQuantile = 0.5
	bws := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	theta, err := d.DetectThreshold(bws)
	if err != nil {
		t.Fatal(err)
	}
	if theta > 9 {
		t.Errorf("theta = %v, expected near the median with FallbackQuantile 0.5", theta)
	}
}

// TestDetectorsQuickInvariants: no detector may return a negative or NaN
// threshold on positive input.
func TestDetectorsQuickInvariants(t *testing.T) {
	load, _ := NewConstantLoadDetector(0.8)
	aest := NewAestDetector()
	prop := func(raw []float64) bool {
		bws := make([]float64, 0, len(raw))
		for _, x := range raw {
			if v := math.Abs(x); v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				bws = append(bws, math.Mod(v, 1e12)+1e-3)
			}
		}
		if len(bws) == 0 {
			return true
		}
		for _, det := range []Detector{load, aest} {
			theta, err := det.DetectThreshold(append([]float64(nil), bws...))
			if err != nil {
				return false
			}
			if math.IsNaN(theta) || theta < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSortedDetectorEquivalence is the fast-path equivalence property:
// for both detectors, DetectThresholdSorted fed the snapshot's
// (original, sorted) view pair must return bitwise the same threshold
// as DetectThreshold on the original column, across heavy-tailed and
// light-tailed random samples of varied size. The sorted path is what
// every pipeline runs in production; the unsorted path is the spec.
func TestSortedDetectorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 20 + rng.Intn(800)
		bws := make([]float64, n)
		heavy := trial%2 == 0
		for i := range bws {
			bws[i] = math.Exp(rng.NormFloat64())
			if heavy && rng.Intn(10) == 0 {
				bws[i] *= 1e4
			}
		}
		sorted := append([]float64(nil), bws...)
		sort.Float64s(sorted)

		load, err := NewConstantLoadDetector(0.8)
		if err != nil {
			t.Fatal(err)
		}
		// Separate instances per path: the aest detector counts its
		// detections and fallbacks.
		for name, mk := range map[string]func() interface {
			Detector
			SortedDetector
		}{
			"constant-load": func() interface {
				Detector
				SortedDetector
			} {
				return load
			},
			"aest": func() interface {
				Detector
				SortedDetector
			} {
				return NewAestDetector()
			},
		} {
			det := mk()
			want, err1 := det.DetectThreshold(append([]float64(nil), bws...))
			got, err2 := mk().DetectThresholdSorted(bws, sorted)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d %s: err %v vs sorted err %v", trial, name, err1, err2)
			}
			if got != want {
				t.Fatalf("trial %d %s: sorted path %v, unsorted %v", trial, name, got, want)
			}
		}
	}
}
