package pcap

// pcapng support: the block-structured successor format (RFC draft
// "pcapng") that modern capture tooling writes by default. The reader
// handles Section Header, Interface Description and Enhanced Packet
// blocks — enough to ingest any normal single-section capture — and the
// writer emits minimal, spec-conformant files. Both byte orders are
// supported; per-interface timestamp resolution honours the if_tsresol
// option.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// pcapng block type codes.
const (
	blockTypeSectionHeader  uint32 = 0x0A0D0D0A
	blockTypeInterfaceDesc  uint32 = 0x00000001
	blockTypeEnhancedPacket uint32 = 0x00000006
	byteOrderMagic          uint32 = 0x1A2B3C4D
)

// option codes used by the reader/writer.
const (
	optEndOfOpt uint16 = 0
	optTsResol  uint16 = 9 // if_tsresol
)

// ngInterface is one interface's decoding state.
type ngInterface struct {
	linkType uint32
	snapLen  uint32
	// ticksPerSecond converts timestamp units to wall time.
	ticksPerSecond uint64
}

// NgReader streams packets from a pcapng capture.
type NgReader struct {
	r      io.Reader
	order  binary.ByteOrder
	ifaces []ngInterface
	buf    []byte
}

// ErrNotPcapng reports that the stream does not begin with a pcapng
// section header (callers may fall back to the classic reader).
var ErrNotPcapng = errors.New("pcap: not a pcapng capture")

// NewNgReader parses the leading Section Header Block.
func NewNgReader(r io.Reader) (*NgReader, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading pcapng section header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != blockTypeSectionHeader {
		return nil, ErrNotPcapng
	}
	var order binary.ByteOrder
	switch {
	case binary.LittleEndian.Uint32(head[8:12]) == byteOrderMagic:
		order = binary.LittleEndian
	case binary.BigEndian.Uint32(head[8:12]) == byteOrderMagic:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: bad byte-order magic", ErrCorrupt)
	}
	total := order.Uint32(head[4:8])
	if total < 28 || total > 1<<20 || total%4 != 0 {
		return nil, fmt.Errorf("%w: section header length %d", ErrCorrupt, total)
	}
	// Skip the rest of the SHB (version, section length, options,
	// trailing length).
	rest := make([]byte, total-12)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, fmt.Errorf("pcap: reading section header body: %w", err)
	}
	major := order.Uint16(rest[0:2])
	if major != 1 {
		return nil, fmt.Errorf("%w: unsupported pcapng major version %d", ErrCorrupt, major)
	}
	return &NgReader{r: r, order: order}, nil
}

// Interfaces reports how many interface description blocks have been
// seen so far.
func (r *NgReader) Interfaces() int { return len(r.ifaces) }

// ReadPacket returns the next enhanced packet. Interface description
// blocks are consumed transparently; unknown block types are skipped.
// io.EOF marks a clean end of file.
func (r *NgReader) ReadPacket() (CaptureInfo, []byte, error) {
	var ci CaptureInfo
	for {
		var head [8]byte
		if _, err := io.ReadFull(r.r, head[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return ci, nil, io.EOF
			}
			return ci, nil, fmt.Errorf("pcap: reading block header: %w", err)
		}
		btype := r.order.Uint32(head[0:4])
		total := r.order.Uint32(head[4:8])
		if total < 12 || total > 1<<24 || total%4 != 0 {
			return ci, nil, fmt.Errorf("%w: block length %d", ErrCorrupt, total)
		}
		bodyLen := int(total) - 12
		if cap(r.buf) < bodyLen {
			r.buf = make([]byte, bodyLen)
		}
		body := r.buf[:bodyLen]
		if _, err := io.ReadFull(r.r, body); err != nil {
			return ci, nil, fmt.Errorf("pcap: reading block body: %w", err)
		}
		var trailer [4]byte
		if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
			return ci, nil, fmt.Errorf("pcap: reading block trailer: %w", err)
		}
		if r.order.Uint32(trailer[:]) != total {
			return ci, nil, fmt.Errorf("%w: trailer length mismatch", ErrCorrupt)
		}

		switch btype {
		case blockTypeInterfaceDesc:
			if err := r.addInterface(body); err != nil {
				return ci, nil, err
			}
		case blockTypeEnhancedPacket:
			return r.decodeEPB(body)
		case blockTypeSectionHeader:
			return ci, nil, fmt.Errorf("%w: multi-section captures are not supported", ErrCorrupt)
		default:
			// Skip unknown blocks (name resolution, statistics, ...).
		}
	}
}

func (r *NgReader) addInterface(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("%w: interface description too short", ErrCorrupt)
	}
	iface := ngInterface{
		linkType:       uint32(r.order.Uint16(body[0:2])),
		snapLen:        r.order.Uint32(body[4:8]),
		ticksPerSecond: 1_000_000, // spec default: microseconds
	}
	// Parse options for if_tsresol.
	opts := body[8:]
	for len(opts) >= 4 {
		code := r.order.Uint16(opts[0:2])
		olen := int(r.order.Uint16(opts[2:4]))
		opts = opts[4:]
		if olen > len(opts) {
			return fmt.Errorf("%w: interface option overruns block", ErrCorrupt)
		}
		if code == optEndOfOpt {
			break
		}
		if code == optTsResol && olen >= 1 {
			v := opts[0]
			if v&0x80 != 0 {
				iface.ticksPerSecond = 1 << (v & 0x7F)
			} else {
				iface.ticksPerSecond = uint64(math.Pow10(int(v)))
			}
			if iface.ticksPerSecond == 0 {
				return fmt.Errorf("%w: zero timestamp resolution", ErrCorrupt)
			}
		}
		// Advance past the value plus padding to 4 bytes.
		adv := (olen + 3) &^ 3
		if adv > len(opts) {
			adv = len(opts)
		}
		opts = opts[adv:]
	}
	r.ifaces = append(r.ifaces, iface)
	return nil
}

func (r *NgReader) decodeEPB(body []byte) (CaptureInfo, []byte, error) {
	var ci CaptureInfo
	if len(body) < 20 {
		return ci, nil, fmt.Errorf("%w: enhanced packet block too short", ErrCorrupt)
	}
	ifID := r.order.Uint32(body[0:4])
	if int(ifID) >= len(r.ifaces) {
		return ci, nil, fmt.Errorf("%w: packet references unknown interface %d", ErrCorrupt, ifID)
	}
	iface := r.ifaces[ifID]
	tsHigh := r.order.Uint32(body[4:8])
	tsLow := r.order.Uint32(body[8:12])
	capLen := r.order.Uint32(body[12:16])
	wireLen := r.order.Uint32(body[16:20])
	if capLen > MaxSnapLen || int(capLen) > len(body)-20 {
		return ci, nil, fmt.Errorf("%w: captured length %d", ErrCorrupt, capLen)
	}
	if wireLen < capLen {
		return ci, nil, fmt.Errorf("%w: wire length %d below capture %d", ErrCorrupt, wireLen, capLen)
	}
	ticks := uint64(tsHigh)<<32 | uint64(tsLow)
	secs := ticks / iface.ticksPerSecond
	frac := ticks % iface.ticksPerSecond
	nanos := frac * uint64(time.Second) / iface.ticksPerSecond
	ci.Timestamp = time.Unix(int64(secs), int64(nanos)).UTC()
	ci.CaptureLength = int(capLen)
	ci.Length = int(wireLen)
	ci.InterfaceIndex = int(ifID)
	return ci, body[20 : 20+capLen], nil
}

// NgWriter emits a minimal single-interface pcapng capture with
// microsecond timestamps.
type NgWriter struct {
	w           io.Writer
	hdr         Header
	wroteHeader bool
	scratch     []byte
}

// NewNgWriter returns a writer with the given interface parameters
// (zero values default like NewWriter).
func NewNgWriter(w io.Writer, hdr Header) *NgWriter {
	if hdr.SnapLen == 0 {
		hdr.SnapLen = 65535
	}
	if hdr.LinkType == 0 {
		hdr.LinkType = LinkTypeEthernet
	}
	return &NgWriter{w: w, hdr: hdr}
}

// WriteHeader writes the Section Header and Interface Description
// blocks. It is idempotent and invoked lazily by WritePacket.
func (w *NgWriter) WriteHeader() error {
	if w.wroteHeader {
		return nil
	}
	// SHB: type, len=28, magic, version 1.0, section length -1, len.
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:4], blockTypeSectionHeader)
	binary.LittleEndian.PutUint32(shb[4:8], 28)
	binary.LittleEndian.PutUint32(shb[8:12], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:14], 1)
	binary.LittleEndian.PutUint16(shb[14:16], 0)
	binary.LittleEndian.PutUint64(shb[16:24], math.MaxUint64) // unknown section length
	binary.LittleEndian.PutUint32(shb[24:28], 28)
	if _, err := w.w.Write(shb); err != nil {
		return fmt.Errorf("pcap: writing section header: %w", err)
	}
	// IDB: type, len=20, linktype, reserved, snaplen, len. No options:
	// microsecond resolution is the spec default.
	idb := make([]byte, 20)
	binary.LittleEndian.PutUint32(idb[0:4], blockTypeInterfaceDesc)
	binary.LittleEndian.PutUint32(idb[4:8], 20)
	binary.LittleEndian.PutUint16(idb[8:10], uint16(w.hdr.LinkType))
	binary.LittleEndian.PutUint32(idb[12:16], w.hdr.SnapLen)
	binary.LittleEndian.PutUint32(idb[16:20], 20)
	if _, err := w.w.Write(idb); err != nil {
		return fmt.Errorf("pcap: writing interface description: %w", err)
	}
	w.wroteHeader = true
	return nil
}

// WritePacket appends one Enhanced Packet Block.
func (w *NgWriter) WritePacket(ci CaptureInfo, data []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	if ci.CaptureLength != len(data) {
		return fmt.Errorf("pcap: capture length %d != data length %d", ci.CaptureLength, len(data))
	}
	if ci.Length < ci.CaptureLength {
		return fmt.Errorf("pcap: wire length %d < capture length %d", ci.Length, ci.CaptureLength)
	}
	pad := (4 - len(data)%4) % 4
	total := 32 + len(data) + pad
	if cap(w.scratch) < total {
		w.scratch = make([]byte, total)
	}
	b := w.scratch[:total]
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint32(b[0:4], blockTypeEnhancedPacket)
	binary.LittleEndian.PutUint32(b[4:8], uint32(total))
	binary.LittleEndian.PutUint32(b[8:12], 0) // interface 0
	micros := uint64(ci.Timestamp.Unix())*1_000_000 + uint64(ci.Timestamp.Nanosecond())/1000
	binary.LittleEndian.PutUint32(b[12:16], uint32(micros>>32))
	binary.LittleEndian.PutUint32(b[16:20], uint32(micros))
	binary.LittleEndian.PutUint32(b[20:24], uint32(ci.CaptureLength))
	binary.LittleEndian.PutUint32(b[24:28], uint32(ci.Length))
	copy(b[28:], data)
	binary.LittleEndian.PutUint32(b[total-4:], uint32(total))
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("pcap: writing packet block: %w", err)
	}
	return nil
}
