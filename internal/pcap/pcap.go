// Package pcap reads and writes capture files in the classic libpcap
// format. It supports both byte orders and both microsecond and nanosecond
// timestamp resolutions, and streams packets without loading the file into
// memory.
//
// The reproduction uses it so that synthetic backbone traces travel
// through a real on-disk capture format, exactly as the Sprint monitoring
// infrastructure's traces did.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers identifying pcap files.
const (
	MagicMicroseconds        uint32 = 0xA1B2C3D4
	MagicNanoseconds         uint32 = 0xA1B23C4D
	magicMicrosecondsSwapped uint32 = 0xD4C3B2A1
	magicNanosecondsSwapped  uint32 = 0x4D3CB2A1
)

// LinkType values (subset).
const (
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101
)

const (
	fileHeaderLen   = 24
	packetHeaderLen = 16
	// MaxSnapLen bounds per-packet capture length to protect readers
	// from corrupt length fields.
	MaxSnapLen = 262144
)

// ErrCorrupt reports a structurally invalid capture file.
var ErrCorrupt = errors.New("pcap: corrupt capture file")

// CaptureInfo describes one captured packet.
type CaptureInfo struct {
	// Timestamp is the capture time.
	Timestamp time.Time
	// CaptureLength is the number of bytes recorded in the file.
	CaptureLength int
	// Length is the original wire length; always >= CaptureLength.
	Length int
	// InterfaceIndex identifies the capturing interface for formats
	// that record it (pcapng); zero otherwise.
	InterfaceIndex int
}

// PacketReader is the read side shared by the classic and pcapng
// readers.
type PacketReader interface {
	// ReadPacket returns the next packet; the data slice may be reused
	// by subsequent calls. io.EOF marks a clean end of file.
	ReadPacket() (CaptureInfo, []byte, error)
}

// Header is the global file header.
type Header struct {
	SnapLen  uint32
	LinkType uint32
	// Nanosecond reports nanosecond timestamp resolution.
	Nanosecond bool
}

// Writer emits a pcap file to an io.Writer.
type Writer struct {
	w           io.Writer
	hdr         Header
	scratch     [packetHeaderLen]byte
	wroteHeader bool
}

// NewWriter returns a Writer that will emit packets with the given
// header parameters. The file header is written lazily on first use or
// by an explicit WriteHeader call.
func NewWriter(w io.Writer, hdr Header) *Writer {
	if hdr.SnapLen == 0 {
		hdr.SnapLen = 65535
	}
	if hdr.LinkType == 0 {
		hdr.LinkType = LinkTypeEthernet
	}
	return &Writer{w: w, hdr: hdr}
}

// WriteHeader writes the 24-byte global header. It is idempotent.
func (w *Writer) WriteHeader() error {
	if w.wroteHeader {
		return nil
	}
	var buf [fileHeaderLen]byte
	magic := MagicMicroseconds
	if w.hdr.Nanosecond {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], 2) // version major
	binary.LittleEndian.PutUint16(buf[6:8], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(buf[16:20], w.hdr.SnapLen)
	binary.LittleEndian.PutUint32(buf[20:24], w.hdr.LinkType)
	if _, err := w.w.Write(buf[:]); err != nil {
		return fmt.Errorf("pcap: writing file header: %w", err)
	}
	w.wroteHeader = true
	return nil
}

// WritePacket appends one packet record. ci.CaptureLength must equal
// len(data); ci.Length may exceed it for truncated captures.
func (w *Writer) WritePacket(ci CaptureInfo, data []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	if ci.CaptureLength != len(data) {
		return fmt.Errorf("pcap: capture length %d != data length %d", ci.CaptureLength, len(data))
	}
	if ci.Length < ci.CaptureLength {
		return fmt.Errorf("pcap: wire length %d < capture length %d", ci.Length, ci.CaptureLength)
	}
	secs := ci.Timestamp.Unix()
	var frac int64
	if w.hdr.Nanosecond {
		frac = int64(ci.Timestamp.Nanosecond())
	} else {
		frac = int64(ci.Timestamp.Nanosecond()) / 1000
	}
	binary.LittleEndian.PutUint32(w.scratch[0:4], uint32(secs))
	binary.LittleEndian.PutUint32(w.scratch[4:8], uint32(frac))
	binary.LittleEndian.PutUint32(w.scratch[8:12], uint32(ci.CaptureLength))
	binary.LittleEndian.PutUint32(w.scratch[12:16], uint32(ci.Length))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return fmt.Errorf("pcap: writing packet header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing packet data: %w", err)
	}
	return nil
}

// Reader streams packets from a pcap file.
type Reader struct {
	r       io.Reader
	hdr     Header
	order   binary.ByteOrder
	buf     []byte
	scratch [packetHeaderLen]byte
}

// NewReader parses the global header and returns a Reader positioned at
// the first packet record.
func NewReader(r io.Reader) (*Reader, error) {
	var buf [fileHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(buf[0:4])
	var order binary.ByteOrder
	var nanos bool
	switch magic {
	case MagicMicroseconds:
		order = binary.LittleEndian
	case MagicNanoseconds:
		order, nanos = binary.LittleEndian, true
	case magicMicrosecondsSwapped:
		order = binary.BigEndian
	case magicNanosecondsSwapped:
		order, nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: unknown magic %#08x", ErrCorrupt, magic)
	}
	major := order.Uint16(buf[4:6])
	if major != 2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, major)
	}
	hdr := Header{
		SnapLen:    order.Uint32(buf[16:20]),
		LinkType:   order.Uint32(buf[20:24]),
		Nanosecond: nanos,
	}
	return &Reader{r: r, hdr: hdr, order: order}, nil
}

// Header returns the parsed global header.
func (r *Reader) Header() Header { return r.hdr }

// ReadPacket returns the next packet. The returned data slice is reused by
// subsequent calls; copy it to retain. io.EOF marks a clean end of file;
// io.ErrUnexpectedEOF a file truncated mid-record.
func (r *Reader) ReadPacket() (CaptureInfo, []byte, error) {
	var ci CaptureInfo
	if _, err := io.ReadFull(r.r, r.scratch[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return ci, nil, io.EOF
		}
		return ci, nil, fmt.Errorf("pcap: reading packet header: %w", err)
	}
	secs := r.order.Uint32(r.scratch[0:4])
	frac := r.order.Uint32(r.scratch[4:8])
	capLen := r.order.Uint32(r.scratch[8:12])
	wireLen := r.order.Uint32(r.scratch[12:16])
	if capLen > MaxSnapLen {
		return ci, nil, fmt.Errorf("%w: capture length %d exceeds limit", ErrCorrupt, capLen)
	}
	if wireLen < capLen {
		return ci, nil, fmt.Errorf("%w: wire length %d below capture length %d", ErrCorrupt, wireLen, capLen)
	}
	nanos := int64(frac)
	if !r.hdr.Nanosecond {
		nanos *= 1000
	}
	ci.Timestamp = time.Unix(int64(secs), nanos).UTC()
	ci.CaptureLength = int(capLen)
	ci.Length = int(wireLen)
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	data := r.buf[:capLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return ci, nil, fmt.Errorf("pcap: reading packet data: %w", err)
	}
	return ci, data, nil
}
