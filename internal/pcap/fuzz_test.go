package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzReader feeds arbitrary bytes to the capture reader: it must never
// panic or allocate absurd buffers, and every successfully read packet
// must respect the header's own invariants.
func FuzzReader(f *testing.F) {
	// Seed: a valid two-packet capture and mutations of it.
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	ts := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	_ = w.WritePacket(CaptureInfo{Timestamp: ts, CaptureLength: 3, Length: 3}, []byte{1, 2, 3})
	_ = w.WritePacket(CaptureInfo{Timestamp: ts, CaptureLength: 0, Length: 0}, nil)
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:30]...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ { // bound work per input
			ci, pkt, err := r.ReadPacket()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(pkt) != ci.CaptureLength {
				t.Fatalf("data length %d != capture length %d", len(pkt), ci.CaptureLength)
			}
			if ci.Length < ci.CaptureLength {
				t.Fatalf("wire %d < capture %d accepted", ci.Length, ci.CaptureLength)
			}
			if ci.CaptureLength > MaxSnapLen {
				t.Fatalf("capture length %d above cap", ci.CaptureLength)
			}
		}
	})
}
