package pcap

import (
	"bufio"
	"fmt"
	"io"
)

// OpenReader sniffs the capture format — classic libpcap (either byte
// order, µs or ns) or pcapng — and returns the appropriate reader plus
// the link type of the capture's (first) interface.
func OpenReader(r io.Reader) (PacketReader, uint32, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, 0, fmt.Errorf("pcap: sniffing capture format: %w", err)
	}
	le := uint32(magic[0]) | uint32(magic[1])<<8 | uint32(magic[2])<<16 | uint32(magic[3])<<24
	switch le {
	case MagicMicroseconds, MagicNanoseconds, magicMicrosecondsSwapped, magicNanosecondsSwapped:
		cr, err := NewReader(br)
		if err != nil {
			return nil, 0, err
		}
		return cr, cr.Header().LinkType, nil
	case blockTypeSectionHeader:
		nr, err := NewNgReader(br)
		if err != nil {
			return nil, 0, err
		}
		// The link type lives in the first Interface Description Block;
		// peek it by reading ahead until the first packet would need it.
		// Simplest robust approach: require the caller to check per
		// packet; but every normal capture has the IDB before packets,
		// so read blocks until one interface is known or a packet
		// arrives.
		lt, err := nr.peekLinkType()
		if err != nil {
			return nil, 0, err
		}
		return nr, lt, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown magic %#08x", ErrCorrupt, le)
	}
}

// peekLinkType ensures the first interface description has been parsed
// and returns its link type. pcapng files carry the IDB before any
// packet, so this consumes no packets.
func (r *NgReader) peekLinkType() (uint32, error) {
	if len(r.ifaces) > 0 {
		return r.ifaces[0].linkType, nil
	}
	// Read blocks until an interface appears. Packet blocks before any
	// IDB are invalid per spec; ReadPacket will error on them.
	var head [8]byte
	if _, err := io.ReadFull(r.r, head[:]); err != nil {
		return 0, fmt.Errorf("pcap: reading first block: %w", err)
	}
	btype := r.order.Uint32(head[0:4])
	total := r.order.Uint32(head[4:8])
	if btype != blockTypeInterfaceDesc {
		return 0, fmt.Errorf("%w: first block after section header is %#x, want interface description", ErrCorrupt, btype)
	}
	if total < 12 || total > 1<<20 || total%4 != 0 {
		return 0, fmt.Errorf("%w: block length %d", ErrCorrupt, total)
	}
	body := make([]byte, total-12)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return 0, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		return 0, err
	}
	if r.order.Uint32(trailer[:]) != total {
		return 0, fmt.Errorf("%w: trailer mismatch", ErrCorrupt)
	}
	if err := r.addInterface(body); err != nil {
		return 0, err
	}
	return r.ifaces[0].linkType, nil
}
