package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func writeNgCapture(t *testing.T, packets [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewNgWriter(&buf, Header{})
	for i, p := range packets {
		ci := CaptureInfo{
			Timestamp:     testTime.Add(time.Duration(i) * time.Second),
			CaptureLength: len(p),
			Length:        len(p),
		}
		if err := w.WritePacket(ci, p); err != nil {
			t.Fatalf("WritePacket(%d): %v", i, err)
		}
	}
	return buf.Bytes()
}

func TestNgRoundtrip(t *testing.T) {
	packets := [][]byte{{1, 2, 3}, {4, 5, 6, 7, 8}, {}}
	raw := writeNgCapture(t, packets)
	r, err := NewNgReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range packets {
		ci, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data = %v, want %v", i, data, want)
		}
		wantTS := testTime.Add(time.Duration(i) * time.Second).Truncate(time.Microsecond)
		if !ci.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts = %v, want %v", i, ci.Timestamp, wantTS)
		}
		if ci.InterfaceIndex != 0 {
			t.Errorf("packet %d iface = %d", i, ci.InterfaceIndex)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("after last packet: %v, want EOF", err)
	}
	if r.Interfaces() != 1 {
		t.Errorf("interfaces = %d", r.Interfaces())
	}
}

func TestNgNotPcapng(t *testing.T) {
	classic := writeCapture(t, Header{}, [][]byte{{1}})
	_, err := NewNgReader(bytes.NewReader(classic))
	if !errors.Is(err, ErrNotPcapng) {
		t.Errorf("err = %v, want ErrNotPcapng", err)
	}
}

func TestNgCorruptTrailer(t *testing.T) {
	raw := writeNgCapture(t, [][]byte{{1, 2, 3}})
	// Corrupt the last 4 bytes (the EPB trailer length).
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], 9999)
	r, err := NewNgReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestNgUnknownBlocksSkipped(t *testing.T) {
	var buf bytes.Buffer
	w := NewNgWriter(&buf, Header{})
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	// Inject a Name Resolution Block (type 4) with empty body.
	nrb := make([]byte, 12)
	binary.LittleEndian.PutUint32(nrb[0:4], 4)
	binary.LittleEndian.PutUint32(nrb[4:8], 12)
	binary.LittleEndian.PutUint32(nrb[8:12], 12)
	buf.Write(nrb)
	if err := w.WritePacket(CaptureInfo{Timestamp: testTime, CaptureLength: 2, Length: 2}, []byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	r, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{7, 8}) {
		t.Errorf("data = %v", data)
	}
}

func TestNgPacketBeforeInterfaceRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewNgWriter(&buf, Header{})
	if err := w.WritePacket(CaptureInfo{Timestamp: testTime, CaptureLength: 1, Length: 1}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Excise the IDB (bytes 28..48) so the EPB references interface 0
	// with no interface defined.
	mut := append(append([]byte(nil), raw[:28]...), raw[48:]...)
	r, err := NewNgReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestNgNanosecondResolutionOption(t *testing.T) {
	// Hand-build a capture whose IDB carries if_tsresol = 9 (ns).
	var buf bytes.Buffer
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:4], blockTypeSectionHeader)
	binary.LittleEndian.PutUint32(shb[4:8], 28)
	binary.LittleEndian.PutUint32(shb[8:12], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:14], 1)
	binary.LittleEndian.PutUint32(shb[24:28], 28)
	buf.Write(shb)

	idb := make([]byte, 28) // 20 fixed + 8 for the option block
	binary.LittleEndian.PutUint32(idb[0:4], blockTypeInterfaceDesc)
	binary.LittleEndian.PutUint32(idb[4:8], 28)
	binary.LittleEndian.PutUint16(idb[8:10], uint16(LinkTypeEthernet))
	binary.LittleEndian.PutUint32(idb[12:16], 65535)
	binary.LittleEndian.PutUint16(idb[16:18], optTsResol)
	binary.LittleEndian.PutUint16(idb[18:20], 1)
	idb[20] = 9 // 10^-9: nanoseconds
	binary.LittleEndian.PutUint32(idb[24:28], 28)
	buf.Write(idb)

	ts := time.Date(2001, time.July, 24, 9, 0, 0, 123456789, time.UTC)
	nanos := uint64(ts.UnixNano())
	epb := make([]byte, 36)
	binary.LittleEndian.PutUint32(epb[0:4], blockTypeEnhancedPacket)
	binary.LittleEndian.PutUint32(epb[4:8], 36)
	binary.LittleEndian.PutUint32(epb[8:12], 0)
	binary.LittleEndian.PutUint32(epb[12:16], uint32(nanos>>32))
	binary.LittleEndian.PutUint32(epb[16:20], uint32(nanos))
	binary.LittleEndian.PutUint32(epb[20:24], 4)
	binary.LittleEndian.PutUint32(epb[24:28], 4)
	copy(epb[28:32], []byte{1, 2, 3, 4})
	binary.LittleEndian.PutUint32(epb[32:36], 36)
	buf.Write(epb)

	r, err := NewNgReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ci, _, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Timestamp.Equal(ts) {
		t.Errorf("ns timestamp = %v, want %v", ci.Timestamp, ts)
	}
}

func TestOpenReaderDetectsBoth(t *testing.T) {
	classic := writeCapture(t, Header{}, [][]byte{{1, 2}})
	ng := writeNgCapture(t, [][]byte{{1, 2}})

	for name, raw := range map[string][]byte{"classic": classic, "pcapng": ng} {
		r, lt, err := OpenReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lt != LinkTypeEthernet {
			t.Errorf("%s: link type %d", name, lt)
		}
		ci, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) != 2 || ci.CaptureLength != 2 {
			t.Errorf("%s: packet %v %+v", name, data, ci)
		}
	}
	if _, _, err := OpenReader(bytes.NewReader([]byte{9, 9, 9, 9, 9})); err == nil {
		t.Error("garbage accepted")
	}
}

func TestNgWriterValidation(t *testing.T) {
	w := NewNgWriter(io.Discard, Header{})
	if err := w.WritePacket(CaptureInfo{CaptureLength: 2, Length: 2}, []byte{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := w.WritePacket(CaptureInfo{CaptureLength: 2, Length: 1}, []byte{1, 2}); err == nil {
		t.Error("wire < capture accepted")
	}
}

func TestNgPadding(t *testing.T) {
	// Packet sizes 1..5 exercise all padding cases.
	for size := 1; size <= 5; size++ {
		payload := bytes.Repeat([]byte{0xAB}, size)
		raw := writeNgCapture(t, [][]byte{payload})
		r, err := NewNgReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		_, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(data, payload) {
			t.Errorf("size %d: %v", size, data)
		}
		if _, _, err := r.ReadPacket(); err != io.EOF {
			t.Errorf("size %d: trailing garbage after padded block: %v", size, err)
		}
	}
}
