package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

var testTime = time.Date(2001, time.July, 24, 9, 0, 0, 123456000, time.UTC)

func writeCapture(t *testing.T, hdr Header, packets [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, hdr)
	for i, p := range packets {
		ci := CaptureInfo{
			Timestamp:     testTime.Add(time.Duration(i) * time.Second),
			CaptureLength: len(p),
			Length:        len(p),
		}
		if err := w.WritePacket(ci, p); err != nil {
			t.Fatalf("WritePacket(%d): %v", i, err)
		}
	}
	return buf.Bytes()
}

func TestRoundtripMicroseconds(t *testing.T) {
	packets := [][]byte{{1, 2, 3}, {4, 5, 6, 7}, {}}
	raw := writeCapture(t, Header{}, packets)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkTypeEthernet || r.Header().SnapLen != 65535 || r.Header().Nanosecond {
		t.Errorf("header = %+v", r.Header())
	}
	for i, want := range packets {
		ci, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data = %v, want %v", i, data, want)
		}
		wantTS := testTime.Add(time.Duration(i) * time.Second).Truncate(time.Microsecond)
		if !ci.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts = %v, want %v", i, ci.Timestamp, wantTS)
		}
	}
	if _, _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("after last packet: err = %v, want io.EOF", err)
	}
}

func TestRoundtripNanoseconds(t *testing.T) {
	ts := time.Date(2001, time.July, 24, 9, 0, 0, 123456789, time.UTC)
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Nanosecond: true})
	if err := w.WritePacket(CaptureInfo{Timestamp: ts, CaptureLength: 1, Length: 1}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().Nanosecond {
		t.Error("nanosecond flag lost")
	}
	ci, _, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Timestamp.Equal(ts) {
		t.Errorf("ts = %v, want %v (full ns precision)", ci.Timestamp, ts)
	}
}

func TestMicrosecondTruncation(t *testing.T) {
	ts := time.Date(2001, time.July, 24, 9, 0, 0, 123456789, time.UTC)
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	if err := w.WritePacket(CaptureInfo{Timestamp: ts, CaptureLength: 1, Length: 1}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	ci, _, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ci.Timestamp, ts.Truncate(time.Microsecond); !got.Equal(want) {
		t.Errorf("ts = %v, want %v (µs resolution)", got, want)
	}
}

func TestBigEndianCapture(t *testing.T) {
	// Hand-build a big-endian (swapped magic) capture with one packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicroseconds) // BE write of the magic reads as swapped on LE
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], uint32(testTime.Unix()))
	binary.BigEndian.PutUint32(rec[4:8], 500000) // 0.5 s in µs
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec)
	buf.Write([]byte{0xAA, 0xBB, 0xCC})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkTypeEthernet {
		t.Errorf("link type = %d", r.Header().LinkType)
	}
	ci, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0xAA, 0xBB, 0xCC}) {
		t.Errorf("data = %v", data)
	}
	want := time.Unix(testTime.Unix(), 500000000).UTC()
	if !ci.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", ci.Timestamp, want)
	}
}

func TestUnknownMagic(t *testing.T) {
	raw := make([]byte, 24)
	binary.LittleEndian.PutUint32(raw, 0xDEADBEEF)
	_, err := NewReader(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	raw := make([]byte, 24)
	binary.LittleEndian.PutUint32(raw[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(raw[4:6], 3) // major version 3
	_, err := NewReader(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestShortFileHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if err == nil {
		t.Error("3-byte file accepted")
	}
}

func TestTruncatedPacketHeader(t *testing.T) {
	raw := writeCapture(t, Header{}, [][]byte{{1, 2, 3}})
	r, err := NewReader(bytes.NewReader(raw[:24+8])) // half a record header
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadPacket()
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want a non-EOF error for mid-header truncation", err)
	}
}

func TestTruncatedPacketBody(t *testing.T) {
	raw := writeCapture(t, Header{}, [][]byte{{1, 2, 3, 4, 5}})
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadPacket()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestCorruptCaptureLength(t *testing.T) {
	raw := writeCapture(t, Header{}, [][]byte{{1}})
	// Overwrite the record's capture length with something absurd.
	binary.LittleEndian.PutUint32(raw[24+8:24+12], MaxSnapLen+1)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadPacket()
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestWireLengthBelowCaptureLength(t *testing.T) {
	raw := writeCapture(t, Header{}, [][]byte{{1, 2, 3}})
	binary.LittleEndian.PutUint32(raw[24+12:24+16], 1) // wire length 1 < capture 3
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = r.ReadPacket()
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter(io.Discard, Header{})
	if err := w.WritePacket(CaptureInfo{CaptureLength: 2, Length: 2}, []byte{1}); err == nil {
		t.Error("capture length mismatch accepted")
	}
	if err := w.WritePacket(CaptureInfo{CaptureLength: 2, Length: 1}, []byte{1, 2}); err == nil {
		t.Error("wire < capture accepted")
	}
}

func TestWriterHeaderIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Errorf("double WriteHeader produced %d bytes, want 24", buf.Len())
	}
}

func TestWriterLazyHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	if err := w.WritePacket(CaptureInfo{Timestamp: testTime, CaptureLength: 1, Length: 1}, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24+16+1 {
		t.Errorf("lazy header: file is %d bytes, want 41", buf.Len())
	}
}

func TestSnappedCapture(t *testing.T) {
	// Wire length larger than capture length is legal (snapped capture).
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{SnapLen: 4})
	if err := w.WritePacket(CaptureInfo{Timestamp: testTime, CaptureLength: 4, Length: 1500}, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	ci, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if ci.CaptureLength != 4 || ci.Length != 1500 || len(data) != 4 {
		t.Errorf("ci = %+v, len(data) = %d", ci, len(data))
	}
}

func TestReaderBufferReuse(t *testing.T) {
	raw := writeCapture(t, Header{}, [][]byte{{1, 1, 1}, {2, 2, 2}})
	r, _ := NewReader(bytes.NewReader(raw))
	_, first, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	saved := make([]byte, len(first))
	copy(saved, first)
	if _, _, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	// The documented contract: the first slice may now hold new data.
	if bytes.Equal(first, saved) {
		t.Skip("buffer not reused on this path; contract is 'may reuse'")
	}
}

func TestManyPacketsStreaming(t *testing.T) {
	const n = 10000
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	payload := bytes.Repeat([]byte{0x5A}, 60)
	for i := 0; i < n; i++ {
		ci := CaptureInfo{
			Timestamp:     testTime.Add(time.Duration(i) * time.Millisecond),
			CaptureLength: len(payload),
			Length:        len(payload),
		}
		if err := w.WritePacket(ci, payload); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, _, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Errorf("read %d packets, want %d", count, n)
	}
}
