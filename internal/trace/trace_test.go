package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
)

var traceStart = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)

func testTable(t *testing.T, routes int) *bgp.Table {
	t.Helper()
	tab, err := bgp.Generate(bgp.GenConfig{Routes: routes, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func testLink(t *testing.T, cfg LinkConfig) *Link {
	t.Helper()
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestProfilesNormalized(t *testing.T) {
	for _, p := range []DiurnalProfile{WestCoastProfile(), EastCoastProfile(), FlatProfile()} {
		var sum float64
		const steps = 1440
		for i := 0; i < steps; i++ {
			v := p.At(time.Duration(i) * time.Minute)
			if v <= 0 {
				t.Fatalf("%s: non-positive multiplier %v at minute %d", p.Name(), v, i)
			}
			sum += v
		}
		mean := sum / steps
		if math.Abs(mean-1) > 0.01 {
			t.Errorf("%s: daily mean = %v, want ≈ 1", p.Name(), mean)
		}
	}
}

func TestProfileShapes(t *testing.T) {
	west, east := WestCoastProfile(), EastCoastProfile()
	ratio := func(p DiurnalProfile) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 1440; i++ {
			v := p.At(time.Duration(i) * time.Minute)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi / lo
	}
	rw, re := ratio(west), ratio(east)
	if rw <= re {
		t.Errorf("west peak/trough %v must exceed east %v (paper: west burstier)", rw, re)
	}
	if rw < 1.8 || rw > 3.2 {
		t.Errorf("west peak/trough = %v, want ≈ 2.4", rw)
	}
	// Working-hours peak: the profile at 14:00 must exceed 04:00.
	if west.At(14*time.Hour) <= west.At(4*time.Hour) {
		t.Error("west profile does not peak in working hours")
	}
}

func TestProfileWrapsMidnight(t *testing.T) {
	p := WestCoastProfile()
	if a, b := p.At(0), p.At(24*time.Hour); math.Abs(a-b) > 1e-9 {
		t.Errorf("profile discontinuous at midnight: %v vs %v", a, b)
	}
	if a, b := p.At(-time.Hour), p.At(23*time.Hour); math.Abs(a-b) > 1e-9 {
		t.Errorf("negative offsets not wrapped: %v vs %v", a, b)
	}
}

func TestNewLinkValidation(t *testing.T) {
	tab := testTable(t, 100)
	cases := []struct {
		name string
		cfg  LinkConfig
	}{
		{"no table", LinkConfig{Flows: 10, MeanLoadBps: 1e6}},
		{"zero flows", LinkConfig{Table: tab, MeanLoadBps: 1e6}},
		{"flows exceed table", LinkConfig{Table: tab, Flows: 101, MeanLoadBps: 1e6}},
		{"zero load", LinkConfig{Table: tab, Flows: 10}},
		{"tail index <= 1", LinkConfig{Table: tab, Flows: 10, MeanLoadBps: 1e6, TailIndex: 0.9}},
	}
	for _, tc := range cases {
		if _, err := NewLink(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGenerateSeriesDeterministic(t *testing.T) {
	tab := testTable(t, 500)
	mk := func() []float64 {
		l := testLink(t, LinkConfig{Table: tab, Flows: 200, MeanLoadBps: 1e7, Seed: 3})
		s := l.GenerateSeries(traceStart, time.Minute, 30)
		out := make([]float64, s.Intervals)
		for tt := 0; tt < s.Intervals; tt++ {
			out[tt] = s.TotalBandwidth(tt)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d: %v vs %v (same seed must reproduce exactly)", i, a[i], b[i])
		}
	}
}

func TestGenerateSeriesMeanLoad(t *testing.T) {
	tab := testTable(t, 2000)
	const target = 50e6
	l := testLink(t, LinkConfig{
		Table: tab, Flows: 1000, MeanLoadBps: target, Seed: 4,
		Profile: FlatProfile(),
	})
	// A full day to average out the on/off cycles.
	s := l.GenerateSeries(traceStart, 5*time.Minute, 288)
	var sum float64
	for tt := 0; tt < s.Intervals; tt++ {
		sum += s.TotalBandwidth(tt)
	}
	mean := sum / float64(s.Intervals)
	if mean < target*0.5 || mean > target*2.0 {
		t.Errorf("mean load = %.3g, want within 2x of %.3g", mean, target)
	}
}

func TestGenerateSeriesDiurnalShape(t *testing.T) {
	tab := testTable(t, 2000)
	l := testLink(t, LinkConfig{
		Table: tab, Flows: 1000, MeanLoadBps: 100e6, Seed: 5,
		Profile: WestCoastProfile(),
	})
	// Start at midnight for easy phase accounting; 24 h of 5-min slots.
	midnight := time.Date(2001, time.July, 24, 0, 0, 0, 0, time.UTC)
	s := l.GenerateSeries(midnight, 5*time.Minute, 288)
	loadAt := func(h int) float64 {
		var v float64
		for k := 0; k < 12; k++ { // average the hour
			v += s.TotalBandwidth(h*12 + k)
		}
		return v / 12
	}
	peak, trough := loadAt(14), loadAt(4)
	if peak <= trough*1.5 {
		t.Errorf("working-hours load %v not clearly above night load %v", peak, trough)
	}
}

// TestHeavyTailPresent: the per-flow rates of a generated interval must
// be heavy-tailed enough that the top 10%% of flows carry most traffic —
// the elephants-and-mice premise of the paper.
func TestHeavyTailPresent(t *testing.T) {
	tab := testTable(t, 5000)
	l := testLink(t, LinkConfig{Table: tab, Flows: 3000, MeanLoadBps: 100e6, Seed: 6})
	s := l.GenerateSeries(traceStart, 5*time.Minute, 4)
	snap := s.Snapshot(2, nil)
	bws := append([]float64(nil), snap.Bandwidths()...)
	total := snap.TotalLoad()
	q90 := stats.Quantile(bws, 0.9)
	var topLoad float64
	for _, bw := range bws {
		if bw >= q90 {
			topLoad += bw
		}
	}
	if frac := topLoad / total; frac < 0.5 {
		t.Errorf("top 10%% of flows carry %.2f of traffic, want > 0.5 (heavy tail)", frac)
	}
}

// TestMiceChurn: mouse flows must switch on and off; heavy flows must
// stay on (the generator's documented contract).
func TestMiceChurn(t *testing.T) {
	tab := testTable(t, 2000)
	l := testLink(t, LinkConfig{Table: tab, Flows: 1000, MeanLoadBps: 50e6, Seed: 7})
	s := l.GenerateSeries(traceStart, 5*time.Minute, 96)

	heavies := 0
	for i := range l.flows {
		f := &l.flows[i]
		row, ok := s.Row(f.prefix)
		if !ok {
			continue
		}
		zeros := 0
		for _, v := range row {
			if v == 0 {
				zeros++
			}
		}
		if f.heavy {
			heavies++
			if zeros > 0 {
				t.Errorf("heavy flow %v idle in %d/%d intervals", f.prefix, zeros, len(row))
			}
		}
	}
	if heavies == 0 {
		t.Fatal("no heavy flows sampled")
	}
	// Aggregate churn: a noticeable share of mouse slots must be idle.
	idleSlots, mouseSlots := 0, 0
	for i := range l.flows {
		if l.flows[i].heavy {
			continue
		}
		row, ok := s.Row(l.flows[i].prefix)
		if !ok {
			continue
		}
		for _, v := range row {
			mouseSlots++
			if v == 0 {
				idleSlots++
			}
		}
	}
	frac := float64(idleSlots) / float64(mouseSlots)
	// Duty cycle 18 on / 6 off -> ~25% idle.
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("mouse idle fraction = %.3f, want ≈ 0.25", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	l := testLink(t, LinkConfig{Table: testTable(t, 100), Flows: 10, MeanLoadBps: 1e6, Seed: 8})
	const mean = 12.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := geometric(l.rng, mean)
		if d < 1 {
			t.Fatalf("geometric returned %d < 1", d)
		}
		sum += float64(d)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.05 {
		t.Errorf("geometric mean = %v, want ≈ %v", got, mean)
	}
	if g := geometric(l.rng, 0.5); g != 1 {
		t.Errorf("geometric(mean<=1) = %d, want 1", g)
	}
}

// TestBurstModulationUnbiased: the AR(1) lognormal modulation must keep
// the long-run mean rate near the base rate (the exp(sigma^2/2)
// correction).
func TestBurstModulationUnbiased(t *testing.T) {
	tab := testTable(t, 200)
	l := testLink(t, LinkConfig{
		Table: tab, Flows: 50, MeanLoadBps: 1e6, Seed: 9,
		Profile:          FlatProfile(),
		MeanOnIntervals:  1e9, // effectively always on
		MeanOffIntervals: 1e-9,
	})
	// Pick one heavy (always-on) flow and average many steps.
	var f *flowState
	for i := range l.flows {
		if l.flows[i].heavy {
			f = &l.flows[i]
			break
		}
	}
	if f == nil {
		f = &l.flows[0]
	}
	base := f.baseRate
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += l.step(f, 1.0)
	}
	mean := sum / n
	if mean < base*0.9 || mean > base*1.1 {
		t.Errorf("long-run mean rate %v vs base %v: modulation is biased", mean, base)
	}
}

func TestConfigEcho(t *testing.T) {
	tab := testTable(t, 100)
	l := testLink(t, LinkConfig{Table: tab, Flows: 10, MeanLoadBps: 1e6})
	cfg := l.Config()
	if cfg.TailIndex == 0 || cfg.BurstSigma == 0 || cfg.Profile == nil {
		t.Errorf("Config() did not echo defaults: %+v", cfg)
	}
}
