package trace

import (
	"io"
	"time"

	"repro/internal/agg"
)

// RecordStream is the incremental mode of the synthetic generator: it
// yields the link's traffic one measurement interval at a time as
// prefix-attributable point records, implementing agg.RecordSource.
// Where GenerateSeries materialises the full flow×interval matrix
// before anything downstream runs, a RecordStream evolves the flow
// population on demand, so a streaming consumer (agg.StreamAccumulator)
// holds only its window of intervals in memory no matter how long the
// simulated trace is.
//
// Each interval consumes the link's RNG in exactly the order
// GenerateSeries would, so a RecordStream and a GenerateSeries call on
// identically-seeded links emit the same per-flow bandwidths. Advancing
// the stream mutates the link's flow and RNG state just like
// GenerateSeries does: use a fresh NewLink (same config) per generation
// pass.
type RecordStream struct {
	link      *Link
	start     time.Time
	interval  time.Duration
	intervals int
	midnight  time.Time

	t       int // next interval to synthesise
	pending []agg.Record
	next    int // cursor into pending
}

// Stream returns the link's traffic for the given window as an
// on-demand record stream — the streaming twin of GenerateSeries. start
// fixes the diurnal phase exactly as in GenerateSeries.
func (l *Link) Stream(start time.Time, interval time.Duration, intervals int) *RecordStream {
	return &RecordStream{
		link:      l,
		start:     start,
		interval:  interval,
		intervals: intervals,
		midnight:  time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, start.Location()),
	}
}

// Next returns the next record, synthesising the following interval
// once the current one is drained. io.EOF marks the end of the
// configured window. Records arrive interval by interval in generation
// order; an interval where every flow happens to be idle simply yields
// no records.
func (rs *RecordStream) Next() (agg.Record, error) {
	for rs.next >= len(rs.pending) {
		if rs.t >= rs.intervals {
			return agg.Record{}, io.EOF
		}
		rs.synthesise()
	}
	rec := rs.pending[rs.next]
	rs.next++
	return rec, nil
}

// synthesise advances every flow by one interval — the same stepping
// order (and therefore RNG consumption) as GenerateSeries — and queues
// one point record per active flow. A flow's record carries
// bw·Δ bits at the interval's left edge, which the accumulator's
// AddBits arithmetic turns back into the bandwidth column.
func (rs *RecordStream) synthesise() {
	rs.pending = rs.pending[:0]
	rs.next = 0
	at := rs.start.Add(time.Duration(rs.t) * rs.interval)
	diurnal := rs.link.cfg.Profile.At(at.Sub(rs.midnight))
	seconds := rs.interval.Seconds()
	for i := range rs.link.flows {
		f := &rs.link.flows[i]
		if bw := rs.link.step(f, diurnal); bw > 0 {
			rs.pending = append(rs.pending, agg.Record{
				Prefix: f.prefix,
				Time:   at,
				Bits:   bw * seconds,
			})
		}
	}
	rs.t++
}
