package trace

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
)

// LinkConfig describes one synthetic backbone link.
type LinkConfig struct {
	// Name labels the link in reports ("west", "east").
	Name string
	// Profile shapes the diurnal utilisation. Nil selects FlatProfile.
	Profile DiurnalProfile
	// MeanLoadBps is the target daily-average total link load in bit/s.
	// An OC-12 running at ~50% utilisation carries ≈ 300 Mbit/s.
	MeanLoadBps float64
	// Flows is the number of network-prefix flows that carry traffic on
	// the link during the trace.
	Flows int
	// Table supplies the prefixes; the generator samples Flows routes
	// from it. Required.
	Table *bgp.Table
	// Seed drives all randomness deterministically.
	Seed int64

	// TailIndex is the Pareto index of the heavy rate tail (1 < alpha
	// < 2 gives infinite variance, as backbone measurements show).
	// Defaults to 1.9 (calibrated; see cmd/calibrate).
	TailIndex float64
	// TailShare is the fraction of flows drawn from the Pareto tail
	// component rather than the lognormal body. Defaults to 0.04.
	TailShare float64
	// BodySigma is the lognormal body's log-stddev. Defaults to 1.2.
	BodySigma float64

	// BurstSigma is the per-interval lognormal volatility of a flow's
	// rate around its modulated base rate. Defaults to 0.82, calibrated
	// so that enough near-threshold flows lack persistence for the
	// latent-heat scheme to trim the elephant load from the 0.8
	// constant-load target towards the paper's observed ≈0.6.
	BurstSigma float64
	// BurstRho is the AR(1) correlation of the log-rate modulation
	// between consecutive intervals (persistence of bursts).
	// Defaults to 0.55.
	BurstRho float64

	// MeanOnIntervals and MeanOffIntervals give geometric mean
	// durations of a mouse flow's active and idle periods, in
	// measurement intervals. Heavy flows (tail component) are held
	// always-on, reflecting the aggregated nature of large prefixes.
	// Defaults: 18 on, 6 off.
	MeanOnIntervals  float64
	MeanOffIntervals float64
}

func (c *LinkConfig) defaults() error {
	if c.Table == nil {
		return fmt.Errorf("trace: LinkConfig.Table is required")
	}
	if c.Flows <= 0 {
		return fmt.Errorf("trace: LinkConfig.Flows must be positive, got %d", c.Flows)
	}
	if c.Flows > c.Table.Len() {
		return fmt.Errorf("trace: LinkConfig.Flows %d exceeds table size %d", c.Flows, c.Table.Len())
	}
	if c.MeanLoadBps <= 0 {
		return fmt.Errorf("trace: LinkConfig.MeanLoadBps must be positive")
	}
	if c.Profile == nil {
		c.Profile = FlatProfile()
	}
	if c.TailIndex == 0 {
		c.TailIndex = 1.9
	}
	if c.TailIndex <= 1 {
		return fmt.Errorf("trace: TailIndex must exceed 1 for a finite mean, got %v", c.TailIndex)
	}
	if c.TailShare == 0 {
		c.TailShare = 0.04
	}
	if c.BodySigma == 0 {
		c.BodySigma = 1.2
	}
	if c.BurstSigma == 0 {
		c.BurstSigma = 0.82
	}
	if c.BurstRho == 0 {
		c.BurstRho = 0.55
	}
	if c.MeanOnIntervals == 0 {
		c.MeanOnIntervals = 18
	}
	if c.MeanOffIntervals == 0 {
		c.MeanOffIntervals = 6
	}
	return nil
}

// flowState is the evolving state of one synthetic flow.
type flowState struct {
	prefix   netip.Prefix
	baseRate float64 // bit/s at unit diurnal multiplier
	heavy    bool    // drawn from the tail component
	logMod   float64 // AR(1) log-rate modulation state
	on       bool
	left     int // intervals remaining in the current on/off period
}

// Link is an instantiated synthetic link ready to generate traffic.
type Link struct {
	cfg   LinkConfig
	rng   *rand.Rand
	flows []flowState
}

// NewLink samples the flow population for cfg. The population (prefix
// choice, base rates, component membership) is fully determined by
// cfg.Seed.
func NewLink(cfg LinkConfig) (*Link, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	routes := cfg.Table.Routes()
	perm := rng.Perm(len(routes))[:cfg.Flows]

	flows := make([]flowState, cfg.Flows)
	var sum float64
	// Median of the body; the tail starts well above it so that the
	// rate distribution has a clear body/tail structure for aest.
	bodyMedian := 1.0
	tailStart := bodyMedian * math.Exp(2.5*cfg.BodySigma)
	for i := range flows {
		f := &flows[i]
		f.prefix = routes[perm[i]].Prefix
		if rng.Float64() < cfg.TailShare {
			f.heavy = true
			// Pareto: x = x_m * U^(-1/alpha).
			u := rng.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			f.baseRate = tailStart * math.Pow(u, -1/cfg.TailIndex)
		} else {
			f.baseRate = bodyMedian * math.Exp(rng.NormFloat64()*cfg.BodySigma)
		}
		sum += f.baseRate
		f.on = true
		f.logMod = rng.NormFloat64() * cfg.BurstSigma
		f.left = 1 + rng.Intn(8) // desynchronise on/off phase
	}
	// Scale base rates so expected total (accounting for mouse duty
	// cycle) matches the configured mean load.
	duty := cfg.MeanOnIntervals / (cfg.MeanOnIntervals + cfg.MeanOffIntervals)
	var expected float64
	for i := range flows {
		if flows[i].heavy {
			expected += flows[i].baseRate
		} else {
			expected += flows[i].baseRate * duty
		}
	}
	scale := cfg.MeanLoadBps / expected
	for i := range flows {
		flows[i].baseRate *= scale
	}
	return &Link{cfg: cfg, rng: rng, flows: flows}, nil
}

// Config returns the (defaulted) configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// geometric draws a geometric duration with the given mean (>= 1).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// Inverse CDF of the geometric distribution on {1, 2, ...}.
	u := rng.Float64()
	if u < 1e-15 {
		u = 1e-15
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// step advances one flow by one interval and returns its bandwidth.
func (l *Link) step(f *flowState, diurnal float64) float64 {
	cfg := &l.cfg
	// On/off churn (mice only).
	if !f.heavy {
		f.left--
		if f.left <= 0 {
			f.on = !f.on
			if f.on {
				f.left = geometric(l.rng, cfg.MeanOnIntervals)
			} else {
				f.left = geometric(l.rng, cfg.MeanOffIntervals)
			}
		}
		if !f.on {
			return 0
		}
	}
	// AR(1) evolution of the log modulation.
	rho := cfg.BurstRho
	f.logMod = rho*f.logMod + math.Sqrt(1-rho*rho)*l.rng.NormFloat64()*cfg.BurstSigma
	// exp(sigma^2/2) mean-correction keeps E[multiplier] = 1.
	mult := math.Exp(f.logMod - cfg.BurstSigma*cfg.BurstSigma/2)
	return f.baseRate * diurnal * mult
}

// GenerateSeries simulates the link for the given window and returns the
// per-flow bandwidth matrix. start fixes the diurnal phase: the profile
// is evaluated at start+t*interval's offset from local midnight.
func (l *Link) GenerateSeries(start time.Time, interval time.Duration, intervals int) *agg.Series {
	s := agg.NewSeries(start, interval, intervals)
	midnight := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, start.Location())
	for t := 0; t < intervals; t++ {
		at := start.Add(time.Duration(t) * interval)
		diurnal := l.cfg.Profile.At(at.Sub(midnight))
		for i := range l.flows {
			bw := l.step(&l.flows[i], diurnal)
			if bw > 0 {
				s.SetBandwidth(l.flows[i].prefix, t, bw)
			}
		}
	}
	return s
}
