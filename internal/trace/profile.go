// Package trace synthesizes backbone-link workloads that stand in for
// the Sprint OC-12 packet traces used by the paper (proprietary; never
// released). The generator reproduces the traffic properties that drive
// the paper's results: a heavy-tailed per-prefix rate distribution,
// diurnal link utilisation (one bursty "west coast" link and one smooth
// "east coast" link), AR(1)-correlated short-term rate volatility, and
// flow birth/death churn. It can emit either the per-interval bandwidth
// matrix directly (fast path for the 28-hour experiments) or real packets
// through the packet/pcap substrate (full-pipeline path).
package trace

import (
	"math"
	"time"
)

// DiurnalProfile maps time-of-day to a link utilisation multiplier with
// mean ≈ 1 over 24 hours.
type DiurnalProfile interface {
	// At returns the load multiplier at time-of-day offset d from local
	// midnight. Implementations must be positive everywhere.
	At(d time.Duration) float64
	// Name identifies the profile in reports.
	Name() string
}

// gaussianBumpProfile is a baseline plus a working-hours Gaussian bump,
// normalised to unit daily mean.
type gaussianBumpProfile struct {
	name     string
	baseline float64
	bump     float64       // peak height above baseline, pre-normalisation
	center   time.Duration // bump center, offset from midnight
	width    time.Duration // bump standard deviation
	norm     float64
}

func newGaussianBumpProfile(name string, baseline, bump float64, center, width time.Duration) *gaussianBumpProfile {
	p := &gaussianBumpProfile{name: name, baseline: baseline, bump: bump, center: center, width: width, norm: 1}
	// Normalise mean over 24h to 1 by sampling (closed form exists but
	// sampling keeps the code obvious; 1440 points is exact enough).
	var sum float64
	const steps = 1440
	for i := 0; i < steps; i++ {
		sum += p.raw(time.Duration(i) * time.Minute)
	}
	p.norm = float64(steps) / sum
	return p
}

func (p *gaussianBumpProfile) raw(d time.Duration) float64 {
	// Wrap to [0, 24h).
	day := 24 * time.Hour
	d = ((d % day) + day) % day
	// Distance to center on the circle.
	dist := math.Abs(float64(d - p.center))
	if alt := float64(day) - dist; alt < dist {
		dist = alt
	}
	w := float64(p.width)
	return p.baseline + p.bump*math.Exp(-dist*dist/(2*w*w))
}

// At implements DiurnalProfile.
func (p *gaussianBumpProfile) At(d time.Duration) float64 { return p.raw(d) * p.norm }

// Name implements DiurnalProfile.
func (p *gaussianBumpProfile) Name() string { return p.name }

// WestCoastProfile models the paper's west-coast link: a pronounced
// utilisation burst during working hours (peak ≈ 2.4x trough).
func WestCoastProfile() DiurnalProfile {
	return newGaussianBumpProfile("west-coast", 0.55, 1.0, 14*time.Hour, 3*time.Hour)
}

// EastCoastProfile models the east-coast link: smoother utilisation
// through the day (peak ≈ 1.5x trough).
func EastCoastProfile() DiurnalProfile {
	return newGaussianBumpProfile("east-coast", 0.80, 0.45, 13*time.Hour+30*time.Minute, 4*time.Hour)
}

// FlatProfile returns a constant unit profile, useful in tests that need
// stationary load.
func FlatProfile() DiurnalProfile { return flatProfile{} }

type flatProfile struct{}

func (flatProfile) At(time.Duration) float64 { return 1 }
func (flatProfile) Name() string             { return "flat" }
