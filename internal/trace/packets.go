package trace

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/packet"
	"repro/internal/pcap"
)

// PacketEmitter converts a bandwidth series into a stream of real
// Ethernet/IPv4 packets written through the pcap substrate, so that the
// full capture-decode-aggregate pipeline can be exercised end to end.
//
// Packet sizes follow the classic backbone tri-modal mix (40-byte ACKs,
// 576-byte legacy MTU, 1500-byte full MTU); per-flow bytes per interval
// match the series exactly up to one packet of rounding.
type PacketEmitter struct {
	rng   *rand.Rand
	bld   *packet.Builder
	seq   uint32
	sizes []sizeBucket
	// sessions holds a few persistent (src, srcPort, dstHost) tuples per
	// flow, so the packet stream aggregates into realistic transport
	// flows (a NetFlow cache would otherwise see one flow per packet).
	sessions map[int][]session
}

type session struct {
	src   netip.Addr
	dst   netip.Addr
	sport uint16
}

// sessionsPerFlow is the number of concurrent transport sessions each
// prefix flow carries in emitted traces.
const sessionsPerFlow = 4

type sizeBucket struct {
	bytes  int
	weight float64
}

// NewPacketEmitter returns an emitter seeded deterministically.
func NewPacketEmitter(seed int64) *PacketEmitter {
	return &PacketEmitter{
		rng:      rand.New(rand.NewSource(seed)),
		bld:      packet.NewBuilder(),
		sessions: make(map[int][]session),
		sizes: []sizeBucket{
			// 54 bytes is the minimum Ethernet/IPv4/TCP frame this
			// emitter can build (14+20+20 headers, no payload) — the
			// "pure ACK" mode of the classic backbone trimodal mix.
			{54, 0.50},
			{576, 0.20},  // legacy-MTU data
			{1500, 0.30}, // full-MTU data
		},
	}
}

func (e *PacketEmitter) sampleSize() int {
	var total float64
	for _, b := range e.sizes {
		total += b.weight
	}
	x := e.rng.Float64() * total
	for _, b := range e.sizes {
		if x <= b.weight {
			return b.bytes
		}
		x -= b.weight
	}
	return e.sizes[len(e.sizes)-1].bytes
}

// meanSize returns the expected packet size of the mix in bytes.
func (e *PacketEmitter) meanSize() float64 {
	var num, den float64
	for _, b := range e.sizes {
		num += float64(b.bytes) * b.weight
		den += b.weight
	}
	return num / den
}

// Emit writes the packets realising series into w as a pcap capture.
// Packets within an interval are spaced evenly with a small jitter;
// destination addresses are random hosts inside each flow's prefix. The
// number of packets written is returned.
//
// Emit is meant for short, scaled-down windows (integration tests,
// example captures): a full 28-hour OC-12 trace would be billions of
// packets.
func (e *PacketEmitter) Emit(w io.Writer, series *agg.Series) (int, error) {
	pw := pcap.NewWriter(w, pcap.Header{LinkType: pcap.LinkTypeEthernet})
	if err := pw.WriteHeader(); err != nil {
		return 0, err
	}
	written := 0
	srcMAC := packet.MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC := packet.MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	flows := series.Flows()
	type emission struct {
		at   time.Duration // offset within interval
		flow int
		size int
	}
	for t := 0; t < series.Intervals; t++ {
		intervalStart := series.IntervalTime(t)
		var ems []emission
		for fi, p := range flows {
			bw := series.Bandwidth(p, t)
			if bw <= 0 {
				continue
			}
			totalBytes := bw * series.Interval.Seconds() / 8
			// Draw sizes until the flow's byte budget is spent.
			remaining := totalBytes
			for remaining > 0 {
				sz := e.sampleSize()
				if float64(sz) > remaining && remaining < float64(sz)/2 {
					break // rounding: drop a trailing fraction of a packet
				}
				ems = append(ems, emission{flow: fi, size: sz})
				remaining -= float64(sz)
			}
		}
		// Spread emissions across the interval in random order.
		e.rng.Shuffle(len(ems), func(i, j int) { ems[i], ems[j] = ems[j], ems[i] })
		step := series.Interval / time.Duration(len(ems)+1)
		for i := range ems {
			ems[i].at = time.Duration(i+1) * step
		}
		for _, em := range ems {
			p := flows[em.flow]
			ss := e.sessions[em.flow]
			if ss == nil {
				ss = make([]session, sessionsPerFlow)
				for i := range ss {
					ss[i] = session{
						src:   randomPublicAddr(e.rng),
						dst:   bgp.RandomAddrInPrefix(e.rng, p),
						sport: uint16(1024 + e.rng.Intn(60000)),
					}
				}
				e.sessions[em.flow] = ss
			}
			sess := ss[e.rng.Intn(len(ss))]
			e.seq++
			frame, err := e.bld.Build(packet.FrameSpec{
				SrcMAC: srcMAC, DstMAC: dstMAC,
				SrcIP: sess.src, DstIP: sess.dst,
				Protocol: packet.IPProtocolTCP,
				SrcPort:  sess.sport,
				DstPort:  80,
				Seq:      e.seq,
				// Frame overhead: 14 eth + 20 IP + 20 TCP = 54 bytes.
				PayloadLen: maxInt(0, em.size-54),
			})
			if err != nil {
				return written, fmt.Errorf("trace: building packet: %w", err)
			}
			ci := pcap.CaptureInfo{
				Timestamp:     intervalStart.Add(em.at),
				CaptureLength: len(frame),
				Length:        len(frame),
			}
			if err := pw.WritePacket(ci, frame); err != nil {
				return written, err
			}
			written++
		}
	}
	return written, nil
}

func randomPublicAddr(rng *rand.Rand) netip.Addr {
	for {
		raw := uint32(rng.Int63()) & 0xFFFFFFFF
		first := raw >> 24
		if first == 0 || first == 10 || first == 127 || first >= 224 {
			continue
		}
		return netip.AddrFrom4([4]byte{byte(raw >> 24), byte(raw >> 16), byte(raw >> 8), byte(raw)})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
