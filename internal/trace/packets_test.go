package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/packet"
	"repro/internal/pcap"
)

// TestEmitRealizesSeries: the packet stream must carry (approximately)
// the bytes the series prescribes, per flow and interval, and decode
// cleanly.
func TestEmitRealizesSeries(t *testing.T) {
	tab := testTable(t, 300)
	l := testLink(t, LinkConfig{Table: tab, Flows: 60, MeanLoadBps: 2e6, Seed: 20})
	series := l.GenerateSeries(traceStart, time.Minute, 5)

	var buf bytes.Buffer
	em := NewPacketEmitter(21)
	n, err := em.Emit(&buf, series)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no packets emitted")
	}

	// Decode everything back and rebuild the byte matrix.
	back := agg.NewSeries(traceStart, time.Minute, 5)
	frames, stats, err := agg.ReadPcap(&buf, tab, back)
	if err != nil {
		t.Fatal(err)
	}
	if frames != n {
		t.Errorf("read %d frames, wrote %d", frames, n)
	}
	if stats.Unrouted != 0 {
		t.Errorf("%d packets failed longest-prefix match", stats.Unrouted)
	}

	// Per-flow, per-interval bandwidth must match within packet
	// rounding: one max-size packet per (flow, interval) plus the
	// sub-half-packet truncation allowed by the emitter.
	for _, p := range series.Flows() {
		for tt := 0; tt < series.Intervals; tt++ {
			want := series.Bandwidth(p, tt)
			got := back.Bandwidth(p, tt)
			tolBits := 1500.0 * 8 * 1.5 / series.Interval.Seconds()
			if want == 0 && got != 0 {
				t.Errorf("flow %v interval %d: spurious %v bit/s", p, tt, got)
			}
			if want > 0 && (got < want-tolBits || got > want+tolBits) {
				t.Errorf("flow %v interval %d: got %.0f want %.0f (tol %.0f)", p, tt, got, want, tolBits)
			}
		}
	}
}

func TestEmitTimestampsOrderedWithinInterval(t *testing.T) {
	tab := testTable(t, 100)
	l := testLink(t, LinkConfig{Table: tab, Flows: 20, MeanLoadBps: 1e6, Seed: 22})
	series := l.GenerateSeries(traceStart, time.Minute, 3)

	var buf bytes.Buffer
	em := NewPacketEmitter(23)
	if _, err := em.Emit(&buf, series); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	end := traceStart.Add(3 * time.Minute)
	for {
		ci, _, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ci.Timestamp.Before(prev) {
			t.Fatalf("timestamps went backwards: %v after %v", ci.Timestamp, prev)
		}
		if ci.Timestamp.Before(traceStart) || !ci.Timestamp.Before(end) {
			t.Fatalf("timestamp %v outside trace window", ci.Timestamp)
		}
		prev = ci.Timestamp
	}
}

func TestEmitPacketSizesTrimodal(t *testing.T) {
	tab := testTable(t, 100)
	l := testLink(t, LinkConfig{Table: tab, Flows: 30, MeanLoadBps: 5e6, Seed: 24})
	series := l.GenerateSeries(traceStart, time.Minute, 2)

	var buf bytes.Buffer
	em := NewPacketEmitter(25)
	if _, err := em.Emit(&buf, series); err != nil {
		t.Fatal(err)
	}
	r, _ := pcap.NewReader(&buf)
	sizes := map[int]int{}
	for {
		ci, _, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes[ci.Length]++
	}
	for _, want := range []int{54, 576, 1500} {
		if sizes[want] == 0 {
			t.Errorf("no packets of wire size %d (sizes seen: %v)", want, keys(sizes))
		}
	}
}

func keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestEmitDeterministic(t *testing.T) {
	tab := testTable(t, 100)
	mk := func() []byte {
		l := testLink(t, LinkConfig{Table: tab, Flows: 20, MeanLoadBps: 1e6, Seed: 26})
		series := l.GenerateSeries(traceStart, time.Minute, 2)
		var buf bytes.Buffer
		em := NewPacketEmitter(27)
		if _, err := em.Emit(&buf, series); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("Emit is not byte-for-byte deterministic for a fixed seed")
	}
}

func TestEmitEmptySeries(t *testing.T) {
	series := agg.NewSeries(traceStart, time.Minute, 2)
	var buf bytes.Buffer
	em := NewPacketEmitter(28)
	n, err := em.Emit(&buf, series)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("emitted %d packets from an empty series", n)
	}
	// The file must still be a valid, empty capture.
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

// TestEmitFramesDecodable: every emitted frame individually decodes as
// Ethernet/IPv4/TCP.
func TestEmitFramesDecodable(t *testing.T) {
	tab := testTable(t, 100)
	l := testLink(t, LinkConfig{Table: tab, Flows: 20, MeanLoadBps: 1e6, Seed: 29})
	series := l.GenerateSeries(traceStart, time.Minute, 2)
	var buf bytes.Buffer
	em := NewPacketEmitter(30)
	if _, err := em.Emit(&buf, series); err != nil {
		t.Fatal(err)
	}
	r, _ := pcap.NewReader(&buf)
	parser := packet.NewParser()
	for {
		_, data, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sum, err := parser.Parse(data)
		if err != nil {
			t.Fatalf("undecodable frame: %v", err)
		}
		if sum.Protocol != packet.IPProtocolTCP || !sum.TransportOK {
			t.Fatalf("unexpected summary: %+v", sum)
		}
	}
}
