package trace

import (
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
)

func streamTestLink(t *testing.T, seed int64) *Link {
	t.Helper()
	table, err := bgp.Generate(bgp.GenConfig{Routes: 900, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(LinkConfig{
		Table: table, Flows: 200, MeanLoadBps: 2e6, Seed: seed,
		Profile: FlatProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return link
}

// TestStreamMatchesGenerateSeries: the incremental mode consumes the
// RNG in the same order as the batch generator, so two
// identically-seeded links emit the same traffic whichever mode runs.
// The record form carries bw·Δ bits, so values agree to float64
// round-trip precision.
func TestStreamMatchesGenerateSeries(t *testing.T) {
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	const intervals = 12
	iv := 5 * time.Minute

	batch := streamTestLink(t, 91).GenerateSeries(start, iv, intervals)

	streamed := agg.NewSeries(start, iv, intervals)
	st, err := agg.Collect(streamTestLink(t, 91).Stream(start, iv, intervals), streamed)
	if err != nil {
		t.Fatal(err)
	}
	if st.OutOfRange != 0 {
		t.Fatalf("stats = %+v", st)
	}

	if streamed.NumFlows() != batch.NumFlows() {
		t.Fatalf("%d flows streamed, %d generated", streamed.NumFlows(), batch.NumFlows())
	}
	for _, p := range batch.Flows() {
		for tt := 0; tt < intervals; tt++ {
			want := batch.Bandwidth(p, tt)
			got := streamed.Bandwidth(p, tt)
			if want == got {
				continue
			}
			if rel := math.Abs(want-got) / math.Max(want, got); rel > 1e-12 {
				t.Fatalf("flow %v interval %d: stream %v vs batch %v", p, tt, got, want)
			}
		}
	}
}

// TestStreamIsDeterministic: two identically-configured links stream
// identical records.
func TestStreamIsDeterministic(t *testing.T) {
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	drain := func() []agg.Record {
		rs := streamTestLink(t, 92).Stream(start, time.Minute, 6)
		var recs []agg.Record
		for {
			rec, err := rs.Next()
			if errors.Is(err, io.EOF) {
				return recs
			}
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		}
	}
	a, b := drain(), drain()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestStreamIntervalOrdering: records arrive interval by interval with
// in-window timestamps, the shape the streaming accumulator expects.
func TestStreamIntervalOrdering(t *testing.T) {
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	const intervals = 5
	rs := streamTestLink(t, 93).Stream(start, time.Minute, intervals)
	last := -1
	for {
		rec, err := rs.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tt := int(rec.Time.Sub(start) / time.Minute)
		if tt < last {
			t.Fatalf("interval went backwards: %d after %d", tt, last)
		}
		if tt >= intervals {
			t.Fatalf("record beyond window: interval %d", tt)
		}
		if rec.Span != 0 || rec.Bits <= 0 {
			t.Fatalf("malformed record: %+v", rec)
		}
		last = tt
	}
}
