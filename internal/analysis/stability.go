package analysis

import (
	"net/netip"
	"slices"

	"repro/internal/core"
)

// SetStability quantifies how much the elephant *membership* changes
// between consecutive intervals — the quantity a traffic-engineering
// controller pays for, since every membership change is a potential
// reroute. It complements the count/fraction series: a scheme can hold
// the count rock-steady (top-K does, by construction) while churning
// the members underneath.
type SetStability struct {
	// MeanJaccard is the average Jaccard similarity of consecutive
	// elephant sets (1 = frozen membership).
	MeanJaccard float64
	// MinJaccard is the worst consecutive-interval similarity.
	MinJaccard float64
	// MeanTurnover is the average number of members entering plus
	// leaving per interval.
	MeanTurnover float64
}

// Stability computes SetStability over a result sequence. Sequences
// shorter than two intervals return the zero value.
func Stability(results []core.Result) SetStability {
	if len(results) < 2 {
		return SetStability{}
	}
	var st SetStability
	st.MinJaccard = 1
	n := 0
	for i := 1; i < len(results); i++ {
		prev, cur := results[i-1].Elephants, results[i].Elephants
		// Both member lists are ComparePrefix-sorted, so the
		// intersection is one linear merge rather than a binary search
		// per member.
		pf, cf := prev.Flows(), cur.Flows()
		inter := 0
		for a, b := 0, 0; a < len(pf) && b < len(cf); {
			switch c := core.ComparePrefix(pf[a], cf[b]); {
			case c == 0:
				inter++
				a++
				b++
			case c < 0:
				a++
			default:
				b++
			}
		}
		union := prev.Len() + cur.Len() - inter
		j := 1.0
		if union > 0 {
			j = float64(inter) / float64(union)
		}
		st.MeanJaccard += j
		if j < st.MinJaccard {
			st.MinJaccard = j
		}
		st.MeanTurnover += float64(union - inter)
		n++
	}
	st.MeanJaccard /= float64(n)
	st.MeanTurnover /= float64(n)
	return st
}

// RankCorrelation computes Kendall's tau-a between two bandwidth
// snapshots over the flows present in both, measuring whether the heavy
// flows keep their relative order across intervals. Returns tau in
// [-1, 1] and the number of common flows; fewer than two common flows
// yield (0, n).
func RankCorrelation(a, b map[netip.Prefix]float64) (float64, int) {
	common := make([]netip.Prefix, 0, len(a))
	for p := range a {
		if _, ok := b[p]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 0, n
	}
	// Deterministic order for reproducibility — the system-wide flow
	// order, not a local re-implementation of it.
	slices.SortFunc(common, core.ComparePrefix)
	var concordant, discordant int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[common[i]] - a[common[j]]
			db := b[common[i]] - b[common[j]]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), n
}
