package analysis

import (
	"fmt"
	"math"
	"net/netip"
	"testing"

	"repro/internal/core"
)

func pfx(i int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
}

// resultsFromPattern builds a result sequence from per-flow elephant
// patterns ('E' = elephant, '.' = mouse), all patterns equal length.
func resultsFromPattern(patterns map[int]string) []core.Result {
	n := 0
	for _, p := range patterns {
		n = len(p)
	}
	out := make([]core.Result, n)
	for t := range out {
		var members []netip.Prefix
		for id, p := range patterns {
			if p[t] == 'E' {
				members = append(members, pfx(id))
			}
		}
		out[t] = core.Result{Interval: t, Elephants: core.NewElephantSet(members...), TotalLoad: 1}
	}
	return out
}

func TestStateSequences(t *testing.T) {
	res := resultsFromPattern(map[int]string{
		0: "EE..E",
		1: ".....",
		2: "..E..",
	})
	seqs := StateSequences(res, 0, 5)
	if len(seqs) != 2 {
		t.Fatalf("tracked flows = %d, want 2 (flow 1 was never an elephant)", len(seqs))
	}
	want0 := []bool{true, true, false, false, true}
	for i, v := range want0 {
		if seqs[pfx(0)][i] != v {
			t.Errorf("flow 0 seq[%d] = %v", i, seqs[pfx(0)][i])
		}
	}
}

func TestStateSequencesWindowClamping(t *testing.T) {
	res := resultsFromPattern(map[int]string{0: "EEE"})
	if got := StateSequences(res, -5, 99); len(got[pfx(0)]) != 3 {
		t.Errorf("clamped window length = %d", len(got[pfx(0)]))
	}
	if got := StateSequences(res, 2, 2); got != nil {
		t.Errorf("empty window returned %v", got)
	}
}

func TestRunLengths(t *testing.T) {
	cases := []struct {
		seq  string
		want []int
	}{
		{"", nil},
		{".....", nil},
		{"E....", []int{1}},
		{"EEEEE", []int{5}},
		{"EE.EE", []int{2, 2}},
		{"E.E.E", []int{1, 1, 1}},
		{"..EEE", []int{3}}, // run open at the right edge counts
	}
	for _, tc := range cases {
		seq := make([]bool, len(tc.seq))
		for i, c := range tc.seq {
			seq[i] = c == 'E'
		}
		got := runLengths(seq)
		if len(got) != len(tc.want) {
			t.Errorf("%q: runs = %v, want %v", tc.seq, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: runs = %v, want %v", tc.seq, got, tc.want)
			}
		}
	}
}

func TestHoldingTimes(t *testing.T) {
	res := resultsFromPattern(map[int]string{
		0: "EEEE....", // one visit of 4
		1: "E..E..E.", // three visits of 1 -> single-interval flow
		2: "EE..EE..", // two visits of 2
		3: "........", // never an elephant
	})
	st := HoldingTimes(res, 0, 8)
	if st.Flows != 3 {
		t.Fatalf("Flows = %d, want 3", st.Flows)
	}
	if got := st.PerFlow[pfx(0)]; got != 4 {
		t.Errorf("flow 0 avg = %v, want 4", got)
	}
	if got := st.PerFlow[pfx(1)]; got != 1 {
		t.Errorf("flow 1 avg = %v, want 1", got)
	}
	if got := st.PerFlow[pfx(2)]; got != 2 {
		t.Errorf("flow 2 avg = %v, want 2", got)
	}
	if st.SingleIntervalFlows != 1 {
		t.Errorf("SingleIntervalFlows = %d, want 1 (only flow 1)", st.SingleIntervalFlows)
	}
	if want := (4.0 + 1 + 2) / 3; math.Abs(st.MeanHolding-want) > 1e-12 {
		t.Errorf("MeanHolding = %v, want %v", st.MeanHolding, want)
	}
}

func TestHoldingHistogram(t *testing.T) {
	res := resultsFromPattern(map[int]string{
		0: "EEEE....",
		1: "E.......",
		2: "EE......",
	})
	st := HoldingTimes(res, 0, 8)
	h := st.HoldingHistogram(3) // bins [0,1) [1,2) [2,3)+overflow-clamp
	if h[1] != 1 {              // flow 1: avg 1
		t.Errorf("bin 1 = %d", h[1])
	}
	if h[2] != 2 { // flow 2: avg 2; flow 0: avg 4 clamped into last bin
		t.Errorf("bin 2 = %d (flow 2 plus clamped flow 0)", h[2])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 3 {
		t.Errorf("histogram total = %d, want 3", total)
	}
}

func TestBusyWindow(t *testing.T) {
	res := make([]core.Result, 10)
	loads := []float64{1, 1, 5, 9, 9, 5, 1, 1, 1, 1}
	for i := range res {
		res[i] = core.Result{Interval: i, TotalLoad: loads[i]}
	}
	from, to, err := BusyWindow(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if from != 2 || to != 5 {
		t.Errorf("busy window = [%d,%d), want [2,5)", from, to)
	}
}

func TestBusyWindowWholeSeries(t *testing.T) {
	res := make([]core.Result, 4)
	from, to, err := BusyWindow(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 || to != 4 {
		t.Errorf("window = [%d,%d)", from, to)
	}
}

func TestBusyWindowErrors(t *testing.T) {
	res := make([]core.Result, 3)
	if _, _, err := BusyWindow(res, 0); err == nil {
		t.Error("window 0 accepted")
	}
	if _, _, err := BusyWindow(res, 4); err == nil {
		t.Error("window beyond series accepted")
	}
}

func TestCountAndFractionSeries(t *testing.T) {
	res := resultsFromPattern(map[int]string{0: "E.", 1: "E."})
	res[0].ElephantLoad, res[0].TotalLoad = 6, 10
	res[1].ElephantLoad, res[1].TotalLoad = 0, 10
	counts := CountSeries(res)
	if counts[0] != 2 || counts[1] != 0 {
		t.Errorf("counts = %v", counts)
	}
	fracs := FractionSeries(res)
	if fracs[0] != 0.6 || fracs[1] != 0 {
		t.Errorf("fracs = %v", fracs)
	}
}

func TestMeans(t *testing.T) {
	if MeanInt(nil) != 0 || MeanFloat(nil) != 0 {
		t.Error("empty means must be 0")
	}
	if got := MeanInt([]int{1, 2, 3}); got != 2 {
		t.Errorf("MeanInt = %v", got)
	}
	if got := MeanFloat([]float64{1, 2}); got != 1.5 {
		t.Errorf("MeanFloat = %v", got)
	}
}

func TestTransitions(t *testing.T) {
	res := resultsFromPattern(map[int]string{
		0: "EE.E", // promo (t0), steady (t1), demo (t2), promo (t3)
		1: "..E.", // promo (t2), demo (t3)
	})
	tc := Transitions(res, 0, 4)
	if tc.Promotions != 3 {
		t.Errorf("Promotions = %d, want 3", tc.Promotions)
	}
	if tc.Demotions != 2 {
		t.Errorf("Demotions = %d, want 2", tc.Demotions)
	}
	if tc.SteadyElephant != 1 {
		t.Errorf("SteadyElephant = %d, want 1", tc.SteadyElephant)
	}
}

func TestSortedHoldingTimes(t *testing.T) {
	res := resultsFromPattern(map[int]string{
		0: "EEEE",
		1: "E...",
		2: "EE..",
	})
	st := HoldingTimes(res, 0, 4)
	got := st.SortedHoldingTimes()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Errorf("sorted = %v", got)
	}
}
