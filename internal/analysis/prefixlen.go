package analysis

import (
	"net/netip"

	"repro/internal/agg"
	"repro/internal/core"
)

// PrefixLengthStats reproduces the Section III observation about the
// (lack of) correlation between prefix size and elephant behaviour.
type PrefixLengthStats struct {
	// ElephantLengths is a 33-bin histogram of the prefix lengths of
	// flows that were elephants in at least one interval.
	ElephantLengths [33]int
	// ActiveLengths is the same histogram over all flows that carried
	// traffic.
	ActiveLengths [33]int
	// MinLen and MaxLen bound the elephant prefix lengths (0,0 when no
	// elephants).
	MinLen, MaxLen int
	// ActiveSlash8 and ElephantSlash8 count /8 networks that were
	// active and that ever became elephants, respectively.
	ActiveSlash8, ElephantSlash8 int
}

// PrefixLengths computes PrefixLengthStats from a result sequence and
// the series that produced it.
func PrefixLengths(results []core.Result, series *agg.Series) PrefixLengthStats {
	var st PrefixLengthStats
	elephants := make(map[netip.Prefix]bool)
	for i := range results {
		for _, p := range results[i].Elephants.Flows() {
			elephants[p] = true
		}
	}
	for _, p := range series.Flows() {
		if !p.Addr().Is4() {
			continue
		}
		bits := p.Bits()
		st.ActiveLengths[bits]++
		if bits == 8 {
			st.ActiveSlash8++
		}
	}
	first := true
	for p := range elephants {
		if !p.Addr().Is4() {
			continue
		}
		bits := p.Bits()
		st.ElephantLengths[bits]++
		if bits == 8 {
			st.ElephantSlash8++
		}
		if first || bits < st.MinLen {
			st.MinLen = bits
		}
		if first || bits > st.MaxLen {
			st.MaxLen = bits
		}
		first = false
	}
	return st
}

// TotalElephantFlows returns the number of distinct flows ever
// classified as elephants.
func (s PrefixLengthStats) TotalElephantFlows() int {
	n := 0
	for _, c := range s.ElephantLengths {
		n += c
	}
	return n
}
