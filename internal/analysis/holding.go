// Package analysis derives the paper's evaluation metrics from a
// sequence of per-interval classification results: elephant counts,
// traffic fractions, holding times in the elephant state (the two-state
// process of Section II), single-interval-elephant counts, and the
// prefix-length characteristics of Section III.
package analysis

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/core"
)

// StateSequences reconstructs, for every flow that was ever an elephant,
// the per-interval two-state process I_j(t) over the window [from, to)
// of result indices.
func StateSequences(results []core.Result, from, to int) map[netip.Prefix][]bool {
	if from < 0 {
		from = 0
	}
	if to > len(results) {
		to = len(results)
	}
	if from >= to {
		return nil
	}
	out := make(map[netip.Prefix][]bool)
	n := to - from
	for i := from; i < to; i++ {
		for _, p := range results[i].Elephants.Flows() {
			seq, ok := out[p]
			if !ok {
				seq = make([]bool, n)
				out[p] = seq
			}
			seq[i-from] = true
		}
	}
	return out
}

// HoldingStats summarizes elephant-state holding times across flows.
type HoldingStats struct {
	// PerFlow maps each flow to its average holding time in the
	// elephant state, in measurement intervals.
	PerFlow map[netip.Prefix]float64
	// MeanHolding is the across-flow mean of the per-flow averages, in
	// intervals.
	MeanHolding float64
	// SingleIntervalFlows counts flows whose every stay in the
	// elephant state lasted exactly one interval.
	SingleIntervalFlows int
	// Flows is the number of flows that entered the elephant state at
	// least once in the window.
	Flows int
}

// runLengths returns the lengths of maximal true-runs in seq. A run
// still open at the window edge counts with its observed length, as the
// paper's busy-period analysis does.
func runLengths(seq []bool) []int {
	var runs []int
	cur := 0
	for _, s := range seq {
		if s {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// HoldingTimes computes holding-time statistics over result indices
// [from, to) — typically the five-hour busy period.
func HoldingTimes(results []core.Result, from, to int) HoldingStats {
	seqs := StateSequences(results, from, to)
	st := HoldingStats{PerFlow: make(map[netip.Prefix]float64, len(seqs))}
	var sum float64
	for p, seq := range seqs {
		runs := runLengths(seq)
		if len(runs) == 0 {
			continue
		}
		var total, maxRun int
		for _, r := range runs {
			total += r
			if r > maxRun {
				maxRun = r
			}
		}
		avg := float64(total) / float64(len(runs))
		st.PerFlow[p] = avg
		sum += avg
		st.Flows++
		if maxRun == 1 {
			st.SingleIntervalFlows++
		}
	}
	if st.Flows > 0 {
		st.MeanHolding = sum / float64(st.Flows)
	}
	return st
}

// HoldingHistogram bins the per-flow average holding times into unit
// (one-interval) bins over [0, maxIntervals), reproducing the x-axis of
// Figure 1(c).
func (h HoldingStats) HoldingHistogram(maxIntervals int) []int {
	bins := make([]int, maxIntervals)
	for _, avg := range h.PerFlow {
		i := int(avg)
		if i >= maxIntervals {
			i = maxIntervals - 1
		}
		bins[i]++
	}
	return bins
}

// BusyWindow locates the contiguous window of the given length (in
// intervals) with maximum total traffic, returning [from, to). It
// reproduces the paper's "five hour busy period" selection. An error is
// returned when the result sequence is shorter than the window.
func BusyWindow(results []core.Result, window int) (int, int, error) {
	if window <= 0 {
		return 0, 0, fmt.Errorf("analysis: BusyWindow: non-positive window %d", window)
	}
	if len(results) < window {
		return 0, 0, fmt.Errorf("analysis: BusyWindow: %d results < window %d", len(results), window)
	}
	var cur float64
	for i := 0; i < window; i++ {
		cur += results[i].TotalLoad
	}
	best, bestAt := cur, 0
	for i := window; i < len(results); i++ {
		cur += results[i].TotalLoad - results[i-window].TotalLoad
		if cur > best {
			best, bestAt = cur, i-window+1
		}
	}
	return bestAt, bestAt + window, nil
}

// CountSeries extracts the per-interval elephant counts (Figure 1(a)).
func CountSeries(results []core.Result) []int {
	out := make([]int, len(results))
	for i := range results {
		out[i] = results[i].ElephantCount()
	}
	return out
}

// FractionSeries extracts the per-interval fraction of total traffic
// apportioned to elephants (Figure 1(b)).
func FractionSeries(results []core.Result) []float64 {
	out := make([]float64, len(results))
	for i := range results {
		out[i] = results[i].LoadFraction()
	}
	return out
}

// MeanInt returns the mean of an int series (0 for empty input).
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s int
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// MeanFloat returns the mean of a float series (0 for empty input).
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TransitionCounts tallies the per-interval transitions of the two-state
// process over [from, to): promotions (mouse→elephant), demotions
// (elephant→mouse) and steady states. A measure of churn.
type TransitionCounts struct {
	Promotions, Demotions int
	SteadyElephant        int
}

// Transitions computes TransitionCounts over [from, to).
func Transitions(results []core.Result, from, to int) TransitionCounts {
	seqs := StateSequences(results, from, to)
	var tc TransitionCounts
	for _, seq := range seqs {
		for i := 1; i < len(seq); i++ {
			switch {
			case seq[i] && !seq[i-1]:
				tc.Promotions++
			case !seq[i] && seq[i-1]:
				tc.Demotions++
			case seq[i] && seq[i-1]:
				tc.SteadyElephant++
			}
		}
		if len(seq) > 0 && seq[0] {
			tc.Promotions++ // first appearance counts as a promotion
		}
	}
	return tc
}

// SortedHoldingTimes returns the per-flow average holding times sorted
// ascending, for quantile reporting.
func (h HoldingStats) SortedHoldingTimes() []float64 {
	out := make([]float64, 0, len(h.PerFlow))
	for _, v := range h.PerFlow {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
