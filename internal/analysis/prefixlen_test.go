package analysis

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

func TestPrefixLengths(t *testing.T) {
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	s := agg.NewSeries(start, time.Minute, 2)
	p8 := netip.MustParsePrefix("9.0.0.0/8")
	p16 := netip.MustParsePrefix("172.16.0.0/16")
	p24 := netip.MustParsePrefix("192.0.2.0/24")
	v6 := netip.MustParsePrefix("2001:db8::/32")
	s.SetBandwidth(p8, 0, 10)
	s.SetBandwidth(p16, 0, 100)
	s.SetBandwidth(p24, 1, 200)
	s.SetBandwidth(v6, 0, 5)

	res := []core.Result{
		{Interval: 0, Elephants: core.NewElephantSet(p16, v6)},
		{Interval: 1, Elephants: core.NewElephantSet(p16, p24)},
	}
	st := PrefixLengths(res, s)

	if st.ActiveSlash8 != 1 || st.ElephantSlash8 != 0 {
		t.Errorf("slash8: active=%d elephant=%d", st.ActiveSlash8, st.ElephantSlash8)
	}
	if st.ActiveLengths[8] != 1 || st.ActiveLengths[16] != 1 || st.ActiveLengths[24] != 1 {
		t.Errorf("active lengths: %v", st.ActiveLengths)
	}
	// v6 must be excluded from the IPv4 histograms.
	if st.ElephantLengths[32] != 0 {
		t.Errorf("v6 leaked into the length histogram")
	}
	if st.MinLen != 16 || st.MaxLen != 24 {
		t.Errorf("range = /%d-/%d, want /16-/24", st.MinLen, st.MaxLen)
	}
	if st.TotalElephantFlows() != 2 {
		t.Errorf("TotalElephantFlows = %d, want 2 (v4 only)", st.TotalElephantFlows())
	}
}

func TestPrefixLengthsNoElephants(t *testing.T) {
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	s := agg.NewSeries(start, time.Minute, 1)
	st := PrefixLengths([]core.Result{{}}, s)
	if st.MinLen != 0 || st.MaxLen != 0 || st.TotalElephantFlows() != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}
