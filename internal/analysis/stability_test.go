package analysis

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/core"
)

func TestStabilityFrozenSet(t *testing.T) {
	res := resultsFromPattern(map[int]string{0: "EEEE", 1: "EEEE"})
	st := Stability(res)
	if st.MeanJaccard != 1 || st.MinJaccard != 1 || st.MeanTurnover != 0 {
		t.Errorf("frozen set: %+v", st)
	}
}

func TestStabilityFullChurn(t *testing.T) {
	// Alternating disjoint sets: jaccard 0, turnover 2 per step.
	res := resultsFromPattern(map[int]string{0: "E.E.", 1: ".E.E"})
	st := Stability(res)
	if st.MeanJaccard != 0 || st.MinJaccard != 0 {
		t.Errorf("disjoint sets: %+v", st)
	}
	if st.MeanTurnover != 2 {
		t.Errorf("turnover = %v, want 2", st.MeanTurnover)
	}
}

func TestStabilityPartial(t *testing.T) {
	// {0,1} -> {0,2}: inter 1, union 3 -> jaccard 1/3, turnover 2.
	res := resultsFromPattern(map[int]string{0: "EE", 1: "E.", 2: ".E"})
	st := Stability(res)
	if math.Abs(st.MeanJaccard-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v, want 1/3", st.MeanJaccard)
	}
	if st.MeanTurnover != 2 {
		t.Errorf("turnover = %v", st.MeanTurnover)
	}
}

func TestStabilityShortInput(t *testing.T) {
	if st := Stability([]core.Result{{}}); st != (SetStability{}) {
		t.Errorf("short input: %+v", st)
	}
}

func TestStabilityEmptySets(t *testing.T) {
	res := []core.Result{
		{Elephants: core.ElephantSet{}},
		{Elephants: core.ElephantSet{}},
	}
	st := Stability(res)
	if st.MeanJaccard != 1 {
		t.Errorf("two empty sets are identical: %+v", st)
	}
}

func snapOf(vals ...float64) map[netip.Prefix]float64 {
	m := make(map[netip.Prefix]float64)
	for i, v := range vals {
		m[pfx(i)] = v
	}
	return m
}

func TestRankCorrelationPerfect(t *testing.T) {
	a := snapOf(10, 20, 30, 40)
	b := snapOf(1, 2, 3, 4) // same order, different scale
	tau, n := RankCorrelation(a, b)
	if n != 4 || tau != 1 {
		t.Errorf("tau = %v, n = %d", tau, n)
	}
}

func TestRankCorrelationReversed(t *testing.T) {
	a := snapOf(10, 20, 30)
	b := snapOf(30, 20, 10)
	tau, _ := RankCorrelation(a, b)
	if tau != -1 {
		t.Errorf("tau = %v, want -1", tau)
	}
}

func TestRankCorrelationCommonOnly(t *testing.T) {
	a := map[netip.Prefix]float64{pfx(0): 1, pfx(1): 2, pfx(9): 5}
	b := map[netip.Prefix]float64{pfx(0): 10, pfx(1): 20, pfx(8): 7}
	tau, n := RankCorrelation(a, b)
	if n != 2 || tau != 1 {
		t.Errorf("tau = %v over n = %d common flows", tau, n)
	}
}

func TestRankCorrelationDegenerate(t *testing.T) {
	if tau, n := RankCorrelation(snapOf(1), snapOf(2)); tau != 0 || n != 1 {
		t.Errorf("single common flow: %v, %d", tau, n)
	}
	if tau, n := RankCorrelation(nil, nil); tau != 0 || n != 0 {
		t.Errorf("empty: %v, %d", tau, n)
	}
}

func TestRankCorrelationTies(t *testing.T) {
	// Ties count as neither concordant nor discordant (tau-a).
	a := snapOf(1, 1, 2)
	b := snapOf(5, 6, 7)
	tau, _ := RankCorrelation(a, b)
	// Pairs: (0,1) tied in a; (0,2) and (1,2) concordant -> 2/3.
	if math.Abs(tau-2.0/3) > 1e-12 {
		t.Errorf("tau = %v, want 2/3", tau)
	}
}
