// Package obs is the pipeline's instrumentation core: allocation-free
// counters, gauges and fixed-boundary histograms behind a registry that
// renders through report.MetricsWriter, plus the per-link flight
// recorder journalling recent interval traces.
//
// The package is deliberately dependency-free (stdlib plus the repo's
// own core and report packages) and split along the hot/cold boundary:
// everything on the per-interval path — Counter.Add, Gauge.Set,
// Histogram.Observe, LinkMetrics.ObserveStep, FlightRecorder.Record —
// is atomic or copies into pre-allocated storage and performs zero
// allocations, while rendering and snapshotting (the scrape and debug
// paths) may allocate freely. The resident daemon attaches a
// LinkMetrics per link as the pipeline's core.StageObserver; batch
// paths pass no observer and pay nothing.
//
// Registration is configuration, not data flow: the New* registry
// methods panic on programmer error (a family re-declared under a
// different type, a duplicate label set) exactly as malformed constant
// initialisation would, so misuse fails loudly at wiring time rather
// than silently corrupting the exposition.
package obs
