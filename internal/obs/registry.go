package obs

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/report"
)

// Registry holds metric families and their series and renders them as
// one exposition page. Families render in first-registration order and
// series within a family in registration order, so a daemon whose links
// register in a fixed order produces byte-stable scrapes.
//
// Registration (the New* methods) locks the registry; the returned
// Counter/Gauge/Histogram values are then updated lock-free. Render
// takes a read lock, so scrapes race registration safely.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string
	bounds          []float64 // histogram families only
	series          []series
	keys            map[string]bool // rendered label signature → registered
}

type series struct {
	labels  []report.Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// NewCounter registers (or extends) the counter family name and returns
// the series for the given label set. Panics on wiring errors: a family
// re-declared under a different type, or a duplicate label set.
func (r *Registry) NewCounter(name, help string, labels ...report.Label) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", nil, series{labels: labels, counter: c})
	return c
}

// NewGauge registers (or extends) the gauge family name and returns the
// series for the given label set. Panics on wiring errors.
func (r *Registry) NewGauge(name, help string, labels ...report.Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", nil, series{labels: labels, gauge: g})
	return g
}

// NewHistogramSeries registers (or extends) the histogram family name
// and returns the series for the given label set. Every series of a
// family shares the family's bucket boundaries — the first registration
// fixes them, and later registrations must pass an equal slice. Panics
// on wiring errors.
func (r *Registry) NewHistogramSeries(name, help string, bounds []float64, labels ...report.Label) *Histogram {
	h := NewHistogram(bounds)
	r.add(name, help, "histogram", h.bounds, series{labels: labels, hist: h})
	return h
}

func (r *Registry) add(name, help, typ string, bounds []float64, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, keys: make(map[string]bool)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: family %q registered as %s, already declared %s", name, typ, f.typ))
	}
	if typ == "histogram" && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram family %q registered with different bucket boundaries", name))
	}
	key := labelKey(s.labels)
	if f.keys[key] {
		panic(fmt.Sprintf("obs: family %q: duplicate series {%s}", name, key))
	}
	f.keys[key] = true
	f.series = append(f.series, s)
}

// Render writes every family to m in registration order. Values are
// loaded atomically per series; a scrape racing updates sees each
// sample's latest value (the page is per-sample consistent, as any
// atomic-backed exporter's is).
func (r *Registry) Render(m *report.MetricsWriter) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var counts []uint64
	for _, f := range r.families {
		m.Family(f.name, f.help, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				m.Sample(f.name, s.labels, float64(s.counter.Value()))
			case s.gauge != nil:
				m.Sample(f.name, s.labels, s.gauge.Value())
			case s.hist != nil:
				if cap(counts) < len(f.bounds)+1 {
					counts = make([]uint64, len(f.bounds)+1)
				}
				counts = counts[:len(f.bounds)+1]
				s.hist.snapshot(counts)
				m.Histogram(f.name, s.labels, f.bounds, counts, s.hist.Sum())
			}
		}
	}
}

// labelKey renders a label set's identity for duplicate detection.
func labelKey(labels []report.Label) string {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
