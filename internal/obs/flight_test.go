package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	if f.Cap() != 3 || f.Len() != 0 {
		t.Fatalf("fresh recorder cap=%d len=%d", f.Cap(), f.Len())
	}
	for i := 0; i < 2; i++ {
		f.Record(IntervalTrace{Interval: i})
	}
	got := f.Snapshot()
	if len(got) != 2 || got[0].Interval != 0 || got[1].Interval != 1 {
		t.Fatalf("partial snapshot = %+v", got)
	}
	for i := 2; i < 7; i++ {
		f.Record(IntervalTrace{Interval: i})
	}
	got = f.Snapshot()
	if len(got) != 3 {
		t.Fatalf("full snapshot len = %d", len(got))
	}
	for i, tr := range got {
		if tr.Interval != 4+i { // oldest retained is 4: 7 recorded, last 3 kept
			t.Errorf("snapshot[%d].Interval = %d, want %d", i, tr.Interval, 4+i)
		}
	}
}

func TestFlightRecorderMinimumCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Record(IntervalTrace{Interval: 1})
	f.Record(IntervalTrace{Interval: 2})
	got := f.Snapshot()
	if len(got) != 1 || got[0].Interval != 2 {
		t.Errorf("snapshot = %+v, want just interval 2", got)
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(IntervalTrace{Interval: 0, StepNanos: 1500, RawThreshold: 2e6, ActiveFlows: 9})
	f.Record(IntervalTrace{Interval: 1, Promoted: 2, WatermarkLagNanos: 7})
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []IntervalTrace
	for sc.Scan() {
		var tr IntervalTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("line %d: %v", len(lines), err)
		}
		lines = append(lines, tr)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Interval != 0 || lines[0].StepNanos != 1500 || lines[0].RawThreshold != 2e6 || lines[0].ActiveFlows != 9 {
		t.Errorf("line 0 round-trip = %+v", lines[0])
	}
	if lines[1].Promoted != 2 || lines[1].WatermarkLagNanos != 7 {
		t.Errorf("line 1 round-trip = %+v", lines[1])
	}
	// Field names are a stable debug contract.
	var raw map[string]any
	var buf2 bytes.Buffer
	if err := f.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	first, _, _ := bytes.Cut(buf2.Bytes(), []byte("\n"))
	if err := json.Unmarshal(first, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"interval", "sealed_unix_nanos", "step_nanos", "raw_threshold_bps", "watermark_lag_nanos", "promoted", "demoted"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("JSONL missing field %q", key)
		}
	}
}

func TestLinkMetricsObserveStep(t *testing.T) {
	r := NewRegistry()
	m := NewLinkMetrics(r, "a@0", 1, DefaultStageBounds())
	m.ObserveStep(core.StepObservation{
		StepNanos: 2_000_000, DetectNanos: 1_000_000, ClassifyNanos: 500_000,
		RawThreshold: 3e6, Elephants: 4, Promoted: 2, Demoted: 1,
	})
	m.ObserveStep(core.StepObservation{
		StepNanos: 3_000_000, RawThreshold: 4e6, Elephants: 5, Promoted: 1,
	})
	if m.Step.Count() != 2 || m.Detect.Count() != 2 || m.Classify.Count() != 2 {
		t.Errorf("histogram counts = %d/%d/%d, want 2 each", m.Step.Count(), m.Detect.Count(), m.Classify.Count())
	}
	if got := m.Step.Sum(); got != 0.005 {
		t.Errorf("step sum = %v, want 0.005", got)
	}
	if m.Promoted.Value() != 3 || m.Demoted.Value() != 1 {
		t.Errorf("churn totals = +%d/-%d, want +3/-1", m.Promoted.Value(), m.Demoted.Value())
	}
	if m.RawThreshold.Value() != 4e6 {
		t.Errorf("raw-threshold gauge = %v, want last observation's 4e6", m.RawThreshold.Value())
	}
	if o := m.Last(); o.Elephants != 5 || o.Promoted != 1 {
		t.Errorf("Last() = %+v, want the second observation", o)
	}
}

// The hot-path operations must not allocate: they run per interval
// inside the live pipeline, whose step is pinned at zero allocations.
func TestHotPathAllocs(t *testing.T) {
	h := NewHistogram(DefaultStageBounds())
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.001) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	r := NewRegistry()
	m := NewLinkMetrics(r, "a@0", 1, DefaultStageBounds())
	o := core.StepObservation{StepNanos: 1000, DetectNanos: 400, ClassifyNanos: 300, Promoted: 1}
	if n := testing.AllocsPerRun(100, func() { m.ObserveStep(o) }); n != 0 {
		t.Errorf("LinkMetrics.ObserveStep allocates %v/op", n)
	}
	f := NewFlightRecorder(8)
	tr := IntervalTrace{Interval: 1, StepNanos: 1000}
	if n := testing.AllocsPerRun(100, func() { f.Record(tr) }); n != 0 {
		t.Errorf("FlightRecorder.Record allocates %v/op", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultStageBounds())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkObserveStep(b *testing.B) {
	r := NewRegistry()
	m := NewLinkMetrics(r, "a@0", 1, DefaultStageBounds())
	o := core.StepObservation{StepNanos: 150_000, DetectNanos: 90_000, ClassifyNanos: 40_000, Promoted: 1, Demoted: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ObserveStep(o)
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(256)
	tr := IntervalTrace{Interval: 1, StepNanos: 150_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Interval = i
		f.Record(tr)
	}
}
