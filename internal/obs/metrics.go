package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Store replaces the count. It exists for mirroring: when the
// authoritative monotone count lives elsewhere (a pipeline-internal
// atomic, say), a scrape-time Store keeps the exposed series current
// without threading the metric into the hot path. Callers must only
// ever store non-decreasing values.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is a settable float64. The zero value reads 0; all methods are
// safe for concurrent use and allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-boundary histogram: observations are folded into
// len(bounds)+1 buckets (bucket i counts v ≤ bounds[i]; the last bucket
// is the +Inf overflow). Observe is lock-free and allocation-free —
// a binary search over the boundaries plus two atomic updates — so it
// sits on the per-interval hot path.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; raw per-bucket, not cumulative
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending bucket
// boundaries. It panics if bounds is empty or not strictly increasing —
// boundary sets are wiring-time constants.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram: no bucket boundaries")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: NewHistogram: boundaries not increasing at %d (%v after %v)", i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot loads the raw per-bucket counts into dst (len(bounds)+1).
func (h *Histogram) snapshot(dst []uint64) {
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
}

// ExpBuckets returns n exponentially spaced histogram boundaries:
// start, start·factor, start·factor², … It panics unless start > 0,
// factor > 1 and n ≥ 1 — boundary sets are wiring-time constants.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}
