package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/report"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(2.5)
	g.Set(-7)
	if g.Value() != -7 {
		t.Errorf("gauge = %v, want -7", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	// le semantics: v ≤ bound. 0.5,1 → bucket0; 1.0001,10 → bucket1;
	// 99,100 → bucket2; 101,1e9 → overflow.
	want := []uint64{2, 2, 2, 2}
	got := make([]uint64, 4)
	h.snapshot(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if want := 0.5 + 1 + 1.0001 + 10 + 99 + 100 + 101 + 1e9; h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ExpBuckets(0, 2, 3) did not panic")
			}
		}()
		ExpBuckets(0, 2, 3)
	}()
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("d_intervals_total", "Intervals.", report.Label{Name: "link", Value: "a@0"})
	g := r.NewGauge("d_lag_seconds", "Lag.", report.Label{Name: "link", Value: "a@0"})
	h := r.NewHistogramSeries("d_step_seconds", "Step.", []float64{0.01, 0.1},
		report.Label{Name: "link", Value: "a@0"})
	c.Add(3)
	g.Set(0.25)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(5)

	var buf bytes.Buffer
	m := report.NewMetricsWriter(&buf)
	r.Render(m)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP d_intervals_total Intervals.
# TYPE d_intervals_total counter
d_intervals_total{link="a@0"} 3
# HELP d_lag_seconds Lag.
# TYPE d_lag_seconds gauge
d_lag_seconds{link="a@0"} 0.25
# HELP d_step_seconds Step.
# TYPE d_step_seconds histogram
d_step_seconds_bucket{link="a@0",le="0.01"} 2
d_step_seconds_bucket{link="a@0",le="0.1"} 2
d_step_seconds_bucket{link="a@0",le="+Inf"} 3
d_step_seconds_sum{link="a@0"} 5.01
d_step_seconds_count{link="a@0"} 3
`
	if got := buf.String(); got != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", got, want)
	}
	if err := report.LintExposition(&buf); err != nil {
		t.Errorf("rendered page failed lint: %v", err)
	}
}

func TestRegistryRenderByteStable(t *testing.T) {
	r := NewRegistry()
	for _, link := range []string{"b@1", "a@0"} { // registration order, not sorted
		NewLinkMetrics(r, link, 1, DefaultStageBounds())
	}
	render := func() string {
		var buf bytes.Buffer
		m := report.NewMetricsWriter(&buf)
		r.Render(m)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("two quiet renders differ")
	}
	if err := report.LintExposition(strings.NewReader(a)); err != nil {
		t.Errorf("page failed lint: %v", err)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("m", "h")
	mustPanic("type mismatch", func() { r.NewGauge("m", "h") })
	mustPanic("duplicate series", func() { r.NewCounter("m", "h") })
	r.NewHistogramSeries("h", "h", []float64{1, 2}, report.Label{Name: "link", Value: "a"})
	mustPanic("bounds mismatch", func() {
		r.NewHistogramSeries("h", "h", []float64{1, 3}, report.Label{Name: "link", Value: "b"})
	})
}

// TestRegistryConcurrentRenderAndRegister: scrapes racing link
// registration must not tear (run under -race).
func TestRegistryConcurrentRenderAndRegister(t *testing.T) {
	r := NewRegistry()
	NewLinkMetrics(r, "seed@0", 1, DefaultStageBounds())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			NewLinkMetrics(r, fmt.Sprintf("link%d@0", i), 1, DefaultStageBounds())
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		m := report.NewMetricsWriter(&buf)
		r.Render(m)
		if err := m.Err(); err != nil {
			t.Errorf("render %d: %v", i, err)
		}
		if err := report.LintExposition(&buf); err != nil {
			t.Errorf("render %d failed lint: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
