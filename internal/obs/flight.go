package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// IntervalTrace is one sealed interval's flight-recorder entry: the
// step observation's scalars plus the seal wall time and watermark lag
// the daemon stamps on. Field names are stable — the trace is served as
// JSONL from the debug endpoint and dumped on signal.
type IntervalTrace struct {
	Interval          int     `json:"interval"`
	SealedUnixNanos   int64   `json:"sealed_unix_nanos"`
	DetectNanos       int64   `json:"detect_nanos"`
	ClassifyNanos     int64   `json:"classify_nanos"`
	FinalizeNanos     int64   `json:"finalize_nanos"`
	StepNanos         int64   `json:"step_nanos"`
	RawThreshold      float64 `json:"raw_threshold_bps"`
	Threshold         float64 `json:"threshold_bps"`
	TotalLoad         float64 `json:"total_load_bps"`
	ElephantLoad      float64 `json:"elephant_load_bps"`
	ActiveFlows       int     `json:"active_flows"`
	Elephants         int     `json:"elephants"`
	Promoted          int     `json:"promoted"`
	Demoted           int     `json:"demoted"`
	WatermarkLagNanos int64   `json:"watermark_lag_nanos"`
	StageOverlapNanos int64   `json:"stage_overlap_nanos"`
}

// DefaultFlightRecorder is the default per-link flight-recorder
// capacity: 256 five-minute intervals ≈ 21 hours of history, a few
// tens of kilobytes per link.
const DefaultFlightRecorder = 256

// FlightRecorder journals the last N interval traces in a fixed ring.
// Record copies the trace into pre-allocated storage under a mutex —
// no allocation, bounded hold time — so it rides the per-interval hot
// path; Snapshot and WriteJSONL copy out under the lock and format
// outside it, so a slow debug reader never stalls recording.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []IntervalTrace
	next int // slot the next Record writes
	n    int // filled entries, ≤ len(buf)
}

// NewFlightRecorder returns a recorder retaining the last n traces
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{buf: make([]IntervalTrace, n)}
}

// Record appends one trace, evicting the oldest when full.
func (f *FlightRecorder) Record(tr IntervalTrace) {
	f.mu.Lock()
	f.buf[f.next] = tr
	f.next = (f.next + 1) % len(f.buf)
	if f.n < len(f.buf) {
		f.n++
	}
	f.mu.Unlock()
}

// Len reports how many traces are retained.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Cap reports the ring's capacity.
func (f *FlightRecorder) Cap() int { return len(f.buf) }

// Snapshot returns the retained traces, oldest first.
func (f *FlightRecorder) Snapshot() []IntervalTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]IntervalTrace, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.buf)
	}
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(start+i)%len(f.buf)]
	}
	return out
}

// WriteJSONL writes the retained traces to w, oldest first, one JSON
// object per line.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, tr := range f.Snapshot() {
		if err := enc.Encode(tr); err != nil {
			return err
		}
	}
	return nil
}
