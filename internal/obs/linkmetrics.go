package obs

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/report"
)

// LinkMetrics is one link's per-interval instrumentation: stage-latency
// histograms, churn counters and threshold/lag gauges, all registered
// under link-labelled series of shared families. It implements
// core.StageObserver; ObserveStep is atomic-only and allocation-free,
// so it is safe to attach on the live per-interval hot path.
type LinkMetrics struct {
	// Step, Detect and Classify are the stage-latency histograms
	// (seconds): the whole Step call, threshold detection, and the
	// classifier call respectively.
	Step, Detect, Classify *Histogram
	// Promoted and Demoted count elephant-set membership churn across
	// all observed intervals.
	Promoted, Demoted *Counter
	// RawThreshold is the last interval's detected θ(t) in bit/s.
	// (The elephant-set size itself is already exposed by the daemon's
	// store-backed elephantd_link_elephants family; the observation still
	// carries it for flight-recorder traces.)
	RawThreshold *Gauge
	// WatermarkLag is the link's interval watermark lag in seconds —
	// newest record export time minus the newest sealed interval edge.
	// The pipeline does not know it; the daemon sets it at scrape time
	// from the live pipeline's accumulator.
	WatermarkLag *Gauge
	// Stalls counts record sends that found the link's queue full and
	// had to block. Mirrored from the pipeline's counter at scrape time
	// via Store (backpressure is counted, never dropped).
	Stalls *Counter
	// ShardRecords holds one gauge per accumulation shard (labelled
	// link+shard): in-window records routed to that shard. Refreshed at
	// scrape time via SetShardRecords.
	ShardRecords []*Gauge
	// ShardImbalance is max/mean of the per-shard record counts — 1.0
	// is a perfectly balanced link, P is everything hashing to one of P
	// shards. Computed by SetShardRecords.
	ShardImbalance *Gauge
	// StageOverlap is the per-interval overlap histogram (seconds): how
	// long the classify stage ran while the accumulate stage was also
	// making progress. Zero on an idle or serial link; approaching the
	// classify-stage latency when the pipeline stages genuinely overlap.
	StageOverlap *Histogram

	// last is the most recent observation, kept for same-goroutine
	// consumers via Last.
	last core.StepObservation
}

// NewLinkMetrics registers one link's series (labelled link=link) on r
// and returns the bundle. shards is the link's accumulation shard count
// (clamped to ≥1) and sizes the per-shard record gauges. All links
// share the family declarations and the stage histograms share bounds —
// exponential boundaries suiting per-interval stage latencies
// (defaulting via DefaultStageBounds).
func NewLinkMetrics(r *Registry, link string, shards int, bounds []float64) *LinkMetrics {
	lbl := report.Label{Name: "link", Value: link}
	if shards < 1 {
		shards = 1
	}
	perShard := make([]*Gauge, shards)
	for i := range perShard {
		perShard[i] = r.NewGauge("elephantd_link_shard_records",
			"In-window records routed to one accumulation shard.",
			lbl, report.Label{Name: "shard", Value: strconv.Itoa(i)})
	}
	return &LinkMetrics{
		Step: r.NewHistogramSeries("elephantd_step_duration_seconds",
			"Whole pipeline step wall time per interval.", bounds, lbl),
		Detect: r.NewHistogramSeries("elephantd_detect_duration_seconds",
			"Threshold-detection stage wall time per interval.", bounds, lbl),
		Classify: r.NewHistogramSeries("elephantd_classify_duration_seconds",
			"Classification stage wall time per interval.", bounds, lbl),
		Promoted: r.NewCounter("elephantd_link_promoted_total",
			"Flows promoted into the elephant set.", lbl),
		Demoted: r.NewCounter("elephantd_link_demoted_total",
			"Flows demoted out of the elephant set.", lbl),
		RawThreshold: r.NewGauge("elephantd_link_raw_threshold_bps",
			"Last interval's detected raw threshold theta(t) (bit/s).", lbl),
		WatermarkLag: r.NewGauge("elephantd_link_watermark_lag_seconds",
			"Interval watermark lag: newest record export time minus newest sealed interval edge.", lbl),
		Stalls: r.NewCounter("elephantd_link_stalls_total",
			"Record sends that found the link queue full and blocked.", lbl),
		ShardRecords: perShard,
		ShardImbalance: r.NewGauge("elephantd_link_shard_imbalance",
			"Max/mean of per-shard in-window record counts (1.0 = balanced).", lbl),
		StageOverlap: r.NewHistogramSeries("elephantd_stage_overlap_seconds",
			"Classify-stage wall time overlapped with the accumulate stage, per interval.", bounds, lbl),
	}
}

// SetShardRecords refreshes the per-shard record gauges and the derived
// imbalance gauge from one ShardRecords reading. Extra counts beyond
// the registered shard gauges are ignored (they cannot occur when the
// link was registered with its true shard count); missing counts leave
// the remaining gauges at their last value.
func (m *LinkMetrics) SetShardRecords(counts []uint64) {
	var sum uint64
	var max uint64
	for i, n := range counts {
		if i < len(m.ShardRecords) {
			m.ShardRecords[i].Set(float64(n))
		}
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 || len(counts) == 0 {
		m.ShardImbalance.Set(1)
		return
	}
	mean := float64(sum) / float64(len(counts))
	m.ShardImbalance.Set(float64(max) / mean)
}

// DefaultStageBounds are the stage-histogram bucket boundaries used by
// the daemon: 1 µs up to ~4 s, exponential with factor 4.
func DefaultStageBounds() []float64 { return ExpBuckets(1e-6, 4, 12) }

// ObserveStep implements core.StageObserver: fold one interval's digest
// into the histograms, counters and gauges. Atomic-only; no allocation.
func (m *LinkMetrics) ObserveStep(o core.StepObservation) {
	m.last = o
	m.Step.Observe(float64(o.StepNanos) / 1e9)
	m.Detect.Observe(float64(o.DetectNanos) / 1e9)
	m.Classify.Observe(float64(o.ClassifyNanos) / 1e9)
	m.Promoted.Add(uint64(o.Promoted))
	m.Demoted.Add(uint64(o.Demoted))
	m.RawThreshold.Set(o.RawThreshold)
}

// Last returns the most recent observation. Unlike the atomic-backed
// metrics it is NOT synchronized: call it only from the goroutine that
// drives the pipeline (a result hook runs there, right after the
// observer — the daemon builds flight-recorder traces from it).
func (m *LinkMetrics) Last() core.StepObservation { return m.last }

var _ core.StageObserver = (*LinkMetrics)(nil)
