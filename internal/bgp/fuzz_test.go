package bgp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText drives the table parser with arbitrary text: no panics,
// and accepted tables must survive a write/read roundtrip.
func FuzzReadText(f *testing.F) {
	f.Add("10.0.0.0/8 100 tier1\n192.0.2.0/24 65000 tier3\n")
	f.Add("# comment\n\n198.51.100.0/24\n")
	f.Add("garbage\n")
	f.Add("10.0.0.0/8 -1 tier1\n")

	f.Fuzz(func(t *testing.T, text string) {
		tab, err := ReadText(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tab.WriteText(&buf); err != nil {
			t.Fatalf("write of accepted table failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-read of written table failed: %v", err)
		}
		if back.Len() != tab.Len() {
			t.Fatalf("roundtrip length %d != %d", back.Len(), tab.Len())
		}
	})
}
