package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
)

func benchTable(b *testing.B, routes int) *Table {
	b.Helper()
	t, err := Generate(GenConfig{Routes: routes, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func BenchmarkLookupHit120k(b *testing.B) {
	t := benchTable(b, 120000)
	rng := rand.New(rand.NewSource(2))
	routes := t.Routes()
	probes := make([]netip.Addr, 4096)
	for i := range probes {
		probes[i] = RandomAddrInPrefix(rng, routes[rng.Intn(len(routes))].Prefix)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(probes[i%len(probes)]); !ok {
			b.Fatal("miss on guaranteed hit")
		}
	}
}

func BenchmarkLookupRandom120k(b *testing.B) {
	t := benchTable(b, 120000)
	rng := rand.New(rand.NewSource(3))
	probes := make([]netip.Addr, 4096)
	for i := range probes {
		var a [4]byte
		rng.Read(a[:])
		probes[i] = netip.AddrFrom4(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(probes[i%len(probes)])
	}
}

func BenchmarkInsert(b *testing.B) {
	routes := benchTable(b, 50000).Routes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewTable()
		for _, r := range routes {
			if err := t.Insert(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(routes)), "routes/op")
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GenConfig{Routes: 60000, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
