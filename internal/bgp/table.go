// Package bgp models the routing-table substrate of the reproduction: BGP
// network prefixes with attributes, a binary radix (Patricia) trie for
// longest-prefix match, a text table format, and a synthetic table
// generator calibrated to the prefix-length mix of a 2001 Tier-1 table.
//
// The paper defines a "flow" as the traffic destined to one BGP routing
// table entry; every packet on the link is attributed to a prefix by
// longest-prefix match against this table.
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
)

// Tier classifies the origin AS of a route for the paper's "elephants
// belong to other Tier-1 ISPs" analysis.
type Tier uint8

// Tier values.
const (
	TierUnknown Tier = iota
	Tier1            // another backbone provider
	Tier2            // regional provider
	Tier3            // stub / enterprise
)

// String returns a short name for the tier.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Tier3:
		return "tier3"
	}
	return "unknown"
}

// ParseTier converts a string produced by Tier.String back to a Tier.
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tier1":
		return Tier1, nil
	case "tier2":
		return Tier2, nil
	case "tier3":
		return Tier3, nil
	case "unknown", "":
		return TierUnknown, nil
	}
	return TierUnknown, fmt.Errorf("bgp: unknown tier %q", s)
}

// Route is one routing table entry.
type Route struct {
	Prefix   netip.Prefix
	OriginAS uint32
	Tier     Tier
}

// Table is an immutable-after-build BGP routing table with longest-prefix
// match. The zero value is an empty table; call Insert to populate it and
// do not mutate it concurrently with lookups.
type Table struct {
	v4     trieNode
	routes []Route
	byPfx  map[netip.Prefix]int // index into routes
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{byPfx: make(map[netip.Prefix]int)}
}

// Len reports the number of routes.
func (t *Table) Len() int { return len(t.routes) }

// Routes returns the table's routes in insertion order. The slice is
// shared; callers must not modify it.
func (t *Table) Routes() []Route { return t.routes }

// Insert adds or replaces a route. Only IPv4 prefixes participate in
// longest-prefix match; IPv6 routes are stored but matched exactly (the
// paper's traces are IPv4).
func (t *Table) Insert(r Route) error {
	if !r.Prefix.IsValid() {
		return fmt.Errorf("bgp: invalid prefix %v", r.Prefix)
	}
	r.Prefix = r.Prefix.Masked()
	if i, ok := t.byPfx[r.Prefix]; ok {
		t.routes[i] = r
	} else {
		t.byPfx[r.Prefix] = len(t.routes)
		t.routes = append(t.routes, r)
	}
	if r.Prefix.Addr().Is4() {
		t.v4.insert(v4bits(r.Prefix.Addr()), r.Prefix.Bits(), t.byPfx[r.Prefix])
	}
	return nil
}

// Lookup returns the longest-prefix-match route for addr, or ok=false when
// no route covers it.
func (t *Table) Lookup(addr netip.Addr) (Route, bool) {
	if addr.Is4() || addr.Is4In6() {
		if addr.Is4In6() {
			addr = addr.Unmap()
		}
		idx, ok := t.v4.lookup(v4bits(addr))
		if !ok {
			return Route{}, false
		}
		return t.routes[idx], true
	}
	// Exact-match fallback for IPv6: walk candidate prefix lengths.
	for bits := 128; bits >= 0; bits-- {
		p, err := addr.Prefix(bits)
		if err != nil {
			continue
		}
		if i, ok := t.byPfx[p]; ok {
			return t.routes[i], true
		}
	}
	return Route{}, false
}

// PrefixLengthHistogram returns a 33-element histogram of IPv4 prefix
// lengths (index = prefix bits).
func (t *Table) PrefixLengthHistogram() [33]int {
	var h [33]int
	for _, r := range t.routes {
		if r.Prefix.Addr().Is4() {
			h[r.Prefix.Bits()]++
		}
	}
	return h
}

func v4bits(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// trieNode is a node of a binary trie over IPv4 address bits. A fixed
// two-way branch per bit keeps the implementation simple and fast enough
// for table sizes in the 10^5 range; route indices mark terminal entries.
type trieNode struct {
	child [2]*trieNode
	route int // index+1 into routes; 0 = no route here
}

func (n *trieNode) insert(bits uint32, plen int, idx int) {
	cur := n
	for i := 0; i < plen; i++ {
		b := bits >> (31 - i) & 1
		if cur.child[b] == nil {
			cur.child[b] = &trieNode{}
		}
		cur = cur.child[b]
	}
	cur.route = idx + 1
}

func (n *trieNode) lookup(bits uint32) (int, bool) {
	best := 0
	cur := n
	for i := 0; i < 32 && cur != nil; i++ {
		if cur.route != 0 {
			best = cur.route
		}
		cur = cur.child[bits>>(31-i)&1]
	}
	if cur != nil && cur.route != 0 {
		best = cur.route
	}
	if best == 0 {
		return 0, false
	}
	return best - 1, true
}

// WriteText serializes the table in the package's text format:
// one "prefix originAS tier" triple per line, '#' comments allowed.
func (t *Table) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d routes\n", len(t.routes))
	for _, r := range t.routes {
		if _, err := fmt.Fprintf(bw, "%s %d %s\n", r.Prefix, r.OriginAS, r.Tier); err != nil {
			return fmt.Errorf("bgp: writing table: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText parses a table in the text format written by WriteText.
func ReadText(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 1 {
			continue
		}
		p, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", line, err)
		}
		route := Route{Prefix: p}
		if len(fields) > 1 {
			var as uint32
			if _, err := fmt.Sscanf(fields[1], "%d", &as); err != nil {
				return nil, fmt.Errorf("bgp: line %d: bad origin AS %q", line, fields[1])
			}
			route.OriginAS = as
		}
		if len(fields) > 2 {
			tier, err := ParseTier(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bgp: line %d: %w", line, err)
			}
			route.Tier = tier
		}
		if err := t.Insert(route); err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: reading table: %w", err)
	}
	return t, nil
}

// SortedPrefixes returns the table's prefixes sorted by address then
// length; useful for deterministic iteration in tests and reports.
func (t *Table) SortedPrefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(t.routes))
	for _, r := range t.routes {
		out = append(out, r.Prefix)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
