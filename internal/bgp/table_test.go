package bgp

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustInsert(t *testing.T, tab *Table, prefix string, as uint32, tier Tier) {
	t.Helper()
	if err := tab.Insert(Route{Prefix: netip.MustParsePrefix(prefix), OriginAS: as, Tier: tier}); err != nil {
		t.Fatalf("Insert(%s): %v", prefix, err)
	}
}

func TestLookupLongestPrefixMatch(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "10.0.0.0/8", 1, Tier1)
	mustInsert(t, tab, "10.1.0.0/16", 2, Tier2)
	mustInsert(t, tab, "10.1.2.0/24", 3, Tier3)
	mustInsert(t, tab, "10.1.2.128/25", 4, Tier3)

	cases := []struct {
		addr string
		as   uint32
	}{
		{"10.9.9.9", 1},   // only the /8 covers
		{"10.1.9.9", 2},   // /16 beats /8
		{"10.1.2.5", 3},   // /24 beats /16
		{"10.1.2.200", 4}, // /25 beats /24
		{"10.1.2.127", 3}, // below the /25
		{"10.255.255.255", 1},
	}
	for _, tc := range cases {
		r, ok := tab.Lookup(netip.MustParseAddr(tc.addr))
		if !ok {
			t.Errorf("Lookup(%s): no route", tc.addr)
			continue
		}
		if r.OriginAS != tc.as {
			t.Errorf("Lookup(%s) = AS%d, want AS%d", tc.addr, r.OriginAS, tc.as)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "10.0.0.0/8", 1, Tier1)
	if _, ok := tab.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("lookup outside all routes succeeded")
	}
	if _, ok := NewTable().Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("lookup in empty table succeeded")
	}
}

func TestLookupDefaultRoute(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "0.0.0.0/0", 99, Tier1)
	r, ok := tab.Lookup(netip.MustParseAddr("203.0.113.9"))
	if !ok || r.OriginAS != 99 {
		t.Errorf("default route: %+v, ok=%v", r, ok)
	}
}

func TestLookup4In6(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "192.0.2.0/24", 7, Tier2)
	r, ok := tab.Lookup(netip.MustParseAddr("::ffff:192.0.2.5"))
	if !ok || r.OriginAS != 7 {
		t.Errorf("4-in-6 lookup: %+v ok=%v", r, ok)
	}
}

func TestLookupIPv6ExactFallback(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "2001:db8::/32", 8, Tier1)
	r, ok := tab.Lookup(netip.MustParseAddr("2001:db8::1234"))
	if !ok || r.OriginAS != 8 {
		t.Errorf("IPv6 lookup: %+v ok=%v", r, ok)
	}
	if _, ok := tab.Lookup(netip.MustParseAddr("2001:db9::1")); ok {
		t.Error("IPv6 miss matched")
	}
}

func TestInsertReplaces(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "10.0.0.0/8", 1, Tier1)
	mustInsert(t, tab, "10.0.0.0/8", 2, Tier2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replacement", tab.Len())
	}
	r, _ := tab.Lookup(netip.MustParseAddr("10.0.0.1"))
	if r.OriginAS != 2 {
		t.Errorf("AS = %d, want 2 (replaced)", r.OriginAS)
	}
}

func TestInsertMasksHostBits(t *testing.T) {
	tab := NewTable()
	mustInsert(t, tab, "10.1.2.3/16", 5, Tier1) // host bits set
	r, ok := tab.Lookup(netip.MustParseAddr("10.1.99.99"))
	if !ok || r.Prefix != netip.MustParsePrefix("10.1.0.0/16") {
		t.Errorf("masked insert: %+v ok=%v", r, ok)
	}
}

func TestInsertInvalidPrefix(t *testing.T) {
	if err := NewTable().Insert(Route{}); err == nil {
		t.Error("zero prefix accepted")
	}
}

// TestLookupAgainstLinearScan cross-checks the trie against a brute-force
// longest-prefix match over random tables and probes.
func TestLookupAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tab, err := Generate(GenConfig{Routes: 2000, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	routes := tab.Routes()
	linear := func(addr netip.Addr) (Route, bool) {
		best := -1
		for i, r := range routes {
			if r.Prefix.Contains(addr) && (best < 0 || r.Prefix.Bits() > routes[best].Prefix.Bits()) {
				best = i
			}
		}
		if best < 0 {
			return Route{}, false
		}
		return routes[best], true
	}
	for i := 0; i < 3000; i++ {
		var addr netip.Addr
		if i%2 == 0 {
			// Probe inside a random route for guaranteed hits.
			addr = RandomAddrInPrefix(rng, routes[rng.Intn(len(routes))].Prefix)
		} else {
			var b [4]byte
			rng.Read(b[:])
			addr = netip.AddrFrom4(b)
		}
		got, gotOK := tab.Lookup(addr)
		want, wantOK := linear(addr)
		if gotOK != wantOK {
			t.Fatalf("Lookup(%v): ok=%v, linear ok=%v", addr, gotOK, wantOK)
		}
		if gotOK && got.Prefix != want.Prefix {
			t.Fatalf("Lookup(%v) = %v, linear = %v", addr, got.Prefix, want.Prefix)
		}
	}
}

func TestTextRoundtrip(t *testing.T) {
	tab, err := Generate(GenConfig{Routes: 500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", back.Len(), tab.Len())
	}
	for _, r := range tab.Routes() {
		got, ok := back.Lookup(RandomAddrInPrefix(rand.New(rand.NewSource(1)), r.Prefix))
		if !ok {
			t.Fatalf("route %v lost in roundtrip", r.Prefix)
		}
		_ = got
	}
	// Spot-check exact attribute preservation.
	a, b := tab.Routes()[0], back.Routes()[0]
	if a.Prefix != b.Prefix || a.OriginAS != b.OriginAS || a.Tier != b.Tier {
		t.Errorf("first route changed: %+v vs %+v", a, b)
	}
}

func TestReadTextFormats(t *testing.T) {
	in := `
# comment line

10.0.0.0/8 100 tier1
192.0.2.0/24
198.51.100.0/24 65000
`
	tab, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	r, _ := tab.Lookup(netip.MustParseAddr("10.1.1.1"))
	if r.OriginAS != 100 || r.Tier != Tier1 {
		t.Errorf("full line: %+v", r)
	}
	r, _ = tab.Lookup(netip.MustParseAddr("192.0.2.1"))
	if r.OriginAS != 0 || r.Tier != TierUnknown {
		t.Errorf("prefix-only line: %+v", r)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad prefix": "not-a-prefix 1 tier1",
		"bad AS":     "10.0.0.0/8 xyz tier1",
		"bad tier":   "10.0.0.0/8 1 tier9",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestTierRoundtrip(t *testing.T) {
	for _, tier := range []Tier{TierUnknown, Tier1, Tier2, Tier3} {
		got, err := ParseTier(tier.String())
		if err != nil {
			t.Errorf("ParseTier(%q): %v", tier.String(), err)
		}
		if got != tier {
			t.Errorf("roundtrip %v -> %v", tier, got)
		}
	}
	if _, err := ParseTier("gibberish"); err == nil {
		t.Error("ParseTier accepted gibberish")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Routes: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Routes: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Routes() {
		if a.Routes()[i] != b.Routes()[i] {
			t.Fatalf("route %d differs: %+v vs %+v", i, a.Routes()[i], b.Routes()[i])
		}
	}
	c, err := Generate(GenConfig{Routes: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Routes() {
		if a.Routes()[i] != c.Routes()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateLengthMix(t *testing.T) {
	tab, err := Generate(GenConfig{Routes: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h := tab.PrefixLengthHistogram()
	// /24 must dominate (≈44% of the 2001 mix).
	frac24 := float64(h[24]) / float64(tab.Len())
	if frac24 < 0.35 || frac24 > 0.55 {
		t.Errorf("/24 fraction = %.3f, want ≈ 0.44", frac24)
	}
	// /16 is the secondary mode.
	if h[16] < h[15] || h[16] < h[17] {
		t.Errorf("/16 not a local mode: /15=%d /16=%d /17=%d", h[15], h[16], h[17])
	}
	// A thin but non-empty population of /8s.
	if h[8] == 0 {
		t.Error("no /8 routes generated")
	}
	if h[8] > tab.Len()/100 {
		t.Errorf("/8 routes = %d, expected a thin population", h[8])
	}
	// No prefixes outside 8..32.
	for l := 0; l < 8; l++ {
		if h[l] != 0 {
			t.Errorf("unexpected /%d routes: %d", l, h[l])
		}
	}
}

func TestGenerateTierASRanges(t *testing.T) {
	tab, err := Generate(GenConfig{Routes: 5000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var n1, n2, n3 int
	for _, r := range tab.Routes() {
		switch r.Tier {
		case Tier1:
			n1++
			if r.OriginAS < 100 || r.OriginAS > 199 {
				t.Fatalf("tier1 route with AS %d", r.OriginAS)
			}
		case Tier2:
			n2++
			if r.OriginAS < 1000 || r.OriginAS > 4999 {
				t.Fatalf("tier2 route with AS %d", r.OriginAS)
			}
		case Tier3:
			n3++
			if r.OriginAS < 10000 {
				t.Fatalf("tier3 route with AS %d", r.OriginAS)
			}
		default:
			t.Fatalf("generated route with unknown tier: %+v", r)
		}
	}
	// Roughly 15/35/50.
	tot := float64(n1 + n2 + n3)
	if f := float64(n1) / tot; f < 0.10 || f > 0.20 {
		t.Errorf("tier1 share = %.3f, want ≈ 0.15", f)
	}
	if f := float64(n3) / tot; f < 0.42 || f > 0.58 {
		t.Errorf("tier3 share = %.3f, want ≈ 0.50", f)
	}
}

func TestGenerateAvoidsReservedSpace(t *testing.T) {
	tab, err := Generate(GenConfig{Routes: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Routes() {
		b := r.Prefix.Addr().As4()
		if b[0] == 0 || b[0] == 10 || b[0] == 127 || b[0] >= 224 {
			t.Fatalf("route in reserved space: %v", r.Prefix)
		}
		if b[0] == 192 && b[1] == 168 {
			t.Fatalf("route in 192.168/16: %v", r.Prefix)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Routes: 0}); err == nil {
		t.Error("Routes=0 accepted")
	}
	if _, err := Generate(GenConfig{Routes: 10, LengthWeights: map[int]float64{40: 1}}); err == nil {
		t.Error("invalid length weight accepted")
	}
	if _, err := Generate(GenConfig{Routes: 10, LengthWeights: map[int]float64{24: 0}}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestRandomAddrInPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		plen := 8 + r.Intn(25)
		var b [4]byte
		rng.Read(b[:])
		p, err := netip.AddrFrom4(b).Prefix(plen)
		if err != nil {
			return true
		}
		for i := 0; i < 16; i++ {
			if !p.Contains(RandomAddrInPrefix(rng, p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortedPrefixes(t *testing.T) {
	tab, err := Generate(GenConfig{Routes: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ps := tab.SortedPrefixes()
	if len(ps) != tab.Len() {
		t.Fatalf("len = %d, want %d", len(ps), tab.Len())
	}
	for i := 1; i < len(ps); i++ {
		c := ps[i-1].Addr().Compare(ps[i].Addr())
		if c > 0 || (c == 0 && ps[i-1].Bits() > ps[i].Bits()) {
			t.Fatalf("not sorted at %d: %v then %v", i, ps[i-1], ps[i])
		}
	}
}
