package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// GenConfig controls synthetic table generation.
type GenConfig struct {
	// Routes is the number of prefixes to generate.
	Routes int
	// Seed feeds the deterministic generator.
	Seed int64
	// LengthWeights maps prefix length (8..32) to relative weight.
	// Nil selects Default2001LengthWeights.
	LengthWeights map[int]float64
	// TierWeights gives the relative share of Tier1/Tier2/Tier3 origins.
	// Zero selects the defaults {0.15, 0.35, 0.50}.
	TierWeights [3]float64
}

// Default2001LengthWeights approximates the IPv4 prefix-length mix of a
// Tier-1 BGP table circa 2001: a strong mode at /24, substantial mass at
// /16 and /19–/23, a thin population of short prefixes including /8s, and
// a small tail of longer-than-/24 more-specifics.
func Default2001LengthWeights() map[int]float64 {
	return map[int]float64{
		8:  0.002, // ~the "100 /8 networks" of the paper
		9:  0.001,
		10: 0.002,
		11: 0.003,
		12: 0.005,
		13: 0.008,
		14: 0.015,
		15: 0.018,
		16: 0.090,
		17: 0.025,
		18: 0.040,
		19: 0.065,
		20: 0.055,
		21: 0.050,
		22: 0.055,
		23: 0.060,
		24: 0.440,
		25: 0.015,
		26: 0.020,
		27: 0.010,
		28: 0.008,
		29: 0.006,
		30: 0.005,
		31: 0.001,
		32: 0.001,
	}
}

// Generate builds a deterministic synthetic table. Prefixes are drawn
// without collision (a longer duplicate is re-drawn), origin ASes are
// assigned per-tier from disjoint ranges so tests can recover the tier
// from the AS number.
func Generate(cfg GenConfig) (*Table, error) {
	if cfg.Routes <= 0 {
		return nil, fmt.Errorf("bgp: Generate: Routes must be positive, got %d", cfg.Routes)
	}
	weights := cfg.LengthWeights
	if weights == nil {
		weights = Default2001LengthWeights()
	}
	tw := cfg.TierWeights
	if tw == [3]float64{} {
		tw = [3]float64{0.15, 0.35, 0.50}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Build a cumulative sampler over lengths.
	lengths := make([]int, 0, len(weights))
	for l := range weights {
		if l < 1 || l > 32 {
			return nil, fmt.Errorf("bgp: Generate: invalid prefix length %d in weights", l)
		}
		lengths = append(lengths, l)
	}
	// Deterministic order for the sampler regardless of map iteration.
	for i := 1; i < len(lengths); i++ {
		for j := i; j > 0 && lengths[j] < lengths[j-1]; j-- {
			lengths[j], lengths[j-1] = lengths[j-1], lengths[j]
		}
	}
	cum := make([]float64, len(lengths))
	total := 0.0
	for i, l := range lengths {
		total += weights[l]
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("bgp: Generate: weights sum to zero")
	}

	sampleLen := func() int {
		x := rng.Float64() * total
		for i, c := range cum {
			if x <= c {
				return lengths[i]
			}
		}
		return lengths[len(lengths)-1]
	}

	t := NewTable()
	seen := make(map[netip.Prefix]bool, cfg.Routes)
	tierTotal := tw[0] + tw[1] + tw[2]
	for t.Len() < cfg.Routes {
		plen := sampleLen()
		// Draw a random address in unicast space (1.0.0.0–223.255.255.255,
		// skipping 10/8, 127/8 and 192.168/16 to look like public space).
		var addr netip.Addr
		for {
			raw := uint32(rng.Int63()) & 0xFFFFFFFF
			first := raw >> 24
			if first == 0 || first == 10 || first == 127 || first >= 224 {
				continue
			}
			if first == 192 && (raw>>16)&0xFF == 168 {
				continue
			}
			addr = netip.AddrFrom4([4]byte{byte(raw >> 24), byte(raw >> 16), byte(raw >> 8), byte(raw)})
			break
		}
		p, err := addr.Prefix(plen)
		if err != nil {
			continue
		}
		if seen[p] {
			continue
		}
		seen[p] = true

		x := rng.Float64() * tierTotal
		var tier Tier
		var as uint32
		switch {
		case x < tw[0]:
			tier = Tier1
			as = 100 + uint32(rng.Intn(100)) // AS 100–199: tier-1
		case x < tw[0]+tw[1]:
			tier = Tier2
			as = 1000 + uint32(rng.Intn(4000)) // AS 1000–4999: tier-2
		default:
			tier = Tier3
			as = 10000 + uint32(rng.Intn(50000)) // AS 10000+: tier-3
		}
		if err := t.Insert(Route{Prefix: p, OriginAS: as, Tier: tier}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RandomAddrInPrefix draws a uniformly random host address inside p using
// rng. Only IPv4 prefixes are supported.
func RandomAddrInPrefix(rng *rand.Rand, p netip.Prefix) netip.Addr {
	base := v4bits(p.Addr())
	hostBits := 32 - p.Bits()
	var off uint32
	if hostBits > 0 {
		off = uint32(rng.Int63()) & (1<<uint(hostBits) - 1)
	}
	v := base | off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
