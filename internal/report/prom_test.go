package report

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestMetricsWriterRendering(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("daemon_datagrams_total", "Datagrams received.", "counter")
	m.Sample("daemon_datagrams_total", nil, 42)
	m.Family("daemon_link_load_bps", "Per-link load.", "gauge")
	m.Sample("daemon_link_load_bps", []Label{{"link", "10.0.0.1@0"}}, 1.5e6)
	m.Sample("daemon_link_load_bps", []Label{{"link", "10.0.0.2@1"}, {"scheme", "load+latent"}}, 0.25)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP daemon_datagrams_total Datagrams received.
# TYPE daemon_datagrams_total counter
daemon_datagrams_total 42
# HELP daemon_link_load_bps Per-link load.
# TYPE daemon_link_load_bps gauge
daemon_link_load_bps{link="10.0.0.1@0"} 1500000
daemon_link_load_bps{link="10.0.0.2@1",scheme="load+latent"} 0.25
`
	if got := buf.String(); got != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsWriterHistogram(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("step_seconds", "Step latency.", "histogram")
	m.Histogram("step_seconds", []Label{{"link", "a@0"}},
		[]float64{0.001, 0.25, 4}, []uint64{2, 0, 3, 1}, 5.75)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP step_seconds Step latency.
# TYPE step_seconds histogram
step_seconds_bucket{link="a@0",le="0.001"} 2
step_seconds_bucket{link="a@0",le="0.25"} 2
step_seconds_bucket{link="a@0",le="4"} 5
step_seconds_bucket{link="a@0",le="+Inf"} 6
step_seconds_sum{link="a@0"} 5.75
step_seconds_count{link="a@0"} 6
`
	if got := buf.String(); got != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", got, want)
	}

	// Mis-sized counts are a programming error the writer must surface.
	m2 := NewMetricsWriter(&bytes.Buffer{})
	m2.Family("h", "h", "histogram")
	m2.Histogram("h", nil, []float64{1, 2}, []uint64{1, 2}, 0)
	if m2.Err() == nil {
		t.Error("counts shorter than bounds+1 accepted")
	}
}

func TestMetricsWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("m", "help with \\ and\nnewline", "gauge")
	m.Sample("m", []Label{{"l", "quote\" slash\\ nl\n"}}, 1)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `help with \\ and\nnewline`) {
		t.Errorf("help not escaped: %q", out)
	}
	if !strings.Contains(out, `l="quote\" slash\\ nl\n"`) {
		t.Errorf("label not escaped: %q", out)
	}
	if strings.Count(out, "\n") != 3 { // HELP, TYPE, sample — no raw newlines leaked
		t.Errorf("raw newline leaked into output: %q", out)
	}
}

func TestMetricsWriterDuplicateFamily(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("m", "h", "counter")
	m.Family("m", "h", "counter")
	if m.Err() == nil {
		t.Error("duplicate family accepted")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestMetricsWriterStickyError(t *testing.T) {
	m := NewMetricsWriter(failWriter{})
	m.Family("m", "h", "counter")
	err := m.Err()
	if err == nil {
		t.Fatal("write error not surfaced")
	}
	m.Sample("m", nil, 1) // must not panic or overwrite the error
	if m.Err() != err {
		t.Error("first error not sticky")
	}
}

func TestFormatSample(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-7, "-7"},
		{1 << 53, "9007199254740992"},
		{0.25, "0.25"},
		{1.5e6, "1500000"},
		{1e300, "1e+300"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	}
	for _, tc := range cases {
		if got := formatSample(tc.v); got != tc.want {
			t.Errorf("formatSample(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	if got := formatSample(math.NaN()); got != "NaN" {
		t.Errorf("formatSample(NaN) = %q", got)
	}
}
