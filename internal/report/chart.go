package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// sparkGlyphs are the eight block-element levels used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a one-line miniature chart of xs. Values are scaled
// to the series' own [min, max]; non-finite values (NaN, ±Inf) render
// as spaces — an Inf must not stretch the scale to where every finite
// value collapses onto one glyph. An empty series yields an empty
// string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if !isFinite(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) { // no finite values
		return strings.Repeat(" ", len(xs))
	}
	span := hi - lo
	var sb strings.Builder
	for _, x := range xs {
		if !isFinite(x) {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(sparkGlyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		sb.WriteRune(sparkGlyphs[idx])
	}
	return sb.String()
}

// Series pairs a label with a numeric series for charting.
type Series struct {
	Label  string
	Values []float64
}

// ChartConfig controls ASCII chart rendering.
type ChartConfig struct {
	// Width is the plot area width in characters. Default 72.
	Width int
	// Height is the plot area height in rows. Default 16.
	Height int
	// YMin/YMax fix the vertical range; when both are zero the range is
	// taken from the data.
	YMin, YMax float64
	// LogY plots log10 of the values (zeros and negatives are skipped).
	LogY bool
	// Title is printed above the plot when non-empty.
	Title string
	// XLabel annotates the x axis when non-empty.
	XLabel string
}

// seriesMarks assigns one plotting glyph per series, cycling.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders one or more series as an ASCII line chart. Series are
// resampled onto the chart width; each gets a distinct mark, listed in
// the legend below the plot.
func Chart(w io.Writer, cfg ChartConfig, series ...Series) error {
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 16
	}
	// Determine the y range.
	lo, hi := cfg.YMin, cfg.YMax
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Values {
				v = transform(v, cfg.LogY)
				if math.IsNaN(v) {
					continue
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
	} else if cfg.LogY {
		lo, hi = transform(lo, true), transform(hi, true)
	}
	if hi <= lo {
		hi = lo + 1
	}

	grid := make([][]byte, cfg.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		n := len(s.Values)
		if n == 0 {
			continue
		}
		for col := 0; col < cfg.Width; col++ {
			// Resample: average the bucket of points mapping to col.
			from := col * n / cfg.Width
			to := (col + 1) * n / cfg.Width
			if to <= from {
				to = from + 1
			}
			if from >= n {
				break
			}
			if to > n {
				to = n
			}
			var sum float64
			var cnt int
			for i := from; i < to; i++ {
				v := transform(s.Values[i], cfg.LogY)
				if math.IsNaN(v) {
					continue
				}
				sum += v
				cnt++
			}
			if cnt == 0 {
				continue
			}
			v := sum / float64(cnt)
			row := int((hi - v) / (hi - lo) * float64(cfg.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= cfg.Height {
				row = cfg.Height - 1
			}
			grid[row][col] = mark
		}
	}

	if cfg.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", cfg.Title); err != nil {
			return err
		}
	}
	axisLabel := func(v float64) string {
		if cfg.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", 9)
		switch i {
		case 0:
			label = axisLabel(hi)
		case cfg.Height - 1:
			label = axisLabel(lo)
		case (cfg.Height - 1) / 2:
			label = axisLabel((hi + lo) / 2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", cfg.Width)); err != nil {
		return err
	}
	if cfg.XLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 9), cfg.XLabel); err != nil {
			return err
		}
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		if _, err := fmt.Fprintf(w, "%s   %c %s\n", strings.Repeat(" ", 9), mark, s.Label); err != nil {
			return err
		}
	}
	return nil
}

// transform maps a raw value to plot space: non-finite values become
// NaN (skipped by every consumer — Inf must not infect the y range),
// and LogY takes log10, with zeros and negatives also mapped to NaN.
func transform(v float64, logY bool) float64 {
	if !isFinite(v) {
		return math.NaN()
	}
	if !logY {
		return v
	}
	if v <= 0 {
		return math.NaN()
	}
	return math.Log10(v)
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
