package report

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text exposition page against
// the subset of the format the daemon emits — the unit-testable half of
// the CI scrape check. It enforces what a scraper relies on and what
// hand-rolled renderers most easily get wrong:
//
//   - every sample belongs to the family most recently declared by a
//     # TYPE line (metadata precedes its samples, families contiguous);
//     histogram samples may use the family's _bucket/_sum/_count
//     suffixes
//   - no family is declared twice
//   - every sample value parses as a float
//   - histogram buckets are well-formed per series: le boundaries
//     strictly increasing, cumulative counts non-decreasing, a +Inf
//     bucket present, and _count equal to the +Inf bucket
//
// The first violation is returned with its line number; nil means the
// page passed.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	l := &lintState{declared: make(map[string]bool)}
	line := 0
	for sc.Scan() {
		line++
		if err := l.feed(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return l.finishHistogramSeries()
}

type lintState struct {
	declared map[string]bool // family -> TYPE seen
	family   string          // current family (last # TYPE)
	typ      string          // current family's type

	// In-flight histogram series (one label set of the current family):
	// buckets must arrive contiguously, le ascending, counts monotone.
	histActive bool
	histKey    string // label signature minus le
	histLastLe float64
	histLastV  float64
	histInf    float64
	histInfSet bool
}

func (l *lintState) feed(s string) error {
	switch {
	case strings.TrimSpace(s) == "":
		return nil
	case strings.HasPrefix(s, "# HELP "):
		return nil
	case strings.HasPrefix(s, "# TYPE "):
		fields := strings.Fields(s)
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", s)
		}
		name, typ := fields[2], fields[3]
		if l.declared[name] {
			return fmt.Errorf("family %q declared twice", name)
		}
		if err := l.finishHistogramSeries(); err != nil {
			return err
		}
		l.declared[name] = true
		l.family, l.typ = name, typ
		return nil
	case strings.HasPrefix(s, "#"):
		return nil // comment
	}
	return l.sample(s)
}

// sample validates one sample line against the current family.
func (l *lintState) sample(s string) error {
	name := s
	if i := strings.IndexAny(s, "{ "); i >= 0 {
		name = s[:i]
	}
	rest := s[len(name):]
	labels := ""
	if strings.HasPrefix(rest, "{") {
		end := labelsEnd(rest)
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", s)
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return fmt.Errorf("sample %s: unparsable value %q", name, strings.TrimSpace(rest))
	}
	if l.family == "" {
		return fmt.Errorf("sample %s before any family declaration", name)
	}
	suffix := ""
	base := name
	if l.typ == "histogram" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && strings.TrimSuffix(name, suf) == l.family {
				base, suffix = l.family, suf
				break
			}
		}
	}
	if base != l.family {
		return fmt.Errorf("sample %s not preceded by its family (current family %q)", name, l.family)
	}
	if l.typ != "histogram" {
		return nil
	}
	switch suffix {
	case "_bucket":
		return l.bucket(name, labels, val)
	case "_sum":
		return nil
	case "_count":
		if l.histInfSet && val != l.histInf {
			return fmt.Errorf("%s = %v, want the +Inf bucket value %v", name, val, l.histInf)
		}
		return l.finishHistogramSeries()
	default:
		return fmt.Errorf("histogram family %q has plain sample %s (want _bucket/_sum/_count)", l.family, name)
	}
}

// bucket folds one _bucket sample into the in-flight series checks.
func (l *lintState) bucket(name, labels string, val float64) error {
	key, le, ok := splitLe(labels)
	if !ok {
		return fmt.Errorf("%s missing le label", name)
	}
	var leVal float64
	if le == "+Inf" {
		leVal = 0 // unused; flagged via histInfSet
	} else {
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("%s: unparsable le %q", name, le)
		}
		leVal = v
	}
	if !l.histActive || key != l.histKey {
		// New label set: the previous one must have completed with +Inf.
		if err := l.finishHistogramSeries(); err != nil {
			return err
		}
		l.histActive, l.histKey = true, key
	} else {
		if l.histInfSet {
			return fmt.Errorf("%s: bucket after the +Inf bucket", name)
		}
		if le != "+Inf" && leVal <= l.histLastLe {
			return fmt.Errorf("%s: le %v not increasing (previous %v)", name, leVal, l.histLastLe)
		}
		if val < l.histLastV {
			return fmt.Errorf("%s: cumulative bucket count %v decreased (previous %v)", name, val, l.histLastV)
		}
	}
	if le == "+Inf" {
		l.histInf, l.histInfSet = val, true
	} else {
		l.histLastLe = leVal
	}
	l.histLastV = val
	return nil
}

// finishHistogramSeries closes the in-flight bucket series, requiring
// its +Inf bucket to have arrived.
func (l *lintState) finishHistogramSeries() error {
	if l.histActive && !l.histInfSet {
		return fmt.Errorf("histogram series %s{%s} has no +Inf bucket", l.family, l.histKey)
	}
	l.histActive, l.histKey = false, ""
	l.histLastLe, l.histLastV, l.histInf = 0, 0, 0
	l.histInfSet = false
	return nil
}

// labelsEnd returns the index just past the closing '}' of a label set
// starting at s[0] == '{', honouring quoted values with escapes; -1 when
// unterminated.
func labelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i + 1
		}
	}
	return -1
}

// splitLe extracts the le label from a rendered label list, returning
// the list with le removed (the series grouping key) and the le value.
func splitLe(labels string) (key, le string, ok bool) {
	rest := labels
	var parts []string
	for rest != "" {
		eq := strings.Index(rest, "=\"")
		if eq < 0 {
			break
		}
		name := rest[:eq]
		val := rest[eq+2:]
		end := 0
		for end < len(val) {
			if val[end] == '\\' {
				end += 2
				continue
			}
			if val[end] == '"' {
				break
			}
			end++
		}
		if end >= len(val) {
			break
		}
		pair := rest[:eq+2+end+1]
		if name == "le" {
			le, ok = val[:end], true
		} else {
			parts = append(parts, pair)
		}
		rest = val[end+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return strings.Join(parts, ","), le, ok
}
