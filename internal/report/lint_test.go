package report

import (
	"bytes"
	"strings"
	"testing"
)

// lintErr runs LintExposition over a page and returns the error.
func lintErr(t *testing.T, page string) error {
	t.Helper()
	return LintExposition(strings.NewReader(page))
}

func TestLintAcceptsWriterOutput(t *testing.T) {
	// A page produced by MetricsWriter itself — counters, gauges with
	// labels, and a two-series histogram — must pass.
	var buf bytes.Buffer
	m := NewMetricsWriter(&buf)
	m.Family("d_datagrams_total", "Datagrams.", "counter")
	m.Sample("d_datagrams_total", nil, 42)
	m.Family("d_load_bps", "Load.", "gauge")
	m.Sample("d_load_bps", []Label{{"link", "a@0"}}, 1.5e6)
	m.Sample("d_load_bps", []Label{{"link", "b@1"}}, 2.5)
	m.Family("d_step_seconds", "Step latency.", "histogram")
	bounds := []float64{0.001, 0.01, 0.1}
	m.Histogram("d_step_seconds", []Label{{"link", "a@0"}}, bounds, []uint64{3, 2, 0, 1}, 0.08)
	m.Histogram("d_step_seconds", []Label{{"link", "b@1"}}, bounds, []uint64{0, 0, 0, 0}, 0)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(&buf); err != nil {
		t.Errorf("writer output failed lint: %v", err)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name, page, wantSub string
	}{
		{"orphan sample", "x_total 3\n", "before any family"},
		{"sample from other family",
			"# HELP a_total h\n# TYPE a_total counter\nb_total 1\n",
			"not preceded by its family"},
		{"duplicate family",
			"# TYPE a_total counter\na_total 1\n# TYPE a_total counter\n",
			"declared twice"},
		{"bad value",
			"# TYPE a_total counter\na_total pony\n",
			"unparsable value"},
		{"bucket counts decrease",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"decreased"},
		{"le not increasing",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n",
			"not increasing"},
		{"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf bucket"},
		{"count disagrees with +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 9\n",
			"want the +Inf bucket"},
		{"missing le",
			"# TYPE h histogram\nh_bucket{link=\"a\"} 1\n",
			"missing le"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := lintErr(t, tc.page)
			if err == nil {
				t.Fatalf("lint accepted invalid page:\n%s", tc.page)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestLintMultiSeriesHistogram(t *testing.T) {
	// Two label sets back to back; the second starting implies the first
	// completed. A second set starting without the first's +Inf fails.
	ok := `# TYPE h histogram
h_bucket{link="a",le="1"} 1
h_bucket{link="a",le="+Inf"} 2
h_bucket{link="b",le="1"} 0
h_bucket{link="b",le="+Inf"} 0
h_sum{link="b"} 0
h_count{link="b"} 0
`
	if err := lintErr(t, ok); err != nil {
		t.Errorf("valid two-series histogram rejected: %v", err)
	}
	bad := `# TYPE h histogram
h_bucket{link="a",le="1"} 1
h_bucket{link="b",le="1"} 0
h_bucket{link="b",le="+Inf"} 0
`
	if err := lintErr(t, bad); err == nil || !strings.Contains(err.Error(), "+Inf") {
		t.Errorf("truncated first series accepted (err=%v)", err)
	}
}
