package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSVSeries writes one or more equally-indexed series as CSV with
// an index column named idxName. Series of different lengths are padded
// with empty cells.
func WriteCSVSeries(w io.Writer, idxName string, series ...Series) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, idxName)
	maxLen := 0
	for _, s := range series {
		header = append(header, s.Label)
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	row := make([]string, len(header))
	for i := 0; i < maxLen; i++ {
		row[0] = strconv.Itoa(i)
		for j, s := range series {
			if i < len(s.Values) {
				row[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
			} else {
				row[j+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// IntsToFloats converts an int series for charting/CSV.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
