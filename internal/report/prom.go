package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair. Samples carry labels as an
// ordered slice — the writer renders them in the order given, so a
// caller emitting the same label order every scrape produces
// byte-stable output.
type Label struct {
	Name, Value string
}

// MetricsWriter renders metrics in the Prometheus text exposition
// format (version 0.0.4), the lingua franca of pull-based monitoring.
// It is deliberately minimal — families and samples are written in call
// order, label values are escaped per the format — so a daemon can
// expose counters and gauges without importing a client library.
//
// Errors are sticky: the first write error is retained and every later
// call is a no-op, letting a handler render the whole page and check
// Err once.
type MetricsWriter struct {
	w       io.Writer
	err     error
	started map[string]bool
}

// NewMetricsWriter returns a writer rendering to w.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{w: w, started: make(map[string]bool)}
}

// Family emits the # HELP and # TYPE preamble for a metric family.
// typ is "counter", "gauge", "histogram", "summary" or "untyped".
// Emitting the same family twice is an error (the format forbids
// repeated metadata).
func (m *MetricsWriter) Family(name, help, typ string) {
	if m.err != nil {
		return
	}
	if m.started[name] {
		m.err = fmt.Errorf("report: metric family %q emitted twice", name)
		return
	}
	m.started[name] = true
	_, m.err = fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample line, "name{labels} value". Call after the
// sample's Family; samples of one family must be contiguous.
func (m *MetricsWriter) Sample(name string, labels []Label, v float64) {
	if m.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatSample(v))
	sb.WriteByte('\n')
	_, m.err = io.WriteString(m.w, sb.String())
}

// Histogram emits one histogram series: a cumulative "name_bucket" line
// per boundary, the "+Inf" overflow bucket, then "name_sum" and
// "name_count". counts holds raw per-bucket observation counts — one
// per boundary plus the overflow bucket, len(bounds)+1 in total — and
// the writer accumulates them, so the rendered buckets are monotone by
// construction and the count equals the +Inf bucket. The le label is
// appended after the caller's labels. Call after the family (type
// "histogram"); series of one family must be contiguous.
func (m *MetricsWriter) Histogram(name string, labels []Label, bounds []float64, counts []uint64, sum float64) {
	if m.err != nil {
		return
	}
	if len(counts) != len(bounds)+1 {
		m.err = fmt.Errorf("report: histogram %s: %d bucket counts for %d bounds (want bounds+1)", name, len(counts), len(bounds))
		return
	}
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		ls[len(labels)] = Label{Name: "le", Value: formatSample(bound)}
		m.Sample(name+"_bucket", ls, float64(cum))
	}
	cum += counts[len(bounds)]
	ls[len(labels)] = Label{Name: "le", Value: "+Inf"}
	m.Sample(name+"_bucket", ls, float64(cum))
	m.Sample(name+"_sum", labels, sum)
	m.Sample(name+"_count", labels, float64(cum))
}

// Err returns the first error any call hit, nil if all writes landed.
func (m *MetricsWriter) Err() error { return m.err }

// formatSample renders a sample value: integral values without an
// exponent (counters stay readable), everything else in Go's shortest
// round-trip form, which the Prometheus parser accepts (including NaN
// and ±Inf spellings).
func formatSample(v float64) string {
	// The int64 conversion is only defined in range; 2^53 bounds where
	// float64 holds exact integers anyway.
	if v >= -1<<53 && v <= 1<<53 && v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

// escapeHelp escapes help text: backslash and newline (quotes are legal
// there).
func escapeHelp(s string) string {
	return helpEscaper.Replace(s)
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)
