// Package report renders experiment output: aligned text tables, CSV
// series dumps, and ASCII line charts / sparklines that let the figures
// of the paper be eyeballed straight from a terminal. It has no
// dependency on the rest of the repository so every layer can use it.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Cells are formatted with %v; floats use %g
// unless they are passed pre-formatted as strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// widths computes the rendered width of each column.
func (t *Table) widths() []int {
	n := len(t.header)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.header {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var total int64
	widths := t.widths()
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", width-len(cell)))
		}
		line := strings.TrimRight(sb.String(), " ") + "\n"
		n, err := io.WriteString(w, line)
		total += int64(n)
		return err
	}
	if len(t.header) > 0 {
		if err := writeRow(t.header); err != nil {
			return total, err
		}
		var rule []string
		for i, h := range t.header {
			n := widths[i]
			if n < len(h) {
				n = len(h)
			}
			rule = append(rule, strings.Repeat("-", n))
		}
		if err := writeRow(rule); err != nil {
			return total, err
		}
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}
