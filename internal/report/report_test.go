package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("short", 1)
	tab.AddRow("a-much-longer-name", 23456)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if idx < 0 {
		t.Fatal("header lost")
	}
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("row 1 misaligned: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3][idx:], "23456") {
		t.Errorf("row 2 misaligned: %q", lines[3])
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("rule row = %q", lines[1])
	}
}

func TestTableCellFormats(t *testing.T) {
	tab := NewTable("c")
	tab.AddRow(1.23456789)
	tab.AddRow("verbatim")
	tab.AddRow(42)
	out := tab.String()
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not %%.4g formatted: %q", out)
	}
	if !strings.Contains(out, "verbatim") || !strings.Contains(out, "42") {
		t.Errorf("cells lost: %q", out)
	}
	if tab.NumRows() != 3 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableNoTrailingSpaces(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x", "y")
	for _, line := range strings.Split(tab.String(), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("trailing spaces in %q", line)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Errorf("rune count = %d, want 4", utf8.RuneCountInString(s))
	}
	// Monotone input -> monotone glyph levels.
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("glyphs not monotone for monotone input: %q", s)
		}
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
}

func TestSparklineConstantAndNaN(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(s) != 3 {
		t.Errorf("constant series sparkline = %q", s)
	}
	s = Sparkline([]float64{math.NaN(), 1, math.NaN()})
	if !strings.HasPrefix(s, " ") {
		t.Errorf("NaN not rendered as space: %q", s)
	}
	s = Sparkline([]float64{math.NaN(), math.NaN()})
	if s != "  " {
		t.Errorf("all-NaN = %q", s)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	// Single point: constant series, one glyph, no divide-by-zero.
	if s := Sparkline([]float64{3.5}); utf8.RuneCountInString(s) != 1 {
		t.Errorf("single point = %q, want one glyph", s)
	}
	// ±Inf renders as space and must not stretch the scale: the finite
	// values still span the full glyph range.
	s := Sparkline([]float64{math.Inf(1), 0, 10, math.Inf(-1)})
	runes := []rune(s)
	if len(runes) != 4 || runes[0] != ' ' || runes[3] != ' ' {
		t.Errorf("Inf not rendered as space: %q", s)
	}
	if runes[1] != '▁' || runes[2] != '█' {
		t.Errorf("finite values not scaled to their own range: %q", s)
	}
	// All non-finite: all spaces.
	if s := Sparkline([]float64{math.Inf(1), math.NaN()}); s != "  " {
		t.Errorf("all-non-finite = %q", s)
	}
}

func TestChartBasics(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, ChartConfig{Width: 40, Height: 8, Title: "demo", XLabel: "time"},
		Series{Label: "up", Values: []float64{1, 2, 3, 4, 5}},
		Series{Label: "down", Values: []float64{5, 4, 3, 2, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "time") {
		t.Error("title/xlabel missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Errorf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 8 {
		t.Errorf("plot rows = %d, want 8", plotLines)
	}
	// Marks of both series must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series marks missing from plot")
	}
}

func TestChartLogY(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, ChartConfig{Width: 20, Height: 5, LogY: true},
		Series{Label: "counts", Values: []float64{1, 10, 100, 1000, 0}}, // the 0 must be skipped
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1e+03") && !strings.Contains(buf.String(), "1000") {
		t.Errorf("log axis label missing:\n%s", buf.String())
	}
}

func TestChartEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, ChartConfig{}, Series{Label: "none"}); err != nil {
		t.Fatalf("empty series: %v", err)
	}
	buf.Reset()
	// No series at all: an empty grid with the fallback 0..1 axis.
	if err := Chart(&buf, ChartConfig{Width: 10, Height: 3}); err != nil {
		t.Fatalf("no series: %v", err)
	}
	if !strings.Contains(buf.String(), "|") {
		t.Error("no-series chart lost its plot rows")
	}
}

func TestChartSinglePoint(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, ChartConfig{Width: 10, Height: 4},
		Series{Label: "one", Values: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("single point not plotted:\n%s", buf.String())
	}
}

func TestChartNaNInf(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, ChartConfig{Width: 8, Height: 4},
		Series{Label: "noisy", Values: []float64{1, math.NaN(), math.Inf(1), 2, math.Inf(-1), 3}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Finite values still plot, and the axis range is taken from them
	// alone — an Inf leaking into the scale would print an Inf label.
	if !strings.Contains(out, "*") {
		t.Errorf("finite values not plotted:\n%s", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("non-finite leaked into the axis:\n%s", out)
	}
}

func TestChartAllNonFinite(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, ChartConfig{Width: 8, Height: 4},
		Series{Label: "void", Values: []float64{math.NaN(), math.Inf(1), math.Inf(-1)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			t.Errorf("non-finite values plotted:\n%s", buf.String())
		}
	}
}

func TestChartFixedRange(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, ChartConfig{Width: 10, Height: 4, YMin: 0, YMax: 1},
		Series{Label: "frac", Values: []float64{0.5, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1") {
		t.Errorf("fixed max not on axis:\n%s", buf.String())
	}
}

func TestWriteCSVSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSVSeries(&buf, "interval",
		Series{Label: "a", Values: []float64{1, 2, 3}},
		Series{Label: "b", Values: []float64{4.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if lines[0] != "interval,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,4.5" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Errorf("row 1 = %q (short series must pad)", lines[2])
	}
}

func TestIntsToFloats(t *testing.T) {
	got := IntsToFloats([]int{1, -2, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
}
