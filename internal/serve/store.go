package serve

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// DefaultHistory is the default per-link history ring capacity: a day
// of five-minute intervals.
const DefaultHistory = 288

// numShards spreads links over independently locked shards so HTTP
// readers scanning one link never contend with the ingest path writing
// another. 16 shards is far past the contention point for a POP's worth
// of links while keeping the IDs() scan cheap.
const numShards = 16

// Store is the daemon's sharded in-memory state: one LinkState per
// monitored link, keyed by link ID. All methods are safe for concurrent
// use — the UDP ingest loop and the per-link pipeline workers write
// while HTTP handlers read.
type Store struct {
	shards [numShards]storeShard
}

type storeShard struct {
	mu    sync.RWMutex
	links map[string]*LinkState
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].links = make(map[string]*LinkState)
	}
	return s
}

func (s *Store) shardFor(id string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%numShards]
}

// Get returns the link's state, or nil when the link is unknown.
func (s *Store) Get(id string) *LinkState {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.links[id]
}

// GetOrCreate returns the link's state, creating it (with the given
// history capacity) on first sight.
func (s *Store) GetOrCreate(id string, history int) *LinkState {
	sh := s.shardFor(id)
	sh.mu.RLock()
	ls := sh.links[id]
	sh.mu.RUnlock()
	if ls != nil {
		return ls
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ls = sh.links[id]; ls == nil {
		ls = newLinkState(id, history)
		sh.links[id] = ls
	}
	return ls
}

// IDs returns every known link ID, sorted.
func (s *Store) IDs() []string {
	var ids []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.links {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Summaries returns every link's summary row, sorted by ID — the
// collection both /links and /metrics render.
func (s *Store) Summaries() []LinkSummary {
	ids := s.IDs()
	out := make([]LinkSummary, 0, len(ids))
	for _, id := range ids {
		if ls := s.Get(id); ls != nil {
			out = append(out, ls.Summary())
		}
	}
	return out
}

// Len reports the number of known links.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.links)
		sh.mu.RUnlock()
	}
	return n
}

// IngestCounters counts a link's datagram/record attribution outcomes
// in the UDP ingest path (decode errors happen before a link is known
// and are counted daemon-wide instead).
type IngestCounters struct {
	// Datagrams is the number of well-formed datagrams demultiplexed to
	// this link.
	Datagrams uint64 `json:"datagrams"`
	// Records is the number of flow records those datagrams carried.
	Records uint64 `json:"records"`
	// Routed counts records attributed to a BGP prefix and fed to the
	// pipeline; Unrouted counts records with no matching route.
	Routed   uint64 `json:"routed"`
	Unrouted uint64 `json:"unrouted"`
	// Dropped counts routed records discarded because the link's
	// pipeline had already failed.
	Dropped uint64 `json:"dropped"`
}

// IntervalSummary is one closed interval's classification digest — the
// unit of the history ring and of the /links/{id}/history response.
type IntervalSummary struct {
	// Interval is the 0-based interval index; Start its left-edge wall
	// time.
	Interval int       `json:"interval"`
	Start    time.Time `json:"start"`
	// TotalLoadBps, ActiveFlows, Elephants, ElephantLoadBps,
	// LoadFraction and ThresholdBps mirror core.Result.
	TotalLoadBps    float64 `json:"total_load_bps"`
	ActiveFlows     int     `json:"active_flows"`
	Elephants       int     `json:"elephants"`
	ElephantLoadBps float64 `json:"elephant_load_bps"`
	LoadFraction    float64 `json:"load_fraction"`
	ThresholdBps    float64 `json:"threshold_bps"`
	// Promoted and Demoted count membership churn against the previous
	// closed interval — the reroute events a TE controller would act on.
	Promoted int `json:"promoted"`
	Demoted  int `json:"demoted"`
	// Flows lists the interval's elephant prefixes; only populated when
	// the caller asked for sets (history?flows=1).
	Flows []string `json:"flows,omitempty"`
}

// LinkSummary is one link's row in the /links listing.
type LinkSummary struct {
	ID     string         `json:"id"`
	Ingest IngestCounters `json:"ingest"`
	// Stream carries the link accumulator's counters as of the last
	// interval close (late drops, far-future drops, closed intervals,
	// evicted flows).
	Stream agg.StreamStats `json:"stream"`
	// Last summarises the most recent closed interval; absent until the
	// first interval closes.
	Last *IntervalSummary `json:"last,omitempty"`
	// Error is the pipeline failure that froze this link, empty while
	// healthy.
	Error string `json:"error,omitempty"`
}

// historyEntry pairs a summary with the interval's owning elephant set
// (core.ElephantSet storage is immutable, so retaining it is safe).
type historyEntry struct {
	summary IntervalSummary
	set     core.ElephantSet
}

// LinkState is one link's live state: ingest counters, the current
// elephant set, and a fixed-capacity ring of recent interval summaries.
// Writers are the UDP ingest loop (counters) and the link's pipeline
// worker (results); readers are the HTTP handlers.
type LinkState struct {
	id string

	mu      sync.RWMutex
	ingest  IngestCounters
	stream  agg.StreamStats
	current core.ElephantSet
	last    IntervalSummary
	hasLast bool
	failed  string

	// created and lastSeal are wall-clock instants — when the state was
	// built and when the most recent interval sealed — backing the
	// readiness staleness check (Staleness).
	created  time.Time
	lastSeal time.Time

	// ring is the history: capacity fixed at creation, oldest entries
	// overwritten in place.
	ring  []historyEntry
	next  int // ring slot the next entry lands in
	count int // entries held, <= cap(ring)
}

func newLinkState(id string, history int) *LinkState {
	if history <= 0 {
		history = DefaultHistory
	}
	return &LinkState{id: id, ring: make([]historyEntry, history), created: time.Now()}
}

// ID returns the link's identifier.
func (ls *LinkState) ID() string { return ls.id }

// ObserveDatagram accounts one demultiplexed datagram.
func (ls *LinkState) ObserveDatagram(records, routed, unrouted, dropped int) {
	ls.mu.Lock()
	ls.ingest.Datagrams++
	ls.ingest.Records += uint64(records)
	ls.ingest.Routed += uint64(routed)
	ls.ingest.Unrouted += uint64(unrouted)
	ls.ingest.Dropped += uint64(dropped)
	ls.mu.Unlock()
}

// RecordResult folds one closed interval into the state: churn against
// the previous set, the new current set, the history ring, and the
// accumulator counters as of the close.
func (ls *LinkState) RecordResult(t int, at time.Time, res core.Result, stats agg.StreamStats) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	promoted, demoted := core.Churn(ls.current, res.Elephants)
	sum := IntervalSummary{
		Interval:        t,
		Start:           at,
		TotalLoadBps:    res.TotalLoad,
		ActiveFlows:     res.ActiveFlows,
		Elephants:       res.ElephantCount(),
		ElephantLoadBps: res.ElephantLoad,
		LoadFraction:    res.LoadFraction(),
		ThresholdBps:    res.Threshold,
		Promoted:        promoted,
		Demoted:         demoted,
	}
	ls.current = res.Elephants
	ls.last = sum
	ls.hasLast = true
	ls.stream = stats
	ls.ring[ls.next] = historyEntry{summary: sum, set: res.Elephants}
	ls.next = (ls.next + 1) % len(ls.ring)
	if ls.count < len(ls.ring) {
		ls.count++
	}
	ls.lastSeal = time.Now()
}

// Staleness reports how long the link has gone without sealing an
// interval: now minus the last seal instant, or minus the state's
// creation when nothing has sealed yet. Never negative.
func (ls *LinkState) Staleness(now time.Time) time.Duration {
	ls.mu.RLock()
	ref := ls.lastSeal
	if ref.IsZero() {
		ref = ls.created
	}
	ls.mu.RUnlock()
	if d := now.Sub(ref); d > 0 {
		return d
	}
	return 0
}

// SetStreamStats records the accumulator's final counters (after the
// shutdown flush, when no more closes will deliver them).
func (ls *LinkState) SetStreamStats(stats agg.StreamStats) {
	ls.mu.Lock()
	ls.stream = stats
	ls.mu.Unlock()
}

// ReclassifyDropped moves n records from Routed to Dropped — the
// post-mortem correction for records a failed pipeline accepted into
// its queue but discarded unclassified (engine.LivePipeline.Dropped).
func (ls *LinkState) ReclassifyDropped(n uint64) {
	if n == 0 {
		return
	}
	ls.mu.Lock()
	if n > ls.ingest.Routed {
		n = ls.ingest.Routed
	}
	ls.ingest.Routed -= n
	ls.ingest.Dropped += n
	ls.mu.Unlock()
}

// Fail marks the link's pipeline as failed. The first failure wins.
func (ls *LinkState) Fail(err error) {
	if err == nil {
		return
	}
	ls.mu.Lock()
	if ls.failed == "" {
		ls.failed = err.Error()
	}
	ls.mu.Unlock()
}

// Failed reports whether the link's pipeline has failed.
func (ls *LinkState) Failed() bool {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.failed != ""
}

// Summary returns the link's /links row.
func (ls *LinkState) Summary() LinkSummary {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	out := LinkSummary{ID: ls.id, Ingest: ls.ingest, Stream: ls.stream, Error: ls.failed}
	if ls.hasLast {
		last := ls.last
		out.Last = &last
	}
	return out
}

// Current returns the most recent closed interval's summary and its
// elephant set; ok is false until the first interval closes.
func (ls *LinkState) Current() (IntervalSummary, core.ElephantSet, bool) {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.last, ls.current, ls.hasLast
}

// History returns up to n most recent interval summaries, oldest
// first (n <= 0 means all retained). includeFlows attaches each
// interval's elephant prefixes.
func (ls *LinkState) History(n int, includeFlows bool) []IntervalSummary {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	if n <= 0 || n > ls.count {
		n = ls.count
	}
	out := make([]IntervalSummary, 0, n)
	for i := ls.count - n; i < ls.count; i++ {
		// Oldest retained entry sits at next-count (mod capacity).
		e := &ls.ring[(ls.next-ls.count+i+2*len(ls.ring))%len(ls.ring)]
		sum := e.summary
		if includeFlows {
			flows := e.set.Flows()
			sum.Flows = make([]string, len(flows))
			for j, p := range flows {
				sum.Flows[j] = p.String()
			}
		}
		out = append(out, sum)
	}
	return out
}
