package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/netflow"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scheme"
)

// obsTable builds a one-route table covering the synthetic records the
// observability tests emit (dst 10.0.0.x).
func obsTable(t *testing.T) *bgp.Table {
	t.Helper()
	table := bgp.NewTable()
	if err := table.Insert(bgp.Route{Prefix: pfx("10.0.0.0/24"), OriginAS: 65000}); err != nil {
		t.Fatal(err)
	}
	return table
}

// v5wire encodes a single-record NetFlow v5 datagram whose record is
// stamped at `at` (header clock = record time, zero uptime offsets) and
// demultiplexes to the link identified by engine.
func v5wire(t *testing.T, engine uint8, at time.Time, octets uint32) []byte {
	t.Helper()
	dg := netflow.Datagram{
		Header: netflow.Header{
			Count:    1,
			UnixSecs: uint32(at.Unix()),
			EngineID: engine,
		},
		Records: []netflow.Record{{
			SrcAddr: netip.MustParseAddr("10.0.0.9"),
			DstAddr: netip.MustParseAddr("10.0.0.5"),
			Packets: 1,
			Octets:  octets,
		}},
	}
	wire, err := dg.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// newObsDaemon builds and starts a daemon on loopback with the
// observability-test table and any Config mutations applied.
func newObsDaemon(t *testing.T, mutate func(*Config)) *Daemon {
	t.Helper()
	// MinFlows -1 forces detection even on sparse or empty intervals:
	// the synthetic feeds here carry one flow per interval, far below
	// the default floor, and a frozen pipeline would hide the metrics
	// under test.
	sp := scheme.MustParse("load")
	sp.MinFlows = -1
	cfg := Config{
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Table:    obsTable(t),
		Scheme:   sp,
		Interval: time.Minute,
		Start:    time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC),
		Logf:     t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return d
}

// sendWires writes each datagram to the daemon's UDP socket and waits
// until the ingest counters account for all of them.
func sendWires(t *testing.T, d *Daemon, wires [][]byte) {
	t.Helper()
	conn, err := net.Dial("udp", d.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var before uint64
	for _, r := range d.readers {
		before += r.datagrams.Load()
	}
	for _, w := range wires {
		if _, err := conn.Write(w); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _, _ := d.ingestTotals()
		if got >= before+uint64(len(wires)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d datagrams, want %d more than %d", got, len(wires), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsObservabilityFamilies drives real datagrams through a
// daemon, drains it, and checks the whole observability surface in one
// pass: /metrics carries the registry families (stage histograms,
// churn counters, threshold and watermark-lag gauges) and passes the
// exposition lint; /links/{id}/debug/intervals serves the flight
// recorder as parsable JSONL; DumpFlightRecorders writes the same ring
// with per-link headers.
func TestMetricsObservabilityFamilies(t *testing.T) {
	d := newObsDaemon(t, nil)
	start := d.cfg.Start
	var wires [][]byte
	for i := 0; i < 5; i++ {
		wires = append(wires, v5wire(t, 0, start.Add(time.Duration(i)*time.Minute+30*time.Second), 1000+100*uint32(i)))
	}
	sendWires(t, d, wires)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}

	base := "http://" + d.HTTPAddr().String()
	const link = "127.0.0.1@0"
	metrics := getBody(t, base+"/metrics")
	if err := report.LintExposition(strings.NewReader(metrics)); err != nil {
		t.Errorf("metrics page fails exposition lint: %v\n%s", err, metrics)
	}
	for _, want := range []string{
		"# TYPE elephantd_step_duration_seconds histogram",
		"elephantd_step_duration_seconds_bucket{link=\"" + link + "\",le=\"+Inf\"} 5",
		"elephantd_step_duration_seconds_count{link=\"" + link + "\"} 5",
		"# TYPE elephantd_detect_duration_seconds histogram",
		"# TYPE elephantd_classify_duration_seconds histogram",
		"elephantd_link_promoted_total{link=\"" + link + "\"} 1",
		"elephantd_link_demoted_total{link=\"" + link + "\"} 0",
		"elephantd_link_raw_threshold_bps{link=\"" + link + "\"}",
		"elephantd_link_watermark_lag_seconds{link=\"" + link + "\"} 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The flight recorder journaled every sealed interval, oldest first.
	body := getBody(t, base+"/links/"+link+"/debug/intervals")
	var traces []obs.IntervalTrace
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var tr obs.IntervalTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("debug intervals line %d: %v", len(traces), err)
		}
		traces = append(traces, tr)
	}
	if len(traces) != 5 {
		t.Fatalf("flight recorder has %d traces, want 5:\n%s", len(traces), body)
	}
	for i, tr := range traces {
		if tr.Interval != i {
			t.Errorf("trace %d: interval %d, want %d", i, tr.Interval, i)
		}
		if tr.StepNanos <= 0 || tr.SealedUnixNanos <= 0 {
			t.Errorf("trace %d: missing timings: %+v", i, tr)
		}
		if tr.ActiveFlows != 1 {
			t.Errorf("trace %d: active flows %d, want 1", i, tr.ActiveFlows)
		}
	}
	if traces[0].Promoted != 1 || traces[0].WatermarkLagNanos <= 0 {
		t.Errorf("first trace = %+v, want one promotion and positive seal-time lag", traces[0])
	}

	resp, err := http.Get(base + "/links/nope@0/debug/intervals")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("debug intervals for unknown link = %s, want 404", resp.Status)
	}

	var dump bytes.Buffer
	if err := d.DumpFlightRecorders(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dump.String(), "# link "+link+" (5 of ") {
		t.Errorf("dump header = %q", strings.SplitN(dump.String(), "\n", 2)[0])
	}
	if got := strings.Count(dump.String(), "\n"); got != 6 { // header + 5 traces
		t.Errorf("dump has %d lines, want 6:\n%s", got, dump.String())
	}
}

// TestMetricsShardFamilies runs a sharded daemon and checks the
// intra-link parallelism surface: /metrics carries the stall counter,
// one shard-records gauge per shard, the imbalance gauge and the
// stage-overlap histogram, and /links reports the pipeline row with
// per-shard record counts summing to the link's in-window records.
func TestMetricsShardFamilies(t *testing.T) {
	const shards = 4
	d := newObsDaemon(t, func(c *Config) { c.Shards = shards })
	start := d.cfg.Start
	var wires [][]byte
	for i := 0; i < 5; i++ {
		wires = append(wires, v5wire(t, 0, start.Add(time.Duration(i)*time.Minute+30*time.Second), 1000))
	}
	sendWires(t, d, wires)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}

	base := "http://" + d.HTTPAddr().String()
	const link = "127.0.0.1@0"
	metrics := getBody(t, base+"/metrics")
	if err := report.LintExposition(strings.NewReader(metrics)); err != nil {
		t.Errorf("metrics page fails exposition lint: %v\n%s", err, metrics)
	}
	wants := []string{
		"# TYPE elephantd_link_stalls_total counter",
		"elephantd_link_stalls_total{link=\"" + link + "\"} 0",
		"# TYPE elephantd_link_shard_records gauge",
		"# TYPE elephantd_link_shard_imbalance gauge",
		"elephantd_link_shard_imbalance{link=\"" + link + "\"}",
		"# TYPE elephantd_stage_overlap_seconds histogram",
		"elephantd_stage_overlap_seconds_count{link=\"" + link + "\"} 5",
	}
	for s := 0; s < shards; s++ {
		wants = append(wants, fmt.Sprintf("elephantd_link_shard_records{link=%q,shard=\"%d\"}", link, s))
	}
	for _, want := range wants {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	var lp LinksPage
	getJSON(t, base+"/links", &lp)
	if len(lp.Pipelines) != 1 {
		t.Fatalf("links page has %d pipeline rows, want 1: %+v", len(lp.Pipelines), lp.Pipelines)
	}
	row := lp.Pipelines[0]
	if row.Link != link || row.Shards != shards || len(row.ShardRecords) != shards {
		t.Fatalf("pipeline row = %+v, want link %s with %d shards", row, link, shards)
	}
	var sum uint64
	for _, n := range row.ShardRecords {
		sum += n
	}
	// One flow, one record per interval; the newest record is still in
	// the open window.
	if sum == 0 {
		t.Errorf("per-shard records sum to 0, want the in-window records: %+v", row)
	}
	if row.Stalls != 0 {
		t.Errorf("stalls = %d on an unpressured link", row.Stalls)
	}

	// The flight recorder carries the stage-overlap column (zero or
	// positive; never negative by the clamp).
	body := getBody(t, base+"/links/"+link+"/debug/intervals")
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		var tr obs.IntervalTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("debug intervals line %d: %v", n, err)
		}
		if tr.StageOverlapNanos < 0 {
			t.Errorf("trace %d: negative stage overlap %d", n, tr.StageOverlapNanos)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("flight recorder has %d traces, want 5", n)
	}
}

// TestMetricsScrapesRaceIngest hammers /metrics, /healthz, /readyz and
// /links from several goroutines while ingest creates new links (one
// per engine ID) and seals intervals — the scrape paths race link
// registration and pipeline workers. Every scraped page must pass the
// exposition lint. Run with -race.
func TestMetricsScrapesRaceIngest(t *testing.T) {
	d := newObsDaemon(t, nil)
	base := "http://" + d.HTTPAddr().String()
	start := d.cfg.Start

	stop := make(chan struct{})
	var sender, scrapers sync.WaitGroup
	sender.Add(1)
	go func() {
		defer sender.Done()
		conn, err := net.Dial("udp", d.UDPAddr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			at := start.Add(time.Duration(i) * 20 * time.Second)
			wire := v5wire(t, uint8(i%24), at, 500)
			if _, err := conn.Write(wire); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				page := getBody(t, base+"/metrics")
				if err := report.LintExposition(strings.NewReader(page)); err != nil {
					t.Errorf("scrape %d fails lint: %v", i, err)
					return
				}
				var h Health
				getJSON(t, base+"/healthz", &h)
				if h.Status != "ok" || !h.Ready {
					t.Errorf("healthz mid-ingest = %+v", h)
					return
				}
				getBody(t, base+"/readyz")
				var lp LinksPage
				getJSON(t, base+"/links", &lp)
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	sender.Wait()
}

// TestMetricsByteStableQuietDaemon: once ingest is drained, consecutive
// /metrics scrapes must be byte-identical — every family renders in a
// deterministic order (store families in sorted link order, registry
// families in registration order) and no sample moves on a quiet
// daemon.
func TestMetricsByteStableQuietDaemon(t *testing.T) {
	d := newObsDaemon(t, nil)
	start := d.cfg.Start
	var wires [][]byte
	for e := uint8(0); e < 3; e++ {
		for i := 0; i < 3; i++ {
			wires = append(wires, v5wire(t, e, start.Add(time.Duration(i)*time.Minute+15*time.Second), 800))
		}
	}
	sendWires(t, d, wires)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.HTTPAddr().String()
	first := getBody(t, base+"/metrics")
	if err := report.LintExposition(strings.NewReader(first)); err != nil {
		t.Fatalf("lint: %v", err)
	}
	for i := 0; i < 3; i++ {
		if again := getBody(t, base+"/metrics"); again != first {
			t.Fatalf("scrape %d differs from the first:\n--- first\n%s\n--- again\n%s", i+2, first, again)
		}
	}
}

// TestReadyzStaleness exercises the liveness/readiness split: an empty
// daemon is ready (cold start, waiting for exporters); once links exist
// and every one goes StaleAfter without sealing an interval, /readyz
// flips to 503 while /healthz keeps answering 200; one link sealing
// again restores readiness.
func TestReadyzStaleness(t *testing.T) {
	const staleAfter = 75 * time.Millisecond
	d := newObsDaemon(t, func(c *Config) { c.StaleAfter = staleAfter })
	base := "http://" + d.HTTPAddr().String()

	var rd Readiness
	getJSON(t, base+"/readyz", &rd)
	if !rd.Ready || len(rd.Links) != 0 {
		t.Fatalf("empty daemon readiness = %+v, want ready", rd)
	}
	if rd.StaleAfterSeconds != staleAfter.Seconds() {
		t.Errorf("stale_after_seconds = %v, want %v", rd.StaleAfterSeconds, staleAfter.Seconds())
	}

	// A known link that never seals goes stale past the threshold.
	ls := d.Store().GetOrCreate("x@0", 4)
	time.Sleep(2 * staleAfter)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-stale readyz = %s, want 503", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	if rd.Ready || len(rd.Links) != 1 || !rd.Links[0].Stale || rd.Links[0].StalenessSeconds <= staleAfter.Seconds() {
		t.Errorf("all-stale readiness = %+v", rd)
	}
	// Liveness is unaffected; /healthz mirrors the readiness signal.
	var h Health
	getJSON(t, base+"/healthz", &h)
	if h.Status != "ok" || h.Ready || len(h.LinkHealth) != 1 {
		t.Errorf("healthz while stale = %+v", h)
	}

	// A seal resets the link's staleness clock: ready again.
	ls.RecordResult(0, time.Now(), resultWith(pfx("10.0.0.0/24")), agg.StreamStats{Closed: 1})
	getJSON(t, base+"/readyz", &rd)
	if !rd.Ready || rd.Links[0].Stale {
		t.Errorf("post-seal readiness = %+v", rd)
	}
}

// TestPprofGate: the profiling handlers exist only when Config.Pprof is
// set — the default daemon keeps its debug surface closed.
func TestPprofGate(t *testing.T) {
	off := newObsDaemon(t, nil)
	resp, err := http.Get("http://" + off.HTTPAddr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: GET /debug/pprof/ = %s, want 404", resp.Status)
	}

	on := newObsDaemon(t, func(c *Config) { c.Pprof = true })
	base := "http://" + on.HTTPAddr().String()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof on: GET %s = %s, want 200", path, resp.Status)
		}
	}
	if fmt.Sprint(on.cfg.Pprof) != "true" {
		t.Error("config did not retain Pprof")
	}
}
