// Package serve is the live monitoring subsystem: a resident daemon
// that ingests NetFlow v5 over UDP, classifies elephants per link as
// measurement intervals close, and answers "who are the elephants right
// now" over HTTP — the deployment the paper implies, where the
// two-feature classification runs continuously at a POP rather than
// over a finite trace.
//
// Data flows through the daemon in one direction:
//
//	UDP sockets → decode → demux by exporter (source IP @ engine ID)
//	  → attribute records against the BGP table
//	  → per-link engine.LivePipeline (StreamAccumulator → core.Pipeline)
//	  → sharded Store (current ElephantSet, interval-summary ring,
//	    ingest counters)
//	  → HTTP API (/links, /links/{id}/elephants, /links/{id}/history,
//	    /healthz, /metrics)
//
// Ingest is sharded across Config.Readers goroutines. Where the
// platform supports SO_REUSEPORT each reader owns its own socket bound
// to the same address, and the kernel hashes every exporter's 4-tuple
// to a fixed socket — so exactly one reader ever sees a given link's
// datagrams and per-link record order is preserved without any
// cross-reader coordination; elsewhere the readers share one socket
// (scaling decode, not socket drain). Each reader reuses a private
// decode scratch (netflow.DecodeInto) and attribution batch, and link
// lookup is one atomic load on a copy-on-write map, so a datagram for
// an existing link travels read → decode → dispatch without allocating
// or taking a lock. Each link's pipeline runs on its own worker with a
// bounded record queue, so ingest and classification of different links
// never serialise on each other, and the engine's determinism contract
// (single consumer, fresh pipeline state per link) holds for however
// long the daemon lives. Memory per link is the
// accumulator window plus the fixed-capacity history ring, independent
// of uptime: each link's pipeline owns a core.FlowTable interning its
// prefixes into dense IDs, the whole per-interval path runs on
// ID-indexed columns (one hash per decoded record, none per flow per
// interval), and classifier eviction recycles the IDs of long-idle
// flows, bounding the identity table by the live flow set.
//
// Shutdown is graceful and two-phase: DrainIngest consumes what the
// kernel has buffered on every socket, closes every link's open
// intervals (the same flush end-of-stream batch runs perform) and
// records final counters in the store — the API keeps serving the
// completed run — then Shutdown stops the HTTP server. cmd/elephantd is
// the thin binary over this package; cmd/nfreplay feeds it synthetic
// traffic for smoke tests, demos and saturation runs
// (scripts/saturation.sh).
package serve
