// Package serve is the live monitoring subsystem: a resident daemon
// that ingests NetFlow v5 over UDP, classifies elephants per link as
// measurement intervals close, and answers "who are the elephants right
// now" over HTTP — the deployment the paper implies, where the
// two-feature classification runs continuously at a POP rather than
// over a finite trace.
//
// Data flows through the daemon in one direction:
//
//	UDP sockets → decode → demux by exporter (source IP @ engine ID)
//	  → attribute records against the BGP table
//	  → per-link engine.LivePipeline (StreamAccumulator → core.Pipeline)
//	  → sharded Store (current ElephantSet, interval-summary ring,
//	    ingest counters)
//	  → HTTP API (/links, /links/{id}/elephants, /links/{id}/history,
//	    /links/{id}/debug/intervals, /healthz, /readyz, /metrics)
//
// Ingest is sharded across Config.Readers goroutines. Where the
// platform supports SO_REUSEPORT each reader owns its own socket bound
// to the same address, and the kernel hashes every exporter's 4-tuple
// to a fixed socket — so exactly one reader ever sees a given link's
// datagrams and per-link record order is preserved without any
// cross-reader coordination; elsewhere the readers share one socket
// (scaling decode, not socket drain). Each reader reuses a private
// decode scratch (netflow.DecodeInto) and attribution batch, and link
// lookup is one atomic load on a copy-on-write map, so a datagram for
// an existing link travels read → decode → dispatch without allocating
// or taking a lock. Each link's pipeline runs on its own worker with a
// bounded record queue, so ingest and classification of different links
// never serialise on each other, and the engine's determinism contract
// (single consumer, fresh pipeline state per link) holds for however
// long the daemon lives. Memory per link is the
// accumulator window plus the fixed-capacity history ring, independent
// of uptime: each link's pipeline owns a core.FlowTable interning its
// prefixes into dense IDs, the whole per-interval path runs on
// ID-indexed columns (one hash per decoded record, none per flow per
// interval), and classifier eviction recycles the IDs of long-idle
// flows, bounding the identity table by the live flow set.
//
// The daemon is itself observed. Each link carries an obs.LinkMetrics
// registered as its pipeline's core.StageObserver — stage-latency
// histograms (detect/classify/step), promote/demote churn counters,
// raw-threshold and watermark-lag gauges, all labelled by link — and an
// obs.FlightRecorder, a fixed ring of per-interval traces journalled as
// intervals seal. /metrics renders the store-backed families plus the
// obs registry (byte-stable between scrapes on a quiet daemon, linted
// by report.LintExposition / cmd/explint); /links/{id}/debug/intervals
// serves the flight ring as JSONL, and cmd/elephantd also dumps every
// ring to stderr on SIGUSR1. /healthz is pure liveness (always 200,
// with per-link staleness detail); /readyz is readiness — 503 once
// links exist and every one has gone longer than Config.StaleAfter
// (default 3× the interval) without sealing. Config.Pprof optionally
// mounts net/http/pprof under /debug/pprof/ on the same mux. All
// instrumentation on the per-interval path is allocation-free (atomics
// and pre-allocated rings); rendering happens on scrape goroutines.
//
// Shutdown is graceful and two-phase: DrainIngest consumes what the
// kernel has buffered on every socket, closes every link's open
// intervals (the same flush end-of-stream batch runs perform) and
// records final counters in the store — the API keeps serving the
// completed run — then Shutdown stops the HTTP server. cmd/elephantd is
// the thin binary over this package; cmd/nfreplay feeds it synthetic
// traffic for smoke tests, demos and saturation runs
// (scripts/saturation.sh).
package serve
