package serve

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/netflow"
	"repro/internal/scheme"
)

// logCapture is a concurrency-safe Logf sink for asserting on the
// daemon's log volume.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) count(substr string) int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	n := 0
	for _, l := range lc.lines {
		if strings.Contains(l, substr) {
			n++
		}
	}
	return n
}

// TestConcurrentLinkCreation hammers the copy-on-write dispatch with M
// goroutines racing over the same fresh exporter identities: every link
// must end up with exactly one pipeline (one "new link" log line, one
// store entry) and no datagram may escape the per-link accounting. Run
// with -race: this is the link map's publication-safety test.
func TestConcurrentLinkCreation(t *testing.T) {
	const (
		goroutines = 8
		links      = 32
	)
	table, err := bgp.Generate(bgp.GenConfig{Routes: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var logs logCapture
	d, err := NewDaemon(Config{
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Table:    table,
		Scheme:   scheme.MustParse("load"),
		Interval: time.Minute,
		Logf:     logs.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	})

	// 20 distinct routed flows per link: above the pipeline's default
	// MinFlows, so the shutdown flush classifies instead of failing.
	const recsPerDatagram = 20
	routes := table.Routes()
	at := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine is its own "reader": private scratch, same
			// exporter identities as everyone else.
			r := newReader(0, nil, 0)
			recs := make([]netflow.Record, recsPerDatagram)
			for i := range recs {
				recs[i] = netflow.Record{
					DstAddr: routes[i].Prefix.Addr(),
					Octets:  uint32(1000 * (i + 1)),
					First:   1000,
					Last:    1000,
				}
			}
			dg := netflow.Datagram{
				Header: netflow.Header{
					Count:     recsPerDatagram,
					SysUptime: 1000,
					UnixSecs:  uint32(at.Unix()),
				},
				Records: recs,
			}
			for i := 0; i < links; i++ {
				// links/2 distinct exporter addresses × 2 engine slots.
				ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 1, byte(i / 2)}), 2055)
				dg.Header.EngineID = uint8(i % 2)
				d.dispatch(r, ap, &dg)
			}
		}()
	}
	wg.Wait()

	if got := d.store.Len(); got != links {
		t.Fatalf("store has %d links, want %d", got, links)
	}
	if got := len(*d.links.Load()); got != links {
		t.Fatalf("link map has %d entries, want %d", got, links)
	}
	if got := logs.count("new link"); got != links {
		t.Errorf("%d \"new link\" creations logged, want exactly %d (one pipeline per link)", got, links)
	}
	for _, sum := range d.store.Summaries() {
		if sum.Error != "" {
			t.Errorf("link %s failed: %s", sum.ID, sum.Error)
		}
		in := sum.Ingest
		if in.Datagrams != goroutines {
			t.Errorf("link %s: %d datagrams, want %d", sum.ID, in.Datagrams, goroutines)
		}
		if in.Records != recsPerDatagram*goroutines {
			t.Errorf("link %s: %d records, want %d", sum.ID, in.Records, recsPerDatagram*goroutines)
		}
		if in.Routed+in.Unrouted+in.Dropped != in.Records {
			t.Errorf("link %s: routed %d + unrouted %d + dropped %d != records %d — datagram accounting lost",
				sum.ID, in.Routed, in.Unrouted, in.Dropped, in.Records)
		}
		if in.Unrouted != 0 {
			t.Errorf("link %s: %d unrouted, want 0 (destinations are table routes)", sum.ID, in.Unrouted)
		}
	}
}

// TestDecodeErrorLogRateLimited floods the daemon with malformed
// datagrams through the real socket: every one must be counted, but the
// per-datagram log line must be rate-limited to the first occurrence
// (plus at most a periodic summary), not one line per datagram.
func TestDecodeErrorLogRateLimited(t *testing.T) {
	const flood = 400
	table, err := bgp.Generate(bgp.GenConfig{Routes: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var logs logCapture
	d, err := NewDaemon(Config{
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Table:    table,
		Scheme:   scheme.MustParse("load"),
		Readers:  2,
		Interval: time.Minute,
		Logf:     logs.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	})

	conn, err := net.Dial("udp", d.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < flood; i++ {
		if _, err := conn.Write([]byte{0, 9, 0, 1, 0xba, 0xad}); err != nil {
			t.Fatal(err)
		}
		if i%64 == 63 {
			time.Sleep(time.Millisecond) // stay under the socket buffer
		}
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		_, _, decodeErrors := d.ingestTotals()
		if decodeErrors == flood {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counted %d decode errors before deadline, want %d", decodeErrors, flood)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The flood fits well inside one decodeLogPeriod: the first error
	// logs, the CAS race may let one more line through, the rest fold
	// into the suppressed counter.
	if got := logs.count("datagram from"); got > 2 {
		t.Errorf("%d decode-error log lines for %d malformed datagrams, want <= 2", got, flood)
	}
}
