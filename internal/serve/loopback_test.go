package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netflow"
	"repro/internal/scheme"
	"repro/internal/trace"
)

// TestLoopbackEquivalence is the serving subsystem's acceptance test:
// synthetic traffic goes through the router-model flow cache
// (netflow.Exporter), the resulting v5 datagrams travel through a real
// UDP socket into a running daemon, and the elephant sets the HTTP API
// reports per interval must equal what the batch pipeline computes from
// the very same datagrams — at every ingest reader count, pinning that
// the sharded REUSEPORT front-end preserves per-link record order (one
// exporter socket hashes to one reader). Alongside, /metrics must
// report zero decode errors and zero late drops for the run. Run with
// -race: the test exercises the full ingest/store/HTTP concurrency.
func TestLoopbackEquivalence(t *testing.T) {
	const (
		intervals = 5
		interval  = 30 * time.Second
	)
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)

	table, err := bgp.Generate(bgp.GenConfig{Routes: 1200, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	link, err := trace.NewLink(trace.LinkConfig{
		Name:        "edge",
		Profile:     trace.FlatProfile(),
		MeanLoadBps: 2e5,
		Flows:       120,
		Table:       table,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := link.GenerateSeries(start, interval, intervals)
	var capture bytes.Buffer
	if _, err := trace.NewPacketEmitter(22).Emit(&capture, series); err != nil {
		t.Fatal(err)
	}

	// Router model: flow cache → datagrams. Each emitted datagram is
	// kept as its wire bytes (what travels over UDP) and simultaneously
	// fed to the batch reference collector.
	refSeries := agg.NewSeries(start, interval, intervals+2)
	collector := netflow.NewCollector(table, refSeries)
	var wires [][]byte
	exporter := netflow.NewExporter(netflow.ExporterConfig{
		ActiveTimeout:   30 * time.Second,
		InactiveTimeout: 10 * time.Second,
	}, func(dg *netflow.Datagram) error {
		wire, err := dg.Encode(nil)
		if err != nil {
			return err
		}
		wires = append(wires, append([]byte(nil), wire...))
		collector.AddDatagram(dg)
		return nil
	})
	src, err := agg.NewPcapPacketSource(bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ts, sum, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := exporter.AddPacket(ts, sum); err != nil {
			t.Fatal(err)
		}
	}
	if err := exporter.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wires) == 0 {
		t.Fatal("exporter produced no datagrams")
	}

	// Batch reference: the engine over the collected series.
	sp := scheme.MustParse("load+latent")
	batch, err := (&engine.MultiLinkEngine{}).Run([]engine.Link{
		{ID: "ref", Series: refSeries, Config: sp.Factory()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil {
		t.Fatal(batch[0].Err)
	}
	ref := batch[0].Results

	for _, readers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("readers=%d", readers), func(t *testing.T) {
			loopbackRun(t, table, sp, wires, ref, collector, start, interval, intervals, readers)
		})
	}
}

// loopbackRun drives one daemon instance (at the given reader count)
// with the pre-captured wire datagrams and asserts API ≡ batch.
func loopbackRun(t *testing.T, table *bgp.Table, sp *scheme.Spec, wires [][]byte,
	ref []core.Result, collector *netflow.Collector,
	start time.Time, interval time.Duration, intervals, readers int) {
	// The daemon under test, anchored at the same interval origin.
	d, err := NewDaemon(Config{
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Table:    table,
		Scheme:   sp,
		Readers:  readers,
		Interval: interval,
		Start:    start,
		History:  64,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Readers(); got != readers {
		t.Fatalf("Readers() = %d, want %d", got, readers)
	}
	d.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer d.Shutdown(ctx)
	base := "http://" + d.HTTPAddr().String()

	conn, err := net.Dial("udp", d.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i, wire := range wires {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		if i%32 == 31 {
			time.Sleep(2 * time.Millisecond) // stay under the socket buffer
		}
	}

	// Wait until every datagram has been pulled off the socket.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var h Health
		getJSON(t, base+"/healthz", &h)
		if h.Status != "ok" {
			t.Fatalf("healthz status %q", h.Status)
		}
		if h.Datagrams >= uint64(len(wires)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon ingested %d of %d datagrams before deadline", h.Datagrams, len(wires))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drain: close remaining intervals and flush final state. The API
	// keeps serving the completed run.
	if err := d.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}

	var page LinksPage
	getJSON(t, base+"/links", &page)
	if len(page.Links) != 1 {
		t.Fatalf("links = %+v, want exactly one", page.Links)
	}
	if len(page.Readers) != readers {
		t.Fatalf("reader rows = %d, want %d", len(page.Readers), readers)
	}
	var readerDatagrams uint64
	for _, rs := range page.Readers {
		readerDatagrams += rs.Datagrams
		if rs.DecodeErrors != 0 {
			t.Errorf("reader %d: %d decode errors", rs.Reader, rs.DecodeErrors)
		}
		if rs.ReceiveBufferBytes <= 0 {
			t.Errorf("reader %d: effective receive buffer %d, want > 0 readback", rs.Reader, rs.ReceiveBufferBytes)
		}
	}
	if readerDatagrams != uint64(len(wires)) {
		t.Errorf("per-reader datagrams sum to %d, want %d", readerDatagrams, len(wires))
	}
	ls := page.Links[0]
	if ls.ID != "127.0.0.1@0" {
		t.Errorf("link ID = %q, want 127.0.0.1@0", ls.ID)
	}
	if ls.Error != "" {
		t.Fatalf("link failed: %s", ls.Error)
	}
	if ls.Ingest.Datagrams != uint64(len(wires)) {
		t.Errorf("link datagrams = %d, want %d", ls.Ingest.Datagrams, len(wires))
	}
	if ls.Ingest.Records != collector.Stats.Records {
		t.Errorf("link records = %d, collector saw %d", ls.Ingest.Records, collector.Stats.Records)
	}
	if ls.Ingest.Unrouted != collector.Stats.Unrouted {
		t.Errorf("unrouted = %d, collector saw %d", ls.Ingest.Unrouted, collector.Stats.Unrouted)
	}

	// Per-interval equivalence through the API: every closed interval's
	// elephant set must match the batch pipeline's.
	var hist HistoryPage
	getJSON(t, base+"/links/"+ls.ID+"/history?flows=1", &hist)
	if len(hist.Entries) == 0 {
		t.Fatal("no closed intervals in history")
	}
	if len(hist.Entries) > len(ref) {
		t.Fatalf("daemon closed %d intervals, batch has %d", len(hist.Entries), len(ref))
	}
	if len(hist.Entries) < intervals {
		t.Errorf("daemon closed %d intervals, want >= %d", len(hist.Entries), intervals)
	}
	for _, e := range hist.Entries {
		want := ref[e.Interval]
		wantFlows := make([]string, 0, want.Elephants.Len())
		for _, p := range want.Elephants.Flows() {
			wantFlows = append(wantFlows, p.String())
		}
		if fmt.Sprint(e.Flows) != fmt.Sprint(wantFlows) {
			t.Errorf("interval %d: elephants %v, batch says %v", e.Interval, e.Flows, wantFlows)
		}
		if e.Elephants != want.ElephantCount() {
			t.Errorf("interval %d: count %d, batch %d", e.Interval, e.Elephants, want.ElephantCount())
		}
		if at := start.Add(time.Duration(e.Interval) * interval); !e.Start.Equal(at) {
			t.Errorf("interval %d: start %v, want %v", e.Interval, e.Start, at)
		}
	}

	// The current set is the last closed interval's.
	var cur Elephants
	getJSON(t, base+"/links/"+ls.ID+"/elephants", &cur)
	lastEntry := hist.Entries[len(hist.Entries)-1]
	if cur.Interval != lastEntry.Interval {
		t.Errorf("current interval = %d, want %d", cur.Interval, lastEntry.Interval)
	}
	if fmt.Sprint(cur.Flows) != fmt.Sprint(lastEntry.Flows) {
		t.Errorf("current flows %v != history tail %v", cur.Flows, lastEntry.Flows)
	}

	// Metrics: a clean run means zero decode errors and zero drops.
	metrics := getBody(t, base+"/metrics")
	for _, want := range []string{
		"elephantd_decode_errors_total 0",
		`elephantd_link_late_records_total{link="127.0.0.1@0"} 0`,
		`elephantd_link_far_future_total{link="127.0.0.1@0"} 0`,
		fmt.Sprintf(`elephantd_link_intervals_closed_total{link="127.0.0.1@0"} %d`, len(hist.Entries)),
	} {
		if !strings.Contains(metrics, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body)
}
