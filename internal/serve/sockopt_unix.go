//go:build unix

package serve

import (
	"errors"
	"net"
	"syscall"
)

// controlReusePort is the net.ListenConfig.Control hook that marks a
// socket SO_REUSEPORT before bind, letting N sockets share one UDP
// address with the kernel hashing each exporter's flow to a fixed
// socket.
func controlReusePort(network, address string, c syscall.RawConn) error {
	if !reusePortSupported {
		return errors.ErrUnsupported
	}
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}

// effectiveReadBuffer reads back SO_RCVBUF after SetReadBuffer's
// best-effort request: the size the kernel actually granted (Linux
// doubles the request for bookkeeping overhead and clamps it to
// net.core.rmem_max), 0 when unknowable. Reported instead of silently
// trusting the request, so an operator can see a clamped buffer before
// it shows up as drops under burst.
func effectiveReadBuffer(conn *net.UDPConn) int {
	rc, err := conn.SyscallConn()
	if err != nil {
		return 0
	}
	var v int
	if err := rc.Control(func(fd uintptr) {
		v, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF)
	}); err != nil {
		return 0
	}
	return v
}
