//go:build darwin || dragonfly || freebsd || netbsd || openbsd

package serve

// The BSDs (and Darwin) all define SO_REUSEPORT as 0x200 in
// sys/socket.h; on these kernels the option balances UDP datagrams
// across the sharing sockets just as Linux does.
const (
	soReusePort        = 0x200
	reusePortSupported = true
)
