package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netflow"
	"repro/internal/obs"
)

// reader is one ingest goroutine's private state: its socket, a receive
// buffer, the netflow decode scratch and the attributed-record batch —
// everything the read→decode→dispatch path touches per datagram lives
// here, so the steady state allocates nothing and readers share only
// the link-map pointer and the per-link state they demultiplex into.
type reader struct {
	index int
	conn  *net.UDPConn // owned socket (REUSEPORT) or the shared fallback socket

	buf  []byte           // datagram receive buffer (max UDP payload)
	dg   netflow.Datagram // decode scratch; Records reused across datagrams
	recs []agg.Record     // attributed-record batch handed to SendBatch

	// Per-reader counters, exported through /metrics and /links.
	datagrams    atomic.Uint64
	records      atomic.Uint64
	decodeErrors atomic.Uint64

	// rcvbuf is conn's effective kernel receive buffer (post-clamp
	// SO_RCVBUF readback); fan-out readers sharing a socket report the
	// same value.
	rcvbuf int
}

func newReader(index int, conn *net.UDPConn, rcvbuf int) *reader {
	return &reader{
		index:  index,
		conn:   conn,
		buf:    make([]byte, 1<<16),
		recs:   make([]agg.Record, 0, netflow.MaxRecordsPerDatagram),
		rcvbuf: rcvbuf,
	}
}

// listenUDP binds the ingest sockets: n SO_REUSEPORT sockets sharing
// addr when the platform has the option — each reader then owns one
// socket, with its own kernel buffer, and the kernel hashes each
// exporter's 4-tuple to a fixed socket — else one plain socket that all
// n readers share (N-way fan-out: less parallel under load, same
// interface). Each socket's receive buffer is requested at rcvbuf; the
// caller reads back what was granted per conn.
func listenUDP(addr string, n, rcvbuf int) (conns []*net.UDPConn, reuseport bool, err error) {
	single := func() ([]*net.UDPConn, bool, error) {
		uaddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, false, fmt.Errorf("serve: resolving UDP address: %w", err)
		}
		c, err := net.ListenUDP("udp", uaddr)
		if err != nil {
			return nil, false, fmt.Errorf("serve: listening on UDP: %w", err)
		}
		_ = c.SetReadBuffer(rcvbuf)
		return []*net.UDPConn{c}, false, nil
	}
	if n <= 1 {
		return single()
	}
	lc := net.ListenConfig{Control: controlReusePort}
	first, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		// No SO_REUSEPORT on this platform (or the kernel refused it):
		// fall back to a single shared socket.
		return single()
	}
	conns = []*net.UDPConn{first.(*net.UDPConn)}
	// Subsequent sockets must bind the concrete port the first one got
	// (addr may have asked for ":0").
	bound := first.LocalAddr().String()
	for len(conns) < n {
		pc, err := lc.ListenPacket(context.Background(), "udp", bound)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, false, fmt.Errorf("serve: listening on UDP (reuseport socket %d): %w", len(conns), err)
		}
		conns = append(conns, pc.(*net.UDPConn))
	}
	for _, c := range conns {
		_ = c.SetReadBuffer(rcvbuf)
	}
	return conns, true, nil
}

// linkKey identifies a link on the dispatch fast path without building
// the string ID: the exporter's (unmapped) source address plus the v5
// engine ID. Comparable, so the link-map lookup allocates nothing.
type linkKey struct {
	addr   netip.Addr
	engine uint8
}

// linkMap is the copy-on-write exporter→pipeline index. Readers load
// the current map through an atomic pointer and only ever read it;
// createLink publishes a fresh copy under linkMu. Lock-free lookups at
// any reader count, at the cost of an O(links) copy on the (rare) first
// sight of a new exporter.
type linkMap map[linkKey]*liveLink

// findLink is the lock-free read path: one atomic load, one map lookup.
func (d *Daemon) findLink(key linkKey) *liveLink {
	return (*d.links.Load())[key]
}

// createLink builds the link's pipeline and publishes a new link map —
// the slow path, serialized by linkMu so exactly one pipeline exists
// per link however many readers race on first sight.
func (d *Daemon) createLink(key linkKey) (*liveLink, error) {
	d.linkMu.Lock()
	defer d.linkMu.Unlock()
	old := *d.links.Load()
	if ll, ok := old[key]; ok {
		return ll, nil
	}
	id := linkID(key.addr, key.engine)
	state := d.store.GetOrCreate(id, d.cfg.History)
	// Per-link instrumentation: the metrics bundle rides the pipeline as
	// its stage observer; the result hook journals each sealed interval
	// into the flight recorder. Both the observer and the hook run on the
	// pipeline's worker goroutine, inside the same seal, so om.Last() is
	// always this interval's observation. lp is captured before first
	// use: the worker can only reach OnResult via a record sent after
	// createLink published the link (channel send orders the assignment).
	om := obs.NewLinkMetrics(d.reg, id, d.cfg.Shards, obs.DefaultStageBounds())
	fr := obs.NewFlightRecorder(d.cfg.FlightRecorder)
	factory := d.cfg.Scheme.Factory()
	var lp *engine.LivePipeline
	var err error
	lp, err = engine.NewLivePipeline(engine.LiveLink{
		ID:       id,
		Start:    d.cfg.Start,
		Interval: d.cfg.Interval,
		Window:   d.cfg.Window,
		Buffer:   d.cfg.Buffer,
		Shards:   d.cfg.Shards,
		Config: func() (core.Config, error) {
			cc, err := factory()
			if err != nil {
				return cc, err
			}
			cc.Observer = om
			return cc, nil
		},
		OnResult: func(t int, at time.Time, res core.Result, stats agg.StreamStats) error {
			state.RecordResult(t, at, res, stats)
			o := om.Last()
			fr.Record(obs.IntervalTrace{
				Interval:          t,
				SealedUnixNanos:   time.Now().UnixNano(),
				DetectNanos:       o.DetectNanos,
				ClassifyNanos:     o.ClassifyNanos,
				FinalizeNanos:     o.FinalizeNanos,
				StepNanos:         o.StepNanos,
				RawThreshold:      o.RawThreshold,
				Threshold:         o.Threshold,
				TotalLoad:         o.TotalLoad,
				ElephantLoad:      o.ElephantLoad,
				ActiveFlows:       o.ActiveFlows,
				Elephants:         o.Elephants,
				Promoted:          o.Promoted,
				Demoted:           o.Demoted,
				WatermarkLagNanos: int64(lp.LastSealLag()),
				StageOverlapNanos: int64(lp.LastOverlap()),
			})
			om.StageOverlap.Observe(lp.LastOverlap().Seconds())
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	ll := &liveLink{id: id, state: state, lp: lp, om: om, fr: fr}
	next := make(linkMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = ll
	d.links.Store(&next)
	d.cfg.Logf("serve: new link %s", id)
	return ll, nil
}

// dispatch demultiplexes one decoded datagram: resolve the link
// (lock-free after first sight), attribute each record against the BGP
// table into the reader's reusable batch, and hand the batch to the
// link's pipeline. Per-link record order is preserved at any reader
// count because an exporter's datagrams all arrive on one socket
// (REUSEPORT hashes the exporter's 4-tuple to a fixed socket) and
// dispatch runs on that socket's reader.
func (d *Daemon) dispatch(r *reader, ap netip.AddrPort, dg *netflow.Datagram) {
	key := linkKey{addr: ap.Addr().Unmap(), engine: dg.Header.EngineID}
	ll := d.findLink(key)
	if ll == nil {
		var err error
		if ll, err = d.createLink(key); err != nil {
			// Pipeline construction failed (bad scheme parameters reach
			// Validate earlier, so this is exceptional); account the
			// datagram against a store entry carrying the error.
			state := d.store.GetOrCreate(linkID(key.addr, key.engine), d.cfg.History)
			state.Fail(err)
			state.ObserveDatagram(len(dg.Records), 0, 0, len(dg.Records))
			return
		}
	}
	recs := r.recs[:0]
	unrouted := 0
	for i := range dg.Records {
		rec, ok := netflow.Attribute(d.cfg.Table, dg.Header, dg.Records[i])
		if !ok {
			unrouted++
			continue
		}
		recs = append(recs, rec)
	}
	r.recs = recs
	var routed, dropped int
	if ll.state.Failed() {
		dropped = len(recs)
	} else if sent, err := ll.lp.SendBatch(recs); err != nil {
		routed, dropped = sent, len(recs)-sent
		ll.state.Fail(err)
		d.cfg.Logf("serve: link %s failed: %v", ll.id, err)
	} else {
		routed = sent
	}
	ll.state.ObserveDatagram(len(dg.Records), routed, unrouted, dropped)
}

// readLoop is one reader's loop: read, decode into the private scratch,
// dispatch. N of these run concurrently, one per REUSEPORT socket (or
// all sharing the fallback socket).
func (d *Daemon) readLoop(r *reader) {
	defer d.readerWG.Done()
	for {
		n, ap, err := r.conn.ReadFromUDPAddrPort(r.buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if d.draining.Load() {
					return // kernel buffer drained
				}
				continue
			}
			d.cfg.Logf("serve: udp read: %v", err)
			continue
		}
		r.datagrams.Add(1)
		if err := netflow.DecodeInto(r.buf[:n], &r.dg); err != nil {
			r.decodeErrors.Add(1)
			d.logDecodeError(n, ap, err)
			continue
		}
		r.records.Add(uint64(len(r.dg.Records)))
		d.dispatch(r, ap, &r.dg)
		if d.draining.Load() {
			// Re-arm the drain deadline after each processed datagram:
			// the read only times out once the kernel buffer is truly
			// empty, however long the backlog took to work through.
			_ = r.conn.SetReadDeadline(time.Now().Add(drainGrace))
		}
	}
}

// decodeLogPeriod floors the interval between decode-error log lines: a
// malformed-packet flood (or a scanner spraying the port) would
// otherwise write one line per datagram. The first error logs
// immediately; later ones fold into at most one summary line per period
// carrying the suppressed count. The per-reader counters and /metrics
// stay exact regardless.
const decodeLogPeriod = 5 * time.Second

func (d *Daemon) logDecodeError(n int, ap netip.AddrPort, err error) {
	now := time.Now().UnixNano()
	last := d.decodeLogLast.Load()
	if (last != 0 && now-last < int64(decodeLogPeriod)) || !d.decodeLogLast.CompareAndSwap(last, now) {
		d.decodeLogSuppressed.Add(1)
		return
	}
	if sup := d.decodeLogSuppressed.Swap(0); sup > 0 {
		d.cfg.Logf("serve: %d-byte datagram from %v: %v (+%d more decode errors since last report)", n, ap, err, sup)
	} else {
		d.cfg.Logf("serve: %d-byte datagram from %v: %v", n, ap, err)
	}
}

// ingestTotals aggregates the per-reader counters into the daemon-wide
// view /healthz and /metrics report.
func (d *Daemon) ingestTotals() (datagrams, records, decodeErrors uint64) {
	for _, r := range d.readers {
		datagrams += r.datagrams.Load()
		records += r.records.Load()
		decodeErrors += r.decodeErrors.Load()
	}
	return datagrams, records, decodeErrors
}

// ReaderStatus is one ingest reader's row in the /links response and
// the per-reader /metrics families.
type ReaderStatus struct {
	Reader       int    `json:"reader"`
	Datagrams    uint64 `json:"datagrams"`
	Records      uint64 `json:"records"`
	DecodeErrors uint64 `json:"decode_errors"`
	// ReceiveBufferBytes is the socket's effective kernel receive
	// buffer: the post-clamp SO_RCVBUF readback, not the requested
	// size. 0 when the platform can't report it.
	ReceiveBufferBytes int `json:"receive_buffer_bytes"`
}

func (d *Daemon) readerStatus() []ReaderStatus {
	out := make([]ReaderStatus, len(d.readers))
	for i, r := range d.readers {
		out[i] = ReaderStatus{
			Reader:             r.index,
			Datagrams:          r.datagrams.Load(),
			Records:            r.records.Load(),
			DecodeErrors:       r.decodeErrors.Load(),
			ReceiveBufferBytes: r.rcvbuf,
		}
	}
	return out
}
