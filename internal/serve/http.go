package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// handler builds the daemon's API mux:
//
//	GET /healthz                  liveness + daemon-wide counters
//	GET /links                    all known links, summarised, sorted
//	GET /links/{id}/elephants     the current elephant set
//	GET /links/{id}/history       recent interval summaries (?n=, ?flows=1)
//	GET /metrics                  Prometheus text exposition
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /links", d.handleLinks)
	mux.HandleFunc("GET /links/{id}/elephants", d.handleElephants)
	mux.HandleFunc("GET /links/{id}/history", d.handleHistory)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

// writeJSON renders one response; encoding errors after the header is
// out are logged, not recoverable.
func (d *Daemon) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		d.cfg.Logf("serve: encoding response: %v", err)
	}
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Scheme        string  `json:"scheme"`
	IntervalSecs  float64 `json:"interval_seconds"`
	Links         int     `json:"links"`
	Readers       int     `json:"readers"`
	ReusePort     bool    `json:"reuseport"`
	Datagrams     uint64  `json:"datagrams"`
	Records       uint64  `json:"records"`
	DecodeErrors  uint64  `json:"decode_errors"`
	Draining      bool    `json:"draining"`
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	datagrams, records, decodeErrors := d.ingestTotals()
	d.writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(d.started).Seconds(),
		Scheme:        d.cfg.Scheme.String(),
		IntervalSecs:  d.cfg.Interval.Seconds(),
		Links:         d.store.Len(),
		Readers:       len(d.readers),
		ReusePort:     d.reuseport,
		Datagrams:     datagrams,
		Records:       records,
		DecodeErrors:  decodeErrors,
		Draining:      d.draining.Load(),
	})
}

// LinksPage is the /links response body: the ingest front-end's
// per-reader status (datagram/record/decode-error counters, effective
// kernel receive buffer) plus every known link, summarised and sorted.
type LinksPage struct {
	ReusePort bool           `json:"reuseport"`
	Readers   []ReaderStatus `json:"readers"`
	Links     []LinkSummary  `json:"links"`
}

func (d *Daemon) handleLinks(w http.ResponseWriter, r *http.Request) {
	d.writeJSON(w, http.StatusOK, LinksPage{
		ReusePort: d.reuseport,
		Readers:   d.readerStatus(),
		Links:     d.store.Summaries(),
	})
}

// linkState resolves the {id} path value, answering 404 on a miss.
func (d *Daemon) linkState(w http.ResponseWriter, r *http.Request) *LinkState {
	id := r.PathValue("id")
	ls := d.store.Get(id)
	if ls == nil {
		d.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown link " + strconv.Quote(id)})
	}
	return ls
}

// Elephants is the /links/{id}/elephants response body: the elephant
// set of the most recent closed interval. Interval is -1 until the
// link's first interval closes.
type Elephants struct {
	Link         string    `json:"link"`
	Interval     int       `json:"interval"`
	Start        time.Time `json:"start"`
	ThresholdBps float64   `json:"threshold_bps"`
	Count        int       `json:"count"`
	Flows        []string  `json:"flows"`
}

func (d *Daemon) handleElephants(w http.ResponseWriter, r *http.Request) {
	ls := d.linkState(w, r)
	if ls == nil {
		return
	}
	sum, set, ok := ls.Current()
	resp := Elephants{Link: ls.ID(), Interval: -1, Flows: []string{}}
	if ok {
		resp.Interval = sum.Interval
		resp.Start = sum.Start
		resp.ThresholdBps = sum.ThresholdBps
		resp.Count = set.Len()
		resp.Flows = make([]string, 0, set.Len())
		for _, p := range set.Flows() {
			resp.Flows = append(resp.Flows, p.String())
		}
	}
	d.writeJSON(w, http.StatusOK, resp)
}

// HistoryPage is the /links/{id}/history response body: up to ?n= (all
// retained when unset) most recent interval summaries, oldest first,
// with per-interval elephant sets when ?flows=1.
type HistoryPage struct {
	Link     string            `json:"link"`
	Capacity int               `json:"capacity"`
	Entries  []IntervalSummary `json:"entries"`
}

func (d *Daemon) handleHistory(w http.ResponseWriter, r *http.Request) {
	ls := d.linkState(w, r)
	if ls == nil {
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			d.writeJSON(w, http.StatusBadRequest, errorBody{Error: "n must be a positive integer"})
			return
		}
		n = v
	}
	includeFlows := r.URL.Query().Get("flows") == "1"
	d.writeJSON(w, http.StatusOK, HistoryPage{
		Link:     ls.ID(),
		Capacity: d.cfg.History,
		Entries:  ls.History(n, includeFlows),
	})
}
