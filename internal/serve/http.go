package serve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// handler builds the daemon's API mux:
//
//	GET /healthz                  liveness + daemon-wide counters + per-link staleness
//	GET /readyz                   readiness: 503 when every link is stale
//	GET /links                    all known links, summarised, sorted
//	GET /links/{id}/elephants     the current elephant set
//	GET /links/{id}/history       recent interval summaries (?n=, ?flows=1)
//	GET /links/{id}/debug/intervals  flight-recorder ring as JSONL
//	GET /metrics                  Prometheus text exposition
//	GET /debug/pprof/...          runtime profiles (only with Config.Pprof)
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /links", d.handleLinks)
	mux.HandleFunc("GET /links/{id}/elephants", d.handleElephants)
	mux.HandleFunc("GET /links/{id}/history", d.handleHistory)
	mux.HandleFunc("GET /links/{id}/debug/intervals", d.handleDebugIntervals)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	if d.cfg.Pprof {
		// The daemon serves its own mux, so the pprof handlers must be
		// wired explicitly (the package's init only touches
		// http.DefaultServeMux). Index dispatches the named profiles
		// (heap, goroutine, block, …) under the subtree.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON renders one response; encoding errors after the header is
// out are logged, not recoverable.
func (d *Daemon) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		d.cfg.Logf("serve: encoding response: %v", err)
	}
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// Health is the /healthz response body. Healthz is liveness — it
// answers 200 whenever the process serves HTTP — but carries the
// readiness signal (Ready plus the per-link staleness rows) so one
// probe shows both.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Scheme        string  `json:"scheme"`
	IntervalSecs  float64 `json:"interval_seconds"`
	Links         int     `json:"links"`
	Readers       int     `json:"readers"`
	ReusePort     bool    `json:"reuseport"`
	Datagrams     uint64  `json:"datagrams"`
	Records       uint64  `json:"records"`
	DecodeErrors  uint64  `json:"decode_errors"`
	Draining      bool    `json:"draining"`
	// Ready mirrors /readyz: false only when links exist and every one
	// is stale beyond StaleAfterSeconds.
	Ready             bool         `json:"ready"`
	StaleAfterSeconds float64      `json:"stale_after_seconds"`
	LinkHealth        []LinkHealth `json:"link_health,omitempty"`
}

// LinkHealth is one link's staleness row in /healthz and /readyz.
type LinkHealth struct {
	ID string `json:"id"`
	// StalenessSeconds is how long since the link last sealed an
	// interval (since first sight when nothing has sealed yet).
	StalenessSeconds float64 `json:"staleness_seconds"`
	Stale            bool    `json:"stale"`
}

// readiness evaluates the staleness rule: a daemon with no links yet is
// ready (waiting for exporters is the normal cold state); once links
// exist it stays ready while at least one still seals intervals within
// StaleAfter.
func (d *Daemon) readiness(now time.Time) (ready bool, rows []LinkHealth) {
	ids := d.store.IDs()
	ready = len(ids) == 0
	rows = make([]LinkHealth, 0, len(ids))
	for _, id := range ids {
		ls := d.store.Get(id)
		if ls == nil {
			continue
		}
		st := ls.Staleness(now)
		stale := st > d.cfg.StaleAfter
		if !stale {
			ready = true
		}
		rows = append(rows, LinkHealth{ID: id, StalenessSeconds: st.Seconds(), Stale: stale})
	}
	return ready, rows
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	datagrams, records, decodeErrors := d.ingestTotals()
	ready, rows := d.readiness(time.Now())
	d.writeJSON(w, http.StatusOK, Health{
		Status:            "ok",
		UptimeSeconds:     time.Since(d.started).Seconds(),
		Scheme:            d.cfg.Scheme.String(),
		IntervalSecs:      d.cfg.Interval.Seconds(),
		Links:             d.store.Len(),
		Readers:           len(d.readers),
		ReusePort:         d.reuseport,
		Datagrams:         datagrams,
		Records:           records,
		DecodeErrors:      decodeErrors,
		Draining:          d.draining.Load(),
		Ready:             ready,
		StaleAfterSeconds: d.cfg.StaleAfter.Seconds(),
		LinkHealth:        rows,
	})
}

// Readiness is the /readyz response body.
type Readiness struct {
	Ready             bool         `json:"ready"`
	StaleAfterSeconds float64      `json:"stale_after_seconds"`
	Links             []LinkHealth `json:"links"`
}

// handleReadyz is the readiness probe: 200 while the daemon is doing
// its job (no links yet, or at least one link sealing intervals), 503
// when links exist and every one has gone StaleAfter without a seal —
// the pipeline is wedged or the exporters all went away.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, rows := d.readiness(time.Now())
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	d.writeJSON(w, status, Readiness{
		Ready:             ready,
		StaleAfterSeconds: d.cfg.StaleAfter.Seconds(),
		Links:             rows,
	})
}

// LinksPage is the /links response body: the ingest front-end's
// per-reader status (datagram/record/decode-error counters, effective
// kernel receive buffer) plus every known link, summarised and sorted.
type LinksPage struct {
	ReusePort bool           `json:"reuseport"`
	Readers   []ReaderStatus `json:"readers"`
	Links     []LinkSummary  `json:"links"`
	// Pipelines carries live-pipeline internals the store summaries
	// don't know: intra-link shard balance and backpressure stalls.
	Pipelines []LinkPipeline `json:"pipelines"`
}

// LinkPipeline is one link's live-pipeline row in /links: the
// accumulation shard layout, where the link's in-window records landed,
// queue-full stall count and the last interval's classify/accumulate
// stage overlap.
type LinkPipeline struct {
	Link              string   `json:"link"`
	Shards            int      `json:"shards"`
	ShardRecords      []uint64 `json:"shard_records"`
	Stalls            uint64   `json:"stalls"`
	StageOverlapNanos int64    `json:"stage_overlap_nanos"`
}

func (d *Daemon) handleLinks(w http.ResponseWriter, r *http.Request) {
	links := *d.links.Load()
	pipes := make([]LinkPipeline, 0, len(links))
	for _, ll := range links {
		pipes = append(pipes, LinkPipeline{
			Link:              ll.id,
			Shards:            ll.lp.Shards(),
			ShardRecords:      ll.lp.ShardRecords(nil),
			Stalls:            ll.lp.Stalls(),
			StageOverlapNanos: int64(ll.lp.LastOverlap()),
		})
	}
	sort.Slice(pipes, func(i, j int) bool { return pipes[i].Link < pipes[j].Link })
	d.writeJSON(w, http.StatusOK, LinksPage{
		ReusePort: d.reuseport,
		Readers:   d.readerStatus(),
		Links:     d.store.Summaries(),
		Pipelines: pipes,
	})
}

// linkState resolves the {id} path value, answering 404 on a miss.
func (d *Daemon) linkState(w http.ResponseWriter, r *http.Request) *LinkState {
	id := r.PathValue("id")
	ls := d.store.Get(id)
	if ls == nil {
		d.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown link " + strconv.Quote(id)})
	}
	return ls
}

// Elephants is the /links/{id}/elephants response body: the elephant
// set of the most recent closed interval. Interval is -1 until the
// link's first interval closes.
type Elephants struct {
	Link         string    `json:"link"`
	Interval     int       `json:"interval"`
	Start        time.Time `json:"start"`
	ThresholdBps float64   `json:"threshold_bps"`
	Count        int       `json:"count"`
	Flows        []string  `json:"flows"`
}

func (d *Daemon) handleElephants(w http.ResponseWriter, r *http.Request) {
	ls := d.linkState(w, r)
	if ls == nil {
		return
	}
	sum, set, ok := ls.Current()
	resp := Elephants{Link: ls.ID(), Interval: -1, Flows: []string{}}
	if ok {
		resp.Interval = sum.Interval
		resp.Start = sum.Start
		resp.ThresholdBps = sum.ThresholdBps
		resp.Count = set.Len()
		resp.Flows = make([]string, 0, set.Len())
		for _, p := range set.Flows() {
			resp.Flows = append(resp.Flows, p.String())
		}
	}
	d.writeJSON(w, http.StatusOK, resp)
}

// HistoryPage is the /links/{id}/history response body: up to ?n= (all
// retained when unset) most recent interval summaries, oldest first,
// with per-interval elephant sets when ?flows=1.
type HistoryPage struct {
	Link     string            `json:"link"`
	Capacity int               `json:"capacity"`
	Entries  []IntervalSummary `json:"entries"`
}

// handleDebugIntervals serves the link's flight-recorder ring as JSONL,
// oldest interval first: one trace per sealed interval with the stage
// timings, threshold, churn and watermark lag the daemon journaled at
// seal time. The recorder lives on the live link (not the store), so
// only links that have seen traffic this run have one.
func (d *Daemon) handleDebugIntervals(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ll := d.findLinkByID(id)
	if ll == nil {
		d.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown link " + strconv.Quote(id)})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := ll.fr.WriteJSONL(w); err != nil {
		d.cfg.Logf("serve: writing debug intervals: %v", err)
	}
}

// findLinkByID resolves a live link by its string ID — the cold-path
// complement of the keyed findLink: a linear scan over the link map,
// fine at debug-endpoint rates.
func (d *Daemon) findLinkByID(id string) *liveLink {
	for _, ll := range *d.links.Load() {
		if ll.id == id {
			return ll
		}
	}
	return nil
}

func (d *Daemon) handleHistory(w http.ResponseWriter, r *http.Request) {
	ls := d.linkState(w, r)
	if ls == nil {
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			d.writeJSON(w, http.StatusBadRequest, errorBody{Error: "n must be a positive integer"})
			return
		}
		n = v
	}
	includeFlows := r.URL.Query().Get("flows") == "1"
	d.writeJSON(w, http.StatusOK, HistoryPage{
		Link:     ls.ID(),
		Capacity: d.cfg.History,
		Entries:  ls.History(n, includeFlows),
	})
}
