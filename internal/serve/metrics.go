package serve

import (
	"net/http"
	"strconv"

	"repro/internal/report"
)

// b2f renders a boolean as a 0/1 gauge sample.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// handleMetrics renders the daemon's counters in the Prometheus text
// exposition format via report.MetricsWriter. Links are emitted in
// sorted ID order, so consecutive scrapes of a quiet daemon are
// byte-identical.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	m := report.NewMetricsWriter(w)
	datagrams, records, decodeErrors := d.ingestTotals()
	m.Family("elephantd_datagrams_total", "UDP datagrams received.", "counter")
	m.Sample("elephantd_datagrams_total", nil, float64(datagrams))
	m.Family("elephantd_records_total", "NetFlow records carried by well-formed datagrams.", "counter")
	m.Sample("elephantd_records_total", nil, float64(records))
	m.Family("elephantd_decode_errors_total", "Datagrams rejected by the NetFlow v5 decoder.", "counter")
	m.Sample("elephantd_decode_errors_total", nil, float64(decodeErrors))
	m.Family("elephantd_links", "Links currently known to the state store.", "gauge")
	m.Sample("elephantd_links", nil, float64(d.store.Len()))
	m.Family("elephantd_readers", "Ingest reader goroutines.", "gauge")
	m.Sample("elephantd_readers", nil, float64(len(d.readers)))
	m.Family("elephantd_reuseport", "1 when each reader owns a SO_REUSEPORT socket, 0 in single-socket fan-out mode.", "gauge")
	m.Sample("elephantd_reuseport", nil, b2f(d.reuseport))

	// Per-reader ingest counters: where the front-end's load lands.
	readerRows := d.readerStatus()
	readerCounter := func(name, help string, v func(ReaderStatus) float64) {
		m.Family(name, help, "counter")
		for _, row := range readerRows {
			m.Sample(name, []report.Label{{Name: "reader", Value: strconv.Itoa(row.Reader)}}, v(row))
		}
	}
	readerCounter("elephantd_reader_datagrams_total", "UDP datagrams received by the reader.",
		func(s ReaderStatus) float64 { return float64(s.Datagrams) })
	readerCounter("elephantd_reader_records_total", "NetFlow records decoded by the reader.",
		func(s ReaderStatus) float64 { return float64(s.Records) })
	readerCounter("elephantd_reader_decode_errors_total", "Datagrams the reader's decoder rejected.",
		func(s ReaderStatus) float64 { return float64(s.DecodeErrors) })
	m.Family("elephantd_reader_receive_buffer_bytes", "Effective kernel receive buffer of the reader's socket (post-clamp SO_RCVBUF readback).", "gauge")
	for _, row := range readerRows {
		m.Sample("elephantd_reader_receive_buffer_bytes",
			[]report.Label{{Name: "reader", Value: strconv.Itoa(row.Reader)}}, float64(row.ReceiveBufferBytes))
	}

	rows := d.store.Summaries()

	// Per-link counters: each family contiguous over all links, as the
	// exposition format requires.
	counter := func(name, help string, v func(LinkSummary) float64) {
		m.Family(name, help, "counter")
		for _, row := range rows {
			m.Sample(name, []report.Label{{Name: "link", Value: row.ID}}, v(row))
		}
	}
	gauge := func(name, help string, v func(LinkSummary) float64) {
		m.Family(name, help, "gauge")
		for _, row := range rows {
			m.Sample(name, []report.Label{{Name: "link", Value: row.ID}}, v(row))
		}
	}

	counter("elephantd_link_datagrams_total", "Datagrams demultiplexed to the link.",
		func(s LinkSummary) float64 { return float64(s.Ingest.Datagrams) })
	counter("elephantd_link_records_total", "Flow records demultiplexed to the link.",
		func(s LinkSummary) float64 { return float64(s.Ingest.Records) })
	counter("elephantd_link_routed_total", "Records attributed to a BGP prefix and classified.",
		func(s LinkSummary) float64 { return float64(s.Ingest.Routed) })
	counter("elephantd_link_unrouted_total", "Records with no matching route, skipped.",
		func(s LinkSummary) float64 { return float64(s.Ingest.Unrouted) })
	counter("elephantd_link_dropped_total", "Routed records discarded because the link's pipeline failed.",
		func(s LinkSummary) float64 { return float64(s.Ingest.Dropped) })
	counter("elephantd_link_late_records_total", "Records whose bits fell entirely behind the closed interval edge.",
		func(s LinkSummary) float64 { return float64(s.Stream.Late) })
	counter("elephantd_link_far_future_total", "Records dropped for advancing the window implausibly far.",
		func(s LinkSummary) float64 { return float64(s.Stream.FarFuture) })
	counter("elephantd_link_intervals_closed_total", "Measurement intervals closed and classified.",
		func(s LinkSummary) float64 { return float64(s.Stream.Closed) })
	counter("elephantd_link_evicted_flows_total", "Flow rows released by closing intervals.",
		func(s LinkSummary) float64 { return float64(s.Stream.EvictedFlows) })

	gauge("elephantd_link_failed", "1 when the link's pipeline has failed, else 0.",
		func(s LinkSummary) float64 {
			if s.Error != "" {
				return 1
			}
			return 0
		})
	gauge("elephantd_link_elephants", "Elephant count of the last closed interval.",
		func(s LinkSummary) float64 {
			if s.Last == nil {
				return 0
			}
			return float64(s.Last.Elephants)
		})
	gauge("elephantd_link_active_flows", "Active flow count of the last closed interval.",
		func(s LinkSummary) float64 {
			if s.Last == nil {
				return 0
			}
			return float64(s.Last.ActiveFlows)
		})
	gauge("elephantd_link_load_bps", "Total load of the last closed interval (bit/s).",
		func(s LinkSummary) float64 {
			if s.Last == nil {
				return 0
			}
			return s.Last.TotalLoadBps
		})
	gauge("elephantd_link_elephant_load_fraction", "Fraction of load carried by elephants in the last closed interval.",
		func(s LinkSummary) float64 {
			if s.Last == nil {
				return 0
			}
			return s.Last.LoadFraction
		})
	gauge("elephantd_link_threshold_bps", "Smoothed elephant threshold of the last closed interval (bit/s).",
		func(s LinkSummary) float64 {
			if s.Last == nil {
				return 0
			}
			return s.Last.ThresholdBps
		})

	// Instrumentation families (stage histograms, churn counters,
	// threshold/lag gauges, shard balance) render from the registry.
	// The lag, stall and shard series mirror pipeline-internal state:
	// refresh each link's from its live pipeline first.
	for _, ll := range *d.links.Load() {
		ll.om.WatermarkLag.Set(ll.lp.WatermarkLag().Seconds())
		ll.om.Stalls.Store(ll.lp.Stalls())
		ll.om.SetShardRecords(ll.lp.ShardRecords(nil))
	}
	d.reg.Render(m)

	if err := m.Err(); err != nil {
		d.cfg.Logf("serve: rendering metrics: %v", err)
	}
}
