//go:build linux

package serve

// SO_REUSEPORT is not exported by the syscall package on Linux and the
// module is dependency-free (no golang.org/x/sys), so the value is
// spelled here: include/uapi/asm-generic/socket.h pins it at 15 on
// every Linux architecture the Go port targets.
const (
	soReusePort        = 0xf
	reusePortSupported = true
)
