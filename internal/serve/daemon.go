package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netflow"
	"repro/internal/scheme"
)

// DefaultInterval is the paper's measurement interval Δ.
const DefaultInterval = 5 * time.Minute

// DefaultReadBuffer is the UDP socket receive-buffer request: large
// enough to ride out an exporter's burst while a pipeline worker is
// closing an interval.
const DefaultReadBuffer = 1 << 22

// drainGrace is how long DrainIngest keeps reading an idle socket
// before concluding the kernel buffer is empty.
const drainGrace = 100 * time.Millisecond

// Config assembles a Daemon.
type Config struct {
	// UDPAddr is the NetFlow v5 listen address, e.g. ":2055". Required.
	UDPAddr string
	// HTTPAddr is the query/metrics API listen address. Required.
	HTTPAddr string
	// Table routes record destinations to BGP prefixes. Required.
	Table *bgp.Table
	// Scheme is the classification scheme every link runs. Required.
	Scheme *scheme.Spec
	// Interval is the measurement interval Δ; 0 selects
	// DefaultInterval.
	Interval time.Duration
	// Window is the per-link accumulator's open-interval count; 0
	// derives it from the scheme via engine.StreamWindow.
	Window int
	// Start anchors interval 0 for every link. The zero value aligns
	// each link's interval 0 to its own first record — the usual live
	// deployment; a fixed Start makes intervals comparable across links
	// (and reproducible in tests).
	Start time.Time
	// History is the per-link summary ring capacity; 0 selects
	// DefaultHistory.
	History int
	// Buffer is the per-link record queue capacity; 0 selects
	// engine.DefaultLiveBuffer.
	Buffer int
	// ReadBuffer is the UDP receive-buffer size to request; 0 selects
	// DefaultReadBuffer.
	ReadBuffer int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// liveLink pairs a link's pipeline with its store entry. Only the
// ingest loop touches the map holding these; the state inside is
// concurrency-safe.
type liveLink struct {
	state *LinkState
	lp    *engine.LivePipeline
}

// Daemon is the live monitoring process: a UDP NetFlow v5 collector
// demultiplexing datagrams into per-link classification pipelines, a
// sharded state store, and an HTTP query/metrics API. See the package
// documentation for the lifecycle.
type Daemon struct {
	cfg   Config
	store *Store

	udp     *net.UDPConn
	httpLn  net.Listener
	httpSrv *http.Server

	// links is owned by the ingest loop; DrainIngest reads it only
	// after the loop has exited (ordered by loopDone).
	links    map[string]*liveLink
	loopDone chan struct{}
	httpDone chan struct{}
	httpErr  error

	draining atomic.Bool
	started  time.Time

	// Daemon-wide ingest counters. Decode errors are counted here (a
	// malformed datagram cannot be attributed to a link), as are
	// datagrams/records before demultiplexing.
	datagrams    atomic.Uint64
	records      atomic.Uint64
	decodeErrors atomic.Uint64

	drainOnce sync.Once
	drainErr  error
	shutOnce  sync.Once
	shutErr   error
}

// NewDaemon validates cfg and binds both sockets; the daemon is not
// serving until Start.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("serve: NewDaemon: Table is required")
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("serve: NewDaemon: Scheme is required")
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, fmt.Errorf("serve: NewDaemon: %w", err)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("serve: NewDaemon: non-positive interval %v", cfg.Interval)
	}
	cfg.Window = engine.StreamWindow(cfg.Scheme, cfg.Window)
	if cfg.History == 0 {
		cfg.History = DefaultHistory
	}
	if cfg.ReadBuffer == 0 {
		cfg.ReadBuffer = DefaultReadBuffer
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	uaddr, err := net.ResolveUDPAddr("udp", cfg.UDPAddr)
	if err != nil {
		return nil, fmt.Errorf("serve: resolving UDP address: %w", err)
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("serve: listening on UDP: %w", err)
	}
	// Best effort: some kernels clamp the request, which only narrows
	// the burst tolerance.
	_ = udp.SetReadBuffer(cfg.ReadBuffer)

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("serve: listening on HTTP: %w", err)
	}

	d := &Daemon{
		cfg:      cfg,
		store:    NewStore(),
		udp:      udp,
		httpLn:   ln,
		links:    make(map[string]*liveLink),
		loopDone: make(chan struct{}),
		httpDone: make(chan struct{}),
	}
	d.httpSrv = &http.Server{
		Handler:           d.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return d, nil
}

// Store exposes the daemon's state store (read-only use; handlers and
// tests).
func (d *Daemon) Store() *Store { return d.store }

// UDPAddr returns the bound NetFlow listen address.
func (d *Daemon) UDPAddr() net.Addr { return d.udp.LocalAddr() }

// HTTPAddr returns the bound API listen address.
func (d *Daemon) HTTPAddr() net.Addr { return d.httpLn.Addr() }

// Start launches the ingest loop and the HTTP server.
func (d *Daemon) Start() {
	d.started = time.Now()
	go d.ingestLoop()
	go func() {
		defer close(d.httpDone)
		if err := d.httpSrv.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.httpErr = err
			d.cfg.Logf("serve: http: %v", err)
		}
	}()
	d.cfg.Logf("serve: listening — NetFlow v5 on %v, API on %v, scheme %s, interval %v, window %d",
		d.UDPAddr(), d.HTTPAddr(), d.cfg.Scheme, d.cfg.Interval, d.cfg.Window)
}

// Run is the blocking convenience wrapper: Start, serve until ctx is
// cancelled, then Shutdown with the given grace period.
func (d *Daemon) Run(ctx context.Context, grace time.Duration) error {
	d.Start()
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return d.Shutdown(sctx)
}

// linkID names the link a datagram belongs to: the exporter's source
// address plus the v5 engine ID, "192.0.2.1@0" — one router exporting
// from several slots shows up as several links, as it should (each slot
// is its own flow cache and sequence space).
func linkID(addr netip.Addr, engineID uint8) string {
	return addr.Unmap().String() + "@" + strconv.Itoa(int(engineID))
}

// link returns the live pipeline for id, creating it on first sight.
// Called only from the ingest loop.
func (d *Daemon) link(id string) (*liveLink, error) {
	if ll, ok := d.links[id]; ok {
		return ll, nil
	}
	state := d.store.GetOrCreate(id, d.cfg.History)
	lp, err := engine.NewLivePipeline(engine.LiveLink{
		ID:       id,
		Start:    d.cfg.Start,
		Interval: d.cfg.Interval,
		Window:   d.cfg.Window,
		Buffer:   d.cfg.Buffer,
		Config:   d.cfg.Scheme.Factory(),
		OnResult: func(t int, at time.Time, res core.Result, stats agg.StreamStats) error {
			state.RecordResult(t, at, res, stats)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	ll := &liveLink{state: state, lp: lp}
	d.links[id] = ll
	d.cfg.Logf("serve: new link %s", id)
	return ll, nil
}

// ingestLoop is the UDP read loop: read, decode, demultiplex, attribute,
// push. One goroutine reads the socket; per-link pipeline workers do
// the classification, so a slow interval close on one link backpressures
// only that link's queue.
func (d *Daemon) ingestLoop() {
	defer close(d.loopDone)
	buf := make([]byte, 1<<16)
	for {
		n, ap, err := d.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if d.draining.Load() {
					return // kernel buffer drained
				}
				continue
			}
			d.cfg.Logf("serve: udp read: %v", err)
			continue
		}
		d.datagrams.Add(1)
		dg, err := netflow.Decode(buf[:n])
		if err != nil {
			d.decodeErrors.Add(1)
			d.cfg.Logf("serve: %d-byte datagram from %v: %v", n, ap, err)
			continue
		}
		d.records.Add(uint64(len(dg.Records)))
		id := linkID(ap.Addr(), dg.Header.EngineID)
		ll, err := d.link(id)
		if err != nil {
			// Pipeline construction failed (bad scheme parameters reach
			// Validate earlier, so this is exceptional); account the
			// datagram against a store entry carrying the error.
			state := d.store.GetOrCreate(id, d.cfg.History)
			state.Fail(err)
			state.ObserveDatagram(len(dg.Records), 0, 0, len(dg.Records))
			continue
		}
		var routed, unrouted, dropped int
		failed := ll.state.Failed()
		for i := range dg.Records {
			rec, ok := netflow.Attribute(d.cfg.Table, dg.Header, dg.Records[i])
			if !ok {
				unrouted++
				continue
			}
			if failed {
				dropped++
				continue
			}
			if err := ll.lp.Send(rec); err != nil {
				ll.state.Fail(err)
				d.cfg.Logf("serve: link %s failed: %v", id, err)
				failed = true
				dropped++
				continue
			}
			routed++
		}
		ll.state.ObserveDatagram(len(dg.Records), routed, unrouted, dropped)
		if d.draining.Load() {
			// Re-arm the drain deadline after each processed datagram:
			// the read only times out once the kernel buffer is truly
			// empty, however long the backlog took to work through.
			_ = d.udp.SetReadDeadline(time.Now().Add(drainGrace))
		}
	}
}

// DrainIngest performs the ingest half of a graceful shutdown: stop
// accepting new datagrams once the kernel buffer is empty, close every
// link's remaining open intervals (final flush through each pipeline),
// and record the final accumulator counters in the store. The HTTP API
// keeps serving — after DrainIngest the store holds the complete run,
// queryable until Shutdown. Safe to call more than once.
func (d *Daemon) DrainIngest(ctx context.Context) error {
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		// A deadline slightly in the future lets the loop consume
		// everything already buffered, then time out and exit.
		_ = d.udp.SetReadDeadline(time.Now().Add(drainGrace))
		select {
		case <-d.loopDone:
		case <-ctx.Done():
			// Forced: abandon buffered datagrams.
			d.udp.Close()
			<-d.loopDone
		}
		_ = d.udp.Close()

		// The loop has exited; d.links is safely readable here. Close
		// pipelines in ID order for deterministic logs.
		for _, id := range d.store.IDs() {
			ll, ok := d.links[id]
			if !ok {
				continue
			}
			if err := ll.lp.Close(); err != nil {
				ll.state.Fail(err)
				if d.drainErr == nil {
					d.drainErr = err
				}
			}
			ll.state.SetStreamStats(ll.lp.Stats())
			// Records that were queued when the pipeline failed were
			// discarded unclassified: move them from Routed to Dropped
			// so the final counters say what actually happened.
			ll.state.ReclassifyDropped(ll.lp.Dropped())
		}
		d.cfg.Logf("serve: ingest drained — %d datagrams, %d records, %d decode errors, %d links",
			d.datagrams.Load(), d.records.Load(), d.decodeErrors.Load(), d.store.Len())
	})
	return d.drainErr
}

// Shutdown gracefully stops the daemon: DrainIngest (drain the socket,
// close intervals, flush final snapshots into the store), then stop the
// HTTP server. Safe to call more than once.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.shutOnce.Do(func() {
		d.shutErr = d.DrainIngest(ctx)
		if err := d.httpSrv.Shutdown(ctx); err != nil && d.shutErr == nil {
			d.shutErr = err
		}
		<-d.httpDone
		if d.httpErr != nil && d.shutErr == nil {
			d.shutErr = d.httpErr
		}
	})
	return d.shutErr
}
