package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// DefaultInterval is the paper's measurement interval Δ.
const DefaultInterval = 5 * time.Minute

// DefaultReadBuffer is the UDP socket receive-buffer request: large
// enough to ride out an exporter's burst while a pipeline worker is
// closing an interval.
const DefaultReadBuffer = 1 << 22

// MaxReaders caps the ingest shard count: past one socket per core the
// extra readers only add scheduling overhead.
const MaxReaders = 64

// drainGrace is how long DrainIngest keeps reading an idle socket
// before concluding the kernel buffer is empty.
const drainGrace = 100 * time.Millisecond

// DefaultReaders is the reader-count heuristic cmd/elephantd defaults
// to: one reader per core up to 8 — past that the classification
// pipelines want the cores more than the sockets do.
func DefaultReaders() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// DefaultShards is the per-link accumulation shard heuristic
// cmd/elephantd defaults to: one shard per core up to 4. A single POP
// link rarely profits from more than a handful of shards — the merge
// and classify stages are serial — and the readers and other links
// want the remaining cores.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Config assembles a Daemon.
type Config struct {
	// UDPAddr is the NetFlow v5 listen address, e.g. ":2055". Required.
	UDPAddr string
	// HTTPAddr is the query/metrics API listen address. Required.
	HTTPAddr string
	// Table routes record destinations to BGP prefixes. Required.
	Table *bgp.Table
	// Scheme is the classification scheme every link runs. Required.
	Scheme *scheme.Spec
	// Readers is the number of ingest reader goroutines; 0 selects 1.
	// When the platform supports SO_REUSEPORT each reader owns its own
	// socket (kernel-hashed exporter sharding); otherwise all readers
	// share one socket.
	Readers int
	// Interval is the measurement interval Δ; 0 selects
	// DefaultInterval.
	Interval time.Duration
	// Window is the per-link accumulator's open-interval count; 0
	// derives it from the scheme via engine.StreamWindow.
	Window int
	// Start anchors interval 0 for every link. The zero value aligns
	// each link's interval 0 to its own first record — the usual live
	// deployment; a fixed Start makes intervals comparable across links
	// (and reproducible in tests).
	Start time.Time
	// History is the per-link summary ring capacity; 0 selects
	// DefaultHistory.
	History int
	// Buffer is the per-link record queue capacity; 0 selects
	// engine.DefaultLiveBuffer.
	Buffer int
	// Shards is the per-link accumulation shard count: how many worker
	// goroutines split each link's flow columns (emitted snapshots are
	// bit-identical at any setting). 0 selects 1 (serial); values above
	// agg.MaxShards are clamped. cmd/elephantd defaults this to
	// DefaultShards.
	Shards int
	// ReadBuffer is the UDP receive-buffer size to request per socket;
	// 0 selects DefaultReadBuffer. The granted (post-clamp) size is
	// reported per reader via /links and /metrics.
	ReadBuffer int
	// StaleAfter is how long a link may go without sealing an interval
	// before /readyz counts it stale; 0 selects 3×Interval (a link that
	// missed two consecutive seals plus slack is in trouble).
	StaleAfter time.Duration
	// FlightRecorder is the per-link flight-recorder ring capacity
	// (interval traces retained for /links/{id}/debug/intervals and the
	// signal dump); 0 selects obs.DefaultFlightRecorder.
	FlightRecorder int
	// Pprof enables the net/http/pprof handlers under /debug/pprof/ on
	// the API listener. Off by default: the profiling surface is a
	// debugging aid, not part of the query API.
	Pprof bool
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// liveLink pairs a link's pipeline with its store entry and its
// instrumentation: the obs.LinkMetrics attached as the pipeline's stage
// observer and the flight recorder its result hook journals into. The
// link map holding these is copy-on-write (see linkMap in ingest.go);
// the state inside is concurrency-safe.
type liveLink struct {
	id    string
	state *LinkState
	lp    *engine.LivePipeline
	om    *obs.LinkMetrics
	fr    *obs.FlightRecorder
}

// Daemon is the live monitoring process: a sharded UDP NetFlow v5
// collector demultiplexing datagrams into per-link classification
// pipelines, a sharded state store, and an HTTP query/metrics API. See
// the package documentation for the lifecycle.
type Daemon struct {
	cfg   Config
	store *Store
	// reg holds the per-link instrumentation families (stage histograms,
	// churn counters, threshold/lag gauges); /metrics renders it after
	// the store-backed families. Links register in first-sight order, so
	// a quiet daemon's scrapes stay byte-identical.
	reg *obs.Registry

	conns     []*net.UDPConn // ingest sockets; len 1 in fan-out mode
	reuseport bool           // true when each reader owns a REUSEPORT socket
	readers   []*reader
	readerWG  sync.WaitGroup

	httpLn  net.Listener
	httpSrv *http.Server

	// links is the copy-on-write exporter→pipeline index; readers load
	// it lock-free, createLink publishes new versions under linkMu.
	links    atomic.Pointer[linkMap]
	linkMu   sync.Mutex
	loopDone chan struct{} // closed when every reader has exited
	httpDone chan struct{}
	httpErr  error

	draining atomic.Bool
	started  time.Time

	// Decode-error log rate limiting (see logDecodeError).
	decodeLogLast       atomic.Int64
	decodeLogSuppressed atomic.Uint64

	drainOnce sync.Once
	drainErr  error
	shutOnce  sync.Once
	shutErr   error
}

// NewDaemon validates cfg and binds the sockets; the daemon is not
// serving until Start.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("serve: NewDaemon: Table is required")
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("serve: NewDaemon: Scheme is required")
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, fmt.Errorf("serve: NewDaemon: %w", err)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("serve: NewDaemon: non-positive interval %v", cfg.Interval)
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 1
	}
	if cfg.Readers > MaxReaders {
		cfg.Readers = MaxReaders
	}
	cfg.Window = engine.StreamWindow(cfg.Scheme, cfg.Window)
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > agg.MaxShards {
		cfg.Shards = agg.MaxShards
	}
	if cfg.History == 0 {
		cfg.History = DefaultHistory
	}
	if cfg.ReadBuffer == 0 {
		cfg.ReadBuffer = DefaultReadBuffer
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	if cfg.StaleAfter < 0 {
		return nil, fmt.Errorf("serve: NewDaemon: negative stale-after %v", cfg.StaleAfter)
	}
	if cfg.FlightRecorder <= 0 {
		cfg.FlightRecorder = obs.DefaultFlightRecorder
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	conns, reuseport, err := listenUDP(cfg.UDPAddr, cfg.Readers, cfg.ReadBuffer)
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", cfg.HTTPAddr)
	if err != nil {
		for _, c := range conns {
			c.Close()
		}
		return nil, fmt.Errorf("serve: listening on HTTP: %w", err)
	}

	d := &Daemon{
		cfg:       cfg,
		store:     NewStore(),
		reg:       obs.NewRegistry(),
		conns:     conns,
		reuseport: reuseport,
		httpLn:    ln,
		loopDone:  make(chan struct{}),
		httpDone:  make(chan struct{}),
	}
	empty := make(linkMap)
	d.links.Store(&empty)
	rcvbufs := make([]int, len(conns))
	for i, c := range conns {
		rcvbufs[i] = effectiveReadBuffer(c)
	}
	d.readers = make([]*reader, cfg.Readers)
	for i := range d.readers {
		d.readers[i] = newReader(i, conns[i%len(conns)], rcvbufs[i%len(conns)])
	}
	d.httpSrv = &http.Server{
		Handler:           d.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return d, nil
}

// Store exposes the daemon's state store (read-only use; handlers and
// tests).
func (d *Daemon) Store() *Store { return d.store }

// UDPAddr returns the bound NetFlow listen address (shared by every
// reader socket).
func (d *Daemon) UDPAddr() net.Addr { return d.conns[0].LocalAddr() }

// HTTPAddr returns the bound API listen address.
func (d *Daemon) HTTPAddr() net.Addr { return d.httpLn.Addr() }

// Readers reports the ingest reader count.
func (d *Daemon) Readers() int { return len(d.readers) }

// ReusePort reports whether each reader owns a SO_REUSEPORT socket
// (false means the single-socket fan-out fallback).
func (d *Daemon) ReusePort() bool { return d.reuseport }

// Start launches the ingest readers and the HTTP server.
func (d *Daemon) Start() {
	d.started = time.Now()
	d.readerWG.Add(len(d.readers))
	for _, r := range d.readers {
		go d.readLoop(r)
	}
	go func() {
		d.readerWG.Wait()
		close(d.loopDone)
	}()
	go func() {
		defer close(d.httpDone)
		if err := d.httpSrv.Serve(d.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.httpErr = err
			d.cfg.Logf("serve: http: %v", err)
		}
	}()
	mode := "reuseport"
	if !d.reuseport {
		mode = "shared-socket"
	}
	d.cfg.Logf("serve: listening — NetFlow v5 on %v (%d readers, %s), API on %v, scheme %s, interval %v, window %d",
		d.UDPAddr(), len(d.readers), mode, d.HTTPAddr(), d.cfg.Scheme, d.cfg.Interval, d.cfg.Window)
}

// Run is the blocking convenience wrapper: Start, serve until ctx is
// cancelled, then Shutdown with the given grace period.
func (d *Daemon) Run(ctx context.Context, grace time.Duration) error {
	d.Start()
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	return d.Shutdown(sctx)
}

// linkID names the link a datagram belongs to: the exporter's source
// address plus the v5 engine ID, "192.0.2.1@0" — one router exporting
// from several slots shows up as several links, as it should (each slot
// is its own flow cache and sequence space).
func linkID(addr netip.Addr, engineID uint8) string {
	return addr.Unmap().String() + "@" + strconv.Itoa(int(engineID))
}

// DrainIngest performs the ingest half of a graceful shutdown: stop
// accepting new datagrams once every socket's kernel buffer is empty,
// close every link's remaining open intervals (final flush through each
// pipeline), and record the final accumulator counters in the store.
// The HTTP API keeps serving — after DrainIngest the store holds the
// complete run, queryable until Shutdown. Safe to call more than once.
func (d *Daemon) DrainIngest(ctx context.Context) error {
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		// A deadline slightly in the future lets each reader consume
		// everything already buffered, then time out and exit.
		for _, c := range d.conns {
			_ = c.SetReadDeadline(time.Now().Add(drainGrace))
		}
		select {
		case <-d.loopDone:
		case <-ctx.Done():
			// Forced: abandon buffered datagrams.
			for _, c := range d.conns {
				c.Close()
			}
			<-d.loopDone
		}
		for _, c := range d.conns {
			_ = c.Close()
		}

		// The readers have exited; the link map is quiescent. Close
		// pipelines in ID order for deterministic logs.
		m := *d.links.Load()
		lls := make([]*liveLink, 0, len(m))
		for _, ll := range m {
			lls = append(lls, ll)
		}
		sort.Slice(lls, func(i, j int) bool { return lls[i].id < lls[j].id })
		for _, ll := range lls {
			if err := ll.lp.Close(); err != nil {
				ll.state.Fail(err)
				if d.drainErr == nil {
					d.drainErr = err
				}
			}
			ll.state.SetStreamStats(ll.lp.Stats())
			// Records that were queued when the pipeline failed were
			// discarded unclassified: move them from Routed to Dropped
			// so the final counters say what actually happened.
			ll.state.ReclassifyDropped(ll.lp.Dropped())
		}
		datagrams, records, decodeErrors := d.ingestTotals()
		d.cfg.Logf("serve: ingest drained — %d datagrams, %d records, %d decode errors, %d links, %d readers",
			datagrams, records, decodeErrors, d.store.Len(), len(d.readers))
	})
	return d.drainErr
}

// DumpFlightRecorders writes every link's retained interval traces to
// w, links in ID order, each preceded by a "# link <id> …" header line
// and serialized as JSONL (the same shape /links/{id}/debug/intervals
// serves). cmd/elephantd wires it to SIGUSR1 for post-hoc incident
// inspection without the HTTP API.
func (d *Daemon) DumpFlightRecorders(w io.Writer) error {
	m := *d.links.Load()
	lls := make([]*liveLink, 0, len(m))
	for _, ll := range m {
		lls = append(lls, ll)
	}
	sort.Slice(lls, func(i, j int) bool { return lls[i].id < lls[j].id })
	for _, ll := range lls {
		if _, err := fmt.Fprintf(w, "# link %s (%d of %d traces)\n", ll.id, ll.fr.Len(), ll.fr.Cap()); err != nil {
			return err
		}
		if err := ll.fr.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown gracefully stops the daemon: DrainIngest (drain the sockets,
// close intervals, flush final snapshots into the store), then stop the
// HTTP server. Safe to call more than once.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.shutOnce.Do(func() {
		d.shutErr = d.DrainIngest(ctx)
		if err := d.httpSrv.Shutdown(ctx); err != nil && d.shutErr == nil {
			d.shutErr = err
		}
		<-d.httpDone
		if d.httpErr != nil && d.shutErr == nil {
			d.shutErr = d.httpErr
		}
	})
	return d.shutErr
}
