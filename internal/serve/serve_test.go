package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/scheme"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func resultWith(elephants ...netip.Prefix) core.Result {
	return core.Result{
		Elephants:   core.NewElephantSet(elephants...),
		TotalLoad:   1e6,
		ActiveFlows: 10,
		Threshold:   5e5,
	}
}

func TestLinkStateHistoryRing(t *testing.T) {
	ls := newLinkState("l", 4)
	t0 := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		ls.RecordResult(i, t0.Add(time.Duration(i)*time.Minute),
			resultWith(pfx(fmt.Sprintf("10.0.%d.0/24", i))), agg.StreamStats{Closed: i + 1})
	}
	hist := ls.History(0, true)
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want ring capacity 4", len(hist))
	}
	for i, e := range hist {
		wantT := 6 + i // oldest retained is interval 6
		if e.Interval != wantT {
			t.Errorf("entry %d: interval %d, want %d", i, e.Interval, wantT)
		}
		if want := fmt.Sprintf("[10.0.%d.0/24]", wantT); fmt.Sprint(e.Flows) != want {
			t.Errorf("entry %d: flows %v, want %v", i, e.Flows, want)
		}
	}
	// n narrows to the most recent entries; flows omitted when not asked.
	tail := ls.History(2, false)
	if len(tail) != 2 || tail[1].Interval != 9 || tail[0].Interval != 8 {
		t.Errorf("History(2) = %+v", tail)
	}
	if tail[0].Flows != nil {
		t.Error("flows included without being requested")
	}
	// Each interval replaces the whole set: one promotion, one demotion.
	if tail[1].Promoted != 1 || tail[1].Demoted != 1 {
		t.Errorf("churn = +%d/-%d, want +1/-1", tail[1].Promoted, tail[1].Demoted)
	}
	sum, set, ok := ls.Current()
	if !ok || sum.Interval != 9 || !set.Contains(pfx("10.0.9.0/24")) {
		t.Errorf("Current() = %+v, %v, %v", sum, set, ok)
	}
}

// TestChurnCounts pins the store's churn source: RecordResult counts
// membership churn via core.Churn, the same merge pass the pipeline's
// stage observer uses, so /metrics and the history ring always agree.
func TestChurnCounts(t *testing.T) {
	a := core.NewElephantSet(pfx("10.0.0.0/24"), pfx("10.0.1.0/24"), pfx("10.0.2.0/24"))
	b := core.NewElephantSet(pfx("10.0.1.0/24"), pfx("10.0.3.0/24"))
	promoted, demoted := core.Churn(a, b)
	if promoted != 1 || demoted != 2 {
		t.Errorf("churn = +%d/-%d, want +1/-2", promoted, demoted)
	}
	if p, d := core.Churn(core.ElephantSet{}, a); p != 3 || d != 0 {
		t.Errorf("churn from empty = +%d/-%d", p, d)
	}
}

func TestStoreShardsAndConcurrency(t *testing.T) {
	s := NewStore()
	const links = 64
	var wg sync.WaitGroup
	for i := 0; i < links; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ls := s.GetOrCreate(fmt.Sprintf("link-%02d", i), 8)
			ls.ObserveDatagram(3, 2, 1, 0)
		}(i)
	}
	wg.Wait()
	if s.Len() != links {
		t.Fatalf("Len = %d, want %d", s.Len(), links)
	}
	ids := s.IDs()
	if len(ids) != links || ids[0] != "link-00" || ids[links-1] != fmt.Sprintf("link-%02d", links-1) {
		t.Errorf("IDs not complete/sorted: %v", ids)
	}
	// GetOrCreate must be idempotent: counters accumulate on one state.
	ls := s.GetOrCreate("link-00", 8)
	ls.ObserveDatagram(3, 2, 1, 0)
	if got := s.Get("link-00").Summary().Ingest; got.Datagrams != 2 || got.Records != 6 {
		t.Errorf("ingest after two datagrams = %+v", got)
	}
	if s.Get("nope") != nil {
		t.Error("unknown link returned state")
	}
}

func TestLinkIDFormat(t *testing.T) {
	cases := []struct {
		addr   string
		engine uint8
		want   string
	}{
		{"10.0.0.1", 0, "10.0.0.1@0"},
		{"::ffff:10.0.0.1", 3, "10.0.0.1@3"}, // 4-in-6 unmapped
		{"2001:db8::1", 7, "2001:db8::1@7"},
	}
	for _, tc := range cases {
		if got := linkID(netip.MustParseAddr(tc.addr), tc.engine); got != tc.want {
			t.Errorf("linkID(%s, %d) = %q, want %q", tc.addr, tc.engine, got, tc.want)
		}
	}
}

// newTestDaemon binds a daemon on loopback ephemeral ports with a tiny
// synthetic table.
func newTestDaemon(t *testing.T) *Daemon {
	t.Helper()
	table, err := bgp.Generate(bgp.GenConfig{Routes: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(Config{
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Table:    table,
		Scheme:   scheme.MustParse("load"),
		Interval: time.Minute,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return d
}

func TestHTTPEndpointsEmptyDaemon(t *testing.T) {
	d := newTestDaemon(t)
	base := "http://" + d.HTTPAddr().String()

	var h Health
	getJSON(t, base+"/healthz", &h)
	if h.Status != "ok" || h.Links != 0 {
		t.Errorf("healthz = %+v", h)
	}
	var page LinksPage
	getJSON(t, base+"/links", &page)
	if len(page.Links) != 0 {
		t.Errorf("links = %+v, want empty", page.Links)
	}
	if len(page.Readers) != 1 {
		t.Errorf("readers = %+v, want one row for the default single reader", page.Readers)
	}
	// Unknown link: 404 on both per-link endpoints.
	for _, path := range []string{"/links/nope@0/elephants", "/links/nope@0/history"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s, want 404", path, resp.Status)
		}
	}
	if !strings.Contains(getBody(t, base+"/metrics"), "elephantd_links 0\n") {
		t.Error("metrics missing elephantd_links 0")
	}
}

func TestDecodeErrorCounted(t *testing.T) {
	d := newTestDaemon(t)
	conn, err := net.Dial("udp", d.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0, 5, 0, 1, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.HTTPAddr().String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var h Health
		getJSON(t, base+"/healthz", &h)
		if h.DecodeErrors == 1 && h.Datagrams == 1 {
			if h.Links != 0 {
				t.Errorf("undecodable datagram created a link: %+v", h)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("decode error never counted: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHistoryBadQuery(t *testing.T) {
	d := newTestDaemon(t)
	// Create a link by recording directly into the store.
	ls := d.Store().GetOrCreate("x@0", 4)
	ls.RecordResult(0, time.Now(), resultWith(pfx("10.0.0.0/24")), agg.StreamStats{Closed: 1})
	base := "http://" + d.HTTPAddr().String()
	resp, err := http.Get(base + "/links/x@0/history?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n = %s, want 400", resp.Status)
	}
	var hist HistoryPage
	getJSON(t, base+"/links/x@0/history?n=1&flows=1", &hist)
	if len(hist.Entries) != 1 || fmt.Sprint(hist.Entries[0].Flows) != "[10.0.0.0/24]" {
		t.Errorf("history = %+v", hist)
	}
}
