//go:build !unix

package serve

import (
	"errors"
	"net"
	"syscall"
)

// Non-unix platforms: no SO_REUSEPORT, no SO_RCVBUF readback. The
// daemon runs with one socket, N-way reader fan-out, and an unknown (0)
// effective receive buffer.
func controlReusePort(network, address string, c syscall.RawConn) error {
	return errors.ErrUnsupported
}

func effectiveReadBuffer(conn *net.UDPConn) int { return 0 }
