//go:build unix && !linux && !darwin && !dragonfly && !freebsd && !netbsd && !openbsd

package serve

// Unix platforms without a known SO_REUSEPORT value (aix, solaris, …):
// the sharded listener falls back to one socket with N-way reader
// fan-out.
const (
	soReusePort        = 0
	reusePortSupported = false
)
