package serve

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/netflow"
	"repro/internal/scheme"
)

// benchWire builds one full 30-record v5 datagram whose destinations
// all route in table, with every record landing in interval 0 (no
// interval ever closes, so the pipeline worker's steady state is pure
// same-flow accumulation).
func benchWire(tb testing.TB, table *bgp.Table, at time.Time) []byte {
	tb.Helper()
	routes := table.Routes()
	if len(routes) == 0 {
		tb.Fatal("empty table")
	}
	recs := make([]netflow.Record, netflow.MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = netflow.Record{
			SrcAddr: netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)}),
			DstAddr: routes[i%len(routes)].Prefix.Addr(),
			Packets: 10,
			Octets:  4000,
			First:   1000,
			Last:    1000,
			Proto:   6,
		}
	}
	dg := &netflow.Datagram{
		Header: netflow.Header{
			Count:     uint16(len(recs)),
			SysUptime: 1000, // record First/Last anchor exactly at UnixSecs
			UnixSecs:  uint32(at.Unix()),
		},
		Records: recs,
	}
	wire, err := dg.Encode(nil)
	if err != nil {
		tb.Fatal(err)
	}
	return wire
}

// BenchmarkIngestDispatch times the daemon's per-datagram hot path —
// DecodeInto into the reader's scratch, link lookup on the
// copy-on-write map, per-record BGP attribution, SendBatch into the
// link pipeline — excluding only the socket read. The acceptance bar is
// 0 allocs/op in steady state: the sharded front-end must be able to
// run at socket speed without GC pressure.
func BenchmarkIngestDispatch(b *testing.B) {
	table, err := bgp.Generate(bgp.GenConfig{Routes: 600, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)
	d, err := NewDaemon(Config{
		UDPAddr:  "127.0.0.1:0",
		HTTPAddr: "127.0.0.1:0",
		Table:    table,
		Scheme:   scheme.MustParse("load+latent"),
		Interval: 5 * time.Minute,
		Start:    start,
	})
	if err != nil {
		b.Fatal(err)
	}
	d.Start() // readers idle on their sockets; we drive dispatch directly
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()

	wire := benchWire(b, table, start)
	ap := netip.MustParseAddrPort("192.0.2.9:2055")
	r := newReader(0, nil, 0)

	// Warm up: create the link, grow the decode scratch and the
	// accumulator's flow columns to steady state. Few enough iterations
	// that the link queue (default 1024 records) still has room, so a
	// single-shot run (-benchtime 1x) times the unblocked dispatch path
	// rather than waiting for the link worker to drain the warmup.
	for i := 0; i < 8; i++ {
		if err := netflow.DecodeInto(wire, &r.dg); err != nil {
			b.Fatal(err)
		}
		d.dispatch(r, ap, &r.dg)
	}

	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := netflow.DecodeInto(wire, &r.dg); err != nil {
			b.Fatal(err)
		}
		d.dispatch(r, ap, &r.dg)
	}
	// The deferred Shutdown (and its ~100ms ingest drain) runs before
	// the framework stops the clock; keep it out of the figure.
	b.StopTimer()
}
