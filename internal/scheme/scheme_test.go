package scheme

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestParseValid is the table-driven grammar test: spec in, canonical
// form and resolved components out.
func TestParseValid(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		det, cls  string
	}{
		{"load+latent", "load+latent", "load", "latent"},
		{"load:beta=0.8+latent:window=12", "load:beta=0.8+latent:window=12", "load", "latent"},
		{"aest+single", "aest+single", "aest", "single"},
		// Single-component specs: a lone detector gets the
		// single-feature classifier, a lone classifier the default
		// detector.
		{"aest", "aest+single", "aest", "single"},
		{"load:beta=0.5", "load:beta=0.5+single", "load", "single"},
		{"topk:k=50", "load+topk:k=50", "load", "topk"},
		{"latent:window=24", "load+latent:window=24", "load", "latent"},
		{"misragries:k=10", "load+misragries:k=10", "load", "misragries"},
		{"spacesaving", "load+spacesaving", "load", "spacesaving"},
		{"fixed:theta=2e6", "fixed:theta=2e6+single", "fixed", "single"},
		// Multiple params render in lexical key order.
		{"misragries:frac=0.01,k=20", "load+misragries:frac=0.01,k=20", "load", "misragries"},
		{"misragries:k=20,frac=0.01", "load+misragries:frac=0.01,k=20", "load", "misragries"},
		// Spaces are tolerated around names, keys and values.
		{" load : beta = 0.7 + latent : window = 6 ", "load:beta=0.7+latent:window=6", "load", "latent"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.canonical {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		if sp.Detector.Name != c.det || sp.Classifier.Name != c.cls {
			t.Errorf("Parse(%q) = %s+%s, want %s+%s", c.in, sp.Detector.Name, sp.Classifier.Name, c.det, c.cls)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("Parse(%q).Validate(): %v", c.in, err)
		}
	}
}

// TestParseErrors pins the error classes and that unknown-name errors
// carry the registry listing (so CLI help can never rot).
func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty component name"},
		{"bogus", "unknown component"},
		{"bogus+single", "unknown detector"},
		{"load+bogus", "unknown classifier"},
		{"load+aest", "is a detector"},
		{"latent+single", "is a classifier"},
		{"load+latent+single", "3 components"},
		{"+single", "empty component name"},
		{"load+", "empty component name"},
		{"load:", "empty parameter list"},
		{"load:beta", "not key=value"},
		{"load:=0.8", "not key=value"},
		{"load:beta=", "empty value"},
		{"load:beta=0.8,beta=0.9", "set twice"},
		{"load:k=5", `no parameter "k"`},
		{"single:k=5", "takes no parameters"},
		{"load:beta=0.8:0.9", "value contains"},
		{"topk:k=1=2", "value contains"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
	// Unknown names enumerate the registry.
	_, err := Parse("nope")
	for _, name := range append(DetectorNames(), ClassifierNames()...) {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-component error does not list %q:\n%v", name, err)
		}
	}
}

// TestValidateValues pins that value errors surface at Validate, not
// Parse (the grammar is value-agnostic).
func TestValidateValues(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"load:beta=2", "outside (0,1)"},
		{"load:beta=x", "not a number"},
		{"aest:fallback=1.5", "outside (0,1)"},
		{"latent:window=0", "window 0 < 1"},
		{"latent:window=1.5", "not an integer"},
		{"latent:evict=-1", "must be non-negative"},
		{"topk:k=0", "top-k with k=0"},
		{"misragries:k=0", "misra-gries with k=0"},
		{"spacesaving:frac=2", "must be below 1"},
		{"fixed+single", "required parameter theta"},
		{"fixed:theta=-5", "must be positive"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v (value errors belong to Validate)", c.in, err)
			continue
		}
		err = sp.Validate()
		if err == nil {
			t.Errorf("Validate(%q): no error, want %q", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Validate(%q) = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// TestRoundTrip: Parse(String()) is the identity on canonical forms for
// every registry example pair.
func TestRoundTrip(t *testing.T) {
	for _, det := range DetectorExamples() {
		for _, cls := range ClassifierExamples() {
			in := det + "+" + cls
			sp, err := Parse(in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", in, err)
			}
			again, err := Parse(sp.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", sp.String(), err)
			}
			if again.String() != sp.String() {
				t.Errorf("round trip %q -> %q -> %q", in, sp.String(), again.String())
			}
		}
	}
}

// TestSpecName pins the display names reports and figures use
// (previously experiments.SchemeConfig.Name).
func TestSpecName(t *testing.T) {
	cases := map[string]string{
		"load":                 "0.80-constant-load",
		"load:beta=0.5":        "0.50-constant-load",
		"aest":                 "aest",
		"aest+latent":          "aest+latent-heat",
		"load+latent":          "0.80-constant-load+latent-heat",
		"topk:k=7":             "0.80-constant-load+top-7",
		"fixed:theta=1e6":      "fixed-1e+06",
		"misragries:k=9":       "0.80-constant-load+misra-gries-9",
		"spacesaving:k=9":      "0.80-constant-load+space-saving-9",
		"load+latent:evict=90": "0.80-constant-load+latent-heat",
	}
	for in, want := range cases {
		if got := MustParse(in).Name(); got != want {
			t.Errorf("Name(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFactoryFreshInstances pins the engine determinism contract: each
// Config call builds independent classifier state.
func TestFactoryFreshInstances(t *testing.T) {
	sp := MustParse("load+latent")
	factory := sp.Factory()
	a, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	b, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	if a.Classifier == b.Classifier {
		t.Fatal("two factory calls returned the same classifier instance")
	}
	if a.Detector == b.Detector {
		t.Fatal("two factory calls returned the same detector instance")
	}
	if a.Alpha != DefaultAlpha {
		t.Errorf("default alpha = %v, want %v", a.Alpha, DefaultAlpha)
	}
}

func TestSpecPipelineLevels(t *testing.T) {
	sp := MustParse("load+single")
	sp.Alpha = 0.25
	sp.MinFlows = 4
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 0.25 || cfg.MinFlows != 4 {
		t.Errorf("alpha/minflows = %v/%d, want 0.25/4", cfg.Alpha, cfg.MinFlows)
	}
}

func TestLatentWindow(t *testing.T) {
	if w, ok := MustParse("load+latent").LatentWindow(); !ok || w != DefaultLatentWindow {
		t.Errorf("LatentWindow(load+latent) = %d,%v", w, ok)
	}
	if w, ok := MustParse("latent:window=24").LatentWindow(); !ok || w != 24 {
		t.Errorf("LatentWindow(window=24) = %d,%v", w, ok)
	}
	if _, ok := MustParse("load+single").LatentWindow(); ok {
		t.Error("single-feature spec reported a latent window")
	}
}

// TestWithParam: overrides copy, never mutate the receiver.
func TestWithParam(t *testing.T) {
	base := MustParse("load+latent")
	swept := base.WithClassifierParam("window", "24").WithDetectorParam("beta", "0.6")
	if got := swept.String(); got != "load:beta=0.6+latent:window=24" {
		t.Errorf("swept spec = %q", got)
	}
	if got := base.String(); got != "load+latent" {
		t.Errorf("base spec mutated to %q", got)
	}
	if w, _ := swept.LatentWindow(); w != 24 {
		t.Errorf("swept latent window = %d", w)
	}
	cfg, err := swept.Config()
	if err != nil {
		t.Fatal(err)
	}
	if lh, ok := cfg.Classifier.(*core.LatentHeatClassifier); !ok || lh.Window != 24 {
		t.Errorf("swept classifier = %#v", cfg.Classifier)
	}
}

// TestListCoversRegistry: the generated help text names every component
// and parameter.
func TestListCoversRegistry(t *testing.T) {
	ls := List()
	for _, name := range append(DetectorNames(), ClassifierNames()...) {
		if !strings.Contains(ls, name) {
			t.Errorf("List() missing component %q", name)
		}
	}
	for _, key := range []string{"beta", "window", "k", "frac", "theta", "fallback", "evict"} {
		if !strings.Contains(ls, key+"=") {
			t.Errorf("List() missing parameter %q", key)
		}
	}
	if !strings.Contains(FlagUsage(), "detector[:k=v,...]+classifier[:k=v,...]") {
		t.Error("FlagUsage() missing the grammar synopsis")
	}
}

// TestExamplesValidate: every registry example must parse and validate;
// the end-to-end equivalence tests fan out over them.
func TestExamplesValidate(t *testing.T) {
	for _, ex := range append(DetectorExamples(), ClassifierExamples()...) {
		sp, err := Parse(ex)
		if err != nil {
			t.Errorf("example %q: %v", ex, err)
			continue
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("example %q: %v", ex, err)
		}
	}
}
