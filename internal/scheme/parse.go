package scheme

import (
	"fmt"
	"strings"
)

// Parse parses a scheme spec:
//
//	spec      := component [ "+" component ]
//	component := name [ ":" param { "," param } ]
//	param     := key "=" value
//
// The two-component form is detector+classifier. A single component
// names either side and selects the paper default for the other: a lone
// detector gets the single-feature classifier, a lone classifier gets
// the β=0.8 constant-load detector. Values may not contain "+", ",",
// ":" or "="; write exponents without a plus sign ("2e6").
//
// Parse validates the grammar, that each name is registered in the
// right role, and that every parameter key is one the component
// declares; parameter *values* are checked by Validate/Config, which
// actually build the components. Errors name what is registered, so a
// CLI can print them verbatim as help text.
func Parse(spec string) (*Spec, error) {
	parts := strings.Split(spec, "+")
	switch len(parts) {
	case 1:
		comp, err := parseComponent(parts[0])
		if err != nil {
			return nil, specErr(spec, err)
		}
		if def, ok := detectors[comp.Name]; ok {
			if err := def.knownKeys(comp.Params); err != nil {
				return nil, specErr(spec, err)
			}
			return &Spec{Detector: comp, Classifier: Component{Name: "single"}}, nil
		}
		if def, ok := classifiers[comp.Name]; ok {
			if err := def.knownKeys(comp.Params); err != nil {
				return nil, specErr(spec, err)
			}
			return &Spec{Detector: Component{Name: "load"}, Classifier: comp}, nil
		}
		return nil, specErr(spec, fmt.Errorf("unknown component %q; registered\n%s", comp.Name, List()))
	case 2:
		det, err := parseComponent(parts[0])
		if err != nil {
			return nil, specErr(spec, err)
		}
		cls, err := parseComponent(parts[1])
		if err != nil {
			return nil, specErr(spec, err)
		}
		dd, ok := detectors[det.Name]
		if !ok {
			if _, isCls := classifiers[det.Name]; isCls {
				return nil, specErr(spec, fmt.Errorf("%q is a classifier, but appears in the detector position; registered\n%s", det.Name, List()))
			}
			return nil, specErr(spec, fmt.Errorf("unknown detector %q; registered\n%s", det.Name, List()))
		}
		cd, ok := classifiers[cls.Name]
		if !ok {
			if _, isDet := detectors[cls.Name]; isDet {
				return nil, specErr(spec, fmt.Errorf("%q is a detector, but appears in the classifier position; registered\n%s", cls.Name, List()))
			}
			return nil, specErr(spec, fmt.Errorf("unknown classifier %q; registered\n%s", cls.Name, List()))
		}
		if err := dd.knownKeys(det.Params); err != nil {
			return nil, specErr(spec, err)
		}
		if err := cd.knownKeys(cls.Params); err != nil {
			return nil, specErr(spec, err)
		}
		return &Spec{Detector: det, Classifier: cls}, nil
	default:
		return nil, specErr(spec, fmt.Errorf("want detector[:k=v,...]+classifier[:k=v,...], got %d components", len(parts)))
	}
}

func specErr(spec string, err error) error {
	return fmt.Errorf("scheme: spec %q: %w", spec, err)
}

// ParseValidated is Parse followed by Validate — the one-call form the
// CLIs use so grammar, name and parameter-value errors all surface as
// usage errors before any work starts.
func ParseValidated(spec string) (*Spec, error) {
	sp, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// parseComponent parses "name[:k=v,...]" with surrounding spaces
// tolerated around the name, keys and values.
func parseComponent(s string) (Component, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Component{}, fmt.Errorf("empty component name")
	}
	c := Component{Name: name}
	if !hasParams {
		return c, nil
	}
	if strings.TrimSpace(rest) == "" {
		return Component{}, fmt.Errorf("%s: empty parameter list after %q", name, ":")
	}
	c.Params = Params{}
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		if !ok || key == "" {
			return Component{}, fmt.Errorf("%s: parameter %q is not key=value", name, strings.TrimSpace(kv))
		}
		if value == "" {
			return Component{}, fmt.Errorf("%s: parameter %q has an empty value", name, key)
		}
		if i := strings.IndexAny(value, ":="); i >= 0 {
			return Component{}, fmt.Errorf("%s: parameter %s=%q: value contains %q", name, key, value, string(value[i]))
		}
		if _, dup := c.Params[key]; dup {
			return Component{}, fmt.Errorf("%s: parameter %q set twice", name, key)
		}
		c.Params[key] = value
	}
	return c, nil
}
