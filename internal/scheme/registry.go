// Package scheme is the registry of named classification schemes: every
// detector and classifier the repository implements — the paper's
// ("aest", "load", "latent", "single") and the baselines ("fixed",
// "topk", "misragries", "spacesaving") — registered under a short name
// with typed, defaulted parameters, plus the small spec grammar
//
//	detector[:key=value,...]+classifier[:key=value,...]
//
// that names one scheme end to end: "load:beta=0.8+latent:window=12" is
// the paper's headline scheme, "aest" alone is the aest detector with
// the single-feature classifier, "topk:k=50" alone is the top-K baseline
// under the default detector. A parsed Spec compiles to a
// core.Config factory that builds fresh detector/classifier instances on
// every call, satisfying the engine's fresh-instances-per-link
// determinism contract, so any registered scheme runs unmodified through
// engine.Run, engine.RunStreaming, the experiments harnesses and every
// CLI that takes a -scheme flag.
//
// The registry is the single source of truth for help and error text:
// List enumerates every component with its parameters, so adding a
// scheme (RegisterDetector / RegisterClassifier) automatically surfaces
// it in each CLI's usage string and in parse errors.
package scheme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
)

// Params carries one component's explicitly-set parameters as raw
// key=value strings; typed accessors apply defaults and report value
// errors.
type Params map[string]string

// Float returns the parameter as a float64, or def when unset.
func (p Params) Float(key string, def float64) (float64, error) {
	raw, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: not a number", key, raw)
	}
	return v, nil
}

// Int returns the parameter as an int, or def when unset.
func (p Params) Int(key string, def int) (int, error) {
	raw, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: not an integer", key, raw)
	}
	return v, nil
}

// Has reports whether the parameter was explicitly set.
func (p Params) Has(key string) bool { _, ok := p[key]; return ok }

// clone returns an independent copy of the parameter set.
func (p Params) clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// ParamDef documents one accepted parameter of a registered component.
type ParamDef struct {
	// Key is the parameter name in the spec grammar.
	Key string
	// Default is the display form of the value used when the parameter
	// is omitted; empty means the parameter is required.
	Default string
	// Doc is a one-line description.
	Doc string
}

// componentDef is one registered detector or classifier.
type componentDef struct {
	name   string
	doc    string
	params []ParamDef
	// example is a runnable spec fragment with any required parameters
	// filled in; the registry-driven end-to-end tests enumerate it.
	example string
	// build is buildDetector or buildClassifier depending on the
	// registry the def lives in.
	buildDetector   func(Params) (core.Detector, error)
	buildClassifier func(Params) (core.Classifier, error)
}

var (
	detectors   = map[string]*componentDef{}
	classifiers = map[string]*componentDef{}
)

// checkName enforces globally unique component names so a
// single-component spec resolves unambiguously.
func checkName(name string) {
	if name == "" {
		panic("scheme: register: empty component name")
	}
	if strings.ContainsAny(name, "+:,= \t") {
		panic(fmt.Sprintf("scheme: register: name %q contains grammar characters", name))
	}
	if _, ok := detectors[name]; ok {
		panic(fmt.Sprintf("scheme: component %q already registered as a detector", name))
	}
	if _, ok := classifiers[name]; ok {
		panic(fmt.Sprintf("scheme: component %q already registered as a classifier", name))
	}
}

// RegisterDetector adds a named detector factory to the registry.
// example must be a runnable spec fragment (name, plus any required
// parameters); it is exercised by the registry-driven equivalence
// tests. Panics on duplicate or malformed names — registration is an
// init-time programming contract, not an input.
func RegisterDetector(name, doc, example string, params []ParamDef, build func(Params) (core.Detector, error)) {
	checkName(name)
	detectors[name] = &componentDef{name: name, doc: doc, example: example, params: params, buildDetector: build}
}

// RegisterClassifier adds a named classifier factory to the registry;
// see RegisterDetector for the contract.
func RegisterClassifier(name, doc, example string, params []ParamDef, build func(Params) (core.Classifier, error)) {
	checkName(name)
	classifiers[name] = &componentDef{name: name, doc: doc, example: example, params: params, buildClassifier: build}
}

// knownKeys validates that every explicitly-set parameter is declared by
// the component.
func (d *componentDef) knownKeys(p Params) error {
	for key := range p {
		ok := false
		for _, def := range d.params {
			if def.Key == key {
				ok = true
				break
			}
		}
		if !ok {
			keys := make([]string, len(d.params))
			for i, def := range d.params {
				keys[i] = def.Key
			}
			if len(keys) == 0 {
				return fmt.Errorf("%s takes no parameters, got %q", d.name, key)
			}
			return fmt.Errorf("%s has no parameter %q (accepts %s)", d.name, key, strings.Join(keys, ", "))
		}
	}
	return nil
}

// sortedNames returns a registry's names in lexical order.
func sortedNames(m map[string]*componentDef) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DetectorNames returns the registered detector names, sorted.
func DetectorNames() []string { return sortedNames(detectors) }

// ClassifierNames returns the registered classifier names, sorted.
func ClassifierNames() []string { return sortedNames(classifiers) }

// DetectorExamples returns one runnable spec fragment per registered
// detector, sorted by name.
func DetectorExamples() []string { return examples(detectors) }

// ClassifierExamples returns one runnable spec fragment per registered
// classifier, sorted by name.
func ClassifierExamples() []string { return examples(classifiers) }

func examples(m map[string]*componentDef) []string {
	out := make([]string, 0, len(m))
	for _, n := range sortedNames(m) {
		out = append(out, m[n].example)
	}
	return out
}

// List returns a human-readable enumeration of every registered
// detector and classifier with parameters and defaults — the text CLIs
// embed in -scheme help and parse errors, regenerated from the registry
// so it can never rot as schemes are added.
func List() string {
	var b strings.Builder
	listGroup(&b, "detectors", detectors)
	listGroup(&b, "classifiers", classifiers)
	return b.String()
}

func listGroup(b *strings.Builder, title string, m map[string]*componentDef) {
	fmt.Fprintf(b, "%s:\n", title)
	names := sortedNames(m)
	syntaxes := make([]string, len(names))
	width := 0
	for i, n := range names {
		syntaxes[i] = m[n].syntax()
		if len(syntaxes[i]) > width {
			width = len(syntaxes[i])
		}
	}
	for i, n := range names {
		fmt.Fprintf(b, "  %-*s  %s\n", width, syntaxes[i], m[n].doc)
	}
}

// syntax renders the component's spec fragment with its parameters:
// "load[:beta=0.8]", "fixed:theta=<bit/s>".
func (d *componentDef) syntax() string {
	if len(d.params) == 0 {
		return d.name
	}
	var required, optional []string
	for _, p := range d.params {
		if p.Default == "" {
			required = append(required, p.Key+"=<"+p.Doc+">")
		} else {
			optional = append(optional, p.Key+"="+p.Default)
		}
	}
	s := d.name
	switch {
	case len(required) > 0 && len(optional) > 0:
		s += ":" + strings.Join(required, ",") + "[," + strings.Join(optional, ",") + "]"
	case len(required) > 0:
		s += ":" + strings.Join(required, ",")
	default:
		s += "[:" + strings.Join(optional, ",") + "]"
	}
	return s
}

// FlagUsage returns the usage string for a CLI -scheme flag: the spec
// grammar in one line plus the registry listing.
func FlagUsage() string {
	return "classification scheme: detector[:k=v,...]+classifier[:k=v,...];\n" +
		"a single component selects the paper default for the other side\n" + List()
}

func init() {
	RegisterDetector("load",
		"β-constant-load threshold: flows above it carry fraction beta of traffic",
		"load",
		[]ParamDef{{Key: "beta", Default: "0.8", Doc: "target elephant load fraction in (0,1)"}},
		func(p Params) (core.Detector, error) {
			beta, err := p.Float("beta", 0.8)
			if err != nil {
				return nil, err
			}
			return core.NewConstantLoadDetector(beta)
		})
	RegisterDetector("aest",
		"aest heavy-tail onset threshold (Crovella–Taqqu scaling estimator)",
		"aest",
		[]ParamDef{{Key: "fallback", Default: "0.95", Doc: "bandwidth quantile used when no tail is detected, in (0,1)"}},
		func(p Params) (core.Detector, error) {
			fq, err := p.Float("fallback", 0.95)
			if err != nil {
				return nil, err
			}
			if fq <= 0 || fq >= 1 {
				return nil, fmt.Errorf("fallback quantile %v outside (0,1)", fq)
			}
			d := core.NewAestDetector()
			d.FallbackQuantile = fq
			return d, nil
		})
	RegisterDetector("fixed",
		"fixed operator-configured threshold — the static baseline",
		"fixed:theta=150000",
		[]ParamDef{{Key: "theta", Default: "", Doc: "threshold in bit/s"}},
		func(p Params) (core.Detector, error) {
			if !p.Has("theta") {
				return nil, fmt.Errorf("required parameter theta (bit/s) missing")
			}
			theta, err := p.Float("theta", 0)
			if err != nil {
				return nil, err
			}
			return baseline.NewFixedThresholdDetector(theta)
		})

	RegisterClassifier("single",
		"single-feature: flow j is an elephant iff x_j(t) > θ̂(t)",
		"single",
		nil,
		func(Params) (core.Classifier, error) {
			return core.SingleFeatureClassifier{}, nil
		})
	RegisterClassifier("latent",
		"two-feature latent heat: elephant iff Σ over window of (x_j − θ̂) > 0",
		"latent",
		[]ParamDef{
			{Key: "window", Default: "12", Doc: "lookback W in intervals"},
			{Key: "evict", Default: "0", Doc: "idle intervals before flow state is dropped (0 = 4*window)"},
		},
		func(p Params) (core.Classifier, error) {
			w, err := p.Int("window", DefaultLatentWindow)
			if err != nil {
				return nil, err
			}
			lh, err := core.NewLatentHeatClassifier(w)
			if err != nil {
				return nil, err
			}
			evict, err := p.Int("evict", 0)
			if err != nil {
				return nil, err
			}
			if evict < 0 {
				return nil, fmt.Errorf("evict %d must be non-negative", evict)
			}
			lh.EvictAfter = evict
			return lh, nil
		})
	RegisterClassifier("topk",
		"top-K talkers per interval, threshold ignored — the monitoring-console baseline",
		"topk",
		[]ParamDef{{Key: "k", Default: "50", Doc: "flows classified per interval"}},
		func(p Params) (core.Classifier, error) {
			k, err := p.Int("k", 50)
			if err != nil {
				return nil, err
			}
			return baseline.NewTopKClassifier(k)
		})
	RegisterClassifier("misragries",
		"per-interval Misra–Gries heavy hitters (k counters, underestimates)",
		"misragries",
		[]ParamDef{
			{Key: "k", Default: "50", Doc: "sketch counters"},
			{Key: "frac", Default: "1/(k+1)", Doc: "heavy-hitter cut as a share of interval traffic"},
		},
		func(p Params) (core.Classifier, error) {
			return sketchClassifier(p, baseline.NewMisraGriesClassifier)
		})
	RegisterClassifier("spacesaving",
		"per-interval Space-Saving heavy hitters (k counters, overestimates)",
		"spacesaving",
		[]ParamDef{
			{Key: "k", Default: "50", Doc: "sketch counters"},
			{Key: "frac", Default: "1/(k+1)", Doc: "heavy-hitter cut as a share of interval traffic"},
		},
		func(p Params) (core.Classifier, error) {
			return sketchClassifier(p, baseline.NewSpaceSavingClassifier)
		})
}

// sketchClassifier builds either sketch baseline from the shared k/frac
// parameter pair.
func sketchClassifier(p Params, mk func(int, float64) (*baseline.SketchClassifier, error)) (core.Classifier, error) {
	k, err := p.Int("k", 50)
	if err != nil {
		return nil, err
	}
	frac, err := p.Float("frac", 0)
	if err != nil {
		return nil, err
	}
	if frac < 0 {
		return nil, fmt.Errorf("frac %v must be non-negative", frac)
	}
	return mk(k, frac)
}
