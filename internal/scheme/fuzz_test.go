package scheme

import (
	"strings"
	"testing"
)

// FuzzParseSpec proves the spec parser never panics on arbitrary input
// and that every accepted spec reaches a fixed point: its canonical
// form re-parses to the same canonical form, and validation never
// panics either. The seed corpus runs on every plain `go test`; fuzz
// with `go test -fuzz=FuzzParseSpec ./internal/scheme`.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"", "load", "aest", "load+latent", "load:beta=0.8+latent:window=12",
		"fixed:theta=2e6+topk:k=50", "misragries:k=20,frac=0.01",
		"spacesaving", " load : beta = 0.7 ", "load+latent+single",
		"load:beta=0.8,beta=0.9", "a+b+c", ":::", "+=,", "load:", "+",
		"load:beta=2e+06", "latent:window=-1", "\x00", "löad+låtent",
		strings.Repeat("a", 1024), strings.Repeat("load+", 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := Parse(in) // must not panic
		if err != nil {
			return
		}
		canon := sp.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, in, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, canon, got)
		}
		_ = sp.Validate() // must not panic either way
		_ = sp.Name()
		_, _ = sp.LatentWindow()
	})
}
