package scheme

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Defaults shared across the repository: the paper's parameter choices.
const (
	// DefaultAlpha is the EWMA weight the paper finds sufficiently
	// smooth.
	DefaultAlpha = 0.5
	// DefaultLatentWindow is the latent-heat lookback: one hour of
	// five-minute slots.
	DefaultLatentWindow = 12
)

// Component is one side of a spec: a registered name plus the
// parameters the spec set explicitly.
type Component struct {
	Name   string
	Params Params
}

// clone returns an independent copy.
func (c Component) clone() Component {
	return Component{Name: c.Name, Params: c.Params.clone()}
}

// String renders the component in spec syntax with parameters in
// lexical key order, so equal components render identically.
func (c Component) String() string {
	if len(c.Params) == 0 {
		return c.Name
	}
	keys := make([]string, 0, len(c.Params))
	for k := range c.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + c.Params[k]
	}
	return c.Name + ":" + strings.Join(parts, ",")
}

// Spec is one parsed classification scheme: a detector and a classifier
// with their parameters, plus the pipeline-level settings that sit
// outside the spec grammar. The zero values of Alpha and MinFlows
// select the defaults (0.5 and core's 16), so a Spec fresh from Parse
// is the paper's configuration of the named components.
type Spec struct {
	Detector   Component
	Classifier Component
	// Alpha is the EWMA weight on the previous smoothed threshold; 0
	// selects DefaultAlpha. (CLIs expose it as -alpha.)
	Alpha float64
	// MinFlows is the minimum active-flow count for detection; 0
	// selects the core.Config default.
	MinFlows int
}

// String renders the spec in canonical grammar form,
// "detector[:k=v,...]+classifier[:k=v,...]"; Parse round-trips it.
func (s *Spec) String() string {
	return s.Detector.String() + "+" + s.Classifier.String()
}

// Config compiles the spec into a pipeline configuration with fresh
// detector and classifier instances — every call returns independent
// state, so Config is directly usable as an engine.Link config factory
// (the engine's fresh-instances-per-link determinism contract).
func (s *Spec) Config() (core.Config, error) {
	det, err := s.BuildDetector()
	if err != nil {
		return core.Config{}, err
	}
	cd, ok := classifiers[s.Classifier.Name]
	if !ok {
		return core.Config{}, fmt.Errorf("scheme: unknown classifier %q", s.Classifier.Name)
	}
	cls, err := cd.buildClassifier(s.Classifier.Params)
	if err != nil {
		return core.Config{}, fmt.Errorf("scheme: %s: %w", s.Classifier.Name, err)
	}
	alpha := s.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	return core.Config{Detector: det, Alpha: alpha, Classifier: cls, MinFlows: s.MinFlows}, nil
}

// Factory returns the spec's config factory — the method value plugs
// straight into engine.Link.Config / engine.StreamLink.Config.
func (s *Spec) Factory() func() (core.Config, error) { return s.Config }

// DetectorKey returns the detector component's canonical form —
// name plus parameters in lexical key order — which is the engine's
// threshold-cache key: detection is a pure function of (detector
// config, interval bandwidths), so two specs with equal DetectorKeys
// produce byte-identical θ(t) columns on the same link and may share
// one computation. Specs differing in any detector parameter render
// different keys; classifier, Alpha and MinFlows deliberately do not
// enter the key (they act downstream of detection).
func (s *Spec) DetectorKey() string { return s.Detector.String() }

// BuildDetector compiles just the spec's detector component — a fresh,
// independent instance per call. The engine's prepass uses it to give
// each precomputed threshold column its own detector state without
// building (and discarding) a classifier.
func (s *Spec) BuildDetector() (core.Detector, error) {
	dd, ok := detectors[s.Detector.Name]
	if !ok {
		return nil, fmt.Errorf("scheme: unknown detector %q", s.Detector.Name)
	}
	det, err := dd.buildDetector(s.Detector.Params)
	if err != nil {
		return nil, fmt.Errorf("scheme: %s: %w", s.Detector.Name, err)
	}
	return det, nil
}

// Validate builds the spec's components once and discards them,
// reporting any parameter-value error (unknown names and keys are
// already rejected by Parse).
func (s *Spec) Validate() error {
	_, err := s.Config()
	return err
}

// Name returns the scheme's display name as used in reports and
// figures, composed from the instantiated components: the detector's
// name, plus the classifier's unless it is the single-feature default —
// e.g. "0.80-constant-load+latent-heat" or "aest".
func (s *Spec) Name() string {
	cfg, err := s.Config()
	if err != nil {
		return s.String()
	}
	if _, single := cfg.Classifier.(core.SingleFeatureClassifier); single {
		return cfg.Detector.Name()
	}
	return cfg.Detector.Name() + "+" + cfg.Classifier.Name()
}

// LatentWindow returns the classifier's latent-heat window and true
// when the spec uses the latent classifier, 0 and false otherwise. It
// is how streaming ingestion derives its accumulator window from the
// scheme (see engine.StreamWindow).
func (s *Spec) LatentWindow() (int, bool) {
	if s.Classifier.Name != "latent" {
		return 0, false
	}
	w, err := s.Classifier.Params.Int("window", DefaultLatentWindow)
	if err != nil || w < 1 {
		return DefaultLatentWindow, true
	}
	return w, true
}

// WithDetectorParam returns a copy of the spec with one detector
// parameter overridden — the sweep helper (e.g. ablations re-running
// one spec across beta values).
func (s *Spec) WithDetectorParam(key, value string) *Spec {
	out := s.copySpec()
	out.Detector.Params = setParam(out.Detector.Params, key, value)
	return out
}

// WithClassifierParam returns a copy of the spec with one classifier
// parameter overridden.
func (s *Spec) WithClassifierParam(key, value string) *Spec {
	out := s.copySpec()
	out.Classifier.Params = setParam(out.Classifier.Params, key, value)
	return out
}

func (s *Spec) copySpec() *Spec {
	return &Spec{
		Detector:   s.Detector.clone(),
		Classifier: s.Classifier.clone(),
		Alpha:      s.Alpha,
		MinFlows:   s.MinFlows,
	}
}

func setParam(p Params, key, value string) Params {
	if p == nil {
		p = Params{}
	}
	p[key] = value
	return p
}

// MustParse is Parse for programmatically-built specs; it panics on
// error. Use it only on literals and trusted format strings.
func MustParse(spec string) *Spec {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}
