package baseline

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/core"
)

// MisraGries is the classic deterministic frequent-items summary: with k
// counters it identifies every flow whose volume exceeds total/(k+1),
// undercounting each flow by at most total/(k+1). It consumes per-packet
// (or per-sample) byte counts, representing the streaming heavy-hitter
// approach common in open-source monitoring — memory-bounded, but
// volume-only: it has no notion of the persistence the paper's latent
// heat adds.
type MisraGries struct {
	k        int
	counters map[netip.Prefix]float64
	total    float64
}

// NewMisraGries returns a summary with k counters.
func NewMisraGries(k int) (*MisraGries, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: misra-gries with k=%d", k)
	}
	return &MisraGries{k: k, counters: make(map[netip.Prefix]float64, k+1)}, nil
}

// Add accounts weight (e.g. a packet's bytes) to flow p.
func (m *MisraGries) Add(p netip.Prefix, weight float64) {
	if weight <= 0 {
		return
	}
	m.total += weight
	if _, ok := m.counters[p]; ok || len(m.counters) < m.k {
		m.counters[p] += weight
		return
	}
	// Decrement-all step: subtract the smallest amount that frees at
	// least one counter. The textbook formulation decrements by the new
	// item's weight; decrementing by min(weight, smallest counter)
	// preserves the error bound while keeping counters non-negative for
	// weighted updates.
	dec := weight
	for _, c := range m.counters {
		if c < dec {
			dec = c
		}
	}
	for q, c := range m.counters {
		if c-dec <= 0 {
			delete(m.counters, q)
		} else {
			m.counters[q] = c - dec
		}
	}
	if rest := weight - dec; rest > 0 && len(m.counters) < m.k {
		m.counters[p] = rest
	}
}

// Total returns the summed weight seen so far.
func (m *MisraGries) Total() float64 { return m.total }

// Estimate returns the (under)estimate of flow p's weight and whether p
// holds a counter. True weight is within [est, est + Total/(k+1)].
func (m *MisraGries) Estimate(p netip.Prefix) (float64, bool) {
	c, ok := m.counters[p]
	return c, ok
}

// HeavyHitters returns every tracked flow whose (under)estimate exceeds
// fraction*Total, sorted by descending estimate. Because counters
// undercount by up to Total/(k+1), the report is conservative: every
// returned flow truly carries more than fraction*Total (no false
// positives), but a true heavy hitter whose counter was decremented
// below the cut can be missed. A guaranteed-superset query must lower
// the cut by the error bound: fraction' = fraction - 1/(k+1).
func (m *MisraGries) HeavyHitters(fraction float64) []netip.Prefix {
	cut := fraction * m.total
	var out []flowBW
	for p, c := range m.counters {
		if c > cut {
			out = append(out, flowBW{p, c})
		}
	}
	sortFlows(out)
	ps := make([]netip.Prefix, len(out))
	for i, f := range out {
		ps[i] = f.p
	}
	return ps
}

// Reset clears the summary for the next measurement window.
func (m *MisraGries) Reset() {
	m.total = 0
	for p := range m.counters {
		delete(m.counters, p)
	}
}

// SpaceSaving is the Metwally–Agrawal–El Abbadi frequent-items sketch:
// k counters, each new flow evicts the minimum counter and inherits its
// count (an overestimate). Against Misra–Gries it trades under- for
// over-estimation but never misses a flow currently above Total/k.
type SpaceSaving struct {
	k        int
	counters map[netip.Prefix]*ssCounter
	total    float64
}

type ssCounter struct {
	count float64
	err   float64 // overestimation bound inherited at eviction
}

// NewSpaceSaving returns a sketch with k counters.
func NewSpaceSaving(k int) (*SpaceSaving, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: space-saving with k=%d", k)
	}
	return &SpaceSaving{k: k, counters: make(map[netip.Prefix]*ssCounter, k)}, nil
}

// Add accounts weight to flow p.
func (s *SpaceSaving) Add(p netip.Prefix, weight float64) {
	if weight <= 0 {
		return
	}
	s.total += weight
	if c, ok := s.counters[p]; ok {
		c.count += weight
		return
	}
	if len(s.counters) < s.k {
		s.counters[p] = &ssCounter{count: weight}
		return
	}
	// Evict the minimum counter; deterministic tie-break by prefix so
	// runs reproduce exactly.
	var minP netip.Prefix
	var minC *ssCounter
	for q, c := range s.counters {
		if minC == nil || c.count < minC.count || (c.count == minC.count && lessPrefix(q, minP)) {
			minP, minC = q, c
		}
	}
	delete(s.counters, minP)
	s.counters[p] = &ssCounter{count: minC.count + weight, err: minC.count}
}

// Total returns the summed weight seen so far.
func (s *SpaceSaving) Total() float64 { return s.total }

// Estimate returns the overestimate of p's weight, the error bound, and
// whether p is tracked. True weight lies in [count-err, count].
func (s *SpaceSaving) Estimate(p netip.Prefix) (count, err float64, ok bool) {
	c, found := s.counters[p]
	if !found {
		return 0, 0, false
	}
	return c.count, c.err, true
}

// HeavyHitters returns tracked flows whose guaranteed weight
// (count - err) exceeds fraction*Total, sorted by descending count.
func (s *SpaceSaving) HeavyHitters(fraction float64) []netip.Prefix {
	cut := fraction * s.total
	var out []flowBW
	for p, c := range s.counters {
		if c.count-c.err > cut {
			out = append(out, flowBW{p, c.count})
		}
	}
	sortFlows(out)
	ps := make([]netip.Prefix, len(out))
	for i, f := range out {
		ps[i] = f.p
	}
	return ps
}

// Reset clears the sketch for the next measurement window.
func (s *SpaceSaving) Reset() {
	s.total = 0
	for p := range s.counters {
		delete(s.counters, p)
	}
}

type flowBW struct {
	p  netip.Prefix
	bw float64
}

func lessPrefix(a, b netip.Prefix) bool {
	return core.ComparePrefix(a, b) < 0
}

func sortFlows(fs []flowBW) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].bw != fs[j].bw {
			return fs[i].bw > fs[j].bw
		}
		return lessPrefix(fs[i].p, fs[j].p)
	})
}
