package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
)

func sketchSnap(t *testing.T, bws map[string]float64) *core.FlowSnapshot {
	t.Helper()
	m := make(map[netip.Prefix]float64, len(bws))
	for s, bw := range bws {
		m[netip.MustParsePrefix(s)] = bw
	}
	return core.SnapshotFromMap(m, nil)
}

func TestSketchClassifierFindsHeavyHitter(t *testing.T) {
	snap := sketchSnap(t, map[string]float64{
		"10.0.0.0/24": 1000, // 10/12 of the traffic
		"10.0.1.0/24": 50,
		"10.0.2.0/24": 50,
		"10.0.3.0/24": 50,
		"10.0.4.0/24": 50,
	})
	for name, mk := range map[string]func() (*SketchClassifier, error){
		"misragries":  func() (*SketchClassifier, error) { return NewMisraGriesClassifier(2, 0.5) },
		"spacesaving": func() (*SketchClassifier, error) { return NewSpaceSavingClassifier(2, 0.5) },
	} {
		cls, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		v := cls.Classify(snap, 0)
		if len(v.Indices) != 1 {
			t.Fatalf("%s: got %d elephants, want 1", name, len(v.Indices))
		}
		if got := snap.Key(v.Indices[0]); got != netip.MustParsePrefix("10.0.0.0/24") {
			t.Errorf("%s: elephant %v, want 10.0.0.0/24", name, got)
		}
		if len(v.Offline) != 0 {
			t.Errorf("%s: per-interval sketch reported %d offline flows", name, len(v.Offline))
		}
	}
}

// TestSketchClassifierDeterministic pins that two fresh instances
// produce identical verdicts over the same interval sequence — the
// engine's fresh-instances-per-link determinism contract.
func TestSketchClassifierDeterministic(t *testing.T) {
	snaps := []*core.FlowSnapshot{
		sketchSnap(t, map[string]float64{"10.0.0.0/24": 900, "10.0.1.0/24": 30, "10.0.2.0/24": 800, "10.0.3.0/24": 10}),
		sketchSnap(t, map[string]float64{"10.0.0.0/24": 20, "10.0.4.0/24": 700, "10.0.5.0/24": 650, "10.0.6.0/24": 5}),
	}
	mk := func() *SketchClassifier {
		c, err := NewSpaceSavingClassifier(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i, snap := range snaps {
		va := a.Classify(snap, 123)
		vb := b.Classify(snap, 456) // threshold must be ignored
		if !reflect.DeepEqual(append([]int(nil), va.Indices...), append([]int(nil), vb.Indices...)) {
			t.Fatalf("interval %d: verdicts diverge: %v vs %v", i, va.Indices, vb.Indices)
		}
		for k := 1; k < len(va.Indices); k++ {
			if va.Indices[k-1] >= va.Indices[k] {
				t.Fatalf("interval %d: indices not ascending: %v", i, va.Indices)
			}
		}
	}
}

// hhSketch is the operation set the pre-columnar SketchClassifier
// consumed; the exported map-based sketches still provide it and serve
// as the reference implementation here.
type hhSketch interface {
	Add(p netip.Prefix, weight float64)
	HeavyHitters(fraction float64) []netip.Prefix
	Reset()
}

// referenceVerdict reimplements the original map-sketch Classify —
// reset, feed every flow in snapshot order, cut heavy hitters, map back
// to ascending snapshot indices — against which the columnar rewrite is
// defined.
func referenceVerdict(sk hhSketch, snap *core.FlowSnapshot, fraction float64) []int {
	sk.Reset()
	for i := 0; i < snap.Len(); i++ {
		sk.Add(snap.Key(i), snap.Bandwidth(i))
	}
	var idx []int
	for _, p := range sk.HeavyHitters(fraction) {
		if i, ok := snap.Lookup(p); ok {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx
}

// TestSketchClassifierMatchesMapSketches is the equivalence property:
// the columnar slot-array classifier must produce byte-identical
// verdicts to the map-based Misra–Gries and Space-Saving sketches on
// randomized snapshots, across counter budgets that force evictions,
// with classifier state reused across intervals.
func TestSketchClassifierMatchesMapSketches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	snaps := make([]*core.FlowSnapshot, 20)
	for i := range snaps {
		bws := make(map[string]float64)
		for f, n := 0, 5+rng.Intn(120); f < n; f++ {
			bw := math.Exp(rng.NormFloat64() * 3)
			if rng.Intn(4) == 0 {
				bw *= 1000 // occasional heavy hitter
			}
			bws[fmt.Sprintf("10.%d.%d.0/24", rng.Intn(40), rng.Intn(40))] = bw
		}
		snaps[i] = sketchSnap(t, bws)
	}
	for _, k := range []int{1, 2, 7, 64} {
		mgRef, err := NewMisraGries(k)
		if err != nil {
			t.Fatal(err)
		}
		ssRef, err := NewSpaceSaving(k)
		if err != nil {
			t.Fatal(err)
		}
		mg, err := NewMisraGriesClassifier(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewSpaceSavingClassifier(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, snap := range snaps {
			for _, c := range []struct {
				name string
				cls  *SketchClassifier
				ref  hhSketch
			}{{"misragries", mg, mgRef}, {"spacesaving", ss, ssRef}} {
				got := c.cls.Classify(snap, 0).Indices
				want := referenceVerdict(c.ref, snap, c.cls.Fraction)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k=%d interval %d %s: columnar %v vs map sketch %v", k, i, c.name, got, want)
				}
			}
		}
	}
}

// TestSketchClassifierSteadyStateAllocs pins the columnar sketch update
// loop at zero allocations per interval once the per-flow columns and
// the verdict scratch have reached capacity.
func TestSketchClassifierSteadyStateAllocs(t *testing.T) {
	bws := make(map[string]float64, 200)
	for i := 0; i < 200; i++ {
		bws[fmt.Sprintf("10.%d.%d.0/24", i/256, i%256)] = float64(1 + i*i%997)
	}
	snap := sketchSnap(t, bws)
	for name, mk := range map[string]func() (*SketchClassifier, error){
		"misragries":  func() (*SketchClassifier, error) { return NewMisraGriesClassifier(16, 0) },
		"spacesaving": func() (*SketchClassifier, error) { return NewSpaceSavingClassifier(16, 0) },
	} {
		cls, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		cls.Classify(snap, 0) // warm the columns
		if avg := testing.AllocsPerRun(50, func() { cls.Classify(snap, 0) }); avg != 0 {
			t.Errorf("%s: warm Classify averages %v allocs/interval, want 0", name, avg)
		}
	}
}

func TestSketchClassifierValidation(t *testing.T) {
	if _, err := NewMisraGriesClassifier(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSpaceSavingClassifier(4, 1.5); err == nil {
		t.Error("fraction>=1 accepted")
	}
	c, err := NewMisraGriesClassifier(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fraction != 0.1 {
		t.Errorf("default fraction = %v, want 1/(k+1) = 0.1", c.Fraction)
	}
}
