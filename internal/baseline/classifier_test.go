package baseline

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/core"
)

func sketchSnap(t *testing.T, bws map[string]float64) *core.FlowSnapshot {
	t.Helper()
	m := make(map[netip.Prefix]float64, len(bws))
	for s, bw := range bws {
		m[netip.MustParsePrefix(s)] = bw
	}
	return core.SnapshotFromMap(m, nil)
}

func TestSketchClassifierFindsHeavyHitter(t *testing.T) {
	snap := sketchSnap(t, map[string]float64{
		"10.0.0.0/24": 1000, // 10/12 of the traffic
		"10.0.1.0/24": 50,
		"10.0.2.0/24": 50,
		"10.0.3.0/24": 50,
		"10.0.4.0/24": 50,
	})
	for name, mk := range map[string]func() (*SketchClassifier, error){
		"misragries":  func() (*SketchClassifier, error) { return NewMisraGriesClassifier(2, 0.5) },
		"spacesaving": func() (*SketchClassifier, error) { return NewSpaceSavingClassifier(2, 0.5) },
	} {
		cls, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		v := cls.Classify(snap, 0)
		if len(v.Indices) != 1 {
			t.Fatalf("%s: got %d elephants, want 1", name, len(v.Indices))
		}
		if got := snap.Key(v.Indices[0]); got != netip.MustParsePrefix("10.0.0.0/24") {
			t.Errorf("%s: elephant %v, want 10.0.0.0/24", name, got)
		}
		if len(v.Offline) != 0 {
			t.Errorf("%s: per-interval sketch reported %d offline flows", name, len(v.Offline))
		}
	}
}

// TestSketchClassifierDeterministic pins that two fresh instances
// produce identical verdicts over the same interval sequence — the
// engine's fresh-instances-per-link determinism contract.
func TestSketchClassifierDeterministic(t *testing.T) {
	snaps := []*core.FlowSnapshot{
		sketchSnap(t, map[string]float64{"10.0.0.0/24": 900, "10.0.1.0/24": 30, "10.0.2.0/24": 800, "10.0.3.0/24": 10}),
		sketchSnap(t, map[string]float64{"10.0.0.0/24": 20, "10.0.4.0/24": 700, "10.0.5.0/24": 650, "10.0.6.0/24": 5}),
	}
	mk := func() *SketchClassifier {
		c, err := NewSpaceSavingClassifier(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	for i, snap := range snaps {
		va := a.Classify(snap, 123)
		vb := b.Classify(snap, 456) // threshold must be ignored
		if !reflect.DeepEqual(append([]int(nil), va.Indices...), append([]int(nil), vb.Indices...)) {
			t.Fatalf("interval %d: verdicts diverge: %v vs %v", i, va.Indices, vb.Indices)
		}
		for k := 1; k < len(va.Indices); k++ {
			if va.Indices[k-1] >= va.Indices[k] {
				t.Fatalf("interval %d: indices not ascending: %v", i, va.Indices)
			}
		}
	}
}

func TestSketchClassifierValidation(t *testing.T) {
	if _, err := NewMisraGriesClassifier(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSpaceSavingClassifier(4, 1.5); err == nil {
		t.Error("fraction>=1 accepted")
	}
	c, err := NewMisraGriesClassifier(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fraction != 0.1 {
		t.Errorf("default fraction = %v, want 1/(k+1) = 0.1", c.Fraction)
	}
}
