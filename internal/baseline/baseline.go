// Package baseline implements the classifier baselines the paper's
// scheme is implicitly compared against: the static absolute threshold
// and the top-K rule that operational tooling of the era used, plus
// streaming heavy-hitter sketches (Misra–Gries and Space-Saving) that
// represent the "common OSS" approach to elephant detection. They plug
// into the same core.Classifier / core.Detector interfaces so every
// experiment can swap them in, quantifying what the paper's adaptive
// threshold + latent heat actually buy.
package baseline

import (
	"fmt"

	"repro/internal/core"
)

// FixedThresholdDetector returns a constant, operator-configured
// threshold — the naive baseline the paper's adaptive detection phase
// replaces. Under diurnal load the fixed value is wrong most of the day:
// too high at night (no elephants), too low at the peak (everything is
// an elephant).
type FixedThresholdDetector struct {
	// Theta is the constant threshold in bit/s.
	Theta float64
}

// NewFixedThresholdDetector validates theta and returns the detector.
func NewFixedThresholdDetector(theta float64) (*FixedThresholdDetector, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("baseline: fixed threshold %v must be positive", theta)
	}
	return &FixedThresholdDetector{Theta: theta}, nil
}

// Name implements core.Detector.
func (d *FixedThresholdDetector) Name() string {
	return fmt.Sprintf("fixed-%.3g", d.Theta)
}

// DetectThreshold implements core.Detector.
func (d *FixedThresholdDetector) DetectThreshold([]float64) (float64, error) {
	return d.Theta, nil
}

// TopKClassifier classifies the K highest-bandwidth flows of each
// interval as elephants, ignoring the threshold entirely — the
// "show me the top talkers" rule of classic monitoring consoles.
type TopKClassifier struct {
	// K is the number of flows classified per interval.
	K int

	// scratch reuses the index-sorting buffer across intervals; the
	// returned Verdict aliases its front.
	scratch []int
}

// NewTopKClassifier validates k and returns the classifier.
func NewTopKClassifier(k int) (*TopKClassifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: top-k with k=%d", k)
	}
	return &TopKClassifier{K: k}, nil
}

// Name implements core.Classifier.
func (c *TopKClassifier) Name() string { return fmt.Sprintf("top-%d", c.K) }

// Classify implements core.Classifier. The threshold argument is
// ignored. Ties break toward the lower prefix, which in a sorted
// snapshot is simply the lower index.
//
// Selection runs off the snapshot's cached sorted bandwidth column
// instead of sorting an index permutation per interval: the K-th
// largest value is the cut, everything above it is in, and ties at the
// cut fill the remaining seats in ascending index order — exactly the
// (bandwidth desc, index asc) order the permutation sort selected, in
// one linear pass that also emits the indices already sorted.
func (c *TopKClassifier) Classify(snap *core.FlowSnapshot, _ float64) core.Verdict {
	n := snap.Len()
	k := c.K
	if k > n {
		k = n
	}
	c.scratch = c.scratch[:0]
	if k == n {
		for i := 0; i < n; i++ {
			c.scratch = append(c.scratch, i)
		}
		return core.Verdict{Indices: c.scratch}
	}
	sorted := snap.SortedBandwidths()
	pivot := sorted[n-k]
	// Seats for pivot-valued flows: the run of pivot values at the
	// bottom of the top-k suffix (everything above it is strictly
	// greater and admitted unconditionally).
	seats := 0
	for i := n - k; i < n && sorted[i] == pivot; i++ {
		seats++
	}
	for i, x := range snap.Bandwidths() {
		if x > pivot {
			c.scratch = append(c.scratch, i)
		} else if x == pivot && seats > 0 {
			c.scratch = append(c.scratch, i)
			seats--
		}
	}
	return core.Verdict{Indices: c.scratch}
}
