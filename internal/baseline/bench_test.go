package baseline

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/core"
)

// benchPrefixes returns n distinct /24 prefixes.
func benchPrefixes(n int) []netip.Prefix {
	ps := make([]netip.Prefix, n)
	for i := range ps {
		ps[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}), 24)
	}
	return ps
}

// benchWeights returns heavy-tailed weights — a Pareto-ish body plus a
// handful of planted elephants heavy enough to cross the sketches'
// default total/(k+1) cut — so the benches exercise the fast
// (tracked-counter) path, the eviction path and a non-empty
// heavy-hitter report.
func benchWeights(n int) []float64 {
	rng := rand.New(rand.NewSource(3))
	ws := make([]float64, n)
	for i := range ws {
		u := rng.Float64()
		ws[i] = 1e3 / (0.01 + u*u) // Pareto-ish body
	}
	for i := 0; i < 8 && i < n; i++ {
		ws[i*(n/8)] = 1e7
	}
	return ws
}

func BenchmarkMisraGriesAdd(b *testing.B) {
	const flows = 4096
	ps, ws := benchPrefixes(flows), benchWeights(flows)
	mg, err := NewMisraGries(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Add(ps[i%flows], ws[i%flows])
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	const flows = 4096
	ps, ws := benchPrefixes(flows), benchWeights(flows)
	ss, err := NewSpaceSaving(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Add(ps[i%flows], ws[i%flows])
	}
}

func BenchmarkSketchHeavyHitters(b *testing.B) {
	const flows = 4096
	ps, ws := benchPrefixes(flows), benchWeights(flows)
	for _, k := range []int{64, 512} {
		mg, err := NewMisraGries(k)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := NewSpaceSaving(k)
		if err != nil {
			b.Fatal(err)
		}
		for i := range ps {
			mg.Add(ps[i], ws[i])
			ss.Add(ps[i], ws[i])
		}
		b.Run(fmt.Sprintf("misragries/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(mg.HeavyHitters(0.001)) == 0 {
					b.Fatal("no heavy hitters")
				}
			}
		})
		b.Run(fmt.Sprintf("spacesaving/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(ss.HeavyHitters(0.001)) == 0 {
					b.Fatal("no heavy hitters")
				}
			}
		})
	}
}

// BenchmarkSketchClassifierStep measures the full per-interval
// classification cost of the sketch baselines, mirroring the core
// detectors' pipeline benchmarks.
func BenchmarkSketchClassifierStep(b *testing.B) {
	const flows = 4096
	ps, ws := benchPrefixes(flows), benchWeights(flows)
	snap := core.NewFlowSnapshot(flows)
	for i := range ps {
		snap.Append(ps[i], ws[i])
	}
	snap.Sort()
	for _, mk := range []struct {
		name string
		cls  func() (*SketchClassifier, error)
	}{
		{"misragries", func() (*SketchClassifier, error) { return NewMisraGriesClassifier(64, 0) }},
		{"spacesaving", func() (*SketchClassifier, error) { return NewSpaceSavingClassifier(64, 0) }},
	} {
		cls, err := mk.cls()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mk.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := cls.Classify(snap, 0)
				if len(v.Indices) == 0 {
					b.Fatal("no elephants")
				}
			}
		})
	}
}
