package baseline

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/core"
)

// sketch is the operation set SketchClassifier needs from a heavy-hitter
// summary; MisraGries and SpaceSaving both provide it.
type sketch interface {
	Add(p netip.Prefix, weight float64)
	HeavyHitters(fraction float64) []netip.Prefix
	Reset()
}

// SketchClassifier adapts a k-counter heavy-hitter sketch to
// core.Classifier, making the streaming-sketch baselines runnable
// through the same pipeline, engine and CLIs as the paper's schemes.
// Each interval it resets the sketch, feeds every active flow's
// bandwidth, and classifies as elephants the flows whose estimated share
// of the interval's traffic exceeds Fraction. The smoothed threshold is
// ignored: like TopKClassifier this baseline is volume-only, with no
// adaptive threshold and no persistence — exactly what the paper's
// two-feature scheme is compared against. Memory is bounded by the
// sketch's k counters instead of the interval's flow count, which is
// the operational argument for sketches; the price is approximation
// error (under-estimates for Misra–Gries, over-estimates for
// Space-Saving).
type SketchClassifier struct {
	// Fraction is the heavy-hitter cut as a share of interval traffic.
	Fraction float64

	sk      sketch
	name    string
	scratch []int
}

// NewMisraGriesClassifier returns a per-interval Misra–Gries
// heavy-hitter classifier with k counters. fraction <= 0 selects
// 1/(k+1), the classic support threshold. Both sketch classifiers cut
// on their guaranteed weight (Misra–Gries underestimates,
// Space-Saving's count minus its error bound), so the elephant set has
// no false positives; borderline true heavy hitters whose guarantee
// falls below the cut are missed — part of what the exact adaptive
// schemes buy over a k-counter memory budget.
func NewMisraGriesClassifier(k int, fraction float64) (*SketchClassifier, error) {
	mg, err := NewMisraGries(k)
	if err != nil {
		return nil, err
	}
	return newSketchClassifier(mg, fmt.Sprintf("misra-gries-%d", k), k, fraction)
}

// NewSpaceSavingClassifier returns a per-interval Space-Saving
// heavy-hitter classifier with k counters. fraction <= 0 selects
// 1/(k+1).
func NewSpaceSavingClassifier(k int, fraction float64) (*SketchClassifier, error) {
	ss, err := NewSpaceSaving(k)
	if err != nil {
		return nil, err
	}
	return newSketchClassifier(ss, fmt.Sprintf("space-saving-%d", k), k, fraction)
}

func newSketchClassifier(sk sketch, name string, k int, fraction float64) (*SketchClassifier, error) {
	if fraction >= 1 {
		return nil, fmt.Errorf("baseline: %s: fraction %v must be below 1", name, fraction)
	}
	if fraction <= 0 {
		fraction = 1 / float64(k+1)
	}
	return &SketchClassifier{Fraction: fraction, sk: sk, name: name}, nil
}

// Name implements core.Classifier.
func (c *SketchClassifier) Name() string { return c.name }

// Classify implements core.Classifier. The threshold argument is
// ignored. The snapshot's sorted flow order makes the sketch's
// eviction decisions, and therefore the verdict, deterministic.
func (c *SketchClassifier) Classify(snap *core.FlowSnapshot, _ float64) core.Verdict {
	c.sk.Reset()
	for i := 0; i < snap.Len(); i++ {
		c.sk.Add(snap.Key(i), snap.Bandwidth(i))
	}
	c.scratch = c.scratch[:0]
	for _, p := range c.sk.HeavyHitters(c.Fraction) {
		// Every heavy hitter was fed from the snapshot this interval, so
		// the lookup always succeeds.
		if i, ok := snap.Lookup(p); ok {
			c.scratch = append(c.scratch, i)
		}
	}
	sort.Ints(c.scratch)
	return core.Verdict{Indices: c.scratch}
}
