package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// sketchKind selects which k-counter summary a SketchClassifier runs.
type sketchKind uint8

const (
	sketchMisraGries sketchKind = iota
	sketchSpaceSaving
)

// SketchClassifier adapts a k-counter heavy-hitter sketch to
// core.Classifier, making the streaming-sketch baselines runnable
// through the same pipeline, engine and CLIs as the paper's schemes.
// Each interval it feeds every active flow's bandwidth through a fresh
// sketch and classifies as elephants the flows whose estimated share
// of the interval's traffic exceeds Fraction. The smoothed threshold is
// ignored: like TopKClassifier this baseline is volume-only, with no
// adaptive threshold and no persistence — exactly what the paper's
// two-feature scheme is compared against. Memory is bounded by the
// sketch's k counters instead of the interval's flow count, which is
// the operational argument for sketches; the price is approximation
// error (under-estimates for Misra–Gries, over-estimates for
// Space-Saving).
//
// The per-interval state is columnar and keyed by snapshot index
// rather than by prefix: counters live in flat slot arrays and the
// flow→counter association is an index column reset each interval, so
// the classify path never hashes or compares a prefix. The verdicts
// are identical to the exported map-based MisraGries/SpaceSaving
// sketches fed in snapshot order: every eviction decision depends only
// on counter values with a deterministic tie-break, and because the
// snapshot is strictly sorted by prefix, the sketches' prefix
// tie-break order is exactly the snapshot index order.
type SketchClassifier struct {
	// Fraction is the heavy-hitter cut as a share of interval traffic.
	Fraction float64

	kind sketchKind
	k    int
	name string

	// slot maps snapshot index -> occupied slot (-1 when untracked);
	// reset each interval. owner/cnt/errv are the k counter slots:
	// owning snapshot index, counter value, and (Space-Saving only) the
	// overestimation bound inherited at eviction.
	slot    []int32
	owner   []int32
	cnt     []float64
	errv    []float64
	scratch []int

	// Space-Saving keeps its occupied slots in an indexed min-heap so
	// each eviction finds its minimum in O(log k) instead of an O(k)
	// argmin scan per new flow: heap lists the slots in heap order and
	// pos is each slot's heap position. The heap key is (count, owner),
	// whose unique lexicographic minimum is exactly the slot the linear
	// scan selected, and every update only grows a slot's key, so a
	// siftDown from the slot's position restores the invariant.
	// Misra–Gries deliberately stays linear: its decrement step touches
	// every surviving counter anyway (a uniform O(k) subtraction), so a
	// heap saves nothing there and measurably loses to two dense
	// sequential passes on the flat slot arrays.
	heap []int32
	pos  []int32
}

// NewMisraGriesClassifier returns a per-interval Misra–Gries
// heavy-hitter classifier with k counters. fraction <= 0 selects
// 1/(k+1), the classic support threshold. Both sketch classifiers cut
// on their guaranteed weight (Misra–Gries underestimates,
// Space-Saving's count minus its error bound), so the elephant set has
// no false positives; borderline true heavy hitters whose guarantee
// falls below the cut are missed — part of what the exact adaptive
// schemes buy over a k-counter memory budget.
func NewMisraGriesClassifier(k int, fraction float64) (*SketchClassifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: misra-gries with k=%d", k)
	}
	return newSketchClassifier(sketchMisraGries, fmt.Sprintf("misra-gries-%d", k), k, fraction)
}

// NewSpaceSavingClassifier returns a per-interval Space-Saving
// heavy-hitter classifier with k counters. fraction <= 0 selects
// 1/(k+1).
func NewSpaceSavingClassifier(k int, fraction float64) (*SketchClassifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: space-saving with k=%d", k)
	}
	return newSketchClassifier(sketchSpaceSaving, fmt.Sprintf("space-saving-%d", k), k, fraction)
}

func newSketchClassifier(kind sketchKind, name string, k int, fraction float64) (*SketchClassifier, error) {
	if fraction >= 1 {
		return nil, fmt.Errorf("baseline: %s: fraction %v must be below 1", name, fraction)
	}
	if fraction <= 0 {
		fraction = 1 / float64(k+1)
	}
	c := &SketchClassifier{
		Fraction: fraction,
		kind:     kind,
		k:        k,
		name:     name,
		owner:    make([]int32, k),
		cnt:      make([]float64, k),
		errv:     make([]float64, k),
	}
	if kind == sketchSpaceSaving {
		c.heap = make([]int32, 0, k)
		c.pos = make([]int32, k)
	}
	return c, nil
}

// less orders slots by Space-Saving's eviction key.
func (c *SketchClassifier) less(a, b int32) bool {
	if c.cnt[a] != c.cnt[b] {
		return c.cnt[a] < c.cnt[b]
	}
	return c.owner[a] < c.owner[b]
}

func (c *SketchClassifier) siftUp(j int) {
	for j > 0 {
		parent := (j - 1) / 2
		if !c.less(c.heap[j], c.heap[parent]) {
			break
		}
		c.heapSwap(j, parent)
		j = parent
	}
}

func (c *SketchClassifier) siftDown(j int) {
	n := len(c.heap)
	for {
		l := 2*j + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && c.less(c.heap[r], c.heap[l]) {
			m = r
		}
		if !c.less(c.heap[m], c.heap[j]) {
			break
		}
		c.heapSwap(j, m)
		j = m
	}
}

func (c *SketchClassifier) heapSwap(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.pos[c.heap[i]] = int32(i)
	c.pos[c.heap[j]] = int32(j)
}

func (c *SketchClassifier) heapPush(s int32) {
	c.pos[s] = int32(len(c.heap))
	c.heap = append(c.heap, s)
	c.siftUp(len(c.heap) - 1)
}

// Name implements core.Classifier.
func (c *SketchClassifier) Name() string { return c.name }

// Classify implements core.Classifier. The threshold argument is
// ignored. The snapshot's sorted flow order makes the sketch's
// eviction decisions, and therefore the verdict, deterministic.
func (c *SketchClassifier) Classify(snap *core.FlowSnapshot, _ float64) core.Verdict {
	n := snap.Len()
	if cap(c.slot) < n {
		c.slot = make([]int32, n)
	} else {
		c.slot = c.slot[:n]
	}
	for i := range c.slot {
		c.slot[i] = -1
	}
	var total float64
	var nslots int
	if c.kind == sketchMisraGries {
		total, nslots = c.runMisraGries(snap.Bandwidths())
	} else {
		c.heap = c.heap[:0]
		total = c.runSpaceSaving(snap.Bandwidths())
		nslots = len(c.heap)
	}
	cut := c.Fraction * total
	c.scratch = c.scratch[:0]
	// Space-Saving's occupied slots are 0..len(heap) because it never
	// frees a slot, so both sketches scan the dense slot prefix; the
	// verdict depends only on the (owner, count) multiset, and the
	// indices are sorted below.
	for s := 0; s < nslots; s++ {
		guaranteed := c.cnt[s]
		if c.kind == sketchSpaceSaving {
			guaranteed -= c.errv[s]
		}
		if guaranteed > cut {
			c.scratch = append(c.scratch, int(c.owner[s]))
		}
	}
	sort.Ints(c.scratch)
	return core.Verdict{Indices: c.scratch}
}

// runMisraGries streams the bandwidth column through k Misra–Gries
// counters: a new flow either takes a free slot or triggers the
// decrement-all step, subtracting the smallest amount that frees at
// least one counter (min of the new weight and the smallest counter —
// the same weighted-update rule as MisraGries.Add). Deleted slots are
// compacted by moving the last occupied slot down.
//
// The minimum counter is tracked incrementally instead of rescanned
// per step: the subtract/compact pass computes the survivors' minimum
// as it goes, inserts fold their value in, and only a tracked hit on a
// minimum-valued slot (which may raise a unique minimum) invalidates
// the cached value and forces the next step to rescan. The floats are
// untouched — curMin is always a value some cnt[s] holds, compared and
// subtracted exactly as the two-pass form did — so decrement amounts,
// deletion sets and verdicts are bit-identical; the cache only deletes
// the separate argmin pass, halving the per-step work.
func (c *SketchClassifier) runMisraGries(bw []float64) (total float64, nslots int) {
	var curMin float64
	minValid := false
	for i, w := range bw {
		total += w
		if s := c.slot[i]; s >= 0 {
			old := c.cnt[s]
			c.cnt[s] = old + w
			if old == curMin {
				minValid = false
			}
			continue
		}
		if nslots < c.k {
			c.owner[nslots], c.cnt[nslots] = int32(i), w
			c.slot[i] = int32(nslots)
			nslots++
			if minValid && w < curMin {
				curMin = w
			}
			continue
		}
		if !minValid {
			curMin = c.cnt[0]
			for s := 1; s < nslots; s++ {
				if c.cnt[s] < curMin {
					curMin = c.cnt[s]
				}
			}
			minValid = true
		}
		if w < curMin {
			// Pure-decrement step: dec = w frees no counter (cnt − w ≤ 0
			// would need cnt ≤ w < curMin ≤ cnt) and leaves no remainder
			// to insert, so the whole step is one uniform subtraction.
			// IEEE rounding is monotone, so the minimum slot stays
			// minimal and its new value is exactly curMin − w — no
			// deletion checks, no min re-tracking.
			cnt := c.cnt[:nslots]
			for s := range cnt {
				cnt[s] -= w
			}
			curMin -= w
			continue
		}
		dec := curMin // min(w, curMin), and at least one slot sits at it
		newMin := math.MaxFloat64
		// Subtract-and-compact pass with move-last-into-hole deletion:
		// only the slots that die (cnt == curMin, usually one or two)
		// cost any bookkeeping, and every survivor is just
		// load/sub/store/min — no owner or slot shuffling. Slot
		// arrangement differs from a stable compaction, but slot
		// numbering never reaches the verdict (deletion is by value,
		// indices are sorted) and the per-owner counter values are
		// identical. A moved-in slot re-runs the loop body, so it is
		// decremented exactly once like every other survivor.
		cnt, owner, slot := c.cnt, c.owner, c.slot
		for s := 0; s < nslots; {
			v := cnt[s] - dec
			if v <= 0 {
				slot[owner[s]] = -1
				nslots--
				if s != nslots {
					cnt[s] = cnt[nslots]
					owner[s] = owner[nslots]
					slot[owner[s]] = int32(s)
				}
				continue
			}
			cnt[s] = v
			if v < newMin {
				newMin = v
			}
			s++
		}
		if rest := w - dec; rest > 0 && nslots < c.k {
			c.owner[nslots], c.cnt[nslots] = int32(i), rest
			c.slot[i] = int32(nslots)
			nslots++
			if rest < newMin {
				newMin = rest
			}
		}
		curMin = newMin
	}
	return total, nslots
}

// runSpaceSaving streams the bandwidth column through k Space-Saving
// counters: a new flow beyond capacity evicts the minimum counter and
// inherits its count as both base and error bound. The heap is keyed
// (count, owner), whose unique lexicographic minimum is exactly what
// the linear argmin scan selected — same eviction sequence, same
// verdicts. The owner tie-break matches SpaceSaving.Add's prefix
// tie-break, since snapshot order is prefix order. Every update only
// grows a slot's key (bandwidths are positive), so a siftDown from
// the slot's position restores the heap.
func (c *SketchClassifier) runSpaceSaving(bw []float64) (total float64) {
	for i, w := range bw {
		total += w
		if s := c.slot[i]; s >= 0 {
			c.cnt[s] += w
			c.siftDown(int(c.pos[s]))
			continue
		}
		if len(c.heap) < c.k {
			s := int32(len(c.heap))
			c.owner[s], c.cnt[s], c.errv[s] = int32(i), w, 0
			c.slot[i] = s
			c.heapPush(s)
			continue
		}
		s := c.heap[0]
		c.slot[c.owner[s]] = -1
		c.errv[s] = c.cnt[s]
		c.cnt[s] += w
		c.owner[s] = int32(i)
		c.slot[i] = s
		c.siftDown(0)
	}
	return total
}
