package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// sketchKind selects which k-counter summary a SketchClassifier runs.
type sketchKind uint8

const (
	sketchMisraGries sketchKind = iota
	sketchSpaceSaving
)

// SketchClassifier adapts a k-counter heavy-hitter sketch to
// core.Classifier, making the streaming-sketch baselines runnable
// through the same pipeline, engine and CLIs as the paper's schemes.
// Each interval it feeds every active flow's bandwidth through a fresh
// sketch and classifies as elephants the flows whose estimated share
// of the interval's traffic exceeds Fraction. The smoothed threshold is
// ignored: like TopKClassifier this baseline is volume-only, with no
// adaptive threshold and no persistence — exactly what the paper's
// two-feature scheme is compared against. Memory is bounded by the
// sketch's k counters instead of the interval's flow count, which is
// the operational argument for sketches; the price is approximation
// error (under-estimates for Misra–Gries, over-estimates for
// Space-Saving).
//
// The per-interval state is columnar and keyed by snapshot index
// rather than by prefix: counters live in flat slot arrays and the
// flow→counter association is an index column reset each interval, so
// the classify path never hashes or compares a prefix. The verdicts
// are identical to the exported map-based MisraGries/SpaceSaving
// sketches fed in snapshot order: every eviction decision depends only
// on counter values with a deterministic tie-break, and because the
// snapshot is strictly sorted by prefix, the sketches' prefix
// tie-break order is exactly the snapshot index order.
type SketchClassifier struct {
	// Fraction is the heavy-hitter cut as a share of interval traffic.
	Fraction float64

	kind sketchKind
	k    int
	name string

	// slot maps snapshot index -> occupied slot (-1 when untracked);
	// reset each interval. owner/cnt/errv are the k counter slots:
	// owning snapshot index, counter value, and (Space-Saving only) the
	// overestimation bound inherited at eviction.
	slot    []int32
	owner   []int32
	cnt     []float64
	errv    []float64
	scratch []int
}

// NewMisraGriesClassifier returns a per-interval Misra–Gries
// heavy-hitter classifier with k counters. fraction <= 0 selects
// 1/(k+1), the classic support threshold. Both sketch classifiers cut
// on their guaranteed weight (Misra–Gries underestimates,
// Space-Saving's count minus its error bound), so the elephant set has
// no false positives; borderline true heavy hitters whose guarantee
// falls below the cut are missed — part of what the exact adaptive
// schemes buy over a k-counter memory budget.
func NewMisraGriesClassifier(k int, fraction float64) (*SketchClassifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: misra-gries with k=%d", k)
	}
	return newSketchClassifier(sketchMisraGries, fmt.Sprintf("misra-gries-%d", k), k, fraction)
}

// NewSpaceSavingClassifier returns a per-interval Space-Saving
// heavy-hitter classifier with k counters. fraction <= 0 selects
// 1/(k+1).
func NewSpaceSavingClassifier(k int, fraction float64) (*SketchClassifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: space-saving with k=%d", k)
	}
	return newSketchClassifier(sketchSpaceSaving, fmt.Sprintf("space-saving-%d", k), k, fraction)
}

func newSketchClassifier(kind sketchKind, name string, k int, fraction float64) (*SketchClassifier, error) {
	if fraction >= 1 {
		return nil, fmt.Errorf("baseline: %s: fraction %v must be below 1", name, fraction)
	}
	if fraction <= 0 {
		fraction = 1 / float64(k+1)
	}
	return &SketchClassifier{
		Fraction: fraction,
		kind:     kind,
		k:        k,
		name:     name,
		owner:    make([]int32, k),
		cnt:      make([]float64, k),
		errv:     make([]float64, k),
	}, nil
}

// Name implements core.Classifier.
func (c *SketchClassifier) Name() string { return c.name }

// Classify implements core.Classifier. The threshold argument is
// ignored. The snapshot's sorted flow order makes the sketch's
// eviction decisions, and therefore the verdict, deterministic.
func (c *SketchClassifier) Classify(snap *core.FlowSnapshot, _ float64) core.Verdict {
	n := snap.Len()
	if cap(c.slot) < n {
		c.slot = make([]int32, n)
	} else {
		c.slot = c.slot[:n]
	}
	for i := range c.slot {
		c.slot[i] = -1
	}
	var total float64
	var nslots int
	if c.kind == sketchMisraGries {
		total, nslots = c.runMisraGries(snap.Bandwidths())
	} else {
		total, nslots = c.runSpaceSaving(snap.Bandwidths())
	}
	cut := c.Fraction * total
	c.scratch = c.scratch[:0]
	for s := 0; s < nslots; s++ {
		guaranteed := c.cnt[s]
		if c.kind == sketchSpaceSaving {
			guaranteed -= c.errv[s]
		}
		if guaranteed > cut {
			c.scratch = append(c.scratch, int(c.owner[s]))
		}
	}
	sort.Ints(c.scratch)
	return core.Verdict{Indices: c.scratch}
}

// runMisraGries streams the bandwidth column through k Misra–Gries
// counters: a new flow either takes a free slot or triggers the
// decrement-all step, subtracting the smallest amount that frees at
// least one counter (min of the new weight and the smallest counter —
// the same weighted-update rule as MisraGries.Add). Deleted slots are
// compacted by moving the last occupied slot down.
func (c *SketchClassifier) runMisraGries(bw []float64) (total float64, nslots int) {
	for i, w := range bw {
		total += w
		if s := c.slot[i]; s >= 0 {
			c.cnt[s] += w
			continue
		}
		if nslots < c.k {
			c.owner[nslots], c.cnt[nslots] = int32(i), w
			c.slot[i] = int32(nslots)
			nslots++
			continue
		}
		dec := w
		for s := 0; s < nslots; s++ {
			if c.cnt[s] < dec {
				dec = c.cnt[s]
			}
		}
		for s := 0; s < nslots; {
			if c.cnt[s]-dec <= 0 {
				c.slot[c.owner[s]] = -1
				nslots--
				if s < nslots {
					c.owner[s] = c.owner[nslots]
					c.cnt[s] = c.cnt[nslots]
					c.slot[c.owner[s]] = int32(s)
				}
			} else {
				c.cnt[s] -= dec
				s++
			}
		}
		if rest := w - dec; rest > 0 && nslots < c.k {
			c.owner[nslots], c.cnt[nslots] = int32(i), rest
			c.slot[i] = int32(nslots)
			nslots++
		}
	}
	return total, nslots
}

// runSpaceSaving streams the bandwidth column through k Space-Saving
// counters: a new flow beyond capacity evicts the minimum counter and
// inherits its count as both base and error bound. The tie-break on
// equal minima is the owner's snapshot index — identical to
// SpaceSaving.Add's prefix tie-break, since snapshot order is prefix
// order.
func (c *SketchClassifier) runSpaceSaving(bw []float64) (total float64, nslots int) {
	for i, w := range bw {
		total += w
		if s := c.slot[i]; s >= 0 {
			c.cnt[s] += w
			continue
		}
		if nslots < c.k {
			c.owner[nslots], c.cnt[nslots], c.errv[nslots] = int32(i), w, 0
			c.slot[i] = int32(nslots)
			nslots++
			continue
		}
		minS := 0
		for s := 1; s < nslots; s++ {
			if c.cnt[s] < c.cnt[minS] || (c.cnt[s] == c.cnt[minS] && c.owner[s] < c.owner[minS]) {
				minS = s
			}
		}
		c.slot[c.owner[minS]] = -1
		c.errv[minS] = c.cnt[minS]
		c.cnt[minS] += w
		c.owner[minS] = int32(i)
		c.slot[i] = int32(minS)
	}
	return total, nslots
}
