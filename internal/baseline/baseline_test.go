package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/core"
)

func pfx(i int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
}

func TestFixedThresholdDetector(t *testing.T) {
	if _, err := NewFixedThresholdDetector(0); err == nil {
		t.Error("theta=0 accepted")
	}
	d, err := NewFixedThresholdDetector(1e6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.DetectThreshold([]float64{1, 2, 3})
	if err != nil || got != 1e6 {
		t.Errorf("DetectThreshold = %v, %v", got, err)
	}
	if d.Name() != "fixed-1e+06" {
		t.Errorf("Name = %q", d.Name())
	}
}

// topKSet resolves a TopK verdict into snapshot prefixes.
func topKSet(snap *core.FlowSnapshot, v core.Verdict) map[netip.Prefix]bool {
	out := make(map[netip.Prefix]bool, len(v.Indices))
	for _, i := range v.Indices {
		out[snap.Key(i)] = true
	}
	return out
}

func TestTopKClassifier(t *testing.T) {
	if _, err := NewTopKClassifier(0); err == nil {
		t.Error("k=0 accepted")
	}
	c, err := NewTopKClassifier(2)
	if err != nil {
		t.Fatal(err)
	}
	s := core.SnapshotFromMap(map[netip.Prefix]float64{
		pfx(0): 10, pfx(1): 100, pfx(2): 50, pfx(3): 1,
	}, nil)
	out := topKSet(s, c.Classify(s, 99999)) // threshold must be ignored
	if len(out) != 2 || !out[pfx(1)] || !out[pfx(2)] {
		t.Errorf("top-2 = %v", out)
	}
}

func TestTopKFewerFlowsThanK(t *testing.T) {
	c, _ := NewTopKClassifier(10)
	s := core.SnapshotFromMap(map[netip.Prefix]float64{pfx(0): 5}, nil)
	out := topKSet(s, c.Classify(s, 0))
	if len(out) != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	c, _ := NewTopKClassifier(1)
	s := core.SnapshotFromMap(map[netip.Prefix]float64{pfx(3): 5, pfx(1): 5, pfx(2): 5}, nil)
	first := topKSet(s, c.Classify(s, 0))
	for i := 0; i < 20; i++ {
		got := topKSet(s, c.Classify(s, 0))
		for p := range first {
			if !got[p] {
				t.Fatal("tie-break not deterministic")
			}
		}
	}
	if !first[pfx(1)] {
		t.Errorf("tie must resolve to the lowest prefix, got %v", first)
	}
}

// TestTopKIndicesAscending: the Verdict ordering contract.
func TestTopKIndicesAscending(t *testing.T) {
	c, _ := NewTopKClassifier(3)
	s := core.SnapshotFromMap(map[netip.Prefix]float64{
		pfx(0): 1, pfx(1): 50, pfx(2): 2, pfx(3): 40, pfx(4): 60,
	}, nil)
	v := c.Classify(s, 0)
	for i := 1; i < len(v.Indices); i++ {
		if v.Indices[i-1] >= v.Indices[i] {
			t.Fatalf("indices not ascending: %v", v.Indices)
		}
	}
	out := topKSet(s, v)
	if !out[pfx(1)] || !out[pfx(3)] || !out[pfx(4)] {
		t.Errorf("top-3 = %v", out)
	}
}

func TestMisraGriesExactSmall(t *testing.T) {
	m, err := NewMisraGries(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer distinct flows than counters: exact counts.
	m.Add(pfx(0), 100)
	m.Add(pfx(1), 50)
	m.Add(pfx(0), 100)
	if got, ok := m.Estimate(pfx(0)); !ok || got != 200 {
		t.Errorf("estimate = %v, %v", got, ok)
	}
	if m.Total() != 250 {
		t.Errorf("total = %v", m.Total())
	}
}

func TestMisraGriesValidation(t *testing.T) {
	if _, err := NewMisraGries(0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestMisraGriesGuarantee: every flow with true weight > Total/(k+1)
// must survive in the summary, and estimates never exceed true weights.
func TestMisraGriesGuarantee(t *testing.T) {
	const k = 9
	m, _ := NewMisraGries(k)
	rng := rand.New(rand.NewSource(70))
	truth := map[netip.Prefix]float64{}
	// Two genuinely heavy flows amid a sea of small ones.
	for i := 0; i < 20000; i++ {
		var p netip.Prefix
		var w float64
		switch {
		case i%10 == 0:
			p, w = pfx(0), 40+rng.Float64()*10
		case i%10 == 1:
			p, w = pfx(1), 30+rng.Float64()*10
		default:
			p, w = pfx(2+rng.Intn(500)), 1+rng.Float64()
		}
		truth[p] += w
		m.Add(p, w)
	}
	bound := m.Total() / float64(k+1)
	for _, heavy := range []netip.Prefix{pfx(0), pfx(1)} {
		if truth[heavy] <= bound {
			t.Skipf("test workload too flat: %v <= %v", truth[heavy], bound)
		}
		est, ok := m.Estimate(heavy)
		if !ok {
			t.Fatalf("heavy flow %v lost (true %v > bound %v)", heavy, truth[heavy], bound)
		}
		if est > truth[heavy]+1e-9 {
			t.Errorf("%v overestimated: %v > %v", heavy, est, truth[heavy])
		}
		if est < truth[heavy]-bound-1e-9 {
			t.Errorf("%v undercount beyond bound: est %v, true %v, bound %v", heavy, est, truth[heavy], bound)
		}
	}
	hh := m.HeavyHitters(1.0 / float64(k+1))
	found := map[netip.Prefix]bool{}
	for _, p := range hh {
		found[p] = true
	}
	if !found[pfx(0)] || !found[pfx(1)] {
		t.Errorf("heavy hitters %v missing the true heavies", hh)
	}
}

func TestMisraGriesReset(t *testing.T) {
	m, _ := NewMisraGries(2)
	m.Add(pfx(0), 10)
	m.Reset()
	if m.Total() != 0 {
		t.Error("total not reset")
	}
	if _, ok := m.Estimate(pfx(0)); ok {
		t.Error("counters not reset")
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestSpaceSavingGuarantees: counts are overestimates bounded by the
// recorded error, and any flow above Total/k is tracked.
func TestSpaceSavingGuarantees(t *testing.T) {
	const k = 10
	s, _ := NewSpaceSaving(k)
	rng := rand.New(rand.NewSource(71))
	truth := map[netip.Prefix]float64{}
	for i := 0; i < 30000; i++ {
		var p netip.Prefix
		var w float64
		if i%5 == 0 {
			p, w = pfx(i%3), 20+rng.Float64()*5 // three heavies
		} else {
			p, w = pfx(10+rng.Intn(800)), 1
		}
		truth[p] += w
		s.Add(p, w)
	}
	for i := 0; i < 3; i++ {
		heavy := pfx(i)
		count, errB, ok := s.Estimate(heavy)
		if !ok {
			t.Fatalf("heavy flow %v not tracked (true %v, total/k %v)", heavy, truth[heavy], s.Total()/k)
		}
		if count < truth[heavy]-1e-9 {
			t.Errorf("%v count %v below true %v (must overestimate)", heavy, count, truth[heavy])
		}
		if count-errB > truth[heavy]+1e-9 {
			t.Errorf("%v guaranteed weight %v exceeds true %v", heavy, count-errB, truth[heavy])
		}
	}
	hh := s.HeavyHitters(0.05)
	if len(hh) == 0 {
		t.Fatal("no heavy hitters at 5%")
	}
	// Results are sorted by descending count.
	prev := math.Inf(1)
	for _, p := range hh {
		c, _, _ := s.Estimate(p)
		if c > prev {
			t.Fatal("heavy hitters not sorted")
		}
		prev = c
	}
}

func TestSpaceSavingBoundedMemory(t *testing.T) {
	const k = 8
	s, _ := NewSpaceSaving(k)
	for i := 0; i < 10000; i++ {
		s.Add(pfx(i%2000), 1)
	}
	if len(s.counters) > k {
		t.Errorf("counters = %d > k = %d", len(s.counters), k)
	}
}

func TestSpaceSavingDeterministicEviction(t *testing.T) {
	run := func() []netip.Prefix {
		s, _ := NewSpaceSaving(3)
		for i := 0; i < 100; i++ {
			s.Add(pfx(i%7), 1) // constant weights force ties
		}
		return s.HeavyHitters(0)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic eviction: %v vs %v", a, b)
		}
	}
}

func TestSketchesIgnoreNonPositive(t *testing.T) {
	m, _ := NewMisraGries(2)
	m.Add(pfx(0), 0)
	m.Add(pfx(0), -5)
	if m.Total() != 0 {
		t.Error("misra-gries accepted non-positive weight")
	}
	s, _ := NewSpaceSaving(2)
	s.Add(pfx(0), 0)
	s.Add(pfx(0), -5)
	if s.Total() != 0 {
		t.Error("space-saving accepted non-positive weight")
	}
}
