package packet

import "net/netip"

// addChecksum accumulates data into the ones-complement sum acc. Data of
// odd length is padded with a virtual zero byte, matching RFC 1071.
func addChecksum(acc uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

// foldChecksum folds the 32-bit accumulator into the final 16-bit
// ones-complement checksum.
func foldChecksum(acc uint32) uint16 {
	for acc > 0xFFFF {
		acc = acc>>16 + acc&0xFFFF
	}
	return ^uint16(acc)
}

// ipChecksum computes the RFC 1071 checksum of an IPv4 header. A header
// containing a valid checksum field sums to zero.
func ipChecksum(header []byte) uint16 {
	return foldChecksum(addChecksum(0, header))
}

// pseudoHeaderChecksum starts a transport checksum with the IPv4 or IPv6
// pseudo-header for the given addresses, protocol and transport length.
func pseudoHeaderChecksum(src, dst netip.Addr, proto uint8, length uint32) uint32 {
	var acc uint32
	if src.Is4() {
		s, d := src.As4(), dst.As4()
		acc = addChecksum(acc, s[:])
		acc = addChecksum(acc, d[:])
	} else {
		s, d := src.As16(), dst.As16()
		acc = addChecksum(acc, s[:])
		acc = addChecksum(acc, d[:])
	}
	acc += uint32(proto)
	acc += length & 0xFFFF
	acc += length >> 16
	return acc
}
