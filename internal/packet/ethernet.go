package packet

import (
	"encoding/binary"
	"fmt"
)

// MACAddr is a 48-bit Ethernet hardware address.
type MACAddr [6]byte

// String renders the address in the canonical colon-separated form.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EthernetHeaderLen is the length of an Ethernet II header in bytes.
const EthernetHeaderLen = 14

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	SrcMAC, DstMAC MACAddr
	EtherType      uint16
	payload        []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return truncated(LayerTypeEthernet, len(data), EthernetHeaderLen)
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// NextLayerType implements Layer.
func (e *Ethernet) NextLayerType() LayerType { return ethertypeNext(e.EtherType) }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// AppendTo serializes the header, appending it to b.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.DstMAC[:]...)
	b = append(b, e.SrcMAC[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// Dot1QHeaderLen is the length of an 802.1Q tag in bytes.
const Dot1QHeaderLen = 4

// Dot1Q is an IEEE 802.1Q VLAN tag.
type Dot1Q struct {
	Priority     uint8  // 3-bit PCP
	DropEligible bool   // DEI bit
	VLAN         uint16 // 12-bit VLAN identifier
	EtherType    uint16 // encapsulated ethertype
	payload      []byte
}

// LayerType implements Layer.
func (d *Dot1Q) LayerType() LayerType { return LayerTypeDot1Q }

// DecodeFromBytes implements Layer.
func (d *Dot1Q) DecodeFromBytes(data []byte) error {
	if len(data) < Dot1QHeaderLen {
		return truncated(LayerTypeDot1Q, len(data), Dot1QHeaderLen)
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	d.Priority = uint8(tci >> 13)
	d.DropEligible = tci&0x1000 != 0
	d.VLAN = tci & 0x0FFF
	d.EtherType = binary.BigEndian.Uint16(data[2:4])
	d.payload = data[Dot1QHeaderLen:]
	return nil
}

// NextLayerType implements Layer.
func (d *Dot1Q) NextLayerType() LayerType { return ethertypeNext(d.EtherType) }

// LayerPayload implements Layer.
func (d *Dot1Q) LayerPayload() []byte { return d.payload }

// AppendTo serializes the tag, appending it to b.
func (d *Dot1Q) AppendTo(b []byte) []byte {
	tci := uint16(d.Priority)<<13 | d.VLAN&0x0FFF
	if d.DropEligible {
		tci |= 0x1000
	}
	b = binary.BigEndian.AppendUint16(b, tci)
	return binary.BigEndian.AppendUint16(b, d.EtherType)
}
