package packet

import (
	"errors"
	"net/netip"
)

// ErrNoIPLayer is returned by Parser.Parse for frames that carry no IPv4
// or IPv6 datagram (e.g. ARP, LLDP).
var ErrNoIPLayer = errors.New("packet: frame carries no IP layer")

// Summary captures the fields of a decoded packet that the measurement
// pipeline consumes. It is a plain value: safe to copy, usable as a
// struct field, with no aliasing into the packet buffer.
type Summary struct {
	SrcIP, DstIP     netip.Addr
	Protocol         uint8  // IP protocol number
	SrcPort, DstPort uint16 // zero unless TCP or UDP
	IPLength         int    // network-layer datagram length in bytes
	WireLength       int    // full frame length in bytes
	VLAN             uint16 // 802.1Q VLAN ID, zero if untagged
	IsIPv6           bool
	TransportOK      bool // transport header successfully decoded
}

// Parser decodes Ethernet frames into Summary values with zero
// steady-state allocation. A Parser is not safe for concurrent use; use
// one per goroutine.
type Parser struct {
	eth   Ethernet
	dot1q Dot1Q
	ip4   IPv4
	ip6   IPv6
	tcp   TCP
	udp   UDP

	// Stats counts decode outcomes across the Parser's lifetime.
	Stats ParserStats
}

// ParserStats counts decode outcomes.
type ParserStats struct {
	Frames      uint64 // frames presented to Parse
	IPv4Packets uint64
	IPv6Packets uint64
	NonIP       uint64 // frames without an IP layer
	Errors      uint64 // frames that failed to decode
}

// NewParser returns a ready-to-use Parser.
func NewParser() *Parser { return &Parser{} }

// Parse decodes one Ethernet frame. On success the returned Summary is
// fully populated. Frames without an IP layer return ErrNoIPLayer.
func (p *Parser) Parse(frame []byte) (Summary, error) {
	p.Stats.Frames++
	var s Summary
	s.WireLength = len(frame)
	if err := p.eth.DecodeFromBytes(frame); err != nil {
		p.Stats.Errors++
		return s, err
	}
	next := p.eth.NextLayerType()
	payload := p.eth.LayerPayload()
	if next == LayerTypeDot1Q {
		if err := p.dot1q.DecodeFromBytes(payload); err != nil {
			p.Stats.Errors++
			return s, err
		}
		s.VLAN = p.dot1q.VLAN
		next = p.dot1q.NextLayerType()
		payload = p.dot1q.LayerPayload()
	}
	switch next {
	case LayerTypeIPv4:
		if err := p.ip4.DecodeFromBytes(payload); err != nil {
			p.Stats.Errors++
			return s, err
		}
		p.Stats.IPv4Packets++
		s.SrcIP, s.DstIP = p.ip4.SrcIP, p.ip4.DstIP
		s.Protocol = p.ip4.Protocol
		s.IPLength = int(p.ip4.Length)
		next = p.ip4.NextLayerType()
		payload = p.ip4.LayerPayload()
	case LayerTypeIPv6:
		if err := p.ip6.DecodeFromBytes(payload); err != nil {
			p.Stats.Errors++
			return s, err
		}
		p.Stats.IPv6Packets++
		s.IsIPv6 = true
		s.SrcIP, s.DstIP = p.ip6.SrcIP, p.ip6.DstIP
		s.Protocol = p.ip6.NextHeader
		s.IPLength = IPv6HeaderLen + int(p.ip6.Length)
		next = p.ip6.NextLayerType()
		payload = p.ip6.LayerPayload()
	default:
		p.Stats.NonIP++
		return s, ErrNoIPLayer
	}
	switch next {
	case LayerTypeTCP:
		if err := p.tcp.DecodeFromBytes(payload); err == nil {
			s.SrcPort, s.DstPort = p.tcp.SrcPort, p.tcp.DstPort
			s.TransportOK = true
		}
	case LayerTypeUDP:
		if err := p.udp.DecodeFromBytes(payload); err == nil {
			s.SrcPort, s.DstPort = p.udp.SrcPort, p.udp.DstPort
			s.TransportOK = true
		}
	}
	return s, nil
}

// IPv4Layer exposes the last-decoded IPv4 header. Valid only immediately
// after a Parse call that decoded IPv4.
func (p *Parser) IPv4Layer() *IPv4 { return &p.ip4 }

// IPv6Layer exposes the last-decoded IPv6 header. Valid only immediately
// after a Parse call that decoded IPv6.
func (p *Parser) IPv6Layer() *IPv6 { return &p.ip6 }

// TCPLayer exposes the last-decoded TCP header.
func (p *Parser) TCPLayer() *TCP { return &p.tcp }

// UDPLayer exposes the last-decoded UDP header.
func (p *Parser) UDPLayer() *UDP { return &p.udp }
