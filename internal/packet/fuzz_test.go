package packet

import (
	"testing"
)

// FuzzParse drives the frame decoder with arbitrary bytes: it must never
// panic, and any successful parse must satisfy basic invariants. Run the
// fuzzer with `go test -fuzz FuzzParse ./internal/packet`; under plain
// `go test` the seed corpus doubles as a regression test.
func FuzzParse(f *testing.F) {
	// Seeds: a valid v4/TCP frame, a VLAN v6/UDP frame, truncations and
	// junk.
	b := NewBuilder()
	if frame, err := b.Build(FrameSpec{
		SrcIP: srcV4, DstIP: dstV4, Protocol: IPProtocolTCP,
		SrcPort: 80, DstPort: 443, PayloadLen: 32,
	}); err == nil {
		f.Add(append([]byte(nil), frame...))
		f.Add(append([]byte(nil), frame[:20]...))
	}
	if frame, err := b.Build(FrameSpec{
		SrcIP: srcV6, DstIP: dstV6, VLAN: 5, Protocol: IPProtocolUDP,
	}); err == nil {
		f.Add(append([]byte(nil), frame...))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})

	p := NewParser()
	f.Fuzz(func(t *testing.T, data []byte) {
		sum, err := p.Parse(data)
		if err != nil {
			return
		}
		if sum.WireLength != len(data) {
			t.Fatalf("WireLength %d != frame length %d", sum.WireLength, len(data))
		}
		if !sum.SrcIP.IsValid() || !sum.DstIP.IsValid() {
			t.Fatalf("successful parse with invalid addresses: %+v", sum)
		}
		if sum.IsIPv6 != sum.DstIP.Is6() {
			t.Fatalf("IsIPv6 flag inconsistent: %+v", sum)
		}
	})
}
