package packet

import (
	"encoding/binary"
	"net/netip"
)

// IPv6HeaderLen is the length of the IPv6 fixed header.
const IPv6HeaderLen = 40

// IPv6 is an IPv6 fixed header. Extension headers are not walked; a
// next-header value other than TCP/UDP maps to LayerTypePayload, which is
// sufficient for backbone byte accounting.
type IPv6 struct {
	Version      uint8 // always 6 after a successful decode
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	Length       uint16 // payload length
	NextHeader   uint8
	HopLimit     uint8
	SrcIP        netip.Addr
	DstIP        netip.Addr
	payload      []byte
}

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return truncated(LayerTypeIPv6, len(data), IPv6HeaderLen)
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	ip.Version = uint8(vtf >> 28)
	if ip.Version != 6 {
		return &DecodeError{Layer: LayerTypeIPv6, Reason: "version field is not 6"}
	}
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0x000FFFFF
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.SrcIP = netip.AddrFrom16([16]byte(data[8:24]))
	ip.DstIP = netip.AddrFrom16([16]byte(data[24:40]))
	end := IPv6HeaderLen + int(ip.Length)
	if end > len(data) {
		end = len(data)
	}
	ip.payload = data[IPv6HeaderLen:end]
	return nil
}

// NextLayerType implements Layer.
func (ip *IPv6) NextLayerType() LayerType { return ipProtoNext(ip.NextHeader) }

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// AppendTo serializes the fixed header and appends it to b. payloadLen
// fills the Length field when ip.Length is zero.
func (ip *IPv6) AppendTo(b []byte, payloadLen int) []byte {
	vtf := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0x000FFFFF
	b = binary.BigEndian.AppendUint32(b, vtf)
	length := ip.Length
	if length == 0 {
		length = uint16(payloadLen)
	}
	b = binary.BigEndian.AppendUint16(b, length)
	b = append(b, ip.NextHeader, ip.HopLimit)
	src, dst := ip.SrcIP.As16(), ip.DstIP.As16()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	return b
}
