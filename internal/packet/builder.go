package packet

import (
	"fmt"
	"net/netip"
)

// Builder assembles complete Ethernet/IP/transport frames. It reuses an
// internal buffer across Build calls, so the returned slice is valid only
// until the next call; callers that retain frames must copy them.
//
// The trace generator uses a Builder to emit synthetic backbone packets
// that the measurement pipeline later decodes, exercising the same code
// path a live capture would.
type Builder struct {
	buf     []byte
	payload []byte
}

// NewBuilder returns a Builder with capacity for typical frames.
func NewBuilder() *Builder {
	return &Builder{buf: make([]byte, 0, 2048)}
}

// FrameSpec describes one frame to build.
type FrameSpec struct {
	SrcMAC, DstMAC   MACAddr
	VLAN             uint16 // if non-zero, insert an 802.1Q tag
	SrcIP, DstIP     netip.Addr
	Protocol         uint8 // IPProtocolTCP or IPProtocolUDP
	SrcPort, DstPort uint16
	TTL              uint8 // defaults to 64 when zero
	PayloadLen       int   // application payload bytes (zero-filled)
	TCPFlagsSYN      bool
	TCPFlagsACK      bool
	Seq              uint32
}

// Build serializes the frame described by spec. Both addresses must be
// the same IP family.
func (b *Builder) Build(spec FrameSpec) ([]byte, error) {
	if !spec.SrcIP.IsValid() || !spec.DstIP.IsValid() {
		return nil, fmt.Errorf("packet: builder: invalid IP address")
	}
	if spec.SrcIP.Is4() != spec.DstIP.Is4() {
		return nil, fmt.Errorf("packet: builder: mixed address families %s -> %s", spec.SrcIP, spec.DstIP)
	}
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	if cap(b.payload) < spec.PayloadLen {
		b.payload = make([]byte, spec.PayloadLen)
	}
	payload := b.payload[:spec.PayloadLen]

	// Transport header + payload first (it is the IP payload).
	var transport []byte
	scratch := b.buf[:0]
	switch spec.Protocol {
	case IPProtocolTCP:
		tcp := TCP{
			SrcPort: spec.SrcPort, DstPort: spec.DstPort,
			Seq: spec.Seq, Window: 65535,
			SYN: spec.TCPFlagsSYN, ACK: spec.TCPFlagsACK,
		}
		transport = tcp.AppendTo(scratch, spec.SrcIP, spec.DstIP, payload)
	case IPProtocolUDP:
		udp := UDP{SrcPort: spec.SrcPort, DstPort: spec.DstPort}
		transport = udp.AppendTo(scratch, spec.SrcIP, spec.DstIP, payload)
	default:
		return nil, fmt.Errorf("packet: builder: unsupported protocol %d", spec.Protocol)
	}
	transportLen := len(transport)

	// Now prepend link + network headers into a fresh region after the
	// transport bytes, then stitch. Simplest correct approach: build
	// into a second buffer.
	etherType := EtherTypeIPv4
	if spec.SrcIP.Is6() {
		etherType = EtherTypeIPv6
	}
	out := transport[transportLen:] // append region shares b.buf backing
	eth := Ethernet{SrcMAC: spec.SrcMAC, DstMAC: spec.DstMAC, EtherType: etherType}
	if spec.VLAN != 0 {
		eth.EtherType = EtherTypeDot1Q
	}
	out = eth.AppendTo(out)
	if spec.VLAN != 0 {
		tag := Dot1Q{VLAN: spec.VLAN, EtherType: etherType}
		out = tag.AppendTo(out)
	}
	if spec.SrcIP.Is4() {
		ip := IPv4{
			TTL: ttl, Protocol: spec.Protocol,
			SrcIP: spec.SrcIP, DstIP: spec.DstIP,
			ID: uint16(spec.Seq),
		}
		out = ip.AppendTo(out, transportLen+spec.PayloadLen)
	} else {
		ip := IPv6{
			NextHeader: spec.Protocol, HopLimit: ttl,
			SrcIP: spec.SrcIP, DstIP: spec.DstIP,
		}
		out = ip.AppendTo(out, transportLen+spec.PayloadLen)
	}
	out = append(out, transport[:transportLen]...)
	out = append(out, payload...)
	b.buf = transport[:0] // keep grown capacity for next Build
	return out, nil
}
