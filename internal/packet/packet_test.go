package packet

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

var (
	srcMAC = MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC = MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	srcV4  = netip.MustParseAddr("192.0.2.1")
	dstV4  = netip.MustParseAddr("198.51.100.7")
	srcV6  = netip.MustParseAddr("2001:db8::1")
	dstV6  = netip.MustParseAddr("2001:db8::2")
)

func buildFrame(t *testing.T, spec FrameSpec) []byte {
	t.Helper()
	b := NewBuilder()
	frame, err := b.Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func TestRoundtripIPv4TCP(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcMAC: srcMAC, DstMAC: dstMAC,
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolTCP, SrcPort: 12345, DstPort: 80,
		PayloadLen: 100, Seq: 777,
	})
	p := NewParser()
	sum, err := p.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SrcIP != srcV4 || sum.DstIP != dstV4 {
		t.Errorf("IPs = %v -> %v", sum.SrcIP, sum.DstIP)
	}
	if sum.Protocol != IPProtocolTCP || sum.SrcPort != 12345 || sum.DstPort != 80 {
		t.Errorf("transport = proto %d %d->%d", sum.Protocol, sum.SrcPort, sum.DstPort)
	}
	if !sum.TransportOK || sum.IsIPv6 || sum.VLAN != 0 {
		t.Errorf("flags: %+v", sum)
	}
	if sum.WireLength != len(frame) {
		t.Errorf("WireLength = %d, want %d", sum.WireLength, len(frame))
	}
	wantIP := IPv4HeaderLen + TCPHeaderLen + 100
	if sum.IPLength != wantIP {
		t.Errorf("IPLength = %d, want %d", sum.IPLength, wantIP)
	}
	if p.TCPLayer().Seq != 777 {
		t.Errorf("TCP seq = %d, want 777", p.TCPLayer().Seq)
	}
}

func TestRoundtripIPv4UDP(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolUDP, SrcPort: 53, DstPort: 5353,
		PayloadLen: 32,
	})
	sum, err := NewParser().Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Protocol != IPProtocolUDP || sum.SrcPort != 53 || sum.DstPort != 5353 || !sum.TransportOK {
		t.Errorf("summary = %+v", sum)
	}
	if sum.IPLength != IPv4HeaderLen+UDPHeaderLen+32 {
		t.Errorf("IPLength = %d", sum.IPLength)
	}
}

func TestRoundtripIPv6(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcIP: srcV6, DstIP: dstV6,
		Protocol: IPProtocolTCP, SrcPort: 443, DstPort: 50000,
		PayloadLen: 64,
	})
	sum, err := NewParser().Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.IsIPv6 || sum.SrcIP != srcV6 || sum.DstIP != dstV6 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.IPLength != IPv6HeaderLen+TCPHeaderLen+64 {
		t.Errorf("IPLength = %d", sum.IPLength)
	}
}

func TestRoundtripVLAN(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4, VLAN: 42,
		Protocol: IPProtocolUDP, SrcPort: 1, DstPort: 2,
	})
	sum, err := NewParser().Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if sum.VLAN != 42 {
		t.Errorf("VLAN = %d, want 42", sum.VLAN)
	}
	if sum.SrcIP != srcV4 || sum.DstIP != dstV4 {
		t.Errorf("IPs through VLAN tag: %v -> %v", sum.SrcIP, sum.DstIP)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4, Protocol: IPProtocolTCP,
	})
	// The IPv4 header starts after the 14-byte Ethernet header.
	hdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	if !ValidIPv4Checksum(hdr) {
		t.Error("built IPv4 header fails its own checksum")
	}
	// Corrupt one byte: checksum must fail.
	hdr[8] ^= 0xFF
	if ValidIPv4Checksum(hdr) {
		t.Error("corrupted IPv4 header passes checksum")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(FrameSpec{DstIP: dstV4, Protocol: IPProtocolTCP}); err == nil {
		t.Error("missing src IP: expected error")
	}
	if _, err := b.Build(FrameSpec{SrcIP: srcV4, DstIP: dstV6, Protocol: IPProtocolTCP}); err == nil {
		t.Error("mixed families: expected error")
	}
	if _, err := b.Build(FrameSpec{SrcIP: srcV4, DstIP: dstV4, Protocol: 99}); err == nil {
		t.Error("unsupported protocol: expected error")
	}
}

func TestParseTruncatedFrames(t *testing.T) {
	full := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolTCP, SrcPort: 1, DstPort: 2, PayloadLen: 10,
	})
	// Every truncation point up to the transport header must either
	// error or produce a non-transport summary — never panic.
	p := NewParser()
	for n := 0; n < len(full); n++ {
		sum, err := p.Parse(full[:n])
		if err != nil {
			continue
		}
		// Successful parse of a truncated frame is acceptable only once
		// the full IP header is present.
		if n < EthernetHeaderLen+IPv4HeaderLen {
			t.Errorf("truncated frame of %d bytes parsed: %+v", n, sum)
		}
	}
}

func TestParseTruncationErrorsAreDecodeErrors(t *testing.T) {
	p := NewParser()
	_, err := p.Parse([]byte{1, 2, 3})
	var de *DecodeError
	if !errorsAs(err, &de) {
		t.Fatalf("error type = %T (%v), want *DecodeError", err, err)
	}
	if de.Layer != LayerTypeEthernet || de.Want != EthernetHeaderLen {
		t.Errorf("DecodeError = %+v", de)
	}
	if !strings.Contains(de.Error(), "Ethernet") {
		t.Errorf("message %q lacks layer name", de.Error())
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors twice.
func errorsAs(err error, target **DecodeError) bool {
	for err != nil {
		if de, ok := err.(*DecodeError); ok {
			*target = de
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestParseNonIPFrame(t *testing.T) {
	// ARP ethertype 0x0806.
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x06
	p := NewParser()
	_, err := p.Parse(frame)
	if err != ErrNoIPLayer {
		t.Fatalf("err = %v, want ErrNoIPLayer", err)
	}
	if p.Stats.NonIP != 1 {
		t.Errorf("NonIP = %d, want 1", p.Stats.NonIP)
	}
}

func TestParserStats(t *testing.T) {
	p := NewParser()
	v4 := buildFrame(t, FrameSpec{SrcIP: srcV4, DstIP: dstV4, Protocol: IPProtocolTCP})
	v6 := buildFrame(t, FrameSpec{SrcIP: srcV6, DstIP: dstV6, Protocol: IPProtocolUDP})
	if _, err := p.Parse(v4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse(v6); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse([]byte{0}); err == nil {
		t.Fatal("expected error")
	}
	if p.Stats.Frames != 3 || p.Stats.IPv4Packets != 1 || p.Stats.IPv6Packets != 1 || p.Stats.Errors != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestParseDoesNotPanicOnRandomBytes(t *testing.T) {
	p := NewParser()
	prop := func(data []byte) bool {
		_, _ = p.Parse(data) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseDoesNotPanicOnCorruptedRealFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	base := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4, VLAN: 7,
		Protocol: IPProtocolTCP, SrcPort: 1, DstPort: 2, PayloadLen: 40,
	})
	p := NewParser()
	frame := make([]byte, len(base))
	for i := 0; i < 5000; i++ {
		copy(frame, base)
		// Flip 1-4 random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			frame[rng.Intn(len(frame))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = p.Parse(frame) // must not panic
	}
}

func TestMACAddrString(t *testing.T) {
	m := MACAddr{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("String = %q", got)
	}
}

func TestLayerTypeString(t *testing.T) {
	cases := map[LayerType]string{
		LayerTypeZero:     "None",
		LayerTypeEthernet: "Ethernet",
		LayerTypeDot1Q:    "Dot1Q",
		LayerTypeIPv4:     "IPv4",
		LayerTypeIPv6:     "IPv6",
		LayerTypeTCP:      "TCP",
		LayerTypeUDP:      "UDP",
		LayerTypePayload:  "Payload",
		LayerType(200):    "LayerType(200)",
	}
	for lt, want := range cases {
		if got := lt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", lt, got, want)
		}
	}
}

func TestEthernetDecodeFields(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcMAC: srcMAC, DstMAC: dstMAC,
		SrcIP: srcV4, DstIP: dstV4, Protocol: IPProtocolUDP,
	})
	var eth Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if eth.SrcMAC != srcMAC || eth.DstMAC != dstMAC {
		t.Errorf("MACs = %v -> %v", eth.SrcMAC, eth.DstMAC)
	}
	if eth.EtherType != EtherTypeIPv4 {
		t.Errorf("EtherType = %#x", eth.EtherType)
	}
	if eth.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("NextLayerType = %v", eth.NextLayerType())
	}
}

func TestIPv4DecodeRejectsGarbage(t *testing.T) {
	var ip IPv4
	// Version nibble != 4.
	bad := make([]byte, IPv4HeaderLen)
	bad[0] = 0x60 | 5
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("version 6 accepted by IPv4 decoder")
	}
	// IHL < 5.
	bad[0] = 0x40 | 4
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("IHL 4 accepted")
	}
	// Truncated.
	if err := ip.DecodeFromBytes(bad[:10]); err == nil {
		t.Error("10-byte header accepted")
	}
}

func TestIPv6DecodeRejectsGarbage(t *testing.T) {
	var ip IPv6
	bad := make([]byte, IPv6HeaderLen)
	bad[0] = 0x40 // version 4
	if err := ip.DecodeFromBytes(bad); err == nil {
		t.Error("version 4 accepted by IPv6 decoder")
	}
	if err := ip.DecodeFromBytes(bad[:20]); err == nil {
		t.Error("truncated IPv6 header accepted")
	}
}

func TestTCPFlagsRoundtrip(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolTCP, SrcPort: 9, DstPort: 10,
		TCPFlagsSYN: true, TCPFlagsACK: true,
	})
	p := NewParser()
	if _, err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	tcp := p.TCPLayer()
	if !tcp.SYN || !tcp.ACK {
		t.Errorf("flags: SYN=%v ACK=%v, want both true", tcp.SYN, tcp.ACK)
	}
	if tcp.FIN || tcp.RST || tcp.PSH || tcp.URG {
		t.Errorf("unexpected flags set: %+v", tcp)
	}
}

// TestBuilderFrameRoundtripProperty: frames built from arbitrary valid
// specs must decode back to the same addressing tuple.
func TestBuilderFrameRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := NewBuilder()
	p := NewParser()
	for i := 0; i < 500; i++ {
		var src, dst netip.Addr
		isV6 := rng.Intn(2) == 0
		if isV6 {
			var a, z [16]byte
			rng.Read(a[:])
			rng.Read(z[:])
			a[0], z[0] = 0x20, 0x20 // global unicast-ish
			src, dst = netip.AddrFrom16(a), netip.AddrFrom16(z)
		} else {
			var a, z [4]byte
			rng.Read(a[:])
			rng.Read(z[:])
			src, dst = netip.AddrFrom4(a), netip.AddrFrom4(z)
		}
		proto := IPProtocolTCP
		if rng.Intn(2) == 0 {
			proto = IPProtocolUDP
		}
		spec := FrameSpec{
			SrcIP: src, DstIP: dst, Protocol: proto,
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			PayloadLen: rng.Intn(1400),
		}
		if rng.Intn(4) == 0 {
			spec.VLAN = uint16(1 + rng.Intn(4094))
		}
		frame, err := b.Build(spec)
		if err != nil {
			t.Fatalf("case %d: Build: %v", i, err)
		}
		sum, err := p.Parse(frame)
		if err != nil {
			t.Fatalf("case %d: Parse: %v (spec %+v)", i, err, spec)
		}
		if sum.SrcIP != src || sum.DstIP != dst {
			t.Fatalf("case %d: IPs %v->%v, want %v->%v", i, sum.SrcIP, sum.DstIP, src, dst)
		}
		if sum.SrcPort != spec.SrcPort || sum.DstPort != spec.DstPort {
			t.Fatalf("case %d: ports %d->%d, want %d->%d", i, sum.SrcPort, sum.DstPort, spec.SrcPort, spec.DstPort)
		}
		if sum.VLAN != spec.VLAN {
			t.Fatalf("case %d: VLAN %d, want %d", i, sum.VLAN, spec.VLAN)
		}
		if sum.IsIPv6 != isV6 {
			t.Fatalf("case %d: IsIPv6 = %v", i, sum.IsIPv6)
		}
	}
}

// TestParserZeroAlloc: the steady-state decode path must not allocate.
func TestParserZeroAlloc(t *testing.T) {
	frame := buildFrame(t, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolTCP, SrcPort: 1, DstPort: 2, PayloadLen: 100,
	})
	p := NewParser()
	if _, err := p.Parse(frame); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, _ = p.Parse(frame)
	})
	if allocs > 0 {
		t.Errorf("Parse allocates %v times per call, want 0", allocs)
	}
}
