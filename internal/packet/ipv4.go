package packet

import (
	"encoding/binary"
	"net/netip"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header. Options are exposed as a raw byte slice.
type IPv4 struct {
	Version    uint8 // always 4 after a successful decode
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length including header
	ID         uint16
	Flags      uint8  // 3-bit flags field
	FragOffset uint16 // 13-bit fragment offset, in 8-byte units
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Options    []byte
	payload    []byte
}

// IPv4 flag bits.
const (
	IPv4EvilBit       uint8 = 1 << 2 // reserved, RFC 3514 ;-)
	IPv4DontFragment  uint8 = 1 << 1
	IPv4MoreFragments uint8 = 1 << 0
)

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements Layer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return truncated(LayerTypeIPv4, len(data), IPv4HeaderLen)
	}
	ip.Version = data[0] >> 4
	if ip.Version != 4 {
		return &DecodeError{Layer: LayerTypeIPv4, Reason: "version field is not 4"}
	}
	ip.IHL = data[0] & 0x0F
	hlen := int(ip.IHL) * 4
	if hlen < IPv4HeaderLen {
		return &DecodeError{Layer: LayerTypeIPv4, Reason: "IHL below minimum header length"}
	}
	if len(data) < hlen {
		return truncated(LayerTypeIPv4, len(data), hlen)
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1FFF
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.SrcIP = netip.AddrFrom4([4]byte(data[12:16]))
	ip.DstIP = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Options = data[IPv4HeaderLen:hlen]
	if int(ip.Length) < hlen {
		return &DecodeError{Layer: LayerTypeIPv4, Reason: "total length below header length"}
	}
	end := int(ip.Length)
	if end > len(data) {
		// Captured slice shorter than declared datagram (snap length);
		// expose what we have.
		end = len(data)
	}
	ip.payload = data[hlen:end]
	return nil
}

// NextLayerType implements Layer. Fragments with a non-zero offset carry
// no decodable transport header, so they map to LayerTypePayload.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.FragOffset != 0 {
		return LayerTypePayload
	}
	return ipProtoNext(ip.Protocol)
}

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// HeaderLength returns the decoded header length in bytes.
func (ip *IPv4) HeaderLength() int { return int(ip.IHL) * 4 }

// AppendTo serializes the header (recomputing IHL, Length if zero, and
// Checksum) and appends it to b. payloadLen is the number of payload bytes
// that will follow; it is used to fill the Length field when ip.Length is
// zero.
func (ip *IPv4) AppendTo(b []byte, payloadLen int) []byte {
	hlen := IPv4HeaderLen + len(ip.Options)
	if r := hlen % 4; r != 0 {
		hlen += 4 - r // options are padded to a 32-bit boundary
	}
	length := ip.Length
	if length == 0 {
		length = uint16(hlen + payloadLen)
	}
	start := len(b)
	b = append(b, 4<<4|uint8(hlen/4), ip.TOS)
	b = binary.BigEndian.AppendUint16(b, length)
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOffset&0x1FFF)
	b = append(b, ip.TTL, ip.Protocol, 0, 0) // checksum zeroed for computation
	src, dst := ip.SrcIP.As4(), ip.DstIP.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	b = append(b, ip.Options...)
	for len(b)-start < hlen {
		b = append(b, 0)
	}
	cs := ipChecksum(b[start : start+hlen])
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return b
}

// ValidChecksum reports whether the decoded header checksum is correct.
// It must be called with the original header bytes still alive.
func ValidIPv4Checksum(header []byte) bool {
	if len(header) < IPv4HeaderLen {
		return false
	}
	hlen := int(header[0]&0x0F) * 4
	if hlen < IPv4HeaderLen || hlen > len(header) {
		return false
	}
	return ipChecksum(header[:hlen]) == 0
}
