package packet

import (
	"encoding/binary"
	"net/netip"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP is a TCP segment header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	FIN, SYN, RST    bool
	PSH, ACK, URG    bool
	ECE, CWR, NS     bool
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
	payload          []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return truncated(LayerTypeTCP, len(data), TCPHeaderLen)
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < TCPHeaderLen {
		return &DecodeError{Layer: LayerTypeTCP, Reason: "data offset below minimum"}
	}
	if len(data) < hlen {
		return truncated(LayerTypeTCP, len(data), hlen)
	}
	t.NS = data[12]&0x01 != 0
	f := data[13]
	t.FIN = f&0x01 != 0
	t.SYN = f&0x02 != 0
	t.RST = f&0x04 != 0
	t.PSH = f&0x08 != 0
	t.ACK = f&0x10 != 0
	t.URG = f&0x20 != 0
	t.ECE = f&0x40 != 0
	t.CWR = f&0x80 != 0
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[TCPHeaderLen:hlen]
	t.payload = data[hlen:]
	return nil
}

// NextLayerType implements Layer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

func (t *TCP) flagByte() byte {
	var f byte
	if t.FIN {
		f |= 0x01
	}
	if t.SYN {
		f |= 0x02
	}
	if t.RST {
		f |= 0x04
	}
	if t.PSH {
		f |= 0x08
	}
	if t.ACK {
		f |= 0x10
	}
	if t.URG {
		f |= 0x20
	}
	if t.ECE {
		f |= 0x40
	}
	if t.CWR {
		f |= 0x80
	}
	return f
}

// AppendTo serializes the header, appending to b. The checksum is computed
// over the pseudo-header for src/dst plus the supplied payload.
func (t *TCP) AppendTo(b []byte, src, dst netip.Addr, payload []byte) []byte {
	hlen := TCPHeaderLen + len(t.Options)
	if r := hlen % 4; r != 0 {
		hlen += 4 - r
	}
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	off := byte(hlen/4) << 4
	if t.NS {
		off |= 0x01
	}
	b = append(b, off, t.flagByte())
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	b = append(b, t.Options...)
	for len(b)-start < hlen {
		b = append(b, 0)
	}
	sum := pseudoHeaderChecksum(src, dst, IPProtocolTCP, uint32(hlen+len(payload)))
	sum = addChecksum(sum, b[start:])
	sum = addChecksum(sum, payload)
	binary.BigEndian.PutUint16(b[start+16:start+18], foldChecksum(sum))
	return b
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	payload          []byte
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return truncated(LayerTypeUDP, len(data), UDPHeaderLen)
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if u.Length < UDPHeaderLen {
		return &DecodeError{Layer: LayerTypeUDP, Reason: "length field below header length"}
	}
	end := int(u.Length)
	if end > len(data) {
		end = len(data)
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// NextLayerType implements Layer.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// AppendTo serializes the header, appending to b, computing Length and the
// pseudo-header checksum from the supplied payload.
func (u *UDP) AppendTo(b []byte, src, dst netip.Addr, payload []byte) []byte {
	start := len(b)
	length := uint16(UDPHeaderLen + len(payload))
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, length)
	b = append(b, 0, 0)
	sum := pseudoHeaderChecksum(src, dst, IPProtocolUDP, uint32(length))
	sum = addChecksum(sum, b[start:])
	sum = addChecksum(sum, payload)
	cs := foldChecksum(sum)
	if cs == 0 {
		cs = 0xFFFF // UDP transmits all-ones for a computed zero checksum
	}
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b
}
