// Package packet implements a small, allocation-free layered packet
// decoder and serializer in the spirit of gopacket, covering the protocol
// stack observed on backbone links: Ethernet, 802.1Q, IPv4, IPv6, TCP and
// UDP.
//
// The package is the wire-format substrate of the elephants reproduction:
// the synthetic trace generator serializes packets through it, and the
// measurement pipeline decodes them back. Decoding follows the
// DecodingLayer pattern: a caller owns a set of preallocated layer values
// and invokes DecodeFromBytes on each, so steady-state decoding performs
// no heap allocation.
package packet

import "fmt"

// LayerType identifies a protocol layer that this package can decode.
type LayerType uint8

// Known layer types.
const (
	// LayerTypeZero is the zero value; it marks "no further layer".
	LayerTypeZero LayerType = iota
	// LayerTypeEthernet is an Ethernet II frame header.
	LayerTypeEthernet
	// LayerTypeDot1Q is an IEEE 802.1Q VLAN tag.
	LayerTypeDot1Q
	// LayerTypeIPv4 is an IPv4 header.
	LayerTypeIPv4
	// LayerTypeIPv6 is an IPv6 fixed header.
	LayerTypeIPv6
	// LayerTypeTCP is a TCP header.
	LayerTypeTCP
	// LayerTypeUDP is a UDP header.
	LayerTypeUDP
	// LayerTypePayload is opaque application payload.
	LayerTypePayload
)

// String returns the conventional name of the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeZero:
		return "None"
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeDot1Q:
		return "Dot1Q"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Layer is the interface shared by all decodable protocol layers.
type Layer interface {
	// LayerType reports which protocol this layer decodes.
	LayerType() LayerType
	// DecodeFromBytes parses the layer from the front of data. It must
	// not retain data beyond the call unless documented otherwise; the
	// layer structs in this package alias their payload into data, which
	// remains valid only as long as data is.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of the layer carried in the
	// payload, or LayerTypeZero/LayerTypePayload when unknown.
	NextLayerType() LayerType
	// LayerPayload returns the bytes following this layer's header.
	LayerPayload() []byte
}

// DecodeError describes a failure to parse a particular layer.
type DecodeError struct {
	Layer  LayerType // layer being decoded
	Reason string    // human-readable cause
	Have   int       // bytes available
	Want   int       // bytes required, if the failure is a truncation
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	if e.Want > 0 {
		return fmt.Sprintf("packet: %s: %s (have %d bytes, want %d)", e.Layer, e.Reason, e.Have, e.Want)
	}
	return fmt.Sprintf("packet: %s: %s", e.Layer, e.Reason)
}

func truncated(t LayerType, have, want int) error {
	return &DecodeError{Layer: t, Reason: "truncated header", Have: have, Want: want}
}

// EtherType values relevant to the decoder.
const (
	EtherTypeIPv4  uint16 = 0x0800
	EtherTypeDot1Q uint16 = 0x8100
	EtherTypeIPv6  uint16 = 0x86DD
)

// IPProtocol numbers relevant to the decoder.
const (
	IPProtocolTCP uint8 = 6
	IPProtocolUDP uint8 = 17
)

func ethertypeNext(et uint16) LayerType {
	switch et {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeDot1Q:
		return LayerTypeDot1Q
	default:
		return LayerTypePayload
	}
}

func ipProtoNext(p uint8) LayerType {
	switch p {
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}
