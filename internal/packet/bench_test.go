package packet

import (
	"net/netip"
	"testing"
)

func benchFrame(b *testing.B, spec FrameSpec) []byte {
	b.Helper()
	frame, err := NewBuilder().Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func BenchmarkParseIPv4TCP(b *testing.B) {
	frame := benchFrame(b, FrameSpec{
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolTCP, SrcPort: 1234, DstPort: 80, PayloadLen: 512,
	})
	p := NewParser()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseIPv6UDPVLAN(b *testing.B) {
	frame := benchFrame(b, FrameSpec{
		SrcIP: srcV6, DstIP: dstV6, VLAN: 100,
		Protocol: IPProtocolUDP, SrcPort: 53, DstPort: 53, PayloadLen: 256,
	})
	p := NewParser()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildIPv4TCP(b *testing.B) {
	bld := NewBuilder()
	spec := FrameSpec{
		SrcIP: srcV4, DstIP: dstV4,
		Protocol: IPProtocolTCP, SrcPort: 1234, DstPort: 80, PayloadLen: 512,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bld.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksumValidate(b *testing.B) {
	frame := benchFrame(b, FrameSpec{
		SrcIP: netip.MustParseAddr("192.0.2.1"), DstIP: netip.MustParseAddr("198.51.100.1"),
		Protocol: IPProtocolTCP,
	})
	hdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ValidIPv4Checksum(hdr) {
			b.Fatal("checksum")
		}
	}
}
