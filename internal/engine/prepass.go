package engine

import (
	"repro/internal/core"
	"repro/internal/scheme"
	"repro/internal/stats"
)

// This file implements RunMatrix's detector prepass and threshold
// cache. Threshold detection — unlike classification — is a pure
// function of one interval's bandwidth column and the detector's
// config, so for sealed batch series the engine can (1) compute each
// distinct detector config's θ(t) column exactly once per link, no
// matter how many specs share it (an ablation sweep over alpha or the
// latent window collapses N detector runs to 1), and (2) compute those
// columns across the worker pool before the sequential classify pass,
// turning the per-link critical path from sum(detect+classify) into
// max(parallel detect) + sum(classify). Pipelines consume the columns
// through core.Config.Thresholds; live/stream paths never see them and
// keep inline detection.

// thresholdColumn is one (link, detector-key) precomputed θ(t) column —
// the engine-side implementation of core.ThresholdSource. It covers
// every interval of its link's series: theta[t] (or errs[t]) is exactly
// what the pipeline's own detector would have produced on interval t's
// snapshot, value or error. errs stays nil on links whose every
// interval detects cleanly.
type thresholdColumn struct {
	theta []float64
	errs  []error
}

// RawThreshold implements core.ThresholdSource.
func (c *thresholdColumn) RawThreshold(t int) (float64, bool, error) {
	if t < 0 || t >= len(c.theta) {
		return 0, false, nil
	}
	var err error
	if c.errs != nil {
		err = c.errs[t]
	}
	return c.theta[t], true, err
}

func (c *thresholdColumn) setErr(t int, err error) {
	if c.errs == nil {
		c.errs = make([]error, len(c.theta))
	}
	c.errs[t] = err
}

// prepassDetector is one distinct detector config drawn from the spec
// list: the canonical cache key plus the spec that first used it (each
// prepass job builds its own fresh detector instance from it, because
// detectors carry per-instance scratch state).
type prepassDetector struct {
	key string
	sp  *scheme.Spec
}

// uniqueDetectors dedupes the spec list by canonical detector key,
// preserving first-appearance order. Specs whose detector does not
// build are skipped: their pipelines will fail construction with the
// same error, so their key is never consulted.
func uniqueDetectors(specs []*scheme.Spec) []prepassDetector {
	seen := make(map[string]bool, len(specs))
	dets := make([]prepassDetector, 0, len(specs))
	for _, sp := range specs {
		key := sp.DetectorKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, err := sp.BuildDetector(); err != nil {
			continue
		}
		dets = append(dets, prepassDetector{key: key, sp: sp})
	}
	return dets
}

// sortedColumns holds one link's per-interval bandwidth segments sorted
// ascending, flattened: segment t is bw[offsets[t]:offsets[t+1]]. It
// replicates the snapshot's cached SortedBandwidths column for every
// interval at once, so sorted-aware detectors in the prepass see the
// byte-identical view inline detection would have — and the classify
// pass, with all detectors covered, never sorts at all. One sort per
// (link, interval) total, exactly as emit-once execution pays today.
type sortedColumns struct {
	offsets []int64
	bw      []float64
}

func (s *sortedColumns) segment(t int) []float64 {
	return s.bw[s.offsets[t]:s.offsets[t+1]]
}

// sortScratch is a worker-owned ping-pong buffer for the radix sort.
// CSR bandwidth segments are strictly positive by construction, so
// stats.SortPositive produces exactly the sequence the snapshot's
// slices.Sort-backed SortedBandwidths column would.
type sortScratch struct{ tmp []float64 }

func (s *sortScratch) sort(xs []float64) {
	if cap(s.tmp) < len(xs) {
		s.tmp = make([]float64, len(xs))
	}
	stats.SortPositive(xs, s.tmp[:len(xs)])
}

// buildSortedColumns sorts every interval's bandwidth view of one
// link. Returns nil when the series has no CSR index (the prepass is
// skipped for the link and its pipelines detect inline).
func buildSortedColumns(l MatrixLink, scratch *sortScratch) *sortedColumns {
	n := l.Series.Intervals
	sc := &sortedColumns{offsets: make([]int64, n+1)}
	for t := 0; t < n; t++ {
		seg := l.Series.IntervalBandwidths(t)
		if seg == nil {
			return nil
		}
		sc.offsets[t+1] = sc.offsets[t] + int64(len(seg))
	}
	sc.bw = make([]float64, sc.offsets[n])
	for t := 0; t < n; t++ {
		dst := sc.bw[sc.offsets[t]:sc.offsets[t+1]]
		copy(dst, l.Series.IntervalBandwidths(t))
		scratch.sort(dst)
	}
	return sc
}

// prepassThresholds computes the full (link, detector-key) threshold
// matrix on the worker pool: phase (a) builds each link's sorted
// bandwidth columns, phase (b) runs every distinct detector config over
// every link's intervals. The returned map is read-only afterwards;
// missing links (no CSR index, nil series) simply fall back to inline
// detection.
func (e *MultiLinkEngine) prepassThresholds(links []MatrixLink, specs []*scheme.Spec) map[string]map[string]*thresholdColumn {
	dets := uniqueDetectors(specs)
	if len(dets) == 0 {
		return nil
	}
	// Phase (a): per-link sorted columns, one pool job per link.
	sorted := make([]*sortedColumns, len(links))
	e.runPool(len(links), func() func(int) {
		var scratch sortScratch
		return func(i int) {
			if links[i].Series == nil {
				return
			}
			sorted[i] = buildSortedColumns(links[i], &scratch)
		}
	})
	// Phase (b): one pool job per (link, detector-key); each job owns a
	// fresh detector instance and reads the shared sorted segments.
	type job struct {
		link int
		det  prepassDetector
		col  *thresholdColumn
	}
	jobs := make([]job, 0, len(links)*len(dets))
	for li := range links {
		if sorted[li] == nil {
			continue
		}
		for _, d := range dets {
			jobs = append(jobs, job{link: li, det: d})
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	e.runPool(len(jobs), func() func(int) {
		var scratch []float64
		return func(i int) {
			j := &jobs[i]
			det, err := j.det.sp.BuildDetector()
			if err != nil {
				return // unreachable: uniqueDetectors already built it once
			}
			l := links[j.link]
			sc := sorted[j.link]
			col := &thresholdColumn{theta: make([]float64, l.Series.Intervals)}
			sortedDet, _ := det.(core.SortedDetector)
			for t := 0; t < l.Series.Intervals; t++ {
				var raw float64
				var derr error
				if sortedDet != nil {
					raw, derr = sortedDet.DetectThresholdSorted(l.Series.IntervalBandwidths(t), sc.segment(t))
				} else {
					scratch = append(scratch[:0], l.Series.IntervalBandwidths(t)...)
					raw, derr = det.DetectThreshold(scratch)
				}
				col.theta[t] = raw
				if derr != nil {
					col.setErr(t, derr)
				}
			}
			jobs[i].col = col
		}
	})
	cols := make(map[string]map[string]*thresholdColumn, len(links))
	for _, j := range jobs {
		if j.col == nil {
			continue
		}
		m := cols[links[j.link].ID]
		if m == nil {
			m = make(map[string]*thresholdColumn, len(dets))
			cols[links[j.link].ID] = m
		}
		m[j.det.key] = j.col
	}
	return cols
}
