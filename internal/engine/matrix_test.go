package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/scheme"
)

func matrixSpecs() []*scheme.Spec {
	specs := []*scheme.Spec{
		scheme.MustParse("load+latent:window=4"),
		scheme.MustParse("aest+single"),
		scheme.MustParse("topk:k=25"),
	}
	for _, sp := range specs {
		sp.MinFlows = 8
	}
	return specs
}

// TestRunMatrix pins the cross-product contract: one result per (link,
// spec) cell, IDs "link/spec" in sorted order, each byte-identical to a
// sequential single-link run of the same spec, for any worker count.
func TestRunMatrix(t *testing.T) {
	links := []MatrixLink{
		{ID: "west", Series: synthSeries(7, 200, 24)},
		{ID: "east", Series: synthSeries(8, 180, 24)},
	}
	specs := matrixSpecs()

	want := make(map[string][]core.Result)
	for _, l := range links {
		for _, sp := range specs {
			id := MatrixID(l.ID, sp)
			lr := RunLink(Link{ID: id, Series: l.Series, Config: sp.Factory()})
			if lr.Err != nil {
				t.Fatalf("%s: %v", id, lr.Err)
			}
			want[id] = lr.Results
		}
	}

	for _, workers := range []int{1, 4} {
		eng := MultiLinkEngine{Workers: workers}
		got, err := eng.RunMatrix(links, specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(links)*len(specs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(links)*len(specs))
		}
		for i, lr := range got {
			if i > 0 && got[i-1].ID >= lr.ID {
				t.Fatalf("results not sorted: %q before %q", got[i-1].ID, lr.ID)
			}
			if lr.Err != nil {
				t.Fatalf("cell %s: %v", lr.ID, lr.Err)
			}
			ref, ok := want[lr.ID]
			if !ok {
				t.Fatalf("unexpected cell ID %q", lr.ID)
			}
			if !reflect.DeepEqual(lr.Results, ref) {
				t.Fatalf("workers=%d: cell %s diverges from sequential run", workers, lr.ID)
			}
		}
	}
}

// TestRunMatrixMatchesPerCell pins the emit-once execution against the
// cell-per-task reference path, cell for cell: same IDs, same order,
// byte-identical results, same error text — including a cell that fails
// mid-run (MinFlows impossibly high → detector error on interval 0)
// without disturbing its neighbours, and a worker count that forces the
// spec-group split (1 link, many workers → one group per spec).
func TestRunMatrixMatchesPerCell(t *testing.T) {
	links := []MatrixLink{
		{ID: "west", Series: synthSeries(7, 200, 24)},
		{ID: "east", Series: synthSeries(8, 180, 24)},
	}
	broken := scheme.MustParse("load+single")
	broken.MinFlows = 1 << 20
	specs := append(matrixSpecs(), broken)

	for _, workers := range []int{1, 2, 8} {
		eng := MultiLinkEngine{Workers: workers}
		got, err := eng.RunMatrix(links, specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ref, err := (&MultiLinkEngine{Workers: workers}).RunMatrixPerCell(links, specs)
		if err != nil {
			t.Fatalf("workers=%d per-cell: %v", workers, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d cells vs %d per-cell", workers, len(got), len(ref))
		}
		brokenCells, healthy := 0, 0
		for i := range ref {
			if got[i].ID != ref[i].ID {
				t.Fatalf("workers=%d cell %d: ID %q vs per-cell %q", workers, i, got[i].ID, ref[i].ID)
			}
			if fmt.Sprint(got[i].Err) != fmt.Sprint(ref[i].Err) {
				t.Fatalf("workers=%d cell %s: err %q vs per-cell %q", workers, got[i].ID, fmt.Sprint(got[i].Err), fmt.Sprint(ref[i].Err))
			}
			if !reflect.DeepEqual(got[i].Results, ref[i].Results) {
				t.Fatalf("workers=%d cell %s: results diverge from per-cell path", workers, got[i].ID)
			}
			if got[i].Err != nil {
				brokenCells++
			} else {
				healthy++
			}
		}
		if brokenCells != len(links) {
			t.Fatalf("workers=%d: %d failed cells, want %d (one per link for the broken spec)", workers, brokenCells, len(links))
		}
		if healthy != len(links)*(len(specs)-1) {
			t.Fatalf("workers=%d: %d healthy cells, want %d", workers, healthy, len(links)*(len(specs)-1))
		}
	}
}

// TestSpecGroups pins the work-splitting rule: enough links saturate
// the workers with full sharing (one group); fewer links than workers
// split the spec list, never beyond one spec per group.
func TestSpecGroups(t *testing.T) {
	cases := []struct {
		workers, links, specs, want int
	}{
		{4, 8, 5, 1}, // links saturate the pool: full sharing
		{4, 4, 5, 1},
		{4, 2, 5, 2}, // 2 links × 2 groups covers 4 workers
		{8, 1, 5, 5}, // capped at one spec per group
		{1, 1, 5, 1}, // single worker: nothing to split for
	}
	for _, c := range cases {
		eng := MultiLinkEngine{Workers: c.workers}
		if got := eng.specGroups(c.links, c.specs); got != c.want {
			t.Errorf("specGroups(workers=%d, links=%d, specs=%d) = %d, want %d",
				c.workers, c.links, c.specs, got, c.want)
		}
		groups := splitSpecs(make([]*scheme.Spec, c.specs), eng.specGroups(c.links, c.specs))
		total := 0
		for _, g := range groups {
			if len(g) == 0 {
				t.Errorf("workers=%d links=%d: empty spec group", c.workers, c.links)
			}
			total += len(g)
		}
		if total != c.specs {
			t.Errorf("workers=%d links=%d: groups cover %d specs, want %d", c.workers, c.links, total, c.specs)
		}
	}
}

// TestRunMatrixStreamingMatchesBatch is the registry equivalence
// contract at engine level: the streaming matrix over record replays of
// a series must be byte-identical to the batch matrix over the
// collected series, per cell.
func TestRunMatrixStreamingMatchesBatch(t *testing.T) {
	const intervals = 24
	recs := seriesRecords(synthSeries(9, 150, intervals))
	s := agg.NewSeries(start, 5*time.Minute, intervals)
	if _, err := agg.Collect(&sliceSource{recs: recs}, s); err != nil {
		t.Fatal(err)
	}
	specs := matrixSpecs()

	eng := MultiLinkEngine{Workers: 4}
	batch, err := eng.RunMatrix([]MatrixLink{{ID: "live", Series: s}}, specs)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := eng.RunMatrixStreaming([]MatrixStreamLink{{
		ID:       "live",
		Open:     func() (agg.RecordSource, error) { return &sliceSource{recs: recs}, nil },
		Start:    start,
		Interval: 5 * time.Minute,
	}}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != len(batch) {
		t.Fatalf("%d stream cells vs %d batch", len(stream), len(batch))
	}
	for i := range batch {
		if batch[i].Err != nil || stream[i].Err != nil {
			t.Fatalf("cell %s: batch err %v, stream err %v", batch[i].ID, batch[i].Err, stream[i].Err)
		}
		if batch[i].ID != stream[i].ID {
			t.Fatalf("cell order diverges: %q vs %q", batch[i].ID, stream[i].ID)
		}
		if !reflect.DeepEqual(batch[i].Results, stream[i].Results) {
			t.Fatalf("cell %s: streaming diverges from batch", batch[i].ID)
		}
	}
}

// TestStreamWindow pins the window-derivation rule: explicit beats
// derived; latent windows above the default stretch the accumulator;
// everything else floors at agg.DefaultStreamWindow.
func TestStreamWindow(t *testing.T) {
	cases := []struct {
		spec     string
		explicit int
		want     int
	}{
		{"load+single", 0, agg.DefaultStreamWindow},
		{"load+latent", 0, agg.DefaultStreamWindow}, // default latent window == default stream window
		{"load+latent:window=24", 0, 24},
		{"load+latent:window=4", 0, agg.DefaultStreamWindow},
		{"load+latent:window=24", 6, 6},
		{"topk:k=5", 0, agg.DefaultStreamWindow},
	}
	for _, c := range cases {
		if got := StreamWindow(scheme.MustParse(c.spec), c.explicit); got != c.want {
			t.Errorf("StreamWindow(%q, %d) = %d, want %d", c.spec, c.explicit, got, c.want)
		}
	}
}

// TestRunMatrixPipelineLevelSweep pins that specs differing only in
// pipeline-level fields (Alpha, MinFlows — outside the spec grammar)
// get distinct cell IDs and run as independent cells.
func TestRunMatrixPipelineLevelSweep(t *testing.T) {
	links := []MatrixLink{{ID: "l", Series: synthSeries(7, 200, 12)}}
	a, b := scheme.MustParse("load+latent"), scheme.MustParse("load+latent")
	a.Alpha, b.Alpha = 0.25, 0.75
	a.MinFlows, b.MinFlows = 8, 8
	got, err := (&MultiLinkEngine{}).RunMatrix(links, []*scheme.Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID == got[1].ID {
		t.Fatalf("alpha sweep cells = %+v", []string{got[0].ID, got[1].ID})
	}
	for _, lr := range got {
		if lr.Err != nil {
			t.Fatalf("cell %s: %v", lr.ID, lr.Err)
		}
	}
	// Different alphas must actually produce different smoothed
	// thresholds after the first interval.
	if got[0].Results[2].Threshold == got[1].Results[2].Threshold {
		t.Error("alpha sweep cells produced identical thresholds")
	}
}

func TestRunMatrixValidation(t *testing.T) {
	links := []MatrixLink{{ID: "l", Series: synthSeries(7, 50, 4)}}
	if _, err := (&MultiLinkEngine{}).RunMatrix(links, nil); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := (&MultiLinkEngine{}).RunMatrix(links, []*scheme.Spec{nil}); err == nil {
		t.Error("nil spec accepted")
	}
	// Duplicate specs collide on cell IDs and must be rejected
	// structurally, not raced.
	dup := []*scheme.Spec{scheme.MustParse("load+single"), scheme.MustParse("load+single")}
	_, err := (&MultiLinkEngine{}).RunMatrix(links, dup)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate specs: err = %v, want duplicate-ID error", err)
	}
	slinks := []MatrixStreamLink{{ID: "l", Start: start, Interval: time.Minute}}
	got, err := (&MultiLinkEngine{}).RunMatrixStreaming(slinks, []*scheme.Spec{scheme.MustParse("load+single")})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err == nil || !strings.Contains(got[0].Err.Error(), "nil Open") {
		t.Errorf("nil Open: cell err = %v", got[0].Err)
	}
}
