package engine

import (
	"fmt"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/scheme"
)

// registrySpecs builds the full detector×classifier cross-product from
// the registry's runnable examples — every registered component, with
// required parameters filled in.
func registrySpecs(t testing.TB) []*scheme.Spec {
	var specs []*scheme.Spec
	for _, det := range scheme.DetectorExamples() {
		for _, cls := range scheme.ClassifierExamples() {
			sp, err := scheme.Parse(det + "+" + cls)
			if err != nil {
				t.Fatalf("registry example %q+%q does not parse: %v", det, cls, err)
			}
			specs = append(specs, sp)
		}
	}
	return specs
}

// TestRunMatrixPrepassEquivalence is the registry-wide cached-vs-inline
// pin: every detector×classifier spec in the registry runs over
// randomized multi-link series through both the prepassed RunMatrix and
// the InlineDetection path, across worker counts, asserting
// byte-identical Results. Run under -race this also exercises the
// prepass's pool handoffs (sorted columns and threshold columns built
// on workers, consumed by classify workers).
func TestRunMatrixPrepassEquivalence(t *testing.T) {
	links := []MatrixLink{
		{ID: "west", Series: synthSeries(3, 400, 30)},
		{ID: "east", Series: synthSeries(4, 250, 30)},
		{ID: "south", Series: synthSeries(5, 60, 30)},
	}
	specs := registrySpecs(t)
	inline := &MultiLinkEngine{Workers: 1, InlineDetection: true}
	want, err := inline.RunMatrix(links, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		e := &MultiLinkEngine{Workers: workers}
		got, err := e.RunMatrix(links, specs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("workers=%d: result %d is %q, want %q", workers, i, got[i].ID, want[i].ID)
			}
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d: cell %q error mismatch: %v vs %v", workers, got[i].ID, got[i].Err, want[i].Err)
			}
			if !reflect.DeepEqual(got[i].Results, want[i].Results) {
				t.Fatalf("workers=%d: cell %q results diverged between prepass and inline detection", workers, got[i].ID)
			}
		}
	}
}

// TestPrepassThresholdCacheKeys is the cache-key regression test: specs
// sharing a detector config share one threshold column, and two
// detectors differing in a single parameter must not.
func TestPrepassThresholdCacheKeys(t *testing.T) {
	links := []MatrixLink{{ID: "link", Series: synthSeries(7, 300, 20)}}
	links[0].Series.Seal()
	specs := []*scheme.Spec{
		scheme.MustParse("load:beta=0.8+single"),
		scheme.MustParse("load:beta=0.8+latent"), // same detector, different classifier
		scheme.MustParse("load:beta=0.6+single"), // one param differs
		scheme.MustParse("aest+single"),
		scheme.MustParse("aest:fallback=0.9+single"), // one param differs
	}
	e := &MultiLinkEngine{Workers: 2}
	cols := e.prepassThresholds(links, specs)
	m := cols["link"]
	if m == nil {
		t.Fatal("no threshold columns for the link")
	}
	if len(m) != 4 {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		t.Fatalf("expected 4 distinct detector keys, got %d: %v", len(m), keys)
	}
	if specs[0].DetectorKey() != specs[1].DetectorKey() {
		t.Fatalf("same detector config rendered different keys: %q vs %q", specs[0].DetectorKey(), specs[1].DetectorKey())
	}
	if specs[0].DetectorKey() == specs[2].DetectorKey() {
		t.Fatalf("beta=0.8 and beta=0.6 share key %q", specs[0].DetectorKey())
	}
	if specs[3].DetectorKey() == specs[4].DetectorKey() {
		t.Fatalf("default and explicit fallback share key %q", specs[3].DetectorKey())
	}
	// The shared column must really differ between the two betas.
	c8, c6 := m[specs[0].DetectorKey()], m[specs[2].DetectorKey()]
	if c8 == nil || c6 == nil {
		t.Fatal("missing columns for load betas")
	}
	if reflect.DeepEqual(c8.theta, c6.theta) {
		t.Fatal("beta=0.8 and beta=0.6 produced identical threshold columns — cache key not separating configs")
	}
}

// TestPrepassCoversDetectionErrors: a column records per-interval
// detection errors, and the consuming cell fails with the identical
// wrapped error text the inline path produces.
func TestPrepassCoversDetectionErrors(t *testing.T) {
	// Interval 3 is left empty: constant-load errors on the empty
	// interval, which only the forced MinFlows below surfaces.
	s := agg.NewSeries(start, 5*time.Minute, 6)
	for f := 0; f < 40; f++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.9.%d.0/24", f))
		for t := 0; t < 6; t++ {
			if t == 3 {
				continue
			}
			s.SetBandwidth(p, t, 1e4*float64(f+1))
		}
	}
	links := []MatrixLink{{ID: "link", Series: s}}
	specs := []*scheme.Spec{{
		Detector:   scheme.Component{Name: "load"},
		Classifier: scheme.Component{Name: "single"},
		MinFlows:   -1, // force detection even on empty intervals
	}}
	inline := &MultiLinkEngine{Workers: 1, InlineDetection: true}
	want, err := inline.RunMatrix(links, specs)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := (&MultiLinkEngine{Workers: 1}).RunMatrix(links, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		we, ge := fmt.Sprint(want[i].Err), fmt.Sprint(cached[i].Err)
		if we != ge {
			t.Fatalf("cell %q: cached error %q != inline error %q", want[i].ID, ge, we)
		}
		if !reflect.DeepEqual(cached[i].Results, want[i].Results) {
			t.Fatalf("cell %q: results diverged", want[i].ID)
		}
	}
}
