package engine

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// churnConfig builds a pipeline whose classifier evicts aggressively,
// so flow-table releases, quarantined IDs, resurrections and recycling
// all happen inside a short trace.
func churnConfig() (core.Config, error) {
	det, err := core.NewConstantLoadDetector(0.8)
	if err != nil {
		return core.Config{}, err
	}
	lh, err := core.NewLatentHeatClassifier(2)
	if err != nil {
		return core.Config{}, err
	}
	lh.EvictAfter = 2
	return core.Config{Detector: det, Alpha: 0.5, Classifier: lh, MinFlows: 2}, nil
}

// churnRecords synthesises a trace exercising the flow-identity
// lifecycle: churners idle just long enough to be evicted and return
// within the ID quarantine (resurrection), sleepers leave for longer
// than the quarantine (their IDs are recycled), and late arrivals
// intern after IDs have been freed (recycling under live traffic).
func churnRecords(seed int64, intervals int, iv time.Duration) []agg.Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []agg.Record
	active := func(f, t int) bool {
		switch {
		case f < 4: // anchors: always on, keep MinFlows satisfied
			return true
		case f < 20: // churners: short idle phases (evict + resurrect)
			return (t+f)%9 >= 3
		case f < 28: // sleepers: one long absence > quarantine
			return t < 5 || t > 5+20+f%7
		default: // late arrivals: first seen after IDs were freed
			return t > 30+(f%5)
		}
	}
	for t := 0; t < intervals; t++ {
		for f := 0; f < 36; f++ {
			if !active(f, t) {
				continue
			}
			p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", f/256, f%256))
			off := time.Duration(rng.Int63n(int64(iv)))
			recs = append(recs, agg.Record{Prefix: p, Time: start.Add(time.Duration(t)*iv + off), Bits: 1e5 * (1 + rng.Float64())})
		}
	}
	return recs
}

// TestStreamEvictionRecyclingMatchesBatch pins the flow-identity
// contract end to end: a streaming run whose classifier keeps evicting
// flows — releasing dense IDs into the shared table's quarantine, with
// later traffic resurrecting some and recycling others — must stay
// byte-identical to the batch run over a series collected from the
// same records (whose pinned table never recycles). Any ID aliased or
// dropped too early shows up as a diverging elephant set or load.
func TestStreamEvictionRecyclingMatchesBatch(t *testing.T) {
	iv := time.Minute
	const intervals = 64
	recycledSomewhere := false
	for seed := int64(0); seed < 5; seed++ {
		recs := churnRecords(seed, intervals, iv)

		s := agg.NewSeries(start, iv, intervals)
		if _, err := agg.Collect(&sliceSource{recs: recs}, s); err != nil {
			t.Fatal(err)
		}
		want := RunLink(Link{ID: "l", Series: s, Config: churnConfig})
		if want.Err != nil {
			t.Fatal(want.Err)
		}

		for _, window := range []int{1, 3} {
			// Mirror RunStreamLink's wiring by hand so the shared table
			// stays inspectable after the run.
			cfg, err := churnConfig()
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := core.NewPipeline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
				Start: start, Interval: iv, Window: window, Table: pipe.Table(),
			})
			if err != nil {
				t.Fatal(err)
			}
			var results []core.Result
			idOwners := make(map[uint32]map[netip.Prefix]bool)
			acc.Emit = func(tt int, snap *core.FlowSnapshot) error {
				// Every emitted row carries a dense ID; record which
				// prefixes each ID has represented over the run.
				if snap.Len() > 0 && !snap.HasIDs() {
					t.Fatalf("seed %d window %d interval %d: emitted snapshot lacks IDs", seed, window, tt)
				}
				for i := 0; i < snap.Len(); i++ {
					owners := idOwners[snap.ID(i)]
					if owners == nil {
						owners = make(map[netip.Prefix]bool)
						idOwners[snap.ID(i)] = owners
					}
					owners[snap.Key(i)] = true
				}
				res, err := pipe.StepSnapshot(tt, snap)
				if err != nil {
					return err
				}
				results = append(results, res)
				return nil
			}
			if err := agg.Stream(&sliceSource{recs: recs}, acc); err != nil {
				t.Fatalf("seed %d window %d: %v", seed, window, err)
			}
			if len(results) != len(want.Results) {
				t.Fatalf("seed %d window %d: %d intervals, batch %d", seed, window, len(results), len(want.Results))
			}
			for i := range want.Results {
				g, w := results[i], want.Results[i]
				if g.RawThreshold != w.RawThreshold || g.Threshold != w.Threshold ||
					g.ElephantLoad != w.ElephantLoad || g.TotalLoad != w.TotalLoad ||
					g.ActiveFlows != w.ActiveFlows || !g.Elephants.Equal(w.Elephants) {
					t.Fatalf("seed %d window %d interval %d: stream result diverges from batch\n got %+v\nwant %+v",
						seed, window, i, g, w)
				}
			}
			// An ID that represented two different prefixes over the run
			// proves a freed ID was re-bound mid-stream — the recycling
			// path this test exists to cover (and the equivalence above
			// proves the rebinding never leaked bits across identities).
			for _, owners := range idOwners {
				if len(owners) > 1 {
					recycledSomewhere = true
				}
			}
		}
	}
	if !recycledSomewhere {
		t.Fatal("trace never recycled an ID: the scenario no longer covers the free-list path")
	}
}
