// Package engine runs the paper's per-link classification pipeline over
// many monitored links concurrently — the backbone setting the paper
// implies (one classifier instance per link of a POP) scaled onto a
// worker pool. Each link is an independent unit of work: a worker builds
// the link's private pipeline from a config factory, streams the link's
// intervals through it as reused columnar snapshots, and deposits the
// per-link results into a pre-sized slot. Pipelines never share mutable
// state (the config factory hands each link fresh detector/classifier
// instances), and sharing one fully aggregated agg.Series between links
// — one link classified under several schemes — is safe, so an N-link
// engine run is byte-identical to N sequential runs regardless of
// worker count or scheduling; the merged output is ordered
// deterministically by link ID.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/agg"
	"repro/internal/core"
)

// Link is one monitored link: an identifier, its bandwidth series, and a
// factory producing a fresh pipeline Config per run. The factory is
// required because classifiers are stateful — two links must never share
// a LatentHeatClassifier instance.
type Link struct {
	// ID names the link in the merged output. Must be unique and
	// non-empty within one Run.
	ID string
	// Series is the link's flow-by-interval bandwidth matrix.
	Series *agg.Series
	// Config returns a fresh pipeline configuration (detector +
	// classifier instances) for this link. Called once per Run, from
	// the worker goroutine that processes the link.
	Config func() (core.Config, error)
}

// LinkResult is one link's complete classification run.
type LinkResult struct {
	// ID echoes the link's identifier.
	ID string
	// Results holds one entry per measurement interval; nil when Err is
	// set.
	Results []core.Result
	// Err is the first error the link's pipeline hit, nil on success. A
	// failing link never aborts the other links' runs.
	Err error
}

// MultiLinkEngine classifies a set of links concurrently on a worker
// pool.
type MultiLinkEngine struct {
	// Workers bounds the concurrency; 0 selects GOMAXPROCS. The worker
	// count never affects results, only wall-clock time.
	Workers int
}

// Run classifies every link and returns one LinkResult per link, sorted
// by link ID. Per-link failures are reported in LinkResult.Err;
// Run itself only fails on structurally invalid input (duplicate or
// empty link IDs).
func (e *MultiLinkEngine) Run(links []Link) ([]LinkResult, error) {
	if len(links) == 0 {
		return nil, nil
	}
	seen := make(map[string]bool, len(links))
	for _, l := range links {
		if l.ID == "" {
			return nil, fmt.Errorf("engine: link with empty ID")
		}
		if seen[l.ID] {
			return nil, fmt.Errorf("engine: duplicate link ID %q", l.ID)
		}
		seen[l.ID] = true
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(links) {
		workers = len(links)
	}

	out := make([]LinkResult, len(links))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable snapshot per worker: reused across every
			// interval of every link the worker processes.
			snap := core.NewFlowSnapshot(0)
			for i := range jobs {
				out[i] = runLink(links[i], snap)
			}
		}()
	}
	for i := range links {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RunLink classifies a single link sequentially on the calling
// goroutine — the reference the engine's concurrent output is defined
// (and tested) against.
func RunLink(l Link) LinkResult {
	return runLink(l, core.NewFlowSnapshot(0))
}

func runLink(l Link, snap *core.FlowSnapshot) LinkResult {
	lr := LinkResult{ID: l.ID}
	if l.Series == nil {
		lr.Err = fmt.Errorf("engine: link %q: nil series", l.ID)
		return lr
	}
	if l.Config == nil {
		lr.Err = fmt.Errorf("engine: link %q: nil config factory", l.ID)
		return lr
	}
	cfg, err := l.Config()
	if err != nil {
		lr.Err = fmt.Errorf("engine: link %q: %w", l.ID, err)
		return lr
	}
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		lr.Err = fmt.Errorf("engine: link %q: %w", l.ID, err)
		return lr
	}
	results := make([]core.Result, 0, l.Series.Intervals)
	for t := 0; t < l.Series.Intervals; t++ {
		snap = l.Series.Snapshot(t, snap)
		res, err := pipe.Step(snap)
		if err != nil {
			lr.Err = fmt.Errorf("engine: link %q: %w", l.ID, err)
			return lr
		}
		results = append(results, res)
	}
	lr.Results = results
	return lr
}
