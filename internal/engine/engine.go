// Package engine runs the paper's per-link classification pipeline over
// many monitored links concurrently — the backbone setting the paper
// implies (one classifier instance per link of a POP) scaled onto a
// worker pool. Each link is an independent unit of work: a worker builds
// the link's private pipeline from a config factory, streams the link's
// intervals through it as reused columnar snapshots, and deposits the
// per-link results into a pre-sized slot. Pipelines never share mutable
// state (the config factory hands each link fresh detector/classifier
// instances), and sharing one fully aggregated agg.Series between links
// — one link classified under several schemes — is safe, so an N-link
// engine run is byte-identical to N sequential runs regardless of
// worker count or scheduling; the merged output is ordered
// deterministically by link ID.
//
// The engine has two ingestion modes sharing the pool and the merge
// contract: Run classifies pre-aggregated batch series, RunStreaming
// drives each link live from an agg.RecordSource through a
// bounded-memory StreamAccumulator — memory per link is the
// accumulator's window, not the trace length, and the classifications
// are byte-identical to the batch path on the same records.
//
// Parallelism also reaches inside a single link. A LivePipeline runs
// as two stages — accumulate and classify — joined by a bounded channel
// of double-buffered sealed snapshots, so interval t+1 accumulates
// while interval t classifies; and the accumulate stage itself can
// shard a link's flow columns across cores (StreamLink.Shards /
// LiveLink.Shards), with sealed intervals reassembled by a k-way merge
// that preserves bit-for-bit equality with the serial path.
//
// RunMatrix fans a set of scheme specs over a set of links. Its unit of
// work is the (link, spec-group) task, not the cell: the engine seals
// every series up front (building the interval-major snapshot index)
// and emits each interval once per task, fanning the one snapshot — and
// its cached sorted bandwidth column — into every spec pipeline in the
// group. When links outnumber workers the whole spec list shares one
// emission; with fewer links the spec list splits into enough groups to
// occupy the pool. Output is byte-identical to the cell-per-task
// reference path, kept as RunMatrixPerCell, including per-cell error
// isolation.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// Link is one monitored link: an identifier, its bandwidth series, and a
// factory producing a fresh pipeline Config per run. The factory is
// required because classifiers are stateful — two links must never share
// a LatentHeatClassifier instance.
type Link struct {
	// ID names the link in the merged output. Must be unique and
	// non-empty within one Run.
	ID string
	// Series is the link's flow-by-interval bandwidth matrix.
	Series *agg.Series
	// Config returns a fresh pipeline configuration (detector +
	// classifier instances) for this link. Called once per Run, from
	// the worker goroutine that processes the link.
	Config func() (core.Config, error)
}

// StreamLink is one monitored link fed live: records from Source are
// windowed into intervals by a private StreamAccumulator and classified
// as each interval closes. The per-link memory bound is the window, not
// the trace length.
type StreamLink struct {
	// ID names the link in the merged output. Must be unique and
	// non-empty within one RunStreaming.
	ID string
	// Source yields the link's records. Consumed exactly once, from the
	// worker goroutine that processes the link.
	Source agg.RecordSource
	// Start is the left edge of interval 0; the zero value aligns to
	// the first record.
	Start time.Time
	// Interval is the measurement interval Δ. Required.
	Interval time.Duration
	// Window is the accumulator's open-interval count (0 selects
	// agg.DefaultStreamWindow). Size it to cover the source's
	// out-of-orderness — e.g. a NetFlow active timeout.
	Window int
	// Shards selects sharded accumulation (agg.StreamConfig.Shards):
	// values above 1 split the link's flow columns across that many
	// concurrent shard workers, with results bit-identical to the
	// serial path. 0 and 1 accumulate serially.
	Shards int
	// Config returns a fresh pipeline configuration for this link.
	Config func() (core.Config, error)
}

// LinkResult is one link's complete classification run.
type LinkResult struct {
	// ID echoes the link's identifier.
	ID string
	// Results holds one entry per measurement interval; nil when Err is
	// set.
	Results []core.Result
	// Err is the first error the link's pipeline hit, nil on success. A
	// failing link never aborts the other links' runs.
	Err error
}

// MultiLinkEngine classifies a set of links concurrently on a worker
// pool.
type MultiLinkEngine struct {
	// Workers bounds the concurrency; 0 selects GOMAXPROCS. The worker
	// count never affects results, only wall-clock time.
	Workers int
	// InlineDetection disables RunMatrix's detector prepass and
	// threshold cache, forcing every cell back to per-interval inline
	// detection. Results are byte-identical either way — the
	// equivalence suite pins it — so the switch exists only for A/B
	// benchmarking and as an escape hatch. Run, RunStreaming and the
	// per-cell/streaming matrix paths always detect inline.
	InlineDetection bool
}

// validateIDs rejects empty and duplicate link identifiers.
func validateIDs(ids []string) error {
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if id == "" {
			return fmt.Errorf("engine: link with empty ID")
		}
		if seen[id] {
			return fmt.Errorf("engine: duplicate link ID %q", id)
		}
		seen[id] = true
	}
	return nil
}

// runPool fans n jobs over the engine's workers. newWorker runs once
// per worker goroutine and returns the job body, letting each worker
// own reusable per-worker state (e.g. a snapshot buffer).
func (e *MultiLinkEngine) runPool(n int, newWorker func() func(i int)) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newWorker()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runMerged is the orchestration shared by both ingestion modes:
// validate IDs, fan the links over the pool, merge sorted by link ID.
func (e *MultiLinkEngine) runMerged(n int, id func(int) string, newWorker func() func(int) LinkResult) ([]LinkResult, error) {
	if n == 0 {
		return nil, nil
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = id(i)
	}
	if err := validateIDs(ids); err != nil {
		return nil, err
	}
	out := make([]LinkResult, n)
	e.runPool(n, func() func(int) {
		run := newWorker()
		return func(i int) { out[i] = run(i) }
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Run classifies every link and returns one LinkResult per link, sorted
// by link ID. Per-link failures are reported in LinkResult.Err;
// Run itself only fails on structurally invalid input (duplicate or
// empty link IDs).
func (e *MultiLinkEngine) Run(links []Link) ([]LinkResult, error) {
	return e.runMerged(len(links),
		func(i int) string { return links[i].ID },
		func() func(int) LinkResult {
			// One reusable snapshot per worker: reused across every
			// interval of every link the worker processes.
			snap := core.NewFlowSnapshot(0)
			return func(i int) LinkResult { return runLink(links[i], snap) }
		})
}

// RunStreaming classifies every stream link live and returns one
// LinkResult per link, sorted by link ID — the streaming twin of Run.
// Each worker drives its link's records through a private accumulator
// into a private pipeline, so per-link memory stays bounded by the
// window while the merge stays deterministic: RunStreaming on sources
// replaying a batch run's records is byte-identical to Run on the
// corresponding series.
func (e *MultiLinkEngine) RunStreaming(links []StreamLink) ([]LinkResult, error) {
	return e.runMerged(len(links),
		func(i int) string { return links[i].ID },
		func() func(int) LinkResult {
			return func(i int) LinkResult { return RunStreamLink(links[i]) }
		})
}

// RunLink classifies a single link sequentially on the calling
// goroutine — the reference the engine's concurrent output is defined
// (and tested) against.
func RunLink(l Link) LinkResult {
	return runLink(l, core.NewFlowSnapshot(0))
}

func runLink(l Link, snap *core.FlowSnapshot) LinkResult {
	lr := LinkResult{ID: l.ID}
	if l.Series == nil {
		lr.Err = fmt.Errorf("engine: link %q: nil series", l.ID)
		return lr
	}
	// Seal the series so per-interval emission runs off the
	// interval-major index; idempotent and safe when several links share
	// one series.
	l.Series.Seal()
	pipe, err := newPipeline(l.ID, l.Config)
	if err != nil {
		lr.Err = err
		return lr
	}
	// Intern the link's flows into the pipeline's identity table once;
	// every interval then emits a dense-ID snapshot without hashing a
	// single prefix on the classify path.
	rowIDs := l.Series.InternRows(pipe.Table(), nil)
	results := make([]core.Result, 0, l.Series.Intervals)
	for t := 0; t < l.Series.Intervals; t++ {
		snap = l.Series.SnapshotIDs(t, snap, pipe.Table(), rowIDs)
		// The index-driven batch loop and the streaming emit hook share
		// the same pipeline entry point.
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			lr.Err = fmt.Errorf("engine: link %q: %w", l.ID, err)
			return lr
		}
		results = append(results, res)
	}
	lr.Results = results
	return lr
}

// RunStreamLink classifies a single stream link sequentially on the
// calling goroutine — the reference RunStreaming's concurrent output is
// defined (and tested) against.
func RunStreamLink(l StreamLink) LinkResult {
	lr := LinkResult{ID: l.ID}
	if l.Source == nil {
		lr.Err = fmt.Errorf("engine: link %q: nil record source", l.ID)
		return lr
	}
	pipe, err := newPipeline(l.ID, l.Config)
	if err != nil {
		lr.Err = err
		return lr
	}
	cfg := agg.StreamConfig{
		Start:    l.Start,
		Interval: l.Interval,
		Window:   l.Window,
	}
	if l.Shards > 1 {
		// Sharded accumulation interns into per-shard private tables;
		// emitted snapshots carry no IDs and the classify path
		// re-interns via FillIDs.
		cfg.Shards = l.Shards
	} else {
		// Share the pipeline's flow identity table: emitted snapshots
		// carry dense IDs, so the classifier never hashes a prefix.
		cfg.Table = pipe.Table()
	}
	acc, err := agg.NewStreamAccumulator(cfg)
	if err != nil {
		lr.Err = fmt.Errorf("engine: link %q: %w", l.ID, err)
		return lr
	}
	defer acc.Close()
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			return err
		}
		lr.Results = append(lr.Results, res)
		return nil
	}
	if err := agg.Stream(l.Source, acc); err != nil {
		lr.Results = nil
		lr.Err = fmt.Errorf("engine: link %q: %w", l.ID, err)
	}
	return lr
}

// newPipeline builds a link's private pipeline from its config factory.
func newPipeline(id string, factory func() (core.Config, error)) (*core.Pipeline, error) {
	return newPipelineThresholds(id, factory, nil)
}

// newPipelineThresholds is newPipeline with an optional precomputed
// threshold column attached (the matrix prepass); src == nil keeps
// inline detection.
func newPipelineThresholds(id string, factory func() (core.Config, error), src core.ThresholdSource) (*core.Pipeline, error) {
	if factory == nil {
		return nil, fmt.Errorf("engine: link %q: nil config factory", id)
	}
	cfg, err := factory()
	if err != nil {
		return nil, fmt.Errorf("engine: link %q: %w", id, err)
	}
	cfg.Thresholds = src
	pipe, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: link %q: %w", id, err)
	}
	return pipe, nil
}
