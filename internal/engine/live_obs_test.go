package engine

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

type constDetector struct{ theta float64 }

func (d constDetector) DetectThreshold([]float64) (float64, error) { return d.theta, nil }
func (d constDetector) Name() string                               { return "const" }

// TestLivePipelineWatermarkLag: the accumulate stage publishes the
// watermark lag at every seal, readable from any goroutine; a result
// hook observes the lag its interval was sealed under via LastSealLag
// (the classify stage runs behind the accumulate stage, so the fresh
// WatermarkLag may already reflect later records). Run with -race:
// both readings cross the stage boundary like a scrape does.
func TestLivePipelineWatermarkLag(t *testing.T) {
	const iv = time.Minute
	p := netip.MustParsePrefix("10.0.0.0/24")
	var lp *LivePipeline
	var lags []time.Duration
	var err error
	lp, err = NewLivePipeline(LiveLink{
		ID:       "lag",
		Start:    start,
		Interval: iv,
		Window:   2,
		Config: func() (core.Config, error) {
			return core.Config{
				Detector:   constDetector{100},
				Alpha:      0.5,
				Classifier: core.SingleFeatureClassifier{},
				MinFlows:   1,
			}, nil
		},
		OnResult: func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error {
			lags = append(lags, lp.LastSealLag())
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := lp.WatermarkLag(); got != 0 {
		t.Errorf("fresh link lag = %v", got)
	}
	// Interval 0 gets bits 30s in; the next record lands in interval 2,
	// sealing interval 0 with the watermark 1m10s past its right edge.
	if err := lp.Send(agg.Record{Prefix: p, Time: start.Add(30 * time.Second), Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	if err := lp.Send(agg.Record{Prefix: p, Time: start.Add(2*iv + 10*time.Second), Bits: 1e4}); err != nil {
		t.Fatal(err)
	}
	// Close flushes intervals 1 and 2: at interval 1's seal the edge is
	// 10s behind the watermark; at interval 2's it has caught up.
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{iv + 10*time.Second, 10 * time.Second, 0}
	if len(lags) != len(want) {
		t.Fatalf("sealed %d intervals, want %d (lags %v)", len(lags), len(want), lags)
	}
	for i := range want {
		if lags[i] != want[i] {
			t.Errorf("interval %d sealed with lag %v, want %v", i, lags[i], want[i])
		}
	}
	if got := lp.WatermarkLag(); got != 0 {
		t.Errorf("post-flush lag = %v, want 0", got)
	}
}
