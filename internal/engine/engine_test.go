package engine

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

var start = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)

// synthSeries builds a deterministic heavy-tailed series: a few
// persistent heavies over a lognormal mouse population, all driven by
// seed.
func synthSeries(seed int64, flows, intervals int) *agg.Series {
	rng := rand.New(rand.NewSource(seed))
	s := agg.NewSeries(start, 5*time.Minute, intervals)
	for f := 0; f < flows; f++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", f/256, f%256))
		heavy := f < flows/20
		for t := 0; t < intervals; t++ {
			bw := 1e3 * math.Exp(rng.NormFloat64())
			if heavy {
				bw = 1e5 * math.Exp(rng.NormFloat64()*0.3)
			}
			if rng.Float64() < 0.1 {
				continue // idle interval
			}
			s.SetBandwidth(p, t, bw)
		}
	}
	return s
}

// schemeConfig returns a fresh paper-scheme pipeline config (constant
// load + latent heat), independent state per call.
func schemeConfig() (core.Config, error) {
	det, err := core.NewConstantLoadDetector(0.8)
	if err != nil {
		return core.Config{}, err
	}
	lh, err := core.NewLatentHeatClassifier(6)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{Detector: det, Alpha: 0.5, Classifier: lh, MinFlows: 4}, nil
}

func testLinks(n int) []Link {
	links := make([]Link, n)
	for i := range links {
		links[i] = Link{
			ID:     fmt.Sprintf("link-%02d", i),
			Series: synthSeries(int64(100+i), 200, 24),
			Config: schemeConfig,
		}
	}
	return links
}

// TestEngineMatchesSequential is the determinism contract: an N-link
// concurrent engine run must produce results identical to N sequential
// Pipeline runs with the same seeds, for any worker count. Run with
// -race to also prove the workers share no mutable state.
func TestEngineMatchesSequential(t *testing.T) {
	const n = 9
	// Reference: sequential pipelines, one per link, directly on core.
	want := make(map[string][]core.Result, n)
	for _, l := range testLinks(n) {
		cfg, err := l.Config()
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := core.NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var snap *core.FlowSnapshot
		results := make([]core.Result, 0, l.Series.Intervals)
		for tt := 0; tt < l.Series.Intervals; tt++ {
			snap = l.Series.Snapshot(tt, snap)
			res, err := pipe.Step(snap)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		want[l.ID] = results
	}

	for _, workers := range []int{1, 2, 4, 16} {
		eng := MultiLinkEngine{Workers: workers}
		got, err := eng.Run(testLinks(n))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, lr := range got {
			if lr.Err != nil {
				t.Fatalf("workers=%d link %s: %v", workers, lr.ID, lr.Err)
			}
			if i > 0 && got[i-1].ID >= lr.ID {
				t.Errorf("workers=%d: output not sorted by link ID at %d", workers, i)
			}
			if !reflect.DeepEqual(lr.Results, want[lr.ID]) {
				t.Errorf("workers=%d link %s: concurrent results differ from sequential run", workers, lr.ID)
			}
		}
	}
}

// TestEngineSharedSeries: two links may wrap the same series under
// different schemes (exactly what RunFigure1 does); concurrent workers
// must snapshot it race-free and still match sequential runs. Run with
// -race.
func TestEngineSharedSeries(t *testing.T) {
	shared := synthSeries(42, 300, 24)
	mkLinks := func() []Link {
		sf := func() (core.Config, error) {
			det, err := core.NewConstantLoadDetector(0.8)
			if err != nil {
				return core.Config{}, err
			}
			return core.Config{Detector: det, Alpha: 0.5, Classifier: core.SingleFeatureClassifier{}, MinFlows: 4}, nil
		}
		return []Link{
			{ID: "shared/latent", Series: shared, Config: schemeConfig},
			{ID: "shared/single", Series: shared, Config: sf},
		}
	}
	want := map[string][]core.Result{}
	for _, l := range mkLinks() {
		lr := RunLink(l)
		if lr.Err != nil {
			t.Fatal(lr.Err)
		}
		want[l.ID] = lr.Results
	}
	eng := MultiLinkEngine{Workers: 2}
	got, err := eng.Run(mkLinks())
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range got {
		if lr.Err != nil {
			t.Fatal(lr.Err)
		}
		if !reflect.DeepEqual(lr.Results, want[lr.ID]) {
			t.Errorf("link %s: shared-series concurrent run differs from sequential", lr.ID)
		}
	}
}

// TestEngineRunLinkAgreesWithRun: the exported sequential entry point is
// the same computation the pool performs.
func TestEngineRunLinkAgreesWithRun(t *testing.T) {
	links := testLinks(3)
	eng := MultiLinkEngine{Workers: 3}
	got, err := eng.Run(links)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range links {
		seq := RunLink(l)
		if seq.Err != nil {
			t.Fatal(seq.Err)
		}
		if !reflect.DeepEqual(seq.Results, got[i].Results) {
			t.Errorf("link %s: RunLink differs from engine run", l.ID)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	eng := MultiLinkEngine{}
	if out, err := eng.Run(nil); err != nil || out != nil {
		t.Errorf("empty input: %v, %v", out, err)
	}
	links := testLinks(2)
	links[1].ID = links[0].ID
	if _, err := eng.Run(links); err == nil {
		t.Error("duplicate IDs accepted")
	}
	links[1].ID = ""
	if _, err := eng.Run(links); err == nil {
		t.Error("empty ID accepted")
	}
}

// TestEnginePerLinkErrorsIsolated: one broken link must not abort the
// other links' runs.
func TestEnginePerLinkErrorsIsolated(t *testing.T) {
	boom := errors.New("boom")
	links := testLinks(3)
	links[1].Config = func() (core.Config, error) { return core.Config{}, boom }
	links[2].Series = nil
	eng := MultiLinkEngine{Workers: 2}
	out, err := eng.Run(links)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[0].Results == nil {
		t.Errorf("healthy link failed: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, boom) {
		t.Errorf("link-1 err = %v, want wrapped boom", out[1].Err)
	}
	if out[2].Err == nil {
		t.Error("nil-series link reported no error")
	}
}

// sliceSource replays a fixed record sequence; one use per source.
type sliceSource struct {
	recs []agg.Record
	i    int
}

func (s *sliceSource) Next() (agg.Record, error) {
	if s.i >= len(s.recs) {
		return agg.Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// seriesRecords flattens a series into interval-ordered point records —
// the record stream a live feed of the same traffic would deliver.
func seriesRecords(s *agg.Series) []agg.Record {
	var recs []agg.Record
	for t := 0; t < s.Intervals; t++ {
		at := s.IntervalTime(t)
		for _, p := range s.Flows() {
			if bw := s.Bandwidth(p, t); bw > 0 {
				recs = append(recs, agg.Record{Prefix: p, Time: at, Bits: bw * s.Interval.Seconds()})
			}
		}
	}
	return recs
}

// TestRunStreamingMatchesBatch is the streaming determinism contract:
// driving N links live from record sources (bounded-memory
// accumulators, push-style pipeline) must produce results
// byte-identical to a batch Run over series collected from the very
// same records, for any worker count. Run with -race.
func TestRunStreamingMatchesBatch(t *testing.T) {
	const n = 6
	records := make([][]agg.Record, n)
	batch := make([]Link, n)
	for i := range records {
		records[i] = seriesRecords(synthSeries(int64(200+i), 150, 24))
		s := agg.NewSeries(start, 5*time.Minute, 24)
		if _, err := agg.Collect(&sliceSource{recs: records[i]}, s); err != nil {
			t.Fatal(err)
		}
		batch[i] = Link{ID: fmt.Sprintf("link-%02d", i), Series: s, Config: schemeConfig}
	}
	want, err := (&MultiLinkEngine{}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}

	mkStream := func() []StreamLink {
		links := make([]StreamLink, n)
		for i := range links {
			links[i] = StreamLink{
				ID:       fmt.Sprintf("link-%02d", i),
				Source:   &sliceSource{recs: records[i]},
				Start:    start,
				Interval: 5 * time.Minute,
				Window:   4,
				Config:   schemeConfig,
			}
		}
		return links
	}

	for _, workers := range []int{1, 3, 8} {
		eng := MultiLinkEngine{Workers: workers}
		got, err := eng.RunStreaming(mkStream())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, lr := range got {
			if lr.Err != nil {
				t.Fatalf("workers=%d link %s: %v", workers, lr.ID, lr.Err)
			}
			if lr.ID != want[i].ID {
				t.Fatalf("workers=%d: merge order %q at %d, want %q", workers, lr.ID, i, want[i].ID)
			}
			if !reflect.DeepEqual(lr.Results, want[i].Results) {
				t.Errorf("workers=%d link %s: streaming results differ from batch run", workers, lr.ID)
			}
		}
	}

	// The exported sequential entry point is the same computation.
	seq := RunStreamLink(mkStream()[2])
	if seq.Err != nil {
		t.Fatal(seq.Err)
	}
	if !reflect.DeepEqual(seq.Results, want[2].Results) {
		t.Error("RunStreamLink differs from batch run")
	}
}

// TestRunStreamingValidation mirrors the batch validation contract.
func TestRunStreamingValidation(t *testing.T) {
	eng := MultiLinkEngine{}
	if out, err := eng.RunStreaming(nil); err != nil || out != nil {
		t.Errorf("empty input: %v, %v", out, err)
	}
	mk := func(id string) StreamLink {
		return StreamLink{ID: id, Source: &sliceSource{}, Interval: time.Minute, Config: schemeConfig}
	}
	if _, err := eng.RunStreaming([]StreamLink{mk("a"), mk("a")}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := eng.RunStreaming([]StreamLink{mk("")}); err == nil {
		t.Error("empty ID accepted")
	}
	out, err := eng.RunStreaming([]StreamLink{
		{ID: "no-source", Interval: time.Minute, Config: schemeConfig},
		{ID: "bad-interval", Source: &sliceSource{}, Interval: 0, Config: schemeConfig},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range out {
		if lr.Err == nil {
			t.Errorf("link %s: structural defect reported no error", lr.ID)
		}
	}
}

// TestEngineSparseLinkError: a link whose bootstrap interval is too
// sparse surfaces the pipeline error without stopping the engine.
func TestEngineSparseLinkError(t *testing.T) {
	sparse := agg.NewSeries(start, 5*time.Minute, 2)
	sparse.SetBandwidth(netip.MustParsePrefix("10.0.0.0/24"), 0, 1)
	links := testLinks(1)
	links = append(links, Link{ID: "sparse", Series: sparse, Config: schemeConfig})
	eng := MultiLinkEngine{}
	out, err := eng.Run(links)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]LinkResult{}
	for _, lr := range out {
		byID[lr.ID] = lr
	}
	if byID["sparse"].Err == nil {
		t.Error("sparse link reported no error")
	}
	if byID["link-00"].Err != nil {
		t.Errorf("healthy link failed: %v", byID["link-00"].Err)
	}
}
