package engine

import (
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/scheme"
)

// MatrixLink is one link offered to RunMatrix: the series only — the
// scheme dimension comes from the spec list, so registering a new
// scheme makes it runnable over every link at zero marginal cost.
type MatrixLink struct {
	// ID names the link; each (link, spec) cell is reported as
	// MatrixID(ID, spec). Must be unique and non-empty.
	ID string
	// Series is the link's flow-by-interval bandwidth matrix. Sharing
	// one fully aggregated series across specs is safe: snapshots are
	// read-only views and every cell gets fresh pipeline state.
	Series *agg.Series
}

// MatrixStreamLink is MatrixLink's streaming twin. Open is called once
// per (link, spec) cell, from the worker goroutine that runs the cell,
// because a RecordSource is consumed by exactly one run.
type MatrixStreamLink struct {
	// ID names the link; see MatrixLink.
	ID string
	// Open yields a fresh record source for one cell.
	Open func() (agg.RecordSource, error)
	// Start is the left edge of interval 0; the zero value aligns to
	// the first record.
	Start time.Time
	// Interval is the measurement interval Δ. Required.
	Interval time.Duration
	// Window is the accumulator's open-interval count; 0 derives it
	// per spec via StreamWindow.
	Window int
}

// MatrixID names one (link, spec) cell of a matrix run:
// "linkID/canonical-spec". Pipeline-level Spec fields that sit outside
// the spec grammar (Alpha, MinFlows) are appended when set, so specs
// differing only in those fields — an alpha sweep on the matrix — get
// distinct cell IDs instead of a duplicate-ID rejection.
func MatrixID(linkID string, sp *scheme.Spec) string {
	id := linkID + "/" + sp.String()
	if sp.Alpha != 0 && sp.Alpha != scheme.DefaultAlpha {
		id += fmt.Sprintf("@alpha=%v", sp.Alpha)
	}
	if sp.MinFlows != 0 {
		id += fmt.Sprintf("@minflows=%d", sp.MinFlows)
	}
	return id
}

// StreamWindow is the accumulator-window rule shared by the streaming
// matrix, cmd/elephants -stream and the examples: an explicit window
// wins; otherwise the window follows the scheme's latent-heat lookback
// so ingestion holds exactly as much history as classification needs,
// floored at agg.DefaultStreamWindow so schemes without persistence
// still tolerate moderately out-of-order sources.
func StreamWindow(sp *scheme.Spec, explicit int) int {
	if explicit > 0 {
		return explicit
	}
	w := agg.DefaultStreamWindow
	if lw, ok := sp.LatentWindow(); ok && lw > w {
		w = lw
	}
	return w
}

// RunMatrix classifies every link under every scheme spec: the
// len(links)×len(specs) cross-product fans onto the worker pool as
// independent cells, each with its own pipeline built from the spec's
// factory. Results are ordered by cell ID; per-cell failures land in
// LinkResult.Err like any other link run.
func (e *MultiLinkEngine) RunMatrix(links []MatrixLink, specs []*scheme.Spec) ([]LinkResult, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	work := make([]Link, 0, len(links)*len(specs))
	for _, l := range links {
		for _, sp := range specs {
			work = append(work, Link{ID: MatrixID(l.ID, sp), Series: l.Series, Config: sp.Factory()})
		}
	}
	return e.Run(work)
}

// RunMatrixStreaming is RunMatrix's bounded-memory twin: every (link,
// spec) cell opens its own record source and streams it through a
// private accumulator sized by the spec's window rule. On sources that
// replay the same records, the results are byte-identical to RunMatrix
// on the collected series — the registry-wide equivalence contract.
func (e *MultiLinkEngine) RunMatrixStreaming(links []MatrixStreamLink, specs []*scheme.Spec) ([]LinkResult, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	type cell struct {
		link MatrixStreamLink
		sp   *scheme.Spec
	}
	cells := make([]cell, 0, len(links)*len(specs))
	for _, l := range links {
		for _, sp := range specs {
			cells = append(cells, cell{link: l, sp: sp})
		}
	}
	return e.runMerged(len(cells),
		func(i int) string { return MatrixID(cells[i].link.ID, cells[i].sp) },
		func() func(int) LinkResult {
			return func(i int) LinkResult {
				c := cells[i]
				id := MatrixID(c.link.ID, c.sp)
				if c.link.Open == nil {
					return LinkResult{ID: id, Err: fmt.Errorf("engine: link %q: nil Open", c.link.ID)}
				}
				src, err := c.link.Open()
				if err != nil {
					return LinkResult{ID: id, Err: fmt.Errorf("engine: link %q: opening source: %w", c.link.ID, err)}
				}
				return RunStreamLink(StreamLink{
					ID:       id,
					Source:   src,
					Start:    c.link.Start,
					Interval: c.link.Interval,
					Window:   StreamWindow(c.sp, c.link.Window),
					Config:   c.sp.Factory(),
				})
			}
		})
}

// validateSpecs rejects empty and nil spec lists up front so the error
// is structural rather than one failure per cell.
func validateSpecs(specs []*scheme.Spec) error {
	if len(specs) == 0 {
		return fmt.Errorf("engine: matrix run with no scheme specs")
	}
	for i, sp := range specs {
		if sp == nil {
			return fmt.Errorf("engine: matrix spec %d is nil", i)
		}
	}
	return nil
}
