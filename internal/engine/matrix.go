package engine

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/scheme"
)

// MatrixLink is one link offered to RunMatrix: the series only — the
// scheme dimension comes from the spec list, so registering a new
// scheme makes it runnable over every link at zero marginal cost.
type MatrixLink struct {
	// ID names the link; each (link, spec) cell is reported as
	// MatrixID(ID, spec). Must be unique and non-empty.
	ID string
	// Series is the link's flow-by-interval bandwidth matrix. Sharing
	// one fully aggregated series across specs is safe: snapshots are
	// read-only views and every cell gets fresh pipeline state.
	Series *agg.Series
}

// MatrixStreamLink is MatrixLink's streaming twin. Open is called once
// per (link, spec) cell, from the worker goroutine that runs the cell,
// because a RecordSource is consumed by exactly one run.
type MatrixStreamLink struct {
	// ID names the link; see MatrixLink.
	ID string
	// Open yields a fresh record source for one cell.
	Open func() (agg.RecordSource, error)
	// Start is the left edge of interval 0; the zero value aligns to
	// the first record.
	Start time.Time
	// Interval is the measurement interval Δ. Required.
	Interval time.Duration
	// Window is the accumulator's open-interval count; 0 derives it
	// per spec via StreamWindow.
	Window int
}

// MatrixID names one (link, spec) cell of a matrix run:
// "linkID/canonical-spec". Pipeline-level Spec fields that sit outside
// the spec grammar (Alpha, MinFlows) are appended when set, so specs
// differing only in those fields — an alpha sweep on the matrix — get
// distinct cell IDs instead of a duplicate-ID rejection.
func MatrixID(linkID string, sp *scheme.Spec) string {
	id := linkID + "/" + sp.String()
	if sp.Alpha != 0 && sp.Alpha != scheme.DefaultAlpha {
		id += fmt.Sprintf("@alpha=%v", sp.Alpha)
	}
	if sp.MinFlows != 0 {
		id += fmt.Sprintf("@minflows=%d", sp.MinFlows)
	}
	return id
}

// StreamWindow is the accumulator-window rule shared by the streaming
// matrix, cmd/elephants -stream and the examples: an explicit window
// wins; otherwise the window follows the scheme's latent-heat lookback
// so ingestion holds exactly as much history as classification needs,
// floored at agg.DefaultStreamWindow so schemes without persistence
// still tolerate moderately out-of-order sources.
func StreamWindow(sp *scheme.Spec, explicit int) int {
	if explicit > 0 {
		return explicit
	}
	w := agg.DefaultStreamWindow
	if lw, ok := sp.LatentWindow(); ok && lw > w {
		w = lw
	}
	return w
}

// RunMatrix classifies every link under every scheme spec with
// emit-once execution: the pool's unit of work is the link, not the
// (link, spec) cell. One worker seals the link's series, walks its
// intervals once, emits each snapshot once, and fans it into all the
// group's spec pipelines — turning S full emission passes per link
// into one. Sharing the snapshot is safe because StepSnapshot never
// retains it, every cell's fresh identity table interns the link's
// rows to the same dense-ID column, and the snapshot's table stamp is
// rewritten per pipeline so ID resolution stays exact. When there are
// fewer links than workers, the spec list is split into per-worker
// groups so parallelism is preserved (trading some sharing).
//
// The output is byte-identical to RunMatrixPerCell (and, on replayed
// sources, to RunMatrixStreaming): same cell IDs, same ordering by
// cell ID, same per-cell error isolation — a failing cell reports its
// error without aborting the other cells.
func (e *MultiLinkEngine) RunMatrix(links []MatrixLink, specs []*scheme.Spec) ([]LinkResult, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	if len(links) == 0 {
		return nil, nil
	}
	ids := make([]string, 0, len(links)*len(specs))
	for _, l := range links {
		for _, sp := range specs {
			ids = append(ids, MatrixID(l.ID, sp))
		}
	}
	if err := validateIDs(ids); err != nil {
		return nil, err
	}
	// Seal up front, on one goroutine: the first snapshot after Seal
	// builds the interval-major index every cell of the link then
	// shares.
	for _, l := range links {
		if l.Series != nil {
			l.Series.Seal()
		}
	}
	// Detector prepass: precompute each distinct detector config's θ(t)
	// column per link on the pool, so the classify pass below runs no
	// detection at all for covered cells and specs sharing a detector
	// key consume one computation (see prepass.go).
	var cols map[string]map[string]*thresholdColumn
	if !e.InlineDetection {
		cols = e.prepassThresholds(links, specs)
	}
	groups := splitSpecs(specs, e.specGroups(len(links), len(specs)))
	type task struct {
		link  MatrixLink
		specs []*scheme.Spec
		out   []LinkResult // this task's slots in the merged output
	}
	out := make([]LinkResult, len(links)*len(specs))
	tasks := make([]task, 0, len(links)*len(groups))
	off := 0
	for _, l := range links {
		for _, g := range groups {
			tasks = append(tasks, task{link: l, specs: g, out: out[off : off+len(g)]})
			off += len(g)
		}
	}
	e.runPool(len(tasks), func() func(int) {
		// Per-worker reusable emission state, shared across every link
		// the worker processes.
		snap := core.NewFlowSnapshot(0)
		var rowIDs []uint32
		return func(i int) {
			t := &tasks[i]
			rowIDs = runMatrixLink(t.link, t.specs, cols[t.link.ID], snap, rowIDs, t.out)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// specGroups decides how many contiguous groups to split the spec list
// into: 1 when links alone saturate the pool (maximal sharing),
// otherwise enough groups to keep every worker busy, capped at the
// spec count — with one link and plentiful workers this degenerates to
// the per-cell fan-out.
func (e *MultiLinkEngine) specGroups(nlinks, nspecs int) int {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if nlinks >= workers {
		return 1
	}
	g := (workers + nlinks - 1) / nlinks
	if g > nspecs {
		g = nspecs
	}
	return g
}

// splitSpecs cuts specs into groups contiguous, balanced chunks.
func splitSpecs(specs []*scheme.Spec, groups int) [][]*scheme.Spec {
	out := make([][]*scheme.Spec, 0, groups)
	for g := 0; g < groups; g++ {
		lo, hi := g*len(specs)/groups, (g+1)*len(specs)/groups
		if lo < hi {
			out = append(out, specs[lo:hi])
		}
	}
	return out
}

// runMatrixLink classifies one link under a group of specs with shared
// emission: per interval, the snapshot is emitted once — against the
// first live pipeline's identity table — and re-stamped for each other
// pipeline, whose own InternRows call produced the identical row→ID
// column. Per-cell error isolation matches the per-cell path exactly:
// a cell that fails stops stepping and reports its wrapped error; the
// surviving cells keep running, and the loop exits early once none
// remain.
// cols carries the link's precomputed threshold columns keyed by
// canonical detector key (nil or missing keys → inline detection).
func runMatrixLink(l MatrixLink, specs []*scheme.Spec, cols map[string]*thresholdColumn, snap *core.FlowSnapshot, rowIDs []uint32, out []LinkResult) []uint32 {
	for k, sp := range specs {
		out[k] = LinkResult{ID: MatrixID(l.ID, sp)}
	}
	if l.Series == nil {
		for k := range out {
			out[k].Err = fmt.Errorf("engine: link %q: nil series", out[k].ID)
		}
		return rowIDs
	}
	pipes := make([]*core.Pipeline, len(specs))
	results := make([][]core.Result, len(specs))
	live := 0
	for k, sp := range specs {
		var src core.ThresholdSource
		if col, ok := cols[sp.DetectorKey()]; ok {
			src = col
		}
		pipe, err := newPipelineThresholds(out[k].ID, sp.Factory(), src)
		if err != nil {
			out[k].Err = err
			continue
		}
		pipes[k] = pipe
		rowIDs = l.Series.InternRows(pipe.Table(), rowIDs)
		results[k] = make([]core.Result, 0, l.Series.Intervals)
		live++
	}
	for t := 0; t < l.Series.Intervals && live > 0; t++ {
		emitted := false
		for k, pipe := range pipes {
			if pipe == nil {
				continue
			}
			if !emitted {
				snap = l.Series.SnapshotIDs(t, snap, pipe.Table(), rowIDs)
				emitted = true
			} else {
				snap.SetIDTable(pipe.Table())
			}
			res, err := pipe.StepSnapshot(t, snap)
			if err != nil {
				out[k].Err = fmt.Errorf("engine: link %q: %w", out[k].ID, err)
				results[k] = nil
				pipes[k] = nil
				live--
				continue
			}
			results[k] = append(results[k], res)
		}
	}
	for k := range out {
		if out[k].Err == nil {
			out[k].Results = results[k]
		}
	}
	return rowIDs
}

// RunMatrixPerCell is the cell-per-task reference execution RunMatrix's
// shared-emission output is defined (and tested) against: the
// len(links)×len(specs) cross-product fans onto the worker pool as
// independent cells, each emitting its own snapshots.
func (e *MultiLinkEngine) RunMatrixPerCell(links []MatrixLink, specs []*scheme.Spec) ([]LinkResult, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	work := make([]Link, 0, len(links)*len(specs))
	for _, l := range links {
		for _, sp := range specs {
			work = append(work, Link{ID: MatrixID(l.ID, sp), Series: l.Series, Config: sp.Factory()})
		}
	}
	return e.Run(work)
}

// RunMatrixStreaming is RunMatrix's bounded-memory twin: every (link,
// spec) cell opens its own record source and streams it through a
// private accumulator sized by the spec's window rule. On sources that
// replay the same records, the results are byte-identical to RunMatrix
// on the collected series — the registry-wide equivalence contract.
func (e *MultiLinkEngine) RunMatrixStreaming(links []MatrixStreamLink, specs []*scheme.Spec) ([]LinkResult, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	type cell struct {
		link MatrixStreamLink
		sp   *scheme.Spec
	}
	cells := make([]cell, 0, len(links)*len(specs))
	for _, l := range links {
		for _, sp := range specs {
			cells = append(cells, cell{link: l, sp: sp})
		}
	}
	return e.runMerged(len(cells),
		func(i int) string { return MatrixID(cells[i].link.ID, cells[i].sp) },
		func() func(int) LinkResult {
			return func(i int) LinkResult {
				c := cells[i]
				id := MatrixID(c.link.ID, c.sp)
				if c.link.Open == nil {
					return LinkResult{ID: id, Err: fmt.Errorf("engine: link %q: nil Open", c.link.ID)}
				}
				src, err := c.link.Open()
				if err != nil {
					return LinkResult{ID: id, Err: fmt.Errorf("engine: link %q: opening source: %w", c.link.ID, err)}
				}
				return RunStreamLink(StreamLink{
					ID:       id,
					Source:   src,
					Start:    c.link.Start,
					Interval: c.link.Interval,
					Window:   StreamWindow(c.sp, c.link.Window),
					Config:   c.sp.Factory(),
				})
			}
		})
}

// validateSpecs rejects empty and nil spec lists up front so the error
// is structural rather than one failure per cell.
func validateSpecs(specs []*scheme.Spec) error {
	if len(specs) == 0 {
		return fmt.Errorf("engine: matrix run with no scheme specs")
	}
	for i, sp := range specs {
		if sp == nil {
			return fmt.Errorf("engine: matrix spec %d is nil", i)
		}
	}
	return nil
}
