package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/scheme"
)

// BenchmarkLivePipelineSaturation drives one heavy link — thousands of
// flows per interval — through the full live path and compares shard
// counts. With >1 shard the intern/touch work spreads across shard
// workers and interval t+1 accumulates while interval t classifies, so
// on a multi-core host throughput should scale toward ~2× at 4 shards;
// on a single-core host the sub-benchmarks only expose the coordination
// overhead (the results stay bit-identical either way — pinned by the
// equivalence tests). Compare the Mrecords/s column.
func BenchmarkLivePipelineSaturation(b *testing.B) {
	s := synthSeries(7, 4096, 16)
	recs := seriesRecords(s)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				intervals := 0
				lp, err := NewLivePipeline(LiveLink{
					ID:       "saturation",
					Start:    start,
					Interval: s.Interval,
					Window:   4,
					Buffer:   4096,
					Shards:   shards,
					Config:   schemeConfig,
					OnResult: func(int, time.Time, core.Result, agg.StreamStats) error {
						intervals++
						return nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := lp.SendBatch(recs); err != nil {
					b.Fatal(err)
				}
				if err := lp.Close(); err != nil {
					b.Fatal(err)
				}
				if intervals != s.Intervals {
					b.Fatalf("classified %d intervals, want %d", intervals, s.Intervals)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrecords/s")
		})
	}
}

// benchMatrix is the spec-sweep shape the experiments package runs: one
// link classified under several schemes. It is exactly the case the
// emit-once path exists for — S pipelines sharing each interval's
// emission and sorted bandwidth column instead of paying S emissions.
func benchMatrix() ([]MatrixLink, []*scheme.Spec) {
	links := []MatrixLink{{ID: "link", Series: synthSeries(3, 2000, 48)}}
	specs := []*scheme.Spec{
		scheme.MustParse("load+latent"),
		scheme.MustParse("load+single"),
		scheme.MustParse("aest+single"),
		scheme.MustParse("topk:k=100"),
		scheme.MustParse("misragries:k=100"),
		scheme.MustParse("spacesaving:k=100"),
	}
	return links, specs
}

// BenchmarkMatrixShared measures the emit-once RunMatrix execution.
func BenchmarkMatrixShared(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrix(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}

// BenchmarkMatrixInline measures RunMatrix with the detector prepass
// disabled — the A/B partner of BenchmarkMatrixShared isolating what
// threshold memoization and the prepass buy on the spec-sweep shape.
func BenchmarkMatrixInline(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1, InlineDetection: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrix(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}

// BenchmarkDetectorPrepass measures the prepass phases alone: per-link
// sorted-column builds plus one θ(t) column per distinct detector
// config — the work RunMatrix hoists off the sequential classify pass.
func BenchmarkDetectorPrepass(b *testing.B) {
	links, specs := benchMatrix()
	for _, l := range links {
		l.Series.Seal()
	}
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols := eng.prepassThresholds(links, specs)
		if cols["link"] == nil {
			b.Fatal("prepass produced no columns")
		}
	}
}

// BenchmarkMatrixPerCell measures the cell-per-task reference path the
// shared execution is defined against, on the identical workload.
func BenchmarkMatrixPerCell(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrixPerCell(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}
