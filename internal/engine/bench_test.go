package engine

import (
	"testing"

	"repro/internal/scheme"
)

// benchMatrix is the spec-sweep shape the experiments package runs: one
// link classified under several schemes. It is exactly the case the
// emit-once path exists for — S pipelines sharing each interval's
// emission and sorted bandwidth column instead of paying S emissions.
func benchMatrix() ([]MatrixLink, []*scheme.Spec) {
	links := []MatrixLink{{ID: "link", Series: synthSeries(3, 2000, 48)}}
	specs := []*scheme.Spec{
		scheme.MustParse("load+latent"),
		scheme.MustParse("load+single"),
		scheme.MustParse("aest+single"),
		scheme.MustParse("topk:k=100"),
		scheme.MustParse("misragries:k=100"),
		scheme.MustParse("spacesaving:k=100"),
	}
	return links, specs
}

// BenchmarkMatrixShared measures the emit-once RunMatrix execution.
func BenchmarkMatrixShared(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrix(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}

// BenchmarkMatrixInline measures RunMatrix with the detector prepass
// disabled — the A/B partner of BenchmarkMatrixShared isolating what
// threshold memoization and the prepass buy on the spec-sweep shape.
func BenchmarkMatrixInline(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1, InlineDetection: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrix(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}

// BenchmarkDetectorPrepass measures the prepass phases alone: per-link
// sorted-column builds plus one θ(t) column per distinct detector
// config — the work RunMatrix hoists off the sequential classify pass.
func BenchmarkDetectorPrepass(b *testing.B) {
	links, specs := benchMatrix()
	for _, l := range links {
		l.Series.Seal()
	}
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols := eng.prepassThresholds(links, specs)
		if cols["link"] == nil {
			b.Fatal("prepass produced no columns")
		}
	}
}

// BenchmarkMatrixPerCell measures the cell-per-task reference path the
// shared execution is defined against, on the identical workload.
func BenchmarkMatrixPerCell(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrixPerCell(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}
