package engine

import (
	"testing"

	"repro/internal/scheme"
)

// benchMatrix is the spec-sweep shape the experiments package runs: one
// link classified under several schemes. It is exactly the case the
// emit-once path exists for — S pipelines sharing each interval's
// emission and sorted bandwidth column instead of paying S emissions.
func benchMatrix() ([]MatrixLink, []*scheme.Spec) {
	links := []MatrixLink{{ID: "link", Series: synthSeries(3, 2000, 48)}}
	specs := []*scheme.Spec{
		scheme.MustParse("load+latent"),
		scheme.MustParse("load+single"),
		scheme.MustParse("aest+single"),
		scheme.MustParse("topk:k=100"),
		scheme.MustParse("misragries:k=100"),
		scheme.MustParse("spacesaving:k=100"),
	}
	return links, specs
}

// BenchmarkMatrixShared measures the emit-once RunMatrix execution.
func BenchmarkMatrixShared(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrix(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}

// BenchmarkMatrixPerCell measures the cell-per-task reference path the
// shared execution is defined against, on the identical workload.
func BenchmarkMatrixPerCell(b *testing.B) {
	links, specs := benchMatrix()
	eng := MultiLinkEngine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := eng.RunMatrixPerCell(links, specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, lr := range out {
			if lr.Err != nil {
				b.Fatal(lr.Err)
			}
		}
	}
}
