package engine

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// TestLivePipelineMatchesRunStreamLink: pushing a record sequence
// through a long-lived LivePipeline must produce exactly the results
// run-to-completion streaming produces from a source yielding the same
// sequence — the determinism contract extended to the resident-daemon
// shape. Run with -race: the producer goroutine here crosses the Send
// boundary the way the daemon's UDP loop does.
func TestLivePipelineMatchesRunStreamLink(t *testing.T) {
	recs := seriesRecords(synthSeries(42, 150, 24))

	want := RunStreamLink(StreamLink{
		ID:       "live",
		Source:   &sliceSource{recs: recs},
		Start:    start,
		Interval: 5 * time.Minute,
		Config:   schemeConfig,
	})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	var got []core.Result
	var lastStats agg.StreamStats
	lp, err := NewLivePipeline(LiveLink{
		ID:       "live",
		Start:    start,
		Interval: 5 * time.Minute,
		Buffer:   8, // small buffer so Send exercises backpressure
		Config:   schemeConfig,
		OnResult: func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error {
			if tt != len(got) {
				t.Errorf("result for interval %d, want %d (in order, gap-free)", tt, len(got))
			}
			got = append(got, res)
			lastStats = stats
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		for _, rec := range recs {
			if err := lp.Send(rec); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Results) {
		t.Fatalf("live results diverge from run-to-completion streaming: %d vs %d intervals", len(got), len(want.Results))
	}
	st := lp.Stats()
	if st.Records != uint64(len(recs)) || st.Late != 0 || st.FarFuture != 0 {
		t.Errorf("final stats = %+v, want %d records, no drops", st, len(recs))
	}
	if lastStats.Closed != st.Closed {
		t.Errorf("OnResult stats lag: last close saw %d closed, final %d", lastStats.Closed, st.Closed)
	}
}

// TestLivePipelineSendBatch: delivering the record sequence in
// datagram-sized batches through SendBatch must be indistinguishable
// from per-record Send — same results, full count, no drops — and a
// batch sent after failure must report zero enqueued.
func TestLivePipelineSendBatch(t *testing.T) {
	recs := seriesRecords(synthSeries(43, 120, 18))

	want := RunStreamLink(StreamLink{
		ID:       "batchsend",
		Source:   &sliceSource{recs: recs},
		Start:    start,
		Interval: 5 * time.Minute,
		Config:   schemeConfig,
	})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	var got []core.Result
	lp, err := NewLivePipeline(LiveLink{
		ID:       "batchsend",
		Start:    start,
		Interval: 5 * time.Minute,
		Buffer:   8,
		Config:   schemeConfig,
		OnResult: func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error {
			got = append(got, res)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 30 // one full v5 datagram
	for i := 0; i < len(recs); i += batch {
		end := min(i+batch, len(recs))
		sent, err := lp.SendBatch(recs[i:end])
		if err != nil {
			t.Fatal(err)
		}
		if sent != end-i {
			t.Fatalf("SendBatch enqueued %d of %d", sent, end-i)
		}
	}
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Results) {
		t.Fatalf("batched sends diverge from streaming: %d vs %d intervals", len(got), len(want.Results))
	}
	if st := lp.Stats(); st.Records != uint64(len(recs)) || st.Late != 0 {
		t.Errorf("final stats = %+v, want %d records, no drops", st, len(recs))
	}

	// A failed link refuses whole batches up front: once SendBatch
	// observes the failure it enqueues nothing, and every record it did
	// accept is reconcilable as accumulated-or-dropped.
	boom := errors.New("boom")
	fl, err := NewLivePipeline(LiveLink{
		ID:       "batchfail",
		Start:    start,
		Interval: time.Minute,
		Window:   1,
		Buffer:   1,
		Config:   schemeConfig,
		OnResult: func(int, time.Time, core.Result, agg.StreamStats) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	frecs := seriesRecords(synthSeries(7, 64, 4))
	accepted := 0
	var sendErr error
	for i := 0; i < len(frecs) && sendErr == nil; i += batch {
		end := min(i+batch, len(frecs))
		var n int
		n, sendErr = fl.SendBatch(frecs[i:end])
		accepted += n
		if sendErr != nil && n != 0 {
			t.Errorf("failed SendBatch enqueued %d records, want 0", n)
		}
	}
	if err := fl.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want boom", err)
	}
	if sendErr != nil && !errors.Is(sendErr, boom) {
		t.Errorf("SendBatch = %v, want boom", sendErr)
	}
	if got := fl.Stats().Records + fl.Dropped(); got != uint64(accepted) {
		t.Errorf("accumulated %d + dropped %d != %d accepted", fl.Stats().Records, fl.Dropped(), accepted)
	}
}

// TestLivePipelineFailureReleasesProducer: a mid-stream failure must
// fail the link, release producers blocked in Send, and keep reporting
// the first error.
func TestLivePipelineFailureReleasesProducer(t *testing.T) {
	boom := errors.New("boom")
	fired := 0
	lp, err := NewLivePipeline(LiveLink{
		ID:       "flaky",
		Start:    start,
		Interval: time.Minute,
		Window:   1,
		Buffer:   1,
		Config:   schemeConfig,
		OnResult: func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error {
			fired++
			return boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := seriesRecords(synthSeries(7, 64, 4))
	var sendErr error
	sent := 0
	for _, rec := range recs {
		if sendErr = lp.Send(rec); sendErr != nil {
			break
		}
		sent++
	}
	// Whether or not a Send observed the failure in flight, Close must
	// surface it.
	if err := lp.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want boom", err)
	}
	// Every accepted record is accounted for: it reached the
	// accumulator or was counted as dropped by the failure drain. (How
	// the sent records split between the two depends on queue timing.)
	if got := lp.Stats().Records + lp.Dropped(); got != uint64(sent) {
		t.Errorf("accumulated %d + dropped %d != %d sent", lp.Stats().Records, lp.Dropped(), sent)
	}
	if sendErr != nil && !errors.Is(sendErr, boom) {
		t.Errorf("Send = %v, want boom", sendErr)
	}
	if fired != 1 {
		t.Errorf("OnResult fired %d times after failing, want 1", fired)
	}
	if err := lp.Close(); !errors.Is(err, boom) {
		t.Errorf("second Close = %v, want boom", err)
	}
}

func TestLivePipelineValidation(t *testing.T) {
	ok := func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error { return nil }
	if _, err := NewLivePipeline(LiveLink{ID: "x", Interval: time.Minute, Config: schemeConfig}); err == nil {
		t.Error("nil OnResult accepted")
	}
	if _, err := NewLivePipeline(LiveLink{ID: "x", Config: schemeConfig, OnResult: ok}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewLivePipeline(LiveLink{ID: "x", Interval: time.Minute, OnResult: ok}); err == nil {
		t.Error("nil config factory accepted")
	}
}

func TestLivePipelineStatsBeforeClose(t *testing.T) {
	lp, err := NewLivePipeline(LiveLink{
		ID: "x", Interval: time.Minute, Config: schemeConfig,
		OnResult: func(int, time.Time, core.Result, agg.StreamStats) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Stats before Close did not panic")
			}
		}()
		lp.Stats()
	}()
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if st := lp.Stats(); st.Records != 0 || st.Closed != 0 {
		t.Errorf("empty link stats = %+v", st)
	}
}
