package engine

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// TestRunStreamLinkShardedMatchesBatch pins the sharded accumulate
// path against the batch reference on the eviction/resurrection churn
// trace: at every shard count the classification results — thresholds,
// loads, elephant sets — must equal the batch run exactly. (Sharded
// snapshots carry no dense-ID column, so the classifier re-interns;
// results are ID-numbering independent by contract.)
func TestRunStreamLinkShardedMatchesBatch(t *testing.T) {
	iv := time.Minute
	const intervals = 64
	for seed := int64(0); seed < 3; seed++ {
		recs := churnRecords(seed, intervals, iv)

		s := agg.NewSeries(start, iv, intervals)
		if _, err := agg.Collect(&sliceSource{recs: recs}, s); err != nil {
			t.Fatal(err)
		}
		want := RunLink(Link{ID: "l", Series: s, Config: churnConfig})
		if want.Err != nil {
			t.Fatal(want.Err)
		}

		for _, window := range []int{1, 3} {
			for _, shards := range []int{1, 2, 4} {
				got := RunStreamLink(StreamLink{
					ID:     "l",
					Source: &sliceSource{recs: recs},
					Start:  start, Interval: iv, Window: window,
					Shards: shards,
					Config: churnConfig,
				})
				if got.Err != nil {
					t.Fatalf("seed %d window %d shards %d: %v", seed, window, shards, got.Err)
				}
				if len(got.Results) != len(want.Results) {
					t.Fatalf("seed %d window %d shards %d: %d intervals, want %d",
						seed, window, shards, len(got.Results), len(want.Results))
				}
				for i := range want.Results {
					w, g := want.Results[i], got.Results[i]
					if g.RawThreshold != w.RawThreshold || g.Threshold != w.Threshold ||
						g.TotalLoad != w.TotalLoad || g.ElephantLoad != w.ElephantLoad ||
						g.ActiveFlows != w.ActiveFlows || !g.Elephants.Equal(w.Elephants) {
						t.Fatalf("seed %d window %d shards %d interval %d:\n got %+v\nwant %+v",
							seed, window, shards, i, g, w)
					}
				}
			}
		}
	}
}

// TestLivePipelineShardedMatchesRunStreamLink: the full pipelined live
// path — sharded accumulation, double-buffered seal handoff, classify
// stage — must produce exactly the sequential reference results for
// every shard count.
func TestLivePipelineShardedMatchesRunStreamLink(t *testing.T) {
	s := synthSeries(23, 30, 24)
	recs := seriesRecords(s)
	want := RunStreamLink(StreamLink{
		ID: "live", Source: &sliceSource{recs: recs},
		Start: start, Interval: s.Interval, Config: schemeConfig,
	})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var got []core.Result
			lp, err := NewLivePipeline(LiveLink{
				ID:       "live",
				Start:    start,
				Interval: s.Interval,
				Buffer:   8,
				Shards:   shards,
				Config:   schemeConfig,
				OnResult: func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error {
					if tt != len(got) {
						t.Errorf("interval %d delivered out of order (want %d)", tt, len(got))
					}
					if want := s.IntervalTime(tt); !at.Equal(want) {
						t.Errorf("interval %d at %v, want %v", tt, at, want)
					}
					got = append(got, res)
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if lp.Shards() != max(shards, 1) {
				t.Fatalf("Shards() = %d, want %d", lp.Shards(), shards)
			}
			for _, rec := range recs {
				if err := lp.Send(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := lp.Close(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want.Results) {
				t.Fatalf("shards=%d: pipelined live results diverge from sequential reference", shards)
			}
			var sum uint64
			for _, n := range lp.ShardRecords(nil) {
				sum += n
			}
			if sum != lp.Stats().InWindow {
				t.Fatalf("shard records sum %d, want InWindow %d", sum, lp.Stats().InWindow)
			}
		})
	}
}

// oneFlowConfig classifies single-flow intervals (the stall tests feed
// one record per interval).
func oneFlowConfig() (core.Config, error) {
	return core.Config{
		Detector:   constDetector{100},
		Alpha:      0.5,
		Classifier: core.SingleFeatureClassifier{},
		MinFlows:   1,
	}, nil
}

// TestLivePipelineStalls: a full record queue makes Send block — and
// the block is counted, surfacing backpressure instead of swallowing
// it. The classify stage is gated shut so the whole pipeline wedges
// deterministically: transfer buffers fill, the accumulate stage
// blocks on the seal handoff, the record queue fills, and further
// sends must stall.
func TestLivePipelineStalls(t *testing.T) {
	iv := time.Minute
	gate := make(chan struct{})
	gated := false
	lp, err := NewLivePipeline(LiveLink{
		ID:       "stall",
		Start:    start,
		Interval: iv,
		Window:   1,
		Buffer:   1,
		Config:   oneFlowConfig,
		OnResult: func(tt int, at time.Time, res core.Result, stats agg.StreamStats) error {
			if !gated {
				gated = true
				<-gate
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Stalls() != 0 {
		t.Fatalf("fresh link stalls = %d", lp.Stalls())
	}
	// Each record opens a new interval, sealing the previous one. With
	// the classify stage parked, at most window+transfer+queue records
	// can be absorbed; 16 sends must overflow and stall.
	done := make(chan struct{})
	go func() {
		defer close(done)
		p := synthSeries(1, 4, 1).Flows()[0]
		for i := 0; i < 16; i++ {
			rec := agg.Record{Prefix: p, Time: start.Add(time.Duration(i) * iv), Bits: 1e4}
			if err := lp.Send(rec); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	// The pipeline is wedged until the gate opens, and 16 records exceed
	// its total buffering, so a stall MUST register; wait for it, then
	// release the gate so the sender can finish.
	waitForStall(t, lp)
	close(gate)
	<-done
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if lp.Stalls() == 0 {
		t.Fatal("no stalls counted despite a wedged pipeline and 16 sends into a 1-slot queue")
	}
}

// waitForStall blocks until the link's stall counter moves (the
// producer is then provably parked inside a counted blocking send).
func waitForStall(t *testing.T, lp *LivePipeline) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for lp.Stalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for a stall")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLivePipelineSendBatchStalls mirrors the stall contract for the
// batch path: records are never dropped, the blocking waits are
// counted.
func TestLivePipelineSendBatchStalls(t *testing.T) {
	iv := time.Minute
	gate := make(chan struct{})
	gated := false
	lp, err := NewLivePipeline(LiveLink{
		ID:       "stall-batch",
		Start:    start,
		Interval: iv,
		Window:   1,
		Buffer:   1,
		Config:   oneFlowConfig,
		OnResult: func(int, time.Time, core.Result, agg.StreamStats) error {
			if !gated {
				gated = true
				<-gate
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]agg.Record, 16)
	p := synthSeries(1, 4, 1).Flows()[0]
	for i := range recs {
		recs[i] = agg.Record{Prefix: p, Time: start.Add(time.Duration(i) * iv), Bits: 1e4}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sent, err := lp.SendBatch(recs)
		if err != nil || sent != len(recs) {
			t.Errorf("SendBatch = (%d, %v), want (%d, nil)", sent, err, len(recs))
		}
	}()
	waitForStall(t, lp)
	close(gate)
	<-done
	if err := lp.Close(); err != nil {
		t.Fatal(err)
	}
	if lp.Stalls() == 0 {
		t.Fatal("no stalls counted despite a wedged pipeline")
	}
	if got := lp.Stats().Records; got != uint64(len(recs)) {
		t.Fatalf("accumulator saw %d records, want %d (stalls must not drop)", got, len(recs))
	}
}
