package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// DefaultLiveBuffer is the default Send queue capacity of a
// LivePipeline — enough to absorb a burst of decoded NetFlow records
// (a full v5 datagram is 30) without the producer blocking, small
// enough that backpressure reaches the producer before memory does.
const DefaultLiveBuffer = 1024

// LiveLink configures one long-lived streaming link. It is the
// resident-daemon counterpart of StreamLink: where a StreamLink drains
// a finite RecordSource to completion, a LiveLink accepts records
// pushed from the outside (a UDP ingest loop) for as long as the
// process lives, delivering classification results through a hook as
// intervals close.
type LiveLink struct {
	// ID names the link in errors.
	ID string
	// Start is the left edge of interval 0; the zero value aligns to
	// the first record.
	Start time.Time
	// Interval is the measurement interval Δ. Required.
	Interval time.Duration
	// Window is the accumulator's open-interval count (0 selects
	// agg.DefaultStreamWindow). Size it to the source's
	// out-of-orderness — e.g. a NetFlow active timeout.
	Window int
	// Buffer is the Send queue capacity; 0 selects DefaultLiveBuffer.
	Buffer int
	// Config returns a fresh pipeline configuration for this link —
	// the same fresh-instances-per-link determinism contract as every
	// other engine mode.
	Config func() (core.Config, error)
	// OnResult receives each closed interval's classification in order:
	// the interval index, its left-edge wall time (from the
	// accumulator's resolved anchor — the configured Start, or the
	// first record when aligning automatically) and the accumulator's
	// counters as of that close. It runs on the link's worker
	// goroutine; an error fails the link. Required.
	OnResult func(t int, at time.Time, res core.Result, stats agg.StreamStats) error
}

// LivePipeline is a long-lived per-link classification pipeline: a
// private worker goroutine owns a StreamAccumulator and a
// core.Pipeline, consuming records pushed via Send and firing OnResult
// as intervals close. The single-consumer design is what carries the
// engine's determinism contract into a resident daemon: all accumulator
// and pipeline state is confined to the worker, so a LivePipeline fed a
// record sequence produces exactly the results RunStreamLink would
// produce from a source yielding the same sequence — regardless of how
// many producer goroutines exist upstream of Send.
//
// Lifecycle: NewLivePipeline starts the worker; Send pushes records
// (blocking when the buffer is full — backpressure, not drops); Close
// flushes the accumulator (closing every interval through the last one
// carrying bits, exactly like end-of-stream flush in run-to-completion
// mode) and waits for the worker to exit. Send and Close must not be
// called concurrently with each other; after a failure Send returns the
// link's error and drops the record.
type LivePipeline struct {
	id string
	ch chan agg.Record

	done      chan struct{} // closed when the worker has exited
	closeOnce sync.Once
	closeErr  error

	// failed is the Send hot path's view of err: readers in a sharded
	// ingest front-end check one atomic load per record instead of
	// taking mu, so a healthy link's Send never contends on anything
	// but the channel itself.
	failed atomic.Bool

	// lag is the accumulator's watermark lag (nanoseconds), published
	// by the worker after every accepted record and at every interval
	// seal, so scrape handlers can read link freshness without touching
	// worker-owned state.
	lag atomic.Int64

	mu  sync.Mutex
	err error

	// Worker-owned; read by other goroutines only after done is closed
	// (Stats, Dropped) — the channel close/receive pair orders those
	// accesses.
	acc     *agg.StreamAccumulator
	dropped uint64
}

// NewLivePipeline validates the link, builds its private accumulator
// and pipeline, and starts the worker.
func NewLivePipeline(l LiveLink) (*LivePipeline, error) {
	pipe, err := newPipeline(l.ID, l.Config)
	if err != nil {
		return nil, err
	}
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
		Start:    l.Start,
		Interval: l.Interval,
		Window:   l.Window,
		// Share the pipeline's flow identity table (both live on the
		// worker goroutine): emitted snapshots carry dense IDs, so the
		// resident classify path never hashes a prefix.
		Table: pipe.Table(),
	})
	if err != nil {
		return nil, fmt.Errorf("engine: link %q: %w", l.ID, err)
	}
	if l.OnResult == nil {
		return nil, fmt.Errorf("engine: link %q: nil OnResult", l.ID)
	}
	buffer := l.Buffer
	if buffer <= 0 {
		buffer = DefaultLiveBuffer
	}
	p := &LivePipeline{
		id:   l.ID,
		ch:   make(chan agg.Record, buffer),
		done: make(chan struct{}),
		acc:  acc,
	}
	onResult := l.OnResult
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		// Publish the lag as of this seal before OnResult runs, so a
		// result hook reading WatermarkLag sees the value the sealed
		// interval was classified under.
		p.lag.Store(int64(acc.WatermarkLag()))
		res, err := pipe.StepSnapshot(t, snap)
		if err != nil {
			return err
		}
		return onResult(t, acc.IntervalTime(t), res, acc.Stats())
	}
	go p.run()
	return p, nil
}

// run is the worker: consume until the channel closes, then flush. On
// a mid-stream failure it keeps draining (and dropping) so producers
// blocked in Send are released rather than wedged forever.
func (p *LivePipeline) run() {
	defer close(p.done)
	for rec := range p.ch {
		err := p.acc.Add(rec)
		p.lag.Store(int64(p.acc.WatermarkLag()))
		if err != nil {
			p.setErr(fmt.Errorf("engine: link %q: %w", p.id, err))
			// Drain to unblock producers. Everything still queued —
			// including records a Send slipped in before observing the
			// error — is discarded and counted, so the producer can
			// reconcile its accounting after Close. (The triggering
			// record itself reached the accumulator and is already in
			// its Stats.)
			for range p.ch {
				p.dropped++
			}
			return
		}
	}
	if err := p.acc.Flush(); err != nil {
		p.setErr(fmt.Errorf("engine: link %q: flush: %w", p.id, err))
	}
	p.lag.Store(int64(p.acc.WatermarkLag()))
}

// WatermarkLag returns the link's interval watermark lag — how far the
// newest accepted record's bit-carrying instant has run ahead of the
// sealed edge (agg.StreamAccumulator.WatermarkLag), as published at the
// last record or seal. Safe from any goroutine at any time: it is one
// atomic load, so HTTP scrape handlers read it while the worker runs.
func (p *LivePipeline) WatermarkLag() time.Duration {
	return time.Duration(p.lag.Load())
}

// Send pushes one record into the link, blocking when the buffer is
// full. After the link has failed, Send drops the record and returns
// the failure. Must not be called after (or concurrently with) Close.
func (p *LivePipeline) Send(rec agg.Record) error {
	if p.failed.Load() {
		return p.Err()
	}
	p.ch <- rec
	return nil
}

// SendBatch pushes the records of one decoded datagram in order,
// checking for link failure once per batch instead of once per record.
// It returns how many records were enqueued; on failure the remainder
// was dropped and err reports why, so the caller can account
// sent/dropped exactly. Same concurrency contract as Send.
func (p *LivePipeline) SendBatch(recs []agg.Record) (sent int, err error) {
	if p.failed.Load() {
		return 0, p.Err()
	}
	for _, rec := range recs {
		p.ch <- rec
		sent++
	}
	return sent, nil
}

// Close flushes remaining open intervals, stops the worker and returns
// the link's first error (nil for a clean run). Safe to call more than
// once; later calls return the first call's result.
func (p *LivePipeline) Close() error {
	p.closeOnce.Do(func() {
		close(p.ch)
		<-p.done
		p.closeErr = p.Err()
	})
	return p.closeErr
}

// Err returns the link's first failure, nil while healthy. A failed
// link stays failed: the pipeline's interval sequence is broken and a
// fresh LivePipeline is the only way forward.
func (p *LivePipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *LivePipeline) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.failed.Store(true)
}

// Stats returns the accumulator's final counters. Valid only after
// Close has returned; calling it earlier would race the worker.
func (p *LivePipeline) Stats() agg.StreamStats {
	select {
	case <-p.done:
		return p.acc.Stats()
	default:
		panic("engine: LivePipeline.Stats before Close")
	}
}

// Dropped returns the number of records that were accepted by Send but
// discarded before reaching the accumulator when the link failed
// (everything queued behind the record that triggered the failure), so
// a producer can reconcile its accounting: Stats().Records + Dropped()
// equals the records accepted. Zero for a healthy link. Valid only
// after Close has returned.
func (p *LivePipeline) Dropped() uint64 {
	select {
	case <-p.done:
		return p.dropped
	default:
		panic("engine: LivePipeline.Dropped before Close")
	}
}
