package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
)

// DefaultLiveBuffer is the default Send queue capacity of a
// LivePipeline — enough to absorb a burst of decoded NetFlow records
// (a full v5 datagram is 30) without the producer blocking, small
// enough that backpressure reaches the producer before memory does.
const DefaultLiveBuffer = 1024

// liveTransferBuffers is the number of sealed-snapshot buffers cycling
// between the accumulate and classify stages. Two is exactly double
// buffering: interval t classifies out of one buffer while interval
// t+1 seals into the other; a third would only add latency, not
// throughput, because seals are strictly ordered.
const liveTransferBuffers = 2

// errClassifyFailed marks an Emit aborted because the classify stage
// already failed; the stage recorded the real error itself, so the
// accumulate stage must not wrap this sentinel over it.
var errClassifyFailed = errors.New("engine: classify stage failed")

// LiveLink configures one long-lived streaming link. It is the
// resident-daemon counterpart of StreamLink: where a StreamLink drains
// a finite RecordSource to completion, a LiveLink accepts records
// pushed from the outside (a UDP ingest loop) for as long as the
// process lives, delivering classification results through a hook as
// intervals close.
type LiveLink struct {
	// ID names the link in errors.
	ID string
	// Start is the left edge of interval 0; the zero value aligns to
	// the first record.
	Start time.Time
	// Interval is the measurement interval Δ. Required.
	Interval time.Duration
	// Window is the accumulator's open-interval count (0 selects
	// agg.DefaultStreamWindow). Size it to the source's
	// out-of-orderness — e.g. a NetFlow active timeout.
	Window int
	// Buffer is the Send queue capacity; 0 selects DefaultLiveBuffer.
	Buffer int
	// Shards selects sharded accumulation (agg.StreamConfig.Shards):
	// values above 1 spread the link's flow columns across that many
	// concurrent shard workers. 0 and 1 accumulate serially. Either
	// way the results are bit-identical.
	Shards int
	// Config returns a fresh pipeline configuration for this link —
	// the same fresh-instances-per-link determinism contract as every
	// other engine mode.
	Config func() (core.Config, error)
	// OnResult receives each closed interval's classification in order:
	// the interval index, its left-edge wall time (from the
	// accumulator's resolved anchor — the configured Start, or the
	// first record when aligning automatically) and the accumulator's
	// counters as of that close. It runs on the link's classify
	// goroutine; an error fails the link. Required.
	OnResult func(t int, at time.Time, res core.Result, stats agg.StreamStats) error
}

// sealedInterval is the unit of work crossing the accumulate→classify
// stage boundary: one sealed interval's snapshot (in a transfer buffer
// the classify stage returns after use) plus the interval's identity
// and the accumulator counters captured at seal time.
type sealedInterval struct {
	t     int
	at    time.Time
	stats agg.StreamStats
	lag   time.Duration // watermark lag as of this seal
	snap  *core.FlowSnapshot
}

// LivePipeline is a long-lived per-link classification pipeline, run
// as two stages: an accumulate goroutine owns the StreamAccumulator
// and consumes records pushed via Send; a classify goroutine owns the
// core.Pipeline and consumes sealed interval snapshots, firing
// OnResult per interval. The stages are joined by a bounded channel of
// double-buffered snapshot copies, so interval t+1 accumulates while
// interval t classifies — and within the accumulate stage the flow
// columns may additionally be sharded across cores (LiveLink.Shards).
//
// The determinism contract survives both overlaps: sealed intervals
// are copied out in seal order and classified strictly in that order
// by a single consumer, and each stage owns its state exclusively
// (the accumulator's tables never touch the classifier's), so a
// LivePipeline fed a record sequence produces exactly the results
// RunStreamLink would produce from a source yielding the same
// sequence — regardless of how many producer goroutines exist
// upstream of Send.
//
// Lifecycle: NewLivePipeline starts both stages; Send pushes records
// (blocking when the buffer is full — backpressure, not drops, with
// the stall counted in Stalls); Close flushes the accumulator, drains
// the classify stage and waits for both to exit. Send and Close must
// not be called concurrently with each other; after a failure Send
// returns the link's error and drops the record.
type LivePipeline struct {
	id string
	ch chan agg.Record

	done      chan struct{} // closed when both stages have exited
	closeOnce sync.Once
	closeErr  error

	// failed is the Send hot path's view of err: readers in a sharded
	// ingest front-end check one atomic load per record instead of
	// taking mu, so a healthy link's Send never contends on anything
	// but the channel itself.
	failed atomic.Bool

	// lag is the accumulator's watermark lag (nanoseconds), published
	// by the accumulate stage after every accepted record and at every
	// interval seal, so scrape handlers can read link freshness without
	// touching stage-owned state.
	lag atomic.Int64

	// stalls counts Send/SendBatch calls that found the record queue
	// full and had to block — the backpressure signal a silent blocking
	// send used to swallow. One increment per blocking wait, not per
	// record queued behind it.
	stalls atomic.Uint64

	// emitWait accumulates the time the accumulate stage spent blocked
	// waiting for a free transfer buffer (i.e. waiting on classify);
	// lastOverlap is the classify stage's most recent estimate of how
	// much of its busy time genuinely overlapped accumulation.
	emitWait    atomic.Int64
	lastOverlap atomic.Int64

	// sealLag is the watermark lag the most recently classified
	// interval was sealed under, stored by the classify stage right
	// before its OnResult fires — the per-interval lag a result hook
	// should record (WatermarkLag may already reflect later records
	// by the time classification runs).
	sealLag atomic.Int64

	// classifyFailed tells the accumulate stage to stop sealing: the
	// classify goroutine recorded the link error and is draining.
	classifyFailed atomic.Bool

	sealed       chan sealedInterval
	free         chan *core.FlowSnapshot
	classifyDone chan struct{}

	mu  sync.Mutex
	err error

	// Accumulate-stage-owned; read by other goroutines only after done
	// is closed (Stats, Dropped) — the channel close/receive pair
	// orders those accesses. ShardRecords/Shards are safe earlier: they
	// only read atomics published at each seal.
	acc     *agg.StreamAccumulator
	dropped uint64
}

// NewLivePipeline validates the link, builds its private accumulator
// and pipeline, and starts the accumulate and classify stages.
func NewLivePipeline(l LiveLink) (*LivePipeline, error) {
	pipe, err := newPipeline(l.ID, l.Config)
	if err != nil {
		return nil, err
	}
	shards := l.Shards
	if shards < 1 {
		shards = 1
	}
	acc, err := agg.NewStreamAccumulator(agg.StreamConfig{
		Start:    l.Start,
		Interval: l.Interval,
		Window:   l.Window,
		// The accumulator's flow identities are private to the
		// accumulate stage (per-shard tables when sharded): the classify
		// stage runs concurrently and owns the core pipeline's table, so
		// sharing one table across the stage boundary would race. The
		// classify path re-interns each sealed column via FillIDs.
		Shards: shards,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: link %q: %w", l.ID, err)
	}
	if l.OnResult == nil {
		acc.Close()
		return nil, fmt.Errorf("engine: link %q: nil OnResult", l.ID)
	}
	buffer := l.Buffer
	if buffer <= 0 {
		buffer = DefaultLiveBuffer
	}
	p := &LivePipeline{
		id:           l.ID,
		ch:           make(chan agg.Record, buffer),
		done:         make(chan struct{}),
		sealed:       make(chan sealedInterval, liveTransferBuffers),
		free:         make(chan *core.FlowSnapshot, liveTransferBuffers),
		classifyDone: make(chan struct{}),
		acc:          acc,
	}
	for i := 0; i < liveTransferBuffers; i++ {
		p.free <- core.NewFlowSnapshot(0)
	}
	acc.Emit = func(t int, snap *core.FlowSnapshot) error {
		if p.classifyFailed.Load() {
			return errClassifyFailed
		}
		var buf *core.FlowSnapshot
		select {
		case buf = <-p.free:
		default:
			// Classify still owns both buffers: the stall here is the
			// pipeline bubble the stage-overlap metric subtracts out.
			waitStart := time.Now()
			buf = <-p.free
			p.emitWait.Add(time.Since(waitStart).Nanoseconds())
		}
		buf.CopyFrom(snap)
		lag := acc.WatermarkLag()
		p.lag.Store(int64(lag))
		p.sealed <- sealedInterval{t: t, at: acc.IntervalTime(t), stats: acc.Stats(), lag: lag, snap: buf}
		return nil
	}
	go p.classify(pipe, l.OnResult)
	go p.run()
	return p, nil
}

// classify is the downstream stage: consume sealed intervals in order,
// step the core pipeline and fire OnResult. Every transfer buffer is
// recycled on every path — success, failure, post-failure drain — so
// the accumulate stage can never wedge waiting for a buffer.
func (p *LivePipeline) classify(pipe *core.Pipeline, onResult func(int, time.Time, core.Result, agg.StreamStats) error) {
	defer close(p.classifyDone)
	for m := range p.sealed {
		if p.classifyFailed.Load() {
			p.free <- m.snap
			continue
		}
		p.sealLag.Store(int64(m.lag))
		waitBefore := p.emitWait.Load()
		busyStart := time.Now()
		res, err := pipe.StepSnapshot(m.t, m.snap)
		if err == nil {
			err = onResult(m.t, m.at, res, m.stats)
		}
		busy := time.Since(busyStart).Nanoseconds()
		p.free <- m.snap
		if err != nil {
			p.classifyFailed.Store(true)
			p.setErr(fmt.Errorf("engine: link %q: %w", p.id, err))
			continue
		}
		// Overlap = classify busy time minus however long accumulation
		// sat blocked on a transfer buffer during it: the portion of
		// this interval's classification that ran concurrently with
		// useful accumulate-stage work.
		if overlap := busy - (p.emitWait.Load() - waitBefore); overlap > 0 {
			p.lastOverlap.Store(overlap)
		} else {
			p.lastOverlap.Store(0)
		}
	}
}

// run is the accumulate stage: consume until the channel closes, then
// flush, then shut the classify stage down. On a mid-stream failure it
// keeps draining (and dropping) so producers blocked in Send are
// released rather than wedged forever.
func (p *LivePipeline) run() {
	for rec := range p.ch {
		err := p.acc.Add(rec)
		p.lag.Store(int64(p.acc.WatermarkLag()))
		if err != nil {
			if !errors.Is(err, errClassifyFailed) {
				p.setErr(fmt.Errorf("engine: link %q: %w", p.id, err))
			}
			// Drain to unblock producers. Everything still queued —
			// including records a Send slipped in before observing the
			// error — is discarded and counted, so the producer can
			// reconcile its accounting after Close. (The triggering
			// record itself reached the accumulator and is already in
			// its Stats.)
			for range p.ch {
				p.dropped++
			}
			p.finish()
			return
		}
	}
	if err := p.acc.Flush(); err != nil {
		if !errors.Is(err, errClassifyFailed) {
			p.setErr(fmt.Errorf("engine: link %q: flush: %w", p.id, err))
		}
	}
	p.lag.Store(int64(p.acc.WatermarkLag()))
	p.finish()
}

// finish releases the accumulator's shard workers, closes the stage
// channel and waits for classify to drain, then signals done.
func (p *LivePipeline) finish() {
	p.acc.Close()
	close(p.sealed)
	<-p.classifyDone
	close(p.done)
}

// WatermarkLag returns the link's interval watermark lag — how far the
// newest accepted record's bit-carrying instant has run ahead of the
// sealed edge (agg.StreamAccumulator.WatermarkLag), as published at the
// last record or seal. Safe from any goroutine at any time: it is one
// atomic load, so HTTP scrape handlers read it while the worker runs.
func (p *LivePipeline) WatermarkLag() time.Duration {
	return time.Duration(p.lag.Load())
}

// LastSealLag returns the watermark lag the most recently classified
// interval was sealed under. Inside an OnResult hook it is exactly
// that interval's seal-time lag — the value to record per interval —
// where WatermarkLag may already reflect records accumulated since the
// seal (the stages overlap). Safe from any goroutine at any time.
func (p *LivePipeline) LastSealLag() time.Duration {
	return time.Duration(p.sealLag.Load())
}

// Stalls returns how many Send/SendBatch calls found the record queue
// full and had to block for space — the link's backpressure counter.
// Safe from any goroutine at any time.
func (p *LivePipeline) Stalls() uint64 { return p.stalls.Load() }

// LastOverlap returns the classify stage's most recent stage-overlap
// estimate: how much of the last interval's classification ran
// concurrently with accumulation (zero when the stages ran in
// lockstep). Safe from any goroutine at any time.
func (p *LivePipeline) LastOverlap() time.Duration {
	return time.Duration(p.lastOverlap.Load())
}

// Shards returns the link's accumulation shard count (1 when serial).
func (p *LivePipeline) Shards() int { return p.acc.Shards() }

// ShardRecords appends each accumulation shard's cumulative record
// count (as of the last interval seal) to dst — the per-shard balance
// a scrape handler exports. Safe from any goroutine at any time.
func (p *LivePipeline) ShardRecords(dst []uint64) []uint64 {
	return p.acc.ShardRecords(dst)
}

// Send pushes one record into the link, blocking when the buffer is
// full (counting the stall). After the link has failed, Send drops the
// record and returns the failure. Must not be called after (or
// concurrently with) Close.
func (p *LivePipeline) Send(rec agg.Record) error {
	if p.failed.Load() {
		return p.Err()
	}
	select {
	case p.ch <- rec:
	default:
		p.stalls.Add(1)
		p.ch <- rec
	}
	return nil
}

// SendBatch pushes the records of one decoded datagram in order,
// checking for link failure once per batch instead of once per record.
// A full queue blocks (backpressure, not drops) and increments the
// stall counter once per blocking wait, so the daemon can see
// ingest-side pressure instead of readers silently wedging. It returns
// how many records were enqueued; on failure the remainder was dropped
// and err reports why, so the caller can account sent/dropped exactly.
// Same concurrency contract as Send.
func (p *LivePipeline) SendBatch(recs []agg.Record) (sent int, err error) {
	if p.failed.Load() {
		return 0, p.Err()
	}
	for _, rec := range recs {
		select {
		case p.ch <- rec:
		default:
			p.stalls.Add(1)
			p.ch <- rec
		}
		sent++
	}
	return sent, nil
}

// Close flushes remaining open intervals, stops both stages and
// returns the link's first error (nil for a clean run). Safe to call
// more than once; later calls return the first call's result.
func (p *LivePipeline) Close() error {
	p.closeOnce.Do(func() {
		close(p.ch)
		<-p.done
		p.closeErr = p.Err()
	})
	return p.closeErr
}

// Err returns the link's first failure, nil while healthy. A failed
// link stays failed: the pipeline's interval sequence is broken and a
// fresh LivePipeline is the only way forward.
func (p *LivePipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *LivePipeline) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.failed.Store(true)
}

// Stats returns the accumulator's final counters. Valid only after
// Close has returned; calling it earlier would race the worker.
func (p *LivePipeline) Stats() agg.StreamStats {
	select {
	case <-p.done:
		return p.acc.Stats()
	default:
		panic("engine: LivePipeline.Stats before Close")
	}
}

// Dropped returns the number of records that were accepted by Send but
// discarded before reaching the accumulator when the link failed
// (everything queued behind the record that triggered the failure), so
// a producer can reconcile its accounting: Stats().Records + Dropped()
// equals the records accepted. Zero for a healthy link. Valid only
// after Close has returned.
func (p *LivePipeline) Dropped() uint64 {
	select {
	case <-p.done:
		return p.dropped
	default:
		panic("engine: LivePipeline.Dropped before Close")
	}
}
