package experiments

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/scheme"
)

// smallLinks builds a reduced two-link setup shared by the tests in this
// file. Sized to keep the full suite fast while leaving enough flows for
// the statistical claims to hold.
func smallLinks(t *testing.T) *LinkSet {
	t.Helper()
	ls, err := BuildLinks(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestBuildLinksDefaultsAndDeterminism(t *testing.T) {
	cfg := SmallConfig()
	a, err := BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.West.NumFlows() != b.West.NumFlows() {
		t.Fatal("flow population not deterministic")
	}
	for tt := 0; tt < a.West.Intervals; tt += 13 {
		if a.West.TotalBandwidth(tt) != b.West.TotalBandwidth(tt) {
			t.Fatalf("interval %d: totals differ", tt)
		}
	}
	if a.East.NumFlows() >= a.West.NumFlows() {
		t.Errorf("east flows %d >= west flows %d", a.East.NumFlows(), a.West.NumFlows())
	}
}

// TestPaperSpec pins the headline spec and that each call returns an
// independently mutable copy.
func TestPaperSpec(t *testing.T) {
	a, b := PaperSpec(), PaperSpec()
	if a.String() != "load+latent" {
		t.Errorf("PaperSpec() = %q", a.String())
	}
	if a.Name() != "0.80-constant-load+latent-heat" {
		t.Errorf("PaperSpec().Name() = %q", a.Name())
	}
	a.Alpha = 0.9
	if b.Alpha != 0 {
		t.Error("PaperSpec() returned shared state")
	}
}

func TestRunSchemeProducesOneResultPerInterval(t *testing.T) {
	ls := smallLinks(t)
	res, err := RunScheme(ls.West, scheme.MustParse("load+single"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != ls.West.Intervals {
		t.Fatalf("results = %d, want %d", len(res), ls.West.Intervals)
	}
	for i, r := range res {
		if r.Interval != i {
			t.Fatalf("result %d has interval %d", i, r.Interval)
		}
		if r.ActiveFlows == 0 || r.TotalLoad <= 0 {
			t.Fatalf("interval %d: empty (%+v)", i, r)
		}
	}
}

// TestConstantLoadHitsTarget: without latent heat, the 0.8-constant-load
// scheme must apportion ≈80% of traffic to elephants by construction.
func TestConstantLoadHitsTarget(t *testing.T) {
	ls := smallLinks(t)
	res, err := RunScheme(ls.West, scheme.MustParse("load+single"))
	if err != nil {
		t.Fatal(err)
	}
	fr := analysis.MeanFloat(analysis.FractionSeries(res))
	if fr < 0.70 || fr > 0.90 {
		t.Errorf("single-feature 0.8-load fraction = %.3f, want ≈ 0.8", fr)
	}
}

// TestLatentHeatReducesChurn is the paper's central claim at test scale:
// versus single-feature classification, the latent-heat scheme must
// (a) lengthen mean elephant holding times by at least 2x,
// (b) cut single-interval elephants by at least 5x,
// (c) keep the elephant load fraction within 25% of the single-feature
//
//	value.
func TestLatentHeatReducesChurn(t *testing.T) {
	ls := smallLinks(t)
	for _, useAest := range []bool{false, true} {
		det := "load"
		if useAest {
			det = "aest"
		}
		single, err := RunScheme(ls.West, scheme.MustParse(det+"+single"))
		if err != nil {
			t.Fatal(err)
		}
		two, err := RunScheme(ls.West, scheme.MustParse(det+"+latent"))
		if err != nil {
			t.Fatal(err)
		}
		busy := 60
		f1, t1, err := analysis.BusyWindow(single, busy)
		if err != nil {
			t.Fatal(err)
		}
		f2, t2, err := analysis.BusyWindow(two, busy)
		if err != nil {
			t.Fatal(err)
		}
		h1 := analysis.HoldingTimes(single, f1, t1)
		h2 := analysis.HoldingTimes(two, f2, t2)

		if h2.MeanHolding < 2*h1.MeanHolding {
			t.Errorf("aest=%v: holding %0.1f -> %0.1f, want >= 2x", useAest, h1.MeanHolding, h2.MeanHolding)
		}
		if h1.SingleIntervalFlows < 5*h2.SingleIntervalFlows {
			t.Errorf("aest=%v: 1-slot flows %d -> %d, want >= 5x drop", useAest, h1.SingleIntervalFlows, h2.SingleIntervalFlows)
		}
		fr1 := analysis.MeanFloat(analysis.FractionSeries(single))
		fr2 := analysis.MeanFloat(analysis.FractionSeries(two))
		if fr2 < fr1*0.75 || fr2 > fr1*1.25 {
			t.Errorf("aest=%v: fraction %0.3f -> %0.3f drifted more than 25%%", useAest, fr1, fr2)
		}
	}
}

func TestRunFigure1Labels(t *testing.T) {
	ls := smallLinks(t)
	runs, err := RunFigure1(ls, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs))
	}
	want := map[string]bool{
		"constant load (west coast)": true,
		"aest (west coast)":          true,
		"constant load (east coast)": true,
		"aest (east coast)":          true,
	}
	for _, r := range runs {
		if !want[r.Label()] {
			t.Errorf("unexpected label %q", r.Label())
		}
		delete(want, r.Label())
	}
	if len(want) != 0 {
		t.Errorf("missing labels: %v", want)
	}
}

func TestFig1Extractors(t *testing.T) {
	ls := smallLinks(t)
	runs, err := RunFigure1(ls, true)
	if err != nil {
		t.Fatal(err)
	}
	counts := Fig1a(runs)
	fracs := Fig1b(runs)
	if len(counts) != 4 || len(fracs) != 4 {
		t.Fatal("series count")
	}
	for i := range counts {
		if len(counts[i].Values) != ls.Cfg.Intervals {
			t.Errorf("series %d: %d values", i, len(counts[i].Values))
		}
		for _, v := range fracs[i].Values {
			if v < 0 || v > 1 {
				t.Errorf("fraction %v out of [0,1]", v)
			}
		}
	}
	cres, err := Fig1c(runs, Fig1cConfig{BusyIntervals: 48, MaxBins: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cres {
		if len(r.Histogram) != 30 {
			t.Errorf("histogram bins = %d", len(r.Histogram))
		}
		if r.BusyTo-r.BusyFrom != 48 {
			t.Errorf("busy window = [%d,%d)", r.BusyFrom, r.BusyTo)
		}
		sum := 0
		for _, c := range r.Histogram {
			sum += c
		}
		if sum != r.Stats.Flows {
			t.Errorf("histogram mass %d != flows %d", sum, r.Stats.Flows)
		}
	}
	series := Fig1cSeries(cres)
	if len(series) != 4 {
		t.Errorf("Fig1cSeries = %d", len(series))
	}
}

func TestVolatilityClaims(t *testing.T) {
	ls := smallLinks(t)
	single, err := SingleFeatureVolatility(ls)
	if err != nil {
		t.Fatal(err)
	}
	two, err := TwoFeatureStability(ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 4 || len(two) != 4 {
		t.Fatal("expected 4 runs each")
	}
	for i := range single {
		if single[i].MeanHolding <= 0 || two[i].MeanHolding <= 0 {
			t.Fatalf("non-positive holding times")
		}
		if two[i].MeanHolding < single[i].MeanHolding {
			t.Errorf("%s: latent heat shortened holding (%v -> %v)",
				single[i].Run.Label(), single[i].MeanHolding, two[i].MeanHolding)
		}
	}
}

func TestPrefixLengthClaim(t *testing.T) {
	ls := smallLinks(t)
	rows, err := PrefixLength(ls)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Stats.TotalElephantFlows() == 0 {
			t.Fatalf("%s: no elephants", r.Run.Label())
		}
		// The paper's claim: elephant prefix lengths span a wide range,
		// i.e. prefix size does not determine elephant status.
		if r.Stats.MaxLen-r.Stats.MinLen < 8 {
			t.Errorf("%s: elephant lengths span only /%d-/%d", r.Run.Label(), r.Stats.MinLen, r.Stats.MaxLen)
		}
		// /8s must not dominate the elephant set.
		if r.Stats.ElephantSlash8 > r.Stats.TotalElephantFlows()/10 {
			t.Errorf("%s: %d of %d elephants are /8s", r.Run.Label(), r.Stats.ElephantSlash8, r.Stats.TotalElephantFlows())
		}
	}
}

func TestIntervalSensitivityRows(t *testing.T) {
	cfg := SmallConfig()
	cfg.Intervals = 48 // keep the 1-minute regeneration affordable
	rows, err := IntervalSensitivity(cfg,
		[]time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute},
		PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanElephants <= 0 {
			t.Errorf("%v: no elephants", r.Interval)
		}
		if r.MeanLoadFraction <= 0 || r.MeanLoadFraction > 1 {
			t.Errorf("%v: fraction %v", r.Interval, r.MeanLoadFraction)
		}
	}
	// The 5- and 10-minute rows see literally rebinned versions of the
	// same traffic: their load fractions must be within 30%.
	if a, b := rows[1].MeanLoadFraction, rows[2].MeanLoadFraction; a/b > 1.3 || b/a > 1.3 {
		t.Errorf("5m vs 10m fractions diverge: %v vs %v", a, b)
	}
}

func TestAblations(t *testing.T) {
	ls := smallLinks(t)
	alpha, err := AblationAlpha(ls, []float64{0.25, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha) != 3 {
		t.Fatal("alpha rows")
	}
	// Threshold smoothness (CV) must decrease with alpha.
	if !(alpha[2].ThresholdCV < alpha[0].ThresholdCV) {
		t.Errorf("alpha 0.9 CV %v not below alpha 0.25 CV %v", alpha[2].ThresholdCV, alpha[0].ThresholdCV)
	}

	window, err := AblationWindow(ls, []int{1, 12, 24})
	if err != nil {
		t.Fatal(err)
	}
	// Longer windows mean longer holding and fewer reclassifications.
	if !(window[2].MeanHoldingIntervals > window[0].MeanHoldingIntervals) {
		t.Errorf("W=24 holding %v not above W=1 %v", window[2].MeanHoldingIntervals, window[0].MeanHoldingIntervals)
	}
	if !(window[2].Reclassifications < window[0].Reclassifications) {
		t.Errorf("W=24 reclass %d not below W=1 %d", window[2].Reclassifications, window[0].Reclassifications)
	}

	beta, err := AblationBeta(ls, []float64{0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Higher beta -> lower threshold -> more elephants, more load.
	if !(beta[1].MeanElephants > beta[0].MeanElephants) {
		t.Errorf("beta 0.8 elephants %v not above beta 0.5 %v", beta[1].MeanElephants, beta[0].MeanElephants)
	}
	if !(beta[1].MeanLoadFraction > beta[0].MeanLoadFraction) {
		t.Errorf("beta 0.8 fraction %v not above beta 0.5 %v", beta[1].MeanLoadFraction, beta[0].MeanLoadFraction)
	}
}
