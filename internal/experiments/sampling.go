package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scheme"
)

// SamplingRow reports how classification degrades when bandwidths are
// estimated from 1-in-N packet sampling — the measurement mode (sampled
// NetFlow) backbone routers actually ran, and the natural deployment
// question for the paper's scheme.
type SamplingRow struct {
	// Rate is N in 1-in-N sampling (1 = unsampled ground truth).
	Rate int
	// MeanElephants is the run-wide average elephant count.
	MeanElephants float64
	// MeanLoadFraction is the run-wide average elephant load share,
	// measured against the *true* bandwidths.
	MeanLoadFraction float64
	// MeanJaccard is the average per-interval Jaccard similarity of the
	// sampled elephant set to the unsampled one.
	MeanJaccard float64
	// MeanHoldingIntervals is the busy-window mean holding time.
	MeanHoldingIntervals float64
}

// SamplingImpact classifies the west link from bandwidth estimates
// reconstructed under 1-in-N packet sampling, for each rate, and
// compares against the unsampled run. Sampling is simulated per
// (flow, interval): the packet count implied by the flow's true
// bandwidth is thinned binomially, then scaled back up by N — exactly
// the estimator sampled NetFlow used.
func SamplingImpact(ls *LinkSet, rates []int, sp *scheme.Spec) ([]SamplingRow, error) {
	if len(rates) == 0 {
		rates = []int{1, 10, 100, 1000}
	}
	const meanPacketBytes = 550 // backbone mean packet size of the era
	truth := ls.West

	ref, err := RunScheme(truth, sp)
	if err != nil {
		return nil, err
	}

	rows := make([]SamplingRow, 0, len(rates))
	for _, n := range rates {
		if n < 1 {
			return nil, fmt.Errorf("experiments: sampling rate %d < 1", n)
		}
		series := truth
		if n > 1 {
			series = sampleSeries(truth, n, meanPacketBytes, ls.Cfg.Seed+int64(n))
		}
		res, err := RunScheme(series, sp)
		if err != nil {
			return nil, fmt.Errorf("experiments: sampling 1-in-%d: %w", n, err)
		}

		var jacc, frac float64
		var snap *core.FlowSnapshot
		for i := range res {
			jacc += res[i].Elephants.Jaccard(ref[i].Elephants) / float64(len(res))
			// Load fraction against true bandwidths.
			var eleph float64
			snap = truth.Snapshot(i, snap)
			for k := 0; k < snap.Len(); k++ {
				if res[i].Elephants.Contains(snap.Key(k)) {
					eleph += snap.Bandwidth(k)
				}
			}
			if total := snap.TotalLoad(); total > 0 {
				frac += eleph / total / float64(len(res))
			}
		}
		busy := busySlots(ls.Cfg.Interval)
		if busy > len(res) {
			busy = len(res)
		}
		from, to, err := analysis.BusyWindow(res, busy)
		if err != nil {
			return nil, err
		}
		st := analysis.HoldingTimes(res, from, to)
		rows = append(rows, SamplingRow{
			Rate:                 n,
			MeanElephants:        analysis.MeanInt(analysis.CountSeries(res)),
			MeanLoadFraction:     frac,
			MeanJaccard:          jacc,
			MeanHoldingIntervals: st.MeanHolding,
		})
	}
	return rows, nil
}

// sampleSeries rebuilds the series from thinned packet counts.
func sampleSeries(s *agg.Series, n int, meanPacketBytes float64, seed int64) *agg.Series {
	rng := rand.New(rand.NewSource(seed))
	out := agg.NewSeries(s.Start, s.Interval, s.Intervals)
	secs := s.Interval.Seconds()
	for _, p := range s.Flows() {
		row, _ := s.Row(p)
		for t, bw := range row {
			if bw <= 0 {
				continue
			}
			pkts := bw * secs / 8 / meanPacketBytes
			sampled := binomialApprox(rng, pkts, 1/float64(n))
			if sampled == 0 {
				continue
			}
			estBits := float64(sampled) * float64(n) * meanPacketBytes * 8
			out.AddBits(p, t, estBits)
		}
	}
	return out
}

// binomialApprox draws Binomial(n, p) for possibly fractional n, using
// the Poisson limit (accurate for the small p of sampling).
func binomialApprox(rng *rand.Rand, n, p float64) int {
	lambda := n * p
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation deep in the safe regime.
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's Poisson sampler.
	l := math.Exp(-lambda)
	k, prod := 0, 1.0
	for {
		prod *= rng.Float64()
		if prod <= l {
			return k
		}
		k++
	}
}
