package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/agg"
	"repro/internal/analysis"
	"repro/internal/scheme"
)

// VolatilityResult quantifies, for one (scheme, link) run, the
// persistence of the elephant class: the quantities behind the paper's
// Section II (single-feature) and Section III (two-feature) claims.
type VolatilityResult struct {
	Run FigureRun
	// MeanHoldingIntervals is the across-flow mean of per-flow average
	// holding times in the elephant state, in measurement intervals,
	// over the busy window.
	MeanHoldingIntervals float64
	// MeanHolding is the same expressed as a duration.
	MeanHolding time.Duration
	// SingleIntervalFlows counts flows that were elephants for exactly
	// one interval (every visit length one).
	SingleIntervalFlows int
	// ElephantFlows is the number of distinct flows that entered the
	// elephant class in the busy window.
	ElephantFlows int
	// MeanElephants is the average per-interval elephant count over the
	// whole run.
	MeanElephants float64
	// MeanLoadFraction is the average fraction of traffic apportioned
	// to elephants over the whole run.
	MeanLoadFraction float64
}

// Volatility computes VolatilityResult for each run over its busiest
// window of busyIntervals slots (the paper's five-hour busy period is 60
// five-minute slots).
func Volatility(runs []FigureRun, interval time.Duration, busyIntervals int) ([]VolatilityResult, error) {
	out := make([]VolatilityResult, 0, len(runs))
	for _, r := range runs {
		window := busyIntervals
		if window > len(r.Results) {
			window = len(r.Results)
		}
		from, to, err := analysis.BusyWindow(r.Results, window)
		if err != nil {
			return nil, fmt.Errorf("experiments: volatility %s: %w", r.Label(), err)
		}
		st := analysis.HoldingTimes(r.Results, from, to)
		out = append(out, VolatilityResult{
			Run:                  r,
			MeanHoldingIntervals: st.MeanHolding,
			MeanHolding:          time.Duration(st.MeanHolding * float64(interval)),
			SingleIntervalFlows:  st.SingleIntervalFlows,
			ElephantFlows:        st.Flows,
			MeanElephants:        analysis.MeanInt(analysis.CountSeries(r.Results)),
			MeanLoadFraction:     analysis.MeanFloat(analysis.FractionSeries(r.Results)),
		})
	}
	return out, nil
}

// SingleFeatureVolatility reproduces the Section II claim: with
// single-feature classification, elephants hold their state for only
// 20–40 minutes on average and more than 1000 flows per link are
// elephants for a single interval.
func SingleFeatureVolatility(ls *LinkSet) ([]VolatilityResult, error) {
	runs, err := RunFigure1(ls, false)
	if err != nil {
		return nil, err
	}
	return Volatility(runs, ls.Cfg.Interval, busySlots(ls.Cfg.Interval))
}

// TwoFeatureStability reproduces the Section III claim: with the latent
// heat metric the average holding time rises to about two hours and
// single-interval elephants drop to about 50, with roughly 600 (west) /
// 500 (east) elephants on average carrying ≈0.6 of the traffic.
func TwoFeatureStability(ls *LinkSet) ([]VolatilityResult, error) {
	runs, err := RunFigure1(ls, true)
	if err != nil {
		return nil, err
	}
	return Volatility(runs, ls.Cfg.Interval, busySlots(ls.Cfg.Interval))
}

// SchemeStability computes the same stability metrics for one arbitrary
// scheme spec on both links — the registry-driven generalisation of
// TwoFeatureStability, so any registered scheme (baseline sketches
// included) can be scored on the paper's persistence axes.
func SchemeStability(ls *LinkSet, sp *scheme.Spec) ([]VolatilityResult, error) {
	runs, err := runMatrix(ls, []*scheme.Spec{sp})
	if err != nil {
		return nil, err
	}
	return Volatility(runs, ls.Cfg.Interval, busySlots(ls.Cfg.Interval))
}

// busySlots converts the paper's five-hour busy period to slots.
func busySlots(interval time.Duration) int {
	if interval <= 0 {
		return 60
	}
	n := int(5 * time.Hour / interval)
	if n < 1 {
		n = 1
	}
	return n
}

// PrefixLengthResult carries the Section III prefix-length analysis for
// one run.
type PrefixLengthResult struct {
	Run   FigureRun
	Stats analysis.PrefixLengthStats
}

// PrefixLength reproduces the Section III prefix-length observation:
// elephants span roughly /12–/26 and almost no /8 networks qualify,
// showing little correlation between prefix size and elephant status.
func PrefixLength(ls *LinkSet) ([]PrefixLengthResult, error) {
	runs, err := RunFigure1(ls, true)
	if err != nil {
		return nil, err
	}
	out := make([]PrefixLengthResult, 0, len(runs))
	for _, r := range runs {
		series := ls.West
		if r.Link == "east" {
			series = ls.East
		}
		out = append(out, PrefixLengthResult{Run: r, Stats: analysis.PrefixLengths(r.Results, series)})
	}
	return out, nil
}

// IntervalSensitivityRow summarises one measurement-interval choice.
type IntervalSensitivityRow struct {
	Interval time.Duration
	Scheme   string
	// MeanElephants and MeanLoadFraction are run-wide averages.
	MeanElephants    float64
	MeanLoadFraction float64
	// MeanHoldingMinutes is the busy-window mean holding time in
	// minutes (converted so rows are comparable across intervals).
	MeanHoldingMinutes float64
}

// IntervalSensitivity reproduces the Section II robustness note:
// "similar results were obtained for Delta = 1 min and Delta = 10 mins".
// The west link is generated once at a 1-minute base resolution and
// rebinned to each candidate interval, so every row sees the same
// underlying traffic.
func IntervalSensitivity(cfg LinksConfig, intervals []time.Duration, sp *scheme.Spec) ([]IntervalSensitivityRow, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute}
	}
	base := intervals[0]
	for _, iv := range intervals {
		if iv < base {
			base = iv
		}
	}
	cfg.defaults()
	// Regenerate at base resolution covering the same wall-clock span.
	span := time.Duration(cfg.Intervals) * cfg.Interval
	fine := cfg
	fine.Interval = base
	fine.Intervals = int(span / base)
	ls, err := BuildLinks(fine)
	if err != nil {
		return nil, err
	}
	rows := make([]IntervalSensitivityRow, 0, len(intervals))
	for _, iv := range intervals {
		series, err := rebinTo(ls.West, iv)
		if err != nil {
			return nil, fmt.Errorf("experiments: interval sensitivity at %v: %w", iv, err)
		}
		// The latent-heat window is one hour of slots at any interval.
		spAdj := sp
		if _, latent := sp.LatentWindow(); latent {
			w := int(time.Hour / iv)
			if w < 1 {
				w = 1
			}
			spAdj = sp.WithClassifierParam("window", strconv.Itoa(w))
		}
		res, err := RunScheme(series, spAdj)
		if err != nil {
			return nil, fmt.Errorf("experiments: interval sensitivity at %v: %w", iv, err)
		}
		busy := busySlots(iv)
		if busy > len(res) {
			busy = len(res)
		}
		from, to, err := analysis.BusyWindow(res, busy)
		if err != nil {
			return nil, err
		}
		st := analysis.HoldingTimes(res, from, to)
		rows = append(rows, IntervalSensitivityRow{
			Interval:           iv,
			Scheme:             spAdj.Name(),
			MeanElephants:      analysis.MeanInt(analysis.CountSeries(res)),
			MeanLoadFraction:   analysis.MeanFloat(analysis.FractionSeries(res)),
			MeanHoldingMinutes: st.MeanHolding * iv.Minutes(),
		})
	}
	return rows, nil
}

// rebinTo rebins, tolerating the identity case. The sensitivity sweep
// compares mean statistics, so the (reported) trailing intervals Rebin
// truncates on non-dividing factors are acceptable here.
func rebinTo(s *agg.Series, iv time.Duration) (*agg.Series, error) {
	if iv == s.Interval {
		return s, nil
	}
	out, _, err := s.Rebin(iv)
	return out, err
}
