package experiments

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scheme"
)

// BaselineRow compares one classification strategy on the stability
// metrics the paper cares about. It quantifies what the paper's adaptive
// threshold and latent-heat persistence buy over the rules operational
// tooling used: a static absolute threshold and the top-K talkers.
type BaselineRow struct {
	// Strategy names the classifier/detector combination.
	Strategy string
	// MeanElephants is the run-wide average elephant count.
	MeanElephants float64
	// MeanLoadFraction is the run-wide average elephant load share.
	MeanLoadFraction float64
	// LoadFractionCV is the coefficient of variation of the load share —
	// how predictable the elephant-path load is for a TE system.
	LoadFractionCV float64
	// CountCV is the coefficient of variation of the per-interval
	// elephant count. A fixed absolute threshold lets the count swing
	// with the diurnal load; adaptive detection keeps it stable.
	CountCV float64
	// MeanHoldingIntervals is the busy-window mean holding time.
	MeanHoldingIntervals float64
	// SingleIntervalFlows counts busy-window one-interval elephants.
	SingleIntervalFlows int
	// Reclassifications counts promotions+demotions over the whole run.
	Reclassifications int
	// MeanSetJaccard is the average Jaccard similarity of consecutive
	// elephant sets — membership stability, which a fixed count (top-K)
	// cannot fake.
	MeanSetJaccard float64
}

// BaselineComparison runs the paper's scheme (0.8-constant-load + latent
// heat) against every baseline the registry offers on the west link:
// fixed threshold, top-K talkers and the two heavy-hitter sketches. The
// fixed threshold is set "optimally in hindsight" to the run's mean
// adaptive threshold; K (and the sketches' counter budget) is set to the
// paper scheme's mean elephant count, so each baseline gets its best
// shot. Every strategy is a registry spec running through the same
// engine path as the paper's scheme.
func BaselineComparison(ls *LinkSet) ([]BaselineRow, error) {
	// Reference run: the paper's scheme.
	ref, err := RunScheme(ls.West, PaperSpec())
	if err != nil {
		return nil, err
	}
	var thetaSum float64
	for i := range ref {
		thetaSum += ref[i].Threshold
	}
	meanTheta := thetaSum / float64(len(ref))
	meanCount := analysis.MeanInt(analysis.CountSeries(ref))
	k := int(meanCount + 0.5)
	if k < 1 {
		k = 1
	}

	type strategy struct {
		name string
		spec string
	}
	strategies := []strategy{
		{"paper: 0.8-load + latent heat", ""}, // precomputed ref
		{"single-feature 0.8-load", "load+single"},
		{fmt.Sprintf("fixed threshold (%.2g b/s)", meanTheta),
			"fixed:theta=" + strconv.FormatFloat(meanTheta, 'f', -1, 64) + "+single"},
		{fmt.Sprintf("top-%d talkers", k), fmt.Sprintf("load+topk:k=%d", k)},
		{fmt.Sprintf("misra-gries sketch (k=%d)", k), fmt.Sprintf("load+misragries:k=%d", k)},
		{fmt.Sprintf("space-saving sketch (k=%d)", k), fmt.Sprintf("load+spacesaving:k=%d", k)},
	}

	// The five baseline strategies share one emit-once matrix run over
	// the west link: the series is emitted (and each interval's
	// bandwidth column sorted) once per interval for all of them, with
	// results byte-identical to per-strategy RunScheme calls.
	specs := make([]*scheme.Spec, 0, len(strategies)-1)
	for _, st := range strategies[1:] {
		sp, err := scheme.Parse(st.spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", st.name, err)
		}
		specs = append(specs, sp)
	}
	all, errs, err := RunSchemes(ls.West, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline matrix: %w", err)
	}

	rows := make([]BaselineRow, 0, len(strategies))
	for i, st := range strategies {
		results := ref
		if i > 0 {
			if errs[i-1] != nil {
				return nil, fmt.Errorf("experiments: baseline %s: %w", st.name, errs[i-1])
			}
			results = all[i-1]
		}
		row, err := summarizeBaseline(st.name, results, ls.Cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func summarizeBaseline(name string, results []core.Result, cfg LinksConfig) (BaselineRow, error) {
	busy := busySlots(cfg.Interval)
	if busy > len(results) {
		busy = len(results)
	}
	from, to, err := analysis.BusyWindow(results, busy)
	if err != nil {
		return BaselineRow{}, err
	}
	st := analysis.HoldingTimes(results, from, to)
	tc := analysis.Transitions(results, 0, len(results))
	fracs := analysis.FractionSeries(results)
	mean := analysis.MeanFloat(fracs)
	counts := analysis.CountSeries(results)
	return BaselineRow{
		Strategy:             name,
		MeanElephants:        analysis.MeanInt(counts),
		MeanLoadFraction:     mean,
		LoadFractionCV:       cvFloat(fracs, mean),
		CountCV:              cvInt(counts),
		MeanHoldingIntervals: st.MeanHolding,
		SingleIntervalFlows:  st.SingleIntervalFlows,
		Reclassifications:    tc.Promotions + tc.Demotions,
		MeanSetJaccard:       analysis.Stability(results).MeanJaccard,
	}, nil
}

// cvFloat returns the coefficient of variation of xs given its mean.
func cvFloat(xs []float64, mean float64) float64 {
	if mean <= 0 || len(xs) == 0 {
		return 0
	}
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	return math.Sqrt(m2/float64(len(xs))) / mean
}

// cvInt returns the coefficient of variation of an integer series.
func cvInt(xs []int) float64 {
	fs := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		fs[i] = float64(x)
		sum += fs[i]
	}
	if len(fs) == 0 {
		return 0
	}
	return cvFloat(fs, sum/float64(len(fs)))
}
