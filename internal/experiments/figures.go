package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scheme"
)

// FigureRun is one (scheme, link) combination with its per-interval
// classification results.
type FigureRun struct {
	// Scheme is the spec that produced the run.
	Scheme *scheme.Spec
	// Link is "west" or "east".
	Link string
	// Results holds one entry per measurement interval.
	Results []core.Result
}

// Label returns the legend label used in the figures, matching the
// paper's for its two detectors — "constant load (west coast)",
// "aest (east coast)" — and falling back to the scheme's display name
// for any other registry spec routed through the figure harnesses.
func (r FigureRun) Label() string {
	var base string
	switch r.Scheme.Detector.Name {
	case "aest":
		base = "aest"
	case "load":
		base = "constant load"
	default:
		base = r.Scheme.Name()
	}
	return fmt.Sprintf("%s (%s coast)", base, r.Link)
}

// runMatrix fans the given specs over both evaluation links on the
// multi-link engine and reassembles the results link-major, spec-minor
// — the historical figure ordering. Results are identical to
// sequential execution.
func runMatrix(ls *LinkSet, specs []*scheme.Spec) ([]FigureRun, error) {
	links := ls.matrixLinks()
	eng := engine.MultiLinkEngine{}
	lrs, err := eng.RunMatrix(links, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: scheme matrix: %w", err)
	}
	done := make(map[string][]core.Result, len(lrs))
	for _, lr := range lrs {
		if lr.Err != nil {
			return nil, fmt.Errorf("experiments: scheme matrix run %s: %w", lr.ID, lr.Err)
		}
		done[lr.ID] = lr.Results
	}
	runs := make([]FigureRun, 0, len(links)*len(specs))
	for _, l := range links {
		for _, sp := range specs {
			runs = append(runs, FigureRun{Scheme: sp, Link: l.ID, Results: done[engine.MatrixID(l.ID, sp)]})
		}
	}
	return runs, nil
}

// RunFigure1 executes the four runs of Figure 1 — {0.8-constant-load,
// aest} × {west, east} — with the latent-heat metric switched as
// requested (the paper's Figure 1 has it on). The four runs are
// independent (scheme, link) cells of a registry matrix, executing
// concurrently on the multi-link engine.
func RunFigure1(ls *LinkSet, latentHeat bool) ([]FigureRun, error) {
	cls := "single"
	if latentHeat {
		cls = "latent"
	}
	return runMatrix(ls, []*scheme.Spec{
		scheme.MustParse("load+" + cls),
		scheme.MustParse("aest+" + cls),
	})
}

// Fig1a extracts the per-interval elephant-count series of Figure 1(a),
// one per run.
func Fig1a(runs []FigureRun) []report.Series {
	out := make([]report.Series, len(runs))
	for i, r := range runs {
		out[i] = report.Series{
			Label:  r.Label(),
			Values: report.IntsToFloats(analysis.CountSeries(r.Results)),
		}
	}
	return out
}

// Fig1b extracts the per-interval elephant traffic-fraction series of
// Figure 1(b), one per run.
func Fig1b(runs []FigureRun) []report.Series {
	out := make([]report.Series, len(runs))
	for i, r := range runs {
		out[i] = report.Series{
			Label:  r.Label(),
			Values: analysis.FractionSeries(r.Results),
		}
	}
	return out
}

// Fig1cConfig parameterises the holding-time histogram of Figure 1(c).
type Fig1cConfig struct {
	// BusyIntervals is the busy-period length over which holding times
	// are computed. The paper uses five hours; default is 5h of slots at
	// the run's interval, i.e. 60 for 5-minute slots.
	BusyIntervals int
	// MaxBins is the histogram upper edge in intervals. The paper's
	// x-axis runs to 60. Default 60.
	MaxBins int
}

func (c *Fig1cConfig) defaults() {
	if c.BusyIntervals == 0 {
		c.BusyIntervals = 60
	}
	if c.MaxBins == 0 {
		c.MaxBins = 60
	}
}

// Fig1cResult is one run's holding-time histogram plus the summary
// statistics quoted in the text.
type Fig1cResult struct {
	Run FigureRun
	// Histogram counts flows per unit holding-time bin (intervals).
	Histogram []int
	// Stats summarises the busy-window holding times.
	Stats analysis.HoldingStats
	// BusyFrom and BusyTo delimit the busy window used, in interval
	// indices.
	BusyFrom, BusyTo int
}

// Fig1c computes the holding-time histograms of Figure 1(c) over each
// run's busiest window.
func Fig1c(runs []FigureRun, cfg Fig1cConfig) ([]Fig1cResult, error) {
	cfg.defaults()
	out := make([]Fig1cResult, 0, len(runs))
	for _, r := range runs {
		window := cfg.BusyIntervals
		if window > len(r.Results) {
			window = len(r.Results)
		}
		from, to, err := analysis.BusyWindow(r.Results, window)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 1(c) %s: %w", r.Label(), err)
		}
		st := analysis.HoldingTimes(r.Results, from, to)
		out = append(out, Fig1cResult{
			Run:       r,
			Histogram: st.HoldingHistogram(cfg.MaxBins),
			Stats:     st,
			BusyFrom:  from,
			BusyTo:    to,
		})
	}
	return out, nil
}

// Fig1cSeries converts Fig1c results into chartable series (log-count
// histograms, as in the paper).
func Fig1cSeries(results []Fig1cResult) []report.Series {
	out := make([]report.Series, len(results))
	for i, r := range results {
		out[i] = report.Series{
			Label:  r.Run.Label(),
			Values: report.IntsToFloats(r.Histogram),
		}
	}
	return out
}
