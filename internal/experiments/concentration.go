package experiments

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/stats"
)

// ConcentrationRow quantifies the "elephants and mice phenomenon" the
// paper's introduction cites — a very small percentage of flows carrying
// the largest part of the information — on one link at one interval.
type ConcentrationRow struct {
	Link     string
	Interval int
	Flows    int
	// Gini is the Gini coefficient of the flow-bandwidth distribution.
	Gini float64
	// Top10Share and Top1Share are the volume fractions of the largest
	// 10% and 1% of flows.
	Top10Share, Top1Share float64
	// TailIndex is the aest tail-index estimate (0 when no tail found).
	TailIndex float64
}

// Concentration measures flow-volume concentration on both links at a
// busy, an average and a quiet interval.
func Concentration(ls *LinkSet) ([]ConcentrationRow, error) {
	var rows []ConcentrationRow
	for _, link := range []struct {
		name   string
		series *agg.Series
	}{{"west", ls.West}, {"east", ls.East}} {
		// Pick the busiest, the median-load and the quietest interval.
		busiest, quietest := 0, 0
		for t := 1; t < link.series.Intervals; t++ {
			if link.series.TotalBandwidth(t) > link.series.TotalBandwidth(busiest) {
				busiest = t
			}
			if link.series.TotalBandwidth(t) < link.series.TotalBandwidth(quietest) {
				quietest = t
			}
		}
		for _, t := range []int{busiest, link.series.Intervals / 2, quietest} {
			row, err := concentrationAt(link.name, link.series, t)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func concentrationAt(name string, s *agg.Series, t int) (ConcentrationRow, error) {
	snap := s.Snapshot(t, nil)
	// Copy the column: the stats helpers may reorder their input.
	bws := append([]float64(nil), snap.Bandwidths()...)
	if len(bws) == 0 {
		return ConcentrationRow{}, fmt.Errorf("experiments: interval %d of %s link is idle", t, name)
	}
	gini, err := stats.Gini(bws)
	if err != nil {
		return ConcentrationRow{}, err
	}
	top10, err := stats.TopShare(bws, 0.10)
	if err != nil {
		return ConcentrationRow{}, err
	}
	top1, err := stats.TopShare(bws, 0.01)
	if err != nil {
		return ConcentrationRow{}, err
	}
	res := stats.Aest(bws, stats.AestConfig{})
	tailIdx := 0.0
	if res.TailFound {
		tailIdx = res.Alpha
	}
	return ConcentrationRow{
		Link: name, Interval: t, Flows: len(bws),
		Gini: gini, Top10Share: top10, Top1Share: top1,
		TailIndex: tailIdx,
	}, nil
}
