package experiments

import (
	"strings"
	"testing"

	"repro/internal/scheme"
)

func TestBaselineComparison(t *testing.T) {
	// A full diurnal cycle: the fixed-threshold baseline only shows its
	// weakness when the load actually swings through day and night.
	cfg := SmallConfig()
	cfg.Intervals = 288 // 24 hours of 5-minute slots
	ls, err := BuildLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := BaselineComparison(ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	paper := rows[0]
	var single, fixed, topk, mg, ss *BaselineRow
	for i := range rows[1:] {
		r := &rows[i+1]
		switch {
		case r.Strategy == "single-feature 0.8-load":
			single = r
		case strings.HasPrefix(r.Strategy, "fixed"):
			fixed = r
		case strings.HasPrefix(r.Strategy, "top-"):
			topk = r
		case strings.HasPrefix(r.Strategy, "misra-gries"):
			mg = r
		case strings.HasPrefix(r.Strategy, "space-saving"):
			ss = r
		}
	}
	if single == nil || fixed == nil || topk == nil || mg == nil || ss == nil {
		t.Fatalf("strategies missing: %+v", rows)
	}
	// The sketch baselines must actually classify something.
	for _, b := range []*BaselineRow{mg, ss} {
		if b.MeanElephants <= 0 {
			t.Errorf("%s: no elephants", b.Strategy)
		}
	}
	// The paper's scheme must beat every baseline on churn.
	for _, b := range []*BaselineRow{single, fixed, topk, mg, ss} {
		if paper.Reclassifications >= b.Reclassifications {
			t.Errorf("paper scheme reclass %d not below %s's %d",
				paper.Reclassifications, b.Strategy, b.Reclassifications)
		}
		if paper.MeanHoldingIntervals <= b.MeanHoldingIntervals {
			t.Errorf("paper scheme holding %v not above %s's %v",
				paper.MeanHoldingIntervals, b.Strategy, b.MeanHoldingIntervals)
		}
	}
	// The fixed threshold is tuned in hindsight, so its mean load can
	// match; but over a diurnal cycle its elephant count must swing far
	// more than the adaptive scheme's.
	if fixed.CountCV <= paper.CountCV {
		t.Errorf("fixed-threshold count CV %v not above adaptive %v",
			fixed.CountCV, paper.CountCV)
	}
}

func TestConcentration(t *testing.T) {
	ls := smallLinks(t)
	rows, err := Concentration(ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 per link)", len(rows))
	}
	for _, r := range rows {
		// The elephants-and-mice premise: strong concentration.
		if r.Gini < 0.5 {
			t.Errorf("%s@%d: Gini %v too equal for backbone traffic", r.Link, r.Interval, r.Gini)
		}
		if r.Top10Share < 0.5 {
			t.Errorf("%s@%d: top 10%% carries only %v", r.Link, r.Interval, r.Top10Share)
		}
		if r.Top1Share >= r.Top10Share {
			t.Errorf("%s@%d: top1 %v >= top10 %v", r.Link, r.Interval, r.Top1Share, r.Top10Share)
		}
		if r.Flows <= 0 {
			t.Errorf("%s@%d: no flows", r.Link, r.Interval)
		}
	}
}

func TestSamplingImpact(t *testing.T) {
	ls := smallLinks(t)
	rows, err := SamplingImpact(ls, []int{1, 100}, PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	unsampled, sampled := rows[0], rows[1]
	if unsampled.MeanJaccard < 0.999 {
		t.Errorf("rate-1 run must match the reference: jaccard %v", unsampled.MeanJaccard)
	}
	// 1-in-100 sampling must still identify essentially the same
	// elephants: they are heavy, so their packet counts survive
	// thinning. This is the robustness property that made sampled
	// NetFlow usable for heavy-hitter work.
	if sampled.MeanJaccard < 0.75 {
		t.Errorf("1-in-100 jaccard %v, want > 0.75", sampled.MeanJaccard)
	}
	if sampled.MeanLoadFraction < unsampled.MeanLoadFraction*0.85 {
		t.Errorf("sampled run lost load coverage: %v vs %v",
			sampled.MeanLoadFraction, unsampled.MeanLoadFraction)
	}
	if sampled.MeanElephants <= 0 || sampled.MeanHoldingIntervals <= 0 {
		t.Errorf("degenerate sampled row: %+v", sampled)
	}
}

func TestSamplingImpactRejectsBadRate(t *testing.T) {
	ls := smallLinks(t)
	if _, err := SamplingImpact(ls, []int{0}, scheme.MustParse("load+single")); err == nil {
		t.Error("rate 0 accepted")
	}
}

func TestBaselineSetJaccard(t *testing.T) {
	ls := smallLinks(t)
	rows, err := BaselineComparison(ls)
	if err != nil {
		t.Fatal(err)
	}
	paper := rows[0]
	if paper.MeanSetJaccard <= 0 || paper.MeanSetJaccard > 1 {
		t.Fatalf("paper jaccard = %v", paper.MeanSetJaccard)
	}
	// The paper's scheme must keep membership more stable than every
	// baseline.
	for _, r := range rows[1:] {
		if r.MeanSetJaccard >= paper.MeanSetJaccard {
			t.Errorf("%s jaccard %v >= paper %v", r.Strategy, r.MeanSetJaccard, paper.MeanSetJaccard)
		}
	}
}
