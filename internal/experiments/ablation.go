package experiments

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scheme"
)

// AblationRow summarises one parameter setting of an ablation sweep.
type AblationRow struct {
	// Param names the swept parameter ("alpha", "window", "beta").
	Param string
	// Value is the parameter's value for the row.
	Value float64
	// MeanElephants is the run-wide average elephant count.
	MeanElephants float64
	// MeanLoadFraction is the run-wide average elephant load fraction.
	MeanLoadFraction float64
	// MeanHoldingIntervals is the busy-window mean holding time.
	MeanHoldingIntervals float64
	// SingleIntervalFlows counts one-interval elephants in the busy
	// window.
	SingleIntervalFlows int
	// ThresholdCV is the coefficient of variation of the smoothed
	// threshold series — the smoothness the EWMA is meant to provide.
	ThresholdCV float64
	// Reclassifications counts promotions+demotions over the run, a
	// direct churn measure.
	Reclassifications int
}

// sweepRows runs every scheme variant of one parameter sweep over the
// west link in a single emit-once matrix run and summarises each —
// the per-variant results are byte-identical to sequential RunScheme
// calls, but the series is emitted (and each interval's bandwidth
// column sorted) once per interval instead of once per variant.
func sweepRows(ls *LinkSet, specs []*scheme.Spec, param string, values []float64) ([]AblationRow, error) {
	all, errs, err := RunSchemes(ls.West, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation %s: %w", param, err)
	}
	rows := make([]AblationRow, 0, len(specs))
	for i := range specs {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: ablation %s=%v: %w", param, values[i], errs[i])
		}
		row, err := summarizeSweep(ls, all[i], param, values[i])
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// summarizeSweep condenses one variant's interval results into a row.
func summarizeSweep(ls *LinkSet, res []core.Result, param string, value float64) (AblationRow, error) {
	busy := busySlots(ls.Cfg.Interval)
	if busy > len(res) {
		busy = len(res)
	}
	from, to, err := analysis.BusyWindow(res, busy)
	if err != nil {
		return AblationRow{}, err
	}
	st := analysis.HoldingTimes(res, from, to)
	tc := analysis.Transitions(res, 0, len(res))

	// Coefficient of variation of θ̂(t).
	var sum, sumsq float64
	for i := range res {
		sum += res[i].Threshold
	}
	mean := sum / float64(len(res))
	for i := range res {
		d := res[i].Threshold - mean
		sumsq += d * d
	}
	cv := 0.0
	if mean > 0 {
		cv = math.Sqrt(sumsq/float64(len(res))) / mean
	}

	return AblationRow{
		Param:                param,
		Value:                value,
		MeanElephants:        analysis.MeanInt(analysis.CountSeries(res)),
		MeanLoadFraction:     analysis.MeanFloat(analysis.FractionSeries(res)),
		MeanHoldingIntervals: st.MeanHolding,
		SingleIntervalFlows:  st.SingleIntervalFlows,
		ThresholdCV:          cv,
		Reclassifications:    tc.Promotions + tc.Demotions,
	}, nil
}

// AblationAlpha sweeps the EWMA weight α of the threshold update. The
// paper settles on α = 0.5 as "sufficiently smooth"; the sweep shows the
// smoothness/adaptivity trade-off that motivates it.
func AblationAlpha(ls *LinkSet, alphas []float64) ([]AblationRow, error) {
	if len(alphas) == 0 {
		alphas = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	specs := make([]*scheme.Spec, 0, len(alphas))
	for _, a := range alphas {
		sp := PaperSpec()
		sp.Alpha = a
		if a == 0 {
			// Spec.Alpha treats 0 as unset; encode "no smoothing" as a
			// tiny epsilon that the pipeline accepts.
			sp.Alpha = 1e-9
		}
		specs = append(specs, sp)
	}
	return sweepRows(ls, specs, "alpha", alphas)
}

// AblationWindow sweeps the latent-heat window W. The paper uses 12
// slots (one hour); the sweep shows how persistence filtering scales
// with memory length.
func AblationWindow(ls *LinkSet, windows []int) ([]AblationRow, error) {
	if len(windows) == 0 {
		windows = []int{1, 6, 12, 24}
	}
	specs := make([]*scheme.Spec, 0, len(windows))
	values := make([]float64, 0, len(windows))
	for _, w := range windows {
		specs = append(specs, PaperSpec().WithClassifierParam("window", strconv.Itoa(w)))
		values = append(values, float64(w))
	}
	return sweepRows(ls, specs, "window", values)
}

// AblationBeta sweeps the constant-load target fraction β. The paper
// uses β = 0.8.
func AblationBeta(ls *LinkSet, betas []float64) ([]AblationRow, error) {
	if len(betas) == 0 {
		betas = []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	}
	specs := make([]*scheme.Spec, 0, len(betas))
	for _, b := range betas {
		specs = append(specs, PaperSpec().WithDetectorParam("beta", strconv.FormatFloat(b, 'f', -1, 64)))
	}
	return sweepRows(ls, specs, "beta", betas)
}

// SmallConfig returns a reduced LinksConfig suitable for unit tests and
// quick benchmark iterations: same structure, two orders of magnitude
// less work.
func SmallConfig() LinksConfig {
	return LinksConfig{
		Routes:    4000,
		Flows:     1500,
		Intervals: 96, // 8 hours of 5-minute slots
		Interval:  5 * time.Minute,
		Seed:      7,
	}
}
