// Package experiments contains the reproduction harness: one entry point
// per figure panel and per quantitative claim of the paper, shared by the
// cmd/experiments binary and the repository's benchmarks. Each harness
// builds the synthetic west/east links, runs the requested classification
// schemes, and returns the series/rows the paper reports.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scheme"
	"repro/internal/trace"
)

// LinksConfig sizes the synthetic evaluation setup. The zero value
// selects the paper-scale defaults (28 hours of 5-minute intervals on
// two OC-12 links); tests use smaller values.
type LinksConfig struct {
	// Routes is the BGP table size. Default 60000.
	Routes int
	// Flows is the number of active prefix flows per link.
	// Default 6500, calibrated so the average elephant count lands
	// near the paper's ~600 (west) / ~500 (east).
	Flows int
	// Intervals is the number of measurement slots. Default 336
	// (28 hours of 5-minute slots, 09:00 Jul 24 to 13:00 Jul 25).
	Intervals int
	// Interval is the measurement interval. Default 5 minutes.
	Interval time.Duration
	// Seed drives all synthesis. Default 1.
	Seed int64
	// MeanLoadBps is the daily-average link load. Default 300 Mbit/s
	// (an OC-12 at ~50% utilisation).
	MeanLoadBps float64
	// Shape overrides the synthetic flow-population shape; zero fields
	// keep the trace package defaults.
	Shape ShapeConfig
}

// ShapeConfig carries the optional flow-population shape overrides of
// LinksConfig; see trace.LinkConfig for the semantics of each field.
type ShapeConfig struct {
	TailIndex  float64
	TailShare  float64
	BodySigma  float64
	BurstSigma float64
	BurstRho   float64
}

func (c *LinksConfig) defaults() {
	if c.Routes == 0 {
		c.Routes = 60000
	}
	if c.Flows == 0 {
		c.Flows = 6500
	}
	if c.Intervals == 0 {
		c.Intervals = 336
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanLoadBps == 0 {
		c.MeanLoadBps = 300e6
	}
}

// TraceStart mirrors the paper's trace start: 09:00 local, Jul 24 2001.
var TraceStart = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)

// LinkSet bundles the two evaluation links and their shared BGP table.
type LinkSet struct {
	Table *bgp.Table
	West  *agg.Series
	East  *agg.Series
	Cfg   LinksConfig
}

// BuildLinks synthesizes the two-link evaluation setup deterministically
// from cfg.Seed.
func BuildLinks(cfg LinksConfig) (*LinkSet, error) {
	cfg.defaults()
	table, err := bgp.Generate(bgp.GenConfig{Routes: cfg.Routes, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: generating BGP table: %w", err)
	}
	west, err := trace.NewLink(trace.LinkConfig{
		Name:        "west",
		Profile:     trace.WestCoastProfile(),
		MeanLoadBps: cfg.MeanLoadBps,
		Flows:       cfg.Flows,
		Table:       table,
		Seed:        cfg.Seed + 100,
		TailIndex:   cfg.Shape.TailIndex,
		TailShare:   cfg.Shape.TailShare,
		BodySigma:   cfg.Shape.BodySigma,
		BurstSigma:  cfg.Shape.BurstSigma,
		BurstRho:    cfg.Shape.BurstRho,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building west link: %w", err)
	}
	east, err := trace.NewLink(trace.LinkConfig{
		Name:        "east",
		Profile:     trace.EastCoastProfile(),
		MeanLoadBps: cfg.MeanLoadBps * 0.9, // the east link runs a bit lighter
		Flows:       cfg.Flows * 5 / 6,     // paper: ~500 vs ~600 elephants
		Table:       table,
		Seed:        cfg.Seed + 200,
		TailIndex:   cfg.Shape.TailIndex,
		TailShare:   cfg.Shape.TailShare,
		BodySigma:   cfg.Shape.BodySigma,
		BurstSigma:  cfg.Shape.BurstSigma,
		BurstRho:    cfg.Shape.BurstRho,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building east link: %w", err)
	}
	ls := &LinkSet{Table: table, Cfg: cfg}
	ls.West = west.GenerateSeries(TraceStart, cfg.Interval, cfg.Intervals)
	ls.East = east.GenerateSeries(TraceStart, cfg.Interval, cfg.Intervals)
	return ls, nil
}

// PaperSpec parses the paper's headline scheme — 0.8-constant-load
// detection with the latent-heat classifier — as a fresh, independently
// mutable spec.
func PaperSpec() *scheme.Spec { return scheme.MustParse("load+latent") }

// RunScheme classifies every interval of series under the scheme spec
// and returns the per-interval results. Every registered scheme — the
// paper's and the baselines alike — runs through the same engine path.
func RunScheme(series *agg.Series, sp *scheme.Spec) ([]core.Result, error) {
	lr := engine.RunLink(engine.Link{ID: sp.String(), Series: series, Config: sp.Factory()})
	if lr.Err != nil {
		return nil, fmt.Errorf("experiments: scheme %s: %w", sp.Name(), lr.Err)
	}
	return lr.Results, nil
}

// RunSchemes classifies one series under every spec through a single
// emit-once matrix run: each interval's snapshot is emitted once and
// fanned into all spec pipelines, so an S-spec sweep pays one emission
// and one bandwidth sort per interval instead of S. Results come back
// in spec order, with a parallel per-spec error slice so sweeps can
// attribute failures; the outer error is structural (bad spec list,
// duplicate cell IDs). Per-spec results are byte-identical to
// RunScheme on the same series.
func RunSchemes(series *agg.Series, specs []*scheme.Spec) ([][]core.Result, []error, error) {
	eng := engine.MultiLinkEngine{}
	lrs, err := eng.RunMatrix([]engine.MatrixLink{{ID: "link", Series: series}}, specs)
	if err != nil {
		return nil, nil, err
	}
	byID := make(map[string]engine.LinkResult, len(lrs))
	for _, lr := range lrs {
		byID[lr.ID] = lr
	}
	results := make([][]core.Result, len(specs))
	errs := make([]error, len(specs))
	for i, sp := range specs {
		lr := byID[engine.MatrixID("link", sp)]
		results[i], errs[i] = lr.Results, lr.Err
	}
	return results, errs, nil
}

// matrixLinks exposes the two evaluation links as engine matrix work.
func (ls *LinkSet) matrixLinks() []engine.MatrixLink {
	return []engine.MatrixLink{
		{ID: "west", Series: ls.West},
		{ID: "east", Series: ls.East},
	}
}
