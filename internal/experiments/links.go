// Package experiments contains the reproduction harness: one entry point
// per figure panel and per quantitative claim of the paper, shared by the
// cmd/experiments binary and the repository's benchmarks. Each harness
// builds the synthetic west/east links, runs the requested classification
// schemes, and returns the series/rows the paper reports.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
)

// LinksConfig sizes the synthetic evaluation setup. The zero value
// selects the paper-scale defaults (28 hours of 5-minute intervals on
// two OC-12 links); tests use smaller values.
type LinksConfig struct {
	// Routes is the BGP table size. Default 60000.
	Routes int
	// Flows is the number of active prefix flows per link.
	// Default 6500, calibrated so the average elephant count lands
	// near the paper's ~600 (west) / ~500 (east).
	Flows int
	// Intervals is the number of measurement slots. Default 336
	// (28 hours of 5-minute slots, 09:00 Jul 24 to 13:00 Jul 25).
	Intervals int
	// Interval is the measurement interval. Default 5 minutes.
	Interval time.Duration
	// Seed drives all synthesis. Default 1.
	Seed int64
	// MeanLoadBps is the daily-average link load. Default 300 Mbit/s
	// (an OC-12 at ~50% utilisation).
	MeanLoadBps float64
	// Shape overrides the synthetic flow-population shape; zero fields
	// keep the trace package defaults.
	Shape ShapeConfig
}

// ShapeConfig carries the optional flow-population shape overrides of
// LinksConfig; see trace.LinkConfig for the semantics of each field.
type ShapeConfig struct {
	TailIndex  float64
	TailShare  float64
	BodySigma  float64
	BurstSigma float64
	BurstRho   float64
}

func (c *LinksConfig) defaults() {
	if c.Routes == 0 {
		c.Routes = 60000
	}
	if c.Flows == 0 {
		c.Flows = 6500
	}
	if c.Intervals == 0 {
		c.Intervals = 336
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanLoadBps == 0 {
		c.MeanLoadBps = 300e6
	}
}

// TraceStart mirrors the paper's trace start: 09:00 local, Jul 24 2001.
var TraceStart = time.Date(2001, time.July, 24, 9, 0, 0, 0, time.UTC)

// LinkSet bundles the two evaluation links and their shared BGP table.
type LinkSet struct {
	Table *bgp.Table
	West  *agg.Series
	East  *agg.Series
	Cfg   LinksConfig
}

// BuildLinks synthesizes the two-link evaluation setup deterministically
// from cfg.Seed.
func BuildLinks(cfg LinksConfig) (*LinkSet, error) {
	cfg.defaults()
	table, err := bgp.Generate(bgp.GenConfig{Routes: cfg.Routes, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: generating BGP table: %w", err)
	}
	west, err := trace.NewLink(trace.LinkConfig{
		Name:        "west",
		Profile:     trace.WestCoastProfile(),
		MeanLoadBps: cfg.MeanLoadBps,
		Flows:       cfg.Flows,
		Table:       table,
		Seed:        cfg.Seed + 100,
		TailIndex:   cfg.Shape.TailIndex,
		TailShare:   cfg.Shape.TailShare,
		BodySigma:   cfg.Shape.BodySigma,
		BurstSigma:  cfg.Shape.BurstSigma,
		BurstRho:    cfg.Shape.BurstRho,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building west link: %w", err)
	}
	east, err := trace.NewLink(trace.LinkConfig{
		Name:        "east",
		Profile:     trace.EastCoastProfile(),
		MeanLoadBps: cfg.MeanLoadBps * 0.9, // the east link runs a bit lighter
		Flows:       cfg.Flows * 5 / 6,     // paper: ~500 vs ~600 elephants
		Table:       table,
		Seed:        cfg.Seed + 200,
		TailIndex:   cfg.Shape.TailIndex,
		TailShare:   cfg.Shape.TailShare,
		BodySigma:   cfg.Shape.BodySigma,
		BurstSigma:  cfg.Shape.BurstSigma,
		BurstRho:    cfg.Shape.BurstRho,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building east link: %w", err)
	}
	ls := &LinkSet{Table: table, Cfg: cfg}
	ls.West = west.GenerateSeries(TraceStart, cfg.Interval, cfg.Intervals)
	ls.East = east.GenerateSeries(TraceStart, cfg.Interval, cfg.Intervals)
	return ls, nil
}

// SchemeConfig selects a classification scheme variant.
type SchemeConfig struct {
	// UseAest selects the aest detector; otherwise β-constant-load.
	UseAest bool
	// Beta is the constant-load target fraction. Default 0.8.
	Beta float64
	// Alpha is the EWMA weight. Default 0.5.
	Alpha float64
	// LatentHeat enables the two-feature classifier.
	LatentHeat bool
	// Window is the latent-heat window in slots. Default 12.
	Window int
}

func (c *SchemeConfig) defaults() {
	if c.Beta == 0 {
		c.Beta = 0.8
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Window == 0 {
		c.Window = 12
	}
}

// Name returns the scheme label used in figures, e.g.
// "aest+latent-heat" or "0.80-constant-load".
func (c SchemeConfig) Name() string {
	c.defaults()
	var base string
	if c.UseAest {
		base = "aest"
	} else {
		base = fmt.Sprintf("%.2f-constant-load", c.Beta)
	}
	if c.LatentHeat {
		return base + "+latent-heat"
	}
	return base
}

// NewConfig builds a fresh pipeline configuration (detector +
// classifier instances) for the scheme. Each call returns independent
// state, so the result can be used as an engine.Link config factory.
func (c SchemeConfig) NewConfig() (core.Config, error) {
	c.defaults()
	var det core.Detector
	if c.UseAest {
		det = core.NewAestDetector()
	} else {
		d, err := core.NewConstantLoadDetector(c.Beta)
		if err != nil {
			return core.Config{}, err
		}
		det = d
	}
	var cls core.Classifier
	if c.LatentHeat {
		lh, err := core.NewLatentHeatClassifier(c.Window)
		if err != nil {
			return core.Config{}, err
		}
		cls = lh
	} else {
		cls = core.SingleFeatureClassifier{}
	}
	return core.Config{Detector: det, Alpha: c.Alpha, Classifier: cls}, nil
}

// Link wraps a series under the scheme as an engine work unit.
func (c SchemeConfig) Link(id string, series *agg.Series) engine.Link {
	return engine.Link{ID: id, Series: series, Config: c.NewConfig}
}

// StreamLink wraps a live record source under the scheme as a streaming
// engine work unit — the bounded-memory twin of Link.
func (c SchemeConfig) StreamLink(id string, src agg.RecordSource, start time.Time, interval time.Duration, window int) engine.StreamLink {
	return engine.StreamLink{ID: id, Source: src, Start: start, Interval: interval, Window: window, Config: c.NewConfig}
}

// RunScheme classifies every interval of series under the scheme and
// returns the per-interval results.
func RunScheme(series *agg.Series, sc SchemeConfig) ([]core.Result, error) {
	sc.defaults()
	lr := engine.RunLink(sc.Link(sc.Name(), series))
	if lr.Err != nil {
		return nil, fmt.Errorf("experiments: scheme %s: %w", sc.Name(), lr.Err)
	}
	return lr.Results, nil
}
