package stats

import (
	"math"
	"sort"
)

// SortPositive sorts xs ascending in place. xs must hold strictly
// positive, finite float64s; tmp is ping-pong storage with len(tmp) >=
// len(xs). For positive IEEE-754 doubles the unsigned bit-pattern order
// equals numeric order, so an LSD radix sort over the eight bytes
// yields exactly the sequence a comparison sort would (duplicates have
// identical bit patterns, making stability unobservable) — at O(n)
// instead of O(n log n), which matters because sorting dominated the
// aest detect stage's profile. Callers off the hot path, or with
// possibly non-positive values, should use sort.Float64s instead.
func SortPositive(xs, tmp []float64) {
	n := len(xs)
	if n < 128 {
		// Below the radix break-even; output is identical either way.
		sort.Float64s(xs)
		return
	}
	tmp = tmp[:n]
	var counts [8][256]int
	for _, x := range xs {
		b := math.Float64bits(x)
		for d := 0; d < 8; d++ {
			counts[d][(b>>(8*d))&0xff]++
		}
	}
	src, dst := xs, tmp
	for d := 0; d < 8; d++ {
		c := &counts[d]
		// A byte position where every element agrees (common in the
		// exponent bytes of same-magnitude samples) permutes nothing.
		if c[(math.Float64bits(src[0])>>(8*d))&0xff] == n {
			continue
		}
		sum := 0
		for i := range c {
			c[i], sum = sum, sum+c[i]
		}
		for _, x := range src {
			by := (math.Float64bits(x) >> (8 * d)) & 0xff
			dst[c[by]] = x
			c[by]++
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}
