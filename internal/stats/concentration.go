package stats

import (
	"fmt"
	"sort"
)

// This file quantifies the "elephants and mice phenomenon" the paper's
// introduction cites: a very small percentage of the flows carries the
// largest part of the information. The Lorenz curve and Gini coefficient
// are the standard concentration measures; TopShare answers the popular
// "what fraction of traffic do the top p% of flows carry" phrasing.

// Lorenz returns the Lorenz curve of the non-negative sample xs: points
// (F[i], L[i]) where F[i] is the cumulative fraction of flows (sorted
// ascending by size) and L[i] the cumulative fraction of volume. The
// curve starts at the first sample point; (0,0) is implicit. Negative
// and NaN values are rejected.
func Lorenz(xs []float64) (f, l []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("stats: Lorenz of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	var total float64
	for _, x := range sorted {
		if x < 0 || x != x {
			return nil, nil, fmt.Errorf("stats: Lorenz: invalid value %v", x)
		}
		total += x
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("stats: Lorenz: zero total volume")
	}
	sort.Float64s(sorted)
	n := float64(len(sorted))
	f = make([]float64, len(sorted))
	l = make([]float64, len(sorted))
	var cum float64
	for i, x := range sorted {
		cum += x
		f[i] = float64(i+1) / n
		l[i] = cum / total
	}
	return f, l, nil
}

// Gini computes the Gini coefficient of the non-negative sample: 0 for
// perfectly equal flows, approaching 1 when a single flow carries
// everything. Backbone flow-size distributions typically exceed 0.9.
func Gini(xs []float64) (float64, error) {
	f, l, err := Lorenz(xs)
	if err != nil {
		return 0, err
	}
	// Gini = 1 - 2 * area under the Lorenz curve (trapezoidal, with the
	// implicit origin).
	var area float64
	prevF, prevL := 0.0, 0.0
	for i := range f {
		area += (f[i] - prevF) * (l[i] + prevL) / 2
		prevF, prevL = f[i], l[i]
	}
	return 1 - 2*area, nil
}

// TopShare returns the fraction of total volume carried by the largest
// p-fraction of flows (0 < p <= 1). TopShare(xs, 0.1) = 0.9 reads "the
// top 10% of flows carry 90% of the traffic".
func TopShare(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: TopShare of empty sample")
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("stats: TopShare fraction %v outside (0,1]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := int(p*float64(len(sorted)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	var top, total float64
	for i, x := range sorted {
		if x < 0 || x != x {
			return 0, fmt.Errorf("stats: TopShare: invalid value %v", x)
		}
		total += x
		if i < k {
			top += x
		}
	}
	if total <= 0 {
		return 0, fmt.Errorf("stats: TopShare: zero total volume")
	}
	return top / total, nil
}
