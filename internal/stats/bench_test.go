package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	return pareto(rng, n, 1.5, 1)
}

func BenchmarkAest10k(b *testing.B) {
	xs := benchSample(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Aest(xs, AestConfig{})
		if !res.TailFound {
			b.Fatal("no tail on pure Pareto")
		}
	}
}

func BenchmarkNewCCDF10k(b *testing.B) {
	xs := benchSample(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCCDF(xs)
		if c.Len() == 0 {
			b.Fatal("empty CCDF")
		}
	}
}

func BenchmarkQuantile10k(b *testing.B) {
	xs := benchSample(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.95)
	}
}

func BenchmarkHill10k(b *testing.B) {
	xs := benchSample(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hill(xs, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGini10k(b *testing.B) {
	xs := benchSample(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Gini(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarize10k(b *testing.B) {
	xs := benchSample(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
