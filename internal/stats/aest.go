package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the "aest" heavy-tail estimator of Crovella and
// Taqqu ("Estimating the Heavy Tail Index from Scaling Properties",
// Methodology and Computing in Applied Probability, 1999) — reference [1]
// of the paper. The estimator exploits the single-large-jump property of
// heavy-tailed sums: if X has a power-law tail with index alpha, the
// m-fold aggregate X^(m) (sums over non-overlapping blocks of size m)
// satisfies P[X^(m) > x] ≈ m · P[X > x] deep in the tail, so complementary
// distribution plots at successive aggregation levels are parallel lines
// in log-log space, offset horizontally by log(m2/m1)/alpha and
// vertically by log(m2/m1). aest estimates alpha from the measured
// horizontal offsets and reports the *tail onset*: the smallest abscissa
// beyond which the scaling relation (and a straight-line CCDF) holds.
//
// The paper uses the tail onset directly as the elephant separation
// threshold theta(t).

// AestConfig tunes the estimator. The zero value selects defaults
// matching the published tool's behaviour on datasets of 10^3–10^5
// points.
type AestConfig struct {
	// AggregationLevels lists block sizes m for the aggregates; the
	// base level 1 is implicit. Defaults to {2, 4, 8}.
	AggregationLevels []int
	// MinTailPoints is the minimum number of distinct CCDF support
	// points the detected tail must span. Defaults to 10.
	MinTailPoints int
	// SlopeTolerance bounds the allowed relative disagreement between
	// tail slopes across aggregation levels. Aggregates of samples with
	// tail index approaching 2 bend towards Gaussian behaviour at
	// moderate probabilities, steepening their near-onset slope, so the
	// tolerance is generous. Defaults to 0.45.
	SlopeTolerance float64
	// MinR2 is the minimum goodness of the log-log linear fit in the
	// tail at every level. Defaults to 0.97.
	MinR2 float64
	// CandidateQuantiles are the sample quantiles used as candidate
	// tail-onset abscissas, scanned in order. Defaults to the 25 values
	// 0.50, 0.52, ..., 0.98.
	CandidateQuantiles []float64
	// MinSlopeAlpha rejects candidates whose base-level log-log slope
	// implies a tail index at or below this value. A detected "tail"
	// with index <= 1 would have infinite mean — impossible for
	// quantities bounded by a finite link capacity — and in practice
	// marks the deceptively straight upper body of a lognormal.
	// Defaults to 1.0.
	MinSlopeAlpha float64
}

func (c *AestConfig) defaults() {
	if len(c.AggregationLevels) == 0 {
		c.AggregationLevels = []int{2, 4, 8}
	}
	if c.MinTailPoints == 0 {
		c.MinTailPoints = 10
	}
	if c.SlopeTolerance == 0 {
		c.SlopeTolerance = 0.45
	}
	if c.MinR2 == 0 {
		c.MinR2 = 0.97
	}
	if len(c.CandidateQuantiles) == 0 {
		qs := make([]float64, 0, 25)
		for q := 0.50; q <= 0.981; q += 0.02 {
			qs = append(qs, q)
		}
		c.CandidateQuantiles = qs
	}
	if c.MinSlopeAlpha == 0 {
		c.MinSlopeAlpha = 1.0
	}
}

// AestResult reports the estimator's findings.
type AestResult struct {
	// TailFound reports whether any candidate onset satisfied the
	// scaling criteria.
	TailFound bool
	// TailOnset is the abscissa after which power-law behaviour holds;
	// the paper sets theta(t) to this value.
	TailOnset float64
	// Alpha is the tail index estimated from inter-level horizontal
	// shifts (the aest estimate proper).
	Alpha float64
	// SlopeAlpha is the tail index implied by the base-level log-log
	// slope, a sanity cross-check (slope ≈ -alpha).
	SlopeAlpha float64
	// TailFraction is the fraction of the sample beyond the onset.
	TailFraction float64
	// Levels records the per-aggregation-level tail slopes actually
	// fitted, for diagnostics.
	Levels []AestLevel
}

// AestLevel is a per-aggregation-level diagnostic.
type AestLevel struct {
	M     int     // aggregation block size
	Slope float64 // fitted log-log tail slope
	R2    float64
	N     int // tail points used in the fit
}

// Aggregate returns the m-aggregated series: sums over consecutive
// non-overlapping blocks of size m. The trailing partial block is
// dropped. Aggregate panics on m < 1, a programmer error.
func Aggregate(xs []float64, m int) []float64 {
	if m < 1 {
		panic(fmt.Sprintf("stats: Aggregate: block size %d < 1", m))
	}
	if m == 1 {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	n := len(xs) / m
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += xs[i*m+j]
		}
		out[i] = s
	}
	return out
}

// Aest runs the scaling estimator on the sample xs. It needs on the
// order of a few hundred positive observations; smaller samples return
// TailFound == false rather than an error, because "no detectable tail"
// is an expected outcome the classifier must handle (it falls back to a
// quantile threshold).
func Aest(xs []float64, cfg AestConfig) AestResult {
	positive := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			positive = append(positive, x)
		}
	}
	sorted := make([]float64, len(positive))
	copy(sorted, positive)
	sort.Float64s(sorted)
	return AestSorted(positive, sorted, cfg)
}

// AestSorted is Aest for callers that already hold both views of the
// sample: xs in its original observation order (block aggregation is
// order-sensitive, so this must be the as-measured sequence) and
// sorted, the same values in ascending order. It skips the estimator's
// internal sorts — one per candidate quantile in earlier revisions —
// and produces output identical to Aest. Both slices must contain only
// positive, finite values (the snapshot-bandwidth invariant) and are
// not modified.
func AestSorted(xs, sorted []float64, cfg AestConfig) AestResult {
	cfg.defaults()
	var res AestResult

	positive := xs
	base := NewCCDFSorted(sorted)
	if base.Len() < cfg.MinTailPoints*2 {
		return res
	}

	// Aggregated CCDFs, computed once.
	aggCCDF := make([]CCDF, len(cfg.AggregationLevels))
	for i, m := range cfg.AggregationLevels {
		if m < 2 {
			continue
		}
		agg := Aggregate(positive, m)
		aggCCDF[i] = NewCCDF(agg)
	}

	for _, q := range cfg.CandidateQuantiles {
		onset := QuantileSorted(sorted, q)
		levels, ok := fitLevels(base, aggCCDF, cfg, onset)
		if !ok {
			continue
		}
		alpha, ok := shiftAlpha(base, aggCCDF, cfg, onset)
		if !ok {
			continue
		}
		res.TailFound = true
		res.TailOnset = onset
		res.Alpha = alpha
		res.SlopeAlpha = -levels[0].Slope
		res.Levels = levels
		tail := 0
		for _, x := range positive {
			if x > onset {
				tail++
			}
		}
		res.TailFraction = float64(tail) / float64(len(positive))
		return res
	}
	return res
}

// fitLevels fits log-log tail lines at every aggregation level beyond
// onset and checks straightness and cross-level slope agreement.
func fitLevels(base CCDF, aggs []CCDF, cfg AestConfig, onset float64) ([]AestLevel, bool) {
	fit := func(c CCDF, m int, from float64) (AestLevel, bool) {
		tail := c.TailFrom(from)
		if tail.Len() < cfg.MinTailPoints {
			return AestLevel{}, false
		}
		lx, lp := tail.LogLog()
		f, err := FitLine(lx, lp)
		if err != nil || f.R2 < cfg.MinR2 || f.Slope >= 0 {
			return AestLevel{}, false
		}
		return AestLevel{M: m, Slope: f.Slope, R2: f.R2, N: tail.Len()}, true
	}

	levels := make([]AestLevel, 0, 1+len(aggs))
	l0, ok := fit(base, 1, onset)
	if !ok {
		return nil, false
	}
	if -l0.Slope <= cfg.MinSlopeAlpha {
		return nil, false
	}
	levels = append(levels, l0)
	// The m-aggregate's distribution is shifted right by roughly m·E[X],
	// so its scaling region does not start at the base onset abscissa.
	// Crovella–Taqqu compare levels at *equal tail probability*: the
	// aggregate is fitted from its own abscissa carrying the same CCDF
	// mass as the base onset. In the scaling regime the two log-log
	// tails are then parallel lines.
	pOnset := base.At(onset)
	eligible, passed := 0, 0
	for i, c := range aggs {
		if c.Len() == 0 {
			continue
		}
		m := cfg.AggregationLevels[i]
		from, ok := c.InverseAt(pOnset)
		if !ok {
			continue
		}
		if c.TailFrom(from).Len() < cfg.MinTailPoints {
			continue // too few points to confirm or deny at this level
		}
		eligible++
		l, ok := fit(c, m, from)
		if !ok {
			continue
		}
		if rel := math.Abs(l.Slope-l0.Slope) / math.Abs(l0.Slope); rel > cfg.SlopeTolerance {
			continue
		}
		passed++
		levels = append(levels, l)
	}
	// The base level establishes straightness beyond the onset; the
	// aggregation levels confirm the scaling relation. High aggregation
	// levels of samples with alpha near 2 legitimately bend (CLT
	// competition), so a majority of the eligible levels must confirm
	// rather than all of them.
	if eligible == 0 || passed*2 < eligible+1 {
		return nil, false
	}
	return levels, true
}

// shiftAlpha estimates alpha from horizontal offsets between successive
// aggregation levels: at equal tail probability p, log-abscissas differ
// by log(m)/alpha.
func shiftAlpha(base CCDF, aggs []CCDF, cfg AestConfig, onset float64) (float64, bool) {
	pStart := base.At(onset)
	if pStart <= 0 {
		return 0, false
	}
	// The single-large-jump relation P[X^(m) > x] ≈ m·P[X > x] holds
	// deep in the tail; at moderate probabilities the aggregate is
	// instead shifted by m·E[X], which would bias alpha towards 1. So
	// probe the deepest usable probabilities of each aggregate — from a
	// few points above its resolution floor upwards — rather than just
	// below the onset probability.
	var estimates []float64
	for i, c := range aggs {
		if c.Len() == 0 {
			continue
		}
		m := float64(cfg.AggregationLevels[i])
		floor := 5.0 / float64(c.Len()+1) // stay above the last few points
		for k := 0; k <= 4; k++ {
			p := floor * math.Pow(2, float64(k))
			if p >= pStart {
				break
			}
			x1, ok1 := base.InverseAt(p)
			x2, ok2 := c.InverseAt(p)
			if !ok1 || !ok2 || x2 <= x1 || x1 <= 0 {
				continue
			}
			dx := math.Log10(x2) - math.Log10(x1)
			if dx <= 0 {
				continue
			}
			estimates = append(estimates, math.Log10(m)/dx)
		}
	}
	if len(estimates) < 3 {
		return 0, false
	}
	// Median for robustness against the discreteness of small CCDFs.
	return Quantile(estimates, 0.5), true
}

// Hill computes the Hill estimator of the tail index using the k largest
// order statistics. It is the classical cross-check for aest; k is
// typically 5–15% of the sample. It returns an error for k out of range
// or non-positive order statistics.
func Hill(xs []float64, k int) (float64, error) {
	if k < 2 || k >= len(xs) {
		return 0, fmt.Errorf("stats: Hill: k=%d out of range for n=%d", k, len(xs))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := len(sorted)
	xk := sorted[n-1-k] // the (k+1)-th largest order statistic
	if xk <= 0 {
		return 0, fmt.Errorf("stats: Hill: order statistic x_(k)=%v is not positive", xk)
	}
	var sum float64
	for i := n - k; i < n; i++ {
		sum += math.Log(sorted[i] / xk)
	}
	if sum == 0 {
		return 0, fmt.Errorf("stats: Hill: degenerate top-k (all equal)")
	}
	return float64(k) / sum, nil
}
