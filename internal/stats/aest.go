package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the "aest" heavy-tail estimator of Crovella and
// Taqqu ("Estimating the Heavy Tail Index from Scaling Properties",
// Methodology and Computing in Applied Probability, 1999) — reference [1]
// of the paper. The estimator exploits the single-large-jump property of
// heavy-tailed sums: if X has a power-law tail with index alpha, the
// m-fold aggregate X^(m) (sums over non-overlapping blocks of size m)
// satisfies P[X^(m) > x] ≈ m · P[X > x] deep in the tail, so complementary
// distribution plots at successive aggregation levels are parallel lines
// in log-log space, offset horizontally by log(m2/m1)/alpha and
// vertically by log(m2/m1). aest estimates alpha from the measured
// horizontal offsets and reports the *tail onset*: the smallest abscissa
// beyond which the scaling relation (and a straight-line CCDF) holds.
//
// The paper uses the tail onset directly as the elephant separation
// threshold theta(t).

// AestConfig tunes the estimator. The zero value selects defaults
// matching the published tool's behaviour on datasets of 10^3–10^5
// points.
type AestConfig struct {
	// AggregationLevels lists block sizes m for the aggregates; the
	// base level 1 is implicit. Defaults to {2, 4, 8}.
	AggregationLevels []int
	// MinTailPoints is the minimum number of distinct CCDF support
	// points the detected tail must span. Defaults to 10.
	MinTailPoints int
	// SlopeTolerance bounds the allowed relative disagreement between
	// tail slopes across aggregation levels. Aggregates of samples with
	// tail index approaching 2 bend towards Gaussian behaviour at
	// moderate probabilities, steepening their near-onset slope, so the
	// tolerance is generous. Defaults to 0.45.
	SlopeTolerance float64
	// MinR2 is the minimum goodness of the log-log linear fit in the
	// tail at every level. Defaults to 0.97.
	MinR2 float64
	// CandidateQuantiles are the sample quantiles used as candidate
	// tail-onset abscissas, scanned in order. Defaults to the 25 values
	// 0.50, 0.52, ..., 0.98.
	CandidateQuantiles []float64
	// MinSlopeAlpha rejects candidates whose base-level log-log slope
	// implies a tail index at or below this value. A detected "tail"
	// with index <= 1 would have infinite mean — impossible for
	// quantities bounded by a finite link capacity — and in practice
	// marks the deceptively straight upper body of a lognormal.
	// Defaults to 1.0.
	MinSlopeAlpha float64
	// WantLevels requests the per-aggregation-level fit diagnostics in
	// AestResult.Levels. Off by default: the diagnostics slice is the
	// one estimator output that must escape to the heap per call, and
	// the classification pipeline only ever consumes TailOnset.
	WantLevels bool
}

// Shared immutable defaults: defaults() hands these slices out by
// reference instead of rebuilding them per call, so a zero AestConfig
// costs no allocations. They must never be mutated.
var (
	defaultAggregationLevels  = []int{2, 4, 8}
	defaultCandidateQuantiles = func() []float64 {
		qs := make([]float64, 0, 25)
		for q := 0.50; q <= 0.981; q += 0.02 {
			qs = append(qs, q)
		}
		return qs
	}()
)

func (c *AestConfig) defaults() {
	if len(c.AggregationLevels) == 0 {
		c.AggregationLevels = defaultAggregationLevels
	}
	if c.MinTailPoints == 0 {
		c.MinTailPoints = 10
	}
	if c.SlopeTolerance == 0 {
		c.SlopeTolerance = 0.45
	}
	if c.MinR2 == 0 {
		c.MinR2 = 0.97
	}
	if len(c.CandidateQuantiles) == 0 {
		c.CandidateQuantiles = defaultCandidateQuantiles
	}
	if c.MinSlopeAlpha == 0 {
		c.MinSlopeAlpha = 1.0
	}
}

// AestResult reports the estimator's findings.
type AestResult struct {
	// TailFound reports whether any candidate onset satisfied the
	// scaling criteria.
	TailFound bool
	// TailOnset is the abscissa after which power-law behaviour holds;
	// the paper sets theta(t) to this value.
	TailOnset float64
	// Alpha is the tail index estimated from inter-level horizontal
	// shifts (the aest estimate proper).
	Alpha float64
	// SlopeAlpha is the tail index implied by the base-level log-log
	// slope, a sanity cross-check (slope ≈ -alpha).
	SlopeAlpha float64
	// TailFraction is the fraction of the sample beyond the onset.
	TailFraction float64
	// Levels records the per-aggregation-level tail slopes actually
	// fitted. Populated only when AestConfig.WantLevels is set; nil
	// otherwise, so the steady-state detection path allocates nothing.
	Levels []AestLevel
}

// AestLevel is a per-aggregation-level diagnostic.
type AestLevel struct {
	M     int     // aggregation block size
	Slope float64 // fitted log-log tail slope
	R2    float64
	N     int // tail points used in the fit
}

// Aggregate returns the m-aggregated series: sums over consecutive
// non-overlapping blocks of size m. The trailing partial block is
// dropped. Aggregate panics on m < 1, a programmer error.
func Aggregate(xs []float64, m int) []float64 {
	n := len(xs)
	if m > 1 {
		n = len(xs) / m
	}
	return AggregateInto(make([]float64, 0, n), xs, m)
}

// AggregateInto is Aggregate appending into dst's storage instead of
// allocating — the variant the aest scratch arena uses. It returns the
// extended slice (the block sums appended after dst's existing
// elements) with identical values and float summation order to
// Aggregate. It panics on m < 1, a programmer error.
func AggregateInto(dst, xs []float64, m int) []float64 {
	if m < 1 {
		panic(fmt.Sprintf("stats: Aggregate: block size %d < 1", m))
	}
	if m == 1 {
		return append(dst, xs...)
	}
	n := len(xs) / m
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += xs[i*m+j]
		}
		dst = append(dst, s)
	}
	return dst
}

// AestScratch owns the estimator's reusable working storage: the
// positive/sorted sample copies, one flat float64 arena carved per call
// into aggregate buffers, CCDF support arrays and their precomputed
// log-log coordinates, and the per-level fit records. A warm scratch
// makes Aest/AestSorted allocation-free (diagnostics excepted — see
// AestConfig.WantLevels).
//
// Ownership rules: a scratch belongs to one goroutine at a time and
// every buffer it hands out is invalidated by the next Aest/AestSorted
// call on the same scratch — nothing reachable from an AestResult
// aliases the scratch (Levels, when requested, is a fresh copy), so
// results outlive the scratch freely. The zero value is ready to use;
// detectors embed one per instance and the engine's prepass workers own
// one each.
type AestScratch struct {
	positive []float64 // Aest entry: filtered observation-order copy
	sorted   []float64 // Aest entry: ascending copy of positive
	tmp      []float64 // radix-sort ping-pong storage
	buf      []float64 // flat arena, carved front-to-back per call
	dists    []aestDist
	levels   []AestLevel
}

// ensureTmp returns the sort scratch buffer sized for n elements.
func (s *AestScratch) ensureTmp(n int) []float64 {
	if cap(s.tmp) < n {
		s.tmp = make([]float64, n)
	}
	return s.tmp[:n]
}

// aestDist is one aggregation level's empirical CCDF together with its
// precomputed log10 coordinates: earlier revisions re-derived the
// log-log view of the (heavily overlapping) tails once per candidate
// quantile, which dominated the estimator's cost.
type aestDist struct {
	c      CCDF
	lx, lp []float64 // log10 of c.X / c.P, index-aligned
}

// ensure sizes the arena for one call; take carves from it. Carved
// regions are capacity-capped sub-slices, so a defensive regrow in take
// never lets two regions alias.
func (s *AestScratch) ensure(n int) {
	s.buf = s.buf[:0]
	if cap(s.buf) < n {
		s.buf = make([]float64, 0, n)
	}
}

func (s *AestScratch) take(n int) []float64 {
	if len(s.buf)+n > cap(s.buf) {
		// ensure() undershot (non-default config shapes); start a fresh
		// chunk — regions already carved keep the old array alive.
		s.buf = make([]float64, 0, n+4096)
	}
	out := s.buf[len(s.buf) : len(s.buf)+n : len(s.buf)+n]
	s.buf = s.buf[:len(s.buf)+n]
	return out
}

// newDist builds the CCDF of an ascending-sorted positive sample into
// arena storage and precomputes its log-log coordinates. Support values
// are identical to NewCCDF on the same sample.
func (s *AestScratch) newDist(clean []float64) aestDist {
	x := s.take(len(clean))[:0]
	p := s.take(len(clean))[:0]
	c := ccdfAppendSorted(clean, x, p)
	lx := s.take(c.Len())
	lp := s.take(c.Len())
	for i := range c.X {
		lx[i] = math.Log10(c.X[i])
		lp[i] = math.Log10(c.P[i])
	}
	return aestDist{c: c, lx: lx, lp: lp}
}

// Aest runs the scaling estimator on the sample xs. It needs on the
// order of a few hundred positive observations; smaller samples return
// TailFound == false rather than an error, because "no detectable tail"
// is an expected outcome the classifier must handle (it falls back to a
// quantile threshold).
func Aest(xs []float64, cfg AestConfig) AestResult {
	var s AestScratch
	return s.Aest(xs, cfg)
}

// Aest is the package-level Aest running on the scratch's reusable
// storage: identical output, no steady-state allocations once warm.
func (s *AestScratch) Aest(xs []float64, cfg AestConfig) AestResult {
	if cap(s.positive) < len(xs) {
		s.positive = make([]float64, 0, len(xs))
	}
	s.positive = s.positive[:0]
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			s.positive = append(s.positive, x)
		}
	}
	s.sorted = append(s.sorted[:0], s.positive...)
	SortPositive(s.sorted, s.ensureTmp(len(s.sorted)))
	return s.AestSorted(s.positive, s.sorted, cfg)
}

// AestSorted is Aest for callers that already hold both views of the
// sample: xs in its original observation order (block aggregation is
// order-sensitive, so this must be the as-measured sequence) and
// sorted, the same values in ascending order. It skips the estimator's
// internal sorts — one per candidate quantile in earlier revisions —
// and produces output identical to Aest. Both slices must contain only
// positive, finite values (the snapshot-bandwidth invariant) and are
// not modified.
func AestSorted(xs, sorted []float64, cfg AestConfig) AestResult {
	var s AestScratch
	return s.AestSorted(xs, sorted, cfg)
}

// AestSorted is the package-level AestSorted on the scratch's reusable
// storage: identical output, no steady-state allocations once warm.
func (s *AestScratch) AestSorted(xs, sorted []float64, cfg AestConfig) AestResult {
	cfg.defaults()
	var res AestResult

	positive := xs
	lo := 0
	for lo < len(sorted) && sorted[lo] <= 0 {
		lo++
	}
	clean := sorted[lo:]

	need := 4*len(clean) + 5*len(cfg.AggregationLevels) + 16
	for _, m := range cfg.AggregationLevels {
		if m >= 2 {
			need += 5*(len(positive)/m) + 8
		}
	}
	s.ensure(need)
	if cap(s.levels) < len(cfg.AggregationLevels)+1 {
		s.levels = make([]AestLevel, 0, len(cfg.AggregationLevels)+1)
	}

	base := s.newDist(clean)
	if base.c.Len() < cfg.MinTailPoints*2 {
		return res
	}

	// Aggregated CCDFs, computed once. The aggregate buffer is sorted in
	// place — it exists only to feed the CCDF, whose support is what
	// NewCCDF of the unsorted aggregate would produce.
	if cap(s.dists) < len(cfg.AggregationLevels) {
		s.dists = make([]aestDist, 0, len(cfg.AggregationLevels))
	}
	s.dists = s.dists[:0]
	for _, m := range cfg.AggregationLevels {
		var d aestDist
		if m >= 2 {
			agg := AggregateInto(s.take(len(positive) / m)[:0], positive, m)
			SortPositive(agg, s.ensureTmp(len(agg)))
			d = s.newDist(agg)
		}
		s.dists = append(s.dists, d)
	}

	for _, q := range cfg.CandidateQuantiles {
		onset := QuantileSorted(sorted, q)
		levels, ok := s.fitLevels(base, cfg, onset)
		if !ok {
			continue
		}
		alpha, ok := s.shiftAlpha(base, cfg, onset)
		if !ok {
			continue
		}
		res.TailFound = true
		res.TailOnset = onset
		res.Alpha = alpha
		res.SlopeAlpha = -levels[0].Slope
		if cfg.WantLevels {
			res.Levels = append([]AestLevel(nil), levels...)
		}
		tail := 0
		for _, x := range positive {
			if x > onset {
				tail++
			}
		}
		res.TailFraction = float64(tail) / float64(len(positive))
		return res
	}
	return res
}

// fitLevels fits log-log tail lines at every aggregation level beyond
// onset and checks straightness and cross-level slope agreement. The
// returned slice is scratch storage, valid until the next fitLevels
// call.
func (s *AestScratch) fitLevels(base aestDist, cfg AestConfig, onset float64) ([]AestLevel, bool) {
	fit := func(d aestDist, m int, from float64) (AestLevel, bool) {
		i := sort.SearchFloat64s(d.c.X, from)
		if d.c.Len()-i < cfg.MinTailPoints {
			return AestLevel{}, false
		}
		f, err := FitLine(d.lx[i:], d.lp[i:])
		if err != nil || f.R2 < cfg.MinR2 || f.Slope >= 0 {
			return AestLevel{}, false
		}
		return AestLevel{M: m, Slope: f.Slope, R2: f.R2, N: d.c.Len() - i}, true
	}

	levels := s.levels[:0]
	l0, ok := fit(base, 1, onset)
	if !ok {
		return nil, false
	}
	if -l0.Slope <= cfg.MinSlopeAlpha {
		return nil, false
	}
	levels = append(levels, l0)
	// The m-aggregate's distribution is shifted right by roughly m·E[X],
	// so its scaling region does not start at the base onset abscissa.
	// Crovella–Taqqu compare levels at *equal tail probability*: the
	// aggregate is fitted from its own abscissa carrying the same CCDF
	// mass as the base onset. In the scaling regime the two log-log
	// tails are then parallel lines.
	pOnset := base.c.At(onset)
	eligible, passed := 0, 0
	for i, d := range s.dists {
		if d.c.Len() == 0 {
			continue
		}
		m := cfg.AggregationLevels[i]
		from, ok := d.c.InverseAt(pOnset)
		if !ok {
			continue
		}
		if d.c.TailFrom(from).Len() < cfg.MinTailPoints {
			continue // too few points to confirm or deny at this level
		}
		eligible++
		l, ok := fit(d, m, from)
		if !ok {
			continue
		}
		if rel := math.Abs(l.Slope-l0.Slope) / math.Abs(l0.Slope); rel > cfg.SlopeTolerance {
			continue
		}
		passed++
		levels = append(levels, l)
	}
	s.levels = levels
	// The base level establishes straightness beyond the onset; the
	// aggregation levels confirm the scaling relation. High aggregation
	// levels of samples with alpha near 2 legitimately bend (CLT
	// competition), so a majority of the eligible levels must confirm
	// rather than all of them.
	if eligible == 0 || passed*2 < eligible+1 {
		return nil, false
	}
	return levels, true
}

// shiftAlpha estimates alpha from horizontal offsets between successive
// aggregation levels: at equal tail probability p, log-abscissas differ
// by log(m)/alpha.
func (s *AestScratch) shiftAlpha(base aestDist, cfg AestConfig, onset float64) (float64, bool) {
	pStart := base.c.At(onset)
	if pStart <= 0 {
		return 0, false
	}
	// The single-large-jump relation P[X^(m) > x] ≈ m·P[X > x] holds
	// deep in the tail; at moderate probabilities the aggregate is
	// instead shifted by m·E[X], which would bias alpha towards 1. So
	// probe the deepest usable probabilities of each aggregate — from a
	// few points above its resolution floor upwards — rather than just
	// below the onset probability.
	estimates := s.take(5 * len(s.dists))[:0]
	for i, d := range s.dists {
		if d.c.Len() == 0 {
			continue
		}
		m := float64(cfg.AggregationLevels[i])
		floor := 5.0 / float64(d.c.Len()+1) // stay above the last few points
		for k := 0; k <= 4; k++ {
			p := floor * math.Pow(2, float64(k))
			if p >= pStart {
				break
			}
			x1, ok1 := base.c.InverseAt(p)
			x2, ok2 := d.c.InverseAt(p)
			if !ok1 || !ok2 || x2 <= x1 || x1 <= 0 {
				continue
			}
			dx := math.Log10(x2) - math.Log10(x1)
			if dx <= 0 {
				continue
			}
			estimates = append(estimates, math.Log10(m)/dx)
		}
	}
	if len(estimates) < 3 {
		return 0, false
	}
	// Median for robustness against the discreteness of small CCDFs.
	// The estimates are scratch-owned, so sorting in place is free.
	sort.Float64s(estimates)
	return QuantileSorted(estimates, 0.5), true
}

// Hill computes the Hill estimator of the tail index using the k largest
// order statistics. It is the classical cross-check for aest; k is
// typically 5–15% of the sample. It returns an error for k out of range
// or non-positive order statistics.
func Hill(xs []float64, k int) (float64, error) {
	if k < 2 || k >= len(xs) {
		return 0, fmt.Errorf("stats: Hill: k=%d out of range for n=%d", k, len(xs))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return HillSorted(sorted, k)
}

// HillSorted is Hill for callers that already hold the sample sorted
// ascending, skipping the copy and sort; output is identical to Hill.
// The input is not modified.
func HillSorted(sorted []float64, k int) (float64, error) {
	if k < 2 || k >= len(sorted) {
		return 0, fmt.Errorf("stats: Hill: k=%d out of range for n=%d", k, len(sorted))
	}
	n := len(sorted)
	xk := sorted[n-1-k] // the (k+1)-th largest order statistic
	if xk <= 0 {
		return 0, fmt.Errorf("stats: Hill: order statistic x_(k)=%v is not positive", xk)
	}
	var sum float64
	for i := n - k; i < n; i++ {
		sum += math.Log(sorted[i] / xk)
	}
	if sum == 0 {
		return 0, fmt.Errorf("stats: Hill: degenerate top-k (all equal)")
	}
	return float64(k) / sum, nil
}
