// Package stats provides the statistical machinery of the reproduction:
// empirical distributions (CDF/CCDF), log-log least squares, the
// Crovella–Taqqu "aest" scaling estimator for heavy-tail onset and index,
// a Hill estimator used as a cross-check, EWMA smoothing, histograms and
// quantiles. Everything is deterministic and stdlib-only.
//
// Hot-path estimator calls run on an AestScratch, a caller-owned arena
// of reusable buffers; see its doc for the ownership rules (one
// goroutine per scratch, buffers invalidated by the next call, results
// never alias the arena).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moment statistics of a sample.
type Summary struct {
	N        int
	Sum      float64
	Mean     float64
	Variance float64 // unbiased (n-1) estimator; zero for N < 2
	StdDev   float64
	Min, Max float64
}

// Summarize computes moment statistics in one pass (Welford update for
// numerical stability). An empty sample returns the zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.N = len(xs)
	s.Min, s.Max = xs[0], xs[0]
	var mean, m2 float64
	for i, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	s.Mean = mean
	if s.N > 1 {
		s.Variance = m2 / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted; a sorted
// copy is made. It panics on an empty sample or out-of-range q, which are
// programmer errors.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile fraction %v out of [0,1]", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for already-sorted input, avoiding the copy.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: QuantileSorted of empty sample")
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// EWMA is an exponentially weighted moving average with the paper's
// convention: next = alpha*current + (1-alpha)*observation. With alpha =
// 0.5 (the paper's choice) old state and new observation weigh equally.
type EWMA struct {
	Alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing weight on the *old*
// value, matching θ̂(t+1) = α·θ̂(t) + (1−α)·θ(t) from the paper.
func NewEWMA(alpha float64) *EWMA {
	if !(alpha >= 0 && alpha <= 1) { // also rejects NaN
		panic(fmt.Sprintf("stats: EWMA alpha %v out of [0,1]", alpha))
	}
	return &EWMA{Alpha: alpha}
}

// Update folds one observation in and returns the new smoothed value. The
// first observation initializes the average.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return e.value
	}
	e.value = e.Alpha*e.value + (1-e.Alpha)*x
	return e.value
}

// Value returns the current smoothed value (zero before any update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Reset clears the average to its pre-initialization state.
func (e *EWMA) Reset() { e.value, e.init = 0, false }
