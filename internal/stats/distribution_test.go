package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCCDFSmall(t *testing.T) {
	// Sample {1, 2, 2, 4}: P[x>1]=3/4, P[x>2]=1/4, P[x>4]=0 (dropped).
	c := NewCCDF([]float64{4, 2, 1, 2})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (max point carries no mass)", c.Len())
	}
	if c.X[0] != 1 || !almostEqual(c.P[0], 0.75, 1e-12) {
		t.Errorf("point 0 = (%v, %v), want (1, 0.75)", c.X[0], c.P[0])
	}
	if c.X[1] != 2 || !almostEqual(c.P[1], 0.25, 1e-12) {
		t.Errorf("point 1 = (%v, %v), want (2, 0.25)", c.X[1], c.P[1])
	}
}

func TestNewCCDFDropsJunk(t *testing.T) {
	c := NewCCDF([]float64{-1, 0, math.NaN(), math.Inf(1), math.Inf(-1), 5, 10})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only 5 and 10 are usable; 10 is max)", c.Len())
	}
	if c.X[0] != 5 || c.P[0] != 0.5 {
		t.Errorf("point = (%v, %v), want (5, 0.5)", c.X[0], c.P[0])
	}
}

func TestNewCCDFEmpty(t *testing.T) {
	for _, xs := range [][]float64{nil, {}, {-1, 0}} {
		if c := NewCCDF(xs); c.Len() != 0 {
			t.Errorf("NewCCDF(%v).Len() = %d, want 0", xs, c.Len())
		}
	}
}

func TestCCDFAt(t *testing.T) {
	c := NewCCDF([]float64{1, 2, 2, 4})
	cases := []struct {
		v, want float64
	}{
		{0.5, 1},    // below support: everything exceeds
		{1, 0.75},   // at a support point
		{1.5, 0.75}, // between: step function
		{2, 0.25},
		{3, 0.25},
		{4, 0.25}, // at the max (last stored P)
		{5, 0.25}, // beyond support: At clamps to last stored point
	}
	for _, tc := range cases {
		if got := c.At(tc.v); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestCCDFAtEmpty(t *testing.T) {
	var c CCDF
	if got := c.At(1); got != 0 {
		t.Errorf("empty CCDF At = %v, want 0", got)
	}
}

func TestCCDFInverseAt(t *testing.T) {
	c := NewCCDF([]float64{1, 2, 2, 4})
	if x, ok := c.InverseAt(0.75); !ok || x != 1 {
		t.Errorf("InverseAt(0.75) = %v, %v", x, ok)
	}
	if x, ok := c.InverseAt(0.5); !ok || x != 2 {
		t.Errorf("InverseAt(0.5) = %v, %v (first point with P <= 0.5)", x, ok)
	}
	if _, ok := c.InverseAt(-0.1); ok {
		t.Error("InverseAt(-0.1) should fail: no support point is that rare")
	}
}

func TestCCDFTailFrom(t *testing.T) {
	c := NewCCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	tail := c.TailFrom(4)
	if tail.Len() == 0 || tail.X[0] < 4 {
		t.Fatalf("TailFrom(4) starts at %v", tail.X)
	}
	for i := range tail.X {
		if tail.X[i] < 4 {
			t.Errorf("tail contains %v < 4", tail.X[i])
		}
	}
	// Degenerate: from beyond the maximum.
	if tl := c.TailFrom(100); tl.Len() != 0 {
		t.Errorf("TailFrom(100).Len() = %d, want 0", tl.Len())
	}
}

// TestCCDFMonotone: the CCDF is non-increasing everywhere, strictly
// decreasing over its stored support, for arbitrary inputs.
func TestCCDFMonotone(t *testing.T) {
	prop := func(raw []float64) bool {
		c := NewCCDF(raw)
		for i := 1; i < c.Len(); i++ {
			if c.X[i] <= c.X[i-1] || c.P[i] >= c.P[i-1] {
				return false
			}
		}
		for i := 0; i < c.Len(); i++ {
			if c.P[i] <= 0 || c.P[i] >= 1.0+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCCDFMassConservation: At(x) equals the exact fraction of samples
// strictly greater than x, for random samples and probes.
func TestCCDFMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Ceil(rng.Float64() * 20) // ties on purpose
	}
	c := NewCCDF(xs)
	for probe := 0.0; probe <= 22; probe += 0.5 {
		exact := 0
		for _, x := range xs {
			if x > probe {
				exact++
			}
		}
		want := float64(exact) / float64(len(xs))
		got := c.At(probe)
		// Beyond the max the CCDF clamps to its smallest stored mass.
		if probe >= c.X[c.Len()-1] {
			continue
		}
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("At(%v) = %v, exact fraction %v", probe, got, want)
		}
	}
}

func TestFitLineExact(t *testing.T) {
	// y = 3x - 2, exact fit.
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*x[i] - 2
	}
	f, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 3, 1e-12) || !almostEqual(f.Intercept, -2, 1e-12) {
		t.Errorf("fit = %+v, want slope 3 intercept -2", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = float64(i) / 10
		y[i] = -1.5*x[i] + 7 + rng.NormFloat64()*0.01
	}
	f, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope+1.5) > 0.01 {
		t.Errorf("Slope = %v, want ≈ -1.5", f.Slope)
	}
	if f.R2 < 0.999 {
		t.Errorf("R2 = %v, want ≈ 1 for tiny noise", f.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths: expected error")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point: expected error")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x: expected error")
	}
}

func TestFitLineConstantY(t *testing.T) {
	f, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || f.R2 != 1 {
		t.Errorf("constant y: fit = %+v, want slope 0 R2 1", f)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins [0,2) [2,4) [4,6) [6,8) [8,10)
	for _, x := range []float64{0, 1.99, 2, 5, 9.999} {
		h.Add(x)
	}
	h.Add(-0.1) // underflow
	h.Add(10)   // overflow (half-open upper edge)
	want := []int{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under=%d over=%d, want 1, 1", h.Underflow, h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	for _, tc := range []struct {
		min, max float64
		bins     int
	}{{0, 10, 0}, {0, 10, -1}, {5, 5, 3}, {6, 5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d): expected panic", tc.min, tc.max, tc.bins)
				}
			}()
			NewHistogram(tc.min, tc.max, tc.bins)
		}()
	}
}

// TestHistogramConservation: every added in-range value lands in exactly
// one bin.
func TestHistogramConservation(t *testing.T) {
	prop := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 17)
		added := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			added++
		}
		return h.Total()+h.Underflow+h.Overflow == added
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
