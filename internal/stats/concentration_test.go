package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLorenzEqualFlows(t *testing.T) {
	f, l, err := Lorenz([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if math.Abs(f[i]-l[i]) > 1e-12 {
			t.Errorf("equal flows: Lorenz point (%v, %v) off the diagonal", f[i], l[i])
		}
	}
}

func TestLorenzMonotoneAndConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 2)
	}
	f, l, err := Lorenz(xs)
	if err != nil {
		t.Fatal(err)
	}
	if f[len(f)-1] != 1 || math.Abs(l[len(l)-1]-1) > 1e-12 {
		t.Errorf("curve must end at (1,1): (%v, %v)", f[len(f)-1], l[len(l)-1])
	}
	for i := range f {
		if l[i] > f[i]+1e-12 {
			t.Errorf("Lorenz curve above diagonal at %d: (%v, %v)", i, f[i], l[i])
		}
		if i > 0 && (f[i] <= f[i-1] || l[i] < l[i-1]) {
			t.Errorf("curve not monotone at %d", i)
		}
	}
}

func TestLorenzErrors(t *testing.T) {
	if _, _, err := Lorenz(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := Lorenz([]float64{1, -2}); err == nil {
		t.Error("negative value accepted")
	}
	if _, _, err := Lorenz([]float64{0, 0}); err == nil {
		t.Error("zero-volume sample accepted")
	}
}

func TestGiniExtremes(t *testing.T) {
	g, err := Gini([]float64{7, 7, 7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 || g > 0.01 {
		t.Errorf("equal flows: Gini = %v, want ≈ 0", g)
	}
	// One flow dominating 1000.
	xs := make([]float64, 1000)
	xs[0] = 1e12
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-6
	}
	g, err = Gini(xs)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.99 {
		t.Errorf("single dominant flow: Gini = %v, want ≈ 1", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// For {1, 3}: Lorenz points (0.5, 0.25), (1, 1).
	// Area = 0.5*(0+0.25)/2 + 0.5*(0.25+1)/2 = 0.0625 + 0.3125 = 0.375.
	// Gini = 1 - 0.75 = 0.25.
	g, err := Gini([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-0.25) > 1e-12 {
		t.Errorf("Gini({1,3}) = %v, want 0.25", g)
	}
}

func TestGiniScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	scaled := make([]float64, len(xs))
	for i := range xs {
		scaled[i] = xs[i] * 1e9
	}
	a, _ := Gini(xs)
	b, _ := Gini(scaled)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("Gini not scale-invariant: %v vs %v", a, b)
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{90, 5, 3, 1, 1} // top 20% (1 of 5 flows) carries 0.9
	got, err := TopShare(xs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TopShare = %v, want 0.9", got)
	}
	if got, _ := TopShare(xs, 1); got != 1 {
		t.Errorf("TopShare(1) = %v", got)
	}
}

func TestTopShareErrors(t *testing.T) {
	if _, err := TopShare(nil, 0.1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := TopShare([]float64{1}, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := TopShare([]float64{1}, 1.1); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := TopShare([]float64{math.NaN()}, 0.5); err == nil {
		t.Error("NaN accepted")
	}
}

func TestTopShareDoesNotMutate(t *testing.T) {
	xs := []float64{1, 3, 2}
	if _, err := TopShare(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 1 || xs[1] != 3 || xs[2] != 2 {
		t.Error("TopShare mutated its input")
	}
}

// TestConcentrationConsistency: TopShare and the Lorenz curve describe
// the same distribution — TopShare(xs, p) == 1 - L(1-p) at curve points.
func TestConcentrationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 1.5)
	}
	f, l, err := Lorenz(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.25, 0.5} {
		ts, err := TopShare(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		// Find the Lorenz point at F = 1-p.
		target := 1 - p
		var lv float64
		for i := range f {
			if f[i] >= target-1e-9 {
				lv = l[i]
				break
			}
		}
		if math.Abs(ts-(1-lv)) > 0.02 {
			t.Errorf("p=%v: TopShare %v vs 1-L(1-p) %v", p, ts, 1-lv)
		}
	}
}
